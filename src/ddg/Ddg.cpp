//===- Ddg.cpp - Data dependence graphs -----------------------------------===//

#include "swp/ddg/Ddg.h"

#include <functional>

using namespace swp;

std::vector<int> Ddg::nodesOfClass(int OpClass) const {
  std::vector<int> Result;
  for (int I = 0; I < numNodes(); ++I)
    if (Nodes[static_cast<size_t>(I)].OpClass == OpClass)
      Result.push_back(I);
  return Result;
}

bool Ddg::isWellFormed(int NumOpClasses) const {
  for (const DdgNode &N : Nodes)
    if (N.OpClass < 0 || N.OpClass >= NumOpClasses || N.Latency < 0)
      return false;
  for (const DdgEdge &E : Edges) {
    if (E.Src < 0 || E.Src >= numNodes() || E.Dst < 0 || E.Dst >= numNodes())
      return false;
    if (E.Distance < 0 || E.Latency < 0)
      return false;
  }

  // Reject cycles made purely of zero-distance edges: such a loop body has
  // no legal execution order at all.
  std::vector<int> Color(Nodes.size(), 0); // 0=white 1=grey 2=black
  std::vector<std::vector<int>> Succ(Nodes.size());
  for (const DdgEdge &E : Edges)
    if (E.Distance == 0)
      Succ[static_cast<size_t>(E.Src)].push_back(E.Dst);
  std::function<bool(int)> Dfs = [&](int U) {
    Color[static_cast<size_t>(U)] = 1;
    for (int V : Succ[static_cast<size_t>(U)]) {
      if (Color[static_cast<size_t>(V)] == 1)
        return false;
      if (Color[static_cast<size_t>(V)] == 0 && !Dfs(V))
        return false;
    }
    Color[static_cast<size_t>(U)] = 2;
    return true;
  };
  for (int I = 0; I < numNodes(); ++I)
    if (Color[static_cast<size_t>(I)] == 0 && !Dfs(I))
      return false;
  return true;
}
