//===- Dot.cpp - DOT export of DDGs ---------------------------------------===//

#include "swp/ddg/Dot.h"

#include "swp/support/Format.h"

using namespace swp;

std::string swp::toDot(const Ddg &G) {
  std::string Out = "digraph \"" + G.name() + "\" {\n";
  for (int I = 0; I < G.numNodes(); ++I) {
    const DdgNode &N = G.node(I);
    Out += strFormat("  n%d [label=\"%s\\nclass %d, d=%d\"];\n", I,
                     N.Name.c_str(), N.OpClass, N.Latency);
  }
  for (const DdgEdge &E : G.edges())
    Out += strFormat("  n%d -> n%d [label=\"(%d,%d)\"%s];\n", E.Src, E.Dst,
                     E.Latency, E.Distance,
                     E.Distance > 0 ? ", style=dashed" : "");
  Out += "}\n";
  return Out;
}
