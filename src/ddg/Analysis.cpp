//===- Analysis.cpp - DDG analyses ----------------------------------------===//

#include "swp/ddg/Analysis.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>

using namespace swp;

namespace {

/// Longest-path Bellman-Ford over integer edge weights \p W (parallel to
/// G.edges()); \returns true when a strictly positive cycle exists.
/// On success (\returns false) \p PotentialsOut, if non-null, receives
/// longest-path potentials h with h(src) + w <= h(dst) for no edge violated.
bool positiveCycleWithWeights(const Ddg &G, const std::vector<std::int64_t> &W,
                              std::vector<std::int64_t> *PotentialsOut) {
  const int N = G.numNodes();
  std::vector<std::int64_t> Dist(static_cast<size_t>(N), 0);
  for (int Pass = 0; Pass < N; ++Pass) {
    bool Changed = false;
    for (size_t E = 0; E < G.edges().size(); ++E) {
      const DdgEdge &Edge = G.edges()[E];
      std::int64_t Cand = Dist[static_cast<size_t>(Edge.Src)] + W[E];
      if (Cand > Dist[static_cast<size_t>(Edge.Dst)]) {
        Dist[static_cast<size_t>(Edge.Dst)] = Cand;
        Changed = true;
      }
    }
    if (!Changed) {
      if (PotentialsOut)
        *PotentialsOut = std::move(Dist);
      return false;
    }
  }
  return true; // Still relaxing after N passes: positive cycle.
}

std::vector<std::int64_t> scaledWeights(const Ddg &G, std::int64_t LatScale,
                                        std::int64_t DistScale) {
  std::vector<std::int64_t> W;
  W.reserve(G.edges().size());
  for (const DdgEdge &E : G.edges())
    W.push_back(LatScale * E.Latency - DistScale * E.Distance);
  return W;
}

} // namespace

bool swp::hasPositiveCycle(const Ddg &G, int T) {
  return positiveCycleWithWeights(G, scaledWeights(G, 1, T), nullptr);
}

int swp::recurrenceMii(const Ddg &G) {
  // Upper bound: the sum of all latencies admits every cycle (each cycle has
  // distance >= 1 when well-formed).
  std::int64_t Hi = 0;
  for (const DdgEdge &E : G.edges())
    Hi += E.Latency;
  if (!hasPositiveCycle(G, 0))
    return 0;
  int Lo = 0, HiT = static_cast<int>(Hi);
  assert(!hasPositiveCycle(G, HiT) && "malformed DDG: zero-distance cycle?");
  // Invariant: positive cycle at Lo, none at HiT.
  while (HiT - Lo > 1) {
    int Mid = Lo + (HiT - Lo) / 2;
    if (hasPositiveCycle(G, Mid))
      Lo = Mid;
    else
      HiT = Mid;
  }
  return HiT;
}

double swp::maxCycleRatio(const Ddg &G) {
  if (!hasPositiveCycle(G, 0))
    return 0.0;
  // Binary search on the ratio with scaled integer tests: ratio > P/Q iff
  // weights Q*lat - P*dist contain a positive cycle.  Use a fixed scale.
  const std::int64_t Q = 1 << 20;
  std::int64_t Lo = 0, Hi = 0;
  for (const DdgEdge &E : G.edges())
    Hi += E.Latency;
  Hi *= Q;
  // Invariant: positive cycle at Lo/Q, none at Hi/Q.
  while (Hi - Lo > 1) {
    std::int64_t Mid = Lo + (Hi - Lo) / 2;
    if (positiveCycleWithWeights(G, scaledWeights(G, Q, Mid), nullptr))
      Lo = Mid;
    else
      Hi = Mid;
  }
  return static_cast<double>(Hi) / static_cast<double>(Q);
}

std::vector<std::vector<int>> swp::stronglyConnectedComponents(const Ddg &G) {
  const int N = G.numNodes();
  std::vector<std::vector<int>> Succ(static_cast<size_t>(N));
  for (const DdgEdge &E : G.edges())
    Succ[static_cast<size_t>(E.Src)].push_back(E.Dst);

  std::vector<int> Index(static_cast<size_t>(N), -1);
  std::vector<int> Low(static_cast<size_t>(N), 0);
  std::vector<bool> OnStack(static_cast<size_t>(N), false);
  std::vector<int> Stack;
  std::vector<std::vector<int>> Components;
  int NextIndex = 0;

  std::function<void(int)> Strongconnect = [&](int V) {
    Index[static_cast<size_t>(V)] = Low[static_cast<size_t>(V)] = NextIndex++;
    Stack.push_back(V);
    OnStack[static_cast<size_t>(V)] = true;
    for (int W : Succ[static_cast<size_t>(V)]) {
      if (Index[static_cast<size_t>(W)] < 0) {
        Strongconnect(W);
        Low[static_cast<size_t>(V)] =
            std::min(Low[static_cast<size_t>(V)], Low[static_cast<size_t>(W)]);
      } else if (OnStack[static_cast<size_t>(W)]) {
        Low[static_cast<size_t>(V)] = std::min(Low[static_cast<size_t>(V)],
                                               Index[static_cast<size_t>(W)]);
      }
    }
    if (Low[static_cast<size_t>(V)] == Index[static_cast<size_t>(V)]) {
      std::vector<int> Component;
      while (true) {
        int W = Stack.back();
        Stack.pop_back();
        OnStack[static_cast<size_t>(W)] = false;
        Component.push_back(W);
        if (W == V)
          break;
      }
      std::sort(Component.begin(), Component.end());
      Components.push_back(std::move(Component));
    }
  };

  for (int V = 0; V < N; ++V)
    if (Index[static_cast<size_t>(V)] < 0)
      Strongconnect(V);
  return Components;
}

std::vector<int> swp::criticalCycleNodes(const Ddg &G) {
  if (!hasPositiveCycle(G, 0))
    return {};

  // The exact maximum ratio is SumLat/SumDist of some simple cycle, so its
  // denominator is at most the total distance D.  Snap the approximate
  // ratio onto the first fraction P/Q for which the scaled graph has no
  // positive cycle but does have a zero-weight cycle.
  double R = maxCycleRatio(G);
  std::int64_t D = 0;
  for (const DdgEdge &E : G.edges())
    D += E.Distance;
  for (std::int64_t Q = 1; Q <= std::max<std::int64_t>(D, 1); ++Q) {
    std::int64_t P = std::llround(R * static_cast<double>(Q));
    std::vector<std::int64_t> W = scaledWeights(G, Q, P);
    std::vector<std::int64_t> H;
    if (positiveCycleWithWeights(G, W, &H))
      continue;
    // Tight edges (h(src) + w == h(dst)) contain every zero-weight cycle.
    const int N = G.numNodes();
    std::vector<std::vector<int>> Tight(static_cast<size_t>(N));
    for (size_t E = 0; E < G.edges().size(); ++E) {
      const DdgEdge &Edge = G.edges()[E];
      if (H[static_cast<size_t>(Edge.Src)] + W[E] ==
          H[static_cast<size_t>(Edge.Dst)])
        Tight[static_cast<size_t>(Edge.Src)].push_back(Edge.Dst);
    }
    // Find any cycle in the tight subgraph.
    std::vector<int> Color(static_cast<size_t>(N), 0);
    std::vector<int> Parent(static_cast<size_t>(N), -1);
    int CycleHead = -1, CycleTail = -1;
    std::function<bool(int)> Dfs = [&](int U) {
      Color[static_cast<size_t>(U)] = 1;
      for (int V : Tight[static_cast<size_t>(U)]) {
        if (Color[static_cast<size_t>(V)] == 1) {
          CycleHead = V;
          CycleTail = U;
          return true;
        }
        if (Color[static_cast<size_t>(V)] == 0) {
          Parent[static_cast<size_t>(V)] = U;
          if (Dfs(V))
            return true;
        }
      }
      Color[static_cast<size_t>(U)] = 2;
      return false;
    };
    for (int V = 0; V < N && CycleHead < 0; ++V)
      if (Color[static_cast<size_t>(V)] == 0)
        Dfs(V);
    if (CycleHead < 0)
      continue; // P/Q overshoots the true ratio; try the next denominator.
    std::vector<int> Cycle;
    for (int V = CycleTail; V != CycleHead; V = Parent[static_cast<size_t>(V)])
      Cycle.push_back(V);
    Cycle.push_back(CycleHead);
    std::reverse(Cycle.begin(), Cycle.end());
    return Cycle;
  }
  return {};
}
