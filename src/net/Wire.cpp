//===- Wire.cpp - swpd wire protocol --------------------------------------===//

#include "swp/net/Wire.h"

#include "swp/service/ResultCodec.h"
#include "swp/support/Crc32.h"

using namespace swp;
using namespace swp::net;

const char *swp::net::frameErrorName(FrameError E) {
  switch (E) {
  case FrameError::None:
    return "none";
  case FrameError::BadMagic:
    return "bad-magic";
  case FrameError::BadVersion:
    return "bad-version";
  case FrameError::BadHeaderCrc:
    return "bad-header-crc";
  case FrameError::Oversized:
    return "oversized";
  case FrameError::BadPayloadCrc:
    return "bad-payload-crc";
  }
  return "?";
}

const char *swp::net::responseOutcomeName(ResponseOutcome O) {
  switch (O) {
  case ResponseOutcome::Solved:
    return "solved";
  case ResponseOutcome::Unsolved:
    return "unsolved";
  case ResponseOutcome::Shed:
    return "shed";
  case ResponseOutcome::Error:
    return "error";
  }
  return "?";
}

std::vector<std::uint8_t>
swp::net::encodeFrame(MessageType Type, std::span<const std::uint8_t> Payload) {
  ByteWriter W;
  W.u32(WireMagic);
  W.u16(WireVersion);
  W.u16(static_cast<std::uint16_t>(Type));
  W.u32(static_cast<std::uint32_t>(Payload.size()));
  W.u32(crc32(Payload));
  W.u32(crc32(std::span<const std::uint8_t>(W.data().data(), 16)));
  W.bytes(Payload);
  return W.take();
}

FrameError swp::net::decodeFrameHeader(std::span<const std::uint8_t> Header,
                                       FrameHeader &Out) {
  if (Header.size() < FrameHeaderSize)
    return FrameError::BadHeaderCrc; // Truncated header is indistinguishable.
  ByteReader R(Header.first(FrameHeaderSize));
  std::uint32_t Magic, Len, PayloadCrc, HeaderCrc;
  std::uint16_t Version, Type;
  R.u32(Magic);
  R.u16(Version);
  R.u16(Type);
  R.u32(Len);
  R.u32(PayloadCrc);
  R.u32(HeaderCrc);
  // The header CRC is checked first: with a corrupt header, magic/version/
  // length are themselves untrustworthy.
  if (crc32(Header.first(16)) != HeaderCrc)
    return FrameError::BadHeaderCrc;
  if (Magic != WireMagic)
    return FrameError::BadMagic;
  if (Version != WireVersion)
    return FrameError::BadVersion;
  if (Len > MaxFramePayload)
    return FrameError::Oversized;
  Out.Type = static_cast<MessageType>(Type);
  Out.PayloadLen = Len;
  Out.PayloadCrc = PayloadCrc;
  return FrameError::None;
}

FrameError
swp::net::verifyFramePayload(const FrameHeader &H,
                             std::span<const std::uint8_t> Payload) {
  if (Payload.size() != H.PayloadLen || crc32(Payload) != H.PayloadCrc)
    return FrameError::BadPayloadCrc;
  return FrameError::None;
}

void swp::net::encodeScheduleRequest(ByteWriter &W,
                                     const ScheduleRequestMsg &M) {
  W.str(M.Tenant);
  W.str(M.Scheduler);
  W.f64(M.DeadlineSeconds);
  W.str(M.MachineText);
  W.str(M.LoopText);
}

bool swp::net::decodeScheduleRequest(ByteReader &R, ScheduleRequestMsg &Out) {
  Out = ScheduleRequestMsg();
  // Names stay small; machine/loop texts get the codec's default bound.
  if (!R.str(Out.Tenant, 1 << 10) || !R.str(Out.Scheduler, 1 << 10) ||
      !R.f64(Out.DeadlineSeconds) || !R.str(Out.MachineText) ||
      !R.str(Out.LoopText))
    return false;
  return true;
}

void swp::net::encodeScheduleResponse(ByteWriter &W,
                                      const ScheduleResponseMsg &M) {
  W.u8(static_cast<std::uint8_t>(M.Outcome));
  W.u8(static_cast<std::uint8_t>(M.Degradation));
  W.str(M.Reason);
  W.boolean(M.HasResult);
  if (M.HasResult)
    encodeSchedulerResult(W, M.Result);
}

bool swp::net::decodeScheduleResponse(ByteReader &R,
                                      ScheduleResponseMsg &Out) {
  Out = ScheduleResponseMsg();
  std::uint8_t Outcome, Level;
  if (!R.u8(Outcome) || !R.u8(Level))
    return false;
  if (Outcome > static_cast<std::uint8_t>(ResponseOutcome::Error) ||
      Level > static_cast<std::uint8_t>(DegradationLevel::Shed))
    return R.fail();
  Out.Outcome = static_cast<ResponseOutcome>(Outcome);
  Out.Degradation = static_cast<DegradationLevel>(Level);
  if (!R.str(Out.Reason, 1 << 16) || !R.boolean(Out.HasResult))
    return false;
  if (Out.HasResult && !decodeSchedulerResult(R, Out.Result))
    return false;
  return true;
}
