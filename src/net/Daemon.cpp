//===- Daemon.cpp - The swpd scheduling daemon ----------------------------===//

#include "swp/net/Daemon.h"

#include "swp/service/CachePersist.h"
#include "swp/support/Format.h"
#include "swp/support/TextTable.h"
#include "swp/textio/Parser.h"

#include <algorithm>

using namespace swp;
using namespace swp::net;

namespace {

/// Maps a wire scheduler name to engine/portfolio; false on unknown names.
bool parseSchedulerName(const std::string &Name, ExactEngine &Engine,
                        bool &Portfolio) {
  Portfolio = false;
  if (Name == "ilp")
    Engine = ExactEngine::Ilp;
  else if (Name == "sat")
    Engine = ExactEngine::Sat;
  else if (Name == "race")
    Engine = ExactEngine::Race;
  else if (Name == "portfolio" || Name == "portfolio-ilp") {
    Engine = ExactEngine::Ilp;
    Portfolio = true;
  } else if (Name == "portfolio-sat") {
    Engine = ExactEngine::Sat;
    Portfolio = true;
  } else if (Name == "portfolio-race") {
    Engine = ExactEngine::Race;
    Portfolio = true;
  } else
    return false;
  return true;
}

/// Accumulates \p B into \p A (shared-cache gauges are overwritten by the
/// caller afterwards, so summing them here would double count — skipped).
void mergeServiceStats(ServiceStats &A, const ServiceStats &B) {
  A.Jobs = std::max(A.Jobs, B.Jobs);
  A.QueueHighWater = std::max(A.QueueHighWater, B.QueueHighWater);
  A.Submitted += B.Submitted;
  A.Completed += B.Completed;
  A.CacheHits += B.CacheHits;
  A.CacheMisses += B.CacheMisses;
  A.Cancellations += B.Cancellations;
  A.CensoredProofs += B.CensoredProofs;
  A.PortfolioHeuristicWins += B.PortfolioHeuristicWins;
  A.PortfolioIlpWins += B.PortfolioIlpWins;
  A.PortfolioFallbacks += B.PortfolioFallbacks;
  A.RaceIlpWins += B.RaceIlpWins;
  A.RaceSatWins += B.RaceSatWins;
  A.CrossEngineProofUpgrades += B.CrossEngineProofUpgrades;
  A.SatConflicts += B.SatConflicts;
  A.FaultedJobs += B.FaultedJobs;
  A.TypedErrors += B.TypedErrors;
  A.WatchdogRetries += B.WatchdogRetries;
  A.FallbackSlackWins += B.FallbackSlackWins;
  A.FallbackImsWins += B.FallbackImsWins;
  A.DispatchFaults += B.DispatchFaults;
  for (int I = 0; I < LatencyHistogram::NumBuckets; ++I)
    A.Latency.Buckets[static_cast<std::size_t>(I)] +=
        B.Latency.Buckets[static_cast<std::size_t>(I)];
  A.Latency.Count += B.Latency.Count;
  A.Latency.TotalSeconds += B.Latency.TotalSeconds;
  A.Latency.MaxSeconds = std::max(A.Latency.MaxSeconds, B.Latency.MaxSeconds);
}

/// Pairs one admitted request with its complete() on every exit path.
class AdmitGuard {
public:
  explicit AdmitGuard(AdmissionController &C) : Ctrl(C) {}
  ~AdmitGuard() { Ctrl.complete(); }
  AdmitGuard(const AdmitGuard &) = delete;
  AdmitGuard &operator=(const AdmitGuard &) = delete;

private:
  AdmissionController &Ctrl;
};

} // namespace

Daemon::Daemon(DaemonOptions O)
    : Opts(std::move(O)),
      Cache(std::make_shared<ResultCache>(Opts.CacheShards,
                                          Opts.CachePerShardCapacity)),
      Admission(Opts.Admission) {}

Daemon::~Daemon() { stop(); }

Status Daemon::start() {
  if (Running.load())
    return Status(StatusCode::InvalidInput, "daemon already running")
        .withPhase("daemon-start");
  if (!Opts.SnapshotDir.empty()) {
    Expected<SnapshotLoadStats> Loaded =
        loadCacheSnapshot(*Cache, Opts.SnapshotDir);
    if (!Loaded.ok())
      return Loaded.status();
    std::lock_guard<std::mutex> Lock(StatsMutex);
    Counters.SnapshotEntriesLoaded += Loaded->Entries;
    Counters.SnapshotCorruptShards += Loaded->CorruptShards;
  }
  Expected<ListenSocket> L = ListenSocket::listenUnix(Opts.SocketPath);
  if (!L.ok())
    return L.status();
  Listener = std::move(*L);
  StopFlag.store(false);
  Running.store(true);
  AcceptThread = std::thread([this] { acceptLoop(); });
  return Status::ok();
}

void Daemon::stop() {
  if (!Running.exchange(false))
    return;
  StopFlag.store(true);
  if (AcceptThread.joinable())
    AcceptThread.join();
  Listener.close();
  for (;;) {
    std::thread T;
    {
      std::lock_guard<std::mutex> Lock(ConnMutex);
      if (ConnThreads.empty())
        break;
      T = std::move(ConnThreads.front());
      ConnThreads.pop_front();
    }
    if (T.joinable())
      T.join();
  }
  if (!Opts.SnapshotDir.empty())
    (void)saveSnapshot();
}

bool Daemon::waitShutdownRequested(double TimeoutSeconds) {
  std::unique_lock<std::mutex> Lock(ShutdownMutex);
  return ShutdownCv.wait_for(Lock,
                             std::chrono::duration<double>(TimeoutSeconds),
                             [this] { return ShutdownRequested; });
}

Status Daemon::saveSnapshot() {
  std::lock_guard<std::mutex> Lock(SnapshotMutex);
  Expected<SnapshotSaveStats> Saved =
      saveCacheSnapshot(*Cache, Opts.SnapshotDir);
  if (!Saved.ok())
    return Saved.status();
  std::lock_guard<std::mutex> SLock(StatsMutex);
  ++Counters.SnapshotSaves;
  return Status::ok();
}

DaemonStats Daemon::stats() const {
  DaemonStats S;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    S = Counters;
  }
  S.Admission = Admission.stats();
  {
    std::lock_guard<std::mutex> Lock(ServicesMutex);
    S.Service = RetiredStats;
    for (const ServiceEntry &E : Services)
      mergeServiceStats(S.Service, E.Svc->stats());
  }
  S.Service.CacheSize = Cache->size();
  S.Service.CacheEvictions = Cache->evictions();
  return S;
}

std::string Daemon::statsText() const {
  DaemonStats S = stats();
  TextTable D;
  D.setHeader({"Daemon", "Value"});
  D.addRow({"connections", std::to_string(S.Connections)});
  D.addRow({"requests", std::to_string(S.Requests)});
  D.addRow({"frame errors", std::to_string(S.FrameErrors)});
  D.addRow({"io errors", std::to_string(S.IoErrors)});
  D.addRow({"snapshot saves", std::to_string(S.SnapshotSaves)});
  D.addRow({"snapshot entries loaded",
            std::to_string(S.SnapshotEntriesLoaded)});
  D.addRow({"snapshot corrupt shards",
            std::to_string(S.SnapshotCorruptShards)});
  TextTable A;
  A.setHeader({"Admission", "Value"});
  A.addRow({"admitted", std::to_string(S.Admission.Admitted)});
  A.addRow({"reduced effort", std::to_string(S.Admission.ReducedEffort)});
  A.addRow({"heuristic only", std::to_string(S.Admission.HeuristicOnly)});
  A.addRow({"shed", std::to_string(S.Admission.Shed)});
  A.addRow({"tenant shed", std::to_string(S.Admission.TenantShed)});
  A.addRow({"in flight", std::to_string(S.Admission.InFlight)});
  A.addRow({"in-flight high-water",
            std::to_string(S.Admission.InFlightHighWater)});
  return D.render() + "\n" + A.render() + "\n" + S.Service.render();
}

std::shared_ptr<SchedulerService> Daemon::serviceFor(
    const MachineModel &Machine, ExactEngine Engine, bool Portfolio) {
  // Canonical machine text keys the service: two requests whose machine
  // sections parse to the same model share one service however they were
  // formatted.
  std::string Key = strFormat("%s|%d|", exactEngineName(Engine),
                              Portfolio ? 1 : 0) +
                    printMachine(Machine);
  std::lock_guard<std::mutex> Lock(ServicesMutex);
  for (auto It = Services.begin(); It != Services.end(); ++It) {
    if (It->Key == Key) {
      Services.splice(Services.begin(), Services, It);
      return Services.front().Svc;
    }
  }
  ServiceOptions SO = Opts.Service;
  SO.Engine = Engine;
  SO.Portfolio = Portfolio;
  auto Svc = std::make_shared<SchedulerService>(Machine, SO, Cache);
  Services.push_front(ServiceEntry{std::move(Key), Svc});
  if (Services.size() > std::max<std::size_t>(Opts.MaxServices, 1)) {
    // Retire the LRU service; its counters fold into the aggregate and
    // in-flight jobs keep it alive through their shared_ptr.
    mergeServiceStats(RetiredStats, Services.back().Svc->stats());
    Services.pop_back();
  }
  return Svc;
}

ScheduleResponseMsg Daemon::handleSchedule(const ScheduleRequestMsg &Req) {
  bumpCounter(&DaemonStats::Requests);
  ScheduleResponseMsg Resp;

  ExactEngine Engine;
  bool Portfolio;
  if (!parseSchedulerName(Req.Scheduler, Engine, Portfolio)) {
    Resp.Outcome = ResponseOutcome::Error;
    Resp.Reason = "unknown scheduler '" + Req.Scheduler + "'";
    return Resp;
  }
  Expected<MachineModel> Machine = parseMachineText(Req.MachineText);
  if (!Machine.ok()) {
    Resp.Outcome = ResponseOutcome::Error;
    Resp.Reason = "machine: " + Machine.status().str();
    return Resp;
  }
  Expected<Ddg> Loop = parseLoopText(Req.LoopText, *Machine);
  if (!Loop.ok()) {
    Resp.Outcome = ResponseOutcome::Error;
    Resp.Reason = "loop: " + Loop.status().str();
    return Resp;
  }

  AdmissionDecision D = Admission.admit(
      Req.Tenant.empty() ? "default" : Req.Tenant, Req.DeadlineSeconds);
  Resp.Degradation = D.Level;
  Resp.Reason = D.Reason;
  if (!D.admitted()) {
    // Shed: no solve ran, nothing is cached, the response says why.
    Resp.Outcome = ResponseOutcome::Shed;
    return Resp;
  }
  AdmitGuard Guard(Admission);

  SchedulerResult R;
  if (D.Level == DegradationLevel::HeuristicOnly) {
    // Saturated: the heuristic ladder answers directly, bypassing the
    // service so the degraded result can never be memoized as the
    // full-effort answer.
    R = runHeuristicLadder(*Loop, *Machine, Opts.Service.Sched.MaxTSlack);
  } else {
    JobOptions Job;
    if (Req.DeadlineSeconds > 0)
      Job.DeadlineSeconds = Req.DeadlineSeconds;
    Job = Admission.degrade(Job, D.Level);
    std::shared_ptr<SchedulerService> Svc =
        serviceFor(*Machine, Engine, Portfolio);
    R = Svc->submit(*Loop, Job).get();
  }

  Resp.HasResult = true;
  Resp.Result = std::move(R);
  if (!Resp.Result.Error.isOk() &&
      Resp.Result.Error.code() == StatusCode::InvalidInput) {
    Resp.Outcome = ResponseOutcome::Error;
    Resp.Reason = Resp.Result.Error.str();
  } else {
    Resp.Outcome = Resp.Result.found() ? ResponseOutcome::Solved
                                       : ResponseOutcome::Unsolved;
  }
  noteCompletion();
  return Resp;
}

void Daemon::noteCompletion() {
  bool Save = false;
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++CompletionsSinceSnapshot;
    if (Opts.SnapshotEvery > 0 && !Opts.SnapshotDir.empty() &&
        CompletionsSinceSnapshot >= Opts.SnapshotEvery) {
      CompletionsSinceSnapshot = 0;
      Save = true;
    }
  }
  if (Save)
    (void)saveSnapshot();
}

void Daemon::bumpCounter(std::uint64_t DaemonStats::*Field) {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  ++(Counters.*Field);
}

void Daemon::acceptLoop() {
  while (!StopFlag.load()) {
    Expected<Socket> Conn = Listener.accept(0.1);
    if (!Conn.ok())
      continue; // Timeout slice (or transient accept error): poll StopFlag.
    bumpCounter(&DaemonStats::Connections);
    std::lock_guard<std::mutex> Lock(ConnMutex);
    ConnThreads.emplace_back(
        [this, C = std::make_shared<Socket>(std::move(*Conn))]() mutable {
          handleConnection(std::move(*C));
        });
  }
}

void Daemon::handleConnection(Socket Conn) {
  auto SendError = [&](const std::string &Reason) {
    ByteWriter W;
    W.str(Reason);
    (void)Conn.sendFrame(MessageType::ErrorResponse, W.data(),
                         Opts.IoTimeoutSeconds);
  };

  while (!StopFlag.load()) {
    // Idle in short slices so stop() is never blocked on a quiet client;
    // once bytes arrive the full I/O timeout governs the frame.
    Status Ready = Conn.waitReadable(0.1);
    if (!Ready.isOk()) {
      if (Ready.code() == StatusCode::ResourceExhausted)
        continue;
      bumpCounter(&DaemonStats::IoErrors);
      return;
    }
    MessageType Type;
    std::vector<std::uint8_t> Payload;
    Status St = Conn.recvFrame(Type, Payload, Opts.IoTimeoutSeconds);
    if (!St.isOk()) {
      if (St.code() == StatusCode::Cancelled)
        return; // Peer hung up: the normal end of a connection.
      if (St.code() == StatusCode::InvalidInput) {
        // Corrupt frame: answer with the reason, then tear down — the
        // stream has no resync point after corruption.
        bumpCounter(&DaemonStats::FrameErrors);
        SendError(St.str());
        return;
      }
      bumpCounter(&DaemonStats::IoErrors);
      return;
    }

    switch (Type) {
    case MessageType::ScheduleRequest: {
      ScheduleRequestMsg Req;
      ByteReader R(Payload);
      ScheduleResponseMsg Resp;
      if (!decodeScheduleRequest(R, Req) || !R.done()) {
        // The frame passed its CRC, so the stream is intact; the payload
        // is semantically bad.  A well-formed Error response, connection
        // kept.
        bumpCounter(&DaemonStats::FrameErrors);
        Resp.Outcome = ResponseOutcome::Error;
        Resp.Reason = "malformed schedule request payload";
      } else {
        Resp = handleSchedule(Req);
      }
      ByteWriter W;
      encodeScheduleResponse(W, Resp);
      if (Status SendSt = Conn.sendFrame(MessageType::ScheduleResponse,
                                         W.data(), Opts.IoTimeoutSeconds);
          !SendSt.isOk()) {
        bumpCounter(&DaemonStats::IoErrors);
        return;
      }
      break;
    }
    case MessageType::StatsRequest: {
      ByteWriter W;
      W.str(statsText());
      if (Status SendSt = Conn.sendFrame(MessageType::StatsResponse,
                                         W.data(), Opts.IoTimeoutSeconds);
          !SendSt.isOk()) {
        bumpCounter(&DaemonStats::IoErrors);
        return;
      }
      break;
    }
    case MessageType::Shutdown: {
      (void)Conn.sendFrame(MessageType::ShutdownAck, {},
                           Opts.IoTimeoutSeconds);
      {
        std::lock_guard<std::mutex> Lock(ShutdownMutex);
        ShutdownRequested = true;
      }
      ShutdownCv.notify_all();
      return;
    }
    default:
      SendError(strFormat("unsupported message type %u",
                          static_cast<unsigned>(Type)));
      break;
    }
  }
}
