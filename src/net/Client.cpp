//===- Client.cpp - swpd client -------------------------------------------===//

#include "swp/net/Client.h"

using namespace swp;
using namespace swp::net;

Expected<DaemonClient> DaemonClient::connect(const std::string &SocketPath,
                                             double TimeoutSeconds) {
  Expected<Socket> S = Socket::connectUnix(SocketPath, TimeoutSeconds);
  if (!S.ok())
    return S.status();
  return DaemonClient(std::move(*S), TimeoutSeconds);
}

namespace {

/// An ErrorResponse payload is one reason string; anything else about the
/// frame is protocol breakage.
Status errorResponseStatus(std::span<const std::uint8_t> Payload) {
  ByteReader R(Payload);
  std::string Reason;
  if (!R.str(Reason, 1 << 16) || !R.done())
    Reason = "(malformed error response)";
  return Status(StatusCode::InvalidInput, "daemon: " + Reason)
      .withPhase("wire");
}

} // namespace

Expected<ScheduleResponseMsg>
DaemonClient::schedule(const ScheduleRequestMsg &Req) {
  ByteWriter W;
  encodeScheduleRequest(W, Req);
  if (Status St = Sock.sendFrame(MessageType::ScheduleRequest, W.data(),
                                 Timeout);
      !St.isOk())
    return St;
  MessageType Type;
  std::vector<std::uint8_t> Payload;
  if (Status St = Sock.recvFrame(Type, Payload, Timeout); !St.isOk())
    return St;
  if (Type == MessageType::ErrorResponse)
    return errorResponseStatus(Payload);
  if (Type != MessageType::ScheduleResponse)
    return Status(StatusCode::InvalidInput,
                  "unexpected response frame type")
        .withPhase("wire");
  ScheduleResponseMsg Resp;
  ByteReader R(Payload);
  if (!decodeScheduleResponse(R, Resp) || !R.done())
    return Status(StatusCode::InvalidInput,
                  "undecodable schedule response payload")
        .withPhase("wire");
  return Resp;
}

Expected<std::string> DaemonClient::statsText() {
  if (Status St = Sock.sendFrame(MessageType::StatsRequest, {}, Timeout);
      !St.isOk())
    return St;
  MessageType Type;
  std::vector<std::uint8_t> Payload;
  if (Status St = Sock.recvFrame(Type, Payload, Timeout); !St.isOk())
    return St;
  if (Type == MessageType::ErrorResponse)
    return errorResponseStatus(Payload);
  if (Type != MessageType::StatsResponse)
    return Status(StatusCode::InvalidInput,
                  "unexpected response frame type")
        .withPhase("wire");
  ByteReader R(Payload);
  std::string Text;
  if (!R.str(Text, 1 << 20) || !R.done())
    return Status(StatusCode::InvalidInput,
                  "undecodable stats response payload")
        .withPhase("wire");
  return Text;
}

Status DaemonClient::requestShutdown() {
  if (Status St = Sock.sendFrame(MessageType::Shutdown, {}, Timeout);
      !St.isOk())
    return St;
  MessageType Type;
  std::vector<std::uint8_t> Payload;
  if (Status St = Sock.recvFrame(Type, Payload, Timeout); !St.isOk())
    return St;
  if (Type != MessageType::ShutdownAck)
    return Status(StatusCode::InvalidInput,
                  "expected shutdown ack, got another frame")
        .withPhase("wire");
  return Status::ok();
}
