//===- Socket.cpp - Timeout-bounded local sockets -------------------------===//

#include "swp/net/Socket.h"

#include "swp/support/FaultInjector.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace swp;
using namespace swp::net;

namespace {

using Clock = std::chrono::steady_clock;

Status ioStatus(StatusCode Code, const std::string &Msg) {
  return Status(Code, Msg).withPhase("socket");
}

/// Remaining milliseconds until \p Deadline, clamped to [0, 1h] for poll.
int remainingMs(Clock::time_point Deadline) {
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
      Deadline - Clock::now());
  if (Left.count() <= 0)
    return 0;
  return static_cast<int>(std::min<long long>(Left.count(), 3'600'000));
}

/// Waits for \p Events on \p Fd until \p Deadline; ok when ready.
Status pollFor(int Fd, short Events, Clock::time_point Deadline,
               const char *What) {
  for (;;) {
    pollfd P{Fd, Events, 0};
    int Ms = remainingMs(Deadline);
    int Rc = ::poll(&P, 1, Ms);
    if (Rc > 0)
      return Status::ok();
    if (Rc == 0)
      return ioStatus(StatusCode::ResourceExhausted,
                      std::string("socket ") + What + " timed out");
    if (errno != EINTR)
      return ioStatus(StatusCode::Internal,
                      std::string("poll failed: ") + std::strerror(errno));
  }
}

} // namespace

Socket::~Socket() { close(); }

Socket &Socket::operator=(Socket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    O.Fd = -1;
  }
  return *this;
}

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

Expected<Socket> Socket::connectUnix(const std::string &Path,
                                     double TimeoutSeconds) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return ioStatus(StatusCode::InvalidInput,
                    "socket path too long: " + Path);
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return ioStatus(StatusCode::ResourceExhausted,
                    std::string("socket() failed: ") + std::strerror(errno));
  Socket S(Fd);
  // AF_UNIX connects either complete or fail immediately, so a blocking
  // connect here cannot exceed the timeout in practice; timeouts govern
  // the frame I/O that follows.
  (void)TimeoutSeconds;
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return ioStatus(StatusCode::ResourceExhausted,
                    "cannot connect to " + Path + ": " +
                        std::strerror(errno));
  return S;
}

Status Socket::readExact(std::uint8_t *Buf, std::size_t Len,
                         double TimeoutSeconds) {
  auto Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         TimeoutSeconds));
  std::size_t Got = 0;
  while (Got < Len) {
    if (Status St = pollFor(Fd, POLLIN, Deadline, "read"); !St.isOk())
      return St;
    ssize_t N = ::recv(Fd, Buf + Got, Len - Got, 0);
    if (N == 0)
      return ioStatus(StatusCode::Cancelled, "peer closed the connection");
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN)
        continue;
      return ioStatus(StatusCode::Internal,
                      std::string("recv failed: ") + std::strerror(errno));
    }
    Got += static_cast<std::size_t>(N);
  }
  return Status::ok();
}

Status Socket::writeAll(const std::uint8_t *Buf, std::size_t Len,
                        double TimeoutSeconds) {
  auto Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         TimeoutSeconds));
  std::size_t Sent = 0;
  while (Sent < Len) {
    if (Status St = pollFor(Fd, POLLOUT, Deadline, "write"); !St.isOk())
      return St;
    // MSG_NOSIGNAL: a vanished peer is a typed error, not a SIGPIPE.
    ssize_t N = ::send(Fd, Buf + Sent, Len - Sent, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN)
        continue;
      if (errno == EPIPE || errno == ECONNRESET)
        return ioStatus(StatusCode::Cancelled, "peer closed the connection");
      return ioStatus(StatusCode::Internal,
                      std::string("send failed: ") + std::strerror(errno));
    }
    Sent += static_cast<std::size_t>(N);
  }
  return Status::ok();
}

Status Socket::sendFrame(MessageType Type,
                         std::span<const std::uint8_t> Payload,
                         double TimeoutSeconds) {
  // One injection poll per frame: the whole send fails as a peer reset
  // would, never a partial frame the receiver might half-trust.
  if (FaultInjector::instance().shouldFire(FaultSite::SockWrite)) {
    close();
    return ioStatus(StatusCode::FaultInjected, "injected socket write fault");
  }
  std::vector<std::uint8_t> Frame = encodeFrame(Type, Payload);
  return writeAll(Frame.data(), Frame.size(), TimeoutSeconds);
}

Status Socket::recvFrame(MessageType &Type, std::vector<std::uint8_t> &Payload,
                         double TimeoutSeconds) {
  if (FaultInjector::instance().shouldFire(FaultSite::SockRead)) {
    close();
    return ioStatus(StatusCode::FaultInjected, "injected socket read fault");
  }
  std::uint8_t Header[FrameHeaderSize];
  if (Status St = readExact(Header, sizeof(Header), TimeoutSeconds);
      !St.isOk())
    return St;
  FrameHeader H;
  if (FrameError E = decodeFrameHeader(Header, H); E != FrameError::None)
    return ioStatus(StatusCode::InvalidInput,
                    std::string("corrupt frame header: ") +
                        frameErrorName(E));
  Payload.assign(H.PayloadLen, 0);
  if (H.PayloadLen > 0)
    if (Status St = readExact(Payload.data(), Payload.size(), TimeoutSeconds);
        !St.isOk())
      return St;
  if (FrameError E = verifyFramePayload(H, Payload); E != FrameError::None)
    return ioStatus(StatusCode::InvalidInput,
                    std::string("corrupt frame payload: ") +
                        frameErrorName(E));
  Type = H.Type;
  return Status::ok();
}

Status Socket::waitReadable(double TimeoutSeconds) {
  auto Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         TimeoutSeconds));
  return pollFor(Fd, POLLIN, Deadline, "read");
}

ListenSocket::~ListenSocket() { close(); }

ListenSocket &ListenSocket::operator=(ListenSocket &&O) noexcept {
  if (this != &O) {
    close();
    Fd = O.Fd;
    Path = std::move(O.Path);
    O.Fd = -1;
  }
  return *this;
}

void ListenSocket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    ::unlink(Path.c_str());
    Fd = -1;
  }
}

Expected<ListenSocket> ListenSocket::listenUnix(const std::string &Path,
                                                int Backlog) {
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path))
    return ioStatus(StatusCode::InvalidInput,
                    "socket path too long: " + Path);
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return ioStatus(StatusCode::ResourceExhausted,
                    std::string("socket() failed: ") + std::strerror(errno));
  ListenSocket L;
  L.Fd = Fd;
  L.Path = Path;
  ::unlink(Path.c_str()); // A stale socket file from a dead daemon.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0)
    return ioStatus(StatusCode::ResourceExhausted,
                    "cannot bind " + Path + ": " + std::strerror(errno));
  if (::listen(Fd, Backlog) != 0)
    return ioStatus(StatusCode::ResourceExhausted,
                    "cannot listen on " + Path + ": " +
                        std::strerror(errno));
  return L;
}

Expected<Socket> ListenSocket::accept(double TimeoutSeconds) {
  auto Deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         TimeoutSeconds));
  if (Status St = pollFor(Fd, POLLIN, Deadline, "accept"); !St.isOk())
    return St;
  int CFd = ::accept(Fd, nullptr, nullptr);
  if (CFd < 0)
    return ioStatus(StatusCode::Internal,
                    std::string("accept failed: ") + std::strerror(errno));
  return Socket(CFd);
}
