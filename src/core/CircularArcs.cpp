//===- CircularArcs.cpp - FU occupation as circular arcs ------------------===//

#include "swp/core/CircularArcs.h"

#include "swp/support/Format.h"

#include <algorithm>
#include <cassert>

using namespace swp;

bool swp::arcsOverlap(const ReservationTable &Table, int T, int OffsetI,
                      int OffsetJ) {
  int Delta = ((OffsetJ - OffsetI) % T + T) % T;
  return Table.conflictsAtOffset(Delta, T);
}

bool swp::arcsOverlap(const ReservationTable &TableI,
                      const ReservationTable &TableJ, int T, int OffsetI,
                      int OffsetJ) {
  int Delta = ((OffsetJ - OffsetI) % T + T) % T;
  return tablesConflictAtOffset(TableI, TableJ, Delta, T);
}

std::vector<int> swp::firstFitUnitColoring(
    const std::vector<const ReservationTable *> &Tables, int T,
    const std::vector<int> &Offsets) {
  assert(Tables.size() == Offsets.size() && "tables must match offsets");
  const int N = static_cast<int>(Offsets.size());
  std::vector<int> Colors(static_cast<size_t>(N), -1);
  // Color in offset order (classic interval-graph heuristic adapted to the
  // circle): ties broken by index.
  std::vector<int> Order(static_cast<size_t>(N));
  for (int I = 0; I < N; ++I)
    Order[static_cast<size_t>(I)] = I;
  std::sort(Order.begin(), Order.end(), [&Offsets](int A, int B) {
    if (Offsets[static_cast<size_t>(A)] != Offsets[static_cast<size_t>(B)])
      return Offsets[static_cast<size_t>(A)] < Offsets[static_cast<size_t>(B)];
    return A < B;
  });
  for (int I : Order) {
    int Color = 0;
    while (true) {
      bool Clash = false;
      for (int J = 0; J < N; ++J) {
        if (Colors[static_cast<size_t>(J)] != Color)
          continue;
        if (arcsOverlap(*Tables[static_cast<size_t>(J)],
                        *Tables[static_cast<size_t>(I)], T,
                        Offsets[static_cast<size_t>(J)],
                        Offsets[static_cast<size_t>(I)])) {
          Clash = true;
          break;
        }
      }
      if (!Clash)
        break;
      ++Color;
    }
    Colors[static_cast<size_t>(I)] = Color;
  }
  return Colors;
}

std::vector<int> swp::firstFitUnitColoring(const ReservationTable &Table,
                                           int T,
                                           const std::vector<int> &Offsets) {
  std::vector<const ReservationTable *> Tables(Offsets.size(), &Table);
  return firstFitUnitColoring(Tables, T, Offsets);
}

std::string swp::renderArcs(const Ddg &G, const MachineModel &Machine,
                            int OpClass, int T,
                            const std::vector<int> &Offsets,
                            const std::vector<int> &Mapping) {
  const FuType &Ty = Machine.type(OpClass);
  std::vector<int> Ops = G.nodesOfClass(OpClass);
  std::string Out =
      strFormat("%s occupation arcs on the cycle [0, %d):\n", Ty.Name.c_str(),
                T);
  for (size_t Ix = 0; Ix < Ops.size(); ++Ix) {
    int Op = Ops[Ix];
    const ReservationTable &Table = Machine.tableFor(G.node(Op));
    std::vector<bool> BusySlot(static_cast<size_t>(T), false);
    for (int S = 0; S < Table.numStages(); ++S)
      for (int L : Table.busyColumns(S))
        BusySlot[static_cast<size_t>((Offsets[Ix] + L) % T)] = true;
    std::string Line;
    for (int Slot = 0; Slot < T; ++Slot)
      Line += BusySlot[static_cast<size_t>(Slot)] ? '#' : '.';
    bool Wraps = false;
    for (int S = 0; S < Table.numStages() && !Wraps; ++S)
      for (int L : Table.busyColumns(S))
        if (Offsets[Ix] + L >= T) {
          Wraps = true;
          break;
        }
    Out += strFormat("  %-6s |%s|%s", G.node(Op).Name.c_str(), Line.c_str(),
                     Wraps ? "  (wraps: two same-colored fragments)" : "");
    if (!Mapping.empty())
      Out += strFormat("  -> unit %d", Mapping[Ix]);
    Out += '\n';
  }
  return Out;
}
