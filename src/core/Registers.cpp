//===- Registers.cpp - Buffer and register-pressure analysis --------------===//

#include "swp/core/Registers.h"

#include "swp/support/Format.h"

#include <algorithm>
#include <cassert>

using namespace swp;

int swp::edgeBufferCount(const Ddg &G, const ModuloSchedule &S,
                         const DdgEdge &E) {
  (void)G;
  int Sep = S.StartTime[static_cast<size_t>(E.Dst)] + S.T * E.Distance -
            S.StartTime[static_cast<size_t>(E.Src)];
  assert(Sep >= 0 && "schedule violates the dependence");
  // ceil(Sep / T), at least one buffer for any real dependence.
  return std::max(1, (Sep + S.T - 1) / S.T);
}

int swp::totalBuffers(const Ddg &G, const ModuloSchedule &S) {
  int Total = 0;
  for (const DdgEdge &E : G.edges())
    Total += edgeBufferCount(G, S, E);
  return Total;
}

int swp::valueLifetime(const Ddg &G, const ModuloSchedule &S, int I) {
  int Death = S.StartTime[static_cast<size_t>(I)];
  for (const DdgEdge &E : G.edges())
    if (E.Src == I)
      Death = std::max(Death, S.StartTime[static_cast<size_t>(E.Dst)] +
                                  S.T * E.Distance);
  return Death - S.StartTime[static_cast<size_t>(I)];
}

std::vector<int> swp::livePerSlot(const Ddg &G, const ModuloSchedule &S) {
  std::vector<int> Live(static_cast<size_t>(S.T), 0);
  for (int I = 0; I < G.numNodes(); ++I) {
    int L = valueLifetime(G, S, I);
    if (L <= 0)
      continue;
    // In steady state one copy is born every T cycles, so slot s carries
    // floor(L / T) full generations plus the partial one.
    int Full = L / S.T;
    int Rem = L % S.T;
    int Birth = S.offset(I);
    for (int Slot = 0; Slot < S.T; ++Slot)
      Live[static_cast<size_t>(Slot)] += Full;
    for (int C = 0; C < Rem; ++C)
      ++Live[static_cast<size_t>((Birth + C) % S.T)];
  }
  return Live;
}

int swp::maxLive(const Ddg &G, const ModuloSchedule &S) {
  std::vector<int> Live = livePerSlot(G, S);
  return Live.empty() ? 0 : *std::max_element(Live.begin(), Live.end());
}

std::string swp::renderLifetimes(const Ddg &G, const ModuloSchedule &S) {
  std::string Out =
      strFormat("value lifetimes (steady state, pattern of %d slots):\n",
                S.T);
  for (int I = 0; I < G.numNodes(); ++I) {
    int L = valueLifetime(G, S, I);
    if (L <= 0)
      continue;
    std::vector<int> Cover(static_cast<size_t>(S.T), 0);
    int Full = L / S.T, Rem = L % S.T;
    for (int Slot = 0; Slot < S.T; ++Slot)
      Cover[static_cast<size_t>(Slot)] = Full;
    for (int C = 0; C < Rem; ++C)
      ++Cover[static_cast<size_t>((S.offset(I) + C) % S.T)];
    std::string Line;
    for (int Slot = 0; Slot < S.T; ++Slot) {
      int V = Cover[static_cast<size_t>(Slot)];
      Line += V == 0 ? '.' : (V > 9 ? '+' : static_cast<char>('0' + V));
    }
    Out += strFormat("  %-8s |%s|  lifetime %d\n", G.node(I).Name.c_str(),
                     Line.c_str(), L);
  }
  std::vector<int> Live = livePerSlot(G, S);
  Out += "  live    |";
  for (int Slot = 0; Slot < S.T; ++Slot) {
    int V = Live[static_cast<size_t>(Slot)];
    Out += V > 9 ? "+" : std::to_string(V);
  }
  Out += strFormat("|  MaxLive = %d\n", maxLive(G, S));
  return Out;
}
