//===- Driver.cpp - Rate-optimal scheduling driver ------------------------===//

#include "swp/core/Driver.h"

#include "swp/core/CircularArcs.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/solver/Simplex.h"
#include "swp/support/FaultInjector.h"
#include "swp/support/Stopwatch.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

using namespace swp;

namespace {

enum class ProbeOutcome { Found, NotFound, LpInfeasible };

int ceilDiv(int A, int B) {
  return A >= 0 ? (A + B - 1) / B : -((-A) / B);
}

/// Completes pattern offsets into a full schedule: the K vector by
/// Bellman-Ford over the k-difference constraints, the mapping by first-fit
/// circular-arc coloring.  \returns false when either step fails.
bool completeSchedule(const Ddg &G, const MachineModel &Machine, int T,
                      MappingKind Mapping, const std::vector<int> &Offsets,
                      ModuloSchedule &Out) {
  const int N = G.numNodes();
  // K vector: k_j - k_i >= ceil((lat - T*m + off_i - off_j) / T).
  std::vector<int> K(static_cast<size_t>(N), 0);
  for (int Pass = 0; Pass <= N; ++Pass) {
    bool Changed = false;
    for (const DdgEdge &E : G.edges()) {
      int W = ceilDiv(E.Latency - T * E.Distance +
                          Offsets[static_cast<size_t>(E.Src)] -
                          Offsets[static_cast<size_t>(E.Dst)],
                      T);
      int Cand = K[static_cast<size_t>(E.Src)] + W;
      if (Cand > K[static_cast<size_t>(E.Dst)]) {
        if (Pass == N)
          return false; // Positive cycle: offsets dependence-infeasible.
        K[static_cast<size_t>(E.Dst)] = Cand;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  Out.T = T;
  Out.StartTime.assign(static_cast<size_t>(N), 0);
  for (int I = 0; I < N; ++I)
    Out.StartTime[static_cast<size_t>(I)] =
        K[static_cast<size_t>(I)] * T + Offsets[static_cast<size_t>(I)];
  Out.Mapping.clear();
  if (Mapping == MappingKind::RunTime)
    return true;

  Out.Mapping.assign(static_cast<size_t>(N), 0);
  for (int R = 0; R < Machine.numTypes(); ++R) {
    std::vector<int> Ops = G.nodesOfClass(R);
    if (Ops.empty())
      continue;
    std::vector<int> TypeOffsets;
    std::vector<const ReservationTable *> Tables;
    for (int Op : Ops) {
      TypeOffsets.push_back(Offsets[static_cast<size_t>(Op)]);
      Tables.push_back(&Machine.tableFor(G.node(Op)));
    }
    std::vector<int> Colors = firstFitUnitColoring(Tables, T, TypeOffsets);
    for (size_t Ix = 0; Ix < Ops.size(); ++Ix) {
      if (Colors[Ix] >= Machine.type(R).Count)
        return false; // First-fit needed more units than exist.
      Out.Mapping[static_cast<size_t>(Ops[Ix])] = Colors[Ix];
    }
  }
  return true;
}

/// LP-rounding primal probe (see SchedulerOptions::LpRoundingProbe).  Runs
/// on the shared workspace, so the branch-and-bound that usually follows
/// starts from the relaxation's optimal basis instead of from scratch.
///
/// Two stages: static rounding of the relaxation's optimum, then a
/// dive-and-fix walk (fix the most decided instruction to its
/// highest-mass slot, warm re-solve, round again).  The dive makes the
/// probe robust to which degenerate vertex the simplex happens to land
/// on — static rounding alone is hostage to that tie-break.
ProbeOutcome lpRoundingProbe(const Ddg &G, const MachineModel &Machine, int T,
                             MappingKind Mapping, const MilpModel &M,
                             SparseLp &Workspace, const FormulationVars &Vars,
                             const CancellationToken &Cancel,
                             ModuloSchedule &Out) {
  LpResult Lp = Workspace.solve(Cancel);
  if (Lp.Status == LpStatus::Infeasible)
    return ProbeOutcome::LpInfeasible;
  if (Lp.Status != LpStatus::Optimal)
    return ProbeOutcome::NotFound;

  const int N = G.numNodes();
  // Two rounding variants: argmax of the A column, and the rounded
  // expected offset sum_t t*a[t][i].
  auto tryRound = [&](const std::vector<double> &X) {
    for (int Variant = 0; Variant < 2; ++Variant) {
      std::vector<int> Offsets(static_cast<size_t>(N), 0);
      for (int I = 0; I < N; ++I) {
        if (Variant == 0) {
          double BestVal = -1.0;
          for (int Slot = 0; Slot < T; ++Slot) {
            double V = X[static_cast<size_t>(
                Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(I)])];
            if (V > BestVal + 1e-9) {
              BestVal = V;
              Offsets[static_cast<size_t>(I)] = Slot;
            }
          }
        } else {
          double Expect = 0.0;
          for (int Slot = 0; Slot < T; ++Slot)
            Expect += Slot * X[static_cast<size_t>(
                                 Vars.A[static_cast<size_t>(Slot)]
                                       [static_cast<size_t>(I)])];
          Offsets[static_cast<size_t>(I)] =
              std::min(T - 1, std::max(0, static_cast<int>(
                                              std::llround(Expect))));
        }
      }
      ModuloSchedule Candidate;
      if (!completeSchedule(G, Machine, T, Mapping, Offsets, Candidate))
        continue;
      if (verifySchedule(G, Machine, Candidate).Ok) {
        Out = std::move(Candidate);
        return true;
      }
    }
    return false;
  };
  if (tryRound(Lp.X))
    return ProbeOutcome::Found;

  // Dive-and-fix.  Fixing a slot that turns the LP infeasible is undone
  // by forbidding that slot instead (still a relaxation of the remaining
  // subproblem); a small miss budget bounds the thrashing.  Bounds are
  // local — the model is untouched and the caller's branch-and-bound
  // re-solves under its own bound vectors, warm from wherever the dive
  // ended.
  std::vector<double> Lb(static_cast<size_t>(M.numVars()));
  std::vector<double> Ub(static_cast<size_t>(M.numVars()));
  for (int I = 0; I < M.numVars(); ++I) {
    Lb[static_cast<size_t>(I)] = M.var(I).Lb;
    Ub[static_cast<size_t>(I)] = M.var(I).Ub;
  }
  std::vector<char> FixedOp(static_cast<size_t>(N), 0);
  int Misses = 0;
  for (int Round = 0; Round < 2 * N; ++Round) {
    int BestOp = -1;
    int BestSlot = 0;
    double BestVal = -1.0;
    for (int I = 0; I < N; ++I) {
      if (FixedOp[static_cast<size_t>(I)])
        continue;
      for (int Slot = 0; Slot < T; ++Slot) {
        double V = Lp.X[static_cast<size_t>(
            Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(I)])];
        if (V > BestVal) {
          BestVal = V;
          BestOp = I;
          BestSlot = Slot;
        }
      }
    }
    if (BestOp < 0)
      break; // Everything fixed; the round after the last fix already ran.
    VarId AV =
        Vars.A[static_cast<size_t>(BestSlot)][static_cast<size_t>(BestOp)];
    Lb[static_cast<size_t>(AV)] = 1.0;
    LpResult Next = Workspace.solve(Lb, Ub, Cancel);
    if (Next.Status == LpStatus::Infeasible) {
      Lb[static_cast<size_t>(AV)] = 0.0;
      Ub[static_cast<size_t>(AV)] = 0.0;
      if (++Misses > 3)
        return ProbeOutcome::NotFound;
      Next = Workspace.solve(Lb, Ub, Cancel);
      if (Next.Status != LpStatus::Optimal)
        return ProbeOutcome::NotFound;
      Lp = std::move(Next);
      continue;
    }
    if (Next.Status != LpStatus::Optimal)
      return ProbeOutcome::NotFound; // Cancelled or numerical trouble.
    FixedOp[static_cast<size_t>(BestOp)] = 1;
    Lp = std::move(Next);
    if (tryRound(Lp.X))
      return ProbeOutcome::Found;
  }
  return ProbeOutcome::NotFound;
}

/// Role-maps a structural basis from the previous candidate T's formulation
/// onto the new one: variables with the same meaning in both models (the
/// A[t][i] slots of pattern steps both periods have, the K vector, colors,
/// per-pair overlap/sign variables, per-type CMax, per-edge buffers) carry
/// their basis status across; everything else starts at its lower bound.
/// Purely a crash-basis hint — seedBasis repairs whatever doesn't pivot.
std::vector<LpBasisStatus> mapBasisAcrossT(const TWarmContext &Old, int NewT,
                                           const FormulationVars &NewVars,
                                           int NewNumVars) {
  std::vector<LpBasisStatus> Hints(static_cast<size_t>(NewNumVars),
                                   LpBasisStatus::AtLower);
  auto Put = [&](VarId To, VarId From) {
    if (To < 0 || From < 0)
      return;
    if (static_cast<size_t>(From) >= Old.Basis.size() || To >= NewNumVars)
      return;
    Hints[static_cast<size_t>(To)] = Old.Basis[static_cast<size_t>(From)];
  };

  const size_t SharedT = std::min(
      {static_cast<size_t>(std::min(Old.T, NewT)), Old.Vars.A.size(),
       NewVars.A.size()});
  for (size_t Slot = 0; Slot < SharedT; ++Slot) {
    const size_t N = std::min(Old.Vars.A[Slot].size(), NewVars.A[Slot].size());
    for (size_t I = 0; I < N; ++I)
      Put(NewVars.A[Slot][I], Old.Vars.A[Slot][I]);
  }
  for (size_t I = 0, N = std::min(Old.Vars.K.size(), NewVars.K.size()); I < N;
       ++I)
    Put(NewVars.K[I], Old.Vars.K[I]);
  for (size_t I = 0,
              N = std::min(Old.Vars.Color.size(), NewVars.Color.size());
       I < N; ++I)
    Put(NewVars.Color[I], Old.Vars.Color[I]);
  for (size_t R = 0, N = std::min(Old.Vars.CMax.size(), NewVars.CMax.size());
       R < N; ++R)
    Put(NewVars.CMax[R], Old.Vars.CMax[R]);
  for (size_t E = 0,
              N = std::min(Old.Vars.Buffers.size(), NewVars.Buffers.size());
       E < N; ++E)
    Put(NewVars.Buffers[E], Old.Vars.Buffers[E]);

  if (!NewVars.Pairs.empty() && !Old.Vars.Pairs.empty()) {
    std::unordered_map<std::uint64_t, const FormulationVars::PairVarIds *>
        OldPairs;
    OldPairs.reserve(Old.Vars.Pairs.size());
    auto Key = [](int I, int J) {
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(I))
              << 32) |
             static_cast<std::uint32_t>(J);
    };
    for (const FormulationVars::PairVarIds &P : Old.Vars.Pairs)
      OldPairs[Key(P.OpI, P.OpJ)] = &P;
    for (const FormulationVars::PairVarIds &P : NewVars.Pairs) {
      auto It = OldPairs.find(Key(P.OpI, P.OpJ));
      if (It == OldPairs.end())
        continue;
      Put(P.Overlap, It->second->Overlap);
      Put(P.Sign, It->second->Sign);
    }
  }

  // Instance-mapping variables are T-independent, so their layout matches
  // across candidate T whenever both models took the topology path.
  for (size_t I = 0,
              N = std::min(Old.Vars.Inst.size(), NewVars.Inst.size());
       I < N; ++I)
    for (size_t U = 0, C = std::min(Old.Vars.Inst[I].size(),
                                    NewVars.Inst[I].size());
         U < C; ++U)
      Put(NewVars.Inst[I][U], Old.Vars.Inst[I][U]);
  if (!NewVars.Route.empty() && !Old.Vars.Route.empty()) {
    std::unordered_map<std::uint64_t, VarId> OldRoute;
    OldRoute.reserve(Old.Vars.Route.size());
    auto RKey = [](const FormulationVars::RouteVarIds &R) {
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(R.Edge))
              << 32) |
             (static_cast<std::uint32_t>(R.Unit) << 8) |
             static_cast<std::uint32_t>(R.Hops & 0xff);
    };
    for (const FormulationVars::RouteVarIds &R : Old.Vars.Route)
      OldRoute[RKey(R)] = R.Y;
    for (const FormulationVars::RouteVarIds &R : NewVars.Route) {
      auto It = OldRoute.find(RKey(R));
      if (It != OldRoute.end())
        Put(R.Y, It->second);
    }
  }
  return Hints;
}

} // namespace

MilpStatus swp::scheduleAtT(const Ddg &G, const MachineModel &Machine, int T,
                            const SchedulerOptions &Opts, ModuloSchedule &Out,
                            double *SecondsOut, std::int64_t *NodesOut,
                            SearchStop *StopOut, Status *ErrorOut,
                            TWarmContext *Warm, LpEffort *EffortOut) {
  Stopwatch Watch;
  if (SecondsOut)
    *SecondsOut = 0.0;
  if (NodesOut)
    *NodesOut = 0;
  if (StopOut)
    *StopOut = SearchStop::None;
  if (ErrorOut)
    *ErrorOut = Status();
  if (EffortOut)
    *EffortOut = LpEffort();

  // Malformed inputs become typed errors instead of downstream asserts or
  // garbage models; T < 1 admits no schedule by definition of the
  // initiation interval.
  if (T < 1 || !G.isWellFormed(Machine.numTypes()) || !Machine.acceptsDdg(G)) {
    if (StopOut)
      *StopOut = SearchStop::Fault;
    if (ErrorOut)
      *ErrorOut = Status(StatusCode::InvalidInput,
                         T < 1 ? "initiation interval T must be >= 1"
                               : "DDG is malformed or uses op classes the "
                                 "machine does not define")
                     .withPhase("schedule-at-t")
                     .withT(T)
                     .withInstance(G.name());
    return MilpStatus::Error;
  }

  FaultInjector &FI = FaultInjector::instance();
  // Fault injection: the MILP model allocation fails.
  if (FI.shouldFire(FaultSite::Alloc)) {
    if (StopOut)
      *StopOut = SearchStop::Fault;
    if (ErrorOut)
      *ErrorOut = Status(StatusCode::ResourceExhausted,
                         "injected allocation failure building the MILP model")
                     .withPhase("model-build")
                     .withT(T)
                     .withInstance(G.name());
    return MilpStatus::Error;
  }
  // Fault soundness: an injected spurious "LP infeasible" must never turn
  // into a fake infeasibility proof (and from there into a false
  // rate-optimality claim), so snapshot the site's fire count and
  // downgrade any Infeasible answer produced while it moved.  Concurrent
  // solves can inflate the delta; that only downgrades more, never less.
  const std::uint64_t SpuriousBefore = FI.fired(FaultSite::LpInfeasible);
  auto Faulted = [&FI, SpuriousBefore]() {
    return FI.fired(FaultSite::LpInfeasible) > SpuriousBefore;
  };

  const bool Optimizing = Opts.ColoringObjective || Opts.MinimizeBuffers;
  FormulationOptions FOpts;
  FOpts.Mapping = Opts.Mapping;
  FOpts.ColoringObjective = Opts.ColoringObjective;
  FOpts.BufferObjective = Opts.MinimizeBuffers;
  // Pure feasibility checks can pin one instruction's pattern step
  // (rotation symmetry breaking); the optimizing path keeps the full
  // symmetric model because its warm start is lifted from an un-rotated
  // schedule.
  FOpts.BreakRotation = !Optimizing;
  FormulationVars Vars;
  MilpModel M = buildScheduleModel(G, Machine, T, FOpts, Vars);

  MilpOptions MOpts;
  MOpts.Cancel = Opts.Cancel;
  if (Optimizing) {
    // Get any feasible schedule first (cheap: probe + first-incumbent
    // search) and lift it into a warm start, so a censored optimization
    // never returns anything worse than plain feasibility scheduling.
    // The recursive call also advances the cross-T context, so the
    // optimizing workspace below seeds from a same-T basis.
    SchedulerOptions FeasOpts = Opts;
    FeasOpts.ColoringObjective = false;
    FeasOpts.MinimizeBuffers = false;
    ModuloSchedule FeasSched;
    LpEffort FeasEffort;
    MilpStatus FeasStatus =
        scheduleAtT(G, Machine, T, FeasOpts, FeasSched, nullptr, nullptr,
                    nullptr, nullptr, Warm, &FeasEffort);
    if (EffortOut)
      *EffortOut += FeasEffort;
    if (FeasStatus == MilpStatus::Infeasible) {
      if (SecondsOut)
        *SecondsOut = Watch.seconds();
      return MilpStatus::Infeasible;
    }
    if (FeasStatus == MilpStatus::Optimal ||
        FeasStatus == MilpStatus::Feasible)
      MOpts.WarmStart = scheduleToAssignment(G, Machine, T, FOpts, Vars,
                                             FeasSched, M.numVars());
  }

  // One LP workspace serves the rounding probe and every branch-and-bound
  // node of this T; presolve runs once here.  Seeded from the previous T's
  // final basis when the caller carries a context.
  SparseLp Workspace(M);
  if (Warm && Warm->valid() && M.valid())
    Workspace.seedBasis(mapBasisAcrossT(*Warm, T, Vars, M.numVars()));
  auto Finish = [&](MilpStatus S) {
    if (SecondsOut)
      *SecondsOut = Watch.seconds();
    if (EffortOut) {
      const LpStats &WS = Workspace.stats();
      EffortOut->Pivots += WS.totalPivots();
      EffortOut->Refactorizations += WS.Refactorizations;
      EffortOut->Solves += WS.Solves;
      EffortOut->WarmSolves += WS.WarmSolves;
    }
    if (Warm && M.valid()) {
      Warm->T = T;
      Warm->Vars = Vars;
      Warm->Basis = Workspace.structuralBasis();
    }
    return S;
  };

  // The rounding probe completes offsets with a topology-blind first-fit
  // coloring; on a constraining topology its candidates essentially never
  // verify, so skip straight to branch and bound there.
  const bool ProbeUseful = !(Opts.Mapping == MappingKind::Fixed &&
                             Machine.topologyConstrains());
  if (!Optimizing && Opts.LpRoundingProbe && ProbeUseful) {
    // Primal probe: can settle feasibility (rounded incumbent) or
    // infeasibility (LP relaxation empty) without branching.  The dive
    // stage gets a slice of the per-T budget via a nested deadline so a
    // slow dive can never starve the branch-and-bound that follows.
    CancellationSource ProbeDeadline(Opts.Cancel);
    if (Opts.TimeLimitPerT < 1e8)
      ProbeDeadline.setDeadlineAfter(Opts.TimeLimitPerT * 0.25);
    ModuloSchedule Probed;
    ProbeOutcome Probe =
        lpRoundingProbe(G, Machine, T, Opts.Mapping, M, Workspace, Vars,
                        ProbeDeadline.token(), Probed);
    if (Probe == ProbeOutcome::LpInfeasible) {
      if (Faulted()) {
        if (StopOut)
          *StopOut = SearchStop::Fault;
        return Finish(MilpStatus::Unknown);
      }
      return Finish(MilpStatus::Infeasible);
    }
    if (Probe == ProbeOutcome::Found) {
      Out = std::move(Probed);
      return Finish(MilpStatus::Optimal);
    }
  }

  MOpts.TimeLimitSec = Opts.TimeLimitPerT;
  MOpts.NodeLimit = Opts.NodeLimitPerT;
  MOpts.StopAtFirstIncumbent = !Optimizing;
  MilpResult Res = solveMilp(Workspace, M, MOpts);
  Finish(Res.Status);
  if (NodesOut)
    *NodesOut = Res.Nodes;
  if (StopOut)
    *StopOut = Res.StopReason;
  if (Res.Status == MilpStatus::Error && ErrorOut)
    *ErrorOut = Status(Res.Error)
                    .withPhase("milp")
                    .withT(T)
                    .withInstance(G.name());
  if (Res.Status == MilpStatus::Infeasible && Faulted()) {
    if (StopOut)
      *StopOut = SearchStop::Fault;
    return MilpStatus::Unknown;
  }
  if (Res.hasSolution())
    Out = extractSchedule(G, Machine, T, FOpts, Vars, Res.X);
  return Res.Status;
}

SchedulerResult swp::scheduleLoop(const Ddg &G, const MachineModel &Machine,
                                  const SchedulerOptions &Opts) {
  SchedulerResult Result;
  // Validate before any analysis: recurrenceMii asserts on zero-distance
  // cycles, and a DDG referencing op classes the machine lacks has no
  // reservation tables to schedule against.  Such inputs return a typed
  // error, never an abort.
  if (!G.isWellFormed(Machine.numTypes()) || !Machine.acceptsDdg(G)) {
    Result.Error = Status(StatusCode::InvalidInput,
                          "DDG is malformed or uses op classes the machine "
                          "does not define")
                       .withPhase("driver")
                       .withInstance(G.name());
    return Result;
  }
  Result.TDep = recurrenceMii(G);
  Result.TRes = Machine.resourceMii(G);
  Result.TLowerBound = std::max({1, Result.TDep, Result.TRes});

  const std::uint64_t FiredBefore = FaultInjector::instance().totalFired();
  Stopwatch Total;
  bool AllBelowProven = true;
  // Basis carry across the candidate-T sweep: consecutive T solve nearly
  // the same model, so each workspace starts from the previous T's basis.
  TWarmContext Warm;
  TWarmContext *WarmPtr = Opts.WarmStartAcrossT ? &Warm : nullptr;
  for (int T = Result.TLowerBound;
       T <= Result.TLowerBound + Opts.MaxTSlack; ++T) {
    if (Opts.Cancel.cancelled()) {
      Result.Cancelled = true;
      break;
    }
    TAttempt Attempt;
    Attempt.T = T;
    if (!Machine.moduloFeasible(G, T)) {
      // No fixed-assignment schedule can exist at this T (paper Sec. 2);
      // the skip is itself a proof of infeasibility.
      Attempt.ModuloSkipped = true;
      Attempt.Status = MilpStatus::Infeasible;
      Result.Attempts.push_back(Attempt);
      continue;
    }

    ModuloSchedule Candidate;
    Status AttemptError;
    Attempt.Status = scheduleAtT(G, Machine, T, Opts, Candidate,
                                 &Attempt.Seconds, &Attempt.Nodes,
                                 &Attempt.StopReason, &AttemptError, WarmPtr,
                                 &Attempt.Lp);
    Result.TotalNodes += Attempt.Nodes;
    Result.TotalLp += Attempt.Lp;
    Result.Attempts.push_back(Attempt);

    if (Attempt.StopReason == SearchStop::Cancelled)
      Result.Cancelled = true;

    if (Attempt.Status == MilpStatus::Error) {
      // Keep the first typed error for the caller.  Invalid input will
      // fail identically at every T, so stop; transient faults (injected
      // allocation death) leave larger T worth trying, but this T's proof
      // is censored.
      if (Result.Error.isOk())
        Result.Error = AttemptError;
      AllBelowProven = false;
      if (AttemptError.code() == StatusCode::InvalidInput)
        break;
      continue;
    }

    if (Attempt.Status == MilpStatus::Optimal ||
        Attempt.Status == MilpStatus::Feasible) {
      if (Opts.VerifySchedules) {
        VerifyResult V = verifySchedule(G, Machine, Candidate);
        if (!V.Ok) {
          Result.VerifyFailed = true;
          break;
        }
      }
      Result.Schedule = std::move(Candidate);
      Result.ProvenRateOptimal = AllBelowProven;
      break;
    }
    if (Attempt.Status != MilpStatus::Infeasible)
      AllBelowProven = false; // Limit censored the proof at this T.
    if (Result.Cancelled)
      break; // A cancelled attempt proves nothing; larger T are moot too.
  }
  Result.FaultsSeen =
      FaultInjector::instance().totalFired() > FiredBefore;
  Result.TotalSeconds = Total.seconds();
  return Result;
}

const char *swp::fallbackRungName(FallbackRung R) {
  switch (R) {
  case FallbackRung::None:
    return "none";
  case FallbackRung::SlackModulo:
    return "slack-modulo";
  case FallbackRung::IterativeModulo:
    return "iterative-modulo";
  }
  return "?";
}

std::string SchedulerResult::stopChain() const {
  std::string Out;
  for (const TAttempt &A : Attempts) {
    if (!Out.empty())
      Out += "; ";
    Out += "T=" + std::to_string(A.T) + " ";
    if (A.ModuloSkipped) {
      Out += "modulo-skip";
      continue;
    }
    Out += milpStatusName(A.Status);
    if (A.StopReason != SearchStop::None)
      Out += std::string("/") + searchStopName(A.StopReason);
  }
  if (Out.empty())
    Out = Cancelled ? "cancelled before any attempt" : "no attempts";
  return Out;
}
