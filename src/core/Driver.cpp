//===- Driver.cpp - Rate-optimal scheduling driver ------------------------===//

#include "swp/core/Driver.h"

#include "swp/core/CircularArcs.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/solver/Simplex.h"
#include "swp/support/FaultInjector.h"
#include "swp/support/Stopwatch.h"

#include <algorithm>
#include <cmath>

using namespace swp;

namespace {

enum class ProbeOutcome { Found, NotFound, LpInfeasible };

int ceilDiv(int A, int B) {
  return A >= 0 ? (A + B - 1) / B : -((-A) / B);
}

/// Completes pattern offsets into a full schedule: the K vector by
/// Bellman-Ford over the k-difference constraints, the mapping by first-fit
/// circular-arc coloring.  \returns false when either step fails.
bool completeSchedule(const Ddg &G, const MachineModel &Machine, int T,
                      MappingKind Mapping, const std::vector<int> &Offsets,
                      ModuloSchedule &Out) {
  const int N = G.numNodes();
  // K vector: k_j - k_i >= ceil((lat - T*m + off_i - off_j) / T).
  std::vector<int> K(static_cast<size_t>(N), 0);
  for (int Pass = 0; Pass <= N; ++Pass) {
    bool Changed = false;
    for (const DdgEdge &E : G.edges()) {
      int W = ceilDiv(E.Latency - T * E.Distance +
                          Offsets[static_cast<size_t>(E.Src)] -
                          Offsets[static_cast<size_t>(E.Dst)],
                      T);
      int Cand = K[static_cast<size_t>(E.Src)] + W;
      if (Cand > K[static_cast<size_t>(E.Dst)]) {
        if (Pass == N)
          return false; // Positive cycle: offsets dependence-infeasible.
        K[static_cast<size_t>(E.Dst)] = Cand;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  Out.T = T;
  Out.StartTime.assign(static_cast<size_t>(N), 0);
  for (int I = 0; I < N; ++I)
    Out.StartTime[static_cast<size_t>(I)] =
        K[static_cast<size_t>(I)] * T + Offsets[static_cast<size_t>(I)];
  Out.Mapping.clear();
  if (Mapping == MappingKind::RunTime)
    return true;

  Out.Mapping.assign(static_cast<size_t>(N), 0);
  for (int R = 0; R < Machine.numTypes(); ++R) {
    std::vector<int> Ops = G.nodesOfClass(R);
    if (Ops.empty())
      continue;
    std::vector<int> TypeOffsets;
    std::vector<const ReservationTable *> Tables;
    for (int Op : Ops) {
      TypeOffsets.push_back(Offsets[static_cast<size_t>(Op)]);
      Tables.push_back(&Machine.tableFor(G.node(Op)));
    }
    std::vector<int> Colors = firstFitUnitColoring(Tables, T, TypeOffsets);
    for (size_t Ix = 0; Ix < Ops.size(); ++Ix) {
      if (Colors[Ix] >= Machine.type(R).Count)
        return false; // First-fit needed more units than exist.
      Out.Mapping[static_cast<size_t>(Ops[Ix])] = Colors[Ix];
    }
  }
  return true;
}

/// LP-rounding primal probe (see SchedulerOptions::LpRoundingProbe).
ProbeOutcome lpRoundingProbe(const Ddg &G, const MachineModel &Machine, int T,
                             MappingKind Mapping, const MilpModel &M,
                             const FormulationVars &Vars,
                             const CancellationToken &Cancel,
                             ModuloSchedule &Out) {
  LpResult Lp = solveLp(M, Cancel);
  if (Lp.Status == LpStatus::Infeasible)
    return ProbeOutcome::LpInfeasible;
  if (Lp.Status != LpStatus::Optimal)
    return ProbeOutcome::NotFound;

  const int N = G.numNodes();
  // Two rounding variants: argmax of the A column, and the rounded
  // expected offset sum_t t*a[t][i].
  for (int Variant = 0; Variant < 2; ++Variant) {
    std::vector<int> Offsets(static_cast<size_t>(N), 0);
    for (int I = 0; I < N; ++I) {
      if (Variant == 0) {
        double BestVal = -1.0;
        for (int Slot = 0; Slot < T; ++Slot) {
          double V = Lp.X[static_cast<size_t>(
              Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(I)])];
          if (V > BestVal + 1e-9) {
            BestVal = V;
            Offsets[static_cast<size_t>(I)] = Slot;
          }
        }
      } else {
        double Expect = 0.0;
        for (int Slot = 0; Slot < T; ++Slot)
          Expect += Slot * Lp.X[static_cast<size_t>(
                               Vars.A[static_cast<size_t>(Slot)]
                                     [static_cast<size_t>(I)])];
        Offsets[static_cast<size_t>(I)] =
            std::min(T - 1, std::max(0, static_cast<int>(
                                            std::llround(Expect))));
      }
    }
    ModuloSchedule Candidate;
    if (!completeSchedule(G, Machine, T, Mapping, Offsets, Candidate))
      continue;
    if (verifySchedule(G, Machine, Candidate).Ok) {
      Out = std::move(Candidate);
      return ProbeOutcome::Found;
    }
  }
  return ProbeOutcome::NotFound;
}

} // namespace

MilpStatus swp::scheduleAtT(const Ddg &G, const MachineModel &Machine, int T,
                            const SchedulerOptions &Opts, ModuloSchedule &Out,
                            double *SecondsOut, std::int64_t *NodesOut,
                            SearchStop *StopOut, Status *ErrorOut) {
  Stopwatch Watch;
  if (SecondsOut)
    *SecondsOut = 0.0;
  if (NodesOut)
    *NodesOut = 0;
  if (StopOut)
    *StopOut = SearchStop::None;
  if (ErrorOut)
    *ErrorOut = Status();

  // Malformed inputs become typed errors instead of downstream asserts or
  // garbage models; T < 1 admits no schedule by definition of the
  // initiation interval.
  if (T < 1 || !G.isWellFormed(Machine.numTypes()) || !Machine.acceptsDdg(G)) {
    if (StopOut)
      *StopOut = SearchStop::Fault;
    if (ErrorOut)
      *ErrorOut = Status(StatusCode::InvalidInput,
                         T < 1 ? "initiation interval T must be >= 1"
                               : "DDG is malformed or uses op classes the "
                                 "machine does not define")
                     .withPhase("schedule-at-t")
                     .withT(T)
                     .withInstance(G.name());
    return MilpStatus::Error;
  }

  FaultInjector &FI = FaultInjector::instance();
  // Fault injection: the MILP model allocation fails.
  if (FI.shouldFire(FaultSite::Alloc)) {
    if (StopOut)
      *StopOut = SearchStop::Fault;
    if (ErrorOut)
      *ErrorOut = Status(StatusCode::ResourceExhausted,
                         "injected allocation failure building the MILP model")
                     .withPhase("model-build")
                     .withT(T)
                     .withInstance(G.name());
    return MilpStatus::Error;
  }
  // Fault soundness: an injected spurious "LP infeasible" must never turn
  // into a fake infeasibility proof (and from there into a false
  // rate-optimality claim), so snapshot the site's fire count and
  // downgrade any Infeasible answer produced while it moved.  Concurrent
  // solves can inflate the delta; that only downgrades more, never less.
  const std::uint64_t SpuriousBefore = FI.fired(FaultSite::LpInfeasible);
  auto Faulted = [&FI, SpuriousBefore]() {
    return FI.fired(FaultSite::LpInfeasible) > SpuriousBefore;
  };

  const bool Optimizing = Opts.ColoringObjective || Opts.MinimizeBuffers;
  FormulationOptions FOpts;
  FOpts.Mapping = Opts.Mapping;
  FOpts.ColoringObjective = Opts.ColoringObjective;
  FOpts.BufferObjective = Opts.MinimizeBuffers;
  FormulationVars Vars;
  MilpModel M = buildScheduleModel(G, Machine, T, FOpts, Vars);

  MilpOptions MOpts;
  MOpts.Cancel = Opts.Cancel;
  if (Optimizing) {
    // Get any feasible schedule first (cheap: probe + first-incumbent
    // search) and lift it into a warm start, so a censored optimization
    // never returns anything worse than plain feasibility scheduling.
    SchedulerOptions FeasOpts = Opts;
    FeasOpts.ColoringObjective = false;
    FeasOpts.MinimizeBuffers = false;
    ModuloSchedule FeasSched;
    MilpStatus FeasStatus =
        scheduleAtT(G, Machine, T, FeasOpts, FeasSched);
    if (FeasStatus == MilpStatus::Infeasible) {
      if (SecondsOut)
        *SecondsOut = Watch.seconds();
      return MilpStatus::Infeasible;
    }
    if (FeasStatus == MilpStatus::Optimal ||
        FeasStatus == MilpStatus::Feasible)
      MOpts.WarmStart = scheduleToAssignment(G, Machine, T, FOpts, Vars,
                                             FeasSched, M.numVars());
  } else if (Opts.LpRoundingProbe) {
    // Primal probe: can settle feasibility (rounded incumbent) or
    // infeasibility (LP relaxation empty) without branching.
    ModuloSchedule Probed;
    ProbeOutcome Probe = lpRoundingProbe(G, Machine, T, Opts.Mapping, M, Vars,
                                         Opts.Cancel, Probed);
    if (Probe == ProbeOutcome::LpInfeasible) {
      if (SecondsOut)
        *SecondsOut = Watch.seconds();
      if (Faulted()) {
        if (StopOut)
          *StopOut = SearchStop::Fault;
        return MilpStatus::Unknown;
      }
      return MilpStatus::Infeasible;
    }
    if (Probe == ProbeOutcome::Found) {
      Out = std::move(Probed);
      if (SecondsOut)
        *SecondsOut = Watch.seconds();
      return MilpStatus::Optimal;
    }
  }

  MOpts.TimeLimitSec = Opts.TimeLimitPerT;
  MOpts.NodeLimit = Opts.NodeLimitPerT;
  MOpts.StopAtFirstIncumbent = !Optimizing;
  MilpResult Res = solveMilp(M, MOpts);
  if (SecondsOut)
    *SecondsOut = Watch.seconds();
  if (NodesOut)
    *NodesOut = Res.Nodes;
  if (StopOut)
    *StopOut = Res.StopReason;
  if (Res.Status == MilpStatus::Error && ErrorOut)
    *ErrorOut = Status(Res.Error)
                    .withPhase("milp")
                    .withT(T)
                    .withInstance(G.name());
  if (Res.Status == MilpStatus::Infeasible && Faulted()) {
    if (StopOut)
      *StopOut = SearchStop::Fault;
    return MilpStatus::Unknown;
  }
  if (Res.hasSolution())
    Out = extractSchedule(G, Machine, T, FOpts, Vars, Res.X);
  return Res.Status;
}

SchedulerResult swp::scheduleLoop(const Ddg &G, const MachineModel &Machine,
                                  const SchedulerOptions &Opts) {
  SchedulerResult Result;
  // Validate before any analysis: recurrenceMii asserts on zero-distance
  // cycles, and a DDG referencing op classes the machine lacks has no
  // reservation tables to schedule against.  Such inputs return a typed
  // error, never an abort.
  if (!G.isWellFormed(Machine.numTypes()) || !Machine.acceptsDdg(G)) {
    Result.Error = Status(StatusCode::InvalidInput,
                          "DDG is malformed or uses op classes the machine "
                          "does not define")
                       .withPhase("driver")
                       .withInstance(G.name());
    return Result;
  }
  Result.TDep = recurrenceMii(G);
  Result.TRes = Machine.resourceMii(G);
  Result.TLowerBound = std::max({1, Result.TDep, Result.TRes});

  const std::uint64_t FiredBefore = FaultInjector::instance().totalFired();
  Stopwatch Total;
  bool AllBelowProven = true;
  for (int T = Result.TLowerBound;
       T <= Result.TLowerBound + Opts.MaxTSlack; ++T) {
    if (Opts.Cancel.cancelled()) {
      Result.Cancelled = true;
      break;
    }
    TAttempt Attempt;
    Attempt.T = T;
    if (!Machine.moduloFeasible(G, T)) {
      // No fixed-assignment schedule can exist at this T (paper Sec. 2);
      // the skip is itself a proof of infeasibility.
      Attempt.ModuloSkipped = true;
      Attempt.Status = MilpStatus::Infeasible;
      Result.Attempts.push_back(Attempt);
      continue;
    }

    ModuloSchedule Candidate;
    Status AttemptError;
    Attempt.Status = scheduleAtT(G, Machine, T, Opts, Candidate,
                                 &Attempt.Seconds, &Attempt.Nodes,
                                 &Attempt.StopReason, &AttemptError);
    Result.TotalNodes += Attempt.Nodes;
    Result.Attempts.push_back(Attempt);

    if (Attempt.StopReason == SearchStop::Cancelled)
      Result.Cancelled = true;

    if (Attempt.Status == MilpStatus::Error) {
      // Keep the first typed error for the caller.  Invalid input will
      // fail identically at every T, so stop; transient faults (injected
      // allocation death) leave larger T worth trying, but this T's proof
      // is censored.
      if (Result.Error.isOk())
        Result.Error = AttemptError;
      AllBelowProven = false;
      if (AttemptError.code() == StatusCode::InvalidInput)
        break;
      continue;
    }

    if (Attempt.Status == MilpStatus::Optimal ||
        Attempt.Status == MilpStatus::Feasible) {
      if (Opts.VerifySchedules) {
        VerifyResult V = verifySchedule(G, Machine, Candidate);
        if (!V.Ok) {
          Result.VerifyFailed = true;
          break;
        }
      }
      Result.Schedule = std::move(Candidate);
      Result.ProvenRateOptimal = AllBelowProven;
      break;
    }
    if (Attempt.Status != MilpStatus::Infeasible)
      AllBelowProven = false; // Limit censored the proof at this T.
    if (Result.Cancelled)
      break; // A cancelled attempt proves nothing; larger T are moot too.
  }
  Result.FaultsSeen =
      FaultInjector::instance().totalFired() > FiredBefore;
  Result.TotalSeconds = Total.seconds();
  return Result;
}

const char *swp::fallbackRungName(FallbackRung R) {
  switch (R) {
  case FallbackRung::None:
    return "none";
  case FallbackRung::SlackModulo:
    return "slack-modulo";
  case FallbackRung::IterativeModulo:
    return "iterative-modulo";
  }
  return "?";
}

std::string SchedulerResult::stopChain() const {
  std::string Out;
  for (const TAttempt &A : Attempts) {
    if (!Out.empty())
      Out += "; ";
    Out += "T=" + std::to_string(A.T) + " ";
    if (A.ModuloSkipped) {
      Out += "modulo-skip";
      continue;
    }
    Out += milpStatusName(A.Status);
    if (A.StopReason != SearchStop::None)
      Out += std::string("/") + searchStopName(A.StopReason);
  }
  if (Out.empty())
    Out = Cancelled ? "cancelled before any attempt" : "no attempts";
  return Out;
}
