//===- Driver.cpp - Rate-optimal scheduling driver ------------------------===//

#include "swp/core/Driver.h"

#include "swp/core/CircularArcs.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/solver/Simplex.h"
#include "swp/support/Stopwatch.h"

#include <algorithm>
#include <cmath>

using namespace swp;

namespace {

enum class ProbeOutcome { Found, NotFound, LpInfeasible };

int ceilDiv(int A, int B) {
  return A >= 0 ? (A + B - 1) / B : -((-A) / B);
}

/// Completes pattern offsets into a full schedule: the K vector by
/// Bellman-Ford over the k-difference constraints, the mapping by first-fit
/// circular-arc coloring.  \returns false when either step fails.
bool completeSchedule(const Ddg &G, const MachineModel &Machine, int T,
                      MappingKind Mapping, const std::vector<int> &Offsets,
                      ModuloSchedule &Out) {
  const int N = G.numNodes();
  // K vector: k_j - k_i >= ceil((lat - T*m + off_i - off_j) / T).
  std::vector<int> K(static_cast<size_t>(N), 0);
  for (int Pass = 0; Pass <= N; ++Pass) {
    bool Changed = false;
    for (const DdgEdge &E : G.edges()) {
      int W = ceilDiv(E.Latency - T * E.Distance +
                          Offsets[static_cast<size_t>(E.Src)] -
                          Offsets[static_cast<size_t>(E.Dst)],
                      T);
      int Cand = K[static_cast<size_t>(E.Src)] + W;
      if (Cand > K[static_cast<size_t>(E.Dst)]) {
        if (Pass == N)
          return false; // Positive cycle: offsets dependence-infeasible.
        K[static_cast<size_t>(E.Dst)] = Cand;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  Out.T = T;
  Out.StartTime.assign(static_cast<size_t>(N), 0);
  for (int I = 0; I < N; ++I)
    Out.StartTime[static_cast<size_t>(I)] =
        K[static_cast<size_t>(I)] * T + Offsets[static_cast<size_t>(I)];
  Out.Mapping.clear();
  if (Mapping == MappingKind::RunTime)
    return true;

  Out.Mapping.assign(static_cast<size_t>(N), 0);
  for (int R = 0; R < Machine.numTypes(); ++R) {
    std::vector<int> Ops = G.nodesOfClass(R);
    if (Ops.empty())
      continue;
    std::vector<int> TypeOffsets;
    std::vector<const ReservationTable *> Tables;
    for (int Op : Ops) {
      TypeOffsets.push_back(Offsets[static_cast<size_t>(Op)]);
      Tables.push_back(&Machine.tableFor(G.node(Op)));
    }
    std::vector<int> Colors = firstFitUnitColoring(Tables, T, TypeOffsets);
    for (size_t Ix = 0; Ix < Ops.size(); ++Ix) {
      if (Colors[Ix] >= Machine.type(R).Count)
        return false; // First-fit needed more units than exist.
      Out.Mapping[static_cast<size_t>(Ops[Ix])] = Colors[Ix];
    }
  }
  return true;
}

/// LP-rounding primal probe (see SchedulerOptions::LpRoundingProbe).
ProbeOutcome lpRoundingProbe(const Ddg &G, const MachineModel &Machine, int T,
                             MappingKind Mapping, const MilpModel &M,
                             const FormulationVars &Vars,
                             ModuloSchedule &Out) {
  LpResult Lp = solveLp(M);
  if (Lp.Status == LpStatus::Infeasible)
    return ProbeOutcome::LpInfeasible;
  if (Lp.Status != LpStatus::Optimal)
    return ProbeOutcome::NotFound;

  const int N = G.numNodes();
  // Two rounding variants: argmax of the A column, and the rounded
  // expected offset sum_t t*a[t][i].
  for (int Variant = 0; Variant < 2; ++Variant) {
    std::vector<int> Offsets(static_cast<size_t>(N), 0);
    for (int I = 0; I < N; ++I) {
      if (Variant == 0) {
        double BestVal = -1.0;
        for (int Slot = 0; Slot < T; ++Slot) {
          double V = Lp.X[static_cast<size_t>(
              Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(I)])];
          if (V > BestVal + 1e-9) {
            BestVal = V;
            Offsets[static_cast<size_t>(I)] = Slot;
          }
        }
      } else {
        double Expect = 0.0;
        for (int Slot = 0; Slot < T; ++Slot)
          Expect += Slot * Lp.X[static_cast<size_t>(
                               Vars.A[static_cast<size_t>(Slot)]
                                     [static_cast<size_t>(I)])];
        Offsets[static_cast<size_t>(I)] =
            std::min(T - 1, std::max(0, static_cast<int>(
                                            std::llround(Expect))));
      }
    }
    ModuloSchedule Candidate;
    if (!completeSchedule(G, Machine, T, Mapping, Offsets, Candidate))
      continue;
    if (verifySchedule(G, Machine, Candidate).Ok) {
      Out = std::move(Candidate);
      return ProbeOutcome::Found;
    }
  }
  return ProbeOutcome::NotFound;
}

} // namespace

MilpStatus swp::scheduleAtT(const Ddg &G, const MachineModel &Machine, int T,
                            const SchedulerOptions &Opts, ModuloSchedule &Out,
                            double *SecondsOut, std::int64_t *NodesOut,
                            SearchStop *StopOut) {
  Stopwatch Watch;
  const bool Optimizing = Opts.ColoringObjective || Opts.MinimizeBuffers;
  FormulationOptions FOpts;
  FOpts.Mapping = Opts.Mapping;
  FOpts.ColoringObjective = Opts.ColoringObjective;
  FOpts.BufferObjective = Opts.MinimizeBuffers;
  FormulationVars Vars;
  MilpModel M = buildScheduleModel(G, Machine, T, FOpts, Vars);

  if (SecondsOut)
    *SecondsOut = 0.0;
  if (NodesOut)
    *NodesOut = 0;
  if (StopOut)
    *StopOut = SearchStop::None;

  MilpOptions MOpts;
  MOpts.Cancel = Opts.Cancel;
  if (Optimizing) {
    // Get any feasible schedule first (cheap: probe + first-incumbent
    // search) and lift it into a warm start, so a censored optimization
    // never returns anything worse than plain feasibility scheduling.
    SchedulerOptions FeasOpts = Opts;
    FeasOpts.ColoringObjective = false;
    FeasOpts.MinimizeBuffers = false;
    ModuloSchedule FeasSched;
    MilpStatus FeasStatus =
        scheduleAtT(G, Machine, T, FeasOpts, FeasSched);
    if (FeasStatus == MilpStatus::Infeasible) {
      if (SecondsOut)
        *SecondsOut = Watch.seconds();
      return MilpStatus::Infeasible;
    }
    if (FeasStatus == MilpStatus::Optimal ||
        FeasStatus == MilpStatus::Feasible)
      MOpts.WarmStart = scheduleToAssignment(G, Machine, T, FOpts, Vars,
                                             FeasSched, M.numVars());
  } else if (Opts.LpRoundingProbe) {
    // Primal probe: can settle feasibility (rounded incumbent) or
    // infeasibility (LP relaxation empty) without branching.
    ModuloSchedule Probed;
    ProbeOutcome Probe =
        lpRoundingProbe(G, Machine, T, Opts.Mapping, M, Vars, Probed);
    if (Probe == ProbeOutcome::LpInfeasible) {
      if (SecondsOut)
        *SecondsOut = Watch.seconds();
      return MilpStatus::Infeasible;
    }
    if (Probe == ProbeOutcome::Found) {
      Out = std::move(Probed);
      if (SecondsOut)
        *SecondsOut = Watch.seconds();
      return MilpStatus::Optimal;
    }
  }

  MOpts.TimeLimitSec = Opts.TimeLimitPerT;
  MOpts.NodeLimit = Opts.NodeLimitPerT;
  MOpts.StopAtFirstIncumbent = !Optimizing;
  MilpResult Res = solveMilp(M, MOpts);
  if (SecondsOut)
    *SecondsOut = Watch.seconds();
  if (NodesOut)
    *NodesOut = Res.Nodes;
  if (StopOut)
    *StopOut = Res.StopReason;
  if (Res.hasSolution())
    Out = extractSchedule(G, Machine, T, FOpts, Vars, Res.X);
  return Res.Status;
}

SchedulerResult swp::scheduleLoop(const Ddg &G, const MachineModel &Machine,
                                  const SchedulerOptions &Opts) {
  SchedulerResult Result;
  Result.TDep = recurrenceMii(G);
  Result.TRes = Machine.resourceMii(G);
  Result.TLowerBound = std::max({1, Result.TDep, Result.TRes});

  Stopwatch Total;
  bool AllBelowProven = true;
  for (int T = Result.TLowerBound;
       T <= Result.TLowerBound + Opts.MaxTSlack; ++T) {
    if (Opts.Cancel.cancelled()) {
      Result.Cancelled = true;
      break;
    }
    TAttempt Attempt;
    Attempt.T = T;
    if (!Machine.moduloFeasible(G, T)) {
      // No fixed-assignment schedule can exist at this T (paper Sec. 2);
      // the skip is itself a proof of infeasibility.
      Attempt.ModuloSkipped = true;
      Attempt.Status = MilpStatus::Infeasible;
      Result.Attempts.push_back(Attempt);
      continue;
    }

    ModuloSchedule Candidate;
    Attempt.Status = scheduleAtT(G, Machine, T, Opts, Candidate,
                                 &Attempt.Seconds, &Attempt.Nodes,
                                 &Attempt.StopReason);
    Result.TotalNodes += Attempt.Nodes;
    Result.Attempts.push_back(Attempt);

    if (Attempt.StopReason == SearchStop::Cancelled)
      Result.Cancelled = true;

    if (Attempt.Status == MilpStatus::Optimal ||
        Attempt.Status == MilpStatus::Feasible) {
      if (Opts.VerifySchedules) {
        VerifyResult V = verifySchedule(G, Machine, Candidate);
        if (!V.Ok) {
          Result.VerifyFailed = true;
          break;
        }
      }
      Result.Schedule = std::move(Candidate);
      Result.ProvenRateOptimal = AllBelowProven;
      break;
    }
    if (Attempt.Status != MilpStatus::Infeasible)
      AllBelowProven = false; // Limit censored the proof at this T.
    if (Result.Cancelled)
      break; // A cancelled attempt proves nothing; larger T are moot too.
  }
  Result.TotalSeconds = Total.seconds();
  return Result;
}
