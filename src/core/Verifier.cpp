//===- Verifier.cpp - Schedule legality checking --------------------------===//

#include "swp/core/Verifier.h"

#include "swp/support/Format.h"

#include <algorithm>
#include <map>
#include <tuple>

using namespace swp;

namespace {

VerifyResult fail(std::string Msg) {
  VerifyResult R;
  R.Ok = false;
  R.Error = std::move(Msg);
  return R;
}

} // namespace

VerifyResult swp::verifySchedule(const Ddg &G, const MachineModel &Machine,
                                 const ModuloSchedule &S) {
  const int N = G.numNodes();
  if (S.T < 1)
    return fail("period T must be >= 1");
  if (static_cast<int>(S.StartTime.size()) != N)
    return fail("start-time vector size mismatch");
  if (S.hasMapping() && static_cast<int>(S.Mapping.size()) != N)
    return fail("mapping vector size mismatch");
  if (!G.isWellFormed(Machine.numTypes()) || !Machine.acceptsDdg(G))
    return fail("malformed DDG for this machine");

  for (int I = 0; I < N; ++I)
    if (S.StartTime[static_cast<size_t>(I)] < 0)
      return fail(strFormat("negative start time for %s",
                            G.node(I).Name.c_str()));

  // Dependences: t_j - t_i >= latency - T*m_ij (paper Eq. 4/8).
  for (const DdgEdge &E : G.edges()) {
    int Ti = S.StartTime[static_cast<size_t>(E.Src)];
    int Tj = S.StartTime[static_cast<size_t>(E.Dst)];
    if (Tj - Ti < E.Latency - S.T * E.Distance)
      return fail(strFormat(
          "dependence %s -> %s violated: %d - %d < %d - %d*%d",
          G.node(E.Src).Name.c_str(), G.node(E.Dst).Name.c_str(), Tj, Ti,
          E.Latency, S.T, E.Distance));
  }

  // Modulo-scheduling precondition per used table (variant-aware).
  for (int I = 0; I < N; ++I)
    if (!Machine.tableFor(G.node(I)).satisfiesModuloConstraint(S.T))
      return fail(strFormat("%s violates the modulo constraint at T=%d",
                            G.node(I).Name.c_str(), S.T));

  if (S.hasMapping()) {
    // Exact per-unit conflict check via reservation-table offset deltas.
    for (int R = 0; R < Machine.numTypes(); ++R) {
      const FuType &Ty = Machine.type(R);
      std::vector<int> Ops = G.nodesOfClass(R);
      for (size_t A = 0; A < Ops.size(); ++A) {
        int U = S.Mapping[static_cast<size_t>(Ops[A])];
        if (U < 0 || U >= Ty.Count)
          return fail(strFormat("instruction %s mapped to bad unit %d",
                                G.node(Ops[A]).Name.c_str(), U));
        for (size_t B = A + 1; B < Ops.size(); ++B) {
          if (S.Mapping[static_cast<size_t>(Ops[B])] != U)
            continue;
          int Delta =
              ((S.offset(Ops[B]) - S.offset(Ops[A])) % S.T + S.T) % S.T;
          if (tablesConflictAtOffset(Machine.tableFor(G.node(Ops[A])),
                                     Machine.tableFor(G.node(Ops[B])), Delta,
                                     S.T))
            return fail(strFormat(
                "%s and %s collide on unit %s#%d",
                G.node(Ops[A]).Name.c_str(), G.node(Ops[B]).Name.c_str(),
                Ty.Name.c_str(), U));
        }
      }
    }

    if (Machine.topologyConstrains()) {
      const Topology &Topo = *Machine.topology();
      // Per-edge placement legality: reachability, hop bound, and the
      // route-penalty-tightened dependence window.
      for (const DdgEdge &E : G.edges()) {
        int U = Machine.globalUnitIndex(G.node(E.Src).OpClass,
                                        S.Mapping[static_cast<size_t>(E.Src)]);
        int V = Machine.globalUnitIndex(G.node(E.Dst).OpClass,
                                        S.Mapping[static_cast<size_t>(E.Dst)]);
        if (!Topo.feedAllowed(U, V))
          return fail(strFormat(
              "topology forbids %s (%s) feeding %s (%s)",
              G.node(E.Src).Name.c_str(), Topo.unitName(U).c_str(),
              G.node(E.Dst).Name.c_str(), Topo.unitName(V).c_str()));
        int Rho = Topo.routePenalty(U, V);
        int Ti = S.StartTime[static_cast<size_t>(E.Src)];
        int Tj = S.StartTime[static_cast<size_t>(E.Dst)];
        if (Tj - Ti < E.Latency + Rho - S.T * E.Distance)
          return fail(strFormat(
              "routed dependence %s -> %s violated: %d - %d < %d + %d - %d*%d",
              G.node(E.Src).Name.c_str(), G.node(E.Dst).Name.c_str(), Tj, Ti,
              E.Latency, Rho, S.T, E.Distance));
      }
      // ROUTE-stage capacity: each multi-hop value occupies its producer's
      // unit at the in-flight cycles; capacity 1 per (unit, cycle mod T).
      std::map<std::pair<int, int>, int> RouteOwner; // (unit, slot) -> edge#
      for (size_t EI = 0; EI < G.edges().size(); ++EI) {
        const DdgEdge &E = G.edges()[EI];
        int U = Machine.globalUnitIndex(G.node(E.Src).OpClass,
                                        S.Mapping[static_cast<size_t>(E.Src)]);
        int V = Machine.globalUnitIndex(G.node(E.Dst).OpClass,
                                        S.Mapping[static_cast<size_t>(E.Dst)]);
        int Ti = S.StartTime[static_cast<size_t>(E.Src)];
        for (int Col : Topology::routeColumns(E.Latency, Topo.hops(U, V),
                                              Topo.hopLatency())) {
          int Slot = (Ti + Col) % S.T;
          auto Ins = RouteOwner.emplace(std::make_pair(U, Slot),
                                        static_cast<int>(EI));
          if (!Ins.second)
            return fail(strFormat(
                "route cells collide on %s at pattern step %d "
                "(edges %s->%s and %s->%s)",
                Topo.unitName(U).c_str(), Slot,
                G.node(G.edges()[static_cast<size_t>(Ins.first->second)].Src)
                    .Name.c_str(),
                G.node(G.edges()[static_cast<size_t>(Ins.first->second)].Dst)
                    .Name.c_str(),
                G.node(E.Src).Name.c_str(), G.node(E.Dst).Name.c_str()));
        }
      }
    }
    return {true, ""};
  }

  // Run-time mapping: aggregate per-(stage, slot) usage within capacity.
  for (int R = 0; R < Machine.numTypes(); ++R) {
    const FuType &Ty = Machine.type(R);
    std::vector<int> Ops = G.nodesOfClass(R);
    if (Ops.empty())
      continue;
    int MaxStages = 0;
    for (int Op : Ops)
      MaxStages = std::max(MaxStages,
                           Machine.tableFor(G.node(Op)).numStages());
    for (int Stage = 0; Stage < MaxStages; ++Stage) {
      std::vector<int> Usage(static_cast<size_t>(S.T), 0);
      for (int Op : Ops) {
        const ReservationTable &Table = Machine.tableFor(G.node(Op));
        if (Stage >= Table.numStages())
          continue;
        for (int L : Table.busyColumns(Stage))
          ++Usage[static_cast<size_t>((S.offset(Op) + L) % S.T)];
      }
      for (int Slot = 0; Slot < S.T; ++Slot)
        if (Usage[static_cast<size_t>(Slot)] > Ty.Count)
          return fail(strFormat(
              "type %s stage %d oversubscribed at pattern step %d (%d > %d)",
              Ty.Name.c_str(), Stage + 1, Slot,
              Usage[static_cast<size_t>(Slot)], Ty.Count));
    }
  }
  return {true, ""};
}

bool swp::simulateRunTimeMapping(const Ddg &G, const MachineModel &Machine,
                                 const ModuloSchedule &S, int Iterations,
                                 std::string *ErrorOut) {
  // Busy[(Type, Unit)][(Stage, AbsoluteCycle)] occupancy, built greedily in
  // dynamic issue order (the hardware picks the lowest free unit).
  struct Instance {
    int Node;
    int Iter;
    int Start;
  };
  std::vector<Instance> Instances;
  for (int J = 0; J < Iterations; ++J)
    for (int I = 0; I < G.numNodes(); ++I)
      Instances.push_back({I, J, J * S.T + S.StartTime[static_cast<size_t>(I)]});
  std::sort(Instances.begin(), Instances.end(),
            [](const Instance &A, const Instance &B) {
              if (A.Start != B.Start)
                return A.Start < B.Start;
              return A.Node < B.Node;
            });

  // Occupancy map: key = (type, unit, stage, cycle).
  std::map<std::tuple<int, int, int, int>, bool> Busy;
  for (const Instance &Inst : Instances) {
    int R = G.node(Inst.Node).OpClass;
    const FuType &Ty = Machine.type(R);
    const ReservationTable &Table = Machine.tableFor(G.node(Inst.Node));
    bool Placed = false;
    for (int U = 0; U < Ty.Count && !Placed; ++U) {
      bool Free = true;
      for (int Stage = 0; Stage < Table.numStages() && Free; ++Stage)
        for (int L : Table.busyColumns(Stage))
          if (Busy.count({R, U, Stage, Inst.Start + L})) {
            Free = false;
            break;
          }
      if (!Free)
        continue;
      for (int Stage = 0; Stage < Table.numStages(); ++Stage)
        for (int L : Table.busyColumns(Stage))
          Busy[{R, U, Stage, Inst.Start + L}] = true;
      Placed = true;
    }
    if (!Placed) {
      if (ErrorOut)
        *ErrorOut = strFormat("no free %s unit for %s (iteration %d) at t=%d",
                              Ty.Name.c_str(), G.node(Inst.Node).Name.c_str(),
                              Inst.Iter, Inst.Start);
      return false;
    }
  }
  return true;
}
