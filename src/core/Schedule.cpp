//===- Schedule.cpp - Modulo schedules ------------------------------------===//

#include "swp/core/Schedule.h"

#include "swp/support/Format.h"
#include "swp/support/TextTable.h"

#include <algorithm>

using namespace swp;

std::vector<int> ModuloSchedule::kVector() const {
  std::vector<int> K;
  K.reserve(StartTime.size());
  for (size_t I = 0; I < StartTime.size(); ++I)
    K.push_back(stageIndex(static_cast<int>(I)));
  return K;
}

std::vector<std::vector<int>> ModuloSchedule::aMatrix() const {
  std::vector<std::vector<int>> A(static_cast<size_t>(T),
                                  std::vector<int>(StartTime.size(), 0));
  for (size_t I = 0; I < StartTime.size(); ++I)
    A[static_cast<size_t>(offset(static_cast<int>(I)))][I] = 1;
  return A;
}

std::string ModuloSchedule::renderTka() const {
  std::string Out;
  Out += "t = [";
  for (size_t I = 0; I < StartTime.size(); ++I)
    Out += strFormat("%s%d", I ? ", " : "", StartTime[I]);
  Out += "]'\nK = [";
  for (size_t I = 0; I < StartTime.size(); ++I)
    Out += strFormat("%s%d", I ? ", " : "", stageIndex(static_cast<int>(I)));
  Out += strFormat("]'\nA (T = %d):\n", T);
  for (const auto &Row : aMatrix()) {
    Out += "  [";
    for (size_t I = 0; I < Row.size(); ++I)
      Out += strFormat("%s%d", I ? " " : "", Row[I]);
    Out += "]\n";
  }
  return Out;
}

std::string ModuloSchedule::renderPatternUsage(const Ddg &G,
                                               const MachineModel &Machine) const {
  std::string Out;
  for (int R = 0; R < Machine.numTypes(); ++R) {
    const FuType &Ty = Machine.type(R);
    std::vector<int> Ops = G.nodesOfClass(R);
    if (Ops.empty())
      continue;
    Out += strFormat("%s usage (mod T = %d):\n", Ty.Name.c_str(), T);
    TextTable Table;
    std::vector<std::string> Header;
    Header.push_back("Stage");
    for (int Slot = 0; Slot < T; ++Slot)
      Header.push_back(strFormat("t=%d", Slot));
    Table.setHeader(Header);
    int MaxStages = 0;
    for (int Op : Ops)
      MaxStages =
          std::max(MaxStages, Machine.tableFor(G.node(Op)).numStages());
    for (int S = 0; S < MaxStages; ++S) {
      std::vector<std::string> Row;
      Row.push_back(strFormat("%d", S + 1));
      for (int Slot = 0; Slot < T; ++Slot) {
        std::string Cell;
        for (int Op : Ops) {
          const ReservationTable &OpTable = Machine.tableFor(G.node(Op));
          if (S >= OpTable.numStages())
            continue;
          for (int L : OpTable.busyColumns(S)) {
            if ((offset(Op) + L) % T != Slot)
              continue;
            if (!Cell.empty())
              Cell += ",";
            Cell += G.node(Op).Name;
          }
        }
        Row.push_back(Cell.empty() ? "." : Cell);
      }
      Table.addRow(Row);
    }
    Out += Table.render();
  }
  return Out;
}
