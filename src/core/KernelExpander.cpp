//===- KernelExpander.cpp - Prolog/kernel/epilog --------------------------===//

#include "swp/core/KernelExpander.h"

#include "swp/core/Registers.h"

#include "swp/support/Format.h"
#include "swp/support/TextTable.h"

#include <algorithm>

using namespace swp;

ExpandedSchedule swp::expandSchedule(const Ddg &G, const ModuloSchedule &S,
                                     int Iterations,
                                     const CancellationToken &Cancel) {
  ExpandedSchedule E;
  int KMax = 0;
  for (int I = 0; I < G.numNodes(); ++I)
    KMax = std::max(KMax, S.stageIndex(I));
  E.KernelStart = KMax * S.T;
  E.KernelLength = S.T;
  for (int J = 0; J < Iterations; ++J) {
    if (Cancel.cancelled()) {
      E.Truncated = true;
      break;
    }
    for (int I = 0; I < G.numNodes(); ++I)
      E.Instances.push_back(
          {I, J, J * S.T + S.StartTime[static_cast<size_t>(I)]});
  }
  std::sort(E.Instances.begin(), E.Instances.end(),
            [](const ScheduledInstance &A, const ScheduledInstance &B) {
              if (A.Start != B.Start)
                return A.Start < B.Start;
              if (A.Iteration != B.Iteration)
                return A.Iteration < B.Iteration;
              return A.Node < B.Node;
            });
  return E;
}

std::string swp::renderOverlappedIterations(const Ddg &G,
                                            const ModuloSchedule &S,
                                            int Iterations) {
  ExpandedSchedule E = expandSchedule(G, S, Iterations);
  int LastCycle = 0;
  for (const ScheduledInstance &Inst : E.Instances)
    LastCycle = std::max(LastCycle, Inst.Start);

  TextTable Table;
  std::vector<std::string> Header;
  Header.push_back("Time");
  for (int J = 0; J < Iterations; ++J)
    Header.push_back(strFormat("Iter %d", J));
  Header.push_back("");
  Table.setHeader(Header);

  for (int Cycle = 0; Cycle <= LastCycle; ++Cycle) {
    std::vector<std::string> Row;
    Row.push_back(strFormat("%d", Cycle));
    for (int J = 0; J < Iterations; ++J) {
      std::string Cell;
      for (const ScheduledInstance &Inst : E.Instances) {
        if (Inst.Iteration != J || Inst.Start != Cycle)
          continue;
        if (!Cell.empty())
          Cell += ",";
        Cell += G.node(Inst.Node).Name;
      }
      Row.push_back(Cell.empty() ? "." : Cell);
    }
    std::string Note;
    if (Cycle == E.KernelStart)
      Note = "<- kernel (repetitive pattern) starts";
    else if (Cycle == E.KernelStart + E.KernelLength)
      Note = "<- kernel repeats";
    Row.push_back(Note);
    Table.addRow(Row);
  }
  return Table.render();
}

int swp::mveUnrollFactor(const Ddg &G, const ModuloSchedule &S) {
  int Factor = 1;
  for (int I = 0; I < G.numNodes(); ++I) {
    int L = valueLifetime(G, S, I);
    if (L > 0)
      Factor = std::max(Factor, (L + S.T - 1) / S.T);
  }
  return Factor;
}

std::string swp::renderUnrolledKernel(const Ddg &G, const ModuloSchedule &S) {
  int Factor = mveUnrollFactor(G, S);
  std::string Out = strFormat(
      "kernel unrolled %dx for modulo variable expansion (II = %d):\n",
      Factor, S.T);
  TextTable Table;
  Table.setHeader({"cycle", "issue"});
  for (int Copy = 0; Copy < Factor; ++Copy) {
    for (int Slot = 0; Slot < S.T; ++Slot) {
      std::string Cell;
      for (int I = 0; I < G.numNodes(); ++I) {
        if (S.offset(I) != Slot)
          continue;
        if (!Cell.empty())
          Cell += "; ";
        // The value defined by this instance gets the copy-local name.
        Cell += strFormat("%s.%d", G.node(I).Name.c_str(), Copy);
      }
      Table.addRow({strFormat("%d", Copy * S.T + Slot),
                    Cell.empty() ? "." : Cell});
    }
  }
  Out += Table.render();
  return Out;
}
