//===- Formulation.cpp - The paper's ILP formulations ---------------------===//

#include "swp/core/Formulation.h"

#include "swp/core/CircularArcs.h"
#include "swp/core/Registers.h"
#include "swp/support/Format.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace swp;

namespace {

/// The start-time expression t_i = T*k_i + sum_t t*a[t][i] (paper Eq. 7).
LinExpr startTimeExpr(const FormulationVars &Vars, int T, int I) {
  LinExpr E;
  E.add(Vars.K[static_cast<size_t>(I)], static_cast<double>(T));
  for (int Slot = 1; Slot < T; ++Slot)
    E.add(Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(I)],
          static_cast<double>(Slot));
  return E;
}

int defaultKMax(const Ddg &G, int MaxRho) {
  int Sum = 0;
  for (const DdgEdge &E : G.edges())
    Sum += std::max(E.Latency + MaxRho, 1);
  return Sum + G.numNodes() + 1;
}

} // namespace

MilpModel swp::buildScheduleModel(const Ddg &G, const MachineModel &Machine,
                                  int T, const FormulationOptions &Opts,
                                  FormulationVars &Vars) {
  assert(T >= 1 && "period must be positive");
  assert(G.isWellFormed(Machine.numTypes()) && "malformed DDG");
  assert(Machine.moduloFeasible(G, T) &&
         "caller must skip T violating the modulo constraint");

  const int N = G.numNodes();
  // BufferObjective owns the objective when both are requested.
  const bool UseColoringObjective =
      Opts.ColoringObjective && !Opts.BufferObjective;
  // Instance-level mapping path: only when placement is actually
  // restricted — flat machines and vacuous topologies keep the exact
  // type-level model below, bit for bit.
  const bool TopoPath = Opts.Mapping == MappingKind::Fixed &&
                        Machine.topologyConstrains();
  const Topology *Topo = TopoPath ? Machine.topology() : nullptr;
  MilpModel M;
  Vars = FormulationVars();
  Vars.A.assign(static_cast<size_t>(T), std::vector<VarId>());
  Vars.K.clear();
  Vars.Color.assign(static_cast<size_t>(N), -1);
  Vars.CMax.assign(static_cast<size_t>(Machine.numTypes()), -1);
  if (TopoPath)
    Vars.Inst.assign(static_cast<size_t>(N), std::vector<VarId>());

  // a[t][i] and k[i].
  for (int Slot = 0; Slot < T; ++Slot)
    Vars.A[static_cast<size_t>(Slot)].resize(static_cast<size_t>(N));
  // Rotating a schedule so the anchor lands on pattern step 0 can carry
  // each stage index up by one, so an anchored model needs one more stage
  // of headroom to stay feasibility-equivalent.
  int KMax = (Opts.KMax >= 0
                  ? Opts.KMax
                  : defaultKMax(G, Topo ? Topo->maxRoutePenalty() : 0)) +
             (Opts.BreakRotation ? 1 : 0);
  for (int I = 0; I < N; ++I) {
    for (int Slot = 0; Slot < T; ++Slot) {
      VarId V = M.addBinary(strFormat("a[%d][%d]", Slot, I));
      // a[t][i] <= 1 is implied by the assignment equality below.
      M.setUbRowRedundant(V);
      Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(I)] = V;
    }
    VarId KVar = M.addVar(0.0, static_cast<double>(KMax), VarKind::Integer,
                          strFormat("k[%d]", I));
    // Branch on the a[t][i] assignment windows (priority 0) before the
    // stage counts: once every op's slot is fixed the k[i] are pinned by
    // the dependence rows, so branching on a fractional k[i] first only
    // deepens the tree.
    M.setBranchPriority(KVar, 1);
    Vars.K.push_back(KVar);
  }

  // Instance-assignment binaries x[i][u] (u = unit within i's type).
  // Colors cannot express adjacency — two ops' colors only say whether
  // they share a unit, not *which* one — so the topology path names units
  // explicitly and the coloring block below is skipped.
  if (TopoPath) {
    for (int I = 0; I < N; ++I) {
      const int Count = Machine.type(G.node(I).OpClass).Count;
      LinExpr Sum;
      for (int U = 0; U < Count; ++U) {
        VarId V = M.addBinary(strFormat("x[%d][%d]", I, U));
        M.setBranchPriority(V, 2);
        Vars.Inst[static_cast<size_t>(I)].push_back(V);
        if (Count == 1)
          M.fixVar(V, 1.0);
        else {
          M.setUbRowRedundant(V); // Implied by the one-hot equality.
          Sum.add(V, 1.0);
        }
      }
      if (Count > 1)
        M.addConstraint(std::move(Sum), CmpKind::EQ, 1.0);
    }
  }

  // Rotation symmetry breaking: shifting every start time by s maps
  // schedules to schedules (dependence rows see only differences; the
  // resource rows are modulo-T circulant), so every solution class has a
  // representative with the anchor instruction at pattern step 0.  Pin the
  // most resource-hungry instruction there — its reservation table
  // propagates hardest through the usage rows — and let presolve fold the
  // T-1 dead binaries away.
  if (Opts.BreakRotation && N > 0) {
    int Anchor = 0;
    int AnchorBusy = -1;
    for (int I = 0; I < N; ++I) {
      const ReservationTable &RT = Machine.tableFor(G.node(I));
      int Busy = 0;
      for (int Stage = 0; Stage < RT.numStages(); ++Stage)
        for (int Cycle = 0; Cycle < RT.execTime(); ++Cycle)
          Busy += RT.busy(Stage, Cycle) ? 1 : 0;
      if (Busy > AnchorBusy) {
        AnchorBusy = Busy;
        Anchor = I;
      }
    }
    M.fixVar(Vars.A[0][static_cast<size_t>(Anchor)], 1.0);
    for (int Slot = 1; Slot < T; ++Slot)
      M.fixVar(Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(Anchor)],
               0.0);
  }

  // Each instruction initiates exactly once in the pattern (Eq. 9/23).
  for (int I = 0; I < N; ++I) {
    LinExpr Sum;
    for (int Slot = 0; Slot < T; ++Slot)
      Sum.add(Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(I)], 1.0);
    M.addConstraint(std::move(Sum), CmpKind::EQ, 1.0);
  }

  // Dependences: t_j - t_i >= latency - T*m_ij (Eq. 4/8).
  for (const DdgEdge &E : G.edges()) {
    LinExpr Expr = startTimeExpr(Vars, T, E.Dst);
    Expr.addScaled(startTimeExpr(Vars, T, E.Src), -1.0);
    M.addConstraint(std::move(Expr), CmpKind::GE,
                    static_cast<double>(E.Latency - T * E.Distance));
  }

  // Buffer-minimization extension ([18]): per edge, T*b_e >= t_j + T*m -
  // t_i with b_e >= 1 integer; minimizing sum b_e makes every b_e the
  // Ning-Gao buffer count.
  if (Opts.BufferObjective) {
    LinExpr Objective;
    int BMax = KMax + 2;
    for (const DdgEdge &E : G.edges()) {
      BMax = std::max(BMax, KMax + E.Distance + 2);
    }
    for (size_t EIx = 0; EIx < G.edges().size(); ++EIx) {
      const DdgEdge &E = G.edges()[EIx];
      VarId B = M.addVar(1.0, static_cast<double>(BMax), VarKind::Integer,
                         strFormat("b[%zu]", EIx));
      M.setBranchPriority(B, 4);
      Vars.Buffers.push_back(B);
      LinExpr Row;
      Row.add(B, static_cast<double>(T));
      Row.addScaled(startTimeExpr(Vars, T, E.Dst), -1.0);
      Row.addScaled(startTimeExpr(Vars, T, E.Src), 1.0);
      M.addConstraint(std::move(Row), CmpKind::GE,
                      static_cast<double>(T * E.Distance));
      Objective.add(B, 1.0);
    }
    M.setObjective(std::move(Objective));
  }

  // Per-type blocks: capacity, then mapping.
  for (int R = 0; R < Machine.numTypes(); ++R) {
    const FuType &Ty = Machine.type(R);
    std::vector<int> Ops = G.nodesOfClass(R);
    const int NumOps = static_cast<int>(Ops.size());
    if (NumOps == 0)
      continue;

    // Capacity (Eq. 5 generalized per stage): implied when the type has at
    // least as many units as instructions.  Each op occupies the stages of
    // its own reservation-table variant (multi-function pipelines).
    if (NumOps > Ty.Count) {
      int MaxStages = 0;
      for (int Op : Ops)
        MaxStages = std::max(MaxStages,
                             Machine.tableFor(G.node(Op)).numStages());
      for (int Stage = 0; Stage < MaxStages; ++Stage) {
        for (int Slot = 0; Slot < T; ++Slot) {
          LinExpr Usage;
          for (int Op : Ops) {
            const ReservationTable &Table = Machine.tableFor(G.node(Op));
            if (Stage >= Table.numStages())
              continue;
            for (int L : Table.busyColumns(Stage))
              Usage.add(Vars.A[static_cast<size_t>(((Slot - L) % T + T) % T)]
                              [static_cast<size_t>(Op)],
                        1.0);
          }
          M.addConstraint(std::move(Usage), CmpKind::LE,
                          static_cast<double>(Ty.Count));
        }
      }
    }

    if (Opts.Mapping == MappingKind::RunTime ||
        (!TopoPath && NumOps <= Ty.Count))
      continue; // No coloring needed: distinct units fit trivially.
    // The topology path still needs per-unit exclusion whenever two ops
    // share a type: adjacency may force unit sharing even when distinct
    // units would fit.
    if (TopoPath && NumOps < 2)
      continue;

    // Offset deltas at which two ops on one unit collide, per variant pair
    // (ops of one variant share a table; multi-function ops differ).
    auto ConflictDeltaFor = [&](int OpI, int OpJ) {
      std::vector<bool> Deltas(static_cast<size_t>(T));
      const ReservationTable &TI = Machine.tableFor(G.node(OpI));
      const ReservationTable &TJ = Machine.tableFor(G.node(OpJ));
      for (int Delta = 0; Delta < T; ++Delta)
        Deltas[static_cast<size_t>(Delta)] =
            tablesConflictAtOffset(TI, TJ, Delta, T);
      return Deltas;
    };

    if (Ty.Count == 1) {
      // Single unit: conflicting placements are simply forbidden; the
      // coloring machinery would force the same exclusions with o_ij = 0.
      for (int AIx = 0; AIx < NumOps; ++AIx) {
        for (int BIx = AIx + 1; BIx < NumOps; ++BIx) {
          int OpI = Ops[static_cast<size_t>(AIx)];
          int OpJ = Ops[static_cast<size_t>(BIx)];
          std::vector<bool> ConflictDelta = ConflictDeltaFor(OpI, OpJ);
          for (int P = 0; P < T; ++P) {
            LinExpr Row;
            Row.add(Vars.A[static_cast<size_t>(P)][static_cast<size_t>(OpI)],
                    1.0);
            bool Any = false;
            for (int Q = 0; Q < T; ++Q) {
              if (!ConflictDelta[static_cast<size_t>(((Q - P) % T + T) % T)])
                continue;
              Row.add(Vars.A[static_cast<size_t>(Q)][static_cast<size_t>(OpJ)],
                      1.0);
              Any = true;
            }
            if (Any)
              M.addConstraint(std::move(Row), CmpKind::LE, 1.0);
          }
        }
      }
      continue;
    }

    if (TopoPath) {
      // Instance path: o_ij is forced to 1 exactly when the two ops'
      // tables collide at their offset delta (same defining rows as the
      // coloring block); sharing any one physical unit is then forbidden:
      //   x_i[u] + x_j[u] + o_ij <= 2   for every unit u.
      for (int AIx = 0; AIx < NumOps; ++AIx) {
        for (int BIx = AIx + 1; BIx < NumOps; ++BIx) {
          int OpI = Ops[static_cast<size_t>(AIx)];
          int OpJ = Ops[static_cast<size_t>(BIx)];
          VarId O = M.addBinary(strFormat("o[%d][%d]", OpI, OpJ));
          M.setBranchPriority(O, 3);
          Vars.Pairs.push_back({OpI, OpJ, O, -1});
          std::vector<bool> ConflictDelta = ConflictDeltaFor(OpI, OpJ);
          for (int P = 0; P < T; ++P) {
            LinExpr Row;
            Row.add(O, 1.0);
            Row.add(Vars.A[static_cast<size_t>(P)][static_cast<size_t>(OpI)],
                    -1.0);
            bool Any = false;
            for (int Q = 0; Q < T; ++Q) {
              if (!ConflictDelta[static_cast<size_t>(((Q - P) % T + T) % T)])
                continue;
              Row.add(Vars.A[static_cast<size_t>(Q)][static_cast<size_t>(OpJ)],
                      -1.0);
              Any = true;
            }
            if (Any)
              M.addConstraint(std::move(Row), CmpKind::GE, -1.0);
          }
          for (int U = 0; U < Ty.Count; ++U) {
            LinExpr Row;
            Row.add(Vars.Inst[static_cast<size_t>(OpI)][static_cast<size_t>(U)],
                    1.0);
            Row.add(Vars.Inst[static_cast<size_t>(OpJ)][static_cast<size_t>(U)],
                    1.0);
            Row.add(O, 1.0);
            M.addConstraint(std::move(Row), CmpKind::LE, 2.0);
          }
        }
      }
      continue;
    }

    // Full coloring block (Sections 4.2 / 5): colors, overlap indicators,
    // Hu sign variables, and the per-type color maximum for the objective.
    const double RCount = static_cast<double>(Ty.Count);
    for (int Ix = 0; Ix < NumOps; ++Ix) {
      int Op = Ops[static_cast<size_t>(Ix)];
      // Symmetry breaking: colors are interchangeable, so the Ix-th op of
      // the type can canonically be restricted to colors 1..Ix+1.
      double Ub = std::min(RCount, static_cast<double>(Ix + 1));
      VarId C = M.addVar(1.0, Ub, VarKind::Integer, strFormat("c[%d]", Op));
      M.setBranchPriority(C, 2);
      Vars.Color[static_cast<size_t>(Op)] = C;
    }
    VarId CMax = -1;
    if (UseColoringObjective) {
      CMax = M.addVar(1.0, RCount, VarKind::Continuous,
                      strFormat("cmax[%d]", R));
      Vars.CMax[static_cast<size_t>(R)] = CMax;
      for (int Op : Ops) {
        LinExpr E;
        E.add(CMax, 1.0).add(Vars.Color[static_cast<size_t>(Op)], -1.0);
        M.addConstraint(std::move(E), CmpKind::GE, 0.0);
      }
    }

    for (int AIx = 0; AIx < NumOps; ++AIx) {
      for (int BIx = AIx + 1; BIx < NumOps; ++BIx) {
        int OpI = Ops[static_cast<size_t>(AIx)];
        int OpJ = Ops[static_cast<size_t>(BIx)];
        VarId O = M.addBinary(strFormat("o[%d][%d]", OpI, OpJ));
        VarId W = M.addBinary(strFormat("w[%d][%d]", OpI, OpJ));
        M.setBranchPriority(O, 3);
        M.setBranchPriority(W, 3);
        Vars.Pairs.push_back({OpI, OpJ, O, W});
        std::vector<bool> ConflictDelta = ConflictDeltaFor(OpI, OpJ);

        // o_ij >= a[p][i] + sum_{q conflicting with p} a[q][j] - 1.
        for (int P = 0; P < T; ++P) {
          LinExpr Row;
          Row.add(O, 1.0);
          Row.add(Vars.A[static_cast<size_t>(P)][static_cast<size_t>(OpI)],
                  -1.0);
          bool Any = false;
          for (int Q = 0; Q < T; ++Q) {
            if (!ConflictDelta[static_cast<size_t>(((Q - P) % T + T) % T)])
              continue;
            Row.add(Vars.A[static_cast<size_t>(Q)][static_cast<size_t>(OpJ)],
                    -1.0);
            Any = true;
          }
          if (Any)
            M.addConstraint(std::move(Row), CmpKind::GE, -1.0);
        }

        // |c_i - c_j| >= 1 when o_ij = 1 (Hu's linearization, Eqs. 12-14):
        //   c_i - c_j + M*w + M*(1-o) >= 1
        //   c_j - c_i + M*(1-w) + M*(1-o) >= 1
        // The generic M = R is loose under the lexicographic color caps:
        // the first row only needs covering when it is slack by at most
        // c_j - 1 <= ub(c_j) - 1, so M = ub(c_j) suffices (and ub(c_i) for
        // the second) — a strictly tighter LP relaxation, and exact for
        // every coloring the caps admit.
        VarId CI = Vars.Color[static_cast<size_t>(OpI)];
        VarId CJ = Vars.Color[static_cast<size_t>(OpJ)];
        const double UbI = std::min(RCount, static_cast<double>(AIx + 1));
        const double UbJ = std::min(RCount, static_cast<double>(BIx + 1));
        LinExpr E1;
        E1.add(CI, 1.0).add(CJ, -1.0).add(W, UbJ).add(O, -UbJ);
        M.addConstraint(std::move(E1), CmpKind::GE, 1.0 - UbJ);
        LinExpr E2;
        E2.add(CJ, 1.0).add(CI, -1.0).add(W, -UbI).add(O, -UbI);
        M.addConstraint(std::move(E2), CmpKind::GE, 1.0 - 2.0 * UbI);
      }
    }

    if (UseColoringObjective && CMax >= 0) {
      LinExpr Obj = M.objective();
      Obj.add(CMax, 1.0 / RCount);
      M.setObjective(std::move(Obj));
    }
  }

  if (TopoPath) {
    std::vector<int> Base(static_cast<size_t>(Machine.numTypes()), 0);
    for (int R = 1; R < Machine.numTypes(); ++R)
      Base[static_cast<size_t>(R)] =
          Base[static_cast<size_t>(R) - 1] + Machine.type(R - 1).Count;
    auto XVar = [&](int Op, int U) {
      return Vars.Inst[static_cast<size_t>(Op)][static_cast<size_t>(U)];
    };

    // (a) Per DDG edge: forbid unreachable / over-MaxHops placements and
    // tighten the dependence window by the routing penalty rho when both
    // endpoints land on a multi-hop pair.  BigM = rho is exact: with at
    // most one endpoint placed the row relaxes to (or below) the base
    // dependence row emitted above.
    for (const DdgEdge &E : G.edges()) {
      if (E.Src == E.Dst)
        continue; // Same unit, zero hops.
      const int Ri = G.node(E.Src).OpClass, Rj = G.node(E.Dst).OpClass;
      for (int U = 0; U < Machine.type(Ri).Count; ++U) {
        const int GU = Base[static_cast<size_t>(Ri)] + U;
        for (int V = 0; V < Machine.type(Rj).Count; ++V) {
          const int GV = Base[static_cast<size_t>(Rj)] + V;
          if (!Topo->feedAllowed(GU, GV)) {
            LinExpr Row;
            Row.add(XVar(E.Src, U), 1.0).add(XVar(E.Dst, V), 1.0);
            M.addConstraint(std::move(Row), CmpKind::LE, 1.0);
            continue;
          }
          const int Rho = Topo->routePenalty(GU, GV);
          if (Rho == 0)
            continue;
          // t_j - t_i >= L + rho - T*m - rho*(2 - x_iu - x_jv).
          LinExpr Row = startTimeExpr(Vars, T, E.Dst);
          Row.addScaled(startTimeExpr(Vars, T, E.Src), -1.0);
          Row.add(XVar(E.Src, U), -static_cast<double>(Rho));
          Row.add(XVar(E.Dst, V), -static_cast<double>(Rho));
          M.addConstraint(std::move(Row), CmpKind::GE,
                          static_cast<double>(E.Latency - T * E.Distance -
                                              Rho));
        }
      }
    }

    // (b) Route indicators y[e][u][c]: the value of edge e leaves unit u
    // across exactly c >= 2 hops, occupying the producer's ROUTE cells at
    // columns routeColumns(L, c, hopLatency).  Defining rows force y = 1
    // whenever an (x_iu, x_jv) pair at hop distance c is chosen; a y whose
    // own columns collide modulo T is fixed to 0, which correctly forbids
    // those placements at this T.
    for (size_t EIx = 0; EIx < G.edges().size(); ++EIx) {
      const DdgEdge &E = G.edges()[EIx];
      if (E.Src == E.Dst)
        continue;
      const int Ri = G.node(E.Src).OpClass, Rj = G.node(E.Dst).OpClass;
      for (int U = 0; U < Machine.type(Ri).Count; ++U) {
        const int GU = Base[static_cast<size_t>(Ri)] + U;
        for (int C = 2;; ++C) {
          std::vector<int> Consumers;
          bool AnyBeyond = false;
          for (int V = 0; V < Machine.type(Rj).Count; ++V) {
            const int GV = Base[static_cast<size_t>(Rj)] + V;
            if (!Topo->feedAllowed(GU, GV))
              continue;
            int H = Topo->hops(GU, GV);
            if (H == C)
              Consumers.push_back(V);
            else if (H > C)
              AnyBeyond = true;
          }
          if (Consumers.empty()) {
            if (!AnyBeyond)
              break;
            continue;
          }
          VarId Y = M.addBinary(
              strFormat("y[%zu][%d][%d]", EIx, GU, C));
          M.setBranchPriority(Y, 3);
          Vars.Route.push_back({static_cast<int>(EIx), GU, C, Y});
          std::vector<int> Cols =
              Topology::routeColumns(E.Latency, C, Topo->hopLatency());
          bool SelfCollides = false;
          for (size_t A = 0; A < Cols.size() && !SelfCollides; ++A)
            for (size_t B = A + 1; B < Cols.size(); ++B)
              if ((Cols[A] - Cols[B]) % T == 0) {
                SelfCollides = true;
                break;
              }
          if (SelfCollides)
            M.fixVar(Y, 0.0);
          for (int V : Consumers) {
            LinExpr Row;
            Row.add(Y, 1.0);
            Row.add(XVar(E.Src, U), -1.0).add(XVar(E.Dst, V), -1.0);
            M.addConstraint(std::move(Row), CmpKind::GE, -1.0);
          }
        }
      }
    }

    // (c) ROUTE-cell capacity: two active routes on one unit may not both
    // occupy a cell in the same pattern step.  A cell of route (e1, u, c1)
    // at column col1 sits at pattern step (p + col1) mod T when e1's
    // producer initiates at step p, so for each colliding (p, q) pair:
    //   a[p][i1] + a[q][i2] + y1 + y2 <= 3.
    for (size_t R1 = 0; R1 < Vars.Route.size(); ++R1) {
      for (size_t R2 = R1 + 1; R2 < Vars.Route.size(); ++R2) {
        const FormulationVars::RouteVarIds &A1 = Vars.Route[R1];
        const FormulationVars::RouteVarIds &A2 = Vars.Route[R2];
        if (A1.Unit != A2.Unit || A1.Edge == A2.Edge)
          continue;
        const DdgEdge &E1 = G.edges()[static_cast<size_t>(A1.Edge)];
        const DdgEdge &E2 = G.edges()[static_cast<size_t>(A2.Edge)];
        std::vector<int> Cols1 =
            Topology::routeColumns(E1.Latency, A1.Hops, Topo->hopLatency());
        std::vector<int> Cols2 =
            Topology::routeColumns(E2.Latency, A2.Hops, Topo->hopLatency());
        for (int Col1 : Cols1) {
          for (int Col2 : Cols2) {
            for (int P = 0; P < T; ++P) {
              int Q = ((P + Col1 - Col2) % T + T) % T;
              if (E1.Src == E2.Src && Q != P)
                continue; // One producer has one offset; row is vacuous.
              LinExpr Row;
              Row.add(Vars.A[static_cast<size_t>(P)]
                            [static_cast<size_t>(E1.Src)],
                      1.0);
              Row.add(Vars.A[static_cast<size_t>(Q)]
                            [static_cast<size_t>(E2.Src)],
                      1.0);
              Row.add(A1.Y, 1.0).add(A2.Y, 1.0);
              M.addConstraint(std::move(Row), CmpKind::LE, 3.0);
            }
          }
        }
      }
    }

    // (d) Instance symmetry breaking, the x-space analogue of the
    // lexicographic color caps: units that are pairwise swap-invariant in
    // the hop matrix form interchangeability classes, and within a class
    // the canonical solution uses members in first-use order — op a may
    // sit on the class's b-th member only if an earlier op of the type
    // uses the (b-1)-th.
    for (int R = 0; R < Machine.numTypes(); ++R) {
      const FuType &Ty = Machine.type(R);
      std::vector<int> Ops = G.nodesOfClass(R);
      const int NumOps = static_cast<int>(Ops.size());
      if (NumOps == 0 || Ty.Count < 2)
        continue;
      for (const std::vector<int> &Class : Topo->interchangeClasses(
               Base[static_cast<size_t>(R)],
               Base[static_cast<size_t>(R)] + Ty.Count)) {
        for (size_t BIx = 1; BIx < Class.size(); ++BIx) {
          const int Prev = Class[BIx - 1] - Base[static_cast<size_t>(R)];
          const int Cur = Class[BIx] - Base[static_cast<size_t>(R)];
          for (int AIx = 0; AIx < NumOps; ++AIx) {
            if (AIx == 0) {
              M.fixVar(XVar(Ops[0], Cur), 0.0);
              continue;
            }
            LinExpr Row;
            Row.add(XVar(Ops[static_cast<size_t>(AIx)], Cur), 1.0);
            for (int Earlier = 0; Earlier < AIx; ++Earlier)
              Row.add(XVar(Ops[static_cast<size_t>(Earlier)], Prev), -1.0);
            M.addConstraint(std::move(Row), CmpKind::LE, 0.0);
          }
        }
      }
    }
  }

  return M;
}

ModuloSchedule swp::extractSchedule(const Ddg &G, const MachineModel &Machine,
                                    int T, const FormulationOptions &Opts,
                                    const FormulationVars &Vars,
                                    const std::vector<double> &X) {
  const int N = G.numNodes();
  ModuloSchedule S;
  S.T = T;
  S.StartTime.assign(static_cast<size_t>(N), 0);
  for (int I = 0; I < N; ++I) {
    int Offset = 0;
    double BestVal = -1.0;
    for (int Slot = 0; Slot < T; ++Slot) {
      double V =
          X[static_cast<size_t>(Vars.A[static_cast<size_t>(Slot)]
                                      [static_cast<size_t>(I)])];
      if (V > BestVal) {
        BestVal = V;
        Offset = Slot;
      }
    }
    int K = static_cast<int>(
        std::llround(X[static_cast<size_t>(Vars.K[static_cast<size_t>(I)])]));
    S.StartTime[static_cast<size_t>(I)] = T * K + Offset;
  }

  if (Opts.Mapping == MappingKind::RunTime)
    return S;

  S.Mapping.assign(static_cast<size_t>(N), 0);
  if (!Vars.Inst.empty()) {
    // Instance path: the unit is named directly by the x[i][u] one-hot.
    for (int I = 0; I < N; ++I) {
      int Unit = 0;
      double BestVal = -1.0;
      const std::vector<VarId> &Row = Vars.Inst[static_cast<size_t>(I)];
      for (size_t U = 0; U < Row.size(); ++U) {
        double V = X[static_cast<size_t>(Row[U])];
        if (V > BestVal) {
          BestVal = V;
          Unit = static_cast<int>(U);
        }
      }
      S.Mapping[static_cast<size_t>(I)] = Unit;
    }
    return S;
  }
  for (int R = 0; R < Machine.numTypes(); ++R) {
    std::vector<int> Ops = G.nodesOfClass(R);
    const int NumOps = static_cast<int>(Ops.size());
    if (NumOps == 0)
      continue;
    if (NumOps <= Machine.type(R).Count) {
      // No coloring block was emitted: distinct units, in op order.
      for (int Ix = 0; Ix < NumOps; ++Ix)
        S.Mapping[static_cast<size_t>(Ops[static_cast<size_t>(Ix)])] = Ix;
      continue;
    }
    if (Machine.type(R).Count == 1)
      continue; // Everyone on unit 0 (already zero-initialized).
    for (int Op : Ops) {
      VarId C = Vars.Color[static_cast<size_t>(Op)];
      assert(C >= 0 && "colored type without color variable");
      S.Mapping[static_cast<size_t>(Op)] =
          static_cast<int>(std::llround(X[static_cast<size_t>(C)])) - 1;
    }
  }
  return S;
}

std::vector<double> swp::scheduleToAssignment(
    const Ddg &G, const MachineModel &Machine, int T,
    const FormulationOptions &Opts, const FormulationVars &Vars,
    const ModuloSchedule &S, int NumModelVars) {
  std::vector<double> X(static_cast<size_t>(NumModelVars), 0.0);
  const int N = G.numNodes();
  assert(S.T == T && static_cast<int>(S.StartTime.size()) == N &&
         "schedule does not match the model");

  for (int I = 0; I < N; ++I) {
    X[static_cast<size_t>(
        Vars.A[static_cast<size_t>(S.offset(I))][static_cast<size_t>(I)])] =
        1.0;
    X[static_cast<size_t>(Vars.K[static_cast<size_t>(I)])] = S.stageIndex(I);
  }

  // Colors, canonicalized per type so the symmetry-breaking upper bounds
  // (Ix-th op uses color <= Ix+1) hold.
  std::vector<int> Canonical(static_cast<size_t>(N), 0);
  if (Opts.Mapping == MappingKind::Fixed && S.hasMapping()) {
    for (int R = 0; R < Machine.numTypes(); ++R) {
      std::vector<int> Ops = G.nodesOfClass(R);
      std::vector<int> Relabel(static_cast<size_t>(Machine.type(R).Count),
                               -1);
      int Next = 1;
      for (int Op : Ops) {
        int Orig = S.Mapping[static_cast<size_t>(Op)];
        if (Relabel[static_cast<size_t>(Orig)] < 0)
          Relabel[static_cast<size_t>(Orig)] = Next++;
        Canonical[static_cast<size_t>(Op)] =
            Relabel[static_cast<size_t>(Orig)];
      }
    }
    for (int I = 0; I < N; ++I)
      if (Vars.Color[static_cast<size_t>(I)] >= 0)
        X[static_cast<size_t>(Vars.Color[static_cast<size_t>(I)])] =
            Canonical[static_cast<size_t>(I)];

    for (const FormulationVars::PairVarIds &P : Vars.Pairs) {
      bool Overlap = arcsOverlap(Machine.tableFor(G.node(P.OpI)),
                                 Machine.tableFor(G.node(P.OpJ)), T,
                                 S.offset(P.OpI), S.offset(P.OpJ));
      X[static_cast<size_t>(P.Overlap)] = Overlap ? 1.0 : 0.0;
      if (P.Sign >= 0)
        X[static_cast<size_t>(P.Sign)] =
            Canonical[static_cast<size_t>(P.OpJ)] >
                    Canonical[static_cast<size_t>(P.OpI)]
                ? 1.0
                : 0.0;
    }
    for (int R = 0; R < Machine.numTypes(); ++R) {
      if (Vars.CMax[static_cast<size_t>(R)] < 0)
        continue;
      int Max = 1;
      for (int Op : G.nodesOfClass(R))
        Max = std::max(Max, Canonical[static_cast<size_t>(Op)]);
      X[static_cast<size_t>(Vars.CMax[static_cast<size_t>(R)])] = Max;
    }
  }

  // Instance path: canonicalize the mapping within each topology
  // interchangeability class (members in first-use order, matching the
  // model's precedence rows — a pure symmetry, so the permuted schedule
  // stays legal), then set the x one-hots and the implied route
  // indicators.
  if (!Vars.Inst.empty() && S.hasMapping()) {
    const Topology &Topo = *Machine.topology();
    std::vector<int> Base(static_cast<size_t>(Machine.numTypes()), 0);
    for (int R = 1; R < Machine.numTypes(); ++R)
      Base[static_cast<size_t>(R)] =
          Base[static_cast<size_t>(R) - 1] + Machine.type(R - 1).Count;

    std::vector<int> CanonUnit(static_cast<size_t>(N), 0);
    for (int R = 0; R < Machine.numTypes(); ++R) {
      const int Count = Machine.type(R).Count;
      std::vector<int> Ops = G.nodesOfClass(R);
      std::vector<int> Perm(static_cast<size_t>(Count), -1);
      for (const std::vector<int> &Class : Topo.interchangeClasses(
               Base[static_cast<size_t>(R)],
               Base[static_cast<size_t>(R)] + Count)) {
        std::vector<bool> InClass(static_cast<size_t>(Count), false);
        for (int GU : Class)
          InClass[static_cast<size_t>(GU - Base[static_cast<size_t>(R)])] =
              true;
        std::vector<int> Order; // Original units, in first-use order.
        for (int Op : Ops) {
          int U = S.Mapping[static_cast<size_t>(Op)];
          if (InClass[static_cast<size_t>(U)] &&
              std::find(Order.begin(), Order.end(), U) == Order.end())
            Order.push_back(U);
        }
        for (int GU : Class) { // Unused members keep ascending order.
          int U = GU - Base[static_cast<size_t>(R)];
          if (std::find(Order.begin(), Order.end(), U) == Order.end())
            Order.push_back(U);
        }
        for (size_t Ix = 0; Ix < Class.size(); ++Ix)
          Perm[static_cast<size_t>(Order[Ix])] =
              Class[Ix] - Base[static_cast<size_t>(R)];
      }
      for (int Op : Ops)
        CanonUnit[static_cast<size_t>(Op)] =
            Perm[static_cast<size_t>(S.Mapping[static_cast<size_t>(Op)])];
    }

    for (int I = 0; I < N; ++I)
      X[static_cast<size_t>(
          Vars.Inst[static_cast<size_t>(I)]
                   [static_cast<size_t>(CanonUnit[static_cast<size_t>(I)])])] =
          1.0;
    for (const FormulationVars::RouteVarIds &RV : Vars.Route) {
      const DdgEdge &E = G.edges()[static_cast<size_t>(RV.Edge)];
      int GU = Base[static_cast<size_t>(G.node(E.Src).OpClass)] +
               CanonUnit[static_cast<size_t>(E.Src)];
      int GV = Base[static_cast<size_t>(G.node(E.Dst).OpClass)] +
               CanonUnit[static_cast<size_t>(E.Dst)];
      X[static_cast<size_t>(RV.Y)] =
          GU == RV.Unit && Topo.hops(GU, GV) == RV.Hops ? 1.0 : 0.0;
    }
  }

  for (size_t EIx = 0; EIx < Vars.Buffers.size(); ++EIx)
    X[static_cast<size_t>(Vars.Buffers[EIx])] =
        edgeBufferCount(G, S, G.edges()[EIx]);

  return X;
}
