//===- Formulation.cpp - The paper's ILP formulations ---------------------===//

#include "swp/core/Formulation.h"

#include "swp/core/CircularArcs.h"
#include "swp/core/Registers.h"
#include "swp/support/Format.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace swp;

namespace {

/// The start-time expression t_i = T*k_i + sum_t t*a[t][i] (paper Eq. 7).
LinExpr startTimeExpr(const FormulationVars &Vars, int T, int I) {
  LinExpr E;
  E.add(Vars.K[static_cast<size_t>(I)], static_cast<double>(T));
  for (int Slot = 1; Slot < T; ++Slot)
    E.add(Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(I)],
          static_cast<double>(Slot));
  return E;
}

int defaultKMax(const Ddg &G) {
  int Sum = 0;
  for (const DdgEdge &E : G.edges())
    Sum += std::max(E.Latency, 1);
  return Sum + G.numNodes() + 1;
}

} // namespace

MilpModel swp::buildScheduleModel(const Ddg &G, const MachineModel &Machine,
                                  int T, const FormulationOptions &Opts,
                                  FormulationVars &Vars) {
  assert(T >= 1 && "period must be positive");
  assert(G.isWellFormed(Machine.numTypes()) && "malformed DDG");
  assert(Machine.moduloFeasible(G, T) &&
         "caller must skip T violating the modulo constraint");

  const int N = G.numNodes();
  // BufferObjective owns the objective when both are requested.
  const bool UseColoringObjective =
      Opts.ColoringObjective && !Opts.BufferObjective;
  MilpModel M;
  Vars = FormulationVars();
  Vars.A.assign(static_cast<size_t>(T), std::vector<VarId>());
  Vars.K.clear();
  Vars.Color.assign(static_cast<size_t>(N), -1);
  Vars.CMax.assign(static_cast<size_t>(Machine.numTypes()), -1);

  // a[t][i] and k[i].
  for (int Slot = 0; Slot < T; ++Slot)
    Vars.A[static_cast<size_t>(Slot)].resize(static_cast<size_t>(N));
  // Rotating a schedule so the anchor lands on pattern step 0 can carry
  // each stage index up by one, so an anchored model needs one more stage
  // of headroom to stay feasibility-equivalent.
  int KMax = (Opts.KMax >= 0 ? Opts.KMax : defaultKMax(G)) +
             (Opts.BreakRotation ? 1 : 0);
  for (int I = 0; I < N; ++I) {
    for (int Slot = 0; Slot < T; ++Slot) {
      VarId V = M.addBinary(strFormat("a[%d][%d]", Slot, I));
      // a[t][i] <= 1 is implied by the assignment equality below.
      M.setUbRowRedundant(V);
      Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(I)] = V;
    }
    VarId KVar = M.addVar(0.0, static_cast<double>(KMax), VarKind::Integer,
                          strFormat("k[%d]", I));
    // Branch on the a[t][i] assignment windows (priority 0) before the
    // stage counts: once every op's slot is fixed the k[i] are pinned by
    // the dependence rows, so branching on a fractional k[i] first only
    // deepens the tree.
    M.setBranchPriority(KVar, 1);
    Vars.K.push_back(KVar);
  }

  // Rotation symmetry breaking: shifting every start time by s maps
  // schedules to schedules (dependence rows see only differences; the
  // resource rows are modulo-T circulant), so every solution class has a
  // representative with the anchor instruction at pattern step 0.  Pin the
  // most resource-hungry instruction there — its reservation table
  // propagates hardest through the usage rows — and let presolve fold the
  // T-1 dead binaries away.
  if (Opts.BreakRotation && N > 0) {
    int Anchor = 0;
    int AnchorBusy = -1;
    for (int I = 0; I < N; ++I) {
      const ReservationTable &RT = Machine.tableFor(G.node(I));
      int Busy = 0;
      for (int Stage = 0; Stage < RT.numStages(); ++Stage)
        for (int Cycle = 0; Cycle < RT.execTime(); ++Cycle)
          Busy += RT.busy(Stage, Cycle) ? 1 : 0;
      if (Busy > AnchorBusy) {
        AnchorBusy = Busy;
        Anchor = I;
      }
    }
    M.fixVar(Vars.A[0][static_cast<size_t>(Anchor)], 1.0);
    for (int Slot = 1; Slot < T; ++Slot)
      M.fixVar(Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(Anchor)],
               0.0);
  }

  // Each instruction initiates exactly once in the pattern (Eq. 9/23).
  for (int I = 0; I < N; ++I) {
    LinExpr Sum;
    for (int Slot = 0; Slot < T; ++Slot)
      Sum.add(Vars.A[static_cast<size_t>(Slot)][static_cast<size_t>(I)], 1.0);
    M.addConstraint(std::move(Sum), CmpKind::EQ, 1.0);
  }

  // Dependences: t_j - t_i >= latency - T*m_ij (Eq. 4/8).
  for (const DdgEdge &E : G.edges()) {
    LinExpr Expr = startTimeExpr(Vars, T, E.Dst);
    Expr.addScaled(startTimeExpr(Vars, T, E.Src), -1.0);
    M.addConstraint(std::move(Expr), CmpKind::GE,
                    static_cast<double>(E.Latency - T * E.Distance));
  }

  // Buffer-minimization extension ([18]): per edge, T*b_e >= t_j + T*m -
  // t_i with b_e >= 1 integer; minimizing sum b_e makes every b_e the
  // Ning-Gao buffer count.
  if (Opts.BufferObjective) {
    LinExpr Objective;
    int BMax = KMax + 2;
    for (const DdgEdge &E : G.edges()) {
      BMax = std::max(BMax, KMax + E.Distance + 2);
    }
    for (size_t EIx = 0; EIx < G.edges().size(); ++EIx) {
      const DdgEdge &E = G.edges()[EIx];
      VarId B = M.addVar(1.0, static_cast<double>(BMax), VarKind::Integer,
                         strFormat("b[%zu]", EIx));
      M.setBranchPriority(B, 4);
      Vars.Buffers.push_back(B);
      LinExpr Row;
      Row.add(B, static_cast<double>(T));
      Row.addScaled(startTimeExpr(Vars, T, E.Dst), -1.0);
      Row.addScaled(startTimeExpr(Vars, T, E.Src), 1.0);
      M.addConstraint(std::move(Row), CmpKind::GE,
                      static_cast<double>(T * E.Distance));
      Objective.add(B, 1.0);
    }
    M.setObjective(std::move(Objective));
  }

  // Per-type blocks: capacity, then mapping.
  for (int R = 0; R < Machine.numTypes(); ++R) {
    const FuType &Ty = Machine.type(R);
    std::vector<int> Ops = G.nodesOfClass(R);
    const int NumOps = static_cast<int>(Ops.size());
    if (NumOps == 0)
      continue;

    // Capacity (Eq. 5 generalized per stage): implied when the type has at
    // least as many units as instructions.  Each op occupies the stages of
    // its own reservation-table variant (multi-function pipelines).
    if (NumOps > Ty.Count) {
      int MaxStages = 0;
      for (int Op : Ops)
        MaxStages = std::max(MaxStages,
                             Machine.tableFor(G.node(Op)).numStages());
      for (int Stage = 0; Stage < MaxStages; ++Stage) {
        for (int Slot = 0; Slot < T; ++Slot) {
          LinExpr Usage;
          for (int Op : Ops) {
            const ReservationTable &Table = Machine.tableFor(G.node(Op));
            if (Stage >= Table.numStages())
              continue;
            for (int L : Table.busyColumns(Stage))
              Usage.add(Vars.A[static_cast<size_t>(((Slot - L) % T + T) % T)]
                              [static_cast<size_t>(Op)],
                        1.0);
          }
          M.addConstraint(std::move(Usage), CmpKind::LE,
                          static_cast<double>(Ty.Count));
        }
      }
    }

    if (Opts.Mapping == MappingKind::RunTime || NumOps <= Ty.Count)
      continue; // No coloring needed: distinct units fit trivially.

    // Offset deltas at which two ops on one unit collide, per variant pair
    // (ops of one variant share a table; multi-function ops differ).
    auto ConflictDeltaFor = [&](int OpI, int OpJ) {
      std::vector<bool> Deltas(static_cast<size_t>(T));
      const ReservationTable &TI = Machine.tableFor(G.node(OpI));
      const ReservationTable &TJ = Machine.tableFor(G.node(OpJ));
      for (int Delta = 0; Delta < T; ++Delta)
        Deltas[static_cast<size_t>(Delta)] =
            tablesConflictAtOffset(TI, TJ, Delta, T);
      return Deltas;
    };

    if (Ty.Count == 1) {
      // Single unit: conflicting placements are simply forbidden; the
      // coloring machinery would force the same exclusions with o_ij = 0.
      for (int AIx = 0; AIx < NumOps; ++AIx) {
        for (int BIx = AIx + 1; BIx < NumOps; ++BIx) {
          int OpI = Ops[static_cast<size_t>(AIx)];
          int OpJ = Ops[static_cast<size_t>(BIx)];
          std::vector<bool> ConflictDelta = ConflictDeltaFor(OpI, OpJ);
          for (int P = 0; P < T; ++P) {
            LinExpr Row;
            Row.add(Vars.A[static_cast<size_t>(P)][static_cast<size_t>(OpI)],
                    1.0);
            bool Any = false;
            for (int Q = 0; Q < T; ++Q) {
              if (!ConflictDelta[static_cast<size_t>(((Q - P) % T + T) % T)])
                continue;
              Row.add(Vars.A[static_cast<size_t>(Q)][static_cast<size_t>(OpJ)],
                      1.0);
              Any = true;
            }
            if (Any)
              M.addConstraint(std::move(Row), CmpKind::LE, 1.0);
          }
        }
      }
      continue;
    }

    // Full coloring block (Sections 4.2 / 5): colors, overlap indicators,
    // Hu sign variables, and the per-type color maximum for the objective.
    const double RCount = static_cast<double>(Ty.Count);
    for (int Ix = 0; Ix < NumOps; ++Ix) {
      int Op = Ops[static_cast<size_t>(Ix)];
      // Symmetry breaking: colors are interchangeable, so the Ix-th op of
      // the type can canonically be restricted to colors 1..Ix+1.
      double Ub = std::min(RCount, static_cast<double>(Ix + 1));
      VarId C = M.addVar(1.0, Ub, VarKind::Integer, strFormat("c[%d]", Op));
      M.setBranchPriority(C, 2);
      Vars.Color[static_cast<size_t>(Op)] = C;
    }
    VarId CMax = -1;
    if (UseColoringObjective) {
      CMax = M.addVar(1.0, RCount, VarKind::Continuous,
                      strFormat("cmax[%d]", R));
      Vars.CMax[static_cast<size_t>(R)] = CMax;
      for (int Op : Ops) {
        LinExpr E;
        E.add(CMax, 1.0).add(Vars.Color[static_cast<size_t>(Op)], -1.0);
        M.addConstraint(std::move(E), CmpKind::GE, 0.0);
      }
    }

    for (int AIx = 0; AIx < NumOps; ++AIx) {
      for (int BIx = AIx + 1; BIx < NumOps; ++BIx) {
        int OpI = Ops[static_cast<size_t>(AIx)];
        int OpJ = Ops[static_cast<size_t>(BIx)];
        VarId O = M.addBinary(strFormat("o[%d][%d]", OpI, OpJ));
        VarId W = M.addBinary(strFormat("w[%d][%d]", OpI, OpJ));
        M.setBranchPriority(O, 3);
        M.setBranchPriority(W, 3);
        Vars.Pairs.push_back({OpI, OpJ, O, W});
        std::vector<bool> ConflictDelta = ConflictDeltaFor(OpI, OpJ);

        // o_ij >= a[p][i] + sum_{q conflicting with p} a[q][j] - 1.
        for (int P = 0; P < T; ++P) {
          LinExpr Row;
          Row.add(O, 1.0);
          Row.add(Vars.A[static_cast<size_t>(P)][static_cast<size_t>(OpI)],
                  -1.0);
          bool Any = false;
          for (int Q = 0; Q < T; ++Q) {
            if (!ConflictDelta[static_cast<size_t>(((Q - P) % T + T) % T)])
              continue;
            Row.add(Vars.A[static_cast<size_t>(Q)][static_cast<size_t>(OpJ)],
                    -1.0);
            Any = true;
          }
          if (Any)
            M.addConstraint(std::move(Row), CmpKind::GE, -1.0);
        }

        // |c_i - c_j| >= 1 when o_ij = 1 (Hu's linearization, Eqs. 12-14):
        //   c_i - c_j + M*w + M*(1-o) >= 1
        //   c_j - c_i + M*(1-w) + M*(1-o) >= 1
        // The generic M = R is loose under the lexicographic color caps:
        // the first row only needs covering when it is slack by at most
        // c_j - 1 <= ub(c_j) - 1, so M = ub(c_j) suffices (and ub(c_i) for
        // the second) — a strictly tighter LP relaxation, and exact for
        // every coloring the caps admit.
        VarId CI = Vars.Color[static_cast<size_t>(OpI)];
        VarId CJ = Vars.Color[static_cast<size_t>(OpJ)];
        const double UbI = std::min(RCount, static_cast<double>(AIx + 1));
        const double UbJ = std::min(RCount, static_cast<double>(BIx + 1));
        LinExpr E1;
        E1.add(CI, 1.0).add(CJ, -1.0).add(W, UbJ).add(O, -UbJ);
        M.addConstraint(std::move(E1), CmpKind::GE, 1.0 - UbJ);
        LinExpr E2;
        E2.add(CJ, 1.0).add(CI, -1.0).add(W, -UbI).add(O, -UbI);
        M.addConstraint(std::move(E2), CmpKind::GE, 1.0 - 2.0 * UbI);
      }
    }

    if (UseColoringObjective && CMax >= 0) {
      LinExpr Obj = M.objective();
      Obj.add(CMax, 1.0 / RCount);
      M.setObjective(std::move(Obj));
    }
  }

  return M;
}

ModuloSchedule swp::extractSchedule(const Ddg &G, const MachineModel &Machine,
                                    int T, const FormulationOptions &Opts,
                                    const FormulationVars &Vars,
                                    const std::vector<double> &X) {
  const int N = G.numNodes();
  ModuloSchedule S;
  S.T = T;
  S.StartTime.assign(static_cast<size_t>(N), 0);
  for (int I = 0; I < N; ++I) {
    int Offset = 0;
    double BestVal = -1.0;
    for (int Slot = 0; Slot < T; ++Slot) {
      double V =
          X[static_cast<size_t>(Vars.A[static_cast<size_t>(Slot)]
                                      [static_cast<size_t>(I)])];
      if (V > BestVal) {
        BestVal = V;
        Offset = Slot;
      }
    }
    int K = static_cast<int>(
        std::llround(X[static_cast<size_t>(Vars.K[static_cast<size_t>(I)])]));
    S.StartTime[static_cast<size_t>(I)] = T * K + Offset;
  }

  if (Opts.Mapping == MappingKind::RunTime)
    return S;

  S.Mapping.assign(static_cast<size_t>(N), 0);
  for (int R = 0; R < Machine.numTypes(); ++R) {
    std::vector<int> Ops = G.nodesOfClass(R);
    const int NumOps = static_cast<int>(Ops.size());
    if (NumOps == 0)
      continue;
    if (NumOps <= Machine.type(R).Count) {
      // No coloring block was emitted: distinct units, in op order.
      for (int Ix = 0; Ix < NumOps; ++Ix)
        S.Mapping[static_cast<size_t>(Ops[static_cast<size_t>(Ix)])] = Ix;
      continue;
    }
    if (Machine.type(R).Count == 1)
      continue; // Everyone on unit 0 (already zero-initialized).
    for (int Op : Ops) {
      VarId C = Vars.Color[static_cast<size_t>(Op)];
      assert(C >= 0 && "colored type without color variable");
      S.Mapping[static_cast<size_t>(Op)] =
          static_cast<int>(std::llround(X[static_cast<size_t>(C)])) - 1;
    }
  }
  return S;
}

std::vector<double> swp::scheduleToAssignment(
    const Ddg &G, const MachineModel &Machine, int T,
    const FormulationOptions &Opts, const FormulationVars &Vars,
    const ModuloSchedule &S, int NumModelVars) {
  std::vector<double> X(static_cast<size_t>(NumModelVars), 0.0);
  const int N = G.numNodes();
  assert(S.T == T && static_cast<int>(S.StartTime.size()) == N &&
         "schedule does not match the model");

  for (int I = 0; I < N; ++I) {
    X[static_cast<size_t>(
        Vars.A[static_cast<size_t>(S.offset(I))][static_cast<size_t>(I)])] =
        1.0;
    X[static_cast<size_t>(Vars.K[static_cast<size_t>(I)])] = S.stageIndex(I);
  }

  // Colors, canonicalized per type so the symmetry-breaking upper bounds
  // (Ix-th op uses color <= Ix+1) hold.
  std::vector<int> Canonical(static_cast<size_t>(N), 0);
  if (Opts.Mapping == MappingKind::Fixed && S.hasMapping()) {
    for (int R = 0; R < Machine.numTypes(); ++R) {
      std::vector<int> Ops = G.nodesOfClass(R);
      std::vector<int> Relabel(static_cast<size_t>(Machine.type(R).Count),
                               -1);
      int Next = 1;
      for (int Op : Ops) {
        int Orig = S.Mapping[static_cast<size_t>(Op)];
        if (Relabel[static_cast<size_t>(Orig)] < 0)
          Relabel[static_cast<size_t>(Orig)] = Next++;
        Canonical[static_cast<size_t>(Op)] =
            Relabel[static_cast<size_t>(Orig)];
      }
    }
    for (int I = 0; I < N; ++I)
      if (Vars.Color[static_cast<size_t>(I)] >= 0)
        X[static_cast<size_t>(Vars.Color[static_cast<size_t>(I)])] =
            Canonical[static_cast<size_t>(I)];

    for (const FormulationVars::PairVarIds &P : Vars.Pairs) {
      bool Overlap = arcsOverlap(Machine.tableFor(G.node(P.OpI)),
                                 Machine.tableFor(G.node(P.OpJ)), T,
                                 S.offset(P.OpI), S.offset(P.OpJ));
      X[static_cast<size_t>(P.Overlap)] = Overlap ? 1.0 : 0.0;
      X[static_cast<size_t>(P.Sign)] =
          Canonical[static_cast<size_t>(P.OpJ)] >
                  Canonical[static_cast<size_t>(P.OpI)]
              ? 1.0
              : 0.0;
    }
    for (int R = 0; R < Machine.numTypes(); ++R) {
      if (Vars.CMax[static_cast<size_t>(R)] < 0)
        continue;
      int Max = 1;
      for (int Op : G.nodesOfClass(R))
        Max = std::max(Max, Canonical[static_cast<size_t>(Op)]);
      X[static_cast<size_t>(Vars.CMax[static_cast<size_t>(R)])] = Max;
    }
  }

  for (size_t EIx = 0; EIx < Vars.Buffers.size(); ++EIx)
    X[static_cast<size_t>(Vars.Buffers[EIx])] =
        edgeBufferCount(G, S, G.edges()[EIx]);

  return X;
}
