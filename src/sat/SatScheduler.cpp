//===- SatScheduler.cpp - SAT-backed rate-optimal search ------------------===//

#include "swp/sat/SatScheduler.h"

#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/support/FaultInjector.h"
#include "swp/support/Stopwatch.h"

#include <algorithm>

using namespace swp;

SatScheduler::SatScheduler(const Ddg &Graph, const MachineModel &M,
                           MappingKind Kind)
    : G(Graph), Machine(M), Mapping(Kind) {
  Valid = G.isWellFormed(Machine.numTypes()) && Machine.acceptsDdg(G);
  if (Valid) {
    Solver = std::make_unique<CdclSolver>();
    Encoder = std::make_unique<CnfEncoder>(G, Machine, Mapping, *Solver);
  }
}

SatScheduler::~SatScheduler() = default;

const SatStats &SatScheduler::stats() const {
  static const SatStats Empty;
  return Solver ? Solver->stats() : Empty;
}

SatAttempt SatScheduler::solveAtT(int T, double TimeLimitSec,
                                  std::int64_t ConflictLimit,
                                  CancellationToken Cancel) {
  Stopwatch Watch;
  SatAttempt A;
  auto finish = [&](MilpStatus St, SearchStop Stop) {
    A.Status = St;
    A.Stop = Stop;
    A.Seconds = Watch.seconds();
    return A;
  };

  if (!Valid || T < 1) {
    A.Error = Status(StatusCode::InvalidInput,
                     T < 1 && Valid
                         ? "initiation interval T must be >= 1"
                         : "DDG is malformed or uses op classes the machine "
                           "does not define")
                  .withPhase("sat-schedule-at-t")
                  .withT(T)
                  .withInstance(G.name());
    return finish(MilpStatus::Error, SearchStop::Fault);
  }

  FaultInjector &FI = FaultInjector::instance();
  // Fault injection: building the CNF slice fails, like the MILP model
  // allocation in scheduleAtT.
  if (FI.shouldFire(FaultSite::Alloc)) {
    A.Error = Status(StatusCode::ResourceExhausted,
                     "injected allocation failure building the CNF encoding")
                  .withPhase("cnf-build")
                  .withT(T)
                  .withInstance(G.name());
    return finish(MilpStatus::Error, SearchStop::Fault);
  }

  if (Encoder->triviallyInfeasible(T))
    return finish(MilpStatus::Infeasible, SearchStop::None);

  // Fault soundness, belt and braces: the solver already reports Unknown
  // (never Unsat) when the injected conflict fault fires, but mirror the
  // driver's downgrade anyway so no future refactor can turn an injected
  // death into a fake infeasibility proof.
  const std::uint64_t FaultsBefore = FI.fired(FaultSite::SatConflict);

  const SatLit Sel = Encoder->selector(T);
  const std::int64_t ConflictsStart = Solver->stats().Conflicts;

  for (;;) {
    A.Conflicts = Solver->stats().Conflicts - ConflictsStart;
    if (Cancel.cancelled())
      return finish(MilpStatus::Unknown, SearchStop::Cancelled);
    const double Remaining = TimeLimitSec - Watch.seconds();
    if (Remaining <= 0.0)
      return finish(MilpStatus::Unknown, SearchStop::TimeLimit);
    SatLimits Limits;
    Limits.TimeLimitSec = Remaining;
    Limits.ConflictLimit = ConflictLimit - A.Conflicts;
    Limits.Cancel = Cancel;
    if (Limits.ConflictLimit <= 0)
      return finish(MilpStatus::Unknown, SearchStop::NodeLimit);

    const SatStatus St = Solver->solve({Sel}, Limits);
    A.Conflicts = Solver->stats().Conflicts - ConflictsStart;

    if (St == SatStatus::Unknown) {
      switch (Solver->lastStop()) {
      case SatStop::TimeLimit:
        return finish(MilpStatus::Unknown, SearchStop::TimeLimit);
      case SatStop::ConflictLimit:
        return finish(MilpStatus::Unknown, SearchStop::NodeLimit);
      case SatStop::Cancelled:
        return finish(MilpStatus::Unknown, SearchStop::Cancelled);
      case SatStop::Fault:
      case SatStop::None:
        return finish(MilpStatus::Unknown, SearchStop::Fault);
      }
    }
    if (St == SatStatus::Unsat) {
      if (FI.fired(FaultSite::SatConflict) > FaultsBefore)
        return finish(MilpStatus::Unknown, SearchStop::Fault);
      return finish(MilpStatus::Infeasible, SearchStop::None);
    }

    // Sat: complete the model; recurrence cycles the pairwise encoding
    // cannot see are refined lazily until a completion exists.
    ModuloSchedule Sched;
    std::vector<int> CycleNodes;
    if (Encoder->decode(T, Sched, CycleNodes)) {
      A.Schedule = std::move(Sched);
      return finish(MilpStatus::Optimal, SearchStop::None);
    }
    Encoder->blockCycle(T, CycleNodes, Encoder->modelOffsets(T));
    ++A.CycleBlocks;
  }
}

SchedulerResult swp::satScheduleLoop(const Ddg &G, const MachineModel &Machine,
                                     const SchedulerOptions &Opts) {
  SchedulerResult Result;
  if (!G.isWellFormed(Machine.numTypes()) || !Machine.acceptsDdg(G)) {
    Result.Error = Status(StatusCode::InvalidInput,
                          "DDG is malformed or uses op classes the machine "
                          "does not define")
                       .withPhase("sat-driver")
                       .withInstance(G.name());
    return Result;
  }
  Result.TDep = recurrenceMii(G);
  Result.TRes = Machine.resourceMii(G);
  Result.TLowerBound = std::max({1, Result.TDep, Result.TRes});

  const std::uint64_t FiredBefore = FaultInjector::instance().totalFired();
  Stopwatch Total;
  SatScheduler Engine(G, Machine, Opts.Mapping);
  bool AllBelowProven = true;
  for (int T = Result.TLowerBound;
       T <= Result.TLowerBound + Opts.MaxTSlack; ++T) {
    if (Opts.Cancel.cancelled()) {
      Result.Cancelled = true;
      break;
    }
    TAttempt Attempt;
    Attempt.T = T;
    if (!Machine.moduloFeasible(G, T)) {
      Attempt.ModuloSkipped = true;
      Attempt.Status = MilpStatus::Infeasible;
      Result.Attempts.push_back(Attempt);
      continue;
    }

    SatAttempt A = Engine.solveAtT(T, Opts.TimeLimitPerT, Opts.NodeLimitPerT,
                                   Opts.Cancel);
    Attempt.Status = A.Status;
    Attempt.StopReason = A.Stop;
    Attempt.Seconds = A.Seconds;
    Attempt.Nodes = A.Conflicts;
    Result.TotalNodes += A.Conflicts;
    Result.Attempts.push_back(Attempt);

    if (A.Stop == SearchStop::Cancelled)
      Result.Cancelled = true;

    if (A.Status == MilpStatus::Error) {
      if (Result.Error.isOk())
        Result.Error = A.Error;
      AllBelowProven = false;
      if (A.Error.code() == StatusCode::InvalidInput)
        break;
      continue;
    }

    if (A.Status == MilpStatus::Optimal ||
        A.Status == MilpStatus::Feasible) {
      if (Opts.VerifySchedules) {
        VerifyResult V = verifySchedule(G, Machine, A.Schedule);
        if (!V.Ok) {
          Result.VerifyFailed = true;
          break;
        }
      }
      Result.Schedule = std::move(A.Schedule);
      Result.ProvenRateOptimal = AllBelowProven;
      break;
    }
    if (A.Status != MilpStatus::Infeasible)
      AllBelowProven = false;
    if (Result.Cancelled)
      break;
  }
  Result.FaultsSeen =
      FaultInjector::instance().totalFired() > FiredBefore;
  Result.TotalSeconds = Total.seconds();
  return Result;
}
