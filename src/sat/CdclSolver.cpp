//===- CdclSolver.cpp - Incremental CDCL SAT solver -----------------------===//

#include "swp/sat/CdclSolver.h"

#include "swp/support/FaultInjector.h"
#include "swp/support/Stopwatch.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

using namespace swp;

namespace {

/// Finite Luby sequence value: the i-th term of the 1,1,2,1,1,2,4,... series
/// scaled by powers of \p Y (the classic restart schedule).
double luby(double Y, int X) {
  int Size = 1, Seq = 0;
  while (Size < X + 1) {
    ++Seq;
    Size = 2 * Size + 1;
  }
  while (Size - 1 != X) {
    Size = (Size - 1) >> 1;
    --Seq;
    X = X % Size;
  }
  return std::pow(Y, Seq);
}

} // namespace

struct CdclSolver::Impl {
  struct Clause {
    bool Learnt = false;
    std::vector<SatLit> Lits;
  };

  /// 1 = true, -1 = false, 0 = unassigned (per variable).
  std::vector<std::int8_t> Assign;
  /// Decision level of each assigned variable.
  std::vector<int> Level;
  /// Antecedent clause of each propagated variable (null for decisions).
  std::vector<Clause *> Reason;
  /// Saved phase per variable (phase saving; seeded by setPolarity).
  std::vector<std::int8_t> Phase;
  /// VSIDS activity per variable.
  std::vector<double> Activity;
  double VarInc = 1.0;
  static constexpr double VarDecay = 0.95;

  /// Watch[L] = clauses to inspect when literal L becomes true (they watch
  /// the negation of L).
  std::vector<std::vector<Clause *>> Watches;

  std::vector<Clause *> Clauses;

  /// Assignment trail and per-level boundaries.
  std::vector<SatLit> Trail;
  std::vector<int> TrailLim;
  std::size_t QHead = 0;

  /// Activity-ordered max-heap of decision candidates.
  std::vector<int> Heap;
  std::vector<int> HeapPos;

  /// Scratch for conflict analysis.
  std::vector<std::int8_t> Seen;

  ~Impl() {
    for (Clause *C : Clauses)
      delete C;
  }

  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }

  int val(SatLit L) const {
    std::int8_t A = Assign[static_cast<std::size_t>(litVar(L))];
    return litNeg(L) ? -A : A;
  }

  // -- Decision heap ------------------------------------------------------

  bool heapLess(int A, int B) const { return Activity[static_cast<std::size_t>(A)] < Activity[static_cast<std::size_t>(B)]; }

  void heapSwap(std::size_t I, std::size_t J) {
    std::swap(Heap[I], Heap[J]);
    HeapPos[static_cast<std::size_t>(Heap[I])] = static_cast<int>(I);
    HeapPos[static_cast<std::size_t>(Heap[J])] = static_cast<int>(J);
  }

  void percolateUp(std::size_t I) {
    while (I > 0) {
      std::size_t Parent = (I - 1) / 2;
      if (!heapLess(Heap[Parent], Heap[I]))
        break;
      heapSwap(Parent, I);
      I = Parent;
    }
  }

  void percolateDown(std::size_t I) {
    for (;;) {
      std::size_t L = 2 * I + 1, R = 2 * I + 2, Best = I;
      if (L < Heap.size() && heapLess(Heap[Best], Heap[L]))
        Best = L;
      if (R < Heap.size() && heapLess(Heap[Best], Heap[R]))
        Best = R;
      if (Best == I)
        break;
      heapSwap(I, Best);
      I = Best;
    }
  }

  void heapInsert(int Var) {
    if (HeapPos[static_cast<std::size_t>(Var)] >= 0)
      return;
    HeapPos[static_cast<std::size_t>(Var)] = static_cast<int>(Heap.size());
    Heap.push_back(Var);
    percolateUp(Heap.size() - 1);
  }

  int heapPop() {
    int Top = Heap.front();
    heapSwap(0, Heap.size() - 1);
    Heap.pop_back();
    HeapPos[static_cast<std::size_t>(Top)] = -1;
    if (!Heap.empty())
      percolateDown(0);
    return Top;
  }

  void bumpActivity(int Var) {
    double &A = Activity[static_cast<std::size_t>(Var)];
    A += VarInc;
    if (A > 1e100) {
      for (double &X : Activity)
        X *= 1e-100;
      VarInc *= 1e-100;
    }
    int Pos = HeapPos[static_cast<std::size_t>(Var)];
    if (Pos >= 0)
      percolateUp(static_cast<std::size_t>(Pos));
  }

  // -- Trail --------------------------------------------------------------

  void uncheckedEnqueue(SatLit L, Clause *From) {
    std::size_t V = static_cast<std::size_t>(litVar(L));
    Assign[V] = litNeg(L) ? -1 : 1;
    Level[V] = decisionLevel();
    Reason[V] = From;
    Trail.push_back(L);
  }

  void cancelUntil(int LevelTo) {
    if (decisionLevel() <= LevelTo)
      return;
    std::size_t Bound =
        static_cast<std::size_t>(TrailLim[static_cast<std::size_t>(LevelTo)]);
    for (std::size_t I = Trail.size(); I > Bound; --I) {
      SatLit L = Trail[I - 1];
      std::size_t V = static_cast<std::size_t>(litVar(L));
      Phase[V] = Assign[V];
      Assign[V] = 0;
      Reason[V] = nullptr;
      heapInsert(static_cast<int>(V));
    }
    Trail.resize(Bound);
    TrailLim.resize(static_cast<std::size_t>(LevelTo));
    QHead = Trail.size();
  }

  // -- Propagation --------------------------------------------------------

  void attach(Clause *C) {
    Watches[static_cast<std::size_t>(litNot(C->Lits[0]))].push_back(C);
    Watches[static_cast<std::size_t>(litNot(C->Lits[1]))].push_back(C);
  }

  Clause *propagate(std::int64_t &Propagations) {
    while (QHead < Trail.size()) {
      SatLit P = Trail[QHead++];
      ++Propagations;
      std::vector<Clause *> &WL = Watches[static_cast<std::size_t>(P)];
      std::size_t I = 0, J = 0;
      while (I < WL.size()) {
        Clause *C = WL[I++];
        std::vector<SatLit> &Ls = C->Lits;
        // Normalize: the literal falsified by P sits at position 1.
        if (Ls[0] == litNot(P))
          std::swap(Ls[0], Ls[1]);
        if (val(Ls[0]) == 1) { // Clause already satisfied.
          WL[J++] = C;
          continue;
        }
        bool Rewatched = false;
        for (std::size_t K = 2; K < Ls.size(); ++K) {
          if (val(Ls[K]) != -1) {
            std::swap(Ls[1], Ls[K]);
            Watches[static_cast<std::size_t>(litNot(Ls[1]))].push_back(C);
            Rewatched = true;
            break;
          }
        }
        if (Rewatched)
          continue;
        WL[J++] = C;
        if (val(Ls[0]) == -1) { // All literals false: conflict.
          while (I < WL.size())
            WL[J++] = WL[I++];
          WL.resize(J);
          QHead = Trail.size();
          return C;
        }
        uncheckedEnqueue(Ls[0], C);
      }
      WL.resize(J);
    }
    return nullptr;
  }

  // -- Conflict analysis (first UIP) --------------------------------------

  void analyze(Clause *Confl, std::vector<SatLit> &Learnt, int &BtLevel) {
    Learnt.clear();
    Learnt.push_back(0); // Placeholder for the asserting literal.
    int Counter = 0;
    SatLit P = -1;
    std::size_t Idx = Trail.size();
    do {
      for (std::size_t K = (P == -1 ? 0 : 1); K < Confl->Lits.size(); ++K) {
        SatLit Q = Confl->Lits[K];
        std::size_t V = static_cast<std::size_t>(litVar(Q));
        if (Seen[V] || Level[V] == 0)
          continue;
        Seen[V] = 1;
        bumpActivity(static_cast<int>(V));
        if (Level[V] >= decisionLevel())
          ++Counter;
        else
          Learnt.push_back(Q);
      }
      while (!Seen[static_cast<std::size_t>(litVar(Trail[Idx - 1]))])
        --Idx;
      P = Trail[Idx - 1];
      --Idx;
      Seen[static_cast<std::size_t>(litVar(P))] = 0;
      --Counter;
      if (Counter > 0)
        Confl = Reason[static_cast<std::size_t>(litVar(P))];
    } while (Counter > 0);
    Learnt[0] = litNot(P);

    // Backjump to the second-highest level in the clause; put a literal of
    // that level at position 1 (the second watch).  Clear every Seen flag
    // before reordering — swapping first would strand the max-level
    // literal's flag set, silently dropping it from the next analysis.
    BtLevel = 0;
    std::size_t MaxPos = 1;
    for (std::size_t K = 1; K < Learnt.size(); ++K) {
      Seen[static_cast<std::size_t>(litVar(Learnt[K]))] = 0;
      int L = Level[static_cast<std::size_t>(litVar(Learnt[K]))];
      if (L > BtLevel) {
        BtLevel = L;
        MaxPos = K;
      }
    }
    if (Learnt.size() > 1)
      std::swap(Learnt[1], Learnt[MaxPos]);
  }
};

const char *swp::satStatusName(SatStatus S) {
  switch (S) {
  case SatStatus::Sat:
    return "sat";
  case SatStatus::Unsat:
    return "unsat";
  case SatStatus::Unknown:
    return "unknown";
  }
  return "?";
}

CdclSolver::CdclSolver() : P(new Impl) {}

CdclSolver::~CdclSolver() { delete P; }

int CdclSolver::newVar() {
  int V = NumVars++;
  P->Assign.push_back(0);
  P->Level.push_back(0);
  P->Reason.push_back(nullptr);
  P->Phase.push_back(-1); // Decide false first (sparse placements).
  P->Activity.push_back(0.0);
  P->Watches.emplace_back();
  P->Watches.emplace_back();
  P->HeapPos.push_back(-1);
  P->Seen.push_back(0);
  P->heapInsert(V);
  Model.push_back(-1);
  return V;
}

void CdclSolver::setPolarity(int Var, bool Value) {
  P->Phase[static_cast<std::size_t>(Var)] = Value ? 1 : -1;
}

bool CdclSolver::addClause(const std::vector<SatLit> &Lits) {
  if (!Ok)
    return false;
  // Clauses are only added at decision level 0 (between solves).
  std::vector<SatLit> Ls(Lits);
  std::sort(Ls.begin(), Ls.end());
  Ls.erase(std::unique(Ls.begin(), Ls.end()), Ls.end());
  std::vector<SatLit> Out;
  for (std::size_t I = 0; I < Ls.size(); ++I) {
    if (I + 1 < Ls.size() && Ls[I + 1] == litNot(Ls[I]) &&
        litVar(Ls[I]) == litVar(Ls[I + 1]))
      return true; // Tautology.
    int V = P->val(Ls[I]);
    if (V == 1)
      return true; // Satisfied at level 0.
    if (V == 0)
      Out.push_back(Ls[I]);
  }
  if (Out.empty()) {
    Ok = false;
    return false;
  }
  if (Out.size() == 1) {
    P->uncheckedEnqueue(Out[0], nullptr);
    if (P->propagate(Stats.Propagations) != nullptr)
      Ok = false;
    return Ok;
  }
  Impl::Clause *C = new Impl::Clause;
  C->Lits = std::move(Out);
  P->Clauses.push_back(C);
  P->attach(C);
  ++NumProblemClauses;
  return true;
}

SatStatus CdclSolver::solve(const std::vector<SatLit> &Assumptions,
                            const SatLimits &Limits) {
  LastStop = SatStop::None;
  if (!Ok)
    return SatStatus::Unsat;

  Stopwatch Watch;
  FaultInjector &FI = FaultInjector::instance();
  const std::int64_t ConflictsStart = Stats.Conflicts;
  int RestartNum = 0;
  std::int64_t RestartBudget =
      static_cast<std::int64_t>(luby(2.0, RestartNum) * 64.0);
  std::int64_t ConflictsSinceRestart = 0;
  std::vector<SatLit> Learnt;

  auto stop = [&](SatStop Why) {
    LastStop = Why;
    P->cancelUntil(0);
    return SatStatus::Unknown;
  };

  for (;;) {
    Impl::Clause *Confl = P->propagate(Stats.Propagations);
    if (Confl != nullptr) {
      ++Stats.Conflicts;
      ++ConflictsSinceRestart;
      if (FI.armed() && FI.shouldFire(FaultSite::SatConflict)) {
        // Injected search death: report nothing proven, never Unsat.
        ++Stats.InjectedFaults;
        return stop(SatStop::Fault);
      }
      if (P->decisionLevel() == 0) {
        Ok = false;
        P->cancelUntil(0);
        return SatStatus::Unsat;
      }
      int BtLevel = 0;
      P->analyze(Confl, Learnt, BtLevel);
      P->cancelUntil(BtLevel);
      if (Learnt.size() == 1) {
        P->uncheckedEnqueue(Learnt[0], nullptr);
      } else {
        Impl::Clause *C = new Impl::Clause;
        C->Learnt = true;
        C->Lits = Learnt;
        P->Clauses.push_back(C);
        P->attach(C);
        ++Stats.LearnedClauses;
        Stats.LearnedLiterals += static_cast<std::int64_t>(Learnt.size());
        P->uncheckedEnqueue(Learnt[0], C);
      }
      P->VarInc /= Impl::VarDecay;

      if (Stats.Conflicts - ConflictsStart >= Limits.ConflictLimit)
        return stop(SatStop::ConflictLimit);
      if ((ConflictsSinceRestart & 63) == 0) {
        if (Watch.seconds() >= Limits.TimeLimitSec)
          return stop(SatStop::TimeLimit);
        if (Limits.Cancel.cancelled())
          return stop(SatStop::Cancelled);
      }
    } else {
      if (ConflictsSinceRestart >= RestartBudget) {
        ++Stats.Restarts;
        ++RestartNum;
        RestartBudget =
            static_cast<std::int64_t>(luby(2.0, RestartNum) * 64.0);
        ConflictsSinceRestart = 0;
        P->cancelUntil(0);
        if (Watch.seconds() >= Limits.TimeLimitSec)
          return stop(SatStop::TimeLimit);
        if (Limits.Cancel.cancelled())
          return stop(SatStop::Cancelled);
        continue;
      }

      SatLit Next = -1;
      while (P->decisionLevel() < static_cast<int>(Assumptions.size())) {
        SatLit A =
            Assumptions[static_cast<std::size_t>(P->decisionLevel())];
        int V = P->val(A);
        if (V == 1) {
          // Already implied; open a dummy level to keep indices aligned.
          P->TrailLim.push_back(static_cast<int>(P->Trail.size()));
        } else if (V == -1) {
          // Assumption contradicted by learned/problem clauses: unsat
          // under these assumptions (the instance itself may stay sat).
          P->cancelUntil(0);
          return SatStatus::Unsat;
        } else {
          Next = A;
          break;
        }
      }
      if (Next == -1) {
        int Var = -1;
        while (!P->Heap.empty()) {
          int Cand = P->heapPop();
          if (P->Assign[static_cast<std::size_t>(Cand)] == 0) {
            Var = Cand;
            break;
          }
        }
        if (Var == -1) {
          // Every variable assigned: a model.
          Model = P->Assign;
          P->cancelUntil(0);
          return SatStatus::Sat;
        }
        ++Stats.Decisions;
        Next = mkLit(Var, P->Phase[static_cast<std::size_t>(Var)] < 0);
      }
      P->TrailLim.push_back(static_cast<int>(P->Trail.size()));
      P->uncheckedEnqueue(Next, nullptr);
    }
  }
}
