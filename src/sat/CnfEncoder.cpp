//===- CnfEncoder.cpp - Scheduling-to-CNF encoder -------------------------===//

#include "swp/sat/CnfEncoder.h"

#include "swp/ddg/Analysis.h"

#include <algorithm>
#include <cassert>

using namespace swp;

namespace {

int ceilDiv(int A, int B) {
  return A >= 0 ? (A + B - 1) / B : -((-A) / B);
}

/// Guarded Sinz sequential-counter encoding of sum(X) <= K.  Aux variables
/// R[i][j] read "at least j+1 of X[0..i] are true"; every clause carries
/// \p Guard so the whole row retracts with its period selector.
void sinzAtMost(CdclSolver &S, const std::vector<SatLit> &X, int K,
                SatLit Guard) {
  const int N = static_cast<int>(X.size());
  assert(N > K && K >= 1 && "caller skips vacuous rows");
  std::vector<std::vector<int>> R(static_cast<std::size_t>(N - 1));
  for (auto &Row : R) {
    Row.resize(static_cast<std::size_t>(K));
    for (int J = 0; J < K; ++J)
      Row[static_cast<std::size_t>(J)] = S.newVar();
  }
  auto at = [&R](int I, int J) {
    return R[static_cast<std::size_t>(I)][static_cast<std::size_t>(J)];
  };
  S.addClause({Guard, litNot(X[0]), mkLit(at(0, 0))});
  for (int J = 1; J < K; ++J)
    S.addClause({Guard, mkLit(at(0, J), true)});
  for (int I = 1; I < N - 1; ++I) {
    S.addClause({Guard, litNot(X[static_cast<std::size_t>(I)]),
                 mkLit(at(I, 0))});
    S.addClause({Guard, mkLit(at(I - 1, 0), true), mkLit(at(I, 0))});
    for (int J = 1; J < K; ++J) {
      S.addClause({Guard, litNot(X[static_cast<std::size_t>(I)]),
                   mkLit(at(I - 1, J - 1), true), mkLit(at(I, J))});
      S.addClause({Guard, mkLit(at(I - 1, J), true), mkLit(at(I, J))});
    }
    S.addClause({Guard, litNot(X[static_cast<std::size_t>(I)]),
                 mkLit(at(I - 1, K - 1), true)});
  }
  S.addClause({Guard, litNot(X[static_cast<std::size_t>(N - 1)]),
               mkLit(at(N - 2, K - 1), true)});
}

} // namespace

CnfEncoder::CnfEncoder(const Ddg &Graph, const MachineModel &M,
                       MappingKind Kind, CdclSolver &Solver)
    : G(Graph), Machine(M), Mapping(Kind), S(Solver) {
  TDep = recurrenceMii(G);
  const int N = G.numNodes();
  ColorVar.resize(static_cast<std::size_t>(N));
  OverlapByPair.assign(static_cast<std::size_t>(N) *
                           static_cast<std::size_t>(N),
                       -1);
  OpsOfType.resize(static_cast<std::size_t>(Machine.numTypes()));
  for (int R = 0; R < Machine.numTypes(); ++R)
    OpsOfType[static_cast<std::size_t>(R)] = G.nodesOfClass(R);
  TopoPath = Kind == MappingKind::Fixed && Machine.topologyConstrains();
  if (TopoPath)
    buildInstanceSkeleton();
  else
    buildColoringSkeleton();
}

bool CnfEncoder::triviallyInfeasible(int T) const {
  if (T < 1 || T < TDep)
    return true;
  for (const DdgEdge &E : G.edges())
    if (E.Src == E.Dst && E.Latency - T * E.Distance > 0)
      return true;
  return !Machine.moduloFeasible(G, T);
}

void CnfEncoder::buildColoringSkeleton() {
  // T-independent coloring block: one-hot colors with lexicographic
  // symmetry breaking (op Ix of its type uses colors 0..min(Ix, R-1)),
  // only for fixed mapping on types with more ops than units — other
  // types always admit a greedy completion (see decode()).
  if (Mapping != MappingKind::Fixed)
    return;
  for (int R = 0; R < Machine.numTypes(); ++R) {
    const std::vector<int> &Ops = OpsOfType[static_cast<std::size_t>(R)];
    const int Count = Machine.type(R).Count;
    if (Count < 2 || static_cast<int>(Ops.size()) <= Count)
      continue;
    for (std::size_t Ix = 0; Ix < Ops.size(); ++Ix) {
      const int Ub = std::min(static_cast<int>(Ix) + 1, Count);
      std::vector<int> &Cv = ColorVar[static_cast<std::size_t>(Ops[Ix])];
      Cv.resize(static_cast<std::size_t>(Ub));
      std::vector<SatLit> Alo;
      for (int U = 0; U < Ub; ++U) {
        Cv[static_cast<std::size_t>(U)] = S.newVar();
        Alo.push_back(mkLit(Cv[static_cast<std::size_t>(U)]));
      }
      S.addClause(Alo);
      for (int U = 0; U < Ub; ++U)
        for (int V = U + 1; V < Ub; ++V)
          S.addClause({mkLit(Cv[static_cast<std::size_t>(U)], true),
                       mkLit(Cv[static_cast<std::size_t>(V)], true)});
    }
  }
}

void CnfEncoder::buildInstanceSkeleton() {
  // T-independent instance block: colors cannot express adjacency, so the
  // topology path names units explicitly via x[i][u] one-hots.
  Topo = Machine.topology();
  UnitBase.assign(static_cast<std::size_t>(Machine.numTypes()), 0);
  for (int R = 1; R < Machine.numTypes(); ++R)
    UnitBase[static_cast<std::size_t>(R)] =
        UnitBase[static_cast<std::size_t>(R) - 1] + Machine.type(R - 1).Count;

  const int N = G.numNodes();
  InstVar.resize(static_cast<std::size_t>(N));
  for (int I = 0; I < N; ++I) {
    const int Count = Machine.type(G.node(I).OpClass).Count;
    std::vector<int> &Xv = InstVar[static_cast<std::size_t>(I)];
    Xv.resize(static_cast<std::size_t>(Count));
    std::vector<SatLit> Alo;
    for (int U = 0; U < Count; ++U) {
      Xv[static_cast<std::size_t>(U)] = S.newVar();
      Alo.push_back(mkLit(Xv[static_cast<std::size_t>(U)]));
    }
    S.addClause(Alo);
    for (int U = 0; U < Count; ++U)
      for (int V = U + 1; V < Count; ++V)
        S.addClause({mkLit(Xv[static_cast<std::size_t>(U)], true),
                     mkLit(Xv[static_cast<std::size_t>(V)], true)});
  }

  // Interchange-class symmetry breaking (the x-space analogue of the
  // lexicographic color caps): within a class of swap-invariant units,
  // members are used in first-use order — op a may sit on member b only
  // if an earlier op of its type uses member b-1.
  for (int R = 0; R < Machine.numTypes(); ++R) {
    const std::vector<int> &Ops = OpsOfType[static_cast<std::size_t>(R)];
    const int Count = Machine.type(R).Count;
    if (Ops.empty() || Count < 2)
      continue;
    const int Base = UnitBase[static_cast<std::size_t>(R)];
    for (const std::vector<int> &Class :
         Topo->interchangeClasses(Base, Base + Count)) {
      for (std::size_t BIx = 1; BIx < Class.size(); ++BIx) {
        const int Prev = Class[BIx - 1] - Base;
        const int Cur = Class[BIx] - Base;
        for (std::size_t AIx = 0; AIx < Ops.size(); ++AIx) {
          std::vector<SatLit> C;
          C.push_back(mkLit(InstVar[static_cast<std::size_t>(Ops[AIx])]
                                   [static_cast<std::size_t>(Cur)],
                            true));
          for (std::size_t E = 0; E < AIx; ++E)
            C.push_back(mkLit(InstVar[static_cast<std::size_t>(Ops[E])]
                                     [static_cast<std::size_t>(Prev)]));
          S.addClause(C);
        }
      }
    }
  }

  // Forbidden placements: unreachable / over-MaxHops producer-consumer
  // unit pairs per DDG edge.  Unguarded — adjacency is T-independent.
  for (const DdgEdge &E : G.edges()) {
    if (E.Src == E.Dst)
      continue;
    const int Ri = G.node(E.Src).OpClass, Rj = G.node(E.Dst).OpClass;
    for (int U = 0; U < Machine.type(Ri).Count; ++U) {
      const int GU = UnitBase[static_cast<std::size_t>(Ri)] + U;
      for (int V = 0; V < Machine.type(Rj).Count; ++V) {
        const int GV = UnitBase[static_cast<std::size_t>(Rj)] + V;
        if (!Topo->feedAllowed(GU, GV))
          S.addClause({mkLit(InstVar[static_cast<std::size_t>(E.Src)]
                                    [static_cast<std::size_t>(U)],
                             true),
                       mkLit(InstVar[static_cast<std::size_t>(E.Dst)]
                                    [static_cast<std::size_t>(V)],
                             true)});
      }
    }
  }

  // Route indicators y[e][u][c] (value of edge e leaves unit u across
  // exactly c >= 2 hops): forced to 1 by any (x_iu, x_jv) pair at hop
  // distance c; their ROUTE-cell collisions are forbidden per period in
  // encodePeriod.
  for (std::size_t EIx = 0; EIx < G.edges().size(); ++EIx) {
    const DdgEdge &E = G.edges()[EIx];
    if (E.Src == E.Dst)
      continue;
    const int Ri = G.node(E.Src).OpClass, Rj = G.node(E.Dst).OpClass;
    for (int U = 0; U < Machine.type(Ri).Count; ++U) {
      const int GU = UnitBase[static_cast<std::size_t>(Ri)] + U;
      for (int C = 2;; ++C) {
        std::vector<int> Consumers;
        bool AnyBeyond = false;
        for (int V = 0; V < Machine.type(Rj).Count; ++V) {
          const int GV = UnitBase[static_cast<std::size_t>(Rj)] + V;
          if (!Topo->feedAllowed(GU, GV))
            continue;
          const int H = Topo->hops(GU, GV);
          if (H == C)
            Consumers.push_back(V);
          else if (H > C)
            AnyBeyond = true;
        }
        if (Consumers.empty()) {
          if (!AnyBeyond)
            break;
          continue;
        }
        const int Y = S.newVar();
        RouteVars.push_back({static_cast<int>(EIx), GU, C, Y});
        for (int V : Consumers)
          S.addClause({mkLit(Y),
                       mkLit(InstVar[static_cast<std::size_t>(E.Src)]
                                    [static_cast<std::size_t>(U)],
                             true),
                       mkLit(InstVar[static_cast<std::size_t>(E.Dst)]
                                    [static_cast<std::size_t>(V)],
                             true)});
      }
    }
  }
}

int CnfEncoder::overlapVar(int, int, int NodeI, int NodeJ) {
  const std::size_t Key = static_cast<std::size_t>(NodeI) *
                              static_cast<std::size_t>(G.numNodes()) +
                          static_cast<std::size_t>(NodeJ);
  int &O = OverlapByPair[Key];
  if (O >= 0)
    return O;
  O = S.newVar();
  // Overlapping same-type ops must map to different units: forbid every
  // shared color (or shared instance on the topology path) once the
  // overlap indicator is raised.  Unguarded — the implication is
  // period-independent (o_ij is only *forced* per period).
  const std::vector<int> &Ci =
      TopoPath ? InstVar[static_cast<std::size_t>(NodeI)]
               : ColorVar[static_cast<std::size_t>(NodeI)];
  const std::vector<int> &Cj =
      TopoPath ? InstVar[static_cast<std::size_t>(NodeJ)]
               : ColorVar[static_cast<std::size_t>(NodeJ)];
  const std::size_t Shared = std::min(Ci.size(), Cj.size());
  for (std::size_t U = 0; U < Shared; ++U)
    S.addClause({mkLit(O, true), mkLit(Ci[U], true), mkLit(Cj[U], true)});
  return O;
}

void CnfEncoder::ensureRows(int T) {
  const int N = G.numNodes();
  while (static_cast<int>(AVar.size()) < T) {
    std::vector<int> Row(static_cast<std::size_t>(N));
    const std::size_t Prev = AVar.size();
    for (int I = 0; I < N; ++I) {
      Row[static_cast<std::size_t>(I)] = S.newVar();
      // Unguarded at-most-one per column: a[t][i] rows beyond the assumed
      // period are then forced off by the guarded at-least-one below it.
      for (std::size_t Pt = 0; Pt < Prev; ++Pt)
        S.addClause({mkLit(Row[static_cast<std::size_t>(I)], true),
                     mkLit(AVar[Pt][static_cast<std::size_t>(I)], true)});
    }
    AVar.push_back(std::move(Row));
  }
}

SatLit CnfEncoder::selector(int T) {
  assert(!triviallyInfeasible(T) && "encode only searchable periods");
  if (static_cast<int>(SelVar.size()) <= T)
    SelVar.resize(static_cast<std::size_t>(T) + 1, -1);
  int &Sel = SelVar[static_cast<std::size_t>(T)];
  if (Sel < 0) {
    ensureRows(T);
    Sel = S.newVar();
    encodePeriod(T, Sel);
  }
  return mkLit(Sel);
}

void CnfEncoder::encodePeriod(int T, int Sel) {
  const SatLit NS = mkLit(Sel, true);
  const int N = G.numNodes();

  // At-least-one offset in [0,T) per instruction (Eq. 9/23 at this T).
  for (int I = 0; I < N; ++I) {
    std::vector<SatLit> Alo;
    Alo.push_back(NS);
    for (int Row = 0; Row < T; ++Row)
      Alo.push_back(mkLit(AVar[static_cast<std::size_t>(Row)]
                              [static_cast<std::size_t>(I)]));
    S.addClause(Alo);
  }

  // Eager dependence windows for 2-cycles (Eq. 4/8 around a cycle): the K
  // differences of a cycle i <-> j must cancel, which holds iff the
  // ceil-weights of both edges sum to <= 0 — enumerable over offset pairs.
  // Longer cycles go through the lazy blockCycle() refinement instead.
  const std::vector<DdgEdge> &Edges = G.edges();
  for (std::size_t A = 0; A < Edges.size(); ++A) {
    const DdgEdge &E1 = Edges[A];
    if (E1.Src >= E1.Dst)
      continue;
    for (std::size_t B = 0; B < Edges.size(); ++B) {
      const DdgEdge &E2 = Edges[B];
      if (E2.Src != E1.Dst || E2.Dst != E1.Src)
        continue;
      for (int P = 0; P < T; ++P) {
        for (int Q = 0; Q < T; ++Q) {
          const int W1 = ceilDiv(E1.Latency - T * E1.Distance + P - Q, T);
          const int W2 = ceilDiv(E2.Latency - T * E2.Distance + Q - P, T);
          if (W1 + W2 > 0)
            S.addClause({NS,
                         mkLit(AVar[static_cast<std::size_t>(P)]
                                   [static_cast<std::size_t>(E1.Src)],
                               true),
                         mkLit(AVar[static_cast<std::size_t>(Q)]
                                   [static_cast<std::size_t>(E1.Dst)],
                               true)});
        }
      }
    }
  }

  for (int R = 0; R < Machine.numTypes(); ++R) {
    const std::vector<int> &Ops = OpsOfType[static_cast<std::size_t>(R)];
    if (Ops.empty())
      continue;
    const int Count = Machine.type(R).Count;

    // Usage rows (Eq. 5/24-25): per stage and pattern step, at most R_r
    // ops of the type occupy the stage.  Implied by the coloring block for
    // fixed mapping but kept as redundant pruning; load-bearing for
    // run-time mapping.
    int MaxStages = 0;
    for (int Op : Ops)
      MaxStages = std::max(MaxStages,
                           Machine.tableFor(G.node(Op)).numStages());
    for (int Stage = 0; Stage < MaxStages; ++Stage) {
      for (int Slot = 0; Slot < T; ++Slot) {
        std::vector<SatLit> Lits;
        int ContributingOps = 0;
        for (int Op : Ops) {
          const ReservationTable &Tab = Machine.tableFor(G.node(Op));
          if (Stage >= Tab.numStages())
            continue;
          bool Contributes = false;
          for (int L : Tab.busyColumns(Stage)) {
            const int Row = ((Slot - L) % T + T) % T;
            Lits.push_back(mkLit(AVar[static_cast<std::size_t>(Row)]
                                     [static_cast<std::size_t>(Op)]));
            Contributes = true;
          }
          if (Contributes)
            ++ContributingOps;
        }
        if (ContributingOps <= Count ||
            static_cast<int>(Lits.size()) <= Count)
          continue; // Each op contributes at most 1: the row is vacuous.
        sinzAtMost(S, Lits, Count, NS);
      }
    }

    // Unit collisions (the paper's circular-arc coloring condition): two
    // same-type ops whose reservation tables collide at their offset
    // delta cannot share a unit.  The topology path needs them for every
    // multi-op type: adjacency may force unit sharing even when distinct
    // units would fit.
    if (Mapping != MappingKind::Fixed ||
        (!TopoPath && static_cast<int>(Ops.size()) <= Count))
      continue;
    for (std::size_t IxI = 0; IxI < Ops.size(); ++IxI) {
      for (std::size_t IxJ = IxI + 1; IxJ < Ops.size(); ++IxJ) {
        const int NodeI = Ops[IxI], NodeJ = Ops[IxJ];
        const ReservationTable &Ti = Machine.tableFor(G.node(NodeI));
        const ReservationTable &Tj = Machine.tableFor(G.node(NodeJ));
        std::vector<char> ConflictAt(static_cast<std::size_t>(T));
        bool Any = false;
        for (int D = 0; D < T; ++D) {
          ConflictAt[static_cast<std::size_t>(D)] =
              tablesConflictAtOffset(Ti, Tj, D, T) ? 1 : 0;
          Any = Any || ConflictAt[static_cast<std::size_t>(D)];
        }
        if (!Any)
          continue;
        const int Ov = Count == 1 ? -1
                                  : overlapVar(static_cast<int>(IxI),
                                               static_cast<int>(IxJ),
                                               NodeI, NodeJ);
        for (int P = 0; P < T; ++P) {
          for (int Q = 0; Q < T; ++Q) {
            if (!ConflictAt[static_cast<std::size_t>(((Q - P) % T + T) % T)])
              continue;
            std::vector<SatLit> C{
                NS,
                mkLit(AVar[static_cast<std::size_t>(P)]
                          [static_cast<std::size_t>(NodeI)],
                      true),
                mkLit(AVar[static_cast<std::size_t>(Q)]
                          [static_cast<std::size_t>(NodeJ)],
                      true)};
            if (Ov >= 0)
              C.push_back(mkLit(Ov));
            S.addClause(C);
          }
        }
      }
    }
  }

  if (!TopoPath)
    return;

  // ROUTE-cell constraints at this period.  A route (e, u, c) occupies
  // the producer's unit at pattern steps (p + col) mod T for each column
  // col of routeColumns(L, c, hopLatency), p being the producer's offset.
  for (const RouteVarIds &RV : RouteVars) {
    const DdgEdge &E = G.edges()[static_cast<std::size_t>(RV.Edge)];
    const std::vector<int> Cols =
        Topology::routeColumns(E.Latency, RV.Hops, Topo->hopLatency());
    // Self-collision: the route's own columns fold onto one pattern step,
    // so placements activating it are infeasible at this T.
    for (std::size_t A = 0; A < Cols.size(); ++A)
      for (std::size_t B = A + 1; B < Cols.size(); ++B)
        if ((Cols[A] - Cols[B]) % T == 0) {
          S.addClause({NS, mkLit(RV.Var, true)});
          A = Cols.size();
          break;
        }
  }
  for (std::size_t R1 = 0; R1 < RouteVars.size(); ++R1) {
    for (std::size_t R2 = R1 + 1; R2 < RouteVars.size(); ++R2) {
      const RouteVarIds &A1 = RouteVars[R1];
      const RouteVarIds &A2 = RouteVars[R2];
      if (A1.Unit != A2.Unit || A1.Edge == A2.Edge)
        continue;
      const DdgEdge &E1 = G.edges()[static_cast<std::size_t>(A1.Edge)];
      const DdgEdge &E2 = G.edges()[static_cast<std::size_t>(A2.Edge)];
      const std::vector<int> Cols1 =
          Topology::routeColumns(E1.Latency, A1.Hops, Topo->hopLatency());
      const std::vector<int> Cols2 =
          Topology::routeColumns(E2.Latency, A2.Hops, Topo->hopLatency());
      for (int Col1 : Cols1) {
        for (int Col2 : Cols2) {
          for (int P = 0; P < T; ++P) {
            const int Q = ((P + Col1 - Col2) % T + T) % T;
            if (E1.Src == E2.Src && Q != P)
              continue; // One producer, one offset: vacuous.
            std::vector<SatLit> C{NS,
                                  mkLit(AVar[static_cast<std::size_t>(P)]
                                            [static_cast<std::size_t>(E1.Src)],
                                        true)};
            if (E1.Src != E2.Src)
              C.push_back(mkLit(AVar[static_cast<std::size_t>(Q)]
                                    [static_cast<std::size_t>(E2.Src)],
                                true));
            C.push_back(mkLit(A1.Var, true));
            C.push_back(mkLit(A2.Var, true));
            S.addClause(C);
          }
        }
      }
    }
  }
}

std::vector<int> CnfEncoder::modelOffsets(int T) const {
  const int N = G.numNodes();
  std::vector<int> Offsets(static_cast<std::size_t>(N), 0);
  for (int I = 0; I < N; ++I)
    for (int Row = 0; Row < T; ++Row)
      if (S.modelValue(AVar[static_cast<std::size_t>(Row)]
                           [static_cast<std::size_t>(I)])) {
        Offsets[static_cast<std::size_t>(I)] = Row;
        break;
      }
  return Offsets;
}

int CnfEncoder::modelUnit(int Node) const {
  const std::vector<int> &Xv = InstVar[static_cast<std::size_t>(Node)];
  for (std::size_t U = 0; U < Xv.size(); ++U)
    if (S.modelValue(Xv[U]))
      return static_cast<int>(U);
  return 0;
}

bool CnfEncoder::decode(int T, ModuloSchedule &Out,
                        std::vector<int> &CycleNodes) const {
  CycleNodes.clear();
  const int N = G.numNodes();
  const std::vector<int> Offsets = modelOffsets(T);

  // On the topology path the mapping is read before the K completion:
  // routing penalties rho(h) enter the dependence-edge weights (and
  // blockCycle must then include the instance literals — see there).
  std::vector<int> Units;
  if (TopoPath) {
    Units.resize(static_cast<std::size_t>(N));
    for (int I = 0; I < N; ++I)
      Units[static_cast<std::size_t>(I)] = modelUnit(I);
  }
  auto EdgeRho = [&](const DdgEdge &E) {
    if (!TopoPath)
      return 0;
    const int GU =
        UnitBase[static_cast<std::size_t>(G.node(E.Src).OpClass)] +
        Units[static_cast<std::size_t>(E.Src)];
    const int GV =
        UnitBase[static_cast<std::size_t>(G.node(E.Dst).OpClass)] +
        Units[static_cast<std::size_t>(E.Dst)];
    return Topo->routePenalty(GU, GV);
  };

  // K vector by Bellman-Ford over k_j - k_i >= ceil((lat - T*m + off_i -
  // off_j) / T), with predecessor tracking for the positive-cycle witness.
  const std::vector<DdgEdge> &Edges = G.edges();
  std::vector<int> K(static_cast<std::size_t>(N), 0);
  std::vector<int> PredEdge(static_cast<std::size_t>(N), -1);
  for (int Pass = 0; Pass <= N; ++Pass) {
    bool Changed = false;
    for (std::size_t EI = 0; EI < Edges.size(); ++EI) {
      const DdgEdge &E = Edges[EI];
      const int W = ceilDiv(E.Latency + EdgeRho(E) - T * E.Distance +
                                Offsets[static_cast<std::size_t>(E.Src)] -
                                Offsets[static_cast<std::size_t>(E.Dst)],
                            T);
      const int Cand = K[static_cast<std::size_t>(E.Src)] + W;
      if (Cand > K[static_cast<std::size_t>(E.Dst)]) {
        if (Pass == N) {
          // Walk predecessors until a node repeats: that suffix is a
          // positive cycle under these offsets.
          std::vector<char> Seen(static_cast<std::size_t>(N), 0);
          int X = E.Dst;
          while (PredEdge[static_cast<std::size_t>(X)] >= 0 &&
                 !Seen[static_cast<std::size_t>(X)]) {
            Seen[static_cast<std::size_t>(X)] = 1;
            X = Edges[static_cast<std::size_t>(
                          PredEdge[static_cast<std::size_t>(X)])]
                    .Src;
          }
          if (PredEdge[static_cast<std::size_t>(X)] >= 0) {
            CycleNodes.push_back(X);
            for (int Y = Edges[static_cast<std::size_t>(
                                   PredEdge[static_cast<std::size_t>(X)])]
                             .Src;
                 Y != X;
                 Y = Edges[static_cast<std::size_t>(
                               PredEdge[static_cast<std::size_t>(Y)])]
                         .Src)
              CycleNodes.push_back(Y);
          }
          // Soundness check: blocking a cycle's offsets is only legal when
          // that cycle really is positive under them.  If the witness does
          // not check out (or the walk hit a dead end), fall back to
          // blocking the complete offset vector — weaker but always sound,
          // since Bellman-Ford just proved it has no K completion.
          int CycleWeight = 0;
          for (int Z : CycleNodes) {
            const DdgEdge &PE =
                Edges[static_cast<std::size_t>(
                    PredEdge[static_cast<std::size_t>(Z)])];
            CycleWeight +=
                ceilDiv(PE.Latency + EdgeRho(PE) - T * PE.Distance +
                            Offsets[static_cast<std::size_t>(PE.Src)] -
                            Offsets[static_cast<std::size_t>(PE.Dst)],
                        T);
          }
          if (CycleNodes.empty() || CycleWeight <= 0) {
            CycleNodes.clear();
            for (int I = 0; I < N; ++I)
              CycleNodes.push_back(I);
          }
          return false;
        }
        K[static_cast<std::size_t>(E.Dst)] = Cand;
        PredEdge[static_cast<std::size_t>(E.Dst)] = static_cast<int>(EI);
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }

  Out.T = T;
  Out.StartTime.assign(static_cast<std::size_t>(N), 0);
  for (int I = 0; I < N; ++I)
    Out.StartTime[static_cast<std::size_t>(I)] =
        K[static_cast<std::size_t>(I)] * T +
        Offsets[static_cast<std::size_t>(I)];
  Out.Mapping.clear();
  if (Mapping != MappingKind::Fixed)
    return true;

  Out.Mapping.assign(static_cast<std::size_t>(N), 0);
  if (TopoPath) {
    Out.Mapping = std::move(Units);
    return true;
  }
  for (int R = 0; R < Machine.numTypes(); ++R) {
    const std::vector<int> &Ops = OpsOfType[static_cast<std::size_t>(R)];
    const int Count = Machine.type(R).Count;
    if (static_cast<int>(Ops.size()) <= Count) {
      // Fewer ops than units: give each its own unit.
      for (std::size_t Ix = 0; Ix < Ops.size(); ++Ix)
        Out.Mapping[static_cast<std::size_t>(Ops[Ix])] =
            static_cast<int>(Ix);
      continue;
    }
    if (Count == 1)
      continue; // All on unit 0; collision clauses made that legal.
    for (int Op : Ops) {
      const std::vector<int> &Cv = ColorVar[static_cast<std::size_t>(Op)];
      for (std::size_t U = 0; U < Cv.size(); ++U)
        if (S.modelValue(Cv[U])) {
          Out.Mapping[static_cast<std::size_t>(Op)] = static_cast<int>(U);
          break;
        }
    }
  }
  return true;
}

void CnfEncoder::blockCycle(int T, const std::vector<int> &CycleNodes,
                            const std::vector<int> &Offsets) {
  std::vector<SatLit> C;
  C.push_back(mkLit(SelVar[static_cast<std::size_t>(T)], true));
  for (int Node : CycleNodes) {
    C.push_back(mkLit(
        AVar[static_cast<std::size_t>(
                 Offsets[static_cast<std::size_t>(Node)])]
            [static_cast<std::size_t>(Node)],
        true));
    // On the topology path the cycle's positivity depends on the routing
    // penalties, i.e. on where the nodes sit: block only this
    // offsets-and-placement combination (the model is still loaded — the
    // caller invokes this right after a failed decode).
    if (TopoPath)
      C.push_back(mkLit(InstVar[static_cast<std::size_t>(Node)]
                               [static_cast<std::size_t>(modelUnit(Node))],
                        true));
  }
  S.addClause(C);
  ++NumCycleBlocks;
}
