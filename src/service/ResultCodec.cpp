//===- ResultCodec.cpp - SchedulerResult serialization --------------------===//

#include "swp/service/ResultCodec.h"

using namespace swp;

namespace {

void encodeStatus(ByteWriter &W, const Status &S) {
  W.i32(static_cast<std::int32_t>(S.code()));
  W.str(S.message());
  W.str(S.phase());
  W.i32(S.t());
  W.str(S.instance());
}

bool decodeStatus(ByteReader &R, Status &Out) {
  std::int32_t Code;
  std::string Message, Phase, Instance;
  std::int32_t T;
  if (!R.i32(Code) || !R.str(Message) || !R.str(Phase) || !R.i32(T) ||
      !R.str(Instance))
    return false;
  if (Code < 0 || Code > static_cast<std::int32_t>(StatusCode::FaultInjected))
    return R.fail();
  Out = Status(static_cast<StatusCode>(Code), std::move(Message));
  Out.withPhase(std::move(Phase)).withT(T).withInstance(std::move(Instance));
  return true;
}

void encodeIntVector(ByteWriter &W, const std::vector<int> &V) {
  W.u32(static_cast<std::uint32_t>(V.size()));
  for (int X : V)
    W.i32(X);
}

bool decodeIntVector(ByteReader &R, std::vector<int> &Out) {
  std::uint32_t N;
  if (!R.u32(N))
    return false;
  if (N > MaxCodecVectorLen)
    return R.fail();
  Out.clear();
  Out.reserve(N);
  for (std::uint32_t I = 0; I < N; ++I) {
    std::int32_t X;
    if (!R.i32(X))
      return false;
    Out.push_back(X);
  }
  return true;
}

} // namespace

void swp::encodeFingerprint(ByteWriter &W, const Fingerprint &F) {
  W.u64(F.Hi);
  W.u64(F.Lo);
}

bool swp::decodeFingerprint(ByteReader &R, Fingerprint &F) {
  return R.u64(F.Hi) && R.u64(F.Lo);
}

// R.TotalLp is deliberately not serialized: LP effort counters describe the
// solve that produced the result, not the result itself.  A decoded (cached)
// result reports zero LP effort, which is what the hit actually cost.
void swp::encodeSchedulerResult(ByteWriter &W, const SchedulerResult &R) {
  W.i32(R.Schedule.T);
  encodeIntVector(W, R.Schedule.StartTime);
  encodeIntVector(W, R.Schedule.Mapping);
  W.i32(R.TDep);
  W.i32(R.TRes);
  W.i32(R.TLowerBound);
  W.boolean(R.ProvenRateOptimal);
  W.boolean(R.VerifyFailed);
  W.boolean(R.Cancelled);
  encodeStatus(W, R.Error);
  W.i32(static_cast<std::int32_t>(R.Fallback));
  W.boolean(R.FaultsSeen);
  W.boolean(R.CacheHit);
  W.i32(R.Retries);
  W.f64(R.TotalSeconds);
  W.i64(R.TotalNodes);
  W.u32(static_cast<std::uint32_t>(R.Attempts.size()));
  for (const TAttempt &A : R.Attempts) {
    W.i32(A.T);
    W.boolean(A.ModuloSkipped);
    W.i32(static_cast<std::int32_t>(A.Status));
    W.i32(static_cast<std::int32_t>(A.StopReason));
    W.f64(A.Seconds);
    W.i64(A.Nodes);
  }
}

bool swp::decodeSchedulerResult(ByteReader &R, SchedulerResult &Out) {
  Out = SchedulerResult();
  if (!R.i32(Out.Schedule.T) || !decodeIntVector(R, Out.Schedule.StartTime) ||
      !decodeIntVector(R, Out.Schedule.Mapping) || !R.i32(Out.TDep) ||
      !R.i32(Out.TRes) || !R.i32(Out.TLowerBound) ||
      !R.boolean(Out.ProvenRateOptimal) || !R.boolean(Out.VerifyFailed) ||
      !R.boolean(Out.Cancelled) || !decodeStatus(R, Out.Error))
    return false;
  std::int32_t Fallback;
  if (!R.i32(Fallback) || Fallback < 0 ||
      Fallback > static_cast<std::int32_t>(FallbackRung::IterativeModulo))
    return R.fail();
  Out.Fallback = static_cast<FallbackRung>(Fallback);
  if (!R.boolean(Out.FaultsSeen) || !R.boolean(Out.CacheHit) ||
      !R.i32(Out.Retries) || !R.f64(Out.TotalSeconds) ||
      !R.i64(Out.TotalNodes))
    return false;
  std::uint32_t NumAttempts;
  if (!R.u32(NumAttempts))
    return false;
  if (NumAttempts > MaxCodecVectorLen)
    return R.fail();
  Out.Attempts.reserve(NumAttempts);
  for (std::uint32_t I = 0; I < NumAttempts; ++I) {
    TAttempt A;
    std::int32_t MStatus, Stop;
    if (!R.i32(A.T) || !R.boolean(A.ModuloSkipped) || !R.i32(MStatus) ||
        !R.i32(Stop) || !R.f64(A.Seconds) || !R.i64(A.Nodes))
      return false;
    if (MStatus < 0 || MStatus > static_cast<std::int32_t>(MilpStatus::Error))
      return R.fail();
    if (Stop < 0 || Stop > static_cast<std::int32_t>(SearchStop::Fault))
      return R.fail();
    A.Status = static_cast<MilpStatus>(MStatus);
    A.StopReason = static_cast<SearchStop>(Stop);
    Out.Attempts.push_back(A);
  }
  return true;
}

std::vector<std::uint8_t> swp::schedulerResultBytes(const SchedulerResult &R) {
  ByteWriter W;
  encodeSchedulerResult(W, R);
  return W.take();
}
