//===- SchedulerService.cpp - Parallel scheduling service -----------------===//

#include "swp/service/SchedulerService.h"

#include "swp/core/Verifier.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/heuristics/SlackModulo.h"
#include "swp/sat/SatScheduler.h"
#include "swp/service/Fingerprint.h"
#include "swp/support/FaultInjector.h"
#include "swp/support/Stopwatch.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

using namespace swp;

const char *swp::exactEngineName(ExactEngine E) {
  switch (E) {
  case ExactEngine::Ilp:
    return "ilp";
  case ExactEngine::Sat:
    return "sat";
  case ExactEngine::Race:
    return "race";
  }
  return "?";
}

namespace {

/// A result that should end the race: a schedule in hand, or a clean
/// full-window infeasibility proof (nothing left for the other engine to
/// find either).
bool decisive(const SchedulerResult &R) {
  if (R.found())
    return true;
  if (!R.Error.isOk() || R.Cancelled || R.FaultsSeen || R.Attempts.empty())
    return false;
  for (const TAttempt &A : R.Attempts)
    if (A.Status != MilpStatus::Infeasible || A.StopReason != SearchStop::None)
      return false;
  return true;
}

/// Cross-engine proof merge: the losing engine's clean per-T infeasibility
/// proofs below the winner's T upgrade the winner to ProvenRateOptimal.
/// Requires a fault-free loser run — a proof produced while the injector
/// was firing is not trusted (mirrors the driver's own downgrade).
bool mergeCrossEngineProof(SchedulerResult &Winner,
                           const SchedulerResult &Loser) {
  if (!Winner.found() || Winner.ProvenRateOptimal || Loser.FaultsSeen ||
      Winner.TLowerBound <= 0)
    return false;
  const int NeedFrom = Winner.TLowerBound, NeedTo = Winner.Schedule.T;
  if (NeedTo <= NeedFrom) {
    Winner.ProvenRateOptimal = true; // Sitting on the lower bound.
    return true;
  }
  std::vector<char> Proven(static_cast<std::size_t>(NeedTo - NeedFrom), 0);
  auto Mark = [&](const TAttempt &A) {
    if (A.T < NeedFrom || A.T >= NeedTo)
      return;
    // ModuloSkipped is a sound analytic proof; otherwise require a clean
    // (uncensored) Infeasible verdict.
    if (A.Status == MilpStatus::Infeasible &&
        (A.ModuloSkipped || A.StopReason == SearchStop::None))
      Proven[static_cast<std::size_t>(A.T - NeedFrom)] = 1;
  };
  for (const TAttempt &A : Winner.Attempts)
    Mark(A);
  for (const TAttempt &A : Loser.Attempts)
    Mark(A);
  for (char P : Proven)
    if (!P)
      return false;
  Winner.ProvenRateOptimal = true;
  return true;
}

SchedulerResult raceExact(const Ddg &G, const MachineModel &Machine,
                          const SchedulerOptions &Opts, ExactRaceInfo *Info) {
  // Each leg gets its own source nested under the caller's token, so the
  // caller can still cancel both while each leg can cancel only its rival.
  CancellationSource IlpCancel(Opts.Cancel);
  CancellationSource SatCancel(Opts.Cancel);
  SchedulerOptions IlpOpts = Opts;
  IlpOpts.Cancel = IlpCancel.token();
  SchedulerOptions SatOpts = Opts;
  SatOpts.Cancel = SatCancel.token();

  // 0 = undecided, 1 = ILP first, 2 = SAT first (wall-clock, stats only).
  std::atomic<int> FirstDecisive{0};
  SchedulerResult SatR;
  std::thread SatLeg([&] {
    SatR = satScheduleLoop(G, Machine, SatOpts);
    if (decisive(SatR)) {
      int Expected = 0;
      FirstDecisive.compare_exchange_strong(Expected, 2);
      IlpCancel.cancel();
    }
  });
  SchedulerResult IlpR = scheduleLoop(G, Machine, IlpOpts);
  if (decisive(IlpR)) {
    int Expected = 0;
    FirstDecisive.compare_exchange_strong(Expected, 1);
    SatCancel.cancel();
  }
  SatLeg.join();

  if (Info) {
    Info->SatConflicts = SatR.TotalNodes;
    Info->SatDecidedFirst = FirstDecisive.load() == 2;
  }

  // Adoption is decided by results alone.  A found schedule beats none;
  // between two schedules the smaller T wins; with no schedule anywhere a
  // clean full-window proof beats a censored or cancelled run.  Ties
  // prefer the ILP (both engines are exact, so a tie carries the same
  // schedule quality and the choice only names the winner).
  bool SatWins;
  if (SatR.found() || IlpR.found())
    SatWins =
        SatR.found() && (!IlpR.found() || SatR.Schedule.T < IlpR.Schedule.T);
  else
    SatWins = decisive(SatR) && !decisive(IlpR);

  SchedulerResult &Winner = SatWins ? SatR : IlpR;
  const SchedulerResult &Loser = SatWins ? IlpR : SatR;
  const bool Upgraded = mergeCrossEngineProof(Winner, Loser);
  // A fault in either leg taints the job; the loser's Cancelled flag does
  // not (cross-cancellation is how every race ends).
  Winner.FaultsSeen = Winner.FaultsSeen || Loser.FaultsSeen;
  if (Info) {
    Info->Winner = SatWins ? ExactEngine::Sat : ExactEngine::Ilp;
    Info->ProofUpgraded = Upgraded;
  }
  return std::move(Winner);
}

} // namespace

SchedulerResult swp::exactSchedule(const Ddg &G, const MachineModel &Machine,
                                   const SchedulerOptions &Opts,
                                   ExactEngine Engine, ExactRaceInfo *Info) {
  if (Info) {
    *Info = ExactRaceInfo();
    Info->Ran = true;
  }
  switch (Engine) {
  case ExactEngine::Ilp:
    break;
  case ExactEngine::Sat: {
    SchedulerResult R = satScheduleLoop(G, Machine, Opts);
    if (Info) {
      Info->Winner = ExactEngine::Sat;
      Info->SatConflicts = R.TotalNodes;
      Info->SatDecidedFirst = decisive(R);
    }
    return R;
  }
  case ExactEngine::Race:
    return raceExact(G, Machine, Opts, Info);
  }
  SchedulerResult R = scheduleLoop(G, Machine, Opts);
  if (Info)
    Info->Winner = ExactEngine::Ilp;
  return R;
}

SchedulerResult swp::portfolioSchedule(const Ddg &G,
                                       const MachineModel &Machine,
                                       const SchedulerOptions &Opts,
                                       PortfolioOutcome *OutcomeOut,
                                       ExactEngine Engine,
                                       ExactRaceInfo *RaceOut) {
  if (RaceOut)
    *RaceOut = ExactRaceInfo();
  Stopwatch Total;
  auto Outcome = [&](PortfolioOutcome O) {
    if (OutcomeOut)
      *OutcomeOut = O;
  };
  const std::uint64_t FiredBefore = FaultInjector::instance().totalFired();
  auto StampFaults = [FiredBefore](SchedulerResult &R) {
    R.FaultsSeen = R.FaultsSeen ||
                   FaultInjector::instance().totalFired() > FiredBefore;
  };

  // The heuristic legs are not cancellation-aware, so honor a
  // pre-cancelled token before running anything.
  if (Opts.Cancel.cancelled()) {
    SchedulerResult R;
    R.Cancelled = true;
    R.TotalSeconds = Total.seconds();
    StampFaults(R);
    Outcome(PortfolioOutcome::NothingFound);
    return R;
  }

  // Validate before the heuristic leg: IMS and the analyses it runs assert
  // on malformed DDGs, and the ILP leg would reject them anyway.
  if (!G.isWellFormed(Machine.numTypes()) || !Machine.acceptsDdg(G)) {
    SchedulerResult R;
    R.Error = Status(StatusCode::InvalidInput,
                     "DDG is malformed or uses op classes the machine does "
                     "not define")
                  .withPhase("portfolio")
                  .withInstance(G.name());
    R.TotalSeconds = Total.seconds();
    Outcome(PortfolioOutcome::NothingFound);
    return R;
  }

  // Heuristic leg.  IMS and slack scheduling finish in microseconds on
  // corpus-sized loops, so they always win the race to a first incumbent;
  // the better of the two becomes the upper bound.
  ImsOptions ImsOpts;
  ImsOpts.MaxTSlack = Opts.MaxTSlack;
  ImsResult Ims = iterativeModuloSchedule(G, Machine, ImsOpts);
  ModuloSchedule Incumbent;
  if (Ims.found())
    Incumbent = Ims.Schedule;
  bool HeurVerifyFailed = false;
  if (!Opts.Cancel.cancelled()) {
    SlackOptions SlackOpts;
    SlackOpts.MaxTSlack = Opts.MaxTSlack;
    SlackResult Slack = slackModuloSchedule(G, Machine, SlackOpts);
    if (Slack.found() &&
        (Incumbent.T == 0 || Slack.Schedule.T < Incumbent.T))
      Incumbent = Slack.Schedule;
  }
  if (Incumbent.T > 0 && Opts.VerifySchedules &&
      !verifySchedule(G, Machine, Incumbent).Ok) {
    // Never expected; drop the incumbent and let the ILP leg stand alone.
    HeurVerifyFailed = true;
    Incumbent = ModuloSchedule();
  }

  SchedulerResult R;
  R.TDep = Ims.TDep;
  R.TRes = Ims.TRes;
  R.TLowerBound = Ims.TLowerBound;
  R.VerifyFailed = HeurVerifyFailed;

  if (Incumbent.T > 0 && Incumbent.T == R.TLowerBound) {
    // The incumbent sits on the lower bound: it is rate-optimal by
    // construction, so the ILP leg loses the race unstarted.
    R.Schedule = std::move(Incumbent);
    R.ProvenRateOptimal = true;
    StampFaults(R);
    R.TotalSeconds = Total.seconds();
    Outcome(PortfolioOutcome::HeuristicWon);
    return R;
  }

  // Exact leg (ILP, SAT, or both raced), restricted to strictly better T
  // than the incumbent (the race's only way to win is to beat it, so
  // T >= Incumbent.T is pruned).
  SchedulerOptions IlpOpts = Opts;
  if (Incumbent.T > 0)
    IlpOpts.MaxTSlack =
        std::min(Opts.MaxTSlack, Incumbent.T - 1 - R.TLowerBound);
  SchedulerResult Ilp = exactSchedule(G, Machine, IlpOpts, Engine, RaceOut);
  Ilp.VerifyFailed = Ilp.VerifyFailed || HeurVerifyFailed;
  if (Ilp.found()) {
    StampFaults(Ilp);
    Ilp.TotalSeconds = Total.seconds();
    Outcome(PortfolioOutcome::IlpWon);
    return Ilp;
  }

  if (Incumbent.T == 0) {
    StampFaults(Ilp);
    Ilp.TotalSeconds = Total.seconds();
    Outcome(PortfolioOutcome::NothingFound);
    return Ilp;
  }

  // Fall back to the heuristic incumbent.  It is proven rate-optimal
  // exactly when the ILP leg conclusively refuted every smaller T.
  R.Attempts = std::move(Ilp.Attempts);
  R.TotalNodes = Ilp.TotalNodes;
  R.Cancelled = Ilp.Cancelled;
  R.Error = Ilp.Error;
  bool AllBelowProven =
      !Ilp.Cancelled && static_cast<int>(R.Attempts.size()) ==
                            Incumbent.T - R.TLowerBound;
  for (const TAttempt &A : R.Attempts)
    AllBelowProven = AllBelowProven && A.Status == MilpStatus::Infeasible;
  R.Schedule = std::move(Incumbent);
  R.ProvenRateOptimal = AllBelowProven;
  StampFaults(R);
  R.TotalSeconds = Total.seconds();
  Outcome(PortfolioOutcome::FellBackToHeuristic);
  return R;
}

SchedulerResult swp::runHeuristicLadder(const Ddg &G,
                                        const MachineModel &Machine,
                                        int MaxTSlack) {
  Stopwatch Total;
  SchedulerResult R;
  if (!G.isWellFormed(Machine.numTypes()) || !Machine.acceptsDdg(G)) {
    R.Error = Status(StatusCode::InvalidInput,
                     "DDG is malformed or uses op classes the machine does "
                     "not define")
                  .withPhase("heuristic-ladder")
                  .withInstance(G.name());
    R.TotalSeconds = Total.seconds();
    return R;
  }
  SlackOptions SlackOpts;
  SlackOpts.MaxTSlack = MaxTSlack;
  SlackResult Slack = slackModuloSchedule(G, Machine, SlackOpts);
  if (Slack.found() && verifySchedule(G, Machine, Slack.Schedule).Ok) {
    R.Schedule = Slack.Schedule;
    R.Fallback = FallbackRung::SlackModulo;
    R.TDep = Slack.TDep;
    R.TRes = Slack.TRes;
    R.TLowerBound = Slack.TLowerBound;
  } else {
    ImsOptions ImsOpts;
    ImsOpts.MaxTSlack = MaxTSlack;
    ImsResult Ims = iterativeModuloSchedule(G, Machine, ImsOpts);
    R.TDep = Ims.TDep;
    R.TRes = Ims.TRes;
    R.TLowerBound = Ims.TLowerBound;
    if (Ims.found() && verifySchedule(G, Machine, Ims.Schedule).Ok) {
      R.Schedule = Ims.Schedule;
      R.Fallback = FallbackRung::IterativeModulo;
    }
  }
  // T_lb comes from fault-free analysis, so a rung schedule sitting on it
  // is rate-optimal by construction.
  R.ProvenRateOptimal =
      R.found() && R.TLowerBound > 0 && R.Schedule.T == R.TLowerBound;
  R.TotalSeconds = Total.seconds();
  return R;
}

SchedulerService::SchedulerService(MachineModel M, ServiceOptions O)
    : SchedulerService(std::move(M), O, std::make_shared<ResultCache>()) {}

SchedulerService::SchedulerService(MachineModel M, ServiceOptions O,
                                   std::shared_ptr<ResultCache> C)
    : Machine(std::move(M)), Opts(O), Cache(std::move(C)), Pool(O.Jobs) {
  Counters.Jobs = Pool.threadCount();
}

SchedulerService::~SchedulerService() = default;

std::future<SchedulerResult> SchedulerService::submit(Ddg G) {
  return submit(std::move(G), JobOptions());
}

std::future<SchedulerResult> SchedulerService::submit(Ddg G, JobOptions Job) {
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Counters.Submitted;
  }
  return Pool.submit(
      [this, Loop = std::move(G), Job] { return scheduleOne(Loop, Job); });
}

std::vector<SchedulerResult>
SchedulerService::scheduleAll(std::span<const Ddg> Loops) {
  std::vector<std::future<SchedulerResult>> Futures;
  Futures.reserve(Loops.size());
  for (const Ddg &G : Loops)
    Futures.push_back(submit(G));
  std::vector<SchedulerResult> Results;
  Results.reserve(Loops.size());
  for (auto &F : Futures)
    Results.push_back(F.get());
  return Results;
}

void SchedulerService::cancelAll() { GlobalCancel.cancel(); }

ServiceStats SchedulerService::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  ServiceStats S = Counters;
  S.QueueHighWater = Pool.queueHighWater();
  S.DispatchFaults = Pool.dispatchFaults();
  S.CacheSize = Cache->size();
  S.CacheEvictions = Cache->evictions();
  return S;
}

SchedulerResult SchedulerService::scheduleOne(const Ddg &G,
                                              const JobOptions &Job) {
  Stopwatch Latency;
  // Fold the per-job overrides into the effective options before
  // fingerprinting, so a degraded solve can never alias (or poison) the
  // cache entry of a full-effort one.
  SchedulerOptions BaseSched = Opts.Sched;
  if (Job.TimeLimitPerT > 0)
    BaseSched.TimeLimitPerT = Job.TimeLimitPerT;
  if (Job.MaxTSlack >= 0)
    BaseSched.MaxTSlack = Job.MaxTSlack;
  const double Deadline =
      Job.DeadlineSeconds >= 0 ? Job.DeadlineSeconds : Opts.DeadlinePerLoop;

  Fingerprint Key;
  SchedulerResult R;
  bool Hit = false;
  if (Opts.UseCache) {
    Key = fingerprintJob(G, Machine, BaseSched, Opts.Portfolio, Deadline,
                         static_cast<int>(Opts.Engine));
    Hit = Cache->lookup(Key, R);
    // The cached copy stores CacheHit = false, so a warm hit differs from
    // its cold solve only in this flag.
    R.CacheHit = Hit;
  }

  PortfolioOutcome Outcome = PortfolioOutcome::NothingFound;
  ExactRaceInfo Race;
  bool RanExact = false;
  bool RanPortfolio = false;
  // Faults seen by ANY watchdog attempt, even when a clean retry answered
  // (the final R.FaultsSeen then stays false so the result is cacheable).
  bool SawFaults = false;
  if (!Hit) {
    // Watchdog: re-run a solve killed by a transient fault.  Transient
    // means an injected/typed error that is not invalid input, or a
    // cancellation that neither cancelAll() nor the real per-loop deadline
    // explains (i.e. an injected deadline-expiry fault).
    for (int Attempt = 0;; ++Attempt) {
      // Fault injection: the per-loop deadline expires immediately.
      bool DeadlineFault =
          FaultInjector::instance().shouldFire(FaultSite::Deadline);
      Stopwatch JobWatch;
      CancellationSource JobCancel(GlobalCancel.token());
      if (Deadline > 0)
        JobCancel.setDeadlineAfter(Deadline);
      if (DeadlineFault)
        JobCancel.cancel();
      SchedulerOptions SOpts = BaseSched;
      SOpts.Cancel = JobCancel.token();
      if (Opts.Portfolio) {
        R = portfolioSchedule(G, Machine, SOpts, &Outcome, Opts.Engine,
                              &Race);
        RanPortfolio = true;
        RanExact = true;
      } else {
        R = exactSchedule(G, Machine, SOpts, Opts.Engine, &Race);
        RanExact = true;
      }
      R.Retries = Attempt;
      SawFaults = SawFaults || R.FaultsSeen;
      if (R.found() || Attempt >= Opts.WatchdogRetries)
        break;
      bool RealDeadline = Deadline > 0 && JobWatch.seconds() >= Deadline;
      bool TransientError =
          !R.Error.isOk() && R.Error.code() != StatusCode::InvalidInput;
      bool SpuriousCancel = R.Cancelled && !RealDeadline &&
                            !GlobalCancel.token().cancelled();
      if (!TransientError && !SpuriousCancel)
        break;
      std::this_thread::sleep_for(std::chrono::duration<double>(
          Opts.RetryBackoff * static_cast<double>(1 << std::min(Attempt, 8))));
    }

    // Fallback ladder: the primary path produced no schedule for a reason
    // other than a clean full-window infeasibility proof.  Degrade to the
    // heuristics (verified, like every schedule the service hands out);
    // when even they fail the caller gets the explicit unfound result with
    // its SearchStop chain — never an abort, hang, or empty answer.
    bool CleanProof = R.Error.isOk() && !R.Cancelled && !R.FaultsSeen;
    for (const TAttempt &A : R.Attempts)
      CleanProof = CleanProof && A.StopReason == SearchStop::None;
    if (Opts.FallbackLadder && !R.found() && !CleanProof &&
        R.Error.code() != StatusCode::InvalidInput &&
        !GlobalCancel.token().cancelled()) {
      SchedulerResult Rung =
          runHeuristicLadder(G, Machine, BaseSched.MaxTSlack);
      if (Rung.found()) {
        R.Schedule = Rung.Schedule;
        R.Fallback = Rung.Fallback;
        if (R.TLowerBound == 0) {
          R.TDep = Rung.TDep;
          R.TRes = Rung.TRes;
          R.TLowerBound = Rung.TLowerBound;
        }
        // T_lb comes from fault-free analysis, so a rung schedule sitting
        // on it is rate-optimal by construction even though the ILP search
        // was not trustworthy.
        R.ProvenRateOptimal =
            R.TLowerBound > 0 && R.Schedule.T == R.TLowerBound;
      }
    }
  }

  bool Censored = false, WallClockCensored = R.Cancelled;
  for (const TAttempt &A : R.Attempts) {
    Censored = Censored || A.StopReason == SearchStop::TimeLimit ||
               A.StopReason == SearchStop::NodeLimit ||
               A.StopReason == SearchStop::LpStall ||
               A.StopReason == SearchStop::Fault;
    WallClockCensored =
        WallClockCensored || A.StopReason == SearchStop::TimeLimit;
  }
  // Memoize only results that a cold re-solve would reproduce: cancelled
  // or time-limit-censored answers depend on machine load at solve time,
  // and fault-window results on injector state (the cache rechecks that).
  // Node-limit and LP-stall censoring is deterministic and caches fine.
  if (!Hit && Opts.UseCache && !WallClockCensored && !R.FaultsSeen)
    Cache->insert(Key, R);

  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Counters.Completed;
    if (Hit)
      ++Counters.CacheHits;
    else if (Opts.UseCache)
      ++Counters.CacheMisses;
    if (R.Cancelled)
      ++Counters.Cancellations;
    if (Censored)
      ++Counters.CensoredProofs;
    if (!Hit) {
      // Only fresh solves spent LP effort; cache hits replay a recorded
      // result whose effort was already counted when it was first solved.
      Counters.LpPivots += static_cast<std::uint64_t>(
          std::max<std::int64_t>(R.TotalLp.Pivots, 0));
      Counters.LpRefactorizations += static_cast<std::uint64_t>(
          std::max<std::int64_t>(R.TotalLp.Refactorizations, 0));
      Counters.LpSolves += static_cast<std::uint64_t>(
          std::max<std::int64_t>(R.TotalLp.Solves, 0));
      Counters.LpWarmSolves += static_cast<std::uint64_t>(
          std::max<std::int64_t>(R.TotalLp.WarmSolves, 0));
      if (R.FaultsSeen || SawFaults)
        ++Counters.FaultedJobs;
      if (!R.Error.isOk())
        ++Counters.TypedErrors;
      Counters.WatchdogRetries += static_cast<std::uint64_t>(R.Retries);
      if (R.Fallback == FallbackRung::SlackModulo)
        ++Counters.FallbackSlackWins;
      else if (R.Fallback == FallbackRung::IterativeModulo)
        ++Counters.FallbackImsWins;
    }
    if (RanExact && Race.Ran) {
      Counters.SatConflicts += static_cast<std::uint64_t>(
          std::max<std::int64_t>(Race.SatConflicts, 0));
      if (Race.ProofUpgraded)
        ++Counters.CrossEngineProofUpgrades;
      if (Opts.Engine == ExactEngine::Race) {
        if (Race.Winner == ExactEngine::Sat)
          ++Counters.RaceSatWins;
        else
          ++Counters.RaceIlpWins;
      }
    }
    if (RanPortfolio) {
      switch (Outcome) {
      case PortfolioOutcome::HeuristicWon:
        ++Counters.PortfolioHeuristicWins;
        break;
      case PortfolioOutcome::IlpWon:
        ++Counters.PortfolioIlpWins;
        break;
      case PortfolioOutcome::FellBackToHeuristic:
        ++Counters.PortfolioFallbacks;
        break;
      case PortfolioOutcome::NothingFound:
        break;
      }
    }
    Counters.Latency.add(Latency.seconds());
  }
  return R;
}
