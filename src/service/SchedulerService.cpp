//===- SchedulerService.cpp - Parallel scheduling service -----------------===//

#include "swp/service/SchedulerService.h"

#include "swp/core/Verifier.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/heuristics/SlackModulo.h"
#include "swp/service/Fingerprint.h"
#include "swp/support/Stopwatch.h"

#include <algorithm>

using namespace swp;

SchedulerResult swp::portfolioSchedule(const Ddg &G,
                                       const MachineModel &Machine,
                                       const SchedulerOptions &Opts,
                                       PortfolioOutcome *OutcomeOut) {
  Stopwatch Total;
  auto Outcome = [&](PortfolioOutcome O) {
    if (OutcomeOut)
      *OutcomeOut = O;
  };

  // Heuristic leg.  IMS and slack scheduling finish in microseconds on
  // corpus-sized loops, so they always win the race to a first incumbent;
  // the better of the two becomes the upper bound.
  ImsOptions ImsOpts;
  ImsOpts.MaxTSlack = Opts.MaxTSlack;
  ImsResult Ims = iterativeModuloSchedule(G, Machine, ImsOpts);
  ModuloSchedule Incumbent;
  if (Ims.found())
    Incumbent = Ims.Schedule;
  bool HeurVerifyFailed = false;
  if (!Opts.Cancel.cancelled()) {
    SlackOptions SlackOpts;
    SlackOpts.MaxTSlack = Opts.MaxTSlack;
    SlackResult Slack = slackModuloSchedule(G, Machine, SlackOpts);
    if (Slack.found() &&
        (Incumbent.T == 0 || Slack.Schedule.T < Incumbent.T))
      Incumbent = Slack.Schedule;
  }
  if (Incumbent.T > 0 && Opts.VerifySchedules &&
      !verifySchedule(G, Machine, Incumbent).Ok) {
    // Never expected; drop the incumbent and let the ILP leg stand alone.
    HeurVerifyFailed = true;
    Incumbent = ModuloSchedule();
  }

  SchedulerResult R;
  R.TDep = Ims.TDep;
  R.TRes = Ims.TRes;
  R.TLowerBound = Ims.TLowerBound;
  R.VerifyFailed = HeurVerifyFailed;

  if (Incumbent.T > 0 && Incumbent.T == R.TLowerBound) {
    // The incumbent sits on the lower bound: it is rate-optimal by
    // construction, so the ILP leg loses the race unstarted.
    R.Schedule = std::move(Incumbent);
    R.ProvenRateOptimal = true;
    R.TotalSeconds = Total.seconds();
    Outcome(PortfolioOutcome::HeuristicWon);
    return R;
  }

  // ILP leg, restricted to strictly better T than the incumbent (the
  // race's only way to win is to beat it, so T >= Incumbent.T is pruned).
  SchedulerOptions IlpOpts = Opts;
  if (Incumbent.T > 0)
    IlpOpts.MaxTSlack =
        std::min(Opts.MaxTSlack, Incumbent.T - 1 - R.TLowerBound);
  SchedulerResult Ilp = scheduleLoop(G, Machine, IlpOpts);
  Ilp.VerifyFailed = Ilp.VerifyFailed || HeurVerifyFailed;
  if (Ilp.found()) {
    Ilp.TotalSeconds = Total.seconds();
    Outcome(PortfolioOutcome::IlpWon);
    return Ilp;
  }

  if (Incumbent.T == 0) {
    Ilp.TotalSeconds = Total.seconds();
    Outcome(PortfolioOutcome::NothingFound);
    return Ilp;
  }

  // Fall back to the heuristic incumbent.  It is proven rate-optimal
  // exactly when the ILP leg conclusively refuted every smaller T.
  R.Attempts = std::move(Ilp.Attempts);
  R.TotalNodes = Ilp.TotalNodes;
  R.Cancelled = Ilp.Cancelled;
  bool AllBelowProven =
      !Ilp.Cancelled && static_cast<int>(R.Attempts.size()) ==
                            Incumbent.T - R.TLowerBound;
  for (const TAttempt &A : R.Attempts)
    AllBelowProven = AllBelowProven && A.Status == MilpStatus::Infeasible;
  R.Schedule = std::move(Incumbent);
  R.ProvenRateOptimal = AllBelowProven;
  R.TotalSeconds = Total.seconds();
  Outcome(PortfolioOutcome::FellBackToHeuristic);
  return R;
}

SchedulerService::SchedulerService(MachineModel M, ServiceOptions O)
    : Machine(std::move(M)), Opts(O), Pool(O.Jobs) {
  Counters.Jobs = Pool.threadCount();
}

SchedulerService::~SchedulerService() = default;

std::future<SchedulerResult> SchedulerService::submit(Ddg G) {
  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Counters.Submitted;
  }
  return Pool.submit(
      [this, Loop = std::move(G)] { return scheduleOne(Loop); });
}

std::vector<SchedulerResult>
SchedulerService::scheduleAll(std::span<const Ddg> Loops) {
  std::vector<std::future<SchedulerResult>> Futures;
  Futures.reserve(Loops.size());
  for (const Ddg &G : Loops)
    Futures.push_back(submit(G));
  std::vector<SchedulerResult> Results;
  Results.reserve(Loops.size());
  for (auto &F : Futures)
    Results.push_back(F.get());
  return Results;
}

void SchedulerService::cancelAll() { GlobalCancel.cancel(); }

ServiceStats SchedulerService::stats() const {
  std::lock_guard<std::mutex> Lock(StatsMutex);
  ServiceStats S = Counters;
  S.QueueHighWater = Pool.queueHighWater();
  return S;
}

SchedulerResult SchedulerService::scheduleOne(const Ddg &G) {
  Stopwatch Latency;
  Fingerprint Key;
  SchedulerResult R;
  bool Hit = false;
  if (Opts.UseCache) {
    Key = fingerprintJob(G, Machine, Opts.Sched, Opts.Portfolio,
                         Opts.DeadlinePerLoop);
    Hit = Cache.lookup(Key, R);
  }

  PortfolioOutcome Outcome = PortfolioOutcome::NothingFound;
  bool RanPortfolio = false;
  if (!Hit) {
    CancellationSource JobCancel(GlobalCancel.token());
    if (Opts.DeadlinePerLoop > 0)
      JobCancel.setDeadlineAfter(Opts.DeadlinePerLoop);
    SchedulerOptions SOpts = Opts.Sched;
    SOpts.Cancel = JobCancel.token();
    if (Opts.Portfolio) {
      R = portfolioSchedule(G, Machine, SOpts, &Outcome);
      RanPortfolio = true;
    } else {
      R = scheduleLoop(G, Machine, SOpts);
    }
  }

  bool Censored = false, WallClockCensored = R.Cancelled;
  for (const TAttempt &A : R.Attempts) {
    Censored = Censored || A.StopReason == SearchStop::TimeLimit ||
               A.StopReason == SearchStop::NodeLimit ||
               A.StopReason == SearchStop::LpStall;
    WallClockCensored =
        WallClockCensored || A.StopReason == SearchStop::TimeLimit;
  }
  // Memoize only results that a cold re-solve would reproduce: cancelled
  // or time-limit-censored answers depend on machine load at solve time.
  // Node-limit and LP-stall censoring is deterministic and caches fine.
  if (!Hit && Opts.UseCache && !WallClockCensored)
    Cache.insert(Key, R);

  {
    std::lock_guard<std::mutex> Lock(StatsMutex);
    ++Counters.Completed;
    if (Hit)
      ++Counters.CacheHits;
    else if (Opts.UseCache)
      ++Counters.CacheMisses;
    if (R.Cancelled)
      ++Counters.Cancellations;
    if (Censored)
      ++Counters.CensoredProofs;
    if (RanPortfolio) {
      switch (Outcome) {
      case PortfolioOutcome::HeuristicWon:
        ++Counters.PortfolioHeuristicWins;
        break;
      case PortfolioOutcome::IlpWon:
        ++Counters.PortfolioIlpWins;
        break;
      case PortfolioOutcome::FellBackToHeuristic:
        ++Counters.PortfolioFallbacks;
        break;
      case PortfolioOutcome::NothingFound:
        break;
      }
    }
    Counters.Latency.add(Latency.seconds());
  }
  return R;
}
