//===- ResultCache.cpp - Memoized scheduling results ----------------------===//

#include "swp/service/ResultCache.h"

#include "swp/support/FaultInjector.h"

using namespace swp;

ResultCache::ResultCache(std::size_t NumShards, std::size_t PerShardCapacity)
    : Capacity(PerShardCapacity == 0 ? 1 : PerShardCapacity) {
  if (NumShards == 0)
    NumShards = 1;
  Shards.reserve(NumShards);
  for (std::size_t I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

bool ResultCache::lookup(const Fingerprint &Key, SchedulerResult &Out) const {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Map.find(Key);
  if (It == S.Map.end())
    return false;
  // Refresh recency: splice the hit to the MRU end.
  S.Items.splice(S.Items.begin(), S.Items, It->second);
  Out = It->second->second;
  return true;
}

void ResultCache::insertLocked(Shard &S, const Fingerprint &Key,
                               const SchedulerResult &Value) {
  if (S.Map.find(Key) != S.Map.end())
    return; // First insert wins.
  S.Items.emplace_front(Key, Value);
  S.Map.emplace(Key, S.Items.begin());
  if (S.Items.size() > Capacity) {
    S.Map.erase(S.Items.back().first);
    S.Items.pop_back();
    ++S.Evictions;
  }
}

void ResultCache::insert(const Fingerprint &Key, const SchedulerResult &Value) {
  // The insert is an injection point: a failed insert degrades to a cache
  // miss on the next lookup, which is always sound.  Beyond that, results
  // computed while any fault site is armed are never memoized — a
  // poisoned entry would outlive the fault window.
  FaultInjector &FI = FaultInjector::instance();
  if (FI.shouldFire(FaultSite::CacheInsert))
    return;
  if (Value.FaultsSeen || FI.armed())
    return;
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  insertLocked(S, Key, Value);
}

void ResultCache::restore(const Fingerprint &Key,
                          const SchedulerResult &Value) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  insertLocked(S, Key, Value);
}

std::size_t ResultCache::size() const {
  std::size_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total += S->Items.size();
  }
  return Total;
}

std::uint64_t ResultCache::evictions() const {
  std::uint64_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total += S->Evictions;
  }
  return Total;
}

std::vector<std::pair<Fingerprint, SchedulerResult>>
ResultCache::shardEntries(std::size_t S) const {
  std::vector<std::pair<Fingerprint, SchedulerResult>> Out;
  if (S >= Shards.size())
    return Out;
  Shard &Sh = *Shards[S];
  std::lock_guard<std::mutex> Lock(Sh.Mutex);
  Out.reserve(Sh.Items.size());
  // Items run MRU -> LRU; emit LRU-first so restoring in order rebuilds
  // the same recency.
  for (auto It = Sh.Items.rbegin(); It != Sh.Items.rend(); ++It)
    Out.push_back(*It);
  return Out;
}

void ResultCache::clear() {
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Items.clear();
    S->Map.clear();
  }
}
