//===- ResultCache.cpp - Memoized scheduling results ----------------------===//

#include "swp/service/ResultCache.h"

#include "swp/support/FaultInjector.h"

using namespace swp;

ResultCache::ResultCache(std::size_t NumShards) {
  if (NumShards == 0)
    NumShards = 1;
  Shards.reserve(NumShards);
  for (std::size_t I = 0; I < NumShards; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

bool ResultCache::lookup(const Fingerprint &Key, SchedulerResult &Out) const {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Map.find(Key);
  if (It == S.Map.end())
    return false;
  Out = It->second;
  return true;
}

void ResultCache::insert(const Fingerprint &Key, const SchedulerResult &Value) {
  // The insert is an injection point: a failed insert degrades to a cache
  // miss on the next lookup, which is always sound.  Beyond that, results
  // computed while any fault site is armed are never memoized — a
  // poisoned entry would outlive the fault window.
  FaultInjector &FI = FaultInjector::instance();
  if (FI.shouldFire(FaultSite::CacheInsert))
    return;
  if (Value.FaultsSeen || FI.armed())
    return;
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mutex);
  S.Map.try_emplace(Key, Value);
}

std::size_t ResultCache::size() const {
  std::size_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total += S->Map.size();
  }
  return Total;
}

void ResultCache::clear() {
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Map.clear();
  }
}
