//===- Admission.cpp - Admission control & load shedding ------------------===//

#include "swp/service/Admission.h"

#include "swp/support/Format.h"

#include <algorithm>

using namespace swp;

const char *swp::degradationLevelName(DegradationLevel L) {
  switch (L) {
  case DegradationLevel::None:
    return "none";
  case DegradationLevel::ReducedEffort:
    return "reduced-effort";
  case DegradationLevel::HeuristicOnly:
    return "heuristic-only";
  case DegradationLevel::Shed:
    return "shed";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionOptions O) : Opts(O) {
  // Keep the thresholds ordered even under hostile configuration, so the
  // ladder degrades monotonically: reduced <= heuristic-only <= shed.
  Opts.MaxInFlight = std::max(Opts.MaxInFlight, 0);
  Opts.HeuristicOnlyAt = std::min(Opts.HeuristicOnlyAt, Opts.MaxInFlight);
  Opts.ReducedEffortAt = std::min(Opts.ReducedEffortAt, Opts.HeuristicOnlyAt);
}

AdmissionDecision AdmissionController::admit(const std::string &Tenant,
                                             double DeadlineSeconds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  AdmissionDecision D;

  if (Counters.InFlight >= Opts.MaxInFlight) {
    ++Counters.Shed;
    D.Level = DegradationLevel::Shed;
    D.Reason = strFormat("queue full: %d requests in flight (max %d)",
                         Counters.InFlight, Opts.MaxInFlight);
    return D;
  }

  if (Opts.TenantBudgetSeconds > 0) {
    auto Now = std::chrono::steady_clock::now();
    auto [It, Fresh] = Tenants.try_emplace(Tenant);
    TenantBucket &B = It->second;
    if (Fresh) {
      B.Tokens = Opts.TenantBudgetSeconds;
    } else if (Opts.TenantRefillPerSecond > 0) {
      double Elapsed = std::chrono::duration<double>(Now - B.LastRefill).count();
      B.Tokens = std::min(Opts.TenantBudgetSeconds,
                          B.Tokens + Elapsed * Opts.TenantRefillPerSecond);
    }
    B.LastRefill = Now;
    double Charge =
        DeadlineSeconds > 0 ? DeadlineSeconds : Opts.DefaultChargeSeconds;
    if (B.Tokens < Charge) {
      ++Counters.Shed;
      ++Counters.TenantShed;
      D.Level = DegradationLevel::Shed;
      D.Reason = strFormat("tenant '%s' budget exhausted: %.3fs left, "
                           "%.3fs requested",
                           Tenant.c_str(), B.Tokens, Charge);
      return D;
    }
    B.Tokens -= Charge;
  }

  if (Counters.InFlight >= Opts.HeuristicOnlyAt) {
    D.Level = DegradationLevel::HeuristicOnly;
    D.Reason = strFormat("exact engines saturated: %d in flight (heuristic "
                         "threshold %d)",
                         Counters.InFlight, Opts.HeuristicOnlyAt);
    ++Counters.HeuristicOnly;
  } else if (Counters.InFlight >= Opts.ReducedEffortAt) {
    D.Level = DegradationLevel::ReducedEffort;
    D.Reason = strFormat("load high: %d in flight (reduced-effort "
                         "threshold %d)",
                         Counters.InFlight, Opts.ReducedEffortAt);
    ++Counters.ReducedEffort;
  }
  ++Counters.Admitted;
  ++Counters.InFlight;
  Counters.InFlightHighWater =
      std::max(Counters.InFlightHighWater, Counters.InFlight);
  return D;
}

void AdmissionController::complete() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Counters.InFlight > 0)
    --Counters.InFlight;
}

JobOptions AdmissionController::degrade(const JobOptions &Base,
                                        DegradationLevel Level) const {
  JobOptions J = Base;
  if (Level != DegradationLevel::ReducedEffort)
    return J;
  if (J.TimeLimitPerT <= 0 || J.TimeLimitPerT > Opts.ReducedTimeLimitPerT)
    J.TimeLimitPerT = Opts.ReducedTimeLimitPerT;
  if (J.MaxTSlack < 0 || J.MaxTSlack > Opts.ReducedMaxTSlack)
    J.MaxTSlack = Opts.ReducedMaxTSlack;
  return J;
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Counters;
}
