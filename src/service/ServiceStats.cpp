//===- ServiceStats.cpp - Service observability ---------------------------===//

#include "swp/service/ServiceStats.h"

#include "swp/support/Format.h"
#include "swp/support/TextTable.h"

#include <algorithm>

using namespace swp;

void LatencyHistogram::add(double Seconds) {
  double Us = Seconds * 1e6;
  int B = 0;
  while (B < NumBuckets - 1 && Us >= 2.0) {
    Us /= 2.0;
    ++B;
  }
  ++Buckets[static_cast<std::size_t>(B)];
  ++Count;
  TotalSeconds += Seconds;
  MaxSeconds = std::max(MaxSeconds, Seconds);
}

std::string LatencyHistogram::bucketLabel(int B) {
  double Us = static_cast<double>(1ULL << B);
  if (Us < 1e3)
    return strFormat("%.0fus", Us);
  if (Us < 1e6)
    return strFormat("%.0fms", Us / 1e3);
  return strFormat("%.1fs", Us / 1e6);
}

std::string ServiceStats::render() const {
  TextTable Counters;
  Counters.setHeader({"Metric", "Value"});
  Counters.addRow({"worker threads", std::to_string(Jobs)});
  Counters.addRow({"queue high-water", std::to_string(QueueHighWater)});
  Counters.addRow({"jobs submitted", std::to_string(Submitted)});
  Counters.addRow({"jobs completed", std::to_string(Completed)});
  Counters.addRow({"cache hits", std::to_string(CacheHits)});
  Counters.addRow({"cache misses", std::to_string(CacheMisses)});
  Counters.addRow({"cache size", std::to_string(CacheSize)});
  Counters.addRow({"cache evictions", std::to_string(CacheEvictions)});
  Counters.addRow({"cancellations", std::to_string(Cancellations)});
  Counters.addRow({"censored proofs", std::to_string(CensoredProofs)});
  if (PortfolioHeuristicWins + PortfolioIlpWins + PortfolioFallbacks > 0) {
    Counters.addRow({"portfolio heuristic wins",
                     std::to_string(PortfolioHeuristicWins)});
    Counters.addRow({"portfolio ilp wins",
                     std::to_string(PortfolioIlpWins)});
    Counters.addRow({"portfolio fallbacks",
                     std::to_string(PortfolioFallbacks)});
  }
  if (RaceIlpWins + RaceSatWins + CrossEngineProofUpgrades + SatConflicts >
      0) {
    Counters.addRow({"race ilp wins", std::to_string(RaceIlpWins)});
    Counters.addRow({"race sat wins", std::to_string(RaceSatWins)});
    Counters.addRow({"cross-engine proof upgrades",
                     std::to_string(CrossEngineProofUpgrades)});
    Counters.addRow({"sat conflicts", std::to_string(SatConflicts)});
  }
  if (FaultedJobs + TypedErrors + WatchdogRetries + FallbackSlackWins +
          FallbackImsWins + DispatchFaults >
      0) {
    Counters.addRow({"faulted jobs", std::to_string(FaultedJobs)});
    Counters.addRow({"typed errors", std::to_string(TypedErrors)});
    Counters.addRow({"watchdog retries", std::to_string(WatchdogRetries)});
    Counters.addRow({"fallback slack wins",
                     std::to_string(FallbackSlackWins)});
    Counters.addRow({"fallback ims wins", std::to_string(FallbackImsWins)});
    Counters.addRow({"dispatch faults", std::to_string(DispatchFaults)});
  }
  if (LpSolves > 0) {
    Counters.addRow({"lp pivots", std::to_string(LpPivots)});
    Counters.addRow({"lp refactorizations",
                     std::to_string(LpRefactorizations)});
    Counters.addRow({"lp solves", std::to_string(LpSolves)});
    Counters.addRow(
        {"lp warm-start rate",
         strFormat("%.1f%%", 100.0 * static_cast<double>(LpWarmSolves) /
                                 static_cast<double>(LpSolves))});
  }
  Counters.addRow({"mean latency",
                   strFormat("%.3fms", Latency.meanSeconds() * 1e3)});
  Counters.addRow({"max latency",
                   strFormat("%.3fms", Latency.MaxSeconds * 1e3)});

  std::string Out = Counters.render();
  if (Latency.Count > 0) {
    TextTable Hist;
    Hist.setHeader({"Latency >=", "Loops"});
    for (int B = 0; B < LatencyHistogram::NumBuckets; ++B)
      if (Latency.Buckets[static_cast<std::size_t>(B)] != 0)
        Hist.addRow({LatencyHistogram::bucketLabel(B),
                     std::to_string(
                         Latency.Buckets[static_cast<std::size_t>(B)])});
    Out += "\n" + Hist.render();
  }
  return Out;
}
