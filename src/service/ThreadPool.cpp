//===- ThreadPool.cpp - Fixed-size worker pool ----------------------------===//

#include "swp/service/ThreadPool.h"

#include "swp/support/FaultInjector.h"

#include <algorithm>

using namespace swp;

ThreadPool::ThreadPool(int Threads) {
  if (Threads <= 0)
    Threads = std::max(1u, std::thread::hardware_concurrency());
  Workers.reserve(static_cast<std::size_t>(Threads));
  for (int I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Stopping = true;
  }
  Available.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Job) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Queue.push_back({std::move(Job), 0});
    HighWater = std::max(HighWater, static_cast<int>(Queue.size()));
  }
  Available.notify_one();
}

int ThreadPool::queueHighWater() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return HighWater;
}

std::uint64_t ThreadPool::dispatchFaults() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return DispatchFaults;
}

void ThreadPool::workerLoop() {
  for (;;) {
    QueuedJob Job;
    {
      std::unique_lock<std::mutex> Lock(Mutex);
      Available.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping with a drained queue.
      Job = std::move(Queue.front());
      Queue.pop_front();
      // Fault injection: this worker dies while dispatching.  The job goes
      // back to the queue for another worker (its future must resolve), up
      // to MaxRequeues times so a 100% fault rate still makes progress.
      if (Job.Requeues < MaxRequeues &&
          FaultInjector::instance().shouldFire(FaultSite::Dispatch)) {
        ++Job.Requeues;
        ++DispatchFaults;
        Queue.push_back(std::move(Job));
        Available.notify_one();
        continue;
      }
    }
    Job.Fn();
  }
}
