//===- CachePersist.cpp - Crash-safe cache snapshots ----------------------===//

#include "swp/service/CachePersist.h"

#include "swp/service/ResultCodec.h"
#include "swp/support/Binary.h"
#include "swp/support/Crc32.h"
#include "swp/support/FaultInjector.h"
#include "swp/support/Format.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <unistd.h>

using namespace swp;
namespace fs = std::filesystem;

namespace {

/// Largest shard file the loader will read into memory (a snapshot the
/// daemon wrote is far below this; anything bigger is treated as corrupt).
constexpr std::uintmax_t MaxShardFileBytes = 1u << 30;

std::string shardFileName(std::size_t Shard) {
  return strFormat("shard-%04zu.swpcache", Shard);
}

/// Serializes one shard: header + length/CRC-framed entries.
std::vector<std::uint8_t>
serializeShard(std::size_t ShardIx,
               const std::vector<std::pair<Fingerprint, SchedulerResult>>
                   &Entries) {
  ByteWriter W;
  W.u32(CacheSnapshotMagic);
  W.u32(CacheSnapshotVersion);
  W.u64(static_cast<std::uint64_t>(ShardIx));
  W.u64(static_cast<std::uint64_t>(Entries.size()));
  for (const auto &[Key, Value] : Entries) {
    ByteWriter E;
    encodeFingerprint(E, Key);
    encodeSchedulerResult(E, Value);
    const std::vector<std::uint8_t> &Bytes = E.data();
    W.u32(static_cast<std::uint32_t>(Bytes.size()));
    W.u32(crc32(Bytes));
    W.bytes(Bytes);
  }
  return W.take();
}

/// Parses one shard image; \returns false on any header/entry corruption
/// (the caller then discards the whole shard).  Entries are only appended
/// to \p Out, never restored directly — a shard is trusted all-or-nothing.
bool parseShard(std::span<const std::uint8_t> Image,
                std::vector<std::pair<Fingerprint, SchedulerResult>> &Out) {
  ByteReader R(Image);
  std::uint32_t Magic, Version;
  std::uint64_t ShardIx, Count;
  if (!R.u32(Magic) || !R.u32(Version) || !R.u64(ShardIx) || !R.u64(Count))
    return false;
  if (Magic != CacheSnapshotMagic || Version != CacheSnapshotVersion)
    return false;
  if (Count > (1u << 24)) // Far beyond any real shard; hostile count.
    return false;
  Out.reserve(static_cast<std::size_t>(Count));
  for (std::uint64_t I = 0; I < Count; ++I) {
    std::uint32_t Len, Crc;
    if (!R.u32(Len) || !R.u32(Crc))
      return false;
    if (Len > Image.size() || R.remaining() < Len)
      return false;
    std::vector<std::uint8_t> Entry(Len);
    if (!R.bytes(Entry.data(), Len))
      return false;
    if (crc32(Entry) != Crc)
      return false;
    ByteReader ER(Entry);
    Fingerprint Key;
    SchedulerResult Value;
    if (!decodeFingerprint(ER, Key) || !decodeSchedulerResult(ER, Value) ||
        !ER.done())
      return false;
    Out.emplace_back(Key, std::move(Value));
  }
  // Trailing garbage after the declared entries is corruption too.
  return R.done();
}

/// Writes \p Bytes to \p TmpPath (honoring the crash hook), fsyncs, and
/// renames onto \p FinalPath.  On the injected crash the partial .tmp is
/// left in place, exactly like a killed process.
Status writeAtomically(const std::vector<std::uint8_t> &Bytes,
                       const fs::path &TmpPath, const fs::path &FinalPath,
                       const SnapshotWriteHooks &Hooks) {
  std::FILE *F = std::fopen(TmpPath.c_str(), "wb");
  if (!F)
    return Status(StatusCode::ResourceExhausted,
                  "cannot open snapshot temp file " + TmpPath.string())
        .withPhase("snapshot-save");
  std::size_t ToWrite = Bytes.size();
  bool InjectedCrash = false;
  if (Hooks.FailAfterBytes < ToWrite) {
    ToWrite = Hooks.FailAfterBytes;
    InjectedCrash = true;
  }
  std::size_t Written =
      ToWrite == 0 ? 0 : std::fwrite(Bytes.data(), 1, ToWrite, F);
  if (InjectedCrash) {
    // Simulated kill mid-write: flush what a dying process would have
    // handed the kernel, keep the partial .tmp, skip the rename.
    std::fclose(F);
    return Status(StatusCode::FaultInjected,
                  "injected crash mid-snapshot-write after " +
                      std::to_string(ToWrite) + " bytes")
        .withPhase("snapshot-save");
  }
  bool WriteOk = Written == ToWrite && std::fflush(F) == 0 &&
                 ::fsync(::fileno(F)) == 0;
  std::fclose(F);
  if (!WriteOk) {
    std::error_code Ec;
    fs::remove(TmpPath, Ec);
    return Status(StatusCode::ResourceExhausted,
                  "short write to snapshot temp file " + TmpPath.string())
        .withPhase("snapshot-save");
  }
  std::error_code Ec;
  fs::rename(TmpPath, FinalPath, Ec);
  if (Ec)
    return Status(StatusCode::ResourceExhausted,
                  "cannot rename snapshot " + TmpPath.string() + " -> " +
                      FinalPath.string() + ": " + Ec.message())
        .withPhase("snapshot-save");
  return Status::ok();
}

} // namespace

Expected<SnapshotSaveStats>
swp::saveCacheSnapshot(const ResultCache &Cache, const std::string &Dir,
                       const SnapshotWriteHooks &Hooks) {
  std::error_code Ec;
  fs::create_directories(Dir, Ec);
  if (Ec)
    return Status(StatusCode::ResourceExhausted,
                  "cannot create snapshot directory " + Dir + ": " +
                      Ec.message())
        .withPhase("snapshot-save");

  SnapshotSaveStats Stats;
  for (std::size_t S = 0; S < Cache.numShards(); ++S) {
    auto Entries = Cache.shardEntries(S);
    std::vector<std::uint8_t> Image = serializeShard(S, Entries);
    fs::path Final = fs::path(Dir) / shardFileName(S);
    fs::path Tmp = Final;
    Tmp += ".tmp";
    if (Status St = writeAtomically(Image, Tmp, Final, Hooks); !St.isOk())
      return St;
    ++Stats.ShardFiles;
    Stats.Entries += Entries.size();
    Stats.Bytes += Image.size();
  }
  return Stats;
}

Expected<SnapshotLoadStats> swp::loadCacheSnapshot(ResultCache &Cache,
                                                   const std::string &Dir) {
  SnapshotLoadStats Stats;
  std::error_code Ec;
  if (!fs::is_directory(Dir, Ec))
    return Stats; // Cold start: nothing persisted yet.

  // Shard files are self-describing, so a snapshot written with a
  // different shard count still restores (entries re-shard by fingerprint
  // on the way in).
  std::vector<fs::path> Files;
  for (fs::directory_iterator It(Dir, Ec), End; !Ec && It != End;
       It.increment(Ec)) {
    if (It->is_regular_file() && It->path().extension() == ".swpcache")
      Files.push_back(It->path());
  }
  if (Ec)
    return Status(StatusCode::ResourceExhausted,
                  "cannot scan snapshot directory " + Dir + ": " +
                      Ec.message())
        .withPhase("snapshot-load");
  std::sort(Files.begin(), Files.end());

  FaultInjector &FI = FaultInjector::instance();
  for (const fs::path &P : Files) {
    ++Stats.ShardFiles;
    // Injected corruption: the shard reads as untrustworthy and is
    // rebuilt from empty, the same path a real checksum mismatch takes.
    bool Corrupt = FI.shouldFire(FaultSite::CacheLoad);
    std::vector<std::pair<Fingerprint, SchedulerResult>> Entries;
    if (!Corrupt) {
      std::uintmax_t FileSize = fs::file_size(P, Ec);
      if (Ec || FileSize > MaxShardFileBytes) {
        Corrupt = true;
      } else {
        std::ifstream In(P, std::ios::binary);
        std::vector<std::uint8_t> Image(static_cast<std::size_t>(FileSize));
        if (!In ||
            !In.read(reinterpret_cast<char *>(Image.data()),
                     static_cast<std::streamsize>(Image.size())))
          Corrupt = true;
        else
          Corrupt = !parseShard(Image, Entries);
      }
    }
    if (Corrupt) {
      ++Stats.CorruptShards;
      continue;
    }
    for (const auto &[Key, Value] : Entries)
      Cache.restore(Key, Value);
    Stats.Entries += Entries.size();
  }
  return Stats;
}
