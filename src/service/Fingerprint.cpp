//===- Fingerprint.cpp - Canonical job fingerprints -----------------------===//

#include "swp/service/Fingerprint.h"

#include <cstring>

using namespace swp;

FingerprintBuilder &FingerprintBuilder::add(std::uint64_t V) {
  // Two independently seeded FNV-1a-style lanes with a splitmix finalizer
  // mix per word; cheap, deterministic across platforms, and 128 bits of
  // state make corpus-scale collisions implausible.
  auto Mix = [](std::uint64_t H) {
    H ^= H >> 30;
    H *= 0xbf58476d1ce4e5b9ULL;
    H ^= H >> 27;
    H *= 0x94d049bb133111ebULL;
    H ^= H >> 31;
    return H;
  };
  Hi = Mix((Hi ^ V) * 0x100000001b3ULL);
  Lo = Mix((Lo ^ V) * 0xc6a4a7935bd1e995ULL);
  return *this;
}

FingerprintBuilder &FingerprintBuilder::addDouble(double V) {
  std::uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V));
  std::memcpy(&Bits, &V, sizeof(Bits));
  return add(Bits);
}

Fingerprint swp::fingerprintDdg(const Ddg &G) {
  FingerprintBuilder B;
  B.add(std::uint64_t{0x44444447}); // Domain tag.
  B.add(G.numNodes()).add(G.numEdges());
  for (const DdgNode &N : G.nodes())
    B.add(N.OpClass).add(N.Latency).add(N.Variant);
  for (const DdgEdge &E : G.edges())
    B.add(E.Src).add(E.Dst).add(E.Distance).add(E.Latency);
  return B.finish();
}

Fingerprint swp::fingerprintMachine(const MachineModel &M) {
  FingerprintBuilder B;
  B.add(std::uint64_t{0x4d414348}); // Domain tag.
  B.add(M.numTypes());
  for (const FuType &T : M.types()) {
    B.add(T.Count).add(T.numVariants());
    for (int V = 0; V < T.numVariants(); ++V) {
      const ReservationTable &RT = T.variant(V);
      B.add(RT.numStages()).add(RT.execTime());
      for (int S = 0; S < RT.numStages(); ++S)
        for (int C = 0; C < RT.execTime(); ++C)
          B.add(RT.busy(S, C) ? 1 : 0);
    }
  }
  // Topology words only when one is attached, so every pre-topology
  // machine keeps its exact historical byte stream (and cache entries).
  // Instance names are ignored like every other name.
  if (const Topology *Topo = M.topology()) {
    B.add(std::uint64_t{0x544f504fULL}); // "TOPO" sub-tag.
    B.add(Topo->numUnits());
    B.add(Topo->hopLatency());
    B.add(Topo->maxHops());
    B.add(static_cast<int>(Topo->edges().size()));
    for (const std::pair<int, int> &E : Topo->edges())
      B.add(E.first).add(E.second);
  }
  return B.finish();
}

Fingerprint swp::fingerprintOptions(const SchedulerOptions &Opts) {
  FingerprintBuilder B;
  B.add(std::uint64_t{0x4f505453}); // Domain tag.
  B.add(static_cast<int>(Opts.Mapping));
  B.addDouble(Opts.TimeLimitPerT);
  B.add(static_cast<std::uint64_t>(Opts.NodeLimitPerT));
  B.add(Opts.MaxTSlack);
  B.add(Opts.ColoringObjective ? 1 : 0);
  B.add(Opts.MinimizeBuffers ? 1 : 0);
  B.add(Opts.VerifySchedules ? 1 : 0);
  B.add(Opts.LpRoundingProbe ? 1 : 0);
  // Warm starts never change feasibility answers, but a degenerate LP can
  // surface a different (equally valid) vertex, so the flag is part of the
  // cache identity to keep warm hits byte-identical to their cold solves.
  B.add(Opts.WarmStartAcrossT ? 1 : 0);
  return B.finish();
}

Fingerprint swp::fingerprintJob(const Ddg &G, const MachineModel &M,
                                const SchedulerOptions &Opts, bool Portfolio,
                                double DeadlineSeconds, int EngineTag) {
  Fingerprint FG = fingerprintDdg(G);
  Fingerprint FM = fingerprintMachine(M);
  Fingerprint FO = fingerprintOptions(Opts);
  FingerprintBuilder B;
  B.add(FG.Hi).add(FG.Lo);
  B.add(FM.Hi).add(FM.Lo);
  B.add(FO.Hi).add(FO.Lo);
  B.add(Portfolio ? 1 : 0);
  B.addDouble(DeadlineSeconds);
  B.add(EngineTag);
  return B.finish();
}
