//===- FaultInjector.cpp - Deterministic fault injection ------------------===//

#include "swp/support/FaultInjector.h"

#include <cstdlib>
#include <mutex>

using namespace swp;

namespace {

/// splitmix64: the same finalizer Rng uses for seeding; good avalanche, so
/// (seed, site, poll-index) -> uniform bits without a shared stream.
std::uint64_t mix(std::uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

std::mutex ConfigMutex;

} // namespace

const char *swp::faultSiteName(FaultSite S) {
  switch (S) {
  case FaultSite::LpStall:
    return "lp-stall";
  case FaultSite::LpInfeasible:
    return "lp-infeasible";
  case FaultSite::BnbNode:
    return "bnb-node";
  case FaultSite::Alloc:
    return "alloc";
  case FaultSite::Dispatch:
    return "dispatch";
  case FaultSite::CacheInsert:
    return "cache-insert";
  case FaultSite::Deadline:
    return "deadline";
  case FaultSite::SatConflict:
    return "sat-conflict";
  case FaultSite::SockRead:
    return "sock-read";
  case FaultSite::SockWrite:
    return "sock-write";
  case FaultSite::CacheLoad:
    return "cache-load";
  case FaultSite::LpRefactor:
    return "lp-refactor";
  }
  return "?";
}

FaultInjector &FaultInjector::instance() {
  static FaultInjector Singleton;
  static std::once_flag EnvOnce;
  std::call_once(EnvOnce, [] {
    const char *Spec = std::getenv("SWP_FAULTS");
    if (!Spec || !*Spec)
      return;
    std::uint64_t Seed = 0;
    if (const char *SeedStr = std::getenv("SWP_FAULTS_SEED"))
      Seed = std::strtoull(SeedStr, nullptr, 10);
    Singleton.configure(Spec, Seed);
  });
  return Singleton;
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  Armed.store(false, std::memory_order_relaxed);
  for (SiteState &S : Sites) {
    S.Enabled = false;
    S.Prob = 0.0;
    S.Budget.store(0, std::memory_order_relaxed);
    S.Polls.store(0, std::memory_order_relaxed);
    S.Fires.store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::configure(const std::string &Spec, std::uint64_t NewSeed,
                              std::string *Err) {
  reset();
  {
    std::lock_guard<std::mutex> Lock(ConfigMutex);
    Seed = NewSeed;
  }
  auto Fail = [&](const std::string &Msg) {
    reset();
    if (Err)
      *Err = Msg;
    return false;
  };

  bool Any = false;
  size_t Pos = 0;
  while (Pos < Spec.size()) {
    size_t End = Spec.find(',', Pos);
    if (End == std::string::npos)
      End = Spec.size();
    std::string Entry = Spec.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Entry.empty())
      continue;

    size_t Colon = Entry.find(':');
    if (Colon == std::string::npos)
      return Fail("fault entry '" + Entry + "' missing ':'");
    std::string Name = Entry.substr(0, Colon);
    std::string Value = Entry.substr(Colon + 1);

    int SiteIx = -1;
    for (int I = 0; I < NumFaultSites; ++I)
      if (Name == faultSiteName(static_cast<FaultSite>(I))) {
        SiteIx = I;
        break;
      }
    if (SiteIx < 0)
      return Fail("unknown fault site '" + Name + "'");
    if (Value.empty())
      return Fail("fault entry '" + Entry + "' has empty value");

    // Validate before taking ConfigMutex: Fail() calls reset(), which
    // locks it too (non-recursive).
    char *ValEnd = nullptr;
    double Prob = 0.0;
    long long Count = 0;
    bool Probabilistic = Value[0] == 'p';
    if (Probabilistic) {
      Prob = std::strtod(Value.c_str() + 1, &ValEnd);
      if (ValEnd != Value.c_str() + Value.size() || Prob < 0.0 || Prob > 1.0)
        return Fail("bad probability in '" + Entry + "'");
    } else {
      Count = std::strtoll(Value.c_str(), &ValEnd, 10);
      if (ValEnd != Value.c_str() + Value.size() || Count < 0)
        return Fail("bad count in '" + Entry + "'");
    }

    std::lock_guard<std::mutex> Lock(ConfigMutex);
    SiteState &S = Sites[SiteIx];
    if (Probabilistic) {
      S.Prob = Prob;
      S.Budget.store(-1, std::memory_order_relaxed);
    } else {
      S.Budget.store(Count, std::memory_order_relaxed);
    }
    S.Enabled = true;
    Any = true;
  }

  if (Any)
    Armed.store(true, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::shouldFire(FaultSite Site) {
  if (!armed())
    return false;
  SiteState &S = Sites[static_cast<int>(Site)];
  if (!S.Enabled)
    return false;
  std::uint64_t Poll = S.Polls.fetch_add(1, std::memory_order_relaxed);

  bool Fire;
  std::int64_t Budget = S.Budget.load(std::memory_order_relaxed);
  if (Budget >= 0) {
    // Count mode: fire the first Budget polls.  Decrement-and-test keeps
    // the total exact under concurrent polls.
    Fire = Budget > 0 &&
           S.Budget.fetch_sub(1, std::memory_order_relaxed) > 0;
  } else {
    // Probability mode: deterministic per (seed, site, poll index).
    std::uint64_t H = mix(Seed ^ mix((static_cast<std::uint64_t>(
                                          static_cast<int>(Site)) << 32) ^
                                     Poll));
    Fire = (H >> 11) * (1.0 / 9007199254740992.0) < S.Prob;
  }
  if (Fire)
    S.Fires.fetch_add(1, std::memory_order_relaxed);
  return Fire;
}

std::uint64_t FaultInjector::fired(FaultSite Site) const {
  return Sites[static_cast<int>(Site)].Fires.load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::totalFired() const {
  std::uint64_t Total = 0;
  for (const SiteState &S : Sites)
    Total += S.Fires.load(std::memory_order_relaxed);
  return Total;
}
