//===- Status.cpp - Typed error propagation -------------------------------===//

#include "swp/support/Status.h"

#include "swp/support/Format.h"

using namespace swp;

const char *swp::statusCodeName(StatusCode C) {
  switch (C) {
  case StatusCode::Ok:
    return "ok";
  case StatusCode::InvalidInput:
    return "invalid-input";
  case StatusCode::ParseError:
    return "parse-error";
  case StatusCode::SolverStall:
    return "solver-stall";
  case StatusCode::ResourceExhausted:
    return "resource-exhausted";
  case StatusCode::Cancelled:
    return "cancelled";
  case StatusCode::Internal:
    return "internal";
  case StatusCode::FaultInjected:
    return "fault-injected";
  }
  return "?";
}

std::string Status::str() const {
  if (isOk())
    return "ok";
  std::string Out = statusCodeName(Code_);
  Out += ": ";
  Out += Message_;
  std::string Ctx;
  if (!Phase_.empty())
    Ctx += strFormat("phase=%s", Phase_.c_str());
  if (T_ != 0) {
    if (!Ctx.empty())
      Ctx += ", ";
    Ctx += strFormat("T=%d", T_);
  }
  if (!Instance_.empty()) {
    if (!Ctx.empty())
      Ctx += ", ";
    Ctx += strFormat("instance=%s", Instance_.c_str());
  }
  if (!Ctx.empty())
    Out += " [" + Ctx + "]";
  return Out;
}
