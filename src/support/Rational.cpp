//===- Rational.cpp - Exact rational arithmetic ---------------------------===//

#include "swp/support/Rational.h"

#include <numeric>

using namespace swp;

Rational::Rational(std::int64_t N, std::int64_t D) {
  assert(D != 0 && "rational with zero denominator");
  if (D < 0) {
    N = -N;
    D = -D;
  }
  std::int64_t G = std::gcd(N < 0 ? -N : N, D);
  if (G == 0)
    G = 1;
  Num = N / G;
  Den = D / G;
}

std::int64_t Rational::floor() const {
  if (Num >= 0)
    return Num / Den;
  return -((-Num + Den - 1) / Den);
}

std::int64_t Rational::ceil() const {
  if (Num >= 0)
    return (Num + Den - 1) / Den;
  return -((-Num) / Den);
}

std::string Rational::str() const {
  if (Den == 1)
    return std::to_string(Num);
  return std::to_string(Num) + "/" + std::to_string(Den);
}

Rational Rational::operator+(const Rational &O) const {
  return Rational(Num * O.Den + O.Num * Den, Den * O.Den);
}

Rational Rational::operator-(const Rational &O) const {
  return Rational(Num * O.Den - O.Num * Den, Den * O.Den);
}

Rational Rational::operator*(const Rational &O) const {
  return Rational(Num * O.Num, Den * O.Den);
}

Rational Rational::operator/(const Rational &O) const {
  assert(O.Num != 0 && "division by zero rational");
  return Rational(Num * O.Den, Den * O.Num);
}

bool Rational::operator<(const Rational &O) const {
  return Num * O.Den < O.Num * Den;
}
