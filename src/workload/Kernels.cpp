//===- Kernels.cpp - Hand-written loop kernels ----------------------------===//

#include "swp/workload/Kernels.h"

using namespace swp;

namespace {

// ppc604Like() op classes.
constexpr int Sciu = 0;
constexpr int Mciu = 1;
constexpr int Fpu = 2;
constexpr int Lsu = 3;
constexpr int Fdiv = 4;

// Node latencies per class on the PPC604-like machine.
constexpr int LatSciu = 1;
constexpr int LatMciu = 2;
constexpr int LatFpu = 4;
constexpr int LatLsu = 2;
constexpr int LatFdiv = 6;

} // namespace

Ddg swp::motivatingLoop() {
  // Example machines: class 0 = FP, class 1 = LS.
  Ddg G("motivating");
  int I0 = G.addNode("i0", 1, 1); // load        (reconstructed latency)
  int I1 = G.addNode("i1", 1, 2); // load
  int I2 = G.addNode("i2", 0, 2); // FP op with a self-recurrence
  int I3 = G.addNode("i3", 0, 2); // FP op
  int I4 = G.addNode("i4", 0, 4); // FP op (long latency to the store)
  int I5 = G.addNode("i5", 1, 1); // store
  G.addEdge(I0, I1, 0);
  G.addEdge(I1, I2, 0);
  G.addEdge(I2, I2, 1); // T_dep = 2/1 = 2, the paper's critical cycle.
  G.addEdge(I2, I3, 0);
  G.addEdge(I3, I4, 0);
  G.addEdge(I4, I5, 0);
  return G;
}

Ddg swp::scheduleALoop() {
  Ddg G("schedule-a");
  int Ld = G.addNode("ld", 1, 1);
  int F0 = G.addNode("f0", 0, 2);
  int F1 = G.addNode("f1", 0, 2);
  int F2 = G.addNode("f2", 0, 2);
  int St = G.addNode("st", 1, 1);
  G.addEdge(Ld, F0, 0);
  G.addEdge(F0, St, 0);
  (void)F1;
  (void)F2;
  return G;
}

std::vector<Ddg> swp::classicKernels() {
  std::vector<Ddg> Kernels;

  {
    // daxpy: y[i] += a * x[i].
    Ddg G("daxpy");
    int Lx = G.addNode("ldx", Lsu, LatLsu);
    int Ly = G.addNode("ldy", Lsu, LatLsu);
    int Mu = G.addNode("mul", Fpu, LatFpu);
    int Ad = G.addNode("add", Fpu, LatFpu);
    int St = G.addNode("sty", Lsu, LatLsu);
    G.addEdge(Lx, Mu, 0);
    G.addEdge(Mu, Ad, 0);
    G.addEdge(Ly, Ad, 0);
    G.addEdge(Ad, St, 0);
    Kernels.push_back(G);
  }

  {
    // ddot: s += x[i] * y[i] — FP-add self-recurrence.
    Ddg G("ddot");
    int Lx = G.addNode("ldx", Lsu, LatLsu);
    int Ly = G.addNode("ldy", Lsu, LatLsu);
    int Mu = G.addNode("mul", Fpu, LatFpu);
    int Ad = G.addNode("acc", Fpu, LatFpu);
    G.addEdge(Lx, Mu, 0);
    G.addEdge(Ly, Mu, 0);
    G.addEdge(Mu, Ad, 0);
    G.addEdge(Ad, Ad, 1);
    Kernels.push_back(G);
  }

  {
    // Livermore kernel 1 (hydro): x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]).
    Ddg G("liv1-hydro");
    int Ly = G.addNode("ldy", Lsu, LatLsu);
    int Lz1 = G.addNode("ldz1", Lsu, LatLsu);
    int Lz2 = G.addNode("ldz2", Lsu, LatLsu);
    int M1 = G.addNode("mul1", Fpu, LatFpu);
    int M2 = G.addNode("mul2", Fpu, LatFpu);
    int A1 = G.addNode("add1", Fpu, LatFpu);
    int M3 = G.addNode("mul3", Fpu, LatFpu);
    int A2 = G.addNode("add2", Fpu, LatFpu);
    int St = G.addNode("stx", Lsu, LatLsu);
    G.addEdge(Lz1, M1, 0);
    G.addEdge(Lz2, M2, 0);
    G.addEdge(M1, A1, 0);
    G.addEdge(M2, A1, 0);
    G.addEdge(Ly, M3, 0);
    G.addEdge(A1, M3, 0);
    G.addEdge(M3, A2, 0);
    G.addEdge(A2, St, 0);
    Kernels.push_back(G);
  }

  {
    // Livermore kernel 5 (tridiagonal): x[i] = z[i] * (y[i] - x[i-1]).
    Ddg G("liv5-tridiag");
    int Lz = G.addNode("ldz", Lsu, LatLsu);
    int Ly = G.addNode("ldy", Lsu, LatLsu);
    int Su = G.addNode("sub", Fpu, LatFpu);
    int Mu = G.addNode("mul", Fpu, LatFpu);
    int St = G.addNode("stx", Lsu, LatLsu);
    G.addEdge(Ly, Su, 0);
    G.addEdge(Lz, Mu, 0);
    G.addEdge(Su, Mu, 0);
    G.addEdge(Mu, Su, 1); // x[i-1] recurrence: T_dep = 8.
    G.addEdge(Mu, St, 0);
    Kernels.push_back(G);
  }

  {
    // Livermore kernel 11 (first sum): x[k] = x[k-1] + y[k].
    Ddg G("liv11-firstsum");
    int Ly = G.addNode("ldy", Lsu, LatLsu);
    int Ad = G.addNode("add", Fpu, LatFpu);
    int St = G.addNode("stx", Lsu, LatLsu);
    G.addEdge(Ly, Ad, 0);
    G.addEdge(Ad, Ad, 1);
    G.addEdge(Ad, St, 0);
    Kernels.push_back(G);
  }

  {
    // 5-tap FIR filter: y[i] = sum_k c[k] * x[i+k].
    Ddg G("fir5");
    int Loads[5], Muls[5];
    for (int K = 0; K < 5; ++K) {
      Loads[K] = G.addNode("ldx" + std::to_string(K), Lsu, LatLsu);
      Muls[K] = G.addNode("mul" + std::to_string(K), Fpu, LatFpu);
      G.addEdge(Loads[K], Muls[K], 0);
    }
    int A0 = G.addNode("add0", Fpu, LatFpu);
    int A1 = G.addNode("add1", Fpu, LatFpu);
    int A2 = G.addNode("add2", Fpu, LatFpu);
    int A3 = G.addNode("add3", Fpu, LatFpu);
    int St = G.addNode("sty", Lsu, LatLsu);
    G.addEdge(Muls[0], A0, 0);
    G.addEdge(Muls[1], A0, 0);
    G.addEdge(Muls[2], A1, 0);
    G.addEdge(Muls[3], A1, 0);
    G.addEdge(A0, A2, 0);
    G.addEdge(A1, A2, 0);
    G.addEdge(Muls[4], A3, 0);
    G.addEdge(A2, A3, 0);
    G.addEdge(A3, St, 0);
    Kernels.push_back(G);
  }

  {
    // Complex multiply: (a+bi)(c+di) streamed from memory.
    Ddg G("cmplx-mul");
    int La = G.addNode("lda", Lsu, LatLsu);
    int Lb = G.addNode("ldb", Lsu, LatLsu);
    int Lc = G.addNode("ldc", Lsu, LatLsu);
    int Ld = G.addNode("ldd", Lsu, LatLsu);
    int M1 = G.addNode("ac", Fpu, LatFpu);
    int M2 = G.addNode("bd", Fpu, LatFpu);
    int M3 = G.addNode("ad", Fpu, LatFpu);
    int M4 = G.addNode("bc", Fpu, LatFpu);
    int Su = G.addNode("re", Fpu, LatFpu);
    int Ad = G.addNode("im", Fpu, LatFpu);
    int S1 = G.addNode("stre", Lsu, LatLsu);
    int S2 = G.addNode("stim", Lsu, LatLsu);
    G.addEdge(La, M1, 0);
    G.addEdge(Lc, M1, 0);
    G.addEdge(Lb, M2, 0);
    G.addEdge(Ld, M2, 0);
    G.addEdge(La, M3, 0);
    G.addEdge(Ld, M3, 0);
    G.addEdge(Lb, M4, 0);
    G.addEdge(Lc, M4, 0);
    G.addEdge(M1, Su, 0);
    G.addEdge(M2, Su, 0);
    G.addEdge(M3, Ad, 0);
    G.addEdge(M4, Ad, 0);
    G.addEdge(Su, S1, 0);
    G.addEdge(Ad, S2, 0);
    Kernels.push_back(G);
  }

  {
    // Horner evaluation with a loop-carried accumulator:
    // s = s * x + c[i].
    Ddg G("horner");
    int Lc = G.addNode("ldc", Lsu, LatLsu);
    int Mu = G.addNode("mul", Fpu, LatFpu);
    int Ad = G.addNode("add", Fpu, LatFpu);
    G.addEdge(Lc, Ad, 0);
    G.addEdge(Mu, Ad, 0);
    G.addEdge(Ad, Mu, 1); // s feeds next iteration's multiply.
    Kernels.push_back(G);
  }

  {
    // Newton reciprocal step with a true divide.
    Ddg G("recip");
    int Ld = G.addNode("ldx", Lsu, LatLsu);
    int Dv = G.addNode("div", Fdiv, LatFdiv);
    int St = G.addNode("str", Lsu, LatLsu);
    G.addEdge(Ld, Dv, 0);
    G.addEdge(Dv, St, 0);
    Kernels.push_back(G);
  }

  {
    // Integer checksum: cs = cs * 31 + data[i].
    Ddg G("checksum");
    int Ld = G.addNode("ld", Lsu, LatLsu);
    int Mu = G.addNode("mul31", Mciu, LatMciu);
    int Ad = G.addNode("add", Sciu, LatSciu);
    G.addEdge(Ld, Ad, 0);
    G.addEdge(Mu, Ad, 0);
    G.addEdge(Ad, Mu, 1);
    Kernels.push_back(G);
  }

  {
    // 3-point stencil: x[i] = a * (y[i-1] + y[i] + y[i+1]).
    Ddg G("stencil3");
    int L0 = G.addNode("ldy0", Lsu, LatLsu);
    int L1 = G.addNode("ldy1", Lsu, LatLsu);
    int L2 = G.addNode("ldy2", Lsu, LatLsu);
    int A0 = G.addNode("add0", Fpu, LatFpu);
    int A1 = G.addNode("add1", Fpu, LatFpu);
    int Mu = G.addNode("mul", Fpu, LatFpu);
    int St = G.addNode("stx", Lsu, LatLsu);
    G.addEdge(L0, A0, 0);
    G.addEdge(L1, A0, 0);
    G.addEdge(A0, A1, 0);
    G.addEdge(L2, A1, 0);
    G.addEdge(A1, Mu, 0);
    G.addEdge(Mu, St, 0);
    Kernels.push_back(G);
  }

  {
    // Integer saxpy via the multi-cycle integer unit.
    Ddg G("saxpy-int");
    int Lx = G.addNode("ldx", Lsu, LatLsu);
    int Ly = G.addNode("ldy", Lsu, LatLsu);
    int Mu = G.addNode("mul", Mciu, LatMciu);
    int Ad = G.addNode("add", Sciu, LatSciu);
    int St = G.addNode("sty", Lsu, LatLsu);
    G.addEdge(Lx, Mu, 0);
    G.addEdge(Mu, Ad, 0);
    G.addEdge(Ly, Ad, 0);
    G.addEdge(Ad, St, 0);
    Kernels.push_back(G);
  }

  {
    // Pointer chase: p = p->next (load feeds its own address).
    Ddg G("ptr-chase");
    int Ld = G.addNode("ldnext", Lsu, LatLsu);
    int Use = G.addNode("use", Sciu, LatSciu);
    G.addEdge(Ld, Ld, 1); // T_dep = load latency.
    G.addEdge(Ld, Use, 0);
    Kernels.push_back(G);
  }

  {
    // Normalization: x[i] = (x[i] - mu) / sigma — divide-heavy FP loop.
    Ddg G("normalize");
    int Ld = G.addNode("ldx", Lsu, LatLsu);
    int Su = G.addNode("sub", Fpu, LatFpu);
    int Dv = G.addNode("div", Fdiv, LatFdiv);
    int St = G.addNode("stx", Lsu, LatLsu);
    G.addEdge(Ld, Su, 0);
    G.addEdge(Su, Dv, 0);
    G.addEdge(Dv, St, 0);
    Kernels.push_back(G);
  }

  {
    // Larger mixed loop: predicated state update with address arithmetic
    // (16 nodes, one 2-iteration recurrence).
    Ddg G("state-update");
    int Ai = G.addNode("addi", Sciu, LatSciu);
    int L0 = G.addNode("ld0", Lsu, LatLsu);
    int L1 = G.addNode("ld1", Lsu, LatLsu);
    int M0 = G.addNode("fmul0", Fpu, LatFpu);
    int M1 = G.addNode("fmul1", Fpu, LatFpu);
    int A0 = G.addNode("fadd0", Fpu, LatFpu);
    int A1 = G.addNode("fadd1", Fpu, LatFpu);
    int Cm = G.addNode("cmp", Sciu, LatSciu);
    int Se = G.addNode("sel", Sciu, LatSciu);
    int Mi = G.addNode("imul", Mciu, LatMciu);
    int Ax = G.addNode("addx", Sciu, LatSciu);
    int S0 = G.addNode("st0", Lsu, LatLsu);
    int L2 = G.addNode("ld2", Lsu, LatLsu);
    int A2 = G.addNode("fadd2", Fpu, LatFpu);
    int S1 = G.addNode("st1", Lsu, LatLsu);
    int Bx = G.addNode("bump", Sciu, LatSciu);
    G.addEdge(Ai, L0, 0);
    G.addEdge(Ai, L1, 0);
    G.addEdge(L0, M0, 0);
    G.addEdge(L1, M1, 0);
    G.addEdge(M0, A0, 0);
    G.addEdge(M1, A0, 0);
    G.addEdge(A0, A1, 0);
    G.addEdge(A1, A1, 2); // Recurrence across two iterations.
    G.addEdge(A0, Cm, 0);
    G.addEdge(Cm, Se, 0);
    G.addEdge(Se, Mi, 0);
    G.addEdge(Mi, Ax, 0);
    G.addEdge(Ax, S0, 0);
    G.addEdge(L2, A2, 0);
    G.addEdge(A1, A2, 0);
    G.addEdge(A2, S1, 0);
    G.addEdge(Bx, Ai, 1); // Induction variable bump.
    G.addEdge(Ai, Bx, 0);
    Kernels.push_back(G);
  }

  return Kernels;
}
