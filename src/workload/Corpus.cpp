//===- Corpus.cpp - Synthetic loop corpus ---------------------------------===//

#include "swp/workload/Corpus.h"

#include "swp/machine/Catalog.h"
#include "swp/support/Format.h"
#include "swp/support/Rng.h"

#include <algorithm>
#include <cmath>

using namespace swp;

namespace {

// Class mix calibrated to scientific-kernel instruction profiles: memory
// and FP dominate, divides are rare.
struct ClassSpec {
  int OpClass;
  int Latency;
  double Weight;
};

const ClassSpec ClassMix[] = {
    {0, 1, 0.22}, // SCIU
    {1, 2, 0.10}, // MCIU
    {2, 4, 0.30}, // FPU
    {3, 2, 0.33}, // LSU
    {4, 6, 0.05}, // FDIV
};

int sampleClass(Rng &R) {
  double X = R.unit();
  double Acc = 0.0;
  for (const ClassSpec &C : ClassMix) {
    Acc += C.Weight;
    if (X < Acc)
      return C.OpClass;
  }
  return ClassMix[std::size(ClassMix) - 1].OpClass;
}

int classLatency(int OpClass) {
  for (const ClassSpec &C : ClassMix)
    if (C.OpClass == OpClass)
      return C.Latency;
  return 1;
}

} // namespace

Ddg swp::generateRandomLoop(const MachineModel &Machine, std::uint64_t Seed,
                            const CorpusOptions &Opts) {
  Rng R(Seed);
  // 3 + geometric node count, capped.
  int Extra = static_cast<int>(
      std::floor(-std::log(1.0 - R.unit()) * Opts.MeanExtraNodes));
  int N = std::min(3 + Extra, Opts.MaxNodes);

  Ddg G(strFormat("loop-%llu", static_cast<unsigned long long>(Seed)));
  for (int I = 0; I < N; ++I) {
    int OpClass = sampleClass(R);
    G.addNode(strFormat("n%d", I), OpClass, classLatency(OpClass));
  }

  // Forward dependences: mostly a chain with a few diamonds, giving DAGs
  // that look like expression trees feeding stores.
  for (int I = 1; I < N; ++I) {
    if (R.chance(0.85))
      G.addEdge(R.intIn(std::max(0, I - 4), I - 1), I, 0);
    if (I >= 2 && R.chance(0.30))
      G.addEdge(R.intIn(0, I - 2), I, 0);
  }

  // Loop-carried recurrences.
  if (R.chance(Opts.RecurrenceProb)) {
    int NumBack = R.chance(0.3) ? 2 : 1;
    for (int B = 0; B < NumBack; ++B) {
      int To = R.intIn(0, N - 1);
      int From = R.intIn(To, N - 1);
      G.addEdge(From, To, R.chance(0.75) ? 1 : 2);
    }
  }

  (void)Machine;
  return G;
}

std::vector<Ddg> swp::generateCorpus(const MachineModel &Machine,
                                     const CorpusOptions &Opts) {
  std::vector<Ddg> Corpus;
  Corpus.reserve(static_cast<size_t>(Opts.NumLoops));
  Rng SeedStream(Opts.Seed);
  for (int I = 0; I < Opts.NumLoops; ++I) {
    Ddg G = generateRandomLoop(Machine, SeedStream.next(), Opts);
    G.setName(strFormat("loop-%04d", I));
    Corpus.push_back(std::move(G));
  }
  return Corpus;
}

Ddg swp::generateRandomCgraLoop(const MachineModel &Machine,
                                std::uint64_t Seed,
                                const CgraCorpusOptions &Opts) {
  Rng R(Seed);
  int Extra = static_cast<int>(
      std::floor(-std::log(1.0 - R.unit()) * Opts.MeanExtraNodes));
  int N = std::min(3 + Extra, Opts.MaxNodes);

  const bool HasMul = Machine.type(0).numVariants() > 1;
  Ddg G(strFormat("cgra-%llu", static_cast<unsigned long long>(Seed)));
  for (int I = 0; I < N; ++I) {
    // ALUs finish in 1 cycle, the multiplier path in 2.
    if (HasMul && R.chance(Opts.MulProb))
      G.addNodeVariant(strFormat("n%d", I), 0, cgraMulVariant(), 2);
    else
      G.addNode(strFormat("n%d", I), 0, 1);
  }

  // Dataflow-kernel shape: a chain backbone with local fan-in, so most
  // values travel to near neighbors (the CGRA sweet spot) with occasional
  // long connections that force multi-hop routing.
  for (int I = 1; I < N; ++I) {
    if (R.chance(0.9))
      G.addEdge(R.intIn(std::max(0, I - 3), I - 1), I, 0);
    if (I >= 3 && R.chance(0.25))
      G.addEdge(R.intIn(0, I - 3), I, 0);
  }
  if (R.chance(Opts.RecurrenceProb)) {
    int To = R.intIn(0, N - 1);
    int From = R.intIn(To, N - 1);
    G.addEdge(From, To, R.chance(0.75) ? 1 : 2);
  }
  return G;
}

std::vector<Ddg> swp::generateCgraCorpus(const MachineModel &Machine,
                                         const CgraCorpusOptions &Opts) {
  std::vector<Ddg> Corpus;
  Corpus.reserve(static_cast<size_t>(Opts.NumLoops));
  Rng SeedStream(Opts.Seed);
  for (int I = 0; I < Opts.NumLoops; ++I) {
    Ddg G = generateRandomCgraLoop(Machine, SeedStream.next(), Opts);
    G.setName(strFormat("cgra-%04d", I));
    Corpus.push_back(std::move(G));
  }
  return Corpus;
}
