//===- Simplex.cpp - Sparse revised simplex -------------------------------===//
//
// Bounded-variable revised simplex with a product-form (eta file) basis
// inverse.  See the header for the architecture; the invariants that keep
// every answer sound regardless of numerical luck:
//
//   - Optimal is only reported by the primal phase-2 loop finding no
//     eligible entering column over a primal-feasible basis;
//   - Infeasible is only reported by an exact presolve proof, contradictory
//     bounds, a dual-simplex row with no admissible entering column (a
//     Farkas certificate), or phase 1 bottoming out above tolerance;
//   - every numerically doubtful situation (tiny pivots after a fresh
//     refactorization, a factorization that cannot complete, the injected
//     lp-refactor/lp-stall faults) degrades to IterLimit, which proves
//     nothing and censors only the consumer's current subtree.
//
//===----------------------------------------------------------------------===//

#include "swp/solver/Simplex.h"

#include "swp/support/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

using namespace swp;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();
constexpr double PivotEps = 1e-9;
constexpr double CostEps = 1e-7;
constexpr double FixEps = 1e-9;
/// A basic variable this far beyond a bound counts as primal-infeasible.
constexpr double PrimTol = 1e-9;
/// Residual phase-1 infeasibility below this is float dust, not a proof.
constexpr double InfeasProofTol = 1e-6;
/// Ratio-test tie window.
constexpr double TieEps = 1e-12;

inline size_t sz(int I) { return static_cast<size_t>(I); }

} // namespace

//===----------------------------------------------------------------------===//
// Construction
//===----------------------------------------------------------------------===//

SparseLp::SparseLp(const MilpModel &M) : Model(&M), Pre(presolveModel(M)) {
  NumStruct = M.numVars();
  if (Pre.Infeasible)
    return; // solve() answers Infeasible without touching the matrix.

  // Compact kept rows and scatter their terms into sparse columns.  Terms
  // are normalized (sorted, merged) at addConstraint time, so a row-major
  // sweep appends each column's entries already sorted by row.
  std::vector<int> RowOf(sz(M.numConstraints()), -1);
  for (int R = 0; R < M.numConstraints(); ++R) {
    if (Pre.DropRow[sz(R)])
      continue;
    RowOf[sz(R)] = NumRows++;
  }
  Cols.assign(sz(NumStruct + NumRows), {});
  Rhs.assign(sz(NumRows), 0.0);
  RowCmp.assign(sz(NumRows), CmpKind::LE);
  for (int R = 0; R < M.numConstraints(); ++R) {
    int K = RowOf[sz(R)];
    if (K < 0)
      continue;
    const ModelConstraint &C = M.constraints()[sz(R)];
    Rhs[sz(K)] = C.Rhs;
    RowCmp[sz(K)] = C.Cmp;
    for (const LinTerm &T : C.Expr.terms())
      Cols[sz(T.Var)].push_back({K, T.Coef});
  }
  for (int K = 0; K < NumRows; ++K)
    Cols[sz(NumStruct + K)].push_back({K, 1.0});

  Cost.assign(sz(numCols()), 0.0);
  for (const LinTerm &T : M.objective().terms())
    Cost[sz(T.Var)] = T.Coef;
  CostEmpty = M.objective().terms().empty();

  St.assign(sz(numCols()), LpBasisStatus::AtLower);
  XB.assign(sz(NumRows), 0.0);
  WorkY.assign(sz(NumRows), 0.0);
  WorkPi.assign(sz(NumRows), 0.0);
}

//===----------------------------------------------------------------------===//
// Basis linear algebra
//===----------------------------------------------------------------------===//

void SparseLp::ftran(std::vector<double> &V) const {
  for (const Eta &E : Etas) {
    double T = V[sz(E.Row)] / E.Pivot;
    V[sz(E.Row)] = T;
    if (T == 0.0)
      continue;
    for (const auto &[R, A] : E.Other)
      V[sz(R)] -= A * T;
  }
}

void SparseLp::btran(std::vector<double> &V) const {
  for (auto It = Etas.rbegin(); It != Etas.rend(); ++It) {
    double S = V[sz(It->Row)];
    for (const auto &[R, A] : It->Other)
      S -= A * V[sz(R)];
    V[sz(It->Row)] = S / It->Pivot;
  }
}

void SparseLp::loadColumn(int C, std::vector<double> &Dense) const {
  std::fill(Dense.begin(), Dense.end(), 0.0);
  for (const auto &[R, A] : Cols[sz(C)])
    Dense[sz(R)] = A;
}

double SparseLp::colDot(int C, const std::vector<double> &RowVec) const {
  double S = 0.0;
  for (const auto &[R, A] : Cols[sz(C)])
    S += A * RowVec[sz(R)];
  return S;
}

LpBasisStatus SparseLp::boundStatus(int C) const {
  if (EffLb[sz(C)] == -Inf)
    return LpBasisStatus::AtUpper;
  return LpBasisStatus::AtLower;
}

double SparseLp::nonbasicValue(int C) const {
  return St[sz(C)] == LpBasisStatus::AtUpper ? EffUb[sz(C)] : EffLb[sz(C)];
}

void SparseLp::coldBasis() {
  for (int C = 0; C < NumStruct; ++C)
    St[sz(C)] = boundStatus(C);
  for (int K = 0; K < NumRows; ++K)
    St[sz(NumStruct + K)] = LpBasisStatus::Basic;
  Basis.resize(sz(NumRows));
  for (int K = 0; K < NumRows; ++K)
    Basis[sz(K)] = NumStruct + K;
  Etas.clear();
  BaseEtas = 0;
  HaveBasis = true;
  NeedRefactor = false;
}

bool SparseLp::factorize() {
  // Fault injection: the factorization "fails" (a real code would hit a
  // singular or overflowing LU here).  State is untouched; the solve
  // degrades to IterLimit, which proves nothing.
  if (FaultInjector::instance().shouldFire(FaultSite::LpRefactor))
    return false;
  ++Stats.Refactorizations;
  Etas.clear();

  std::vector<char> RowDone(sz(NumRows), 0);
  std::vector<int> NewBasis(sz(NumRows), -1);
  int Assigned = 0;

  // Gauss-Jordan over the hinted-basic columns: ftran each through the
  // etas built so far, pivot on the largest entry in a still-free row.
  auto Place = [&](int C) -> bool {
    loadColumn(C, WorkY);
    ftran(WorkY);
    int BestRow = -1;
    double BestAbs = 1e-7;
    for (int R = 0; R < NumRows; ++R) {
      if (RowDone[sz(R)])
        continue;
      double A = std::abs(WorkY[sz(R)]);
      if (A > BestAbs) {
        BestAbs = A;
        BestRow = R;
      }
    }
    if (BestRow < 0)
      return false;
    Eta E;
    E.Row = BestRow;
    E.Pivot = WorkY[sz(BestRow)];
    for (int R = 0; R < NumRows; ++R)
      if (R != BestRow && std::abs(WorkY[sz(R)]) > 1e-12)
        E.Other.push_back({R, WorkY[sz(R)]});
    Etas.push_back(std::move(E));
    RowDone[sz(BestRow)] = 1;
    NewBasis[sz(BestRow)] = C;
    ++Assigned;
    return true;
  };

  std::vector<int> Cands;
  for (int C = 0; C < numCols(); ++C)
    if (St[sz(C)] == LpBasisStatus::Basic)
      Cands.push_back(C);

  // Two-sided triangular ordering, fill-free on both wings.
  //
  // Front wing (row singletons): repeatedly retire a row touched by exactly
  // one remaining candidate.  When row r is retired at count one, every
  // other then-remaining candidate has a zero there, so each column placed
  // later has zeros in all earlier front pivot rows: its ftran is the
  // identity and the eta is the original sparse column verbatim.
  //
  // Back wing (column singletons): after the front wing is exhausted,
  // repeatedly retire a candidate with exactly one entry in remaining rows.
  // Its off-pivot entries lie only in rows retired before it, so placing
  // the back wing LAST in REVERSE discovery order again puts every
  // column's off-pivot entries in later pivot rows — identity ftran, eta
  // verbatim.  (The phases must not interleave: a row singleton exposed by
  // a column retirement could pivot a row the back column still touches.)
  //
  // Only the irreducible bump between the wings goes through the general
  // Gauss-Jordan placement and can fill in — without this ordering every
  // eta could reach NumRows entries, making each ftran/btran O(NumRows^2)
  // and the whole solver quadratic in the model size.
  {
    std::vector<int> RowCount(sz(NumRows), 0);
    std::vector<int> ColCount(sz(numCols()), 0);
    std::vector<std::vector<int>> RowCands(sz(NumRows));
    std::vector<char> Used(sz(numCols()), 0);
    for (int C : Cands)
      for (const auto &[R, A] : Cols[sz(C)])
        if (std::abs(A) > 1e-12) {
          ++RowCount[sz(R)];
          ++ColCount[sz(C)];
          RowCands[sz(R)].push_back(C);
        }

    auto EntryAt = [this](int C, int R) {
      for (const auto &[Row, A] : Cols[sz(C)])
        if (Row == R)
          return A;
      return 0.0;
    };
    // Retire column C pivoted at row R: maintain the singleton counts of
    // everything sharing its row or column.
    std::vector<int> RowStack, ColStack;
    auto Retire = [&](int C, int R) {
      Used[sz(C)] = 1;
      RowDone[sz(R)] = 1;
      NewBasis[sz(R)] = C;
      ++Assigned;
      for (int C2 : RowCands[sz(R)])
        if (!Used[sz(C2)] && --ColCount[sz(C2)] == 1)
          ColStack.push_back(C2);
      for (const auto &[R2, A2] : Cols[sz(C)])
        if (std::abs(A2) > 1e-12 && !RowDone[sz(R2)] &&
            --RowCount[sz(R2)] == 1)
          RowStack.push_back(R2);
    };
    auto ColumnEta = [&](int C, int R) {
      Eta E;
      E.Row = R;
      E.Pivot = EntryAt(C, R);
      for (const auto &[Row, A] : Cols[sz(C)])
        if (Row != R && std::abs(A) > 1e-12)
          E.Other.push_back({Row, A});
      // An identity eta (unit pivot, no off-pivot entries — every basic
      // logical in an untouched row) is a no-op in ftran/btran; skip it.
      if (E.Pivot != 1.0 || !E.Other.empty())
        Etas.push_back(std::move(E));
    };

    for (int R = 0; R < NumRows; ++R)
      if (RowCount[sz(R)] == 1)
        RowStack.push_back(R);
    while (!RowStack.empty()) {
      int R = RowStack.back();
      RowStack.pop_back();
      if (RowDone[sz(R)] || RowCount[sz(R)] != 1)
        continue;
      int C = -1;
      for (int Cand : RowCands[sz(R)])
        if (!Used[sz(Cand)]) {
          C = Cand;
          break;
        }
      if (C < 0 || std::abs(EntryAt(C, R)) <= 1e-7)
        continue; // Unusable pivot; leave the pair to the bump.
      ColumnEta(C, R);
      Retire(C, R);
    }

    // Back wing: rows are reserved (RowDone) now so the bump cannot pivot
    // there; the etas themselves are appended after the bump, in reverse.
    std::vector<std::pair<int, int>> Back;
    RowStack.clear();
    for (int C : Cands)
      if (!Used[sz(C)] && ColCount[sz(C)] == 1)
        ColStack.push_back(C);
    while (!ColStack.empty()) {
      int C = ColStack.back();
      ColStack.pop_back();
      if (Used[sz(C)] || ColCount[sz(C)] != 1)
        continue;
      int R = -1;
      for (const auto &[Row, A] : Cols[sz(C)])
        if (!RowDone[sz(Row)] && std::abs(A) > 1e-12) {
          R = Row;
          break;
        }
      if (R < 0 || std::abs(EntryAt(C, R)) <= 1e-7)
        continue;
      Back.push_back({C, R});
      Retire(C, R);
    }

    // The irreducible bump: general ftran-based placement with fill.
    for (int C : Cands) {
      if (Used[sz(C)])
        continue;
      if (!Place(C))
        St[sz(C)] = boundStatus(C); // Dependent or redundant: demote.
    }

    for (auto It = Back.rbegin(); It != Back.rend(); ++It)
      ColumnEta(It->first, It->second);
  }

  // Basis repair: cover the remaining rows with logicals.  A row's own
  // logical almost always pivots there; the fallback scan handles the rare
  // case where earlier etas moved its weight elsewhere.
  int Guard = 0;
  while (Assigned < NumRows) {
    bool Progress = false;
    for (int R = 0; R < NumRows; ++R) {
      if (RowDone[sz(R)])
        continue;
      int L = NumStruct + R;
      if (St[sz(L)] == LpBasisStatus::Basic)
        continue;
      if (Place(L)) {
        St[sz(L)] = LpBasisStatus::Basic;
        Progress = true;
      }
    }
    if (!Progress) {
      for (int R = 0; R < NumRows && !Progress; ++R) {
        int L = NumStruct + R;
        if (St[sz(L)] == LpBasisStatus::Basic)
          continue;
        if (Place(L)) {
          St[sz(L)] = LpBasisStatus::Basic;
          Progress = true;
        }
      }
    }
    if (!Progress || ++Guard > NumRows + 1)
      return false; // Numerically dead basis; caller reports IterLimit.
  }

  Basis = std::move(NewBasis);
  BaseEtas = static_cast<int>(Etas.size());
  NeedRefactor = false;
  return true;
}

void SparseLp::computeXB() {
  std::vector<double> V = Rhs;
  for (int C = 0; C < numCols(); ++C) {
    if (St[sz(C)] == LpBasisStatus::Basic)
      continue;
    double X = nonbasicValue(C);
    if (X == 0.0)
      continue;
    for (const auto &[R, A] : Cols[sz(C)])
      V[sz(R)] -= A * X;
  }
  ftran(V);
  XB = std::move(V);
}

void SparseLp::sanitizeStatuses() {
  for (int C = 0; C < numCols(); ++C) {
    if (St[sz(C)] == LpBasisStatus::Basic)
      continue;
    if (St[sz(C)] == LpBasisStatus::AtLower && EffLb[sz(C)] == -Inf)
      St[sz(C)] = LpBasisStatus::AtUpper;
    else if (St[sz(C)] == LpBasisStatus::AtUpper && EffUb[sz(C)] == Inf)
      St[sz(C)] = LpBasisStatus::AtLower;
  }
}

//===----------------------------------------------------------------------===//
// Pricing and feasibility measures
//===----------------------------------------------------------------------===//

/// Computes reduced costs for every column into \p D and reports whether
/// the current basis is dual feasible (movable nonbasics priced the right
/// way for minimization).
bool SparseLp::priceReducedCosts(std::vector<double> &D) const {
  D.assign(sz(numCols()), 0.0);
  if (CostEmpty)
    return true; // All reduced costs zero: every basis is dual feasible.
  std::vector<double> Pi(sz(NumRows), 0.0);
  for (int R = 0; R < NumRows; ++R)
    Pi[sz(R)] = Cost[sz(Basis[sz(R)])];
  // Pi currently holds c_B; btran turns it into c_B * B^-1.
  const_cast<SparseLp *>(this)->btran(Pi);
  bool DualFeasible = true;
  for (int C = 0; C < numCols(); ++C) {
    D[sz(C)] = Cost[sz(C)] - colDot(C, Pi);
    if (St[sz(C)] == LpBasisStatus::Basic)
      continue;
    if (EffUb[sz(C)] - EffLb[sz(C)] <= FixEps)
      continue; // Fixed columns cannot move; their sign is irrelevant.
    if (St[sz(C)] == LpBasisStatus::AtLower && D[sz(C)] < -CostEps)
      DualFeasible = false;
    else if (St[sz(C)] == LpBasisStatus::AtUpper && D[sz(C)] > CostEps)
      DualFeasible = false;
  }
  return DualFeasible;
}

double SparseLp::infeasibilityOf(int Row) const {
  int B = Basis[sz(Row)];
  double X = XB[sz(Row)];
  if (X < EffLb[sz(B)] - PrimTol)
    return EffLb[sz(B)] - X;
  if (X > EffUb[sz(B)] + PrimTol)
    return X - EffUb[sz(B)];
  return 0.0;
}

double SparseLp::totalInfeasibility() const {
  double F = 0.0;
  for (int R = 0; R < NumRows; ++R)
    F += infeasibilityOf(R);
  return F;
}

bool SparseLp::iterBookkeeping() {
  ++Iterations;
  if (Iterations > MaxIterations) {
    AbortWhy = LpStatus::IterLimit;
    return false;
  }
  // Cancellation poll every 16 iterations: each poll may read the steady
  // clock (deadline tokens), so keep it off the per-pivot path.
  if ((Iterations & 15) == 0 && Cancel.cancelled()) {
    AbortWhy = LpStatus::Cancelled;
    return false;
  }
  // Fault injection: a forced stall reports IterLimit exactly as a real
  // degenerate-cycling basis would.
  if (FaultInjector::instance().shouldFire(FaultSite::LpStall)) {
    AbortWhy = LpStatus::IterLimit;
    return false;
  }
  return true;
}

/// Applies one pivot: the entering column moves by \p T from \p EnterBase,
/// the basic column of \p Row leaves to \p LeaveStatus.  Pushes the eta and
/// refactorizes when the file is long.  \returns false when a needed
/// refactorization failed (caller aborts with IterLimit).
bool SparseLp::applyPivot(int Row, int EnterCol, double T, double EnterBase,
                         LpBasisStatus LeaveStatus,
                         const std::vector<double> &Y) {
  for (int R = 0; R < NumRows; ++R)
    if (Y[sz(R)] != 0.0)
      XB[sz(R)] -= Y[sz(R)] * T;
  int Leaving = Basis[sz(Row)];
  St[sz(Leaving)] = LeaveStatus;
  St[sz(EnterCol)] = LpBasisStatus::Basic;
  Basis[sz(Row)] = EnterCol;
  XB[sz(Row)] = EnterBase + T;

  Eta E;
  E.Row = Row;
  E.Pivot = Y[sz(Row)];
  for (int R = 0; R < NumRows; ++R)
    if (R != Row && std::abs(Y[sz(R)]) > 1e-12)
      E.Other.push_back({R, Y[sz(R)]});
  Etas.push_back(std::move(E));

  if (static_cast<int>(Etas.size()) - BaseEtas >= RefactorInterval) {
    if (!factorize()) {
      AbortWhy = LpStatus::IterLimit;
      return false;
    }
    computeXB(); // Fresh values kill accumulated drift.
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Dual-simplex reoptimization
//===----------------------------------------------------------------------===//

/// Restores primal feasibility from a dual-feasible basis — the warm-start
/// reoptimizer: a branch-and-bound child differs from its parent only in
/// one tightened bound, and the parent's optimal basis is dual feasible.
/// With an empty objective (the driver's feasibility models) every basis
/// qualifies, so this is also the cold main loop there.
SparseLp::LoopExit SparseLp::dualReoptimize() {
  double FPrev = totalInfeasibility();
  while (true) {
    if (FPrev <= PrimTol * static_cast<double>(NumRows + 1))
      return LoopExit::Done;
    if (!iterBookkeeping())
      return LoopExit::Abort;
    bool Bland = Stalled > BlandThreshold;
    if (Stalled > 2 * BlandThreshold)
      return LoopExit::Trouble; // Cycling despite Bland: let phase 1 try.

    // Leaving: the most violated basic variable (Bland: smallest column).
    int Row = -1;
    double BestViol = PrimTol;
    for (int R = 0; R < NumRows; ++R) {
      double V = infeasibilityOf(R);
      if (V <= BestViol)
        continue;
      if (Bland) {
        if (Row < 0 || Basis[sz(R)] < Basis[sz(Row)])
          Row = R;
        continue;
      }
      BestViol = V;
      Row = R;
    }
    if (Row < 0)
      return LoopExit::Done;
    int Leaving = Basis[sz(Row)];
    bool Below = XB[sz(Row)] < EffLb[sz(Leaving)] - PrimTol;

    // Reduced costs constrain the entering choice (they are all zero for
    // empty objectives, where any admissible column keeps dual
    // feasibility).
    bool NeedD = !CostEmpty;
    if (NeedD)
      priceReducedCosts(WorkD);

    // Dual ratio test along row Row: alpha_j = (B^-1 a_j)[Row] = rho.a_j.
    std::fill(WorkPi.begin(), WorkPi.end(), 0.0);
    WorkPi[sz(Row)] = 1.0;
    btran(WorkPi);
    int Enter = -1;
    double EnterAlpha = 0.0;
    double BestRatio = Inf;
    for (int C = 0; C < numCols(); ++C) {
      if (St[sz(C)] == LpBasisStatus::Basic)
        continue;
      if (EffUb[sz(C)] - EffLb[sz(C)] <= FixEps)
        continue;
      double Alpha = colDot(C, WorkPi);
      if (std::abs(Alpha) <= PivotEps)
        continue;
      bool AtLower = St[sz(C)] == LpBasisStatus::AtLower;
      bool Admissible = Below ? (AtLower ? Alpha < 0 : Alpha > 0)
                              : (AtLower ? Alpha > 0 : Alpha < 0);
      if (!Admissible)
        continue;
      if (Bland) {
        Enter = C;
        EnterAlpha = Alpha;
        break;
      }
      double Ratio = NeedD ? std::abs(WorkD[sz(C)]) / std::abs(Alpha) : 0.0;
      if (Ratio < BestRatio - TieEps ||
          (Ratio < BestRatio + TieEps &&
           std::abs(Alpha) > std::abs(EnterAlpha))) {
        BestRatio = Ratio;
        Enter = C;
        EnterAlpha = Alpha;
      }
    }
    if (Enter < 0) {
      // No movable nonbasic can push the violated basic toward its bound:
      // the row is a Farkas certificate of infeasibility.
      return LoopExit::Infeasible;
    }

    loadColumn(Enter, WorkY);
    ftran(WorkY);
    if (std::abs(WorkY[sz(Row)]) <= PivotEps) {
      // The eta file disagrees with the fresh row: refactorize and retry.
      if (NeedRefactor)
        return LoopExit::Trouble;
      if (!factorize()) {
        AbortWhy = LpStatus::IterLimit;
        return LoopExit::Abort;
      }
      computeXB();
      continue;
    }
    double Bound = Below ? EffLb[sz(Leaving)] : EffUb[sz(Leaving)];
    double T = (XB[sz(Row)] - Bound) / WorkY[sz(Row)];
    LpBasisStatus LeaveTo =
        Below ? LpBasisStatus::AtLower : LpBasisStatus::AtUpper;
    if (!applyPivot(Row, Enter, T, nonbasicValue(Enter), LeaveTo, WorkY))
      return LoopExit::Abort;
    ++Stats.DualPivots;

    double F = totalInfeasibility();
    if (F < FPrev - 1e-9)
      Stalled = 0;
    else
      ++Stalled;
    FPrev = F;
  }
}

//===----------------------------------------------------------------------===//
// Primal phase 1: minimize the sum of infeasibilities
//===----------------------------------------------------------------------===//

SparseLp::LoopExit SparseLp::primalPhase1() {
  double FPrev = totalInfeasibility();
  while (true) {
    if (FPrev <= PrimTol * static_cast<double>(NumRows + 1))
      return LoopExit::Done;
    if (!iterBookkeeping())
      return LoopExit::Abort;
    bool Bland = Stalled > BlandThreshold;

    // Gradient of f = sum of bound violations over basics, via one btran
    // of the violation-sign vector.
    std::fill(WorkPi.begin(), WorkPi.end(), 0.0);
    bool Any = false;
    for (int R = 0; R < NumRows; ++R) {
      int B = Basis[sz(R)];
      if (XB[sz(R)] < EffLb[sz(B)] - PrimTol) {
        WorkPi[sz(R)] = -1.0;
        Any = true;
      } else if (XB[sz(R)] > EffUb[sz(B)] + PrimTol) {
        WorkPi[sz(R)] = 1.0;
        Any = true;
      }
    }
    if (!Any)
      return LoopExit::Done;
    btran(WorkPi);

    int Enter = -1;
    double BestG = 0.0;
    for (int C = 0; C < numCols(); ++C) {
      if (St[sz(C)] == LpBasisStatus::Basic)
        continue;
      if (EffUb[sz(C)] - EffLb[sz(C)] <= FixEps)
        continue;
      double G = -colDot(C, WorkPi); // df/dx_C.
      bool Eligible = St[sz(C)] == LpBasisStatus::AtLower ? G < -CostEps
                                                          : G > CostEps;
      if (!Eligible)
        continue;
      if (Bland) {
        Enter = C;
        break;
      }
      if (std::abs(G) > std::abs(BestG)) {
        BestG = G;
        Enter = C;
      }
    }
    if (Enter < 0)
      return FPrev > InfeasProofTol ? LoopExit::Infeasible : LoopExit::Done;

    loadColumn(Enter, WorkY);
    ftran(WorkY);
    double Sigma = St[sz(Enter)] == LpBasisStatus::AtLower ? 1.0 : -1.0;

    // Phase-1 ratio test: feasible basics block at their bounds as usual;
    // an infeasible basic blocks where it *reaches* its violated bound
    // (the objective gradient changes there — stop and pivot it out).
    double BestT = EffUb[sz(Enter)] - EffLb[sz(Enter)]; // Bound flip.
    int BlockRow = -1;
    double BlockAbsY = 0.0;
    LpBasisStatus BlockTo = LpBasisStatus::AtLower;
    for (int R = 0; R < NumRows; ++R) {
      double Rate = -Sigma * WorkY[sz(R)]; // dx_basic/dt.
      if (std::abs(Rate) <= PivotEps)
        continue;
      int B = Basis[sz(R)];
      double X = XB[sz(R)], L = EffLb[sz(B)], U = EffUb[sz(B)];
      double T = Inf;
      LpBasisStatus To = LpBasisStatus::AtLower;
      if (X < L - PrimTol) {
        if (Rate > 0) {
          T = (L - X) / Rate;
          To = LpBasisStatus::AtLower;
        }
      } else if (X > U + PrimTol) {
        if (Rate < 0) {
          T = (X - U) / -Rate;
          To = LpBasisStatus::AtUpper;
        }
      } else if (Rate > 0) {
        if (U < Inf) {
          T = (U - X) / Rate;
          To = LpBasisStatus::AtUpper;
        }
      } else if (L > -Inf) {
        T = (X - L) / -Rate;
        To = LpBasisStatus::AtLower;
      }
      if (T == Inf)
        continue;
      T = std::max(T, 0.0);
      bool Better;
      if (Bland)
        Better = T < BestT - TieEps ||
                 (T < BestT + TieEps &&
                  (BlockRow < 0 || B < Basis[sz(BlockRow)]));
      else
        Better = T < BestT - TieEps ||
                 (T < BestT + TieEps && std::abs(WorkY[sz(R)]) > BlockAbsY);
      if (Better) {
        BestT = T;
        BlockRow = R;
        BlockAbsY = std::abs(WorkY[sz(R)]);
        BlockTo = To;
      }
    }
    if (BlockRow < 0 && BestT == Inf)
      return LoopExit::Trouble; // f is bounded below; cannot happen.

    if (BlockRow < 0) {
      // Bound flip: the entering column crosses to its other bound.
      for (int R = 0; R < NumRows; ++R)
        XB[sz(R)] -= Sigma * BestT * WorkY[sz(R)];
      St[sz(Enter)] = St[sz(Enter)] == LpBasisStatus::AtLower
                          ? LpBasisStatus::AtUpper
                          : LpBasisStatus::AtLower;
      ++Stats.BoundFlips;
    } else {
      if (!applyPivot(BlockRow, Enter, Sigma * BestT, nonbasicValue(Enter),
                      BlockTo, WorkY))
        return LoopExit::Abort;
      ++Stats.Pivots;
    }

    double F = totalInfeasibility();
    if (F < FPrev - 1e-9)
      Stalled = 0;
    else
      ++Stalled;
    FPrev = F;
  }
}

//===----------------------------------------------------------------------===//
// Primal phase 2: minimize the real objective
//===----------------------------------------------------------------------===//

SparseLp::LoopExit SparseLp::primalPhase2() {
  while (true) {
    if (!iterBookkeeping())
      return LoopExit::Abort;
    bool Bland = Stalled > BlandThreshold;

    int Enter = -1;
    double BestD = 0.0;
    if (!CostEmpty) {
      for (int R = 0; R < NumRows; ++R)
        WorkPi[sz(R)] = Cost[sz(Basis[sz(R)])];
      btran(WorkPi);
      for (int C = 0; C < numCols(); ++C) {
        if (St[sz(C)] == LpBasisStatus::Basic)
          continue;
        if (EffUb[sz(C)] - EffLb[sz(C)] <= FixEps)
          continue;
        double D = Cost[sz(C)] - colDot(C, WorkPi);
        bool Eligible = St[sz(C)] == LpBasisStatus::AtLower ? D < -CostEps
                                                            : D > CostEps;
        if (!Eligible)
          continue;
        if (Bland) {
          Enter = C;
          break;
        }
        if (std::abs(D) > std::abs(BestD)) {
          BestD = D;
          Enter = C;
        }
      }
    }
    if (Enter < 0)
      return LoopExit::Done; // Optimal (trivially so when CostEmpty).

    loadColumn(Enter, WorkY);
    ftran(WorkY);
    double Sigma = St[sz(Enter)] == LpBasisStatus::AtLower ? 1.0 : -1.0;

    double BestT = EffUb[sz(Enter)] - EffLb[sz(Enter)];
    int BlockRow = -1;
    double BlockAbsY = 0.0;
    LpBasisStatus BlockTo = LpBasisStatus::AtLower;
    for (int R = 0; R < NumRows; ++R) {
      double Rate = -Sigma * WorkY[sz(R)];
      if (std::abs(Rate) <= PivotEps)
        continue;
      int B = Basis[sz(R)];
      double X = XB[sz(R)], L = EffLb[sz(B)], U = EffUb[sz(B)];
      double T = Inf;
      LpBasisStatus To = LpBasisStatus::AtLower;
      if (Rate > 0) {
        if (U < Inf) {
          T = (U - X) / Rate;
          To = LpBasisStatus::AtUpper;
        }
      } else if (L > -Inf) {
        T = (X - L) / -Rate;
        To = LpBasisStatus::AtLower;
      }
      if (T == Inf)
        continue;
      T = std::max(T, 0.0);
      bool Better;
      if (Bland)
        Better = T < BestT - TieEps ||
                 (T < BestT + TieEps &&
                  (BlockRow < 0 || B < Basis[sz(BlockRow)]));
      else
        Better = T < BestT - TieEps ||
                 (T < BestT + TieEps && std::abs(WorkY[sz(R)]) > BlockAbsY);
      if (Better) {
        BestT = T;
        BlockRow = R;
        BlockAbsY = std::abs(WorkY[sz(R)]);
        BlockTo = To;
      }
    }
    if (BlockRow < 0 && BestT == Inf)
      return LoopExit::Unbounded;

    if (BlockRow < 0) {
      for (int R = 0; R < NumRows; ++R)
        XB[sz(R)] -= Sigma * BestT * WorkY[sz(R)];
      St[sz(Enter)] = St[sz(Enter)] == LpBasisStatus::AtLower
                          ? LpBasisStatus::AtUpper
                          : LpBasisStatus::AtLower;
      ++Stats.BoundFlips;
    } else {
      if (!applyPivot(BlockRow, Enter, Sigma * BestT, nonbasicValue(Enter),
                      BlockTo, WorkY))
        return LoopExit::Abort;
      ++Stats.Pivots;
    }

    if (BestT > TieEps)
      Stalled = 0;
    else
      ++Stalled;
  }
}

//===----------------------------------------------------------------------===//
// solve()
//===----------------------------------------------------------------------===//

std::vector<LpBasisStatus> SparseLp::structuralBasis() const {
  if (St.empty())
    return {}; // Never solved (e.g. presolve-infeasible model).
  return std::vector<LpBasisStatus>(St.begin(), St.begin() + NumStruct);
}

void SparseLp::seedBasis(const std::vector<LpBasisStatus> &StructuralHints) {
  if (Pre.Infeasible)
    return;
  const int N = std::min<int>(NumStruct,
                              static_cast<int>(StructuralHints.size()));
  for (int C = 0; C < N; ++C)
    St[sz(C)] = StructuralHints[sz(C)];
  for (int C = N; C < NumStruct; ++C)
    St[sz(C)] = LpBasisStatus::AtLower;
  for (int K = 0; K < NumRows; ++K)
    St[sz(NumStruct + K)] = RowCmp[sz(K)] == CmpKind::GE
                                ? LpBasisStatus::AtUpper
                                : LpBasisStatus::AtLower;
  Etas.clear();
  BaseEtas = 0;
  Basis.assign(sz(NumRows), -1);
  HaveBasis = true;
  NeedRefactor = true;
}

LpResult SparseLp::solve(const std::vector<double> &Lb,
                         const std::vector<double> &Ub,
                         const CancellationToken &CancelTok) {
  LpResult Res;
  ++Stats.Solves;

  // Mismatched bound arrays are a caller bug; degrade to IterLimit (which
  // proves nothing) instead of aborting the process in release builds.
  if (static_cast<int>(Lb.size()) != NumStruct ||
      static_cast<int>(Ub.size()) != NumStruct) {
    assert(false && "bound arrays must match the model");
    return Res;
  }
  // Entry poll: the pivot loop only checks every few iterations, which a
  // small LP never reaches — a pre-cancelled token must still stop it.
  if (CancelTok.cancelled()) {
    Res.Status = LpStatus::Cancelled;
    return Res;
  }
  // Fault injection: spurious infeasibility, the most dangerous LP lie —
  // downstream layers must never turn it into a false optimality proof.
  if (FaultInjector::instance().shouldFire(FaultSite::LpInfeasible)) {
    Res.Status = LpStatus::Infeasible;
    return Res;
  }
  if (Pre.Infeasible) {
    Res.Status = LpStatus::Infeasible;
    return Res;
  }

  // Effective bounds: caller bounds intersected with the presolve
  // strengthenings (both only ever tighten the model).
  EffLb.assign(sz(numCols()), 0.0);
  EffUb.assign(sz(numCols()), 0.0);
  for (int C = 0; C < NumStruct; ++C) {
    EffLb[sz(C)] = std::max(Lb[sz(C)], Pre.Lb[sz(C)]);
    EffUb[sz(C)] = std::min(Ub[sz(C)], Pre.Ub[sz(C)]);
    if (EffLb[sz(C)] > EffUb[sz(C)] + 1e-9) {
      Res.Status = LpStatus::Infeasible;
      return Res;
    }
  }
  for (int K = 0; K < NumRows; ++K) {
    int L = NumStruct + K;
    switch (RowCmp[sz(K)]) {
    case CmpKind::LE:
      EffLb[sz(L)] = 0.0;
      EffUb[sz(L)] = Inf;
      break;
    case CmpKind::GE:
      EffLb[sz(L)] = -Inf;
      EffUb[sz(L)] = 0.0;
      break;
    case CmpKind::EQ:
      EffLb[sz(L)] = 0.0;
      EffUb[sz(L)] = 0.0;
      break;
    }
  }

  Cancel = CancelTok;
  Iterations = 0;
  MaxIterations = 200 * (NumRows + numCols()) + 2000;
  Stalled = 0;
  BlandThreshold = NumRows + numCols();
  AbortWhy = LpStatus::IterLimit;

  if (HaveBasis)
    ++Stats.WarmSolves;
  else
    coldBasis();
  sanitizeStatuses();
  if (NeedRefactor ||
      static_cast<int>(Etas.size()) - BaseEtas > RefactorInterval) {
    if (!factorize()) {
      Res.Status = LpStatus::IterLimit;
      Res.Iterations = Iterations;
      NeedRefactor = true;
      return Res;
    }
  }
  computeXB();

  auto Abort = [&](LpStatus Why) {
    Res.Status = Why;
    Res.Iterations = Iterations;
    return Res;
  };

  // Dual reoptimization whenever the basis is dual feasible (always, for
  // the empty objectives of feasibility scheduling); composite phase 1 is
  // the general fallback; primal phase 2 is the final arbiter either way.
  if (totalInfeasibility() > PrimTol * static_cast<double>(NumRows + 1) &&
      priceReducedCosts(WorkD)) {
    switch (dualReoptimize()) {
    case LoopExit::Infeasible:
      return Abort(LpStatus::Infeasible);
    case LoopExit::Abort:
      return Abort(AbortWhy);
    case LoopExit::Done:
    case LoopExit::Trouble:
    case LoopExit::Unbounded:
      break; // Phase 1 / phase 2 take it from here.
    }
    Stalled = 0;
  }
  if (totalInfeasibility() > PrimTol * static_cast<double>(NumRows + 1)) {
    switch (primalPhase1()) {
    case LoopExit::Infeasible:
      return Abort(LpStatus::Infeasible);
    case LoopExit::Abort:
      return Abort(AbortWhy);
    case LoopExit::Trouble:
      return Abort(LpStatus::IterLimit);
    case LoopExit::Done:
    case LoopExit::Unbounded:
      break;
    }
    Stalled = 0;
  }
  switch (primalPhase2()) {
  case LoopExit::Unbounded:
    return Abort(LpStatus::Unbounded);
  case LoopExit::Abort:
    return Abort(AbortWhy);
  case LoopExit::Infeasible:
  case LoopExit::Trouble:
    return Abort(LpStatus::IterLimit);
  case LoopExit::Done:
    break;
  }

  Res.X.assign(sz(NumStruct), 0.0);
  for (int C = 0; C < NumStruct; ++C)
    Res.X[sz(C)] = St[sz(C)] == LpBasisStatus::Basic ? 0.0 : nonbasicValue(C);
  for (int R = 0; R < NumRows; ++R)
    if (Basis[sz(R)] < NumStruct)
      Res.X[sz(Basis[sz(R)])] = XB[sz(R)];
  Res.Objective = MilpModel::evaluate(Model->objective(), Res.X);
  Res.Status = LpStatus::Optimal;
  Res.Iterations = Iterations;
  return Res;
}

LpResult SparseLp::solve(const CancellationToken &CancelTok) {
  std::vector<double> Lb, Ub;
  Lb.reserve(sz(NumStruct));
  Ub.reserve(sz(NumStruct));
  for (const ModelVar &V : Model->vars()) {
    Lb.push_back(V.Lb);
    Ub.push_back(V.Ub);
  }
  return solve(Lb, Ub, CancelTok);
}

//===----------------------------------------------------------------------===//
// One-shot free functions
//===----------------------------------------------------------------------===//

LpResult swp::solveLp(const MilpModel &M, const std::vector<double> &Lb,
                      const std::vector<double> &Ub,
                      const CancellationToken &Cancel) {
  SparseLp Lp(M);
  return Lp.solve(Lb, Ub, Cancel);
}

LpResult swp::solveLp(const MilpModel &M, const CancellationToken &Cancel) {
  SparseLp Lp(M);
  return Lp.solve(Cancel);
}
