//===- Simplex.cpp - Dense two-phase primal simplex -----------------------===//

#include "swp/solver/Simplex.h"

#include "swp/support/FaultInjector.h"

#include <algorithm>
#include <cmath>

using namespace swp;

namespace {

constexpr double PivotEps = 1e-9;
constexpr double CostEps = 1e-7;
constexpr double FixEps = 1e-9;

/// Dense simplex working state: tableau rows, two objective rows, basis.
class Tableau {
public:
  Tableau(const MilpModel &M, const std::vector<double> &Lb,
          const std::vector<double> &Ub);

  /// True when some bound pair was contradictory (Lb > Ub).
  bool boundsInfeasible() const { return BoundsInfeasible; }

  LpResult run(const MilpModel &M, const std::vector<double> &Lb,
               const CancellationToken &Cancel);

private:
  int numCols() const { return static_cast<int>(Obj1.size()); }

  void pivot(int Row, int Col);
  int chooseEntering(const std::vector<double> &ObjRow, bool Bland) const;
  int chooseLeaving(int Col) const;
  /// Runs pivots until optimality of \p ObjRow; returns false on iteration
  /// or unboundedness trouble (Status is set).
  bool optimize(std::vector<double> &ObjRow, LpStatus &Status);

  std::vector<std::vector<double>> Rows; // Coefficients, RHS last.
  std::vector<double> Obj1;              // Phase-1 reduced costs.
  std::vector<double> Obj2;              // Phase-2 reduced costs.
  std::vector<int> Basis;                // Basic column per row.
  std::vector<bool> RowActive;
  std::vector<bool> ColAllowed; // Artificials disallowed after phase 1.
  std::vector<int> VarCol;      // Model var -> column (-1 when fixed).
  std::vector<double> FixedVal; // Value of fixed vars.
  CancellationToken Cancel;
  int FirstArtificial = 0;
  int Iterations = 0;
  int MaxIterations = 0;
  bool BoundsInfeasible = false;
};

Tableau::Tableau(const MilpModel &M, const std::vector<double> &Lb,
                 const std::vector<double> &Ub) {
  const int N = M.numVars();
  VarCol.assign(static_cast<size_t>(N), -1);
  FixedVal.assign(static_cast<size_t>(N), 0.0);

  // Assign columns to non-fixed variables (shifted to y = x - lb >= 0).
  int NumY = 0;
  for (int I = 0; I < N; ++I) {
    if (Lb[static_cast<size_t>(I)] >
        Ub[static_cast<size_t>(I)] + 1e-9) {
      BoundsInfeasible = true;
      return;
    }
    if (Ub[static_cast<size_t>(I)] - Lb[static_cast<size_t>(I)] <= FixEps) {
      FixedVal[static_cast<size_t>(I)] = Lb[static_cast<size_t>(I)];
      continue;
    }
    VarCol[static_cast<size_t>(I)] = NumY++;
  }

  // Gather raw rows: (dense coeffs over y columns, sense, rhs).
  struct RawRow {
    std::vector<double> A;
    CmpKind Cmp;
    double Rhs;
  };
  std::vector<RawRow> Raw;
  auto MakeRow = [&](const LinExpr &E, CmpKind Cmp, double Rhs) {
    RawRow R;
    R.A.assign(static_cast<size_t>(NumY), 0.0);
    R.Cmp = Cmp;
    R.Rhs = Rhs;
    for (const LinTerm &T : E.terms()) {
      int Col = VarCol[static_cast<size_t>(T.Var)];
      // Shift: coef * x = coef * (lb + y); fixed vars fold entirely.
      R.Rhs -= T.Coef * Lb[static_cast<size_t>(T.Var)];
      if (Col >= 0)
        R.A[static_cast<size_t>(Col)] += T.Coef;
    }
    // Skip trivial rows (all coefficients on fixed vars).
    bool AllZero = true;
    for (double V : R.A)
      if (std::abs(V) > PivotEps) {
        AllZero = false;
        break;
      }
    if (AllZero) {
      bool Ok = true;
      switch (Cmp) {
      case CmpKind::LE:
        Ok = R.Rhs >= -1e-7;
        break;
      case CmpKind::GE:
        Ok = R.Rhs <= 1e-7;
        break;
      case CmpKind::EQ:
        Ok = std::abs(R.Rhs) <= 1e-7;
        break;
      }
      if (!Ok)
        BoundsInfeasible = true;
      return;
    }
    Raw.push_back(std::move(R));
  };

  for (const ModelConstraint &C : M.constraints())
    MakeRow(C.Expr, C.Cmp, C.Rhs);
  if (BoundsInfeasible)
    return;

  // Upper-bound rows y_i <= ub - lb, unless implied by other rows.
  for (int I = 0; I < N; ++I) {
    int Col = VarCol[static_cast<size_t>(I)];
    if (Col < 0)
      continue;
    double U = Ub[static_cast<size_t>(I)];
    if (U == MilpModel::Inf)
      continue;
    const ModelVar &MV = M.var(I);
    if (MV.UbRowRedundant && U >= MV.Ub - 1e-9)
      continue;
    RawRow R;
    R.A.assign(static_cast<size_t>(NumY), 0.0);
    R.A[static_cast<size_t>(Col)] = 1.0;
    R.Cmp = CmpKind::LE;
    R.Rhs = U - Lb[static_cast<size_t>(I)];
    Raw.push_back(std::move(R));
  }

  // Normalize RHS >= 0, then append slack / artificial columns.
  const int NumRows = static_cast<int>(Raw.size());
  int NumSlack = 0, NumArt = 0;
  for (RawRow &R : Raw) {
    if (R.Rhs < 0) {
      for (double &V : R.A)
        V = -V;
      R.Rhs = -R.Rhs;
      if (R.Cmp == CmpKind::LE)
        R.Cmp = CmpKind::GE;
      else if (R.Cmp == CmpKind::GE)
        R.Cmp = CmpKind::LE;
    }
    if (R.Cmp == CmpKind::LE)
      ++NumSlack;
    else if (R.Cmp == CmpKind::GE) {
      ++NumSlack; // Surplus.
      ++NumArt;
    } else
      ++NumArt;
  }

  const int TotalCols = NumY + NumSlack + NumArt;
  FirstArtificial = NumY + NumSlack;
  Rows.assign(static_cast<size_t>(NumRows),
              std::vector<double>(static_cast<size_t>(TotalCols) + 1, 0.0));
  Basis.assign(static_cast<size_t>(NumRows), -1);
  RowActive.assign(static_cast<size_t>(NumRows), true);
  ColAllowed.assign(static_cast<size_t>(TotalCols), true);
  Obj1.assign(static_cast<size_t>(TotalCols) + 1, 0.0);
  Obj2.assign(static_cast<size_t>(TotalCols) + 1, 0.0);

  int SlackAt = NumY, ArtAt = FirstArtificial;
  for (int R = 0; R < NumRows; ++R) {
    std::vector<double> &Row = Rows[static_cast<size_t>(R)];
    for (int J = 0; J < NumY; ++J)
      Row[static_cast<size_t>(J)] = Raw[static_cast<size_t>(R)].A[static_cast<size_t>(J)];
    Row[static_cast<size_t>(TotalCols)] = Raw[static_cast<size_t>(R)].Rhs;
    switch (Raw[static_cast<size_t>(R)].Cmp) {
    case CmpKind::LE:
      Row[static_cast<size_t>(SlackAt)] = 1.0;
      Basis[static_cast<size_t>(R)] = SlackAt++;
      break;
    case CmpKind::GE:
      Row[static_cast<size_t>(SlackAt)] = -1.0;
      ++SlackAt;
      Row[static_cast<size_t>(ArtAt)] = 1.0;
      Basis[static_cast<size_t>(R)] = ArtAt++;
      break;
    case CmpKind::EQ:
      Row[static_cast<size_t>(ArtAt)] = 1.0;
      Basis[static_cast<size_t>(R)] = ArtAt++;
      break;
    }
  }

  // Phase-1 reduced costs: cost 1 on artificials, reduced by the rows whose
  // basic variable is an artificial.
  for (int J = FirstArtificial; J < TotalCols; ++J)
    Obj1[static_cast<size_t>(J)] = 1.0;
  for (int R = 0; R < NumRows; ++R) {
    if (Basis[static_cast<size_t>(R)] < FirstArtificial)
      continue;
    const std::vector<double> &Row = Rows[static_cast<size_t>(R)];
    for (int J = 0; J <= TotalCols; ++J)
      Obj1[static_cast<size_t>(J)] -= Row[static_cast<size_t>(J)];
  }

  // Phase-2 reduced costs: the shifted objective (constant handled later by
  // evaluating the objective on the final point).
  for (const LinTerm &T : M.objective().terms()) {
    int Col = VarCol[static_cast<size_t>(T.Var)];
    if (Col >= 0)
      Obj2[static_cast<size_t>(Col)] += T.Coef;
  }

  MaxIterations = 200 * (NumRows + TotalCols) + 2000;
}

void Tableau::pivot(int Row, int Col) {
  std::vector<double> &P = Rows[static_cast<size_t>(Row)];
  const int Cols = numCols();
  double Inv = 1.0 / P[static_cast<size_t>(Col)];
  for (int J = 0; J < Cols; ++J)
    P[static_cast<size_t>(J)] *= Inv;
  P[static_cast<size_t>(Col)] = 1.0;

  auto Eliminate = [&](std::vector<double> &Target) {
    double F = Target[static_cast<size_t>(Col)];
    if (std::abs(F) < 1e-12)
      return;
    for (int J = 0; J < Cols; ++J)
      Target[static_cast<size_t>(J)] -= F * P[static_cast<size_t>(J)];
    Target[static_cast<size_t>(Col)] = 0.0;
  };
  for (size_t R = 0; R < Rows.size(); ++R)
    if (static_cast<int>(R) != Row)
      Eliminate(Rows[R]);
  Eliminate(Obj1);
  Eliminate(Obj2);
  Basis[static_cast<size_t>(Row)] = Col;
}

int Tableau::chooseEntering(const std::vector<double> &ObjRow,
                            bool Bland) const {
  const int Cols = numCols() - 1;
  int Best = -1;
  double BestVal = -CostEps;
  for (int J = 0; J < Cols; ++J) {
    if (!ColAllowed[static_cast<size_t>(J)])
      continue;
    double V = ObjRow[static_cast<size_t>(J)];
    if (V >= -CostEps)
      continue;
    if (Bland)
      return J;
    if (V < BestVal) {
      BestVal = V;
      Best = J;
    }
  }
  return Best;
}

int Tableau::chooseLeaving(int Col) const {
  const int RhsIx = numCols() - 1;
  int Best = -1;
  double BestRatio = 0.0;
  for (size_t R = 0; R < Rows.size(); ++R) {
    if (!RowActive[R])
      continue;
    double A = Rows[R][static_cast<size_t>(Col)];
    if (A <= PivotEps)
      continue;
    double Ratio = Rows[R][static_cast<size_t>(RhsIx)] / A;
    if (Best < 0 || Ratio < BestRatio - 1e-12 ||
        (Ratio < BestRatio + 1e-12 && Basis[R] < Basis[static_cast<size_t>(Best)]))
    {
      Best = static_cast<int>(R);
      BestRatio = Ratio;
    }
  }
  return Best;
}

bool Tableau::optimize(std::vector<double> &ObjRow, LpStatus &Status) {
  const int RhsIx = numCols() - 1;
  int Stalled = 0;
  double LastObj = ObjRow[static_cast<size_t>(RhsIx)];
  const int BlandThreshold =
      static_cast<int>(Rows.size() + static_cast<size_t>(numCols()));
  while (true) {
    if (++Iterations > MaxIterations) {
      Status = LpStatus::IterLimit;
      return false;
    }
    // Cancellation poll every 16 pivots: each poll may read the steady
    // clock (deadline tokens), so keep it off the per-pivot path.
    if ((Iterations & 15) == 0 && Cancel.cancelled()) {
      Status = LpStatus::Cancelled;
      return false;
    }
    // Fault injection: a forced stall reports IterLimit exactly as a real
    // degenerate-cycling tableau would.
    if (FaultInjector::instance().shouldFire(FaultSite::LpStall)) {
      Status = LpStatus::IterLimit;
      return false;
    }
    bool Bland = Stalled > BlandThreshold;
    int Col = chooseEntering(ObjRow, Bland);
    if (Col < 0)
      return true; // Optimal for this objective row.
    int Row = chooseLeaving(Col);
    if (Row < 0) {
      Status = LpStatus::Unbounded;
      return false;
    }
    pivot(Row, Col);
    double Obj = ObjRow[static_cast<size_t>(RhsIx)];
    if (std::abs(Obj - LastObj) < 1e-12)
      ++Stalled;
    else {
      Stalled = 0;
      LastObj = Obj;
    }
  }
}

LpResult Tableau::run(const MilpModel &M, const std::vector<double> &Lb,
                      const CancellationToken &CancelTok) {
  Cancel = CancelTok;
  LpResult Res;
  const int TotalCols = numCols() - 1;
  const int RhsIx = TotalCols;

  // Phase 1: minimize the sum of artificials.
  if (FirstArtificial < TotalCols) {
    LpStatus Status = LpStatus::Optimal;
    if (!optimize(Obj1, Status)) {
      // Unboundedness is impossible in phase 1 (costs bounded below by 0);
      // report iteration trouble as-is.
      Res.Status = Status == LpStatus::Unbounded ? LpStatus::IterLimit : Status;
      Res.Iterations = Iterations;
      return Res;
    }
    double Phase1Obj = -Obj1[static_cast<size_t>(RhsIx)];
    if (Phase1Obj > 1e-6) {
      Res.Status = LpStatus::Infeasible;
      Res.Iterations = Iterations;
      return Res;
    }
    // Drive remaining artificials out of the basis, or deactivate their
    // (redundant) rows.
    for (size_t R = 0; R < Rows.size(); ++R) {
      if (Basis[R] < FirstArtificial)
        continue;
      int PivotCol = -1;
      for (int J = 0; J < FirstArtificial; ++J) {
        if (!ColAllowed[static_cast<size_t>(J)])
          continue;
        if (std::abs(Rows[R][static_cast<size_t>(J)]) > 1e-7) {
          PivotCol = J;
          break;
        }
      }
      if (PivotCol >= 0)
        pivot(static_cast<int>(R), PivotCol);
      else
        RowActive[R] = false;
    }
    for (int J = FirstArtificial; J < TotalCols; ++J)
      ColAllowed[static_cast<size_t>(J)] = false;
  }

  // Phase 2: minimize the real objective.
  LpStatus Status = LpStatus::Optimal;
  if (!optimize(Obj2, Status)) {
    Res.Status = Status;
    Res.Iterations = Iterations;
    return Res;
  }

  // Extract the solution: nonbasic columns sit at 0 (their lower bound).
  std::vector<double> Y(static_cast<size_t>(TotalCols), 0.0);
  for (size_t R = 0; R < Rows.size(); ++R)
    if (RowActive[R] && Basis[R] >= 0)
      Y[static_cast<size_t>(Basis[R])] = Rows[R][static_cast<size_t>(RhsIx)];

  Res.X.assign(static_cast<size_t>(M.numVars()), 0.0);
  for (int I = 0; I < M.numVars(); ++I) {
    int Col = VarCol[static_cast<size_t>(I)];
    Res.X[static_cast<size_t>(I)] =
        Col >= 0 ? Lb[static_cast<size_t>(I)] + Y[static_cast<size_t>(Col)]
                 : FixedVal[static_cast<size_t>(I)];
  }
  Res.Objective = MilpModel::evaluate(M.objective(), Res.X);
  Res.Status = LpStatus::Optimal;
  Res.Iterations = Iterations;
  return Res;
}

} // namespace

LpResult swp::solveLp(const MilpModel &M, const std::vector<double> &Lb,
                      const std::vector<double> &Ub,
                      const CancellationToken &Cancel) {
  // Mismatched bound arrays are a caller bug; degrade to IterLimit (which
  // proves nothing) instead of aborting the process in release builds.
  if (static_cast<int>(Lb.size()) != M.numVars() ||
      static_cast<int>(Ub.size()) != M.numVars()) {
    assert(false && "bound arrays must match the model");
    LpResult Res;
    Res.Status = LpStatus::IterLimit;
    return Res;
  }
  // Entry poll: the pivot loop only checks every few iterations, which a
  // small LP never reaches — a pre-cancelled token must still stop it.
  if (Cancel.cancelled()) {
    LpResult Res;
    Res.Status = LpStatus::Cancelled;
    return Res;
  }
  // Fault injection: spurious infeasibility, the most dangerous LP lie —
  // downstream layers must never turn it into a false optimality proof.
  if (FaultInjector::instance().shouldFire(FaultSite::LpInfeasible)) {
    LpResult Res;
    Res.Status = LpStatus::Infeasible;
    return Res;
  }
  Tableau T(M, Lb, Ub);
  if (T.boundsInfeasible()) {
    LpResult Res;
    Res.Status = LpStatus::Infeasible;
    return Res;
  }
  return T.run(M, Lb, Cancel);
}

LpResult swp::solveLp(const MilpModel &M, const CancellationToken &Cancel) {
  std::vector<double> Lb, Ub;
  Lb.reserve(static_cast<size_t>(M.numVars()));
  Ub.reserve(static_cast<size_t>(M.numVars()));
  for (const ModelVar &V : M.vars()) {
    Lb.push_back(V.Lb);
    Ub.push_back(V.Ub);
  }
  return solveLp(M, Lb, Ub, Cancel);
}
