//===- BranchAndBound.cpp - MILP search -----------------------------------===//

#include "swp/solver/BranchAndBound.h"

#include "swp/solver/Simplex.h"
#include "swp/support/FaultInjector.h"
#include "swp/support/Stopwatch.h"

#include <cmath>
#include <limits>

using namespace swp;

namespace {

/// Mutable search state shared across the DFS.  All node relaxations go
/// through one SparseLp workspace: a child differs from its parent by one
/// tightened bound, so the parent's optimal basis is one short dual-simplex
/// reoptimization away from the child's.
class Search {
public:
  Search(SparseLp &Lp, const MilpModel &M, const MilpOptions &Opts)
      : Lp(Lp), M(M), Opts(Opts), LpDeadline(Opts.Cancel) {
    Lb.reserve(static_cast<size_t>(M.numVars()));
    Ub.reserve(static_cast<size_t>(M.numVars()));
    for (const ModelVar &V : M.vars()) {
      Lb.push_back(V.Lb);
      Ub.push_back(V.Ub);
    }
    detectConvexityGroups();
    buildPropRows();
    // The node loop checks the wall-clock between relaxations, but a
    // single slow LP can blow straight through the budget; arm a nested
    // deadline token so the pivot loop itself stops on time.  (Deadlines
    // near the sentinel "unlimited" value would overflow the clock.)
    if (Opts.TimeLimitSec < 1e8)
      LpDeadline.setDeadlineAfter(Opts.TimeLimitSec);
    LpToken = LpDeadline.token();
  }

  MilpResult run() {
    const LpStats Before = Lp.stats();
    if (!Opts.WarmStart.empty() && M.isFeasible(Opts.WarmStart, 1e-6)) {
      Incumbent = Opts.WarmStart;
      IncumbentObj = MilpModel::evaluate(M.objective(), Incumbent);
      if (Opts.StopAtFirstIncumbent)
        StopEarly = true;
    }
    dfs();
    // An LP stall censors only the subtree beneath the stalled node; the
    // DFS keeps exploring siblings.  Report it as the stop reason only
    // when no hard limit also fired.
    if (Stop == SearchStop::None && LpStalled)
      Stop = SearchStop::LpStall;
    MilpResult Res;
    Res.Nodes = Nodes;
    Res.Seconds = Watch.seconds();
    const LpStats &After = Lp.stats();
    Res.LpPivots = After.totalPivots() - Before.totalPivots();
    Res.LpRefactorizations = After.Refactorizations - Before.Refactorizations;
    Res.LpSolves = After.Solves - Before.Solves;
    Res.LpWarmSolves = After.WarmSolves - Before.WarmSolves;
    Res.X = std::move(Incumbent);
    Res.Objective = IncumbentObj;
    Res.StopReason = Stop;
    if (Stop == SearchStop::Fault)
      Res.Error = Status(StatusCode::FaultInjected,
                         "node expansion fault killed the search");
    bool LimitHit = Stop != SearchStop::None;
    if (!Res.X.empty())
      Res.Status = (LimitHit && !StopEarly) ? MilpStatus::Feasible
                                            : MilpStatus::Optimal;
    else if (Stop == SearchStop::Fault)
      Res.Status = MilpStatus::Error; // Killed with nothing usable.
    else
      Res.Status = LimitHit ? MilpStatus::Unknown : MilpStatus::Infeasible;
    return Res;
  }

private:
  bool limitsExceeded() {
    if (Stop != SearchStop::None)
      return true;
    if (Opts.Cancel.cancelled()) {
      Stop = SearchStop::Cancelled;
      return true;
    }
    if (Nodes >= Opts.NodeLimit) {
      Stop = SearchStop::NodeLimit;
      return true;
    }
    if (Watch.seconds() >= Opts.TimeLimitSec) {
      Stop = SearchStop::TimeLimit;
      return true;
    }
    return false;
  }

  /// Finds "exactly one of these binaries" rows (sum x = 1, unit
  /// coefficients) — the formulation's per-op assignment rows.  Branching
  /// splits such a group's support in two instead of fixing one binary at
  /// a time: on time-indexed scheduling models a single A[t][i] branch
  /// barely moves the weak big-M relaxation, while halving an op's time
  /// window changes many bounds at once and actually prunes.
  void detectConvexityGroups() {
    GroupOf.assign(static_cast<size_t>(M.numVars()), -1);
    for (const ModelConstraint &C : M.constraints()) {
      if (C.Cmp != CmpKind::EQ || std::abs(C.Rhs - 1.0) > 1e-9 ||
          C.Expr.terms().size() < 2)
        continue;
      bool Ok = true;
      for (const LinTerm &T : C.Expr.terms()) {
        const ModelVar &V = M.var(T.Var);
        Ok = Ok && std::abs(T.Coef - 1.0) <= 1e-9 &&
             V.Kind != VarKind::Continuous && V.Lb > -1e-9 &&
             V.Ub < 1.0 + 1e-9 && GroupOf[static_cast<size_t>(T.Var)] < 0;
      }
      if (!Ok)
        continue;
      int G = static_cast<int>(Groups.size());
      Groups.emplace_back();
      for (const LinTerm &T : C.Expr.terms()) {
        GroupOf[static_cast<size_t>(T.Var)] = G;
        Groups.back().push_back(T.Var);
      }
    }
  }

  /// \returns the fractional integer variable to branch on, or -1 when all
  /// integer variables are integral.  Among fractional variables, the
  /// lowest BranchPriority class wins; within a class, the variable
  /// farthest from integrality.
  int pickBranchVar(const std::vector<double> &X) const {
    int Best = -1;
    int BestPriority = 0;
    double BestFrac = 0.0;
    for (int I = 0; I < M.numVars(); ++I) {
      const ModelVar &MV = M.var(I);
      if (MV.Kind == VarKind::Continuous)
        continue;
      double V = X[static_cast<size_t>(I)];
      double Frac = std::abs(V - std::round(V));
      if (Frac <= Opts.IntTol)
        continue;
      if (Best < 0 || MV.BranchPriority < BestPriority ||
          (MV.BranchPriority == BestPriority && Frac > BestFrac)) {
        Best = I;
        BestPriority = MV.BranchPriority;
        BestFrac = Frac;
      }
    }
    return Best;
  }

  void acceptIncumbent(const std::vector<double> &X, double Obj) {
    // Snap integer variables to exact integers.
    std::vector<double> Snapped = X;
    for (int I = 0; I < M.numVars(); ++I)
      if (M.var(I).Kind != VarKind::Continuous)
        Snapped[static_cast<size_t>(I)] =
            std::round(Snapped[static_cast<size_t>(I)]);
    if (!M.isFeasible(Snapped, 1e-5))
      return; // Rounding broke a tight constraint; keep searching.
    if (Incumbent.empty() || Obj < IncumbentObj - 1e-9) {
      Incumbent = std::move(Snapped);
      IncumbentObj = Obj;
      if (Opts.StopAtFirstIncumbent)
        StopEarly = true;
    }
  }

  /// One saved bound pair on the propagation trail.
  struct PropEntry {
    int Var;
    double OldLb, OldUb;
  };

  /// A <=-normalized row prepared for propagation, with its terms split by
  /// convexity group.  For a group ("exactly one of these binaries"), the
  /// row's minimum activity over *integer* points is the minimum
  /// coefficient among the group's still-open members — far tighter than
  /// per-variable interval arithmetic, which prices every member at its
  /// lower bound simultaneously.  On the scheduling models this turns the
  /// dependence rows into genuine time-window propagation: the offset sum
  /// of an op is bracketed by its open slots, the stage difference k_j -
  /// k_i rounds up to the ceil'd Bellman-Ford weight, and slots that
  /// would violate a row get eliminated one by one.
  struct PropRow {
    struct Seg {
      /// Group members present in the row.
      std::vector<LinTerm> Present;
      /// Group members absent from the row (coefficient 0 there).
      std::vector<int> Absent;
    };
    std::vector<LinTerm> Ungrouped;
    std::vector<Seg> Segs;
    double Rhs;
  };
  std::vector<PropRow> PropRows;

  void addPropRow(const LinExpr &Expr, double Sign, double Rhs) {
    PropRow R;
    R.Rhs = Rhs;
    // Scratch: group id -> segment index in R.
    std::vector<int> SegIx(Groups.size(), -1);
    for (const LinTerm &Tm : Expr.terms()) {
      int G = GroupOf[static_cast<size_t>(Tm.Var)];
      if (G < 0) {
        R.Ungrouped.push_back({Tm.Var, Sign * Tm.Coef});
        continue;
      }
      if (SegIx[static_cast<size_t>(G)] < 0) {
        SegIx[static_cast<size_t>(G)] = static_cast<int>(R.Segs.size());
        R.Segs.emplace_back();
      }
      R.Segs[static_cast<size_t>(SegIx[static_cast<size_t>(G)])]
          .Present.push_back({Tm.Var, Sign * Tm.Coef});
    }
    // Group members the row does not mention contribute 0 when chosen.
    std::vector<char> InRow(static_cast<size_t>(M.numVars()), 0);
    for (size_t G = 0; G < Groups.size(); ++G) {
      int S = SegIx[G];
      if (S < 0)
        continue;
      for (const LinTerm &Tm : R.Segs[static_cast<size_t>(S)].Present)
        InRow[static_cast<size_t>(Tm.Var)] = 1;
      for (int V : Groups[G])
        if (!InRow[static_cast<size_t>(V)])
          R.Segs[static_cast<size_t>(S)].Absent.push_back(V);
    }
    PropRows.push_back(std::move(R));
  }

  void buildPropRows() {
    for (const ModelConstraint &C : M.constraints()) {
      if (C.Cmp != CmpKind::GE)
        addPropRow(C.Expr, 1.0, C.Rhs);
      if (C.Cmp != CmpKind::LE)
        addPropRow(C.Expr, -1.0, -C.Rhs);
    }
  }

  /// Propagates one prepared row.  \returns false when the row proves the
  /// node integer-infeasible.
  bool propagateRow(const PropRow &R, std::vector<PropEntry> &Trail,
                    bool &Changed) {
    constexpr double Inf = std::numeric_limits<double>::infinity();
    // Minimum activity.  Ungrouped positive coefficients engage lower
    // bounds and negative ones upper bounds, so the tightenings below
    // (upper for positive, lower for negative, member eliminations) never
    // invalidate the running sum.
    double MinAct = 0.0;
    int InfTerms = 0;
    for (const LinTerm &Tm : R.Ungrouped) {
      double B = Tm.Coef > 0 ? Tm.Coef * Lb[static_cast<size_t>(Tm.Var)]
                             : Tm.Coef * Ub[static_cast<size_t>(Tm.Var)];
      if (std::isinf(B))
        ++InfTerms;
      else
        MinAct += B;
    }
    // Per-segment minimum contribution; a member fixed to 1 decides it.
    SegMin.clear();
    for (const PropRow::Seg &S : R.Segs) {
      double GMin = Inf;
      bool Fixed1 = false;
      for (const LinTerm &Tm : S.Present) {
        size_t V = static_cast<size_t>(Tm.Var);
        if (Lb[V] > 0.5) {
          GMin = Tm.Coef;
          Fixed1 = true;
          break;
        }
        if (Ub[V] > 0.5)
          GMin = std::min(GMin, Tm.Coef);
      }
      if (!Fixed1)
        for (int V : S.Absent) {
          if (Lb[static_cast<size_t>(V)] > 0.5) {
            GMin = 0.0;
            Fixed1 = true;
            break;
          }
          if (Ub[static_cast<size_t>(V)] > 0.5) {
            GMin = std::min(GMin, 0.0);
            break; // One open zero-coefficient member is enough.
          }
        }
      if (GMin == Inf)
        return false; // Group has no open member: no integer point.
      SegMin.push_back({GMin, Fixed1});
      MinAct += GMin;
    }
    if (InfTerms == 0 && MinAct > R.Rhs + 1e-6)
      return false;

    // Ungrouped tightening.
    for (const LinTerm &Tm : R.Ungrouped) {
      double C = Tm.Coef;
      size_t V = static_cast<size_t>(Tm.Var);
      double Own = C > 0 ? C * Lb[V] : C * Ub[V];
      bool OwnInf = std::isinf(Own);
      if (InfTerms > (OwnInf ? 1 : 0))
        continue; // Another unbounded term absorbs any slack.
      double Bound = (R.Rhs - (MinAct - (OwnInf ? 0.0 : Own))) / C;
      bool IsInt = M.var(Tm.Var).Kind != VarKind::Continuous;
      if (C > 0) {
        double NewUb = IsInt ? std::floor(Bound + 1e-6) : Bound + 1e-9;
        if (NewUb < Ub[V] - 1e-9) {
          if (NewUb < Lb[V] - 1e-6)
            return false;
          Trail.push_back({Tm.Var, Lb[V], Ub[V]});
          Ub[V] = NewUb;
          Changed = true;
        }
      } else {
        double NewLb = IsInt ? std::ceil(Bound - 1e-6) : Bound - 1e-9;
        if (NewLb > Lb[V] + 1e-9) {
          if (NewLb > Ub[V] + 1e-6)
            return false;
          Trail.push_back({Tm.Var, Lb[V], Ub[V]});
          Lb[V] = NewLb;
          Changed = true;
        }
      }
    }

    // Member elimination: choosing member v makes the row's activity at
    // least MinAct - GMin + coef_v, so any member whose coefficient
    // exceeds the segment's slack cannot be the group's 1.
    if (InfTerms == 0) {
      for (size_t SIx = 0; SIx < R.Segs.size(); ++SIx) {
        if (SegMin[SIx].second)
          continue; // Decided by a fixed member; EQ row zeroes the rest.
        double Slack = R.Rhs + 1e-6 - (MinAct - SegMin[SIx].first);
        for (const LinTerm &Tm : R.Segs[SIx].Present) {
          size_t V = static_cast<size_t>(Tm.Var);
          if (Ub[V] > 0.5 && Tm.Coef > Slack) {
            Trail.push_back({Tm.Var, Lb[V], Ub[V]});
            Ub[V] = 0.0;
            Changed = true;
          }
        }
        if (0.0 > Slack)
          for (int AV : R.Segs[SIx].Absent) {
            size_t V = static_cast<size_t>(AV);
            if (Ub[V] > 0.5) {
              Trail.push_back({AV, Lb[V], Ub[V]});
              Ub[V] = 0.0;
              Changed = true;
            }
          }
      }
    }
    return true;
  }

  /// Node presolve: tightens Lb/Ub to a fixpoint (bounded pass count).
  /// Every change lands on \p Trail for the caller to undo.  \returns
  /// false when some row proves the node has no integer point — the node
  /// is then pruned without an LP solve.
  bool propagateBounds(std::vector<PropEntry> &Trail) {
    for (int Pass = 0; Pass < 16; ++Pass) {
      bool Changed = false;
      for (const PropRow &R : PropRows)
        if (!propagateRow(R, Trail, Changed))
          return false;
      if (!Changed)
        break;
    }
    return true;
  }

  /// Scratch for propagateRow: per-segment (min contribution, decided).
  std::vector<std::pair<double, bool>> SegMin;

  void dfs() {
    if (StopEarly || limitsExceeded())
      return;
    ++Nodes;

    // Fault injection: node expansion dies.  A fault is a hard stop (the
    // whole search is untrusted), unlike an LP stall which censors only
    // its subtree.
    if (FaultInjector::instance().shouldFire(FaultSite::BnbNode)) {
      Stop = SearchStop::Fault;
      return;
    }

    std::vector<PropEntry> Trail;
    if (propagateBounds(Trail))
      expand();
    for (auto It = Trail.rbegin(); It != Trail.rend(); ++It) {
      Lb[static_cast<size_t>(It->Var)] = It->OldLb;
      Ub[static_cast<size_t>(It->Var)] = It->OldUb;
    }
  }

  /// Solves the node relaxation and branches; runs under the node's
  /// propagated bounds (see dfs).
  void expand() {
    LpResult Relax = Lp.solve(Lb, Ub, LpToken);
    if (Relax.Status == LpStatus::Infeasible)
      return;
    if (Relax.Status == LpStatus::Cancelled) {
      // Attribute the stop: the caller's token means cancellation, our own
      // nested deadline means the time limit expired mid-solve.
      Stop = Opts.Cancel.cancelled() ? SearchStop::Cancelled
                                     : SearchStop::TimeLimit;
      return;
    }
    if (Relax.Status != LpStatus::Optimal) {
      // Iteration trouble or unboundedness: nothing is proven below this
      // node, but sibling subtrees are unaffected — record the stall
      // without stopping the search.
      LpStalled = true;
      return;
    }
    if (!Incumbent.empty() && Relax.Objective >= IncumbentObj - 1e-9)
      return; // Bound prune.

    int BranchVar = pickBranchVar(Relax.X);
    if (BranchVar < 0) {
      acceptIncumbent(Relax.X, Relax.Objective);
      return;
    }

    // The first child re-solves straight from this node's optimal basis
    // (still loaded in the workspace).  By the time the second child runs,
    // the workspace holds whatever vertex the first child's subtree ended
    // on — arbitrarily far away — so snapshot this node's basis and
    // re-seed before the switch; a child is then always one bound change
    // from its parent, which is what keeps dual reoptimization short.
    std::vector<LpBasisStatus> NodeBasis = Lp.structuralBasis();

    int Grp = GroupOf[static_cast<size_t>(BranchVar)];
    if (Grp >= 0 && branchOnGroup(Grp, Relax.X, NodeBasis))
      return;

    double V = Relax.X[static_cast<size_t>(BranchVar)];
    double Floor = std::floor(V + Opts.IntTol);
    double SavedLb = Lb[static_cast<size_t>(BranchVar)];
    double SavedUb = Ub[static_cast<size_t>(BranchVar)];

    bool UpFirst = (V - Floor) > 0.5;
    for (int Side = 0; Side < 2 && !StopEarly; ++Side) {
      bool Up = (Side == 0) == UpFirst;
      if (Side == 1)
        Lp.seedBasis(NodeBasis);
      if (Up) {
        Lb[static_cast<size_t>(BranchVar)] = Floor + 1.0;
        if (Lb[static_cast<size_t>(BranchVar)] <= SavedUb + 1e-9)
          dfs();
        Lb[static_cast<size_t>(BranchVar)] = SavedLb;
      } else {
        Ub[static_cast<size_t>(BranchVar)] = Floor;
        if (Ub[static_cast<size_t>(BranchVar)] >= SavedLb - 1e-9)
          dfs();
        Ub[static_cast<size_t>(BranchVar)] = SavedUb;
      }
    }
  }

  /// Dichotomy branching on an "exactly one" group: split the still-open
  /// support at the LP mass midpoint and forbid one half per child.  Any
  /// integer point has its 1 in exactly one half, so the children
  /// partition the feasible set.  \returns false (caller falls back to
  /// single-variable branching) when fewer than two members are open.
  bool branchOnGroup(int Grp, const std::vector<double> &X,
                     const std::vector<LpBasisStatus> &NodeBasis) {
    std::vector<int> Open;
    double Mass = 0.0;
    for (int V : Groups[static_cast<size_t>(Grp)])
      if (Ub[static_cast<size_t>(V)] > 0.5) {
        Open.push_back(V);
        Mass += X[static_cast<size_t>(V)];
      }
    if (Open.size() < 2)
      return false;

    // Smallest prefix holding at least half the LP mass, but never the
    // whole support (both children must forbid something).
    size_t Cut = 0;
    double LeftMass = 0.0;
    while (Cut + 1 < Open.size()) {
      LeftMass += X[static_cast<size_t>(Open[Cut])];
      ++Cut;
      if (LeftMass >= Mass / 2.0)
        break;
    }

    bool LeftFirst = LeftMass >= Mass - LeftMass;
    for (int Side = 0; Side < 2 && !StopEarly; ++Side) {
      bool KeepLeft = (Side == 0) == LeftFirst;
      if (Side == 1)
        Lp.seedBasis(NodeBasis);
      size_t Begin = KeepLeft ? Cut : 0;
      size_t End = KeepLeft ? Open.size() : Cut;
      std::vector<double> Saved;
      Saved.reserve(End - Begin);
      for (size_t I = Begin; I < End; ++I) {
        Saved.push_back(Ub[static_cast<size_t>(Open[I])]);
        Ub[static_cast<size_t>(Open[I])] = 0.0;
      }
      dfs();
      for (size_t I = Begin; I < End; ++I)
        Ub[static_cast<size_t>(Open[I])] = Saved[I - Begin];
    }
    return true;
  }

  SparseLp &Lp;
  const MilpModel &M;
  const MilpOptions &Opts;
  CancellationSource LpDeadline;
  CancellationToken LpToken;
  std::vector<double> Lb, Ub;
  /// "Exactly one of these binaries" rows (convexity/assignment rows),
  /// detected once up front; GroupOf maps a var to its group or -1.
  std::vector<std::vector<int>> Groups;
  std::vector<int> GroupOf;
  std::vector<double> Incumbent;
  double IncumbentObj = 0.0;
  std::int64_t Nodes = 0;
  SearchStop Stop = SearchStop::None;
  bool LpStalled = false;
  bool StopEarly = false;
  Stopwatch Watch;
};

} // namespace

const char *swp::milpStatusName(MilpStatus S) {
  switch (S) {
  case MilpStatus::Optimal:
    return "optimal";
  case MilpStatus::Infeasible:
    return "infeasible";
  case MilpStatus::Feasible:
    return "feasible";
  case MilpStatus::Unknown:
    return "unknown";
  case MilpStatus::Error:
    return "error";
  }
  return "?";
}

const char *swp::searchStopName(SearchStop S) {
  switch (S) {
  case SearchStop::None:
    return "none";
  case SearchStop::TimeLimit:
    return "time-limit";
  case SearchStop::NodeLimit:
    return "node-limit";
  case SearchStop::Cancelled:
    return "cancelled";
  case SearchStop::LpStall:
    return "lp-stall";
  case SearchStop::Fault:
    return "fault";
  }
  return "?";
}

namespace {

MilpResult invalidModelResult(const MilpModel &M) {
  MilpResult Res;
  Res.Status = MilpStatus::Error;
  Res.StopReason = SearchStop::Fault;
  Res.Error = Status(StatusCode::InvalidInput,
                     "malformed MILP model: " + M.buildError());
  return Res;
}

} // namespace

MilpResult swp::solveMilp(const MilpModel &M, const MilpOptions &Opts) {
  if (!M.valid())
    return invalidModelResult(M);
  SparseLp Lp(M);
  Search S(Lp, M, Opts);
  return S.run();
}

MilpResult swp::solveMilp(SparseLp &Lp, const MilpModel &M,
                          const MilpOptions &Opts) {
  if (!M.valid())
    return invalidModelResult(M);
  Search S(Lp, M, Opts);
  return S.run();
}
