//===- BranchAndBound.cpp - MILP search -----------------------------------===//

#include "swp/solver/BranchAndBound.h"

#include "swp/solver/Simplex.h"
#include "swp/support/FaultInjector.h"
#include "swp/support/Stopwatch.h"

#include <cmath>

using namespace swp;

namespace {

/// Mutable search state shared across the DFS.
class Search {
public:
  Search(const MilpModel &M, const MilpOptions &Opts)
      : M(M), Opts(Opts) {
    Lb.reserve(static_cast<size_t>(M.numVars()));
    Ub.reserve(static_cast<size_t>(M.numVars()));
    for (const ModelVar &V : M.vars()) {
      Lb.push_back(V.Lb);
      Ub.push_back(V.Ub);
    }
  }

  MilpResult run() {
    if (!Opts.WarmStart.empty() && M.isFeasible(Opts.WarmStart, 1e-6)) {
      Incumbent = Opts.WarmStart;
      IncumbentObj = MilpModel::evaluate(M.objective(), Incumbent);
      if (Opts.StopAtFirstIncumbent)
        StopEarly = true;
    }
    dfs();
    // An LP stall censors only the subtree beneath the stalled node; the
    // DFS keeps exploring siblings.  Report it as the stop reason only
    // when no hard limit also fired.
    if (Stop == SearchStop::None && LpStalled)
      Stop = SearchStop::LpStall;
    MilpResult Res;
    Res.Nodes = Nodes;
    Res.Seconds = Watch.seconds();
    Res.X = std::move(Incumbent);
    Res.Objective = IncumbentObj;
    Res.StopReason = Stop;
    if (Stop == SearchStop::Fault)
      Res.Error = Status(StatusCode::FaultInjected,
                         "node expansion fault killed the search");
    bool LimitHit = Stop != SearchStop::None;
    if (!Res.X.empty())
      Res.Status = (LimitHit && !StopEarly) ? MilpStatus::Feasible
                                            : MilpStatus::Optimal;
    else if (Stop == SearchStop::Fault)
      Res.Status = MilpStatus::Error; // Killed with nothing usable.
    else
      Res.Status = LimitHit ? MilpStatus::Unknown : MilpStatus::Infeasible;
    return Res;
  }

private:
  bool limitsExceeded() {
    if (Stop != SearchStop::None)
      return true;
    if (Opts.Cancel.cancelled()) {
      Stop = SearchStop::Cancelled;
      return true;
    }
    if (Nodes >= Opts.NodeLimit) {
      Stop = SearchStop::NodeLimit;
      return true;
    }
    if (Watch.seconds() >= Opts.TimeLimitSec) {
      Stop = SearchStop::TimeLimit;
      return true;
    }
    return false;
  }

  /// \returns the fractional integer variable to branch on, or -1 when all
  /// integer variables are integral.  Among fractional variables, the
  /// lowest BranchPriority class wins; within a class, the variable
  /// farthest from integrality.
  int pickBranchVar(const std::vector<double> &X) const {
    int Best = -1;
    int BestPriority = 0;
    double BestFrac = 0.0;
    for (int I = 0; I < M.numVars(); ++I) {
      const ModelVar &MV = M.var(I);
      if (MV.Kind == VarKind::Continuous)
        continue;
      double V = X[static_cast<size_t>(I)];
      double Frac = std::abs(V - std::round(V));
      if (Frac <= Opts.IntTol)
        continue;
      if (Best < 0 || MV.BranchPriority < BestPriority ||
          (MV.BranchPriority == BestPriority && Frac > BestFrac)) {
        Best = I;
        BestPriority = MV.BranchPriority;
        BestFrac = Frac;
      }
    }
    return Best;
  }

  void acceptIncumbent(const std::vector<double> &X, double Obj) {
    // Snap integer variables to exact integers.
    std::vector<double> Snapped = X;
    for (int I = 0; I < M.numVars(); ++I)
      if (M.var(I).Kind != VarKind::Continuous)
        Snapped[static_cast<size_t>(I)] =
            std::round(Snapped[static_cast<size_t>(I)]);
    if (!M.isFeasible(Snapped, 1e-5))
      return; // Rounding broke a tight constraint; keep searching.
    if (Incumbent.empty() || Obj < IncumbentObj - 1e-9) {
      Incumbent = std::move(Snapped);
      IncumbentObj = Obj;
      if (Opts.StopAtFirstIncumbent)
        StopEarly = true;
    }
  }

  void dfs() {
    if (StopEarly || limitsExceeded())
      return;
    ++Nodes;

    // Fault injection: node expansion dies.  A fault is a hard stop (the
    // whole search is untrusted), unlike an LP stall which censors only
    // its subtree.
    if (FaultInjector::instance().shouldFire(FaultSite::BnbNode)) {
      Stop = SearchStop::Fault;
      return;
    }

    LpResult Lp = solveLp(M, Lb, Ub, Opts.Cancel);
    if (Lp.Status == LpStatus::Infeasible)
      return;
    if (Lp.Status == LpStatus::Cancelled) {
      Stop = SearchStop::Cancelled;
      return;
    }
    if (Lp.Status != LpStatus::Optimal) {
      // Iteration trouble or unboundedness: nothing is proven below this
      // node, but sibling subtrees are unaffected — record the stall
      // without stopping the search.
      LpStalled = true;
      return;
    }
    if (!Incumbent.empty() && Lp.Objective >= IncumbentObj - 1e-9)
      return; // Bound prune.

    int BranchVar = pickBranchVar(Lp.X);
    if (BranchVar < 0) {
      acceptIncumbent(Lp.X, Lp.Objective);
      return;
    }

    double V = Lp.X[static_cast<size_t>(BranchVar)];
    double Floor = std::floor(V + Opts.IntTol);
    double SavedLb = Lb[static_cast<size_t>(BranchVar)];
    double SavedUb = Ub[static_cast<size_t>(BranchVar)];

    bool UpFirst = (V - Floor) > 0.5;
    for (int Side = 0; Side < 2 && !StopEarly; ++Side) {
      bool Up = (Side == 0) == UpFirst;
      if (Up) {
        Lb[static_cast<size_t>(BranchVar)] = Floor + 1.0;
        if (Lb[static_cast<size_t>(BranchVar)] <= SavedUb + 1e-9)
          dfs();
        Lb[static_cast<size_t>(BranchVar)] = SavedLb;
      } else {
        Ub[static_cast<size_t>(BranchVar)] = Floor;
        if (Ub[static_cast<size_t>(BranchVar)] >= SavedLb - 1e-9)
          dfs();
        Ub[static_cast<size_t>(BranchVar)] = SavedUb;
      }
    }
  }

  const MilpModel &M;
  const MilpOptions &Opts;
  std::vector<double> Lb, Ub;
  std::vector<double> Incumbent;
  double IncumbentObj = 0.0;
  std::int64_t Nodes = 0;
  SearchStop Stop = SearchStop::None;
  bool LpStalled = false;
  bool StopEarly = false;
  Stopwatch Watch;
};

} // namespace

const char *swp::milpStatusName(MilpStatus S) {
  switch (S) {
  case MilpStatus::Optimal:
    return "optimal";
  case MilpStatus::Infeasible:
    return "infeasible";
  case MilpStatus::Feasible:
    return "feasible";
  case MilpStatus::Unknown:
    return "unknown";
  case MilpStatus::Error:
    return "error";
  }
  return "?";
}

const char *swp::searchStopName(SearchStop S) {
  switch (S) {
  case SearchStop::None:
    return "none";
  case SearchStop::TimeLimit:
    return "time-limit";
  case SearchStop::NodeLimit:
    return "node-limit";
  case SearchStop::Cancelled:
    return "cancelled";
  case SearchStop::LpStall:
    return "lp-stall";
  case SearchStop::Fault:
    return "fault";
  }
  return "?";
}

MilpResult swp::solveMilp(const MilpModel &M, const MilpOptions &Opts) {
  if (!M.valid()) {
    MilpResult Res;
    Res.Status = MilpStatus::Error;
    Res.StopReason = SearchStop::Fault;
    Res.Error = Status(StatusCode::InvalidInput,
                       "malformed MILP model: " + M.buildError());
    return Res;
  }
  Search S(M, Opts);
  return S.run();
}
