//===- Model.cpp - MILP model builder -------------------------------------===//

#include "swp/solver/Model.h"

#include <algorithm>
#include <cmath>

using namespace swp;

LinExpr &LinExpr::addScaled(const LinExpr &Other, double Scale) {
  for (const LinTerm &T : Other.Terms)
    add(T.Var, T.Coef * Scale);
  Constant += Other.Constant * Scale;
  return *this;
}

void LinExpr::normalize() {
  std::sort(Terms.begin(), Terms.end(),
            [](const LinTerm &A, const LinTerm &B) { return A.Var < B.Var; });
  std::vector<LinTerm> Merged;
  Merged.reserve(Terms.size());
  for (const LinTerm &T : Terms) {
    if (!Merged.empty() && Merged.back().Var == T.Var) {
      Merged.back().Coef += T.Coef;
      continue;
    }
    Merged.push_back(T);
  }
  Merged.erase(std::remove_if(Merged.begin(), Merged.end(),
                              [](const LinTerm &T) { return T.Coef == 0.0; }),
               Merged.end());
  Terms = std::move(Merged);
}

VarId MilpModel::addVar(double Lb, double Ub, VarKind Kind, std::string Name) {
  // Record structural errors instead of aborting: the solver checks
  // valid() and reports a typed error, keeping malformed inputs inside
  // the failure domain.
  if (!(Lb <= Ub) && BuildError.empty())
    BuildError = "variable '" + Name + "' has empty domain";
  else if ((std::isnan(Lb) || std::isnan(Ub) || std::isinf(Lb)) &&
           BuildError.empty())
    BuildError = "variable '" + Name + "' has a non-finite bound";
  Vars.push_back({Lb, Ub, Kind, std::move(Name), false, 0});
  return static_cast<VarId>(Vars.size()) - 1;
}

void MilpModel::addConstraint(LinExpr Expr, CmpKind Cmp, double Rhs) {
  Expr.normalize();
  double FoldedRhs = Rhs - Expr.constant();
  ModelConstraint C;
  C.Expr = std::move(Expr);
  C.Cmp = Cmp;
  C.Rhs = FoldedRhs;
  Constraints.push_back(std::move(C));
}

void MilpModel::setObjective(LinExpr Expr) {
  Expr.normalize();
  Objective = std::move(Expr);
}

double MilpModel::evaluate(const LinExpr &Expr, const std::vector<double> &X) {
  double V = Expr.constant();
  for (const LinTerm &T : Expr.terms())
    V += T.Coef * X[static_cast<size_t>(T.Var)];
  return V;
}

bool MilpModel::isFeasible(const std::vector<double> &X, double Tol) const {
  if (X.size() != Vars.size())
    return false;
  for (int I = 0; I < numVars(); ++I) {
    double V = X[static_cast<size_t>(I)];
    const ModelVar &MV = Vars[static_cast<size_t>(I)];
    if (V < MV.Lb - Tol || V > MV.Ub + Tol)
      return false;
    if (MV.Kind != VarKind::Continuous &&
        std::abs(V - std::round(V)) > Tol)
      return false;
  }
  for (const ModelConstraint &C : Constraints) {
    double V = evaluate(C.Expr, X);
    switch (C.Cmp) {
    case CmpKind::LE:
      if (V > C.Rhs + Tol)
        return false;
      break;
    case CmpKind::GE:
      if (V < C.Rhs - Tol)
        return false;
      break;
    case CmpKind::EQ:
      if (std::abs(V - C.Rhs) > Tol)
        return false;
      break;
    }
  }
  return true;
}
