//===- Presolve.cpp - LP/MILP presolve ------------------------------------===//

#include "swp/solver/Presolve.h"

#include "swp/support/Format.h"

#include <cmath>

using namespace swp;

namespace {

constexpr double FixEps = 1e-9;
constexpr double RowTol = 1e-7;
constexpr double BoundTol = 1e-9;

bool isFixed(double Lb, double Ub) { return Ub - Lb <= FixEps; }

} // namespace

PresolveInfo swp::presolveModel(const MilpModel &M,
                                const std::vector<double> &Lb,
                                const std::vector<double> &Ub) {
  PresolveInfo Info;
  Info.Lb = Lb;
  Info.Ub = Ub;
  Info.DropRow.assign(static_cast<size_t>(M.numConstraints()), 0);

  auto Fail = [&Info](std::string Reason) {
    Info.Infeasible = true;
    Info.Reason = std::move(Reason);
    return Info;
  };

  const int N = M.numVars();
  std::vector<char> WasFixed(static_cast<size_t>(N), 0);
  for (int I = 0; I < N; ++I) {
    if (Info.Lb[static_cast<size_t>(I)] >
        Info.Ub[static_cast<size_t>(I)] + BoundTol)
      return Fail(strFormat("variable %d has contradictory bounds", I));
    WasFixed[static_cast<size_t>(I)] =
        isFixed(Info.Lb[static_cast<size_t>(I)],
                Info.Ub[static_cast<size_t>(I)]);
  }

  // Fixed point: fixing a variable can turn another row into a singleton
  // or a tautology, so sweep until nothing moves (bounded for safety).
  const int MaxSweeps = M.numVars() + M.numConstraints() + 2;
  bool Changed = true;
  while (Changed && Info.Sweeps < MaxSweeps) {
    Changed = false;
    ++Info.Sweeps;
    for (int R = 0; R < M.numConstraints(); ++R) {
      if (Info.DropRow[static_cast<size_t>(R)])
        continue;
      const ModelConstraint &C = M.constraints()[static_cast<size_t>(R)];
      double FixedSum = 0.0;
      int FreeCount = 0;
      int FreeVar = -1;
      double FreeCoef = 0.0;
      for (const LinTerm &T : C.Expr.terms()) {
        double L = Info.Lb[static_cast<size_t>(T.Var)];
        double U = Info.Ub[static_cast<size_t>(T.Var)];
        if (isFixed(L, U)) {
          FixedSum += T.Coef * L;
          continue;
        }
        ++FreeCount;
        FreeVar = T.Var;
        FreeCoef = T.Coef;
      }
      double Rhs = C.Rhs - FixedSum;

      if (FreeCount == 0) {
        // Pure consistency check: drop when satisfied, proof otherwise.
        bool Ok = true;
        switch (C.Cmp) {
        case CmpKind::LE:
          Ok = Rhs >= -RowTol;
          break;
        case CmpKind::GE:
          Ok = Rhs <= RowTol;
          break;
        case CmpKind::EQ:
          Ok = std::abs(Rhs) <= RowTol;
          break;
        }
        if (!Ok)
          return Fail(strFormat("row %d is empty and violated", R));
        Info.DropRow[static_cast<size_t>(R)] = 1;
        ++Info.DroppedRows;
        Changed = true;
        continue;
      }

      if (FreeCount != 1)
        continue;

      // Singleton row: an exact bound on its one free variable.
      double Val = Rhs / FreeCoef;
      double &VL = Info.Lb[static_cast<size_t>(FreeVar)];
      double &VU = Info.Ub[static_cast<size_t>(FreeVar)];
      bool TightenLb = false, TightenUb = false;
      switch (C.Cmp) {
      case CmpKind::EQ:
        TightenLb = TightenUb = true;
        break;
      case CmpKind::LE:
        (FreeCoef > 0 ? TightenUb : TightenLb) = true;
        break;
      case CmpKind::GE:
        (FreeCoef > 0 ? TightenLb : TightenUb) = true;
        break;
      }
      if (TightenLb && Val > VL + FixEps) {
        if (Val > VU + RowTol)
          return Fail(strFormat(
              "singleton row %d forces variable %d above its upper bound", R,
              FreeVar));
        VL = std::min(Val, VU); // Clamp away float dust past the bound.
        Changed = true;
      }
      if (TightenUb && Val < VU - FixEps) {
        if (Val < VL - RowTol)
          return Fail(strFormat(
              "singleton row %d forces variable %d below its lower bound", R,
              FreeVar));
        VU = std::max(Val, VL);
        Changed = true;
      }
      Info.DropRow[static_cast<size_t>(R)] = 1;
      ++Info.DroppedRows;
      Changed = true;
      if (isFixed(VL, VU) && !WasFixed[static_cast<size_t>(FreeVar)]) {
        WasFixed[static_cast<size_t>(FreeVar)] = 1;
        ++Info.NewlyFixed;
      }
    }
  }
  return Info;
}

PresolveInfo swp::presolveModel(const MilpModel &M) {
  std::vector<double> Lb, Ub;
  Lb.reserve(static_cast<size_t>(M.numVars()));
  Ub.reserve(static_cast<size_t>(M.numVars()));
  for (const ModelVar &V : M.vars()) {
    Lb.push_back(V.Lb);
    Ub.push_back(V.Ub);
  }
  return presolveModel(M, Lb, Ub);
}
