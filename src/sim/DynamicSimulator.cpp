//===- DynamicSimulator.cpp - Dynamic-issue loop simulator ----------------===//

#include "swp/sim/DynamicSimulator.h"

#include "swp/support/Format.h"

#include <algorithm>
#include <map>
#include <tuple>

using namespace swp;

namespace {

/// Absolute-time occupancy of every physical unit's stages.
class Scoreboard {
public:
  explicit Scoreboard(const MachineModel &Machine) : Machine(Machine) {}

  bool unitFree(const Ddg &G, int Node, int U, std::int64_t Cycle) const {
    int R = G.node(Node).OpClass;
    const ReservationTable &Table = Machine.tableFor(G.node(Node));
    for (int S = 0; S < Table.numStages(); ++S)
      for (int L : Table.busyColumns(S))
        if (Busy.count({R, U, S, Cycle + L}))
          return false;
    return true;
  }

  /// First-fit free unit of \p Node's type at \p Cycle, or -1.
  int findUnit(const Ddg &G, int Node, std::int64_t Cycle) const {
    int R = G.node(Node).OpClass;
    for (int U = 0; U < Machine.type(R).Count; ++U)
      if (unitFree(G, Node, U, Cycle))
        return U;
    return -1;
  }

  void occupy(const Ddg &G, int Node, int U, std::int64_t Cycle) {
    int R = G.node(Node).OpClass;
    const ReservationTable &Table = Machine.tableFor(G.node(Node));
    for (int S = 0; S < Table.numStages(); ++S)
      for (int L : Table.busyColumns(S))
        Busy[{R, U, S, Cycle + L}] = true;
  }

  /// ROUTE-cell occupancy (synthetic stage -1, disjoint from every
  /// reservation-table stage): in-flight multi-hop values on the
  /// producer's unit.
  bool routeFree(int R, int U, std::int64_t Cycle) const {
    return !Busy.count({R, U, -1, Cycle});
  }
  void occupyRoute(int R, int U, std::int64_t Cycle) {
    Busy[{R, U, -1, Cycle}] = true;
  }

  std::int64_t busyCount(int R) const {
    std::int64_t Count = 0;
    for (const auto &[Key, Value] : Busy)
      if (std::get<0>(Key) == R && Value)
        ++Count;
    return Count;
  }

private:
  const MachineModel &Machine;
  // Key = (type, unit, stage, absolute cycle).
  std::map<std::tuple<int, int, int, std::int64_t>, bool> Busy;
};

} // namespace

SimResult swp::simulateDynamicIssue(const Ddg &G, const MachineModel &Machine,
                                    const SimOptions &Opts) {
  const int N = G.numNodes();
  const int Iters = std::max(2, Opts.Iterations);
  const std::int64_t Total = static_cast<std::int64_t>(N) * Iters;

  // Issue cycle per instance; -1 = not yet issued.  Instance index =
  // iter * N + node.
  std::vector<std::int64_t> IssueAt(static_cast<size_t>(Total), -1);
  Scoreboard Board(Machine);

  std::int64_t Issued = 0;
  std::int64_t Cycle = 0;
  // Generous runaway cap: a fully serial execution issues one instruction
  // every max-latency cycles.
  int MaxLat = 1;
  for (const DdgNode &Node : G.nodes())
    MaxLat = std::max(MaxLat, Node.Latency);
  for (const DdgEdge &E : G.edges())
    MaxLat = std::max(MaxLat, E.Latency);
  const std::int64_t CycleCap = Total * (MaxLat + 2) + 64;

  std::int64_t NextInOrder = 0; // Next program-order instance (in-order).
  while (Issued < Total && Cycle <= CycleCap) {
    int IssuedThisCycle = 0;
    for (std::int64_t Inst = Opts.InOrder ? NextInOrder : 0; Inst < Total;
         ++Inst) {
      if (Opts.IssueWidth > 0 && IssuedThisCycle >= Opts.IssueWidth)
        break;
      if (IssueAt[static_cast<size_t>(Inst)] >= 0)
        continue;
      int Node = static_cast<int>(Inst % N);
      int Iter = static_cast<int>(Inst / N);
      // Operand readiness over DDG in-edges.
      bool Ready = true;
      for (const DdgEdge &E : G.edges()) {
        if (E.Dst != Node)
          continue;
        int SrcIter = Iter - E.Distance;
        if (SrcIter < 0)
          continue;
        std::int64_t SrcIssue =
            IssueAt[static_cast<size_t>(SrcIter) * static_cast<size_t>(N) +
                    static_cast<size_t>(E.Src)];
        if (SrcIssue < 0 || SrcIssue + E.Latency > Cycle) {
          Ready = false;
          break;
        }
      }
      if (!Ready) {
        if (Opts.InOrder)
          break; // The head stalls everything behind it.
        continue;
      }
      int U = Board.findUnit(G, Node, Cycle);
      if (U < 0) {
        if (Opts.InOrder)
          break;
        continue;
      }
      Board.occupy(G, Node, U, Cycle);
      IssueAt[static_cast<size_t>(Inst)] = Cycle;
      ++Issued;
      ++IssuedThisCycle;
      if (Opts.InOrder) {
        // Advance the head past every already-issued instance.
        while (NextInOrder < Total &&
               IssueAt[static_cast<size_t>(NextInOrder)] >= 0)
          ++NextInOrder;
        Inst = NextInOrder - 1;
      }
    }
    ++Cycle;
  }

  SimResult Result;
  for (std::int64_t V : IssueAt)
    Result.LastIssueCycle = std::max(Result.LastIssueCycle, V);
  // Steady-state rate over the second half of the run.
  auto IterEnd = [&](int Iter) {
    std::int64_t End = 0;
    for (int I = 0; I < N; ++I)
      End = std::max(End, IssueAt[static_cast<size_t>(Iter) *
                                      static_cast<size_t>(N) +
                                  static_cast<size_t>(I)]);
    return End;
  };
  int Lo = Iters / 2, Hi = Iters - 1;
  if (Hi > Lo)
    Result.CyclesPerIteration =
        static_cast<double>(IterEnd(Hi) - IterEnd(Lo)) /
        static_cast<double>(Hi - Lo);
  for (int R = 0; R < Machine.numTypes(); ++R)
    Result.TypeBusyCycles.push_back(Board.busyCount(R));
  return Result;
}

bool swp::replaySchedule(const Ddg &G, const MachineModel &Machine,
                         const ModuloSchedule &S, int Iterations,
                         std::string *ErrorOut) {
  const int N = G.numNodes();
  Scoreboard Board(Machine);
  struct Instance {
    int Node;
    int Iter;
    std::int64_t Start;
  };
  std::vector<Instance> Instances;
  for (int J = 0; J < Iterations; ++J)
    for (int I = 0; I < N; ++I)
      Instances.push_back(
          {I, J,
           static_cast<std::int64_t>(J) * S.T +
               S.StartTime[static_cast<size_t>(I)]});
  std::sort(Instances.begin(), Instances.end(),
            [](const Instance &A, const Instance &B) {
              if (A.Start != B.Start)
                return A.Start < B.Start;
              return A.Node < B.Node;
            });

  // With a constraining topology and a fixed mapping, operands arrive
  // rho(h) cycles later (intermediate routing hops) and in-flight values
  // occupy ROUTE cells on the producer's unit.
  const Topology *Topo =
      S.hasMapping() && Machine.topologyConstrains() ? Machine.topology()
                                                     : nullptr;
  auto GlobalUnit = [&](int Node) {
    return Machine.globalUnitIndex(G.node(Node).OpClass,
                                   S.Mapping[static_cast<size_t>(Node)]);
  };
  auto EdgeRho = [&](const DdgEdge &E, bool *AllowedOut) {
    int U = GlobalUnit(E.Src), V = GlobalUnit(E.Dst);
    if (!Topo->feedAllowed(U, V)) {
      *AllowedOut = false;
      return 0;
    }
    *AllowedOut = true;
    return Topo->routePenalty(U, V);
  };

  for (const Instance &Inst : Instances) {
    // Operand readiness at the scheduled cycle.
    for (const DdgEdge &E : G.edges()) {
      if (E.Dst != Inst.Node)
        continue;
      int SrcIter = Inst.Iter - E.Distance;
      if (SrcIter < 0)
        continue;
      std::int64_t SrcStart =
          static_cast<std::int64_t>(SrcIter) * S.T +
          S.StartTime[static_cast<size_t>(E.Src)];
      int Rho = 0;
      if (Topo) {
        bool Allowed = true;
        Rho = EdgeRho(E, &Allowed);
        if (!Allowed) {
          if (ErrorOut)
            *ErrorOut = strFormat(
                "topology forbids routing %s -> %s under this mapping",
                G.node(E.Src).Name.c_str(), G.node(Inst.Node).Name.c_str());
          return false;
        }
      }
      if (SrcStart + E.Latency + Rho > Inst.Start) {
        if (ErrorOut)
          *ErrorOut = strFormat(
              "%s (iter %d) issues at %lld before its operand from %s",
              G.node(Inst.Node).Name.c_str(), Inst.Iter,
              static_cast<long long>(Inst.Start),
              G.node(E.Src).Name.c_str());
        return false;
      }
    }
    int U;
    if (S.hasMapping()) {
      U = S.Mapping[static_cast<size_t>(Inst.Node)];
      if (!Board.unitFree(G, Inst.Node, U, Inst.Start)) {
        if (ErrorOut)
          *ErrorOut = strFormat("%s (iter %d) finds its unit busy at %lld",
                                G.node(Inst.Node).Name.c_str(), Inst.Iter,
                                static_cast<long long>(Inst.Start));
        return false;
      }
    } else {
      U = Board.findUnit(G, Inst.Node, Inst.Start);
      if (U < 0) {
        if (ErrorOut)
          *ErrorOut = strFormat("%s (iter %d) finds no free unit at %lld",
                                G.node(Inst.Node).Name.c_str(), Inst.Iter,
                                static_cast<long long>(Inst.Start));
        return false;
      }
    }
    Board.occupy(G, Inst.Node, U, Inst.Start);
    if (Topo) {
      // Claim ROUTE cells for every multi-hop value this issue launches.
      int R = G.node(Inst.Node).OpClass;
      for (const DdgEdge &E : G.edges()) {
        if (E.Src != Inst.Node)
          continue;
        int H = Topo->hops(GlobalUnit(E.Src), GlobalUnit(E.Dst));
        for (int Col :
             Topology::routeColumns(E.Latency, H, Topo->hopLatency())) {
          if (!Board.routeFree(R, U, Inst.Start + Col)) {
            if (ErrorOut)
              *ErrorOut = strFormat(
                  "%s (iter %d) finds a route cell busy at %lld",
                  G.node(Inst.Node).Name.c_str(), Inst.Iter,
                  static_cast<long long>(Inst.Start + Col));
            return false;
          }
          Board.occupyRoute(R, U, Inst.Start + Col);
        }
      }
    }
  }
  return true;
}
