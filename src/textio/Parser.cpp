//===- Parser.cpp - Text formats for machines and loops -------------------===//

#include "swp/textio/Parser.h"

#include "swp/support/Format.h"

#include <cctype>
#include <cerrno>
#include <climits>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

using namespace swp;

namespace {

/// Splits \p Line into whitespace-separated tokens, dropping '#' comments.
std::vector<std::string> tokenize(const std::string &Line) {
  std::vector<std::string> Tokens;
  std::string Current;
  for (char C : Line) {
    if (C == '#')
      break;
    if (std::isspace(static_cast<unsigned char>(C))) {
      if (!Current.empty()) {
        Tokens.push_back(Current);
        Current.clear();
      }
      continue;
    }
    Current += C;
  }
  if (!Current.empty())
    Tokens.push_back(Current);
  return Tokens;
}

bool parseInt(const std::string &Tok, int &Out) {
  if (Tok.empty())
    return false;
  char *End = nullptr;
  errno = 0;
  long V = std::strtol(Tok.c_str(), &End, 10);
  if (errno != 0 || End != Tok.c_str() + Tok.size() || V < INT_MIN ||
      V > INT_MAX)
    return false;
  Out = static_cast<int>(V);
  return true;
}

/// parseInt plus the MaxParsedMagnitude cap: values that fit an int but
/// overflow downstream T-range / buffer arithmetic are rejected here.
bool parseBounded(const std::string &Tok, int &Out) {
  return parseInt(Tok, Out) && Out <= MaxParsedMagnitude &&
         Out >= -MaxParsedMagnitude;
}

/// Parses 0/1 strings (one per stage) into a reservation table.
bool parseTable(const std::vector<std::string> &Rows, ReservationTable &Out,
                std::string &Err) {
  if (Rows.empty()) {
    Err = "reservation table needs at least one stage row";
    return false;
  }
  std::vector<std::vector<std::uint8_t>> Data;
  for (const std::string &Row : Rows) {
    std::vector<std::uint8_t> Stage;
    for (char C : Row) {
      if (C != '0' && C != '1') {
        Err = "reservation rows must be 0/1 strings, got '" + Row + "'";
        return false;
      }
      Stage.push_back(C == '1' ? 1 : 0);
    }
    if (!Data.empty() && Stage.size() != Data.front().size()) {
      Err = "all stage rows must have equal length";
      return false;
    }
    Data.push_back(std::move(Stage));
  }
  if (Data.front().empty()) {
    Err = "reservation rows must be non-empty";
    return false;
  }
  Out = ReservationTable(std::move(Data));
  return true;
}

std::string lineError(int LineNo, const std::string &Msg) {
  return strFormat("line %d: %s", LineNo, Msg.c_str());
}

} // namespace

bool swp::parseMachine(const std::string &Text, MachineModel &Out,
                       std::string &Err) {
  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;
  std::string MachineName = "machine";
  struct PendingType {
    std::string Name;
    int Count = 1;
    bool HasTable = false;
    ReservationTable Table;
    std::vector<ReservationTable> Variants;
  };
  std::vector<PendingType> Types;

  // Topology directives (grid / edge / instname / hoplatency / maxhops)
  // come after every futype: the unit space must be final before units can
  // be named or connected.
  std::optional<Topology> Topo;
  bool TopoHasDirectives = false;
  auto EnsureTopo = [&]() -> Topology & {
    if (!Topo) {
      int Total = 0;
      for (const PendingType &P : Types)
        Total += P.Count;
      Topo.emplace(Total);
    }
    return *Topo;
  };
  // Resolves a topology unit reference: an instance name or a global
  // (type-major) unit index.  \returns -1 when unknown / out of range.
  auto ResolveUnit = [&](const std::string &Ref) {
    int U = EnsureTopo().findUnit(Ref);
    if (U < 0 && parseInt(Ref, U) &&
        (U < 0 || U >= EnsureTopo().numUnits()))
      U = -1;
    return U;
  };

  while (std::getline(In, Line)) {
    ++LineNo;
    std::vector<std::string> Tok = tokenize(Line);
    if (Tok.empty())
      continue;
    if (Tok[0] == "machine") {
      if (Tok.size() != 2) {
        Err = lineError(LineNo, "expected: machine <name>");
        return false;
      }
      MachineName = Tok[1];
      continue;
    }
    if (Tok[0] == "futype") {
      if (Topo) {
        Err = lineError(LineNo, "futype after topology directives");
        return false;
      }
      if (Tok.size() != 4 || Tok[2] != "count") {
        Err = lineError(LineNo, "expected: futype <name> count <n>");
        return false;
      }
      PendingType P;
      P.Name = Tok[1];
      for (const PendingType &Existing : Types) {
        if (Existing.Name == P.Name) {
          Err = lineError(LineNo, "duplicate futype '" + P.Name + "'");
          return false;
        }
      }
      if (!parseBounded(Tok[3], P.Count) || P.Count < 1) {
        Err = lineError(LineNo,
                        "bad or out-of-range unit count '" + Tok[3] + "'");
        return false;
      }
      Types.push_back(std::move(P));
      continue;
    }
    if (Tok[0] == "table" || Tok[0] == "variant") {
      if (Types.empty()) {
        Err = lineError(LineNo, Tok[0] + " before any futype");
        return false;
      }
      ReservationTable Table;
      std::string TableErr;
      if (!parseTable({Tok.begin() + 1, Tok.end()}, Table, TableErr)) {
        Err = lineError(LineNo, TableErr);
        return false;
      }
      if (Tok[0] == "table") {
        if (Types.back().HasTable) {
          Err = lineError(LineNo, "duplicate table for futype " +
                                      Types.back().Name);
          return false;
        }
        Types.back().Table = std::move(Table);
        Types.back().HasTable = true;
      } else {
        if (!Types.back().HasTable) {
          Err = lineError(LineNo, "variant before table for futype " +
                                      Types.back().Name);
          return false;
        }
        Types.back().Variants.push_back(std::move(Table));
      }
      continue;
    }
    if (Tok[0] == "grid") {
      // grid <rows> <cols> [mesh|torus] — 4-neighbor connectivity over all
      // physical units in row-major order, named pe_<r>_<c>.
      if (TopoHasDirectives) {
        Err = lineError(LineNo, "grid must be the first topology directive");
        return false;
      }
      if (Tok.size() != 3 && Tok.size() != 4) {
        Err = lineError(LineNo, "expected: grid <rows> <cols> [mesh|torus]");
        return false;
      }
      bool Torus = false;
      if (Tok.size() == 4) {
        if (Tok[3] != "mesh" && Tok[3] != "torus") {
          Err = lineError(LineNo, "grid style must be mesh or torus, got '" +
                                      Tok[3] + "'");
          return false;
        }
        Torus = Tok[3] == "torus";
      }
      int Rows = 0, Cols = 0;
      if (!parseBounded(Tok[1], Rows) || !parseBounded(Tok[2], Cols) ||
          Rows < 1 || Cols < 1) {
        Err = lineError(LineNo, "bad grid dimensions");
        return false;
      }
      Topology &Tp = EnsureTopo();
      if (static_cast<long long>(Rows) * Cols != Tp.numUnits()) {
        Err = lineError(
            LineNo,
            strFormat("grid %d x %d needs %lld units, machine has %d", Rows,
                      Cols, static_cast<long long>(Rows) * Cols,
                      Tp.numUnits()));
        return false;
      }
      for (int Rr = 0; Rr < Rows; ++Rr)
        for (int Cc = 0; Cc < Cols; ++Cc)
          Tp.setName(Rr * Cols + Cc, strFormat("pe_%d_%d", Rr, Cc));
      auto Link = [&Tp](int A, int B) {
        // Duplicates are expected on wrap-around of 2-wide tori.
        Tp.addEdge(A, B);
        Tp.addEdge(B, A);
      };
      for (int Rr = 0; Rr < Rows; ++Rr)
        for (int Cc = 0; Cc < Cols; ++Cc) {
          int U = Rr * Cols + Cc;
          if (Cc + 1 < Cols)
            Link(U, U + 1);
          else if (Torus && Cols > 1)
            Link(U, Rr * Cols);
          if (Rr + 1 < Rows)
            Link(U, U + Cols);
          else if (Torus && Rows > 1)
            Link(U, Cc);
        }
      TopoHasDirectives = true;
      continue;
    }
    if (Tok[0] == "edge") {
      if (Tok.size() != 3) {
        Err = lineError(LineNo, "expected: edge <from> <to>");
        return false;
      }
      int From = ResolveUnit(Tok[1]);
      int To = ResolveUnit(Tok[2]);
      if (From < 0 || To < 0) {
        Err = lineError(LineNo, "edge references unknown unit '" +
                                    (From < 0 ? Tok[1] : Tok[2]) + "'");
        return false;
      }
      if (From == To) {
        Err = lineError(LineNo, "topology edge must not be a self-loop");
        return false;
      }
      if (!EnsureTopo().addEdge(From, To)) {
        Err = lineError(LineNo, "duplicate topology edge '" + Tok[1] +
                                    " -> " + Tok[2] + "'");
        return false;
      }
      TopoHasDirectives = true;
      continue;
    }
    if (Tok[0] == "instname") {
      if (Tok.size() != 3) {
        Err = lineError(LineNo, "expected: instname <unit> <name>");
        return false;
      }
      int U = ResolveUnit(Tok[1]);
      if (U < 0) {
        Err = lineError(LineNo, "instname references unknown unit '" +
                                    Tok[1] + "'");
        return false;
      }
      int Clash = EnsureTopo().findUnit(Tok[2]);
      if (Clash >= 0 && Clash != U) {
        Err = lineError(LineNo, "instance name '" + Tok[2] +
                                    "' already in use");
        return false;
      }
      EnsureTopo().setName(U, Tok[2]);
      TopoHasDirectives = true;
      continue;
    }
    if (Tok[0] == "hoplatency") {
      int L = 0;
      if (Tok.size() != 2 || !parseBounded(Tok[1], L) || L < 1) {
        Err = lineError(LineNo, "expected: hoplatency <n >= 1>");
        return false;
      }
      EnsureTopo().setHopLatency(L);
      TopoHasDirectives = true;
      continue;
    }
    if (Tok[0] == "maxhops") {
      int H = 0;
      if (Tok.size() != 2 || !parseBounded(Tok[1], H) || H < -1) {
        Err = lineError(LineNo, "expected: maxhops <n> (-1 = unlimited)");
        return false;
      }
      EnsureTopo().setMaxHops(H);
      TopoHasDirectives = true;
      continue;
    }
    Err = lineError(LineNo, "unknown directive '" + Tok[0] + "'");
    return false;
  }

  if (Types.empty()) {
    Err = lineError(LineNo, "no futype declared");
    return false;
  }
  MachineModel M(MachineName);
  for (PendingType &P : Types) {
    if (!P.HasTable) {
      Err = lineError(LineNo, "futype " + P.Name + " has no table");
      return false;
    }
    int R = M.addFuType(P.Name, P.Count, std::move(P.Table));
    for (ReservationTable &V : P.Variants)
      M.addVariant(R, std::move(V));
  }
  if (Topo)
    M.setTopology(std::move(*Topo));
  Out = std::move(M);
  return true;
}

bool swp::parseLoop(const std::string &Text, const MachineModel &Machine,
                    Ddg &Out, std::string &Err) {
  std::istringstream In(Text);
  std::string Line;
  int LineNo = 0;
  Ddg G;
  std::map<std::string, int> NodeByName;

  while (std::getline(In, Line)) {
    ++LineNo;
    std::vector<std::string> Tok = tokenize(Line);
    if (Tok.empty())
      continue;
    if (Tok[0] == "loop") {
      if (Tok.size() != 2) {
        Err = lineError(LineNo, "expected: loop <name>");
        return false;
      }
      G.setName(Tok[1]);
      continue;
    }
    if (Tok[0] == "node") {
      // node <name> class <cls> latency <n> [variant <v>]
      if (Tok.size() != 6 && Tok.size() != 8) {
        Err = lineError(
            LineNo, "expected: node <name> class <cls> latency <n> "
                    "[variant <v>]");
        return false;
      }
      if (Tok[2] != "class" || Tok[4] != "latency" ||
          (Tok.size() == 8 && Tok[6] != "variant")) {
        Err = lineError(LineNo, "malformed node directive");
        return false;
      }
      if (NodeByName.count(Tok[1])) {
        Err = lineError(LineNo, "duplicate node '" + Tok[1] + "'");
        return false;
      }
      int Class = Machine.findType(Tok[3]);
      if (Class < 0 && !parseInt(Tok[3], Class)) {
        Err = lineError(LineNo, "unknown class '" + Tok[3] + "'");
        return false;
      }
      if (Class < 0 || Class >= Machine.numTypes()) {
        Err = lineError(LineNo, "class out of range: " + Tok[3]);
        return false;
      }
      int Latency = 0;
      if (!parseBounded(Tok[5], Latency) || Latency < 0) {
        Err = lineError(LineNo,
                        "bad or out-of-range latency '" + Tok[5] + "'");
        return false;
      }
      int Variant = 0;
      if (Tok.size() == 8 &&
          (!parseInt(Tok[7], Variant) || Variant < 0 ||
           Variant >= Machine.type(Class).numVariants())) {
        Err = lineError(LineNo, "bad variant '" + Tok[7] + "'");
        return false;
      }
      NodeByName[Tok[1]] =
          G.addNodeVariant(Tok[1], Class, Variant, Latency);
      continue;
    }
    if (Tok[0] == "edge") {
      // edge <src> -> <dst> distance <m> [latency <d>]
      if ((Tok.size() != 6 && Tok.size() != 8) || Tok[2] != "->" ||
          Tok[4] != "distance" || (Tok.size() == 8 && Tok[6] != "latency")) {
        Err = lineError(LineNo, "expected: edge <src> -> <dst> distance <m> "
                                "[latency <d>]");
        return false;
      }
      auto SrcIt = NodeByName.find(Tok[1]);
      auto DstIt = NodeByName.find(Tok[3]);
      if (SrcIt == NodeByName.end() || DstIt == NodeByName.end()) {
        Err = lineError(LineNo, "edge references unknown node");
        return false;
      }
      int Distance = 0;
      if (!parseBounded(Tok[5], Distance) || Distance < 0) {
        Err = lineError(LineNo,
                        "bad or out-of-range distance '" + Tok[5] + "'");
        return false;
      }
      if (Tok.size() == 8) {
        int Latency = 0;
        if (!parseBounded(Tok[7], Latency) || Latency < 0) {
          Err = lineError(LineNo,
                          "bad or out-of-range latency '" + Tok[7] + "'");
          return false;
        }
        G.addEdgeWithLatency(SrcIt->second, DstIt->second, Distance, Latency);
      } else {
        G.addEdge(SrcIt->second, DstIt->second, Distance);
      }
      continue;
    }
    Err = lineError(LineNo, "unknown directive '" + Tok[0] + "'");
    return false;
  }

  if (G.numNodes() == 0) {
    Err = lineError(LineNo, "loop has no nodes");
    return false;
  }
  if (!G.isWellFormed(Machine.numTypes()) || !Machine.acceptsDdg(G)) {
    Err = lineError(LineNo,
                    "loop is malformed for this machine (zero-distance "
                    "cycle?)");
    return false;
  }
  Out = std::move(G);
  return true;
}

Expected<MachineModel> swp::parseMachineText(const std::string &Text) {
  MachineModel M("machine");
  std::string Err;
  if (!parseMachine(Text, M, Err))
    return Status(StatusCode::ParseError, Err).withPhase("parse-machine");
  return M;
}

Expected<Ddg> swp::parseLoopText(const std::string &Text,
                                 const MachineModel &Machine) {
  Ddg G;
  std::string Err;
  if (!parseLoop(Text, Machine, G, Err))
    return Status(StatusCode::ParseError, Err).withPhase("parse-loop");
  return G;
}

namespace {

std::string tableRows(const ReservationTable &Table) {
  std::string Out;
  for (int S = 0; S < Table.numStages(); ++S) {
    Out += ' ';
    for (int L = 0; L < Table.execTime(); ++L)
      Out += Table.busy(S, L) ? '1' : '0';
  }
  return Out;
}

} // namespace

std::string swp::printMachine(const MachineModel &M) {
  std::string Out = "machine " + M.name() + "\n";
  for (int R = 0; R < M.numTypes(); ++R) {
    const FuType &Ty = M.type(R);
    Out += strFormat("futype %s count %d\n", Ty.Name.c_str(), Ty.Count);
    Out += "table" + tableRows(Ty.Table) + "\n";
    for (int V = 1; V < Ty.numVariants(); ++V)
      Out += "variant" + tableRows(Ty.variant(V)) + "\n";
  }
  if (const Topology *Topo = M.topology()) {
    // Names first so edges can refer to them; grids round-trip as their
    // expanded instname/edge form.
    if (Topo->hopLatency() != 1)
      Out += strFormat("hoplatency %d\n", Topo->hopLatency());
    if (Topo->maxHops() >= 0)
      Out += strFormat("maxhops %d\n", Topo->maxHops());
    for (int U = 0; U < Topo->numUnits(); ++U)
      if (Topo->unitName(U) != strFormat("u%d", U))
        Out += strFormat("instname %d %s\n", U, Topo->unitName(U).c_str());
    for (const std::pair<int, int> &E : Topo->edges())
      Out += strFormat("edge %s %s\n", Topo->unitName(E.first).c_str(),
                       Topo->unitName(E.second).c_str());
  }
  return Out;
}

std::string swp::printLoop(const Ddg &G, const MachineModel &Machine) {
  std::string Out = "loop " + G.name() + "\n";
  for (int I = 0; I < G.numNodes(); ++I) {
    const DdgNode &N = G.node(I);
    Out += strFormat("node %s class %s latency %d", N.Name.c_str(),
                     Machine.type(N.OpClass).Name.c_str(), N.Latency);
    if (N.Variant != 0)
      Out += strFormat(" variant %d", N.Variant);
    Out += '\n';
  }
  for (const DdgEdge &E : G.edges())
    Out += strFormat("edge %s -> %s distance %d latency %d\n",
                     G.node(E.Src).Name.c_str(), G.node(E.Dst).Name.c_str(),
                     E.Distance, E.Latency);
  return Out;
}
