//===- IterativeModulo.cpp - Rau's IMS baseline ---------------------------===//

#include "swp/heuristics/IterativeModulo.h"

#include "swp/heuristics/ModuloReservationTable.h"

#include "swp/ddg/Analysis.h"
#include "swp/machine/MachineModel.h"

#include <algorithm>

using namespace swp;

namespace {

/// Height-based priority: longest weighted path (latency - T*distance)
/// from each node onward; higher schedules first.
std::vector<int> computeHeights(const Ddg &G, int T) {
  const int N = G.numNodes();
  std::vector<int> H(static_cast<size_t>(N), 0);
  // Bellman-Ford style relaxation; converges since T >= recurrenceMii
  // implies no positive cycle.
  for (int Pass = 0; Pass < N; ++Pass) {
    bool Changed = false;
    for (const DdgEdge &E : G.edges()) {
      int Cand = H[static_cast<size_t>(E.Dst)] + E.Latency - T * E.Distance;
      if (Cand > H[static_cast<size_t>(E.Src)]) {
        H[static_cast<size_t>(E.Src)] = Cand;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  return H;
}

/// One IMS attempt at a fixed T; fills \p Out on success.
bool scheduleAtT(const Ddg &G, const MachineModel &Machine, int T, int Budget,
                 ModuloSchedule &Out) {
  const int N = G.numNodes();
  std::vector<int> Height = computeHeights(G, T);
  std::vector<int> Time(static_cast<size_t>(N), -1);
  std::vector<int> Unit(static_cast<size_t>(N), -1);
  std::vector<int> PrevTime(static_cast<size_t>(N), -1);
  ModuloReservationTable Tables(Machine, T);
  const int TimeCap = (N + 4) * std::max(T, 1) + 64;

  auto Unschedule = [&](int Node) {
    Tables.releaseRoutes(G, Node);
    Tables.remove(G, Node, Time[static_cast<size_t>(Node)],
                  Unit[static_cast<size_t>(Node)]);
    Time[static_cast<size_t>(Node)] = -1;
    Unit[static_cast<size_t>(Node)] = -1;
  };

  int Remaining = N;
  while (Remaining > 0) {
    if (Budget-- <= 0)
      return false;

    // Highest-priority unscheduled instruction.
    int Node = -1;
    for (int I = 0; I < N; ++I) {
      if (Time[static_cast<size_t>(I)] >= 0)
        continue;
      if (Node < 0 || Height[static_cast<size_t>(I)] >
                          Height[static_cast<size_t>(Node)])
        Node = I;
    }

    // Earliest start from scheduled predecessors.
    int EStart = 0;
    for (const DdgEdge &E : G.edges()) {
      if (E.Dst != Node || Time[static_cast<size_t>(E.Src)] < 0)
        continue;
      EStart = std::max(EStart, Time[static_cast<size_t>(E.Src)] + E.Latency -
                                    T * E.Distance);
    }
    if (EStart > TimeCap)
      return false;

    // Try a window of slots, any unit.  Routing penalties make dependence
    // windows placement-dependent, so the classic T-slot scan grows by the
    // worst-case penalty (0 on topology-free machines).
    int R = G.node(Node).OpClass;
    int PlacedTime = -1, PlacedUnit = -1;
    const int Window = T + Tables.maxRoutePenalty();
    for (int Cand = EStart; Cand < EStart + Window && PlacedTime < 0; ++Cand)
      for (int U = 0; U < Machine.type(R).Count; ++U)
        if (Tables.fits(G, Node, Cand, U) &&
            Tables.topoAdmits(G, Node, Cand, U, Time, Unit)) {
          PlacedTime = Cand;
          PlacedUnit = U;
          break;
        }

    if (PlacedTime < 0) {
      // Force placement, evicting whatever is in the way (Rau's rule:
      // never earlier than the previous placement + 1).
      PlacedTime = EStart;
      if (PrevTime[static_cast<size_t>(Node)] >= 0)
        PlacedTime = std::max(PlacedTime,
                              PrevTime[static_cast<size_t>(Node)] + 1);
      if (PlacedTime > TimeCap)
        return false;
      // Evict from the unit with the fewest conflicts (table collisions
      // plus, with a topology, routing/adjacency victims).
      auto VictimsAt = [&](int U) {
        std::vector<int> V = Tables.conflicts(G, Node, PlacedTime, U);
        for (int W :
             Tables.topoConflicts(G, Node, PlacedTime, U, Time, Unit))
          if (std::find(V.begin(), V.end(), W) == V.end())
            V.push_back(W);
        return V;
      };
      PlacedUnit = 0;
      size_t BestConflicts = SIZE_MAX;
      for (int U = 0; U < Machine.type(R).Count; ++U) {
        size_t C = VictimsAt(U).size();
        if (C < BestConflicts) {
          BestConflicts = C;
          PlacedUnit = U;
        }
      }
      for (int Victim : VictimsAt(PlacedUnit)) {
        Unschedule(Victim);
        ++Remaining;
      }
    }

    Tables.place(G, Node, PlacedTime, PlacedUnit);
    Time[static_cast<size_t>(Node)] = PlacedTime;
    Unit[static_cast<size_t>(Node)] = PlacedUnit;
    PrevTime[static_cast<size_t>(Node)] = PlacedTime;
    Tables.commitRoutes(G, Node, Time, Unit);
    --Remaining;

    // Evict scheduled successors whose dependence is now violated.
    for (const DdgEdge &E : G.edges()) {
      if (E.Src != Node || E.Dst == Node)
        continue;
      int TDst = Time[static_cast<size_t>(E.Dst)];
      if (TDst >= 0 && TDst < PlacedTime + E.Latency - T * E.Distance) {
        Unschedule(E.Dst);
        ++Remaining;
      }
    }
    // Self-loops: a violated self-dependence means this T is hopeless for
    // this placement; the dependence check below catches it via EStart on
    // the next attempt (self edge with Dst == Node re-enters EStart).
    for (const DdgEdge &E : G.edges()) {
      if (E.Src != Node || E.Dst != Node)
        continue;
      if (0 < E.Latency - T * E.Distance)
        return false; // T below the self-recurrence bound.
    }
  }

  Out.T = T;
  Out.StartTime = std::move(Time);
  Out.Mapping = std::move(Unit);
  return true;
}

} // namespace

ImsResult swp::iterativeModuloSchedule(const Ddg &G,
                                       const MachineModel &Machine,
                                       const ImsOptions &Opts) {
  ImsResult Result;
  Result.TDep = recurrenceMii(G);
  Result.TRes = Machine.resourceMii(G);
  Result.TLowerBound = std::max({1, Result.TDep, Result.TRes});
  for (int T = Result.TLowerBound;
       T <= Result.TLowerBound + Opts.MaxTSlack; ++T) {
    if (!Machine.moduloFeasible(G, T))
      continue;
    ModuloSchedule S;
    if (scheduleAtT(G, Machine, T, Opts.BudgetRatio * G.numNodes(), S)) {
      Result.Schedule = std::move(S);
      break;
    }
  }
  return Result;
}
