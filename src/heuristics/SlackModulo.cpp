//===- SlackModulo.cpp - Huff's slack scheduling --------------------------===//

#include "swp/heuristics/SlackModulo.h"

#include "swp/ddg/Analysis.h"
#include "swp/heuristics/ModuloReservationTable.h"

#include <algorithm>

using namespace swp;

namespace {

/// Static earliest starts: longest paths over weights latency - T*distance
/// from a virtual root (all zeros).
std::vector<int> asapTimes(const Ddg &G, int T) {
  const int N = G.numNodes();
  std::vector<int> E(static_cast<size_t>(N), 0);
  for (int Pass = 0; Pass < N; ++Pass) {
    bool Changed = false;
    for (const DdgEdge &Edge : G.edges()) {
      int Cand = E[static_cast<size_t>(Edge.Src)] + Edge.Latency -
                 T * Edge.Distance;
      if (Cand > E[static_cast<size_t>(Edge.Dst)]) {
        E[static_cast<size_t>(Edge.Dst)] = Cand;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  for (int I = 0; I < N; ++I)
    E[static_cast<size_t>(I)] = std::max(E[static_cast<size_t>(I)], 0);
  return E;
}

/// Static latest starts anchored at \p Horizon.
std::vector<int> alapTimes(const Ddg &G, int T, int Horizon) {
  const int N = G.numNodes();
  std::vector<int> L(static_cast<size_t>(N), Horizon);
  for (int Pass = 0; Pass < N; ++Pass) {
    bool Changed = false;
    for (const DdgEdge &Edge : G.edges()) {
      int Cand = L[static_cast<size_t>(Edge.Dst)] - Edge.Latency +
                 T * Edge.Distance;
      if (Cand < L[static_cast<size_t>(Edge.Src)]) {
        L[static_cast<size_t>(Edge.Src)] = Cand;
        Changed = true;
      }
    }
    if (!Changed)
      break;
  }
  return L;
}

bool scheduleAtT(const Ddg &G, const MachineModel &Machine, int T, int Budget,
                 ModuloSchedule &Out) {
  const int N = G.numNodes();
  std::vector<int> Asap = asapTimes(G, T);
  int Horizon = 0;
  for (int V : Asap)
    Horizon = std::max(Horizon, V);
  Horizon += T;
  std::vector<int> Alap = alapTimes(G, T, Horizon);

  std::vector<int> Time(static_cast<size_t>(N), -1);
  std::vector<int> Unit(static_cast<size_t>(N), -1);
  std::vector<int> PrevTime(static_cast<size_t>(N), -1);
  ModuloReservationTable Tables(Machine, T);
  const int TimeCap = (N + 4) * std::max(T, 1) + 64;

  auto Unschedule = [&](int Node) {
    Tables.releaseRoutes(G, Node);
    Tables.remove(G, Node, Time[static_cast<size_t>(Node)],
                  Unit[static_cast<size_t>(Node)]);
    Time[static_cast<size_t>(Node)] = -1;
    Unit[static_cast<size_t>(Node)] = -1;
  };

  int Remaining = N;
  while (Remaining > 0) {
    if (Budget-- <= 0)
      return false;

    // Minimum-slack unscheduled instruction (critical ops first).
    int Node = -1;
    for (int I = 0; I < N; ++I) {
      if (Time[static_cast<size_t>(I)] >= 0)
        continue;
      int SlackI = Alap[static_cast<size_t>(I)] - Asap[static_cast<size_t>(I)];
      if (Node < 0 ||
          SlackI < Alap[static_cast<size_t>(Node)] -
                       Asap[static_cast<size_t>(Node)])
        Node = I;
    }

    // Dynamic window from scheduled neighbours.
    int EStart = 0;
    int LStart = TimeCap;
    int ScheduledPreds = 0, ScheduledSuccs = 0;
    for (const DdgEdge &E : G.edges()) {
      if (E.Dst == Node && E.Src != Node &&
          Time[static_cast<size_t>(E.Src)] >= 0) {
        EStart = std::max(EStart, Time[static_cast<size_t>(E.Src)] +
                                      E.Latency - T * E.Distance);
        ++ScheduledPreds;
      }
      if (E.Src == Node && E.Dst != Node &&
          Time[static_cast<size_t>(E.Dst)] >= 0) {
        LStart = std::min(LStart, Time[static_cast<size_t>(E.Dst)] -
                                      E.Latency + T * E.Distance);
        ++ScheduledSuccs;
      }
    }
    if (EStart > TimeCap)
      return false;
    // A window of at most T slots suffices (resources repeat mod T) —
    // widened by the worst-case routing penalty when the topology makes
    // dependence windows placement-dependent (0 otherwise).
    int WindowHi = std::min(LStart, EStart + T - 1 + Tables.maxRoutePenalty());

    // Direction: consumers-anchored ops go late (shrink the lifetime of
    // the value they produce toward its uses), otherwise early.
    bool Late = ScheduledSuccs > ScheduledPreds;

    int R = G.node(Node).OpClass;
    int PlacedTime = -1, PlacedUnit = -1;
    if (WindowHi >= EStart) {
      if (Late) {
        for (int Cand = WindowHi; Cand >= EStart && PlacedTime < 0; --Cand)
          for (int U = 0; U < Machine.type(R).Count; ++U)
            if (Tables.fits(G, Node, Cand, U) &&
                Tables.topoAdmits(G, Node, Cand, U, Time, Unit)) {
              PlacedTime = Cand;
              PlacedUnit = U;
              break;
            }
      } else {
        for (int Cand = EStart; Cand <= WindowHi && PlacedTime < 0; ++Cand)
          for (int U = 0; U < Machine.type(R).Count; ++U)
            if (Tables.fits(G, Node, Cand, U) &&
                Tables.topoAdmits(G, Node, Cand, U, Time, Unit)) {
              PlacedTime = Cand;
              PlacedUnit = U;
              break;
            }
      }
    }

    if (PlacedTime < 0) {
      // Force placement with eviction (IMS rule).
      PlacedTime = EStart;
      if (PrevTime[static_cast<size_t>(Node)] >= 0)
        PlacedTime = std::max(PlacedTime,
                              PrevTime[static_cast<size_t>(Node)] + 1);
      if (PlacedTime > TimeCap)
        return false;
      // Table collisions plus, with a topology, routing/adjacency victims.
      auto VictimsAt = [&](int U) {
        std::vector<int> V = Tables.conflicts(G, Node, PlacedTime, U);
        for (int W :
             Tables.topoConflicts(G, Node, PlacedTime, U, Time, Unit))
          if (std::find(V.begin(), V.end(), W) == V.end())
            V.push_back(W);
        return V;
      };
      PlacedUnit = 0;
      size_t BestConflicts = SIZE_MAX;
      for (int U = 0; U < Machine.type(R).Count; ++U) {
        size_t C = VictimsAt(U).size();
        if (C < BestConflicts) {
          BestConflicts = C;
          PlacedUnit = U;
        }
      }
      for (int Victim : VictimsAt(PlacedUnit)) {
        Unschedule(Victim);
        ++Remaining;
      }
    }

    Tables.place(G, Node, PlacedTime, PlacedUnit);
    Time[static_cast<size_t>(Node)] = PlacedTime;
    Unit[static_cast<size_t>(Node)] = PlacedUnit;
    PrevTime[static_cast<size_t>(Node)] = PlacedTime;
    Tables.commitRoutes(G, Node, Time, Unit);
    --Remaining;

    // Evict scheduled neighbours whose dependence is now violated.
    for (const DdgEdge &E : G.edges()) {
      if (E.Src == E.Dst)
        continue;
      if (E.Src == Node) {
        int TDst = Time[static_cast<size_t>(E.Dst)];
        if (TDst >= 0 && TDst < PlacedTime + E.Latency - T * E.Distance) {
          Unschedule(E.Dst);
          ++Remaining;
        }
      } else if (E.Dst == Node) {
        int TSrc = Time[static_cast<size_t>(E.Src)];
        if (TSrc >= 0 && PlacedTime < TSrc + E.Latency - T * E.Distance) {
          Unschedule(E.Src);
          ++Remaining;
        }
      }
    }
    for (const DdgEdge &E : G.edges())
      if (E.Src == Node && E.Dst == Node && 0 < E.Latency - T * E.Distance)
        return false; // T below the self-recurrence bound.
  }

  // Late placement can leave everything shifted; normalize to start >= 0
  // (dependences are shift-invariant).
  int MinTime = *std::min_element(Time.begin(), Time.end());
  if (MinTime > 0) {
    // Align the earliest instruction to its offset-preserving residue so
    // the mapping stays valid: shift by a multiple of T.
    int Shift = (MinTime / T) * T;
    for (int &V : Time)
      V -= Shift;
  }

  Out.T = T;
  Out.StartTime = std::move(Time);
  Out.Mapping = std::move(Unit);
  return true;
}

} // namespace

SlackResult swp::slackModuloSchedule(const Ddg &G,
                                     const MachineModel &Machine,
                                     const SlackOptions &Opts) {
  SlackResult Result;
  Result.TDep = recurrenceMii(G);
  Result.TRes = Machine.resourceMii(G);
  Result.TLowerBound = std::max({1, Result.TDep, Result.TRes});
  for (int T = Result.TLowerBound;
       T <= Result.TLowerBound + Opts.MaxTSlack; ++T) {
    if (!Machine.moduloFeasible(G, T))
      continue;
    ModuloSchedule S;
    if (scheduleAtT(G, Machine, T, Opts.BudgetRatio * G.numNodes(), S)) {
      Result.Schedule = std::move(S);
      break;
    }
  }
  return Result;
}
