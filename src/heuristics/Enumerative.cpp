//===- Enumerative.cpp - Exhaustive search --------------------------------===//

#include "swp/heuristics/Enumerative.h"

#include "swp/ddg/Analysis.h"
#include "swp/support/Stopwatch.h"

#include <algorithm>
#include <cmath>

using namespace swp;

namespace {

int ceilDiv(int A, int B) {
  // B > 0.
  return A >= 0 ? (A + B - 1) / B : -((-A) / B);
}

/// Per-T exhaustive search state.
class EnumSearch {
public:
  EnumSearch(const Ddg &G, const MachineModel &Machine, int T,
             const EnumOptions &Opts)
      : G(G), Machine(Machine), T(T), Opts(Opts) {
    const int N = G.numNodes();
    Offset.assign(static_cast<size_t>(N), -1);
    Unit.assign(static_cast<size_t>(N), -1);
    // Unit-usage tables: Busy[type][unit][stage][slot].
    for (int R = 0; R < Machine.numTypes(); ++R) {
      const FuType &Ty = Machine.type(R);
      int Stages = Ty.Table.numStages();
      for (int V = 1; V < Ty.numVariants(); ++V)
        Stages = std::max(Stages, Ty.variant(V).numStages());
      Busy.emplace_back(
          static_cast<size_t>(Ty.Count),
          std::vector<std::vector<bool>>(
              static_cast<size_t>(Stages),
              std::vector<bool>(static_cast<size_t>(T), false)));
      MaxUsedUnit.push_back(-1);
    }
    // Order: scarcest types first (ops / units descending), then index.
    Order.resize(static_cast<size_t>(N));
    for (int I = 0; I < N; ++I)
      Order[static_cast<size_t>(I)] = I;
    std::sort(Order.begin(), Order.end(), [this](int A, int B) {
      double PA = pressure(A), PB = pressure(B);
      if (PA != PB)
        return PA > PB;
      return A < B;
    });
  }

  /// \returns true when a complete assignment was found; Proven reports
  /// whether the search space was exhausted otherwise.
  bool run(ModuloSchedule &Out, bool &Proven, std::int64_t &States) {
    bool Found = dfs(0, Out);
    Proven = !LimitHit;
    States = StateCount;
    return Found;
  }

private:
  double pressure(int Node) const {
    int R = G.node(Node).OpClass;
    return static_cast<double>(G.nodesOfClass(R).size()) /
           static_cast<double>(Machine.type(R).Count);
  }

  bool unitFree(int R, int U, int Off, const ReservationTable &Table) const {
    for (int S = 0; S < Table.numStages(); ++S)
      for (int L : Table.busyColumns(S))
        if (Busy[static_cast<size_t>(R)][static_cast<size_t>(U)]
                [static_cast<size_t>(S)][static_cast<size_t>((Off + L) % T)])
          return false;
    return true;
  }

  void mark(int R, int U, int Off, bool Value,
            const ReservationTable &Table) {
    for (int S = 0; S < Table.numStages(); ++S)
      for (int L : Table.busyColumns(S))
        Busy[static_cast<size_t>(R)][static_cast<size_t>(U)]
            [static_cast<size_t>(S)][static_cast<size_t>((Off + L) % T)] =
            Value;
  }

  /// Bellman-Ford feasibility of the k-difference constraints over the
  /// currently assigned nodes; when \p KOut is non-null (complete
  /// assignment) it receives the K vector.
  bool kFeasible(std::vector<int> *KOut) const {
    const int N = G.numNodes();
    std::vector<int> K(static_cast<size_t>(N), 0);
    for (int Pass = 0; Pass <= N; ++Pass) {
      bool Changed = false;
      for (const DdgEdge &E : G.edges()) {
        if (Offset[static_cast<size_t>(E.Src)] < 0 ||
            Offset[static_cast<size_t>(E.Dst)] < 0)
          continue;
        int W = ceilDiv(E.Latency - T * E.Distance +
                            Offset[static_cast<size_t>(E.Src)] -
                            Offset[static_cast<size_t>(E.Dst)],
                        T);
        int Cand = K[static_cast<size_t>(E.Src)] + W;
        if (Cand > K[static_cast<size_t>(E.Dst)]) {
          if (Pass == N)
            return false; // Positive cycle.
          K[static_cast<size_t>(E.Dst)] = Cand;
          Changed = true;
        }
      }
      if (!Changed)
        break;
    }
    if (KOut)
      *KOut = std::move(K);
    return true;
  }

  bool dfs(int Depth, ModuloSchedule &Out) {
    if (LimitHit)
      return false;
    if (++StateCount >= Opts.MaxStatesPerT ||
        Watch.seconds() >= Opts.TimeLimitPerT) {
      LimitHit = true;
      return false;
    }
    const int N = G.numNodes();
    if (Depth == N) {
      std::vector<int> K;
      if (!kFeasible(&K))
        return false;
      Out.T = T;
      Out.StartTime.assign(static_cast<size_t>(N), 0);
      Out.Mapping.assign(static_cast<size_t>(N), 0);
      for (int I = 0; I < N; ++I) {
        Out.StartTime[static_cast<size_t>(I)] =
            K[static_cast<size_t>(I)] * T + Offset[static_cast<size_t>(I)];
        Out.Mapping[static_cast<size_t>(I)] = Unit[static_cast<size_t>(I)];
      }
      return true;
    }

    int Node = Order[static_cast<size_t>(Depth)];
    int R = G.node(Node).OpClass;
    const FuType &Ty = Machine.type(R);
    for (int Off = 0; Off < T; ++Off) {
      // Symmetry breaking: a fresh unit index may exceed the highest used
      // one by at most 1.
      int UnitCap = std::min(Ty.Count - 1,
                             MaxUsedUnit[static_cast<size_t>(R)] + 1);
      const ReservationTable &Table = Machine.tableFor(G.node(Node));
      for (int U = 0; U <= UnitCap; ++U) {
        if (!unitFree(R, U, Off, Table))
          continue;
        Offset[static_cast<size_t>(Node)] = Off;
        Unit[static_cast<size_t>(Node)] = U;
        mark(R, U, Off, true, Table);
        int SavedMax = MaxUsedUnit[static_cast<size_t>(R)];
        MaxUsedUnit[static_cast<size_t>(R)] = std::max(SavedMax, U);
        bool Ok = kFeasible(nullptr) && dfs(Depth + 1, Out);
        MaxUsedUnit[static_cast<size_t>(R)] = SavedMax;
        mark(R, U, Off, false, Table);
        Offset[static_cast<size_t>(Node)] = -1;
        Unit[static_cast<size_t>(Node)] = -1;
        if (Ok)
          return true;
        if (LimitHit)
          return false;
      }
    }
    return false;
  }

  const Ddg &G;
  const MachineModel &Machine;
  int T;
  const EnumOptions &Opts;
  std::vector<int> Order;
  std::vector<int> Offset;
  std::vector<int> Unit;
  std::vector<std::vector<std::vector<std::vector<bool>>>> Busy;
  std::vector<int> MaxUsedUnit;
  std::int64_t StateCount = 0;
  bool LimitHit = false;
  Stopwatch Watch;
};

} // namespace

EnumResult swp::enumerativeSchedule(const Ddg &G, const MachineModel &Machine,
                                    const EnumOptions &Opts) {
  EnumResult Result;
  Result.TDep = recurrenceMii(G);
  Result.TRes = Machine.resourceMii(G);
  Result.TLowerBound = std::max({1, Result.TDep, Result.TRes});
  // The search tree enumerates offsets and units without routing-hazard
  // pruning, so on a placement-constraining topology it would claim
  // proofs it cannot make.  Report "not found, nothing proven" and let
  // the exact engines (ILP / SAT) handle those machines.
  if (Machine.topologyConstrains())
    return Result;
  bool AllBelowProven = true;
  for (int T = Result.TLowerBound;
       T <= Result.TLowerBound + Opts.MaxTSlack; ++T) {
    if (!Machine.moduloFeasible(G, T))
      continue; // Proven infeasible at this T.
    EnumSearch Search(G, Machine, T, Opts);
    ModuloSchedule S;
    bool Proven = false;
    std::int64_t States = 0;
    bool Found = Search.run(S, Proven, States);
    Result.States += States;
    if (Found) {
      Result.Schedule = std::move(S);
      Result.ProvenRateOptimal = AllBelowProven;
      break;
    }
    if (!Proven)
      AllBelowProven = false;
  }
  return Result;
}
