//===- ModuloReservationTable.cpp - Shared MRT ----------------------------===//

#include "swp/heuristics/ModuloReservationTable.h"

#include <algorithm>
#include <cassert>

using namespace swp;

ModuloReservationTable::ModuloReservationTable(const MachineModel &Machine,
                                               int T)
    : Machine(Machine), T(T) {
  for (int R = 0; R < Machine.numTypes(); ++R) {
    const FuType &Ty = Machine.type(R);
    int Stages = Ty.Table.numStages();
    for (int V = 1; V < Ty.numVariants(); ++V)
      Stages = std::max(Stages, Ty.variant(V).numStages());
    Slots.emplace_back(static_cast<size_t>(Ty.Count),
                       std::vector<std::vector<int>>(
                           static_cast<size_t>(Stages),
                           std::vector<int>(static_cast<size_t>(T), -1)));
  }
  if (Machine.topologyConstrains()) {
    Topo = Machine.topology();
    RouteOcc.assign(static_cast<size_t>(Machine.totalUnits()),
                    std::vector<int>(static_cast<size_t>(T), -1));
  }
}

bool ModuloReservationTable::fits(const Ddg &G, int Node, int Time,
                                  int U) const {
  int R = G.node(Node).OpClass;
  const ReservationTable &Table = Machine.tableFor(G.node(Node));
  for (int S = 0; S < Table.numStages(); ++S)
    for (int L : Table.busyColumns(S)) {
      int Occ = Slots[static_cast<size_t>(R)][static_cast<size_t>(U)]
                     [static_cast<size_t>(S)]
                     [static_cast<size_t>((Time + L) % T)];
      if (Occ >= 0 && Occ != Node)
        return false;
    }
  return true;
}

template <typename Fn>
void ModuloReservationTable::forEachSlot(const Ddg &G, int Node, int Time,
                                         int U, Fn Apply) {
  int R = G.node(Node).OpClass;
  const ReservationTable &Table = Machine.tableFor(G.node(Node));
  for (int S = 0; S < Table.numStages(); ++S)
    for (int L : Table.busyColumns(S))
      Apply(Slots[static_cast<size_t>(R)][static_cast<size_t>(U)]
                 [static_cast<size_t>(S)]
                 [static_cast<size_t>((Time + L) % T)]);
}

void ModuloReservationTable::place(const Ddg &G, int Node, int Time, int U) {
  forEachSlot(G, Node, Time, U, [Node](int &Cell) { Cell = Node; });
}

void ModuloReservationTable::remove(const Ddg &G, int Node, int Time, int U) {
  forEachSlot(G, Node, Time, U, [](int &Cell) { Cell = -1; });
}

std::vector<int> ModuloReservationTable::conflicts(const Ddg &G, int Node,
                                                   int Time, int U) const {
  std::vector<int> Out;
  int R = G.node(Node).OpClass;
  const ReservationTable &Table = Machine.tableFor(G.node(Node));
  for (int S = 0; S < Table.numStages(); ++S)
    for (int L : Table.busyColumns(S)) {
      int Occ = Slots[static_cast<size_t>(R)][static_cast<size_t>(U)]
                     [static_cast<size_t>(S)]
                     [static_cast<size_t>((Time + L) % T)];
      if (Occ >= 0 && Occ != Node &&
          std::find(Out.begin(), Out.end(), Occ) == Out.end())
        Out.push_back(Occ);
    }
  return Out;
}

int ModuloReservationTable::maxRoutePenalty() const {
  return Topo ? Topo->maxRoutePenalty() : 0;
}

std::vector<ModuloReservationTable::RouteCell>
ModuloReservationTable::routeCellsOf(const DdgEdge &E, int SrcGU, int DstGU,
                                     int SrcTime) const {
  std::vector<RouteCell> Cells;
  int Hops = Topo->hops(SrcGU, DstGU);
  for (int Col : Topology::routeColumns(E.Latency, Hops, Topo->hopLatency()))
    Cells.push_back({SrcGU, ((SrcTime + Col) % T + T) % T});
  return Cells;
}

bool ModuloReservationTable::topoAdmits(const Ddg &G, int Node, int Time,
                                        int U,
                                        const std::vector<int> &Times,
                                        const std::vector<int> &Units) const {
  if (!Topo)
    return true;
  int GN = Machine.globalUnitIndex(G.node(Node).OpClass, U);
  std::vector<RouteCell> NewCells;
  for (const DdgEdge &E : G.edges()) {
    if (E.Src == E.Dst)
      continue; // Self-dependences stay on one unit: hops 0, no routing.
    int Other = E.Src == Node ? E.Dst : E.Dst == Node ? E.Src : -1;
    if (Other < 0 || Times[static_cast<size_t>(Other)] < 0)
      continue;
    int GO = Machine.globalUnitIndex(
        G.node(Other).OpClass, Units[static_cast<size_t>(Other)]);
    int GU = E.Src == Node ? GN : GO; // Producer's unit.
    int GV = E.Src == Node ? GO : GN;
    int TS = E.Src == Node ? Time : Times[static_cast<size_t>(Other)];
    int TD = E.Src == Node ? Times[static_cast<size_t>(Other)] : Time;
    if (!Topo->feedAllowed(GU, GV))
      return false;
    if (TD - TS < E.Latency + Topo->routePenalty(GU, GV) - T * E.Distance)
      return false;
    for (const RouteCell &C : routeCellsOf(E, GU, GV, TS)) {
      if (RouteOcc[static_cast<size_t>(C.Unit)]
                  [static_cast<size_t>(C.Slot)] >= 0)
        return false;
      for (const RouteCell &Prev : NewCells)
        if (Prev.Unit == C.Unit && Prev.Slot == C.Slot)
          return false;
      NewCells.push_back(C);
    }
  }
  return true;
}

std::vector<int> ModuloReservationTable::topoConflicts(
    const Ddg &G, int Node, int Time, int U, const std::vector<int> &Times,
    const std::vector<int> &Units) const {
  std::vector<int> Out;
  if (!Topo)
    return Out;
  auto AddVictim = [&Out](int V) {
    if (std::find(Out.begin(), Out.end(), V) == Out.end())
      Out.push_back(V);
  };
  int GN = Machine.globalUnitIndex(G.node(Node).OpClass, U);
  // (Cell, owning neighbor) pairs accepted so far this simulation; a later
  // edge colliding with one evicts its own neighbor instead.
  std::vector<std::pair<RouteCell, int>> NewCells;
  const auto &Edges = G.edges();
  for (size_t EIx = 0; EIx < Edges.size(); ++EIx) {
    const DdgEdge &E = Edges[EIx];
    if (E.Src == E.Dst)
      continue;
    int Other = E.Src == Node ? E.Dst : E.Dst == Node ? E.Src : -1;
    if (Other < 0 || Times[static_cast<size_t>(Other)] < 0)
      continue;
    if (std::find(Out.begin(), Out.end(), Other) != Out.end())
      continue; // Already evicted; its edges go away with it.
    int GO = Machine.globalUnitIndex(
        G.node(Other).OpClass, Units[static_cast<size_t>(Other)]);
    int GU = E.Src == Node ? GN : GO;
    int GV = E.Src == Node ? GO : GN;
    int TS = E.Src == Node ? Time : Times[static_cast<size_t>(Other)];
    int TD = E.Src == Node ? Times[static_cast<size_t>(Other)] : Time;
    if (!Topo->feedAllowed(GU, GV) ||
        TD - TS < E.Latency + Topo->routePenalty(GU, GV) - T * E.Distance) {
      AddVictim(Other);
      continue;
    }
    bool Evicted = false;
    std::vector<RouteCell> Cells = routeCellsOf(E, GU, GV, TS);
    for (size_t CIx = 0; CIx < Cells.size(); ++CIx) {
      const RouteCell &C = Cells[CIx];
      int Owner = RouteOcc[static_cast<size_t>(C.Unit)]
                          [static_cast<size_t>(C.Slot)];
      if (Owner >= 0) {
        // Evicting the committed edge's producer releases its cells.
        AddVictim(Edges[static_cast<size_t>(Owner)].Src);
        // The producer may be this very neighbor; either way this edge's
        // remaining cells stay needed, so keep scanning.
      }
      // An edge whose own columns fold onto one pattern step is infeasible
      // at this (T, placement distance) no matter what else is evicted;
      // dropping the other endpoint forces a different placement for it.
      for (size_t PIx = 0; PIx < CIx && !Evicted; ++PIx)
        if (Cells[PIx].Unit == C.Unit && Cells[PIx].Slot == C.Slot) {
          AddVictim(Other);
          Evicted = true;
        }
      for (const auto &Prev : NewCells)
        if (!Evicted && Prev.first.Unit == C.Unit &&
            Prev.first.Slot == C.Slot) {
          AddVictim(Other); // Intra-placement collision: drop this edge.
          Evicted = true;
        }
    }
    if (!Evicted)
      for (const RouteCell &C : Cells)
        NewCells.push_back({C, Other});
  }
  return Out;
}

void ModuloReservationTable::commitRoutes(const Ddg &G, int Node,
                                          const std::vector<int> &Times,
                                          const std::vector<int> &Units) {
  if (!Topo)
    return;
  const auto &Edges = G.edges();
  if (RouteCells.size() < Edges.size())
    RouteCells.resize(Edges.size());
  for (size_t EIx = 0; EIx < Edges.size(); ++EIx) {
    const DdgEdge &E = Edges[EIx];
    if (E.Src == E.Dst || (E.Src != Node && E.Dst != Node))
      continue;
    int Other = E.Src == Node ? E.Dst : E.Src;
    if (Times[static_cast<size_t>(Other)] < 0 ||
        !RouteCells[EIx].empty())
      continue;
    int GU = Machine.globalUnitIndex(G.node(E.Src).OpClass,
                                     Units[static_cast<size_t>(E.Src)]);
    int GV = Machine.globalUnitIndex(G.node(E.Dst).OpClass,
                                     Units[static_cast<size_t>(E.Dst)]);
    std::vector<RouteCell> Cells =
        routeCellsOf(E, GU, GV, Times[static_cast<size_t>(E.Src)]);
    for (const RouteCell &C : Cells) {
      assert(RouteOcc[static_cast<size_t>(C.Unit)]
                     [static_cast<size_t>(C.Slot)] < 0 &&
             "route cell already owned; placement was not admitted");
      RouteOcc[static_cast<size_t>(C.Unit)][static_cast<size_t>(C.Slot)] =
          static_cast<int>(EIx);
    }
    RouteCells[EIx] = std::move(Cells);
  }
}

void ModuloReservationTable::releaseRoutes(const Ddg &G, int Node) {
  if (!Topo || RouteCells.empty())
    return;
  const auto &Edges = G.edges();
  for (size_t EIx = 0; EIx < Edges.size() && EIx < RouteCells.size();
       ++EIx) {
    const DdgEdge &E = Edges[EIx];
    if (E.Src != Node && E.Dst != Node)
      continue;
    for (const RouteCell &C : RouteCells[EIx])
      if (RouteOcc[static_cast<size_t>(C.Unit)]
                  [static_cast<size_t>(C.Slot)] == static_cast<int>(EIx))
        RouteOcc[static_cast<size_t>(C.Unit)]
                [static_cast<size_t>(C.Slot)] = -1;
    RouteCells[EIx].clear();
  }
}
