//===- ModuloReservationTable.cpp - Shared MRT ----------------------------===//

#include "swp/heuristics/ModuloReservationTable.h"

#include <algorithm>

using namespace swp;

ModuloReservationTable::ModuloReservationTable(const MachineModel &Machine,
                                               int T)
    : Machine(Machine), T(T) {
  for (int R = 0; R < Machine.numTypes(); ++R) {
    const FuType &Ty = Machine.type(R);
    int Stages = Ty.Table.numStages();
    for (int V = 1; V < Ty.numVariants(); ++V)
      Stages = std::max(Stages, Ty.variant(V).numStages());
    Slots.emplace_back(static_cast<size_t>(Ty.Count),
                       std::vector<std::vector<int>>(
                           static_cast<size_t>(Stages),
                           std::vector<int>(static_cast<size_t>(T), -1)));
  }
}

bool ModuloReservationTable::fits(const Ddg &G, int Node, int Time,
                                  int U) const {
  int R = G.node(Node).OpClass;
  const ReservationTable &Table = Machine.tableFor(G.node(Node));
  for (int S = 0; S < Table.numStages(); ++S)
    for (int L : Table.busyColumns(S)) {
      int Occ = Slots[static_cast<size_t>(R)][static_cast<size_t>(U)]
                     [static_cast<size_t>(S)]
                     [static_cast<size_t>((Time + L) % T)];
      if (Occ >= 0 && Occ != Node)
        return false;
    }
  return true;
}

template <typename Fn>
void ModuloReservationTable::forEachSlot(const Ddg &G, int Node, int Time,
                                         int U, Fn Apply) {
  int R = G.node(Node).OpClass;
  const ReservationTable &Table = Machine.tableFor(G.node(Node));
  for (int S = 0; S < Table.numStages(); ++S)
    for (int L : Table.busyColumns(S))
      Apply(Slots[static_cast<size_t>(R)][static_cast<size_t>(U)]
                 [static_cast<size_t>(S)]
                 [static_cast<size_t>((Time + L) % T)]);
}

void ModuloReservationTable::place(const Ddg &G, int Node, int Time, int U) {
  forEachSlot(G, Node, Time, U, [Node](int &Cell) { Cell = Node; });
}

void ModuloReservationTable::remove(const Ddg &G, int Node, int Time, int U) {
  forEachSlot(G, Node, Time, U, [](int &Cell) { Cell = -1; });
}

std::vector<int> ModuloReservationTable::conflicts(const Ddg &G, int Node,
                                                   int Time, int U) const {
  std::vector<int> Out;
  int R = G.node(Node).OpClass;
  const ReservationTable &Table = Machine.tableFor(G.node(Node));
  for (int S = 0; S < Table.numStages(); ++S)
    for (int L : Table.busyColumns(S)) {
      int Occ = Slots[static_cast<size_t>(R)][static_cast<size_t>(U)]
                     [static_cast<size_t>(S)]
                     [static_cast<size_t>((Time + L) % T)];
      if (Occ >= 0 && Occ != Node &&
          std::find(Out.begin(), Out.end(), Occ) == Out.end())
        Out.push_back(Occ);
    }
  return Out;
}
