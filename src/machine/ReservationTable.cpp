//===- ReservationTable.cpp - Pipeline reservation tables -----------------===//

#include "swp/machine/ReservationTable.h"

#include "swp/support/Format.h"

#include <algorithm>
#include <cassert>

using namespace swp;

ReservationTable::ReservationTable(
    std::vector<std::vector<std::uint8_t>> InRows)
    : Rows(std::move(InRows)) {
  assert(!Rows.empty() && "reservation table needs at least one stage");
  for ([[maybe_unused]] const auto &Row : Rows)
    assert(Row.size() == Rows.front().size() &&
           "all stages must cover the same number of cycles");
  assert(!Rows.front().empty() && "reservation table needs >= 1 column");
}

ReservationTable ReservationTable::cleanPipelined(int ExecTime) {
  assert(ExecTime >= 1 && "execution time must be positive");
  std::vector<std::vector<std::uint8_t>> Rows(
      static_cast<size_t>(ExecTime),
      std::vector<std::uint8_t>(static_cast<size_t>(ExecTime), 0));
  for (int S = 0; S < ExecTime; ++S)
    Rows[static_cast<size_t>(S)][static_cast<size_t>(S)] = 1;
  return ReservationTable(std::move(Rows));
}

ReservationTable ReservationTable::nonPipelined(int ExecTime) {
  assert(ExecTime >= 1 && "execution time must be positive");
  std::vector<std::vector<std::uint8_t>> Rows(
      1, std::vector<std::uint8_t>(static_cast<size_t>(ExecTime), 1));
  return ReservationTable(std::move(Rows));
}

std::vector<int> ReservationTable::busyColumns(int Stage) const {
  std::vector<int> Cols;
  for (int L = 0; L < execTime(); ++L)
    if (busy(Stage, L))
      Cols.push_back(L);
  return Cols;
}

bool ReservationTable::satisfiesModuloConstraint(int T) const {
  assert(T >= 1 && "period must be positive");
  for (int S = 0; S < numStages(); ++S) {
    std::vector<bool> Used(static_cast<size_t>(T), false);
    for (int L : busyColumns(S)) {
      int Slot = L % T;
      if (Used[static_cast<size_t>(Slot)])
        return false;
      Used[static_cast<size_t>(Slot)] = true;
    }
  }
  return true;
}

bool ReservationTable::conflictsAtOffset(int DeltaMod, int T) const {
  assert(T >= 1 && DeltaMod >= 0 && DeltaMod < T && "bad offset delta");
  // Op X at offset p, op Y at offset p + Delta: stage s collides iff there
  // are busy columns l1 (for X) and l2 (for Y) with l1 ≡ Delta + l2 (mod T).
  for (int S = 0; S < numStages(); ++S) {
    std::vector<bool> UsedX(static_cast<size_t>(T), false);
    for (int L : busyColumns(S))
      UsedX[static_cast<size_t>(L % T)] = true;
    for (int L : busyColumns(S))
      if (UsedX[static_cast<size_t>((L + DeltaMod) % T)])
        return true;
  }
  return false;
}

bool ReservationTable::isCleanPipelined() const {
  if (numStages() != execTime())
    return false;
  for (int S = 0; S < numStages(); ++S)
    for (int L = 0; L < execTime(); ++L)
      if (busy(S, L) != (S == L))
        return false;
  return true;
}

bool swp::tablesConflictAtOffset(const ReservationTable &A,
                                 const ReservationTable &B, int DeltaMod,
                                 int T) {
  assert(T >= 1 && DeltaMod >= 0 && DeltaMod < T && "bad offset delta");
  // Op X (table A) at offset p, op Y (table B) at offset p + Delta: stage
  // s collides iff there are busy columns l1 in A(s), l2 in B(s) with
  // l1 ≡ l2 + Delta (mod T).
  int Stages = std::min(A.numStages(), B.numStages());
  for (int S = 0; S < Stages; ++S) {
    std::vector<bool> UsedA(static_cast<size_t>(T), false);
    for (int L : A.busyColumns(S))
      UsedA[static_cast<size_t>(L % T)] = true;
    for (int L : B.busyColumns(S))
      if (UsedA[static_cast<size_t>((L + DeltaMod) % T)])
        return true;
  }
  return false;
}

std::string ReservationTable::render() const {
  std::string Out = "        ";
  for (int L = 0; L < execTime(); ++L)
    Out += strFormat("%2d ", L);
  Out += '\n';
  for (int S = 0; S < numStages(); ++S) {
    Out += strFormat("Stage %d ", S + 1);
    for (int L = 0; L < execTime(); ++L)
      Out += strFormat("%2d ", busy(S, L) ? 1 : 0);
    Out += '\n';
  }
  return Out;
}
