//===- MachineModel.cpp - Target machine descriptions ---------------------===//

#include "swp/machine/MachineModel.h"

#include <algorithm>

using namespace swp;

int MachineModel::findType(const std::string &Name) const {
  for (int R = 0; R < numTypes(); ++R)
    if (Types[static_cast<size_t>(R)].Name == Name)
      return R;
  return -1;
}

int MachineModel::totalUnits() const {
  int Total = 0;
  for (const FuType &T : Types)
    Total += T.Count;
  return Total;
}

int MachineModel::globalUnitIndex(int R, int Unit) const {
  assert(R >= 0 && R < numTypes() && "bad type index");
  assert(Unit >= 0 && Unit < Types[static_cast<size_t>(R)].Count &&
         "bad unit index");
  int Base = 0;
  for (int I = 0; I < R; ++I)
    Base += Types[static_cast<size_t>(I)].Count;
  return Base + Unit;
}

bool MachineModel::acceptsDdg(const Ddg &G) const {
  for (const DdgNode &N : G.nodes()) {
    if (N.OpClass < 0 || N.OpClass >= numTypes())
      return false;
    if (N.Variant < 0 ||
        N.Variant >= Types[static_cast<size_t>(N.OpClass)].numVariants())
      return false;
  }
  return true;
}

int MachineModel::resourceMii(const Ddg &G) const {
  assert(acceptsDdg(G) && "DDG does not fit this machine");
  int Best = 0;
  for (int R = 0; R < numTypes(); ++R) {
    const FuType &Ty = Types[static_cast<size_t>(R)];
    std::vector<int> Ops = G.nodesOfClass(R);
    if (Ops.empty())
      continue;
    int MaxStages = 0;
    for (int Op : Ops)
      MaxStages = std::max(MaxStages, tableFor(G.node(Op)).numStages());
    for (int S = 0; S < MaxStages; ++S) {
      int Demand = 0; // Stage-cycles per iteration.
      for (int Op : Ops) {
        const ReservationTable &Table = tableFor(G.node(Op));
        if (S < Table.numStages())
          Demand += static_cast<int>(Table.busyColumns(S).size());
      }
      int Supply = Ty.Count; // Stage-cycles per cycle.
      Best = std::max(Best, (Demand + Supply - 1) / Supply);
    }
  }
  return Best;
}

bool MachineModel::moduloFeasible(const Ddg &G, int T) const {
  for (const DdgNode &N : G.nodes())
    if (!tableFor(N).satisfiesModuloConstraint(T))
      return false;
  return true;
}
