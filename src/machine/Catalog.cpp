//===- Catalog.cpp - Ready-made machine models ----------------------------===//

#include "swp/machine/Catalog.h"

using namespace swp;

namespace {

ReservationTable tableFromRows(
    std::initializer_list<std::initializer_list<int>> Rows) {
  std::vector<std::vector<std::uint8_t>> Data;
  for (const auto &Row : Rows) {
    std::vector<std::uint8_t> R;
    for (int V : Row)
      R.push_back(static_cast<std::uint8_t>(V));
    Data.push_back(std::move(R));
  }
  return ReservationTable(std::move(Data));
}

} // namespace

MachineModel swp::exampleCleanMachine() {
  MachineModel M("example-clean");
  M.addFuType("FP", 1, ReservationTable::cleanPipelined(2));
  M.addFuType("LS", 1, ReservationTable::cleanPipelined(3));
  return M;
}

MachineModel swp::exampleNonPipelinedMachine() {
  MachineModel M("example-nonpipelined");
  M.addFuType("FP", 2, ReservationTable::nonPipelined(2));
  M.addFuType("LS", 1, ReservationTable::cleanPipelined(3));
  return M;
}

MachineModel swp::exampleTwoFpMachine() {
  MachineModel M("example-two-fp");
  M.addFuType("FP", 2, ReservationTable::nonPipelined(2));
  M.addFuType("LS", 1, ReservationTable::cleanPipelined(3));
  return M;
}

MachineModel swp::exampleHazardMachine() {
  MachineModel M("example-hazard");
  M.addFuType("FP", 1,
              tableFromRows({{1, 0, 0}, {0, 1, 0}, {0, 1, 1}}));
  M.addFuType("LS", 1, tableFromRows({{1, 1, 0}, {0, 0, 1}}));
  return M;
}

ReservationTable swp::moduloViolationTable() {
  // Stage 3 busy at columns 1 and 3: collides with itself at T == 2.
  return tableFromRows({{1, 0, 0, 0}, {0, 1, 1, 0}, {0, 1, 0, 1}});
}

MachineModel swp::ppc604Like() {
  MachineModel M("ppc604-like");
  M.addFuType("SCIU", 2, ReservationTable::cleanPipelined(1));
  M.addFuType("MCIU", 1, ReservationTable::nonPipelined(2));
  M.addFuType("FPU", 1,
              tableFromRows({{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 1}}));
  M.addFuType("LSU", 1, ReservationTable::cleanPipelined(2));
  M.addFuType("FDIV", 1, ReservationTable::nonPipelined(6));
  return M;
}

MachineModel swp::ppc604MultiFunction() {
  MachineModel M("ppc604-multifunction");
  M.addFuType("SCIU", 2, ReservationTable::cleanPipelined(1));
  M.addFuType("MCIU", 1, ReservationTable::nonPipelined(2));
  int Fpu = M.addFuType(
      "FPU", 1, tableFromRows({{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 1}}));
  // Divide variant: the iterative divider holds stage 1 for six cycles,
  // then drains through stages 2 and 3.
  M.addVariant(Fpu, tableFromRows({{1, 1, 1, 1, 1, 1, 0, 0},
                                   {0, 0, 0, 0, 0, 0, 1, 0},
                                   {0, 0, 0, 0, 0, 0, 0, 1}}));
  M.addFuType("LSU", 1, ReservationTable::cleanPipelined(2));
  return M;
}

int swp::ppc604FpuDivVariant() { return 1; }

MachineModel swp::cleanVliw() {
  MachineModel M("clean-vliw");
  M.addFuType("SCIU", 2, ReservationTable::cleanPipelined(1));
  M.addFuType("MCIU", 1, ReservationTable::cleanPipelined(2));
  M.addFuType("FPU", 1, ReservationTable::cleanPipelined(4));
  M.addFuType("LSU", 1, ReservationTable::cleanPipelined(2));
  M.addFuType("FDIV", 1, ReservationTable::cleanPipelined(6));
  return M;
}
