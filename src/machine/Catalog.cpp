//===- Catalog.cpp - Ready-made machine models ----------------------------===//

#include "swp/machine/Catalog.h"

#include "swp/support/Format.h"

using namespace swp;

namespace {

ReservationTable tableFromRows(
    std::initializer_list<std::initializer_list<int>> Rows) {
  std::vector<std::vector<std::uint8_t>> Data;
  for (const auto &Row : Rows) {
    std::vector<std::uint8_t> R;
    for (int V : Row)
      R.push_back(static_cast<std::uint8_t>(V));
    Data.push_back(std::move(R));
  }
  return ReservationTable(std::move(Data));
}

} // namespace

MachineModel swp::exampleCleanMachine() {
  MachineModel M("example-clean");
  M.addFuType("FP", 1, ReservationTable::cleanPipelined(2));
  M.addFuType("LS", 1, ReservationTable::cleanPipelined(3));
  return M;
}

MachineModel swp::exampleNonPipelinedMachine() {
  MachineModel M("example-nonpipelined");
  M.addFuType("FP", 2, ReservationTable::nonPipelined(2));
  M.addFuType("LS", 1, ReservationTable::cleanPipelined(3));
  return M;
}

MachineModel swp::exampleTwoFpMachine() {
  MachineModel M("example-two-fp");
  M.addFuType("FP", 2, ReservationTable::nonPipelined(2));
  M.addFuType("LS", 1, ReservationTable::cleanPipelined(3));
  return M;
}

MachineModel swp::exampleHazardMachine() {
  MachineModel M("example-hazard");
  M.addFuType("FP", 1,
              tableFromRows({{1, 0, 0}, {0, 1, 0}, {0, 1, 1}}));
  M.addFuType("LS", 1, tableFromRows({{1, 1, 0}, {0, 0, 1}}));
  return M;
}

ReservationTable swp::moduloViolationTable() {
  // Stage 3 busy at columns 1 and 3: collides with itself at T == 2.
  return tableFromRows({{1, 0, 0, 0}, {0, 1, 1, 0}, {0, 1, 0, 1}});
}

MachineModel swp::ppc604Like() {
  MachineModel M("ppc604-like");
  M.addFuType("SCIU", 2, ReservationTable::cleanPipelined(1));
  M.addFuType("MCIU", 1, ReservationTable::nonPipelined(2));
  M.addFuType("FPU", 1,
              tableFromRows({{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 1}}));
  M.addFuType("LSU", 1, ReservationTable::cleanPipelined(2));
  M.addFuType("FDIV", 1, ReservationTable::nonPipelined(6));
  return M;
}

MachineModel swp::ppc604MultiFunction() {
  MachineModel M("ppc604-multifunction");
  M.addFuType("SCIU", 2, ReservationTable::cleanPipelined(1));
  M.addFuType("MCIU", 1, ReservationTable::nonPipelined(2));
  int Fpu = M.addFuType(
      "FPU", 1, tableFromRows({{1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 1}}));
  // Divide variant: the iterative divider holds stage 1 for six cycles,
  // then drains through stages 2 and 3.
  M.addVariant(Fpu, tableFromRows({{1, 1, 1, 1, 1, 1, 0, 0},
                                   {0, 0, 0, 0, 0, 0, 1, 0},
                                   {0, 0, 0, 0, 0, 0, 0, 1}}));
  M.addFuType("LSU", 1, ReservationTable::cleanPipelined(2));
  return M;
}

int swp::ppc604FpuDivVariant() { return 1; }

MachineModel swp::cleanVliw() {
  MachineModel M("clean-vliw");
  M.addFuType("SCIU", 2, ReservationTable::cleanPipelined(1));
  M.addFuType("MCIU", 1, ReservationTable::cleanPipelined(2));
  M.addFuType("FPU", 1, ReservationTable::cleanPipelined(4));
  M.addFuType("LSU", 1, ReservationTable::cleanPipelined(2));
  M.addFuType("FDIV", 1, ReservationTable::cleanPipelined(6));
  return M;
}

MachineModel swp::cgraGrid(int Rows, int Cols, bool Torus, int MaxHops) {
  MachineModel M(strFormat("cgra-%s-%dx%d", Torus ? "torus" : "mesh", Rows,
                           Cols));
  int Pe = M.addFuType("PE", Rows * Cols, ReservationTable::cleanPipelined(1));
  // Multiplier path: the PE's multiplier blocks issue for 2 cycles.
  M.addVariant(Pe, ReservationTable::nonPipelined(2));
  Topology Topo(Rows * Cols);
  Topo.setMaxHops(MaxHops);
  for (int R = 0; R < Rows; ++R)
    for (int C = 0; C < Cols; ++C)
      Topo.setName(R * Cols + C, strFormat("pe_%d_%d", R, C));
  auto Link = [&Topo](int A, int B) {
    // addEdge dedups the wrap-around of 2-wide tori.
    Topo.addEdge(A, B);
    Topo.addEdge(B, A);
  };
  for (int R = 0; R < Rows; ++R)
    for (int C = 0; C < Cols; ++C) {
      int U = R * Cols + C;
      if (C + 1 < Cols)
        Link(U, U + 1);
      else if (Torus && Cols > 1)
        Link(U, R * Cols);
      if (R + 1 < Rows)
        Link(U, U + Cols);
      else if (Torus && Rows > 1)
        Link(U, C);
    }
  M.setTopology(std::move(Topo));
  return M;
}

int swp::cgraMulVariant() { return 1; }

const std::vector<CatalogEntry> &swp::machineCatalog() {
  static const std::vector<CatalogEntry> Catalog = [] {
    std::vector<CatalogEntry> C = {
        {"example-clean", exampleCleanMachine},
        {"example-nonpipelined", exampleNonPipelinedMachine},
        {"example-two-fp", exampleTwoFpMachine},
        {"example-hazard", exampleHazardMachine},
        {"ppc604-like", ppc604Like},
        {"ppc604-multifunction", ppc604MultiFunction},
        {"clean-vliw", cleanVliw},
    };
    // 2x2 through 6x6 square arrays, mesh and torus.
    C.push_back({"cgra-mesh-2x2", [] { return cgraGrid(2, 2, false); }});
    C.push_back({"cgra-mesh-3x3", [] { return cgraGrid(3, 3, false); }});
    C.push_back({"cgra-mesh-4x4", [] { return cgraGrid(4, 4, false); }});
    C.push_back({"cgra-mesh-5x5", [] { return cgraGrid(5, 5, false); }});
    C.push_back({"cgra-mesh-6x6", [] { return cgraGrid(6, 6, false); }});
    C.push_back({"cgra-torus-2x2", [] { return cgraGrid(2, 2, true); }});
    C.push_back({"cgra-torus-3x3", [] { return cgraGrid(3, 3, true); }});
    C.push_back({"cgra-torus-4x4", [] { return cgraGrid(4, 4, true); }});
    C.push_back({"cgra-torus-5x5", [] { return cgraGrid(5, 5, true); }});
    C.push_back({"cgra-torus-6x6", [] { return cgraGrid(6, 6, true); }});
    return C;
  }();
  return Catalog;
}

bool swp::buildCatalogMachine(const std::string &Name, MachineModel &Out) {
  for (const CatalogEntry &E : machineCatalog())
    if (E.Name == Name) {
      Out = E.Build();
      return true;
    }
  return false;
}
