//===- Topology.cpp - Placement adjacency between units -------------------===//

#include "swp/machine/Topology.h"

#include <algorithm>
#include <cassert>
#include <deque>

using namespace swp;

Topology::Topology(int NumUnits) {
  assert(NumUnits >= 1 && "topology needs at least one unit");
  Names.reserve(static_cast<size_t>(NumUnits));
  for (int U = 0; U < NumUnits; ++U)
    Names.push_back("u" + std::to_string(U));
}

void Topology::setName(int U, std::string Name) {
  assert(U >= 0 && U < numUnits() && "bad unit index");
  Names[static_cast<size_t>(U)] = std::move(Name);
}

const std::string &Topology::unitName(int U) const {
  assert(U >= 0 && U < numUnits() && "bad unit index");
  return Names[static_cast<size_t>(U)];
}

int Topology::findUnit(const std::string &Name) const {
  for (int U = 0; U < numUnits(); ++U)
    if (Names[static_cast<size_t>(U)] == Name)
      return U;
  return -1;
}

bool Topology::addEdge(int From, int To) {
  if (From < 0 || From >= numUnits() || To < 0 || To >= numUnits() ||
      From == To || hasEdge(From, To))
    return false;
  Edges.emplace_back(From, To);
  HopsValid = false;
  return true;
}

bool Topology::hasEdge(int From, int To) const {
  return std::find(Edges.begin(), Edges.end(), std::make_pair(From, To)) !=
         Edges.end();
}

void Topology::setHopLatency(int L) {
  assert(L >= 1 && "hop latency must be positive");
  HopLat = L;
}

void Topology::ensureHopMatrix() const {
  if (HopsValid)
    return;
  const int N = numUnits();
  HopMatrix.assign(static_cast<size_t>(N) * static_cast<size_t>(N), -1);
  std::vector<std::vector<int>> Succ(static_cast<size_t>(N));
  for (const auto &E : Edges)
    Succ[static_cast<size_t>(E.first)].push_back(E.second);
  for (int Src = 0; Src < N; ++Src) {
    int *Row = &HopMatrix[static_cast<size_t>(Src) * static_cast<size_t>(N)];
    Row[Src] = 0;
    std::deque<int> Queue{Src};
    while (!Queue.empty()) {
      int U = Queue.front();
      Queue.pop_front();
      for (int V : Succ[static_cast<size_t>(U)])
        if (Row[V] < 0) {
          Row[V] = Row[U] + 1;
          Queue.push_back(V);
        }
    }
  }
  HopsValid = true;
}

int Topology::hops(int From, int To) const {
  assert(From >= 0 && From < numUnits() && To >= 0 && To < numUnits() &&
         "bad unit index");
  ensureHopMatrix();
  return HopMatrix[static_cast<size_t>(From) *
                       static_cast<size_t>(numUnits()) +
                   static_cast<size_t>(To)];
}

bool Topology::feedAllowed(int From, int To) const {
  int H = hops(From, To);
  return H >= 0 && (MaxHopCount < 0 || H <= MaxHopCount);
}

int Topology::routePenalty(int From, int To) const {
  int H = hops(From, To);
  assert(H >= 0 && "routePenalty on an unreachable pair");
  return HopLat * std::max(0, H - 1);
}

int Topology::maxRoutePenalty() const {
  int Best = 0;
  for (int U = 0; U < numUnits(); ++U)
    for (int V = 0; V < numUnits(); ++V)
      if (feedAllowed(U, V))
        Best = std::max(Best, routePenalty(U, V));
  return Best;
}

bool Topology::constrains() const {
  for (int U = 0; U < numUnits(); ++U)
    for (int V = 0; V < numUnits(); ++V) {
      int H = hops(U, V);
      if (H < 0 || H > 1)
        return true;
    }
  return false;
}

bool Topology::interchangeable(int U, int V) const {
  if (hops(U, V) != hops(V, U))
    return false;
  for (int W = 0; W < numUnits(); ++W) {
    if (W == U || W == V)
      continue;
    if (hops(U, W) != hops(V, W) || hops(W, U) != hops(W, V))
      return false;
  }
  return true;
}

std::vector<std::vector<int>> Topology::interchangeClasses(int Lo,
                                                           int Hi) const {
  assert(Lo >= 0 && Hi <= numUnits() && Lo <= Hi && "bad unit range");
  std::vector<std::vector<int>> Classes;
  for (int U = Lo; U < Hi; ++U) {
    bool Placed = false;
    for (std::vector<int> &C : Classes) {
      bool FitsAll = true;
      for (int V : C)
        if (!interchangeable(U, V)) {
          FitsAll = false;
          break;
        }
      if (FitsAll) {
        C.push_back(U);
        Placed = true;
        break;
      }
    }
    if (!Placed)
      Classes.push_back({U});
  }
  return Classes;
}

std::vector<int> Topology::routeColumns(int EdgeLatency, int Hops,
                                        int HopLat) {
  std::vector<int> Cols;
  for (int K = 0; K + 1 < Hops; ++K)
    Cols.push_back(EdgeLatency + K * HopLat);
  return Cols;
}
