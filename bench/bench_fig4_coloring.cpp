//===- bench_fig4_coloring.cpp - Paper Figure 4 ---------------------------===//
//
// Figure 4: function-unit occupation as circular arcs on the cycle [0, T),
// with the wrap-around instruction splitting into two same-colored
// fragments (the dotted arc), and the coloring = mapping correspondence.
// Prints the arcs of the motivating loop's FP instructions at T = 4 and an
// ILP-optimal coloring next to the first-fit heuristic coloring.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/CircularArcs.h"
#include "swp/core/Driver.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

int main() {
  benchutil::banner("Figure 4 (circular-arc coloring)",
                    "FU occupation arcs; mapping = circular-arc coloring");
  Ddg Loop = motivatingLoop();
  MachineModel Machine = exampleNonPipelinedMachine();

  // The paper's offsets at T = 4: i2 @ 3, i3 @ 1, i4 @ 3.
  const int T = 4;
  std::vector<int> FpOps = Loop.nodesOfClass(0);
  std::vector<int> Offsets = {3, 1, 3};

  std::printf("overlap relation among FP instructions (exec time 2, "
              "non-pipelined):\n");
  for (size_t I = 0; I < FpOps.size(); ++I)
    for (size_t J = I + 1; J < FpOps.size(); ++J)
      std::printf("  %s (off %d) vs %s (off %d): %s\n",
                  Loop.node(FpOps[I]).Name.c_str(), Offsets[I],
                  Loop.node(FpOps[J]).Name.c_str(), Offsets[J],
                  arcsOverlap(Machine.type(0).Table, T, Offsets[I],
                              Offsets[J])
                      ? "overlap -> different units"
                      : "disjoint -> may share a unit");

  std::vector<int> FirstFit =
      firstFitUnitColoring(Machine.type(0).Table, T, Offsets);
  std::printf("\nfirst-fit coloring:\n%s\n",
              renderArcs(Loop, Machine, 0, T, Offsets, FirstFit).c_str());

  // The unified ILP's coloring for the whole loop at its optimum.
  SchedulerResult R = scheduleLoop(Loop, Machine);
  if (R.found() && R.Schedule.hasMapping()) {
    std::vector<int> IlpOffsets, IlpColors;
    for (int Op : FpOps) {
      IlpOffsets.push_back(R.Schedule.offset(Op));
      IlpColors.push_back(R.Schedule.Mapping[static_cast<size_t>(Op)]);
    }
    std::printf("ILP schedule at II = %d with its mapping:\n%s\n",
                R.Schedule.T,
                renderArcs(Loop, Machine, 0, R.Schedule.T, IlpOffsets,
                           IlpColors)
                    .c_str());
  }

  int MaxColor = 0;
  for (int C : FirstFit)
    MaxColor = std::max(MaxColor, C);
  std::printf("paper-shape check: the wrap-around arc exists and 2 FP units "
              "suffice -> %s\n",
              MaxColor + 1 <= Machine.type(0).Count ? "REPRODUCED"
                                                    : "MISMATCH");
  return 0;
}
