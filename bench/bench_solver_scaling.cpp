//===- bench_solver_scaling.cpp - Solver scaling (google-benchmark) -------===//
//
// Scaling study (DESIGN.md): wall-clock of the substrate and the schedulers
// as problem size grows — LP relaxation solves, full MILP feasibility at
// T_lb, IMS, and the enumerative search, each against loop size N.
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/core/Formulation.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/heuristics/Enumerative.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/sat/SatScheduler.h"
#include "swp/service/SchedulerService.h"
#include "swp/solver/BranchAndBound.h"
#include "swp/solver/Simplex.h"
#include "swp/workload/Corpus.h"

#include <benchmark/benchmark.h>

using namespace swp;

namespace {

/// A deterministic loop of exactly \p N nodes (the generator's size cap and
/// floor coincide).
Ddg loopOfSize(int N, std::uint64_t Seed) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.MaxNodes = N;
  Opts.MeanExtraNodes = 1000.0; // Saturate the cap: size is exactly N.
  return generateRandomLoop(M, Seed, Opts);
}

void BM_LpRelaxation(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 42);
  int T = std::max({1, recurrenceMii(G), M.resourceMii(G)});
  while (!M.moduloFeasible(G, T))
    ++T;
  FormulationOptions FOpts;
  FormulationVars Vars;
  MilpModel Model = buildScheduleModel(G, M, T, FOpts, Vars);
  for (auto _ : State) {
    LpResult R = solveLp(Model);
    benchmark::DoNotOptimize(R.Objective);
  }
  State.counters["vars"] = Model.numVars();
  State.counters["rows"] = Model.numConstraints();
}
BENCHMARK(BM_LpRelaxation)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_MilpAtTlb(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 43);
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 5.0;
  Opts.MaxTSlack = 0; // Only the first feasibility question.
  for (auto _ : State) {
    SchedulerResult R = scheduleLoop(G, M, Opts);
    benchmark::DoNotOptimize(R.TotalNodes);
  }
}
BENCHMARK(BM_MilpAtTlb)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

/// The CDCL SAT backend answering the same first feasibility question as
/// BM_MilpAtTlb (same loops, same window) — the two curves are directly
/// comparable.
void BM_SatAtTlb(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 43);
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 5.0;
  Opts.MaxTSlack = 0;
  for (auto _ : State) {
    SchedulerResult R = satScheduleLoop(G, M, Opts);
    benchmark::DoNotOptimize(R.TotalNodes);
  }
}
BENCHMARK(BM_SatAtTlb)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

/// Full rate-optimal search, both engines, as loop size grows: what the
/// portfolio's exact rung costs per engine.
void BM_IlpFullSearch(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 48);
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 5.0;
  Opts.MaxTSlack = 8;
  for (auto _ : State) {
    SchedulerResult R = scheduleLoop(G, M, Opts);
    benchmark::DoNotOptimize(R.TotalNodes);
  }
}
BENCHMARK(BM_IlpFullSearch)->Arg(4)->Arg(8)->Arg(12);

void BM_SatFullSearch(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 48);
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 5.0;
  Opts.MaxTSlack = 8;
  for (auto _ : State) {
    SchedulerResult R = satScheduleLoop(G, M, Opts);
    benchmark::DoNotOptimize(R.TotalNodes);
  }
}
BENCHMARK(BM_SatFullSearch)->Arg(4)->Arg(8)->Arg(12);

void BM_IterativeModulo(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 44);
  for (auto _ : State) {
    ImsResult R = iterativeModuloSchedule(G, M);
    benchmark::DoNotOptimize(R.Schedule.T);
  }
}
BENCHMARK(BM_IterativeModulo)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_Enumerative(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 45);
  EnumOptions Opts;
  Opts.TimeLimitPerT = 5.0;
  for (auto _ : State) {
    EnumResult R = enumerativeSchedule(G, M, Opts);
    benchmark::DoNotOptimize(R.States);
  }
}
BENCHMARK(BM_Enumerative)->Arg(4)->Arg(6)->Arg(8);

void BM_RecurrenceMii(benchmark::State &State) {
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 46);
  for (auto _ : State) {
    int Mii = recurrenceMii(G);
    benchmark::DoNotOptimize(Mii);
  }
}
BENCHMARK(BM_RecurrenceMii)->Arg(8)->Arg(16)->Arg(24);

/// Batch throughput of the scheduling service over a fixed 64-loop corpus
/// slice as the worker count grows (Arg = jobs).  Real time, not CPU time:
/// the point is wall-clock parallel speedup.  The cache is off so every
/// iteration solves cold.
void BM_ServiceBatch(benchmark::State &State) {
  MachineModel M = ppc604Like();
  CorpusOptions COpts;
  COpts.NumLoops = 64;
  std::vector<Ddg> Corpus = generateCorpus(M, COpts);
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = static_cast<int>(State.range(0));
  SvcOpts.Sched.TimeLimitPerT = 2.0;
  SvcOpts.Sched.MaxTSlack = 12;
  SvcOpts.UseCache = false;
  for (auto _ : State) {
    SchedulerService Svc(M, SvcOpts);
    std::vector<SchedulerResult> Results = Svc.scheduleAll(Corpus);
    benchmark::DoNotOptimize(Results.size());
  }
  State.counters["loops"] = static_cast<double>(Corpus.size());
  State.counters["jobs"] = static_cast<double>(SvcOpts.Jobs);
}
BENCHMARK(BM_ServiceBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_VerifierThroughput(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 47);
  ImsResult R = iterativeModuloSchedule(G, M);
  if (!R.found()) {
    State.SkipWithError("no schedule");
    return;
  }
  for (auto _ : State) {
    auto V = verifySchedule(G, M, R.Schedule);
    benchmark::DoNotOptimize(V.Ok);
  }
}
BENCHMARK(BM_VerifierThroughput)->Arg(8)->Arg(16);

} // namespace

BENCHMARK_MAIN();
