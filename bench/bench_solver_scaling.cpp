//===- bench_solver_scaling.cpp - Solver scaling (google-benchmark) -------===//
//
// Scaling study (DESIGN.md): wall-clock of the substrate and the schedulers
// as problem size grows — LP relaxation solves, full MILP feasibility at
// T_lb, IMS, and the enumerative search, each against loop size N.
//
// With SWP_PERF_SMOKE set the binary runs the CI regression gate instead
// of the google-benchmark suite: the rate-optimal ILP solves a pinned tiny
// corpus under deterministic limits and the *counter* totals (simplex
// pivots, B&B nodes, LP solves) are compared against the checked-in
// reference (bench/perf_smoke_ref.json, override via SWP_PERF_REF).  Any
// counter exceeding 3x its reference — or a drop in found/proven loops —
// fails the gate.  Counters, not wall-clock, so a loaded CI runner cannot
// flake the job; SWP_PERF_SMOKE=write regenerates the reference after an
// intentional solver change.
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/core/Formulation.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/heuristics/Enumerative.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/sat/SatScheduler.h"
#include "swp/service/SchedulerService.h"
#include "swp/solver/BranchAndBound.h"
#include "swp/solver/Simplex.h"
#include "swp/workload/Corpus.h"

#include "swp/support/Format.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace swp;

namespace {

/// A deterministic loop of exactly \p N nodes (the generator's size cap and
/// floor coincide).
Ddg loopOfSize(int N, std::uint64_t Seed) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.MaxNodes = N;
  Opts.MeanExtraNodes = 1000.0; // Saturate the cap: size is exactly N.
  return generateRandomLoop(M, Seed, Opts);
}

void BM_LpRelaxation(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 42);
  int T = std::max({1, recurrenceMii(G), M.resourceMii(G)});
  while (!M.moduloFeasible(G, T))
    ++T;
  FormulationOptions FOpts;
  FormulationVars Vars;
  MilpModel Model = buildScheduleModel(G, M, T, FOpts, Vars);
  for (auto _ : State) {
    LpResult R = solveLp(Model);
    benchmark::DoNotOptimize(R.Objective);
  }
  State.counters["vars"] = Model.numVars();
  State.counters["rows"] = Model.numConstraints();
}
BENCHMARK(BM_LpRelaxation)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_MilpAtTlb(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 43);
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 5.0;
  Opts.MaxTSlack = 0; // Only the first feasibility question.
  for (auto _ : State) {
    SchedulerResult R = scheduleLoop(G, M, Opts);
    benchmark::DoNotOptimize(R.TotalNodes);
  }
}
BENCHMARK(BM_MilpAtTlb)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

/// The CDCL SAT backend answering the same first feasibility question as
/// BM_MilpAtTlb (same loops, same window) — the two curves are directly
/// comparable.
void BM_SatAtTlb(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 43);
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 5.0;
  Opts.MaxTSlack = 0;
  for (auto _ : State) {
    SchedulerResult R = satScheduleLoop(G, M, Opts);
    benchmark::DoNotOptimize(R.TotalNodes);
  }
}
BENCHMARK(BM_SatAtTlb)->Arg(4)->Arg(6)->Arg(8)->Arg(10)->Arg(12);

/// Full rate-optimal search, both engines, as loop size grows: what the
/// portfolio's exact rung costs per engine.
void BM_IlpFullSearch(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 48);
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 5.0;
  Opts.MaxTSlack = 8;
  for (auto _ : State) {
    SchedulerResult R = scheduleLoop(G, M, Opts);
    benchmark::DoNotOptimize(R.TotalNodes);
  }
}
BENCHMARK(BM_IlpFullSearch)->Arg(4)->Arg(8)->Arg(12);

void BM_SatFullSearch(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 48);
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 5.0;
  Opts.MaxTSlack = 8;
  for (auto _ : State) {
    SchedulerResult R = satScheduleLoop(G, M, Opts);
    benchmark::DoNotOptimize(R.TotalNodes);
  }
}
BENCHMARK(BM_SatFullSearch)->Arg(4)->Arg(8)->Arg(12);

void BM_IterativeModulo(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 44);
  for (auto _ : State) {
    ImsResult R = iterativeModuloSchedule(G, M);
    benchmark::DoNotOptimize(R.Schedule.T);
  }
}
BENCHMARK(BM_IterativeModulo)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_Enumerative(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 45);
  EnumOptions Opts;
  Opts.TimeLimitPerT = 5.0;
  for (auto _ : State) {
    EnumResult R = enumerativeSchedule(G, M, Opts);
    benchmark::DoNotOptimize(R.States);
  }
}
BENCHMARK(BM_Enumerative)->Arg(4)->Arg(6)->Arg(8);

void BM_RecurrenceMii(benchmark::State &State) {
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 46);
  for (auto _ : State) {
    int Mii = recurrenceMii(G);
    benchmark::DoNotOptimize(Mii);
  }
}
BENCHMARK(BM_RecurrenceMii)->Arg(8)->Arg(16)->Arg(24);

/// Batch throughput of the scheduling service over a fixed 64-loop corpus
/// slice as the worker count grows (Arg = jobs).  Real time, not CPU time:
/// the point is wall-clock parallel speedup.  The cache is off so every
/// iteration solves cold.
void BM_ServiceBatch(benchmark::State &State) {
  MachineModel M = ppc604Like();
  CorpusOptions COpts;
  COpts.NumLoops = 64;
  std::vector<Ddg> Corpus = generateCorpus(M, COpts);
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = static_cast<int>(State.range(0));
  SvcOpts.Sched.TimeLimitPerT = 2.0;
  SvcOpts.Sched.MaxTSlack = 12;
  SvcOpts.UseCache = false;
  for (auto _ : State) {
    SchedulerService Svc(M, SvcOpts);
    std::vector<SchedulerResult> Results = Svc.scheduleAll(Corpus);
    benchmark::DoNotOptimize(Results.size());
  }
  State.counters["loops"] = static_cast<double>(Corpus.size());
  State.counters["jobs"] = static_cast<double>(SvcOpts.Jobs);
}
BENCHMARK(BM_ServiceBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_VerifierThroughput(benchmark::State &State) {
  MachineModel M = ppc604Like();
  Ddg G = loopOfSize(static_cast<int>(State.range(0)), 47);
  ImsResult R = iterativeModuloSchedule(G, M);
  if (!R.found()) {
    State.SkipWithError("no schedule");
    return;
  }
  for (auto _ : State) {
    auto V = verifySchedule(G, M, R.Schedule);
    benchmark::DoNotOptimize(V.Ok);
  }
}
BENCHMARK(BM_VerifierThroughput)->Arg(8)->Arg(16);

//===----------------------------------------------------------------------===//
// CI perf-smoke gate (SWP_PERF_SMOKE)
//===----------------------------------------------------------------------===//

/// Deterministic effort totals of the ILP over the pinned smoke corpus.
struct SmokeTotals {
  long long Pivots = 0;
  long long Nodes = 0;
  long long Solves = 0;
  long long Refactorizations = 0;
  long long Found = 0;
  long long Proven = 0;
  double Seconds = 0.0; // Informational only — never gated.
};

SmokeTotals runSmokeCorpus() {
  MachineModel M = ppc604Like();
  CorpusOptions COpts;
  COpts.NumLoops = 48;
  COpts.MaxNodes = 16;
  std::vector<Ddg> Corpus = generateCorpus(M, COpts);

  // Only deterministic limits: a node budget bounds a runaway regression,
  // a wall-clock limit would make the counters depend on machine speed.
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 1e9;
  Opts.NodeLimitPerT = 5000;
  Opts.MaxTSlack = 6;

  SmokeTotals T;
  for (const Ddg &G : Corpus) {
    SchedulerResult R = scheduleLoop(G, M, Opts);
    T.Pivots += R.TotalLp.Pivots;
    T.Nodes += R.TotalNodes;
    T.Solves += R.TotalLp.Solves;
    T.Refactorizations += R.TotalLp.Refactorizations;
    T.Found += R.found() ? 1 : 0;
    T.Proven += R.ProvenRateOptimal ? 1 : 0;
    T.Seconds += R.TotalSeconds;
  }
  return T;
}

std::string smokeJson(const SmokeTotals &T) {
  return strFormat("{\n  \"pivots\": %lld,\n  \"nodes\": %lld,\n"
                   "  \"solves\": %lld,\n  \"refactorizations\": %lld,\n"
                   "  \"found\": %lld,\n  \"proven\": %lld,\n"
                   "  \"seconds\": %.3f\n}\n",
                   T.Pivots, T.Nodes, T.Solves, T.Refactorizations, T.Found,
                   T.Proven, T.Seconds);
}

/// Pulls `"key": <integer>` out of the flat reference JSON; \returns -1
/// when the key is missing (treated as a malformed reference).
long long refField(const std::string &Json, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\":";
  std::size_t At = Json.find(Needle);
  if (At == std::string::npos)
    return -1;
  return std::atoll(Json.c_str() + At + Needle.size());
}

int perfSmoke(bool WriteRef) {
  const char *RefEnv = std::getenv("SWP_PERF_REF");
  std::string RefPath = RefEnv ? RefEnv : "bench/perf_smoke_ref.json";

  SmokeTotals Cur = runSmokeCorpus();
  std::printf("perf-smoke totals (48-loop pinned corpus):\n%s",
              smokeJson(Cur).c_str());

  if (WriteRef) {
    std::FILE *Out = std::fopen(RefPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", RefPath.c_str());
      return 1;
    }
    std::fputs(smokeJson(Cur).c_str(), Out);
    std::fclose(Out);
    std::printf("wrote reference %s\n", RefPath.c_str());
    return 0;
  }

  std::FILE *In = std::fopen(RefPath.c_str(), "r");
  if (!In) {
    std::fprintf(stderr, "error: reference %s not found (run with "
                         "SWP_PERF_SMOKE=write to create it)\n",
                 RefPath.c_str());
    return 1;
  }
  std::string Ref;
  char Buf[256];
  while (std::size_t Got = std::fread(Buf, 1, sizeof(Buf), In))
    Ref.append(Buf, Got);
  std::fclose(In);

  int Failures = 0;
  auto GateCeiling = [&](const char *Key, long long Have) {
    long long Want = refField(Ref, Key);
    if (Want < 0) {
      std::fprintf(stderr, "FAIL %s: missing from reference\n", Key);
      ++Failures;
      return;
    }
    long long Limit = 3 * (Want < 1 ? 1 : Want);
    std::printf("  %-16s %8lld vs ref %8lld (limit %lld) %s\n", Key, Have,
                Want, Limit, Have > Limit ? "FAIL" : "ok");
    if (Have > Limit)
      ++Failures;
  };
  auto GateFloor = [&](const char *Key, long long Have) {
    long long Want = refField(Ref, Key);
    if (Want < 0) {
      std::fprintf(stderr, "FAIL %s: missing from reference\n", Key);
      ++Failures;
      return;
    }
    std::printf("  %-16s %8lld vs ref %8lld (floor) %s\n", Key, Have, Want,
                Have < Want ? "FAIL" : "ok");
    if (Have < Want)
      ++Failures;
  };
  std::printf("gate (>3x a counter fails; fewer found/proven fails):\n");
  GateCeiling("pivots", Cur.Pivots);
  GateCeiling("nodes", Cur.Nodes);
  GateCeiling("solves", Cur.Solves);
  GateFloor("found", Cur.Found);
  GateFloor("proven", Cur.Proven);
  if (Failures) {
    std::fprintf(stderr, "perf-smoke: %d gate failure(s)\n", Failures);
    return 1;
  }
  std::printf("perf-smoke: ok\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (const char *Mode = std::getenv("SWP_PERF_SMOKE"))
    return perfSmoke(std::strcmp(Mode, "write") == 0);
  benchmark::Initialize(&Argc, Argv);
  if (benchmark::ReportUnrecognizedArguments(Argc, Argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
