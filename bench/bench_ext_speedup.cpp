//===- bench_ext_speedup.cpp - SWP speedup over dynamic issue -------------===//
//
// Motivation bench: the paper's premise is that software pipelining
// exploits cross-iteration parallelism hardware alone cannot.  Using the
// cycle-accurate dynamic-issue simulator, compare the steady-state
// cycles/iteration of (a) 4-wide in-order issue, (b) unlimited
// out-of-order issue, and (c) the rate-optimal software-pipelined II, on
// the classic kernels on the PPC604-like machine.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/machine/Catalog.h"
#include "swp/sim/DynamicSimulator.h"
#include "swp/support/Format.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

int main() {
  benchutil::banner("Motivation: software pipelining vs dynamic issue",
                    "Steady-state cycles/iteration; speedup = in-order / II");
  MachineModel Machine = ppc604Like();
  SchedulerOptions SOpts;
  SOpts.TimeLimitPerT = benchutil::envDouble("SWP_TIME_LIMIT", 5.0);

  TextTable Table;
  Table.setHeader({"kernel", "in-order", "out-of-order", "SWP II",
                   "speedup"});
  double SumInOrder = 0.0, SumIi = 0.0;
  int SwpNoWorse = 0, Rows = 0;
  for (const Ddg &G : classicKernels()) {
    SchedulerResult R = scheduleLoop(G, Machine, SOpts);
    if (!R.found())
      continue;
    SimOptions InOrder;
    InOrder.InOrder = true;
    InOrder.IssueWidth = 4;
    SimOptions Ooo;
    Ooo.InOrder = false;
    Ooo.IssueWidth = 0;
    double RateIn = simulateDynamicIssue(G, Machine, InOrder)
                        .CyclesPerIteration;
    double RateOoo = simulateDynamicIssue(G, Machine, Ooo)
                         .CyclesPerIteration;
    ++Rows;
    SumInOrder += RateIn;
    SumIi += R.Schedule.T;
    // Allow finite-horizon boundary slack on the comparison.
    if (R.Schedule.T <= RateIn + 0.5)
      ++SwpNoWorse;
    Table.addRow({G.name(), strFormat("%.2f", RateIn),
                  strFormat("%.2f", RateOoo),
                  std::to_string(R.Schedule.T),
                  strFormat("%.2fx", RateIn / R.Schedule.T)});
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("mean cycles/iteration: in-order %.2f vs SWP %.2f "
              "(mean speedup %.2fx)\n\n",
              SumInOrder / Rows, SumIi / Rows, SumInOrder / SumIi);
  std::printf("shape checks:\n");
  std::printf("  SWP II <= in-order rate on every kernel -> %s\n",
              SwpNoWorse == Rows ? "REPRODUCED" : "MISMATCH");
  std::printf("  software pipelining yields a clear mean speedup -> %s\n",
              SumInOrder / SumIi > 1.2 ? "REPRODUCED" : "MISMATCH");
  return 0;
}
