//===- bench_service_throughput.cpp - swpd sustained throughput -----------===//
//
// Sustained-throughput benchmark for the swpd daemon stack: wire protocol,
// admission control, keyed services, and the persistent result cache, all
// exercised end to end over a real local socket.  Three phases:
//
//   cold       — fresh daemon, empty cache; every corpus loop is a real
//                solve.  Baseline qps and latency.
//   warm       — the daemon is stopped (saving its snapshot) and restarted
//                from the snapshot directory; the same requests replay and
//                should be served almost entirely from the warm cache.
//   saturated  — a deliberately tiny admission window (MaxInFlight=1) is
//                driven by many concurrent clients; requests beyond the
//                window are shed with a well-formed response.  The phase
//                asserts the robustness contract: every request gets an
//                answer, none hang, none vanish.
//
// Emits BENCH_service.json (override with SWP_BENCH_JSON) with per-phase
// qps, p50/p99 latency, cache hit ratio, and shed rate.
//
// Env: SWP_BENCH_LOOPS (default 48 corpus loops), SWP_BENCH_CLIENTS
// (default 4 concurrent connections), SWP_BENCH_JSON (output path),
// SWP_TIME_LIMIT (per-T solver limit, default 60s — effort is bounded by
// a node limit instead, so results stay deterministic and cacheable).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/machine/Catalog.h"
#include "swp/net/Client.h"
#include "swp/net/Daemon.h"
#include "swp/support/Stopwatch.h"
#include "swp/textio/Parser.h"
#include "swp/workload/Corpus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace swp;
using namespace swp::net;

namespace {

struct PhaseResult {
  std::string Name;
  std::uint64_t Requests = 0;
  std::uint64_t Solved = 0;
  std::uint64_t Shed = 0;
  std::uint64_t Degraded = 0; // Non-None degradation on an answered request.
  std::uint64_t CacheHits = 0;
  std::uint64_t TransportErrors = 0;
  double WallSeconds = 0.0;
  std::vector<double> LatenciesMs;

  double qps() const { return WallSeconds > 0 ? Requests / WallSeconds : 0; }
  double hitRatio() const { return Solved ? double(CacheHits) / Solved : 0; }
  double shedRate() const { return Requests ? double(Shed) / Requests : 0; }
  double percentileMs(double P) const {
    if (LatenciesMs.empty())
      return 0;
    std::vector<double> S = LatenciesMs;
    std::sort(S.begin(), S.end());
    std::size_t Idx = static_cast<std::size_t>(std::ceil(P * S.size()));
    return S[std::min(Idx ? Idx - 1 : 0, S.size() - 1)];
  }
};

/// Drives \p Requests through \p Clients concurrent connections; each
/// client takes a strided slice so every request is sent exactly once.
PhaseResult drivePhase(const std::string &Name, const std::string &SocketPath,
                       const std::vector<ScheduleRequestMsg> &Requests,
                       int Clients) {
  PhaseResult Out;
  Out.Name = Name;
  std::mutex Mu;
  Stopwatch Wall;
  std::vector<std::thread> Pool;
  for (int C = 0; C < Clients; ++C) {
    Pool.emplace_back([&, C] {
      Expected<DaemonClient> Conn = DaemonClient::connect(SocketPath, 30.0);
      PhaseResult Local;
      for (std::size_t I = C; I < Requests.size();
           I += static_cast<std::size_t>(Clients)) {
        ++Local.Requests;
        if (!Conn.ok()) {
          ++Local.TransportErrors;
          continue;
        }
        Stopwatch One;
        Expected<ScheduleResponseMsg> R = Conn->schedule(Requests[I]);
        Local.LatenciesMs.push_back(One.seconds() * 1e3);
        if (!R.ok()) {
          ++Local.TransportErrors;
          continue;
        }
        if (R->Outcome == ResponseOutcome::Shed)
          ++Local.Shed;
        else if (R->Degradation != DegradationLevel::None)
          ++Local.Degraded;
        if (R->Outcome == ResponseOutcome::Solved) {
          ++Local.Solved;
          if (R->Result.CacheHit)
            ++Local.CacheHits;
        }
      }
      std::lock_guard<std::mutex> Lock(Mu);
      Out.Requests += Local.Requests;
      Out.Solved += Local.Solved;
      Out.Shed += Local.Shed;
      Out.Degraded += Local.Degraded;
      Out.CacheHits += Local.CacheHits;
      Out.TransportErrors += Local.TransportErrors;
      Out.LatenciesMs.insert(Out.LatenciesMs.end(), Local.LatenciesMs.begin(),
                             Local.LatenciesMs.end());
    });
  }
  for (std::thread &T : Pool)
    T.join();
  Out.WallSeconds = Wall.seconds();
  return Out;
}

void printPhase(const PhaseResult &P) {
  std::printf("%-10s %6llu req  %8.1f qps  p50 %8.3f ms  p99 %8.3f ms  "
              "hits %.2f  shed %.2f  degraded %llu  xport-err %llu\n",
              P.Name.c_str(), static_cast<unsigned long long>(P.Requests),
              P.qps(), P.percentileMs(0.50), P.percentileMs(0.99),
              P.hitRatio(), P.shedRate(),
              static_cast<unsigned long long>(P.Degraded),
              static_cast<unsigned long long>(P.TransportErrors));
}

void emitJson(const std::string &Path, const std::vector<PhaseResult> &Phases,
              int Loops, int Clients) {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "cannot write %s\n", Path.c_str());
    return;
  }
  std::fprintf(F, "{\n  \"bench\": \"service_throughput\",\n");
  std::fprintf(F, "  \"machine\": \"ppc604-like\",\n");
  std::fprintf(F, "  \"corpus_loops\": %d,\n  \"clients\": %d,\n", Loops,
               Clients);
  std::fprintf(F, "  \"phases\": [\n");
  for (std::size_t I = 0; I < Phases.size(); ++I) {
    const PhaseResult &P = Phases[I];
    std::fprintf(
        F,
        "    {\"phase\":\"%s\",\"requests\":%llu,\"qps\":%.1f,"
        "\"p50_ms\":%.3f,\"p99_ms\":%.3f,\"cache_hit_ratio\":%.3f,"
        "\"shed_rate\":%.3f,\"solved\":%llu,\"shed\":%llu,\"degraded\":%llu,"
        "\"transport_errors\":%llu,\"wall_seconds\":%.3f}%s\n",
        P.Name.c_str(), static_cast<unsigned long long>(P.Requests), P.qps(),
        P.percentileMs(0.50), P.percentileMs(0.99), P.hitRatio(), P.shedRate(),
        static_cast<unsigned long long>(P.Solved),
        static_cast<unsigned long long>(P.Shed),
        static_cast<unsigned long long>(P.Degraded),
        static_cast<unsigned long long>(P.TransportErrors), P.WallSeconds,
        I + 1 < Phases.size() ? "," : "");
  }
  std::fprintf(F, "  ]\n}\n");
  std::fclose(F);
  std::printf("\nwrote %s\n", Path.c_str());
}

} // namespace

int main() {
  benchutil::banner(
      "Service extension (swpd sustained throughput)",
      "Daemon qps/latency cold, warm-from-snapshot, and saturated");

  int Loops = benchutil::envInt("SWP_BENCH_LOOPS", 48);
  int Clients = benchutil::envInt("SWP_BENCH_CLIENTS", 4);
  const char *JsonEnv = std::getenv("SWP_BENCH_JSON");
  std::string JsonPath = JsonEnv ? JsonEnv : "BENCH_service.json";

  MachineModel Machine = ppc604Like();
  CorpusOptions COpts;
  COpts.NumLoops = Loops;
  std::vector<Ddg> Corpus = generateCorpus(Machine, COpts);

  std::vector<ScheduleRequestMsg> Requests;
  Requests.reserve(Corpus.size());
  std::string MachineText = printMachine(Machine);
  for (const Ddg &G : Corpus) {
    ScheduleRequestMsg Req;
    Req.Tenant = "bench";
    Req.Scheduler = "ilp";
    Req.MachineText = MachineText;
    Req.LoopText = printLoop(G, Machine);
    Requests.push_back(std::move(Req));
  }

  std::string Tag = std::to_string(::getpid());
  std::string SocketPath = "/tmp/swpd-bench-" + Tag + ".sock";
  std::filesystem::path SnapDir =
      std::filesystem::temp_directory_path() / ("swpd-bench-" + Tag + "-snap");

  DaemonOptions Base;
  Base.SocketPath = SocketPath;
  Base.SnapshotDir = SnapDir.string();
  Base.IoTimeoutSeconds = 30.0;
  Base.Service.Jobs = Clients;
  // Bound effort by node count, not wall time: time-limit-censored results
  // are load-dependent and the service refuses to memoize them, which would
  // turn the warm phase's hardest loops back into cold solves.  Node-limit
  // censoring is deterministic and caches fine.
  Base.Service.Sched.TimeLimitPerT = benchutil::envDouble("SWP_TIME_LIMIT", 60.0);
  Base.Service.Sched.NodeLimitPerT = 500;
  Base.Service.Sched.MaxTSlack = 8;

  std::vector<PhaseResult> Phases;

  // Phase 1: cold — empty cache, every request is a real solve.
  {
    Daemon D(Base);
    if (!D.start().isOk()) {
      std::fprintf(stderr, "daemon failed to start\n");
      return 1;
    }
    Phases.push_back(drivePhase("cold", SocketPath, Requests, Clients));
    D.stop(); // Saves the snapshot the warm phase restarts from.
  }

  // Phase 2: warm — restart from the snapshot; replays should hit.
  {
    Daemon D(Base);
    if (!D.start().isOk()) {
      std::fprintf(stderr, "daemon restart failed\n");
      return 1;
    }
    std::printf("restart loaded %llu snapshot entries\n",
                static_cast<unsigned long long>(
                    D.stats().SnapshotEntriesLoaded));
    Phases.push_back(drivePhase("warm", SocketPath, Requests, Clients));
    D.stop();
  }

  // Phase 3: saturated — a one-slot admission window under many clients.
  // Requests beyond the window shed with a well-formed response; nothing
  // hangs and nothing is dropped silently.
  {
    DaemonOptions Tight = Base;
    Tight.SnapshotDir.clear(); // Shed results must never reach a snapshot.
    Tight.Admission.MaxInFlight = 1;
    Tight.Admission.ReducedEffortAt = 1;
    Tight.Admission.HeuristicOnlyAt = 1;
    Daemon D(Tight);
    if (!D.start().isOk()) {
      std::fprintf(stderr, "saturated daemon failed to start\n");
      return 1;
    }
    Phases.push_back(drivePhase("saturated", SocketPath, Requests,
                                std::max(Clients, 8)));
    D.stop();
  }

  std::printf("\n");
  for (const PhaseResult &P : Phases)
    printPhase(P);

  std::uint64_t Answered = 0, Sent = 0;
  for (const PhaseResult &P : Phases) {
    Sent += P.Requests;
    Answered += P.Requests - P.TransportErrors;
  }
  std::printf("\nrobustness: %llu/%llu requests answered in-protocol\n",
              static_cast<unsigned long long>(Answered),
              static_cast<unsigned long long>(Sent));

  emitJson(JsonPath, Phases, Loops, Clients);

  std::error_code Ec;
  std::filesystem::remove_all(SnapDir, Ec);
  std::filesystem::remove(SocketPath, Ec);
  return 0;
}
