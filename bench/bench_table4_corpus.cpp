//===- bench_table4_corpus.cpp - Paper Table 4 ----------------------------===//
//
// Table 4: "Scheduling Performance for Schedules Found" — schedule the loop
// corpus (standing in for the paper's 1066 SPEC92/NAS/linpack/livermore
// loops; see DESIGN.md) with the unified ILP on the PPC604-like machine and
// report, per achieved II relative to the lower bound T_lb, the number of
// loops and the mean DDG size.  Paper row shape: 735 loops at T = T_lb with
// mean 6 nodes; the stragglers (T_lb+2, T_lb+4, ...) are markedly larger
// loops; a small fraction is censored by the time limit (the paper's
// "10/30" note).
//
// Env: SWP_CORPUS_SIZE (default 1066), SWP_TIME_LIMIT seconds per T
// (default 2), SWP_JOBS (default 0 = serial only; > 0 additionally runs
// the corpus through the SchedulerService thread pool, checks the parallel
// results match the serial baseline loop for loop, and reports the
// speedup plus service statistics).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/machine/Catalog.h"
#include "swp/service/SchedulerService.h"
#include "swp/service/ServiceStats.h"
#include "swp/support/Format.h"
#include "swp/support/Statistics.h"
#include "swp/support/Stopwatch.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Corpus.h"

#include <cstdio>
#include <map>

using namespace swp;

int main() {
  benchutil::banner("Table 4 (scheduling performance over the loop corpus)",
                    "Loops achieving T_lb, T_lb+1, ... with mean DDG sizes");
  MachineModel Machine = ppc604Like();
  CorpusOptions COpts;
  COpts.NumLoops = benchutil::envInt("SWP_CORPUS_SIZE", 1066);
  std::vector<Ddg> Corpus = generateCorpus(Machine, COpts);

  SchedulerOptions SOpts;
  SOpts.TimeLimitPerT = benchutil::envDouble("SWP_TIME_LIMIT", 2.0);
  SOpts.MaxTSlack = 12;

  std::map<int, std::vector<double>> SizesBySlack; // II - T_lb -> DDG sizes.
  std::vector<double> UnscheduledSizes;
  struct LoopSummary {
    int T = 0;
    bool Proven = false;
  };
  std::vector<LoopSummary> Serial(Corpus.size());
  int Censored = 0, Scheduled = 0;
  Stopwatch Total;
  for (size_t I = 0; I < Corpus.size(); ++I) {
    const Ddg &G = Corpus[I];
    SchedulerResult R = scheduleLoop(G, Machine, SOpts);
    Serial[I] = {R.Schedule.T, R.ProvenRateOptimal};
    if (R.found()) {
      ++Scheduled;
      SizesBySlack[R.Schedule.T - R.TLowerBound].push_back(G.numNodes());
      if (!R.ProvenRateOptimal)
        ++Censored;
    } else {
      UnscheduledSizes.push_back(G.numNodes());
    }
    if ((I + 1) % 100 == 0)
      std::fprintf(stderr, "  ... %zu/%zu loops (%.1fs)\n", I + 1,
                   Corpus.size(), Total.seconds());
  }
  double SerialSeconds = Total.seconds();

  TextTable Table;
  Table.setHeader({"Number of Loops", "Initiation Interval",
                   "Mean # Nodes in DDG"});
  for (const auto &[Slack, Sizes] : SizesBySlack) {
    std::string Label = Slack == 0
                            ? "T = T_lb"
                            : strFormat("T = T_lb + %d", Slack);
    Table.addRow({std::to_string(Sizes.size()), Label,
                  strFormat("%.1f", mean(Sizes))});
  }
  if (!UnscheduledSizes.empty())
    Table.addRow({std::to_string(UnscheduledSizes.size()),
                  "none found (limit)",
                  strFormat("%.1f", mean(UnscheduledSizes))});
  std::printf("%s\n", Table.render().c_str());

  int AtLb = SizesBySlack.count(0)
                 ? static_cast<int>(SizesBySlack[0].size())
                 : 0;
  double FracAtLb =
      Corpus.empty() ? 0.0
                     : static_cast<double>(AtLb) /
                           static_cast<double>(Corpus.size());
  double MeanAtLb = SizesBySlack.count(0) ? mean(SizesBySlack[0]) : 0.0;
  double MeanAbove = 0.0;
  std::vector<double> Above;
  for (const auto &[Slack, Sizes] : SizesBySlack)
    if (Slack > 0)
      Above.insert(Above.end(), Sizes.begin(), Sizes.end());
  for (double S : UnscheduledSizes)
    Above.push_back(S);
  MeanAbove = mean(Above);

  std::printf("scheduled %d/%zu loops (%d censored by the %.1fs/T limit), "
              "total %.1fs\n\n",
              Scheduled, Corpus.size(), Censored, SOpts.TimeLimitPerT,
              Total.seconds());
  std::printf("paper-shape checks (paper: 735/766 at T_lb, mean 6 nodes; "
              "stragglers larger):\n");
  std::printf("  fraction at T_lb          = %.1f%%  (expect the large "
              "majority, ~90%%+) -> %s\n",
              100.0 * FracAtLb, FracAtLb > 0.85 ? "REPRODUCED" : "MISMATCH");
  std::printf("  mean nodes at T_lb        = %.1f   (paper: 6)\n", MeanAtLb);
  if (!Above.empty())
    std::printf("  mean nodes above T_lb     = %.1f   (paper: 16-17, i.e. "
                "bigger than at T_lb) -> %s\n",
                MeanAbove, MeanAbove > MeanAtLb ? "REPRODUCED" : "MISMATCH");

  int Jobs = benchutil::envInt("SWP_JOBS", 0);
  if (Jobs > 0) {
    std::printf("\nparallel path (SchedulerService, --jobs %d):\n", Jobs);
    ServiceOptions SvcOpts;
    SvcOpts.Jobs = Jobs;
    SvcOpts.Sched = SOpts;
    // The serial baseline re-solves every loop, so the speedup comparison
    // must too: with the cache on, duplicate corpus fingerprints become
    // hits and the reported speedup would conflate memoization with
    // thread-pool parallelism.
    SvcOpts.UseCache = false;
    SchedulerService Svc(Machine, SvcOpts);
    Stopwatch ParWall;
    std::vector<SchedulerResult> Par = Svc.scheduleAll(Corpus);
    double ParSeconds = ParWall.seconds();

    int Mismatches = 0;
    for (size_t I = 0; I < Corpus.size(); ++I)
      if (Par[I].Schedule.T != Serial[I].T ||
          Par[I].ProvenRateOptimal != Serial[I].Proven)
        ++Mismatches;
    std::printf("  serial %.1fs, parallel %.1fs -> speedup %.2fx, "
                "%d/%zu result mismatches (expect 0; time-limit censoring "
                "can perturb loads near the limit)\n",
                SerialSeconds, ParSeconds,
                ParSeconds > 0 ? SerialSeconds / ParSeconds : 0.0,
                Mismatches, Corpus.size());
    std::printf("\n%s", Svc.stats().render().c_str());
  }
  return 0;
}
