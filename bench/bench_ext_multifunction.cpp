//===- bench_ext_multifunction.cpp - Multi-function pipelines -------------===//
//
// Extension bench (paper Section 7): "An advantage of our method is that
// it can be extended to handle multi-function pipelines as well."  FP
// divides and FP multiplies share ONE physical FPU (as on the real
// PowerPC 604) instead of living on separate FU types; the unified ILP
// schedules and maps through the cross-variant structural hazards.
// Reports the II cost of unit sharing on divide-bearing kernels.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/core/Verifier.h"
#include "swp/machine/Catalog.h"
#include "swp/support/TextTable.h"

#include <cstdio>

using namespace swp;

namespace {

struct LoopPair {
  const char *Name;
  Ddg Shared;   // For ppc604MultiFunction (FPU variants).
  Ddg Separate; // For ppc604Like (own FDIV type).
};

/// Builds the same logical loop for both machines.
LoopPair makeLoop(const char *Name, int NumDivs, int NumMuls, bool Chain) {
  LoopPair P;
  P.Name = Name;
  for (int Variant = 0; Variant < 2; ++Variant) {
    Ddg G(Name);
    int Prev = G.addNode("ld", 3, 2);
    for (int D = 0; D < NumDivs; ++D) {
      int Dv = Variant == 0
                   ? G.addNodeVariant("div" + std::to_string(D), 2,
                                      ppc604FpuDivVariant(), 8)
                   : G.addNode("div" + std::to_string(D), 4, 8);
      G.addEdge(Prev, Dv, 0);
      if (Chain)
        Prev = Dv;
    }
    for (int M = 0; M < NumMuls; ++M) {
      int Mu = G.addNode("mul" + std::to_string(M), 2, 4);
      G.addEdge(Prev, Mu, 0);
      if (Chain)
        Prev = Mu;
    }
    int St = G.addNode("st", 3, 2);
    G.addEdge(Prev, St, 0);
    if (Variant == 0)
      P.Shared = std::move(G);
    else
      P.Separate = std::move(G);
  }
  return P;
}

} // namespace

int main() {
  benchutil::banner("Extension: multi-function pipelines",
                    "FP divide + multiply sharing one FPU vs separate units");
  MachineModel Shared = ppc604MultiFunction();
  MachineModel Separate = ppc604Like();
  SchedulerOptions SOpts;
  SOpts.TimeLimitPerT = benchutil::envDouble("SWP_TIME_LIMIT", 5.0);

  std::printf("FPU variant tables of %s:\n", Shared.name().c_str());
  std::printf("multiply/add path:\n%s", Shared.type(2).variant(0).render().c_str());
  std::printf("divide path:\n%s\n", Shared.type(2).variant(1).render().c_str());

  TextTable Table;
  Table.setHeader({"loop", "II shared FPU", "II separate FDIV", "cost"});
  int SharedWorse = 0, Rows = 0, SharedBetter = 0;
  LoopPair Loops[] = {makeLoop("1div+1mul chain", 1, 1, true),
                      makeLoop("1div+2mul fan", 1, 2, false),
                      makeLoop("2div chain", 2, 0, true),
                      makeLoop("1div+3mul fan", 1, 3, false),
                      makeLoop("2div+2mul chain", 2, 2, true)};
  for (LoopPair &P : Loops) {
    SchedulerResult RS = scheduleLoop(P.Shared, Shared, SOpts);
    SchedulerResult RL = scheduleLoop(P.Separate, Separate, SOpts);
    if (!RS.found() || !RL.found())
      continue;
    ++Rows;
    if (RS.Schedule.T > RL.Schedule.T)
      ++SharedWorse;
    if (RS.Schedule.T < RL.Schedule.T)
      ++SharedBetter;
    Table.addRow({P.Name, std::to_string(RS.Schedule.T),
                  std::to_string(RL.Schedule.T),
                  RS.Schedule.T > RL.Schedule.T ? "+II" : "="});
    // Every schedule must verify on its machine.
    if (!verifySchedule(P.Shared, Shared, RS.Schedule).Ok ||
        !verifySchedule(P.Separate, Separate, RL.Schedule).Ok) {
      std::printf("VERIFICATION FAILED on %s\n", P.Name);
      return 1;
    }
  }
  std::printf("%s\n", Table.render().c_str());
  std::printf("shape checks:\n");
  std::printf("  sharing one FPU never lowers II -> %s\n",
              SharedBetter == 0 ? "REPRODUCED" : "MISMATCH");
  std::printf("  sharing costs II on divide-heavy loops (%d/%d) -> %s\n",
              SharedWorse, Rows, SharedWorse > 0 ? "REPRODUCED" : "MISMATCH");
  return 0;
}
