//===- bench_cgra_mapping.cpp - CGRA mapping workload ---------------------===//
//
// Extension artifact: the topology-aware resource model turns the scheduler
// into a CGRA modulo mapper (place operations on PE instances, route values
// over the interconnect).  This bench sweeps mesh/torus grids over the CGRA
// dataflow corpus and records, per array size, the mapping success rate and
// the achieved II for every engine — the exact ILP, the CDCL SAT backend
// (raced against the same instances and cross-checked on the proven II),
// and both modulo heuristics.  The shape to look for: success rate rises
// and II falls as the array grows, and the exact engines agree everywhere
// both prove optimality.
//
// Emits BENCH_mapping.json (override with SWP_BENCH_JSON).
//
// With SWP_PERF_SMOKE set the binary runs the CI regression gate instead:
// a pinned tiny configuration (2x2 and 3x3 meshes, deterministic node
// limits, no wall-clock dependence) is compared against the checked-in
// reference bench/mapping_smoke_ref.json (override via SWP_MAPPING_REF).
// Fewer mapped/proven/agreeing loops than the reference fails; >3x the
// reference's B&B-node or pivot effort fails.  SWP_PERF_SMOKE=write
// regenerates the reference after an intentional change.
//
// Env: SWP_CORPUS_SIZE (default 40 loops per grid), SWP_TIME_LIMIT
//      (default 2 s per candidate T), SWP_BENCH_JSON (output path).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/core/Verifier.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/heuristics/SlackModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/sat/SatScheduler.h"
#include "swp/support/Format.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Corpus.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace swp;

namespace {

struct EngineStats {
  int Found = 0;
  int Proven = 0;
  long long IiSum = 0;
  double Seconds = 0.0;
  long long Effort = 0; // B&B nodes or CDCL conflicts.
  long long Pivots = 0;

  void add(const SchedulerResult &R) {
    Seconds += R.TotalSeconds;
    Effort += R.TotalNodes;
    Pivots += R.TotalLp.Pivots;
    if (R.found()) {
      ++Found;
      IiSum += R.Schedule.T;
    }
    if (R.ProvenRateOptimal)
      ++Proven;
  }

  double meanIi() const {
    return Found == 0 ? 0.0
                      : static_cast<double>(IiSum) / static_cast<double>(Found);
  }
};

struct HeurStats {
  int Found = 0;
  long long IiSum = 0;
  double meanIi() const {
    return Found == 0 ? 0.0
                      : static_cast<double>(IiSum) / static_cast<double>(Found);
  }
};

/// Everything measured for one grid over the corpus.
struct GridStats {
  std::string Name;
  int Units = 0;
  int Loops = 0;
  EngineStats Ilp, Sat;
  HeurStats Ims, Slack;
  /// The race winner: a loop is mapped when either exact engine maps it,
  /// at the better of the two IIs.
  HeurStats Raced;
  int Agree = 0;     // Both engines proved the same optimal II.
  int Disagree = 0;  // Both proved, IIs differ — a solver bug.
  int VerifyFail = 0;
};

/// Runs every engine on one (grid, loop) pair and cross-checks results.
void runLoop(const Ddg &G, const MachineModel &M, const SchedulerOptions &Opts,
             GridStats &S) {
  ++S.Loops;
  SchedulerResult Ilp = scheduleLoop(G, M, Opts);
  SchedulerResult Sat = satScheduleLoop(G, M, Opts);
  S.Ilp.add(Ilp);
  S.Sat.add(Sat);

  auto Check = [&](const SchedulerResult &R) {
    if (R.found() && !verifySchedule(G, M, R.Schedule).Ok)
      ++S.VerifyFail;
  };
  Check(Ilp);
  Check(Sat);

  if (Ilp.found() || Sat.found()) {
    ++S.Raced.Found;
    int Best = Ilp.found() && Sat.found()
                   ? std::min(Ilp.Schedule.T, Sat.Schedule.T)
                   : (Ilp.found() ? Ilp.Schedule.T : Sat.Schedule.T);
    S.Raced.IiSum += Best;
  }

  if (Ilp.ProvenRateOptimal && Sat.ProvenRateOptimal && Ilp.found() &&
      Sat.found()) {
    if (Ilp.Schedule.T == Sat.Schedule.T)
      ++S.Agree;
    else
      ++S.Disagree;
  }

  ImsResult Ims = iterativeModuloSchedule(G, M);
  if (Ims.found() && verifySchedule(G, M, Ims.Schedule).Ok) {
    ++S.Ims.Found;
    S.Ims.IiSum += Ims.Schedule.T;
  }
  SlackResult Sl = slackModuloSchedule(G, M);
  if (Sl.found() && verifySchedule(G, M, Sl.Schedule).Ok) {
    ++S.Slack.Found;
    S.Slack.IiSum += Sl.Schedule.T;
  }
}

GridStats runGrid(const MachineModel &M, const std::vector<Ddg> &Corpus,
                  const SchedulerOptions &Opts) {
  GridStats S;
  S.Name = M.name();
  S.Units = M.totalUnits();
  for (const Ddg &G : Corpus)
    runLoop(G, M, Opts, S);
  return S;
}

std::string gridJson(const GridStats &S) {
  auto Rate = [&](int N) {
    return S.Loops ? static_cast<double>(N) / S.Loops : 0.0;
  };
  return strFormat(
      "    {\"grid\":\"%s\",\"units\":%d,\"loops\":%d,"
      "\"ilp\":{\"found\":%d,\"proven\":%d,\"success_rate\":%.3f,"
      "\"mean_ii\":%.3f,\"seconds\":%.3f,\"nodes\":%lld,\"pivots\":%lld},"
      "\"sat\":{\"found\":%d,\"proven\":%d,\"success_rate\":%.3f,"
      "\"mean_ii\":%.3f,\"seconds\":%.3f,\"conflicts\":%lld},"
      "\"ims\":{\"found\":%d,\"success_rate\":%.3f,\"mean_ii\":%.3f},"
      "\"slack\":{\"found\":%d,\"success_rate\":%.3f,\"mean_ii\":%.3f},"
      "\"raced\":{\"found\":%d,\"success_rate\":%.3f,\"mean_ii\":%.3f},"
      "\"cross_check\":{\"agree\":%d,\"disagree\":%d,\"verify_fail\":%d}}",
      S.Name.c_str(), S.Units, S.Loops, S.Ilp.Found, S.Ilp.Proven,
      Rate(S.Ilp.Found), S.Ilp.meanIi(), S.Ilp.Seconds, S.Ilp.Effort,
      S.Ilp.Pivots, S.Sat.Found, S.Sat.Proven, Rate(S.Sat.Found),
      S.Sat.meanIi(), S.Sat.Seconds, S.Sat.Effort, S.Ims.Found,
      Rate(S.Ims.Found), S.Ims.meanIi(), S.Slack.Found, Rate(S.Slack.Found),
      S.Slack.meanIi(), S.Raced.Found, Rate(S.Raced.Found), S.Raced.meanIi(),
      S.Agree, S.Disagree, S.VerifyFail);
}

//===----------------------------------------------------------------------===//
// CI smoke gate (SWP_PERF_SMOKE)
//===----------------------------------------------------------------------===//

std::string smokeJson(const GridStats &A, const GridStats &B) {
  return strFormat("{\n  \"mapped\": %d,\n  \"proven\": %d,\n"
                   "  \"agree\": %d,\n  \"disagree\": %d,\n"
                   "  \"verify_fail\": %d,\n  \"nodes\": %lld,\n"
                   "  \"pivots\": %lld,\n  \"heur_mapped\": %d\n}\n",
                   A.Ilp.Found + B.Ilp.Found, A.Ilp.Proven + B.Ilp.Proven,
                   A.Agree + B.Agree, A.Disagree + B.Disagree,
                   A.VerifyFail + B.VerifyFail, A.Ilp.Effort + B.Ilp.Effort,
                   A.Ilp.Pivots + B.Ilp.Pivots,
                   A.Ims.Found + A.Slack.Found + B.Ims.Found + B.Slack.Found);
}

long long refField(const std::string &Json, const char *Key) {
  std::string Needle = std::string("\"") + Key + "\":";
  std::size_t At = Json.find(Needle);
  if (At == std::string::npos)
    return -1;
  return std::atoll(Json.c_str() + At + Needle.size());
}

int mappingSmoke(bool WriteRef) {
  const char *RefEnv = std::getenv("SWP_MAPPING_REF");
  std::string RefPath = RefEnv ? RefEnv : "bench/mapping_smoke_ref.json";

  // Deterministic limits only: node budgets bound a runaway regression
  // without making the counters depend on runner speed.
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 1e9;
  Opts.NodeLimitPerT = 5000;
  Opts.MaxTSlack = 6;

  CgraCorpusOptions COpts;
  COpts.NumLoops = 16;
  COpts.MaxNodes = 10;

  MachineModel M2 = cgraGrid(2, 2);
  MachineModel M3 = cgraGrid(3, 3);
  GridStats A = runGrid(M2, generateCgraCorpus(M2, COpts), Opts);
  GridStats B = runGrid(M3, generateCgraCorpus(M3, COpts), Opts);
  std::printf("mapping-smoke totals (2x2 + 3x3 mesh, 16-loop pinned "
              "corpus each):\n%s",
              smokeJson(A, B).c_str());

  if (WriteRef) {
    std::FILE *Out = std::fopen(RefPath.c_str(), "w");
    if (!Out) {
      std::fprintf(stderr, "error: cannot write %s\n", RefPath.c_str());
      return 1;
    }
    std::fputs(smokeJson(A, B).c_str(), Out);
    std::fclose(Out);
    std::printf("wrote reference %s\n", RefPath.c_str());
    return 0;
  }

  std::FILE *In = std::fopen(RefPath.c_str(), "r");
  if (!In) {
    std::fprintf(stderr, "error: reference %s not found (run with "
                         "SWP_PERF_SMOKE=write to create it)\n",
                 RefPath.c_str());
    return 1;
  }
  std::string Ref;
  char Buf[256];
  while (std::size_t Got = std::fread(Buf, 1, sizeof(Buf), In))
    Ref.append(Buf, Got);
  std::fclose(In);

  int Failures = 0;
  auto GateFloor = [&](const char *Key, long long Have) {
    long long Want = refField(Ref, Key);
    if (Want < 0) {
      std::fprintf(stderr, "FAIL %s: missing from reference\n", Key);
      ++Failures;
      return;
    }
    std::printf("  %-12s %8lld vs ref %8lld (floor) %s\n", Key, Have, Want,
                Have < Want ? "FAIL" : "ok");
    if (Have < Want)
      ++Failures;
  };
  auto GateCeiling = [&](const char *Key, long long Have) {
    long long Want = refField(Ref, Key);
    if (Want < 0) {
      std::fprintf(stderr, "FAIL %s: missing from reference\n", Key);
      ++Failures;
      return;
    }
    long long Limit = 3 * (Want < 1 ? 1 : Want);
    std::printf("  %-12s %8lld vs ref %8lld (limit %lld) %s\n", Key, Have,
                Want, Limit, Have > Limit ? "FAIL" : "ok");
    if (Have > Limit)
      ++Failures;
  };
  std::printf("gate (fewer mapped/proven/agreeing fails; >3x effort "
              "fails; any disagree/verify-fail fails):\n");
  GateFloor("mapped", A.Ilp.Found + B.Ilp.Found);
  GateFloor("proven", A.Ilp.Proven + B.Ilp.Proven);
  GateFloor("agree", A.Agree + B.Agree);
  GateFloor("heur_mapped",
            A.Ims.Found + A.Slack.Found + B.Ims.Found + B.Slack.Found);
  GateCeiling("nodes", A.Ilp.Effort + B.Ilp.Effort);
  GateCeiling("pivots", A.Ilp.Pivots + B.Ilp.Pivots);
  if (A.Disagree + B.Disagree) {
    std::fprintf(stderr, "FAIL: %d proven-optimal II disagreements\n",
                 A.Disagree + B.Disagree);
    ++Failures;
  }
  if (A.VerifyFail + B.VerifyFail) {
    std::fprintf(stderr, "FAIL: %d schedules failed verification\n",
                 A.VerifyFail + B.VerifyFail);
    ++Failures;
  }
  if (Failures) {
    std::fprintf(stderr, "mapping-smoke: %d gate failure(s)\n", Failures);
    return 1;
  }
  std::printf("mapping-smoke: ok\n");
  return 0;
}

} // namespace

int main() {
  if (const char *Mode = std::getenv("SWP_PERF_SMOKE"))
    return mappingSmoke(std::strcmp(Mode, "write") == 0);

  benchutil::banner("Extension: CGRA modulo mapping",
                    "Mapping success rate and II vs array size, "
                    "exact engines raced and cross-checked");

  SchedulerOptions Opts;
  Opts.TimeLimitPerT = benchutil::envDouble("SWP_TIME_LIMIT", 2.0);
  Opts.MaxTSlack = 8;

  CgraCorpusOptions COpts;
  COpts.NumLoops = benchutil::envInt("SWP_CORPUS_SIZE", 40);

  struct GridSpec {
    int Rows, Cols;
    bool Torus;
  };
  const GridSpec Grids[] = {
      {2, 2, false}, {3, 3, false}, {4, 4, false}, {5, 5, false},
      {3, 3, true},
  };

  std::vector<GridStats> All;
  for (const GridSpec &Spec : Grids) {
    MachineModel M = cgraGrid(Spec.Rows, Spec.Cols, Spec.Torus);
    // One corpus per grid seed-pinned by the default options: identical
    // loops across grids, so the II-vs-size curve is apples-to-apples.
    All.push_back(runGrid(M, generateCgraCorpus(M, COpts), Opts));
    std::printf("  %-16s done (%d loops)\n", All.back().Name.c_str(),
                All.back().Loops);
  }

  TextTable Table;
  Table.setHeader({"Grid", "PEs", "ILP map%", "ILP II", "SAT map%", "SAT II",
                   "IMS map%", "Slack map%", "Agree", "Bad"});
  for (const GridStats &S : All) {
    auto Pct = [&](int N) {
      return strFormat("%.0f%%", S.Loops ? 100.0 * N / S.Loops : 0.0);
    };
    Table.addRow({S.Name, std::to_string(S.Units), Pct(S.Ilp.Found),
                  strFormat("%.2f", S.Ilp.meanIi()), Pct(S.Sat.Found),
                  strFormat("%.2f", S.Sat.meanIi()), Pct(S.Ims.Found),
                  Pct(S.Slack.Found), std::to_string(S.Agree),
                  std::to_string(S.Disagree + S.VerifyFail)});
  }
  std::printf("\n%s\n", Table.render().c_str());

  int TotalBad = 0;
  for (const GridStats &S : All)
    TotalBad += S.Disagree + S.VerifyFail;
  std::printf("cross-check: exact engines agree on every doubly-proven II "
              "and all schedules verify -> %s\n",
              TotalBad == 0 ? "REPRODUCED" : "MISMATCH");
  const GridStats &Small = All.front();
  const GridStats &Large = All[3];
  std::printf("shape check: the raced portfolio maps no fewer loops as the "
              "array grows\n  (%d on %s vs %d on %s) -> %s\n",
              Small.Raced.Found, Small.Name.c_str(), Large.Raced.Found,
              Large.Name.c_str(),
              Large.Raced.Found >= Small.Raced.Found ? "REPRODUCED"
                                                     : "MISMATCH");

  std::string Json =
      "{\n  \"bench\": \"cgra_mapping\",\n  \"corpus_size\": " +
      std::to_string(COpts.NumLoops) + ",\n  \"time_limit_per_t\": " +
      strFormat("%.3f", Opts.TimeLimitPerT) + ",\n  \"grids\": [\n";
  for (size_t I = 0; I < All.size(); ++I)
    Json += gridJson(All[I]) + (I + 1 < All.size() ? ",\n" : "\n");
  Json += "  ]\n}\n";

  const char *JsonPathEnv = std::getenv("SWP_BENCH_JSON");
  std::string JsonPath = JsonPathEnv ? JsonPathEnv : "BENCH_mapping.json";
  if (std::FILE *Out = std::fopen(JsonPath.c_str(), "w")) {
    std::fputs(Json.c_str(), Out);
    std::fclose(Out);
    std::printf("wrote %s\n", JsonPath.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  return TotalBad == 0 ? 0 : 1;
}
