//===- bench_fig3_tka_matrices.cpp - Paper Figure 3 -----------------------===//
//
// Figure 3: the linear periodic schedule decomposition
// T = T*K + A' * [0, 1, ..., T-1]' for Schedule B — the paper prints
// t = [0,1,3,5,7,11], K = [0,0,0,1,1,2] and the 4x6 A matrix whose row 1 is
// [0 1 0 1 0 0] and row 3 is [0 0 1 0 1 1].
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Schedule.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

int main() {
  benchutil::banner("Figure 3 (T, K, A matrices)",
                    "The T = T*K + A'*[0..T-1]' decomposition of Schedule B");
  ModuloSchedule B;
  B.T = 4;
  B.StartTime = {0, 1, 3, 5, 7, 11};
  std::printf("%s\n", B.renderTka().c_str());

  // Reconstruct t from K and A and check the identity.
  auto A = B.aMatrix();
  auto K = B.kVector();
  bool Identity = true;
  for (size_t I = 0; I < B.StartTime.size(); ++I) {
    int Offset = 0;
    for (int Slot = 0; Slot < B.T; ++Slot)
      if (A[static_cast<size_t>(Slot)][I])
        Offset = Slot;
    Identity &= B.StartTime[I] == B.T * K[I] + Offset;
  }
  bool Row1 = A[1] == std::vector<int>{0, 1, 0, 1, 0, 0};
  bool Row3 = A[3] == std::vector<int>{0, 0, 1, 0, 1, 1};
  std::printf("identity T = T*K + A'*[0..T-1]' holds: %s\n",
              Identity ? "yes" : "NO");
  std::printf("A rows match the paper's printed matrix: %s\n",
              Row1 && Row3 ? "yes" : "NO");
  std::printf("paper-shape check: %s\n",
              Identity && Row1 && Row3 ? "REPRODUCED" : "MISMATCH");
  return 0;
}
