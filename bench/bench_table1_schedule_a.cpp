//===- bench_table1_schedule_a.cpp - Paper Table 1 ------------------------===//
//
// Table 1 / Section 2: a schedule that is legal only under *run-time*
// mapping.  At T = 3 on two non-pipelined FP units, capacity holds and the
// hardware can execute the loop by letting instructions migrate between
// units across iterations — but no *fixed* instruction-to-unit assignment
// exists (the occupation arcs form a circular-arc 3-clique on 2 units).
// The unified ILP proves T = 3 infeasible under fixed mapping and finds
// T = 4.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/CircularArcs.h"
#include "swp/core/Driver.h"
#include "swp/core/KernelExpander.h"
#include "swp/core/Verifier.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

int main() {
  benchutil::banner("Table 1 (Schedule A)",
                    "A T=3 schedule legal under run-time mapping only");
  Ddg Loop = scheduleALoop();
  MachineModel Machine = exampleTwoFpMachine();

  SchedulerOptions RunTime;
  RunTime.Mapping = MappingKind::RunTime;
  SchedulerResult A = scheduleLoop(Loop, Machine, RunTime);
  if (!A.found()) {
    std::printf("unexpected: no run-time-mapping schedule found\n");
    return 1;
  }
  std::printf("Schedule A (run-time mapping), II = %d:\n", A.Schedule.T);
  std::printf("%s\n",
              renderOverlappedIterations(Loop, A.Schedule, 4).c_str());

  std::string Err;
  bool Executable = simulateRunTimeMapping(Loop, Machine, A.Schedule, 8, &Err);
  std::printf("hardware simulation with free unit pickup over 8 iterations: "
              "%s\n\n",
              Executable ? "executes (units alternate across iterations)"
                         : Err.c_str());

  // The same schedule admits no fixed assignment: show the 3-clique.
  std::vector<int> FpOps = Loop.nodesOfClass(0);
  std::vector<int> Offsets;
  for (int Op : FpOps)
    Offsets.push_back(A.Schedule.offset(Op));
  std::printf("%s", renderArcs(Loop, Machine, 0, A.Schedule.T, Offsets, {})
                        .c_str());
  std::vector<int> Colors =
      firstFitUnitColoring(Machine.type(0).Table, A.Schedule.T, Offsets);
  int MaxColor = 0;
  for (int C : Colors)
    MaxColor = std::max(MaxColor, C);
  std::printf("\ncircular-arc coloring needs %d colors but only %d FP units "
              "exist\n\n",
              MaxColor + 1, Machine.type(0).Count);

  SchedulerResult Fixed = scheduleLoop(Loop, Machine);
  std::printf("unified scheduling+mapping ILP:\n");
  for (const TAttempt &Att : Fixed.Attempts)
    std::printf("  T = %d: %s\n", Att.T,
                Att.Status == MilpStatus::Infeasible ? "proven infeasible"
                : Att.Status == MilpStatus::Optimal  ? "schedule found"
                                                     : "censored by limit");
  if (Fixed.found()) {
    std::printf("\nSchedule with fixed mapping, II = %d:\n%s\n",
                Fixed.Schedule.T,
                renderOverlappedIterations(Loop, Fixed.Schedule, 4).c_str());
    std::printf("paper-shape check: run-time II (%d) < fixed II (%d) on this "
                "instance -> %s\n",
                A.Schedule.T, Fixed.Schedule.T,
                A.Schedule.T < Fixed.Schedule.T ? "REPRODUCED" : "MISMATCH");
  }
  return 0;
}
