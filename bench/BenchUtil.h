//===- bench/BenchUtil.h - Shared bench-harness helpers ---------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure reproduction binaries: environment
/// overrides for corpus size and time limits, and a banner printer that
/// states which paper artifact a binary regenerates.
///
/// Environment knobs (all optional):
///   SWP_CORPUS_SIZE  — number of corpus loops to schedule (default varies
///                      per bench; the full corpus is 1066 loops).
///   SWP_TIME_LIMIT   — per-T MILP time limit in seconds.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_BENCH_BENCHUTIL_H
#define SWP_BENCH_BENCHUTIL_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace swp::benchutil {

inline int envInt(const char *Name, int Default) {
  const char *V = std::getenv(Name);
  return V ? std::atoi(V) : Default;
}

inline double envDouble(const char *Name, double Default) {
  const char *V = std::getenv(Name);
  return V ? std::atof(V) : Default;
}

inline void banner(const char *Artifact, const char *What) {
  std::printf("==============================================================="
              "=\n");
  std::printf("Reproduces: %s\n%s\n", Artifact, What);
  std::printf("Paper: Altman, Govindarajan, Gao. Scheduling and Mapping: "
              "Software\nPipelining in the Presence of Structural Hazards. "
              "PLDI 1995.\n");
  std::printf("==============================================================="
              "=\n\n");
}

} // namespace swp::benchutil

#endif // SWP_BENCH_BENCHUTIL_H
