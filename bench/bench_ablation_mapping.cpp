//===- bench_ablation_mapping.cpp - Fixed vs run-time mapping -------------===//
//
// Ablation A (DESIGN.md): how much initiation interval does *fixed* FU
// assignment cost relative to idealized run-time mapping (capacity-only
// scheduling, the pre-paper formulation)?  The paper's Schedule A shows the
// gap exists; this bench measures how often it appears across machines and
// a corpus sample.
//
// Env: SWP_CORPUS_SIZE (default 200), SWP_TIME_LIMIT (default 2).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/machine/Catalog.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Corpus.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

namespace {

struct GapStats {
  int Both = 0;
  int Equal = 0;
  int FixedWorse = 0;
  /// Fixed < run-time can only happen when a time limit censored the
  /// run-time search below the fixed II; a *proven* occurrence is a bug.
  int CensoredAnomalies = 0;
  int ProvenAnomalies = 0;
  long SumGap = 0;
};

void runOne(const Ddg &G, const MachineModel &M, const SchedulerOptions &Base,
            GapStats &Stats) {
  SchedulerOptions RT = Base;
  RT.Mapping = MappingKind::RunTime;
  SchedulerResult A = scheduleLoop(G, M, RT);
  SchedulerResult B = scheduleLoop(G, M, Base);
  if (!A.found() || !B.found())
    return;
  ++Stats.Both;
  if (A.Schedule.T == B.Schedule.T)
    ++Stats.Equal;
  if (B.Schedule.T > A.Schedule.T) {
    ++Stats.FixedWorse;
    Stats.SumGap += B.Schedule.T - A.Schedule.T;
  }
  if (B.Schedule.T < A.Schedule.T) {
    if (A.ProvenRateOptimal && B.ProvenRateOptimal)
      ++Stats.ProvenAnomalies;
    else
      ++Stats.CensoredAnomalies;
  }
}

} // namespace

int main() {
  benchutil::banner("Ablation A: fixed vs run-time mapping",
                    "II cost of requiring a fixed FU assignment");
  SchedulerOptions Base;
  Base.TimeLimitPerT = benchutil::envDouble("SWP_TIME_LIMIT", 2.0);
  Base.MaxTSlack = 12;

  // The hand instance where the gap is certain.
  {
    GapStats S;
    runOne(scheduleALoop(), exampleTwoFpMachine(), Base, S);
    std::printf("Schedule A instance: fixed mapping costs II on %d/%d runs "
                "-> %s\n\n",
                S.FixedWorse, S.Both,
                S.FixedWorse == 1 ? "REPRODUCED" : "MISMATCH");
  }

  MachineModel Machine = ppc604Like();
  CorpusOptions COpts;
  COpts.NumLoops = benchutil::envInt("SWP_CORPUS_SIZE", 200);
  GapStats S;
  for (const Ddg &G : generateCorpus(Machine, COpts))
    runOne(G, Machine, Base, S);

  TextTable Table;
  Table.setHeader({"metric", "value"});
  Table.addRow({"loops scheduled under both disciplines",
                std::to_string(S.Both)});
  Table.addRow({"II equal", std::to_string(S.Equal)});
  Table.addRow({"fixed mapping worse", std::to_string(S.FixedWorse)});
  Table.addRow({"mean gap when worse (cycles)",
                S.FixedWorse ? std::to_string(static_cast<double>(S.SumGap) /
                                              S.FixedWorse)
                             : std::string("-")});
  Table.addRow({"run-time censored below fixed II",
                std::to_string(S.CensoredAnomalies)});
  std::printf("%s\n", Table.render().c_str());
  std::printf("paper-shape check: fixed mapping never *provably* helps "
              "-> %s\n",
              S.ProvenAnomalies == 0 ? "REPRODUCED" : "MISMATCH");
  std::printf("note: on this machine most types have 1 unit, where mapping "
              "is forced; gaps concentrate on the 2-unit SCIU type.\n");
  return 0;
}
