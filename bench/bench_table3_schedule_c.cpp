//===- bench_table3_schedule_c.cpp - Paper Table 3 / Figure 2 -------------===//
//
// Schedule C: the motivating loop on the machine whose FP and Load/Store
// units are *unclean* pipelines (structural hazards described by
// reservation tables).  Prints the reservation tables, the modulo
// constraint skips, the rate-optimal schedule, and the per-stage usage
// tables of Figure 2(d).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/core/KernelExpander.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

int main() {
  benchutil::banner("Table 3 / Figure 2 (Schedule C)",
                    "Scheduling with structural hazards (unclean pipelines)");
  Ddg Loop = motivatingLoop();
  MachineModel Machine = exampleHazardMachine();

  for (int R = 0; R < Machine.numTypes(); ++R) {
    const FuType &Ty = Machine.type(R);
    std::printf("%s x%d reservation table:\n%s\n", Ty.Name.c_str(), Ty.Count,
                Ty.Table.render().c_str());
  }

  // Figure 2(b): some T are skipped outright because a single operation
  // would collide with itself mod T.
  std::printf("modulo-scheduling constraint per T (paper Fig. 2(b)):\n");
  for (int T = 1; T <= 8; ++T)
    std::printf("  T = %d: %s\n", T,
                Machine.moduloFeasible(Loop, T) ? "ok" : "SKIPPED");
  std::printf("\n");

  SchedulerResult R = scheduleLoop(Loop, Machine);
  std::printf("bounds: T_dep = %d, T_res = %d -> T_lb = %d\n", R.TDep, R.TRes,
              R.TLowerBound);
  if (!R.found()) {
    std::printf("no schedule found\n");
    return 1;
  }
  std::printf("rate-optimal II with hazards = %d%s\n\n", R.Schedule.T,
              R.ProvenRateOptimal ? " (proven)" : "");
  std::printf("%s\n", R.Schedule.renderTka().c_str());
  std::printf("per-stage usage tables (Figure 2(d) artifact):\n%s\n",
              R.Schedule.renderPatternUsage(Loop, Machine).c_str());
  std::printf("%s\n", renderOverlappedIterations(Loop, R.Schedule, 3).c_str());

  SchedulerResult Clean = scheduleLoop(Loop, exampleCleanMachine());
  std::printf("paper-shape check: hazards raise the achievable II "
              "(clean II %d < hazard II %d) -> %s\n",
              Clean.Schedule.T, R.Schedule.T,
              Clean.found() && Clean.Schedule.T < R.Schedule.T ? "REPRODUCED"
                                                               : "MISMATCH");
  return 0;
}
