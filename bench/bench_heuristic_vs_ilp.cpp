//===- bench_heuristic_vs_ilp.cpp - ILP vs IMS vs exhaustive --------------===//
//
// Ablation B (DESIGN.md): the paper argues ILP methods produce better
// schedules than heuristics (citing [9]) and mentions exhaustive search as
// an alternative ([2]).  This bench compares rate-optimal ILP, iterative
// modulo scheduling (Rau [22]), and the enumerative scheduler on the
// classic kernels and a corpus sample: achieved II and wall-clock time.
//
// Env: SWP_CORPUS_SIZE (default 150), SWP_TIME_LIMIT (default 2).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/heuristics/Enumerative.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/heuristics/SlackModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/support/Format.h"
#include "swp/support/Stopwatch.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Corpus.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

int main() {
  benchutil::banner("Ablation B: ILP vs IMS heuristic vs exhaustive search",
                    "Initiation-interval quality and scheduling time");
  MachineModel Machine = ppc604Like();
  SchedulerOptions SOpts;
  SOpts.TimeLimitPerT = benchutil::envDouble("SWP_TIME_LIMIT", 2.0);
  SOpts.MaxTSlack = 12;

  TextTable Table;
  Table.setHeader({"kernel", "N", "T_lb", "II(ILP)", "II(IMS)", "II(slack)",
                   "II(enum)", "t(ILP)", "t(IMS)", "t(enum)"});
  for (const Ddg &G : classicKernels()) {
    Stopwatch W1;
    SchedulerResult Ilp = scheduleLoop(G, Machine, SOpts);
    double T1 = W1.seconds();
    Stopwatch W2;
    ImsResult Ims = iterativeModuloSchedule(G, Machine);
    double T2 = W2.seconds();
    SlackResult Slack = slackModuloSchedule(G, Machine);
    Stopwatch W3;
    EnumOptions EOpts;
    EOpts.TimeLimitPerT = SOpts.TimeLimitPerT;
    EnumResult En = enumerativeSchedule(G, Machine, EOpts);
    double T3 = W3.seconds();
    Table.addRow({G.name(), std::to_string(G.numNodes()),
                  std::to_string(Ilp.TLowerBound),
                  Ilp.found() ? std::to_string(Ilp.Schedule.T) : "-",
                  Ims.found() ? std::to_string(Ims.Schedule.T) : "-",
                  Slack.found() ? std::to_string(Slack.Schedule.T) : "-",
                  En.found() ? std::to_string(En.Schedule.T) : "-",
                  strFormat("%.3fs", T1), strFormat("%.3fs", T2),
                  strFormat("%.3fs", T3)});
  }
  std::printf("%s\n", Table.render().c_str());

  // Corpus sweep: aggregate win counts.
  CorpusOptions COpts;
  COpts.NumLoops = benchutil::envInt("SWP_CORPUS_SIZE", 150);
  int Both = 0, ImsSuboptimal = 0, EnumAgrees = 0, EnumRan = 0;
  int IlpCensoredWorse = 0, ProvenBeaten = 0;
  long SumIlp = 0, SumIms = 0;
  for (const Ddg &G : generateCorpus(Machine, COpts)) {
    SchedulerResult Ilp = scheduleLoop(G, Machine, SOpts);
    ImsResult Ims = iterativeModuloSchedule(G, Machine);
    if (!Ilp.found() || !Ims.found())
      continue;
    ++Both;
    SumIlp += Ilp.Schedule.T;
    SumIms += Ims.Schedule.T;
    if (Ims.Schedule.T > Ilp.Schedule.T)
      ++ImsSuboptimal;
    if (Ims.Schedule.T < Ilp.Schedule.T) {
      // Only possible when the limit censored the ILP below IMS's II;
      // a *proven* rate-optimal II beaten by a heuristic is a bug.
      if (Ilp.ProvenRateOptimal)
        ++ProvenBeaten;
      else
        ++IlpCensoredWorse;
    }
    if (G.numNodes() <= 8 && Ilp.ProvenRateOptimal) {
      EnumOptions EOpts;
      EOpts.TimeLimitPerT = SOpts.TimeLimitPerT;
      EnumResult En = enumerativeSchedule(G, Machine, EOpts);
      if (En.found() && En.ProvenRateOptimal) {
        ++EnumRan;
        if (En.Schedule.T == Ilp.Schedule.T)
          ++EnumAgrees;
      }
    }
  }
  std::printf("corpus sample (%d loops scheduled by both):\n", Both);
  std::printf("  IMS suboptimal on %d loops (%.1f%%); mean II: ILP %.2f vs "
              "IMS %.2f\n",
              ImsSuboptimal, Both ? 100.0 * ImsSuboptimal / Both : 0.0,
              Both ? static_cast<double>(SumIlp) / Both : 0.0,
              Both ? static_cast<double>(SumIms) / Both : 0.0);
  std::printf("  exhaustive search agrees with ILP on %d/%d proven loops\n",
              EnumAgrees, EnumRan);
  std::printf("  ILP censored below IMS's II on %d loops (time limit)\n\n",
              IlpCensoredWorse);
  std::printf("paper-shape checks:\n");
  std::printf("  proven ILP II <= IMS II on every loop -> %s\n",
              ProvenBeaten == 0 ? "REPRODUCED" : "MISMATCH");
  std::printf("  exhaustive == ILP wherever both prove optimality -> %s\n",
              EnumAgrees == EnumRan ? "REPRODUCED" : "MISMATCH");
  return 0;
}
