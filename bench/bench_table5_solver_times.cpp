//===- bench_table5_solver_times.cpp - Paper Table 5 ----------------------===//
//
// Table 5-style artifact: the distribution of ILP solution times over the
// corpus.  The paper ran a commercial solver under a time limit (its
// "10/30" note) on 1995 hardware; absolute numbers differ, the *shape*
// must hold: heavy-tailed, the bulk of loops solving quickly, a small
// censored tail, and solve time growing with DDG size.
//
// Env: SWP_CORPUS_SIZE (default 400), SWP_TIME_LIMIT (default 2).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/machine/Catalog.h"
#include "swp/support/Format.h"
#include "swp/support/Statistics.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Corpus.h"

#include <cstdio>
#include <vector>

using namespace swp;

int main() {
  benchutil::banner("Table 5 (distribution of ILP solution times)",
                    "Per-loop wall-clock of the rate-optimal search");
  MachineModel Machine = ppc604Like();
  CorpusOptions COpts;
  COpts.NumLoops = benchutil::envInt("SWP_CORPUS_SIZE", 400);
  std::vector<Ddg> Corpus = generateCorpus(Machine, COpts);

  SchedulerOptions SOpts;
  SOpts.TimeLimitPerT = benchutil::envDouble("SWP_TIME_LIMIT", 2.0);
  SOpts.MaxTSlack = 12;

  struct Bucket {
    double Limit;
    const char *Label;
    int Count = 0;
    std::vector<double> Sizes;
  };
  std::vector<Bucket> Buckets;
  Buckets.push_back({0.01, "< 10 ms", 0, {}});
  Buckets.push_back({0.1, "10-100 ms", 0, {}});
  Buckets.push_back({1.0, "0.1-1 s", 0, {}});
  Buckets.push_back({10.0, "1-10 s", 0, {}});
  Buckets.push_back({1e18, ">= 10 s", 0, {}});
  std::vector<double> Times;
  std::vector<double> SmallTimes, BigTimes;
  int Censored = 0;
  for (const Ddg &G : Corpus) {
    SchedulerResult R = scheduleLoop(G, Machine, SOpts);
    Times.push_back(R.TotalSeconds);
    (G.numNodes() <= 8 ? SmallTimes : BigTimes).push_back(R.TotalSeconds);
    if (!R.ProvenRateOptimal)
      ++Censored;
    for (Bucket &B : Buckets)
      if (R.TotalSeconds < B.Limit) {
        ++B.Count;
        B.Sizes.push_back(G.numNodes());
        break;
      }
  }

  TextTable Table;
  Table.setHeader({"Solution Time", "Number of Loops", "Mean # Nodes"});
  for (const Bucket &B : Buckets)
    Table.addRow({B.Label, std::to_string(B.Count),
                  B.Sizes.empty() ? "-" : strFormat("%.1f", mean(B.Sizes))});
  std::printf("%s\n", Table.render().c_str());

  std::printf("loops: %zu; censored by limit: %d; median %.3fs, p90 %.3fs, "
              "p99 %.3fs\n\n",
              Corpus.size(), Censored, percentile(Times, 50),
              percentile(Times, 90), percentile(Times, 99));
  double MedianSmall = SmallTimes.empty() ? 0 : percentile(SmallTimes, 50);
  double MedianBig = BigTimes.empty() ? 0 : percentile(BigTimes, 50);
  std::printf("paper-shape checks:\n");
  std::printf("  bulk solves fast (median << limit)        -> %s\n",
              percentile(Times, 50) < SOpts.TimeLimitPerT / 10
                  ? "REPRODUCED"
                  : "MISMATCH");
  std::printf("  solve time grows with DDG size "
              "(median %.4fs for <=8 nodes vs %.4fs above) -> %s\n",
              MedianSmall, MedianBig,
              (BigTimes.empty() || MedianSmall <= MedianBig) ? "REPRODUCED"
                                                             : "MISMATCH");
  return 0;
}
