//===- bench_table5_solver_times.cpp - Paper Table 5 ----------------------===//
//
// Table 5-style artifact: the distribution of exact-solver solution times
// over the corpus.  The paper ran a commercial solver under a time limit
// (its "10/30" note) on 1995 hardware; absolute numbers differ, the
// *shape* must hold: heavy-tailed, the bulk of loops solving quickly, a
// small censored tail, and solve time growing with DDG size.
//
// Both exact engines run over the same corpus — the branch-and-bound ILP
// and the CDCL SAT backend — and the per-family comparison (families are
// the Table-5 size classes) is written to BENCH_solver.json: per engine
// the total/median/p99 solve time, search effort (B&B nodes / CDCL
// conflicts), simplex effort (pivots / refactorizations), mean optimal
// II, and how many loops were proven rate-optimal.  Each family also
// carries the pre-sparse-simplex ILP numbers (dense two-phase tableau,
// no warm starts or propagation) as "baseline_ilp" with the resulting
// speedup, so the artifact is a before/after record.
//
// Env: SWP_CORPUS_SIZE (default 400), SWP_TIME_LIMIT (default 2),
//      SWP_BENCH_JSON (output path, default BENCH_solver.json).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/machine/Catalog.h"
#include "swp/sat/SatScheduler.h"
#include "swp/support/Format.h"
#include "swp/support/Statistics.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Corpus.h"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

using namespace swp;

namespace {

/// Per-engine accumulator over one size family.
struct EngineStats {
  std::vector<double> Times;
  std::int64_t Effort = 0; // B&B nodes or CDCL conflicts.
  std::int64_t IiSum = 0;
  LpEffort Lp; // Simplex effort (zero for the SAT engine).
  int Found = 0;
  int Proven = 0;

  void add(const SchedulerResult &R) {
    Times.push_back(R.TotalSeconds);
    Effort += R.TotalNodes;
    Lp += R.TotalLp;
    if (R.found()) {
      ++Found;
      IiSum += R.Schedule.T;
    }
    if (R.ProvenRateOptimal)
      ++Proven;
  }

  double total() const {
    double S = 0;
    for (double T : Times)
      S += T;
    return S;
  }
  double meanIi() const {
    return Found == 0 ? 0.0
                      : static_cast<double>(IiSum) / static_cast<double>(Found);
  }
};

/// One Table-5 size class ("family"): loops bucketed by DDG node count.
struct Family {
  const char *Name;
  int MaxNodes; // Inclusive upper bound; INT_MAX-ish for the last.
  int Loops = 0;
  EngineStats Ilp, Sat;
};

std::string engineJson(const EngineStats &E) {
  return strFormat("{\"total_seconds\":%.6f,\"median_seconds\":%.6f,"
                   "\"p99_seconds\":%.6f,"
                   "\"effort\":%lld,\"lp_pivots\":%lld,"
                   "\"lp_refactorizations\":%lld,"
                   "\"found\":%d,\"proven_optimal\":%d,"
                   "\"mean_optimal_ii\":%.3f}",
                   E.total(), E.Times.empty() ? 0.0 : percentile(E.Times, 50),
                   E.Times.empty() ? 0.0 : percentile(E.Times, 99),
                   static_cast<long long>(E.Effort),
                   static_cast<long long>(E.Lp.Pivots),
                   static_cast<long long>(E.Lp.Refactorizations), E.Found,
                   E.Proven, E.meanIi());
}

/// The ILP numbers the dense two-phase tableau produced on the default
/// 400-loop seed-0 corpus (no warm starts, no propagation, no symmetry
/// breaking) — the "before" column of the artifact.  Keyed by family
/// index; only meaningful for the default corpus/limit configuration.
struct BaselineIlp {
  double TotalSeconds;
  int Proven;
};
constexpr BaselineIlp DenseTableauBaseline[] = {
    {0.025322, 173}, // tiny
    {0.184146, 162}, // small
    {22.337897, 47}, // medium
    {39.092879, 8},  // large
};

} // namespace

int main() {
  benchutil::banner("Table 5 (distribution of exact-solver solution times)",
                    "Per-loop wall-clock of the rate-optimal search, "
                    "ILP vs CDCL SAT");
  MachineModel Machine = ppc604Like();
  CorpusOptions COpts;
  COpts.NumLoops = benchutil::envInt("SWP_CORPUS_SIZE", 400);
  std::vector<Ddg> Corpus = generateCorpus(Machine, COpts);

  SchedulerOptions SOpts;
  SOpts.TimeLimitPerT = benchutil::envDouble("SWP_TIME_LIMIT", 2.0);
  SOpts.MaxTSlack = 12;

  struct Bucket {
    double Limit;
    const char *Label;
    int Count = 0;
    std::vector<double> Sizes;
  };
  std::vector<Bucket> Buckets;
  Buckets.push_back({0.01, "< 10 ms", 0, {}});
  Buckets.push_back({0.1, "10-100 ms", 0, {}});
  Buckets.push_back({1.0, "0.1-1 s", 0, {}});
  Buckets.push_back({10.0, "1-10 s", 0, {}});
  Buckets.push_back({1e18, ">= 10 s", 0, {}});

  std::vector<Family> Families;
  Families.push_back({"tiny (<=4 nodes)", 4});
  Families.push_back({"small (5-8 nodes)", 8});
  Families.push_back({"medium (9-14 nodes)", 14});
  Families.push_back({"large (15+ nodes)", 1 << 20});

  std::vector<double> Times;
  std::vector<double> SmallTimes, BigTimes;
  int Censored = 0;
  for (const Ddg &G : Corpus) {
    SchedulerResult R = scheduleLoop(G, Machine, SOpts);
    SchedulerResult S = satScheduleLoop(G, Machine, SOpts);
    Times.push_back(R.TotalSeconds);
    (G.numNodes() <= 8 ? SmallTimes : BigTimes).push_back(R.TotalSeconds);
    if (!R.ProvenRateOptimal)
      ++Censored;
    for (Bucket &B : Buckets)
      if (R.TotalSeconds < B.Limit) {
        ++B.Count;
        B.Sizes.push_back(G.numNodes());
        break;
      }
    for (Family &Fam : Families)
      if (G.numNodes() <= Fam.MaxNodes) {
        ++Fam.Loops;
        Fam.Ilp.add(R);
        Fam.Sat.add(S);
        break;
      }
  }

  TextTable Table;
  Table.setHeader({"Solution Time", "Number of Loops", "Mean # Nodes"});
  for (const Bucket &B : Buckets)
    Table.addRow({B.Label, std::to_string(B.Count),
                  B.Sizes.empty() ? "-" : strFormat("%.1f", mean(B.Sizes))});
  std::printf("%s\n", Table.render().c_str());

  std::printf("loops: %zu; censored by limit: %d; median %.3fs, p90 %.3fs, "
              "p99 %.3fs\n\n",
              Corpus.size(), Censored, percentile(Times, 50),
              percentile(Times, 90), percentile(Times, 99));
  double MedianSmall = SmallTimes.empty() ? 0 : percentile(SmallTimes, 50);
  double MedianBig = BigTimes.empty() ? 0 : percentile(BigTimes, 50);
  std::printf("paper-shape checks:\n");
  std::printf("  bulk solves fast (median << limit)        -> %s\n",
              percentile(Times, 50) < SOpts.TimeLimitPerT / 10
                  ? "REPRODUCED"
                  : "MISMATCH");
  std::printf("  solve time grows with DDG size "
              "(median %.4fs for <=8 nodes vs %.4fs above) -> %s\n",
              MedianSmall, MedianBig,
              (BigTimes.empty() || MedianSmall <= MedianBig) ? "REPRODUCED"
                                                             : "MISMATCH");

  // Engine comparison per size family, and the JSON artifact.  The
  // embedded baseline only describes the default corpus; suppress the
  // before/after columns when the corpus was resized via env.
  const bool DefaultCorpus = COpts.NumLoops == 400;
  TextTable Cmp;
  Cmp.setHeader({"Family", "Loops", "ILP total", "ILP before", "Speedup",
                 "SAT total", "ILP pivots", "Faster"});
  std::string Json = "{\n  \"bench\": \"table5_solver_times\",\n"
                     "  \"machine\": \"" + Machine.name() + "\",\n"
                     "  \"corpus_size\": " + std::to_string(Corpus.size()) +
                     ",\n  \"time_limit_per_t\": " +
                     strFormat("%.3f", SOpts.TimeLimitPerT) +
                     ",\n  \"families\": [\n";
  std::vector<std::string> Entries;
  for (size_t FamIx = 0; FamIx < Families.size(); ++FamIx) {
    const Family &Fam = Families[FamIx];
    if (Fam.Loops == 0)
      continue;
    const char *Faster = Fam.Sat.total() < Fam.Ilp.total() ? "sat" : "ilp";
    std::string Before = "-", Speedup = "-", BaselineJson;
    if (DefaultCorpus && FamIx < std::size(DenseTableauBaseline)) {
      const BaselineIlp &B = DenseTableauBaseline[FamIx];
      Before = strFormat("%.3fs", B.TotalSeconds);
      Speedup = strFormat("%.1fx", B.TotalSeconds /
                                       std::max(1e-6, Fam.Ilp.total()));
      BaselineJson = strFormat(
          ",\"baseline_ilp\":{\"total_seconds\":%.6f,\"proven_optimal\":%d},"
          "\"ilp_speedup\":%.1f",
          B.TotalSeconds, B.Proven,
          B.TotalSeconds / std::max(1e-6, Fam.Ilp.total()));
    }
    Cmp.addRow({Fam.Name, std::to_string(Fam.Loops),
                strFormat("%.3fs", Fam.Ilp.total()), Before, Speedup,
                strFormat("%.3fs", Fam.Sat.total()),
                std::to_string(Fam.Ilp.Lp.Pivots), Faster});
    Entries.push_back(
        strFormat("    {\"family\":\"%s\",\"loops\":%d,\"ilp\":%s,"
                  "\"sat\":%s%s,\"faster\":\"%s\"}",
                  Fam.Name, Fam.Loops, engineJson(Fam.Ilp).c_str(),
                  engineJson(Fam.Sat).c_str(), BaselineJson.c_str(), Faster));
  }
  for (size_t I = 0; I < Entries.size(); ++I)
    Json += Entries[I] + (I + 1 < Entries.size() ? ",\n" : "\n");
  Json += "  ]\n}\n";
  std::printf("\nexact-engine comparison (same corpus, same limits):\n%s\n",
              Cmp.render().c_str());

  const char *JsonPathEnv = std::getenv("SWP_BENCH_JSON");
  std::string JsonPath = JsonPathEnv ? JsonPathEnv : "BENCH_solver.json";
  if (std::FILE *Out = std::fopen(JsonPath.c_str(), "w")) {
    std::fputs(Json.c_str(), Out);
    std::fclose(Out);
    std::printf("wrote %s\n", JsonPath.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write %s\n", JsonPath.c_str());
    return 1;
  }
  return 0;
}
