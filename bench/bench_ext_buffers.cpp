//===- bench_ext_buffers.cpp - Buffer-minimization extension --------------===//
//
// Extension bench (paper Section 7 / conclusions): "It can incorporate
// minimizing buffers (logical registers) as in [18] or minimizing the
// maximum number of live values ... as in [5]."  At the rate-optimal II,
// compare the buffers and MaxLive of the first feasible schedule against
// the buffer-minimized schedule on the classic kernels.
//
// Env: SWP_TIME_LIMIT (default 5).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/core/Registers.h"
#include "swp/machine/Catalog.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

int main() {
  benchutil::banner("Extension: buffer minimization ([18]) and MaxLive ([5])",
                    "Feasible vs buffer-minimized schedules at the same II");
  MachineModel Machine = ppc604Like();
  double Limit = benchutil::envDouble("SWP_TIME_LIMIT", 5.0);

  TextTable Table;
  Table.setHeader({"kernel", "II", "buffers(feas)", "buffers(min)",
                   "maxlive(feas)", "maxlive(min)"});
  int Improved = 0, Rows = 0, BadRows = 0;
  for (const Ddg &G : classicKernels()) {
    SchedulerOptions Plain;
    Plain.TimeLimitPerT = Limit;
    SchedulerResult R1 = scheduleLoop(G, Machine, Plain);
    SchedulerOptions MinBuf = Plain;
    MinBuf.MinimizeBuffers = true;
    SchedulerResult R2 = scheduleLoop(G, Machine, MinBuf);
    if (!R1.found() || !R2.found() || R1.Schedule.T != R2.Schedule.T)
      continue;
    ++Rows;
    int B1 = totalBuffers(G, R1.Schedule);
    int B2 = totalBuffers(G, R2.Schedule);
    if (B2 < B1)
      ++Improved;
    if (B2 > B1)
      ++BadRows;
    Table.addRow({G.name(), std::to_string(R1.Schedule.T),
                  std::to_string(B1), std::to_string(B2),
                  std::to_string(maxLive(G, R1.Schedule)),
                  std::to_string(maxLive(G, R2.Schedule))});
  }
  std::printf("%s\n", Table.render().c_str());

  // One detailed lifetime chart.
  Ddg G = motivatingLoop();
  MachineModel M2 = exampleNonPipelinedMachine();
  SchedulerOptions MinBuf;
  MinBuf.MinimizeBuffers = true;
  MinBuf.TimeLimitPerT = Limit;
  SchedulerResult R = scheduleLoop(G, M2, MinBuf);
  if (R.found())
    std::printf("motivating loop, buffer-minimized at II = %d:\n%s\n",
                R.Schedule.T, renderLifetimes(G, R.Schedule).c_str());

  std::printf("shape checks:\n");
  std::printf("  minimization never increases buffers (%d/%d rows) -> %s\n",
              Rows - BadRows, Rows, BadRows == 0 ? "REPRODUCED" : "MISMATCH");
  std::printf("  minimization strictly improves on %d/%d kernels\n", Improved,
              Rows);
  return 0;
}
