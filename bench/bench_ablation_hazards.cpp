//===- bench_ablation_hazards.cpp - Cost of structural hazards ------------===//
//
// Ablation C: the point of the paper is scheduling *through* structural
// hazards.  This bench quantifies what the hazards themselves cost by
// scheduling the kernels and a corpus sample both on the PPC604-like
// machine (unclean MCIU/FPU/FDIV) and on a unit-for-unit clean-pipelined
// twin, reporting the II inflation.
//
// Env: SWP_CORPUS_SIZE (default 150), SWP_TIME_LIMIT (default 2).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/machine/Catalog.h"
#include "swp/support/Format.h"
#include "swp/support/TextTable.h"
#include "swp/workload/Corpus.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

int main() {
  benchutil::banner("Ablation C: II cost of structural hazards",
                    "PPC604-like (unclean) vs clean-pipelined twin");
  MachineModel Hazard = ppc604Like();
  MachineModel Clean = cleanVliw();
  SchedulerOptions SOpts;
  SOpts.TimeLimitPerT = benchutil::envDouble("SWP_TIME_LIMIT", 2.0);
  SOpts.MaxTSlack = 12;

  TextTable Table;
  Table.setHeader({"kernel", "II(clean)", "II(hazard)", "inflation"});
  int CleanSum = 0, HazardSum = 0, Rows = 0;
  for (const Ddg &G : classicKernels()) {
    SchedulerResult RC = scheduleLoop(G, Clean, SOpts);
    SchedulerResult RH = scheduleLoop(G, Hazard, SOpts);
    if (!RC.found() || !RH.found())
      continue;
    ++Rows;
    CleanSum += RC.Schedule.T;
    HazardSum += RH.Schedule.T;
    Table.addRow({G.name(), std::to_string(RC.Schedule.T),
                  std::to_string(RH.Schedule.T),
                  strFormat("%.2fx", static_cast<double>(RH.Schedule.T) /
                                         RC.Schedule.T)});
  }
  std::printf("%s\n", Table.render().c_str());

  CorpusOptions COpts;
  COpts.NumLoops = benchutil::envInt("SWP_CORPUS_SIZE", 150);
  long CSum = 0, HSum = 0;
  int Both = 0, HazardWorse = 0;
  for (const Ddg &G : generateCorpus(Hazard, COpts)) {
    SchedulerResult RC = scheduleLoop(G, Clean, SOpts);
    SchedulerResult RH = scheduleLoop(G, Hazard, SOpts);
    if (!RC.found() || !RH.found())
      continue;
    ++Both;
    CSum += RC.Schedule.T;
    HSum += RH.Schedule.T;
    if (RH.Schedule.T > RC.Schedule.T)
      ++HazardWorse;
  }
  std::printf("corpus sample: %d loops; mean II clean %.2f vs hazard %.2f; "
              "hazards cost II on %d loops (%.1f%%)\n\n",
              Both, Both ? static_cast<double>(CSum) / Both : 0.0,
              Both ? static_cast<double>(HSum) / Both : 0.0, HazardWorse,
              Both ? 100.0 * HazardWorse / Both : 0.0);
  std::printf("paper-shape checks:\n");
  std::printf("  clean II <= hazard II everywhere -> %s\n",
              CSum <= HSum && CleanSum <= HazardSum ? "REPRODUCED"
                                                    : "MISMATCH");
  std::printf("  hazards visibly inflate II on kernels (%d vs %d summed) -> "
              "%s\n",
              CleanSum, HazardSum,
              HazardSum > CleanSum ? "REPRODUCED" : "MISMATCH");
  return 0;
}
