//===- bench_table2_schedule_b.cpp - Paper Table 2 ------------------------===//
//
// Table 2 / Figure 3: the alternative Schedule B of the motivating loop on
// the non-pipelined machine — a T = 4 schedule that *does* admit a fixed
// FU assignment, shown as overlapped iterations with prolog, repetitive
// pattern, and epilog.  The paper prints t = [0,1,3,5,7,11],
// K = [0,0,0,1,1,2]; we verify that exact schedule and also print the
// rate-optimal one the ILP finds.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"
#include "swp/core/Driver.h"
#include "swp/core/KernelExpander.h"
#include "swp/core/Verifier.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Kernels.h"

#include <cstdio>

using namespace swp;

int main() {
  benchutil::banner("Table 2 (Schedule B) and its prolog/kernel/epilog",
                    "The fixed-mapping T=4 schedule of the motivating loop");
  Ddg Loop = motivatingLoop();
  MachineModel Machine = exampleNonPipelinedMachine();

  // The paper's exact Schedule B.
  ModuloSchedule B;
  B.T = 4;
  B.StartTime = {0, 1, 3, 5, 7, 11};
  B.Mapping = {0, 0, 0, 0, 1, 0};
  VerifyResult V = verifySchedule(Loop, Machine, B);
  std::printf("paper schedule t = [0,1,3,5,7,11] at T = 4: verifier says "
              "%s\n\n",
              V.Ok ? "LEGAL" : V.Error.c_str());
  std::printf("%s\n", renderOverlappedIterations(Loop, B, 4).c_str());
  std::printf("fixed FP mapping: i2 -> FP#%d, i3 -> FP#%d, i4 -> FP#%d\n\n",
              B.Mapping[2], B.Mapping[3], B.Mapping[4]);

  // What the rate-optimal search reports for this machine.
  SchedulerResult R = scheduleLoop(Loop, Machine);
  std::printf("rate-optimal search: T_dep = %d, T_res = %d, II = %d%s\n",
              R.TDep, R.TRes, R.found() ? R.Schedule.T : -1,
              R.ProvenRateOptimal ? " (proven)" : "");
  if (R.found()) {
    std::printf("%s\n", R.Schedule.renderTka().c_str());
    std::printf("paper-shape check: the paper's T=4 schedule is legal and "
                "the optimum is <= 4 -> %s\n",
                V.Ok && R.Schedule.T <= 4 ? "REPRODUCED" : "MISMATCH");
  }
  return 0;
}
