file(REMOVE_RECURSE
  "CMakeFiles/test_slack.dir/test_slack.cpp.o"
  "CMakeFiles/test_slack.dir/test_slack.cpp.o.d"
  "test_slack"
  "test_slack.pdb"
  "test_slack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_slack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
