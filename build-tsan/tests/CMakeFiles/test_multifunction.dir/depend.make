# Empty dependencies file for test_multifunction.
# This may be replaced when dependencies are built.
