file(REMOVE_RECURSE
  "CMakeFiles/test_multifunction.dir/test_multifunction.cpp.o"
  "CMakeFiles/test_multifunction.dir/test_multifunction.cpp.o.d"
  "test_multifunction"
  "test_multifunction.pdb"
  "test_multifunction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multifunction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
