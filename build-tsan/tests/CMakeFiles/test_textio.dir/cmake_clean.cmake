file(REMOVE_RECURSE
  "CMakeFiles/test_textio.dir/test_textio.cpp.o"
  "CMakeFiles/test_textio.dir/test_textio.cpp.o.d"
  "test_textio"
  "test_textio.pdb"
  "test_textio[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_textio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
