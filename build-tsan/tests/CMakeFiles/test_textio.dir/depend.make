# Empty dependencies file for test_textio.
# This may be replaced when dependencies are built.
