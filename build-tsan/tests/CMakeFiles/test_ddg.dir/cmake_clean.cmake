file(REMOVE_RECURSE
  "CMakeFiles/test_ddg.dir/test_ddg.cpp.o"
  "CMakeFiles/test_ddg.dir/test_ddg.cpp.o.d"
  "test_ddg"
  "test_ddg.pdb"
  "test_ddg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ddg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
