# Empty dependencies file for test_ddg.
# This may be replaced when dependencies are built.
