file(REMOVE_RECURSE
  "CMakeFiles/test_heuristics.dir/test_heuristics.cpp.o"
  "CMakeFiles/test_heuristics.dir/test_heuristics.cpp.o.d"
  "test_heuristics"
  "test_heuristics.pdb"
  "test_heuristics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
