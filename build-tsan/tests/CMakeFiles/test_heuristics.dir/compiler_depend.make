# Empty compiler generated dependencies file for test_heuristics.
# This may be replaced when dependencies are built.
