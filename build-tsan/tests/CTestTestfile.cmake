# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-tsan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/tests/test_support[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_solver[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_ddg[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_machine[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_formulation[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_verifier[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_schedule[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_heuristics[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_registers[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_multifunction[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_slack[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_textio[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_simulator[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_workload[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_service[1]_include.cmake")
include("/root/repo/build-tsan/tests/test_integration[1]_include.cmake")
