# Empty compiler generated dependencies file for ppc604_kernels.
# This may be replaced when dependencies are built.
