file(REMOVE_RECURSE
  "CMakeFiles/ppc604_kernels.dir/ppc604_kernels.cpp.o"
  "CMakeFiles/ppc604_kernels.dir/ppc604_kernels.cpp.o.d"
  "ppc604_kernels"
  "ppc604_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppc604_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
