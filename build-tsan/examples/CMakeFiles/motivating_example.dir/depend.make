# Empty dependencies file for motivating_example.
# This may be replaced when dependencies are built.
