file(REMOVE_RECURSE
  "CMakeFiles/motivating_example.dir/motivating_example.cpp.o"
  "CMakeFiles/motivating_example.dir/motivating_example.cpp.o.d"
  "motivating_example"
  "motivating_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivating_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
