
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/textio/Parser.cpp" "src/textio/CMakeFiles/swp_textio.dir/Parser.cpp.o" "gcc" "src/textio/CMakeFiles/swp_textio.dir/Parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/swp_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ddg/CMakeFiles/swp_ddg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/machine/CMakeFiles/swp_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
