# Empty dependencies file for swp_textio.
# This may be replaced when dependencies are built.
