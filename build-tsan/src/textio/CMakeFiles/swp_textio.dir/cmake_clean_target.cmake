file(REMOVE_RECURSE
  "libswp_textio.a"
)
