file(REMOVE_RECURSE
  "CMakeFiles/swp_textio.dir/Parser.cpp.o"
  "CMakeFiles/swp_textio.dir/Parser.cpp.o.d"
  "libswp_textio.a"
  "libswp_textio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_textio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
