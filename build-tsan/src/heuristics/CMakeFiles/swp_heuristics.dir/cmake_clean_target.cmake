file(REMOVE_RECURSE
  "libswp_heuristics.a"
)
