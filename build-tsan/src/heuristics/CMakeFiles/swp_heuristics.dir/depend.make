# Empty dependencies file for swp_heuristics.
# This may be replaced when dependencies are built.
