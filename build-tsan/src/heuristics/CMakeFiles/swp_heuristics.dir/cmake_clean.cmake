file(REMOVE_RECURSE
  "CMakeFiles/swp_heuristics.dir/Enumerative.cpp.o"
  "CMakeFiles/swp_heuristics.dir/Enumerative.cpp.o.d"
  "CMakeFiles/swp_heuristics.dir/IterativeModulo.cpp.o"
  "CMakeFiles/swp_heuristics.dir/IterativeModulo.cpp.o.d"
  "CMakeFiles/swp_heuristics.dir/ModuloReservationTable.cpp.o"
  "CMakeFiles/swp_heuristics.dir/ModuloReservationTable.cpp.o.d"
  "CMakeFiles/swp_heuristics.dir/SlackModulo.cpp.o"
  "CMakeFiles/swp_heuristics.dir/SlackModulo.cpp.o.d"
  "libswp_heuristics.a"
  "libswp_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
