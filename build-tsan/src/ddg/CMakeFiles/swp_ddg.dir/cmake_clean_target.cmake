file(REMOVE_RECURSE
  "libswp_ddg.a"
)
