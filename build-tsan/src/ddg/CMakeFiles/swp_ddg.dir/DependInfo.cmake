
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ddg/Analysis.cpp" "src/ddg/CMakeFiles/swp_ddg.dir/Analysis.cpp.o" "gcc" "src/ddg/CMakeFiles/swp_ddg.dir/Analysis.cpp.o.d"
  "/root/repo/src/ddg/Ddg.cpp" "src/ddg/CMakeFiles/swp_ddg.dir/Ddg.cpp.o" "gcc" "src/ddg/CMakeFiles/swp_ddg.dir/Ddg.cpp.o.d"
  "/root/repo/src/ddg/Dot.cpp" "src/ddg/CMakeFiles/swp_ddg.dir/Dot.cpp.o" "gcc" "src/ddg/CMakeFiles/swp_ddg.dir/Dot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/swp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
