# Empty dependencies file for swp_ddg.
# This may be replaced when dependencies are built.
