file(REMOVE_RECURSE
  "CMakeFiles/swp_ddg.dir/Analysis.cpp.o"
  "CMakeFiles/swp_ddg.dir/Analysis.cpp.o.d"
  "CMakeFiles/swp_ddg.dir/Ddg.cpp.o"
  "CMakeFiles/swp_ddg.dir/Ddg.cpp.o.d"
  "CMakeFiles/swp_ddg.dir/Dot.cpp.o"
  "CMakeFiles/swp_ddg.dir/Dot.cpp.o.d"
  "libswp_ddg.a"
  "libswp_ddg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_ddg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
