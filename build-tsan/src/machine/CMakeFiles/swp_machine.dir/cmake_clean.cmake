file(REMOVE_RECURSE
  "CMakeFiles/swp_machine.dir/Catalog.cpp.o"
  "CMakeFiles/swp_machine.dir/Catalog.cpp.o.d"
  "CMakeFiles/swp_machine.dir/MachineModel.cpp.o"
  "CMakeFiles/swp_machine.dir/MachineModel.cpp.o.d"
  "CMakeFiles/swp_machine.dir/ReservationTable.cpp.o"
  "CMakeFiles/swp_machine.dir/ReservationTable.cpp.o.d"
  "libswp_machine.a"
  "libswp_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
