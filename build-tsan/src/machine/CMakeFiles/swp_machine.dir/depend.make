# Empty dependencies file for swp_machine.
# This may be replaced when dependencies are built.
