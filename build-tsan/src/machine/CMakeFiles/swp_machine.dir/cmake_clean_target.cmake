file(REMOVE_RECURSE
  "libswp_machine.a"
)
