
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/Catalog.cpp" "src/machine/CMakeFiles/swp_machine.dir/Catalog.cpp.o" "gcc" "src/machine/CMakeFiles/swp_machine.dir/Catalog.cpp.o.d"
  "/root/repo/src/machine/MachineModel.cpp" "src/machine/CMakeFiles/swp_machine.dir/MachineModel.cpp.o" "gcc" "src/machine/CMakeFiles/swp_machine.dir/MachineModel.cpp.o.d"
  "/root/repo/src/machine/ReservationTable.cpp" "src/machine/CMakeFiles/swp_machine.dir/ReservationTable.cpp.o" "gcc" "src/machine/CMakeFiles/swp_machine.dir/ReservationTable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/swp_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ddg/CMakeFiles/swp_ddg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
