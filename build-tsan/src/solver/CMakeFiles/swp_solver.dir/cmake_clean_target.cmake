file(REMOVE_RECURSE
  "libswp_solver.a"
)
