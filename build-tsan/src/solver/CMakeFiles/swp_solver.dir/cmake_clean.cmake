file(REMOVE_RECURSE
  "CMakeFiles/swp_solver.dir/BranchAndBound.cpp.o"
  "CMakeFiles/swp_solver.dir/BranchAndBound.cpp.o.d"
  "CMakeFiles/swp_solver.dir/Model.cpp.o"
  "CMakeFiles/swp_solver.dir/Model.cpp.o.d"
  "CMakeFiles/swp_solver.dir/Simplex.cpp.o"
  "CMakeFiles/swp_solver.dir/Simplex.cpp.o.d"
  "libswp_solver.a"
  "libswp_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
