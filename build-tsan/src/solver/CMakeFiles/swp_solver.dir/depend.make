# Empty dependencies file for swp_solver.
# This may be replaced when dependencies are built.
