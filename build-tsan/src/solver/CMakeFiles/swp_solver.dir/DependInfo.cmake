
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/BranchAndBound.cpp" "src/solver/CMakeFiles/swp_solver.dir/BranchAndBound.cpp.o" "gcc" "src/solver/CMakeFiles/swp_solver.dir/BranchAndBound.cpp.o.d"
  "/root/repo/src/solver/Model.cpp" "src/solver/CMakeFiles/swp_solver.dir/Model.cpp.o" "gcc" "src/solver/CMakeFiles/swp_solver.dir/Model.cpp.o.d"
  "/root/repo/src/solver/Simplex.cpp" "src/solver/CMakeFiles/swp_solver.dir/Simplex.cpp.o" "gcc" "src/solver/CMakeFiles/swp_solver.dir/Simplex.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/swp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
