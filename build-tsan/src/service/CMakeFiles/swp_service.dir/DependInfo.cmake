
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/service/Fingerprint.cpp" "src/service/CMakeFiles/swp_service.dir/Fingerprint.cpp.o" "gcc" "src/service/CMakeFiles/swp_service.dir/Fingerprint.cpp.o.d"
  "/root/repo/src/service/ResultCache.cpp" "src/service/CMakeFiles/swp_service.dir/ResultCache.cpp.o" "gcc" "src/service/CMakeFiles/swp_service.dir/ResultCache.cpp.o.d"
  "/root/repo/src/service/SchedulerService.cpp" "src/service/CMakeFiles/swp_service.dir/SchedulerService.cpp.o" "gcc" "src/service/CMakeFiles/swp_service.dir/SchedulerService.cpp.o.d"
  "/root/repo/src/service/ServiceStats.cpp" "src/service/CMakeFiles/swp_service.dir/ServiceStats.cpp.o" "gcc" "src/service/CMakeFiles/swp_service.dir/ServiceStats.cpp.o.d"
  "/root/repo/src/service/ThreadPool.cpp" "src/service/CMakeFiles/swp_service.dir/ThreadPool.cpp.o" "gcc" "src/service/CMakeFiles/swp_service.dir/ThreadPool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/swp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/heuristics/CMakeFiles/swp_heuristics.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ddg/CMakeFiles/swp_ddg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/machine/CMakeFiles/swp_machine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solver/CMakeFiles/swp_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/swp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
