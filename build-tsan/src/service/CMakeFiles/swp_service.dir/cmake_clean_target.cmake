file(REMOVE_RECURSE
  "libswp_service.a"
)
