file(REMOVE_RECURSE
  "CMakeFiles/swp_service.dir/Fingerprint.cpp.o"
  "CMakeFiles/swp_service.dir/Fingerprint.cpp.o.d"
  "CMakeFiles/swp_service.dir/ResultCache.cpp.o"
  "CMakeFiles/swp_service.dir/ResultCache.cpp.o.d"
  "CMakeFiles/swp_service.dir/SchedulerService.cpp.o"
  "CMakeFiles/swp_service.dir/SchedulerService.cpp.o.d"
  "CMakeFiles/swp_service.dir/ServiceStats.cpp.o"
  "CMakeFiles/swp_service.dir/ServiceStats.cpp.o.d"
  "CMakeFiles/swp_service.dir/ThreadPool.cpp.o"
  "CMakeFiles/swp_service.dir/ThreadPool.cpp.o.d"
  "libswp_service.a"
  "libswp_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
