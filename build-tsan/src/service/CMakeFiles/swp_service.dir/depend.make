# Empty dependencies file for swp_service.
# This may be replaced when dependencies are built.
