file(REMOVE_RECURSE
  "libswp_workload.a"
)
