file(REMOVE_RECURSE
  "CMakeFiles/swp_workload.dir/Corpus.cpp.o"
  "CMakeFiles/swp_workload.dir/Corpus.cpp.o.d"
  "CMakeFiles/swp_workload.dir/Kernels.cpp.o"
  "CMakeFiles/swp_workload.dir/Kernels.cpp.o.d"
  "libswp_workload.a"
  "libswp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
