# Empty dependencies file for swp_workload.
# This may be replaced when dependencies are built.
