# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-tsan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("solver")
subdirs("ddg")
subdirs("machine")
subdirs("core")
subdirs("heuristics")
subdirs("service")
subdirs("workload")
subdirs("textio")
subdirs("sim")
