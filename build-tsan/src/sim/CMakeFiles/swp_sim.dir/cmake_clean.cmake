file(REMOVE_RECURSE
  "CMakeFiles/swp_sim.dir/DynamicSimulator.cpp.o"
  "CMakeFiles/swp_sim.dir/DynamicSimulator.cpp.o.d"
  "libswp_sim.a"
  "libswp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
