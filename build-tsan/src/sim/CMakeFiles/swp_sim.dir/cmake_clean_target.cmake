file(REMOVE_RECURSE
  "libswp_sim.a"
)
