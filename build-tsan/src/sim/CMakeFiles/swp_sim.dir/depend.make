# Empty dependencies file for swp_sim.
# This may be replaced when dependencies are built.
