# Empty dependencies file for swp_core.
# This may be replaced when dependencies are built.
