file(REMOVE_RECURSE
  "libswp_core.a"
)
