file(REMOVE_RECURSE
  "CMakeFiles/swp_core.dir/CircularArcs.cpp.o"
  "CMakeFiles/swp_core.dir/CircularArcs.cpp.o.d"
  "CMakeFiles/swp_core.dir/Driver.cpp.o"
  "CMakeFiles/swp_core.dir/Driver.cpp.o.d"
  "CMakeFiles/swp_core.dir/Formulation.cpp.o"
  "CMakeFiles/swp_core.dir/Formulation.cpp.o.d"
  "CMakeFiles/swp_core.dir/KernelExpander.cpp.o"
  "CMakeFiles/swp_core.dir/KernelExpander.cpp.o.d"
  "CMakeFiles/swp_core.dir/Registers.cpp.o"
  "CMakeFiles/swp_core.dir/Registers.cpp.o.d"
  "CMakeFiles/swp_core.dir/Schedule.cpp.o"
  "CMakeFiles/swp_core.dir/Schedule.cpp.o.d"
  "CMakeFiles/swp_core.dir/Verifier.cpp.o"
  "CMakeFiles/swp_core.dir/Verifier.cpp.o.d"
  "libswp_core.a"
  "libswp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
