
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/CircularArcs.cpp" "src/core/CMakeFiles/swp_core.dir/CircularArcs.cpp.o" "gcc" "src/core/CMakeFiles/swp_core.dir/CircularArcs.cpp.o.d"
  "/root/repo/src/core/Driver.cpp" "src/core/CMakeFiles/swp_core.dir/Driver.cpp.o" "gcc" "src/core/CMakeFiles/swp_core.dir/Driver.cpp.o.d"
  "/root/repo/src/core/Formulation.cpp" "src/core/CMakeFiles/swp_core.dir/Formulation.cpp.o" "gcc" "src/core/CMakeFiles/swp_core.dir/Formulation.cpp.o.d"
  "/root/repo/src/core/KernelExpander.cpp" "src/core/CMakeFiles/swp_core.dir/KernelExpander.cpp.o" "gcc" "src/core/CMakeFiles/swp_core.dir/KernelExpander.cpp.o.d"
  "/root/repo/src/core/Registers.cpp" "src/core/CMakeFiles/swp_core.dir/Registers.cpp.o" "gcc" "src/core/CMakeFiles/swp_core.dir/Registers.cpp.o.d"
  "/root/repo/src/core/Schedule.cpp" "src/core/CMakeFiles/swp_core.dir/Schedule.cpp.o" "gcc" "src/core/CMakeFiles/swp_core.dir/Schedule.cpp.o.d"
  "/root/repo/src/core/Verifier.cpp" "src/core/CMakeFiles/swp_core.dir/Verifier.cpp.o" "gcc" "src/core/CMakeFiles/swp_core.dir/Verifier.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/support/CMakeFiles/swp_support.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solver/CMakeFiles/swp_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ddg/CMakeFiles/swp_ddg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/machine/CMakeFiles/swp_machine.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
