file(REMOVE_RECURSE
  "libswp_support.a"
)
