file(REMOVE_RECURSE
  "CMakeFiles/swp_support.dir/Rational.cpp.o"
  "CMakeFiles/swp_support.dir/Rational.cpp.o.d"
  "CMakeFiles/swp_support.dir/TextTable.cpp.o"
  "CMakeFiles/swp_support.dir/TextTable.cpp.o.d"
  "libswp_support.a"
  "libswp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
