# Empty dependencies file for swp_support.
# This may be replaced when dependencies are built.
