file(REMOVE_RECURSE
  "CMakeFiles/bench_heuristic_vs_ilp.dir/bench_heuristic_vs_ilp.cpp.o"
  "CMakeFiles/bench_heuristic_vs_ilp.dir/bench_heuristic_vs_ilp.cpp.o.d"
  "bench_heuristic_vs_ilp"
  "bench_heuristic_vs_ilp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_heuristic_vs_ilp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
