# Empty compiler generated dependencies file for bench_heuristic_vs_ilp.
# This may be replaced when dependencies are built.
