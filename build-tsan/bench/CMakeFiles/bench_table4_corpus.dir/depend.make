# Empty dependencies file for bench_table4_corpus.
# This may be replaced when dependencies are built.
