file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_corpus.dir/bench_table4_corpus.cpp.o"
  "CMakeFiles/bench_table4_corpus.dir/bench_table4_corpus.cpp.o.d"
  "bench_table4_corpus"
  "bench_table4_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
