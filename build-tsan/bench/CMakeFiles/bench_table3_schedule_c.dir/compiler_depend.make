# Empty compiler generated dependencies file for bench_table3_schedule_c.
# This may be replaced when dependencies are built.
