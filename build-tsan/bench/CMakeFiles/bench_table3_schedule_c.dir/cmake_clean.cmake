file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_schedule_c.dir/bench_table3_schedule_c.cpp.o"
  "CMakeFiles/bench_table3_schedule_c.dir/bench_table3_schedule_c.cpp.o.d"
  "bench_table3_schedule_c"
  "bench_table3_schedule_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_schedule_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
