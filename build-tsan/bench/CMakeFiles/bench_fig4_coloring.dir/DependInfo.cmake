
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_coloring.cpp" "bench/CMakeFiles/bench_fig4_coloring.dir/bench_fig4_coloring.cpp.o" "gcc" "bench/CMakeFiles/bench_fig4_coloring.dir/bench_fig4_coloring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/service/CMakeFiles/swp_service.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sim/CMakeFiles/swp_sim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/workload/CMakeFiles/swp_workload.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/heuristics/CMakeFiles/swp_heuristics.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/core/CMakeFiles/swp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/machine/CMakeFiles/swp_machine.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/ddg/CMakeFiles/swp_ddg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/solver/CMakeFiles/swp_solver.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/support/CMakeFiles/swp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
