file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_coloring.dir/bench_fig4_coloring.cpp.o"
  "CMakeFiles/bench_fig4_coloring.dir/bench_fig4_coloring.cpp.o.d"
  "bench_fig4_coloring"
  "bench_fig4_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
