# Empty dependencies file for bench_fig4_coloring.
# This may be replaced when dependencies are built.
