file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_buffers.dir/bench_ext_buffers.cpp.o"
  "CMakeFiles/bench_ext_buffers.dir/bench_ext_buffers.cpp.o.d"
  "bench_ext_buffers"
  "bench_ext_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
