# Empty dependencies file for bench_ext_buffers.
# This may be replaced when dependencies are built.
