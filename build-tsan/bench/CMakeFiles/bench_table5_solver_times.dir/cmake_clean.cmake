file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_solver_times.dir/bench_table5_solver_times.cpp.o"
  "CMakeFiles/bench_table5_solver_times.dir/bench_table5_solver_times.cpp.o.d"
  "bench_table5_solver_times"
  "bench_table5_solver_times.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_solver_times.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
