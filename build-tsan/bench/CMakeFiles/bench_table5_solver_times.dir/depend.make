# Empty dependencies file for bench_table5_solver_times.
# This may be replaced when dependencies are built.
