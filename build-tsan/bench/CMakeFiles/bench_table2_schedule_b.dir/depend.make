# Empty dependencies file for bench_table2_schedule_b.
# This may be replaced when dependencies are built.
