file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_schedule_b.dir/bench_table2_schedule_b.cpp.o"
  "CMakeFiles/bench_table2_schedule_b.dir/bench_table2_schedule_b.cpp.o.d"
  "bench_table2_schedule_b"
  "bench_table2_schedule_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_schedule_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
