file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hazards.dir/bench_ablation_hazards.cpp.o"
  "CMakeFiles/bench_ablation_hazards.dir/bench_ablation_hazards.cpp.o.d"
  "bench_ablation_hazards"
  "bench_ablation_hazards.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hazards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
