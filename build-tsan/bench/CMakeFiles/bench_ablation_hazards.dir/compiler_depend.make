# Empty compiler generated dependencies file for bench_ablation_hazards.
# This may be replaced when dependencies are built.
