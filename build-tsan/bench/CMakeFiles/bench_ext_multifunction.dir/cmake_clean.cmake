file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multifunction.dir/bench_ext_multifunction.cpp.o"
  "CMakeFiles/bench_ext_multifunction.dir/bench_ext_multifunction.cpp.o.d"
  "bench_ext_multifunction"
  "bench_ext_multifunction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multifunction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
