# Empty dependencies file for bench_ext_multifunction.
# This may be replaced when dependencies are built.
