file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_speedup.dir/bench_ext_speedup.cpp.o"
  "CMakeFiles/bench_ext_speedup.dir/bench_ext_speedup.cpp.o.d"
  "bench_ext_speedup"
  "bench_ext_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
