# Empty compiler generated dependencies file for bench_ext_speedup.
# This may be replaced when dependencies are built.
