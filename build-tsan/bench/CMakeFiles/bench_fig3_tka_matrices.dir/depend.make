# Empty dependencies file for bench_fig3_tka_matrices.
# This may be replaced when dependencies are built.
