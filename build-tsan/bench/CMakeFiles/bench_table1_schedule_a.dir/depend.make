# Empty dependencies file for bench_table1_schedule_a.
# This may be replaced when dependencies are built.
