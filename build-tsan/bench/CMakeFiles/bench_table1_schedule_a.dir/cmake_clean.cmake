file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_schedule_a.dir/bench_table1_schedule_a.cpp.o"
  "CMakeFiles/bench_table1_schedule_a.dir/bench_table1_schedule_a.cpp.o.d"
  "bench_table1_schedule_a"
  "bench_table1_schedule_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_schedule_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
