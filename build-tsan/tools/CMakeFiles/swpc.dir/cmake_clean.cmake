file(REMOVE_RECURSE
  "CMakeFiles/swpc.dir/swpc.cpp.o"
  "CMakeFiles/swpc.dir/swpc.cpp.o.d"
  "swpc"
  "swpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
