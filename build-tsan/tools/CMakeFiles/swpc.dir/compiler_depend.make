# Empty compiler generated dependencies file for swpc.
# This may be replaced when dependencies are built.
