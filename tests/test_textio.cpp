//===- test_textio.cpp - Machine / loop text-format tests -----------------===//

#include "swp/core/Driver.h"
#include "swp/core/Verifier.h"
#include "swp/machine/Catalog.h"
#include "swp/textio/Parser.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

const char *MachineText = R"(
# A comment.
machine demo
futype FP count 2
table 10 01
futype LS count 1
table 100 010 001
variant 111 000 000
)";

const char *LoopText = R"(
loop sample
node ld class LS latency 2
node f0 class FP latency 2
node blk class LS latency 3 variant 1
edge ld -> f0 distance 0
edge f0 -> f0 distance 1 latency 2
edge f0 -> blk distance 0
)";

} // namespace

TEST(MachineParser, ParsesTypesCountsTables) {
  MachineModel M;
  std::string Err;
  ASSERT_TRUE(parseMachine(MachineText, M, Err)) << Err;
  EXPECT_EQ(M.name(), "demo");
  ASSERT_EQ(M.numTypes(), 2);
  EXPECT_EQ(M.type(0).Name, "FP");
  EXPECT_EQ(M.type(0).Count, 2);
  EXPECT_EQ(M.type(0).Table.numStages(), 2);
  EXPECT_EQ(M.type(0).Table.execTime(), 2);
  EXPECT_EQ(M.type(1).numVariants(), 2);
  EXPECT_TRUE(M.type(1).variant(1).busy(0, 2));
}

TEST(MachineParser, RoundTripsCatalogMachines) {
  for (const MachineModel &Orig :
       {ppc604Like(), exampleHazardMachine(), ppc604MultiFunction()}) {
    std::string Text = printMachine(Orig);
    MachineModel Parsed;
    std::string Err;
    ASSERT_TRUE(parseMachine(Text, Parsed, Err)) << Orig.name() << ": " << Err;
    ASSERT_EQ(Parsed.numTypes(), Orig.numTypes());
    for (int R = 0; R < Orig.numTypes(); ++R) {
      EXPECT_EQ(Parsed.type(R).Name, Orig.type(R).Name);
      EXPECT_EQ(Parsed.type(R).Count, Orig.type(R).Count);
      EXPECT_EQ(Parsed.type(R).numVariants(), Orig.type(R).numVariants());
      for (int V = 0; V < Orig.type(R).numVariants(); ++V) {
        const ReservationTable &A = Orig.type(R).variant(V);
        const ReservationTable &B = Parsed.type(R).variant(V);
        ASSERT_EQ(A.numStages(), B.numStages());
        ASSERT_EQ(A.execTime(), B.execTime());
        for (int S = 0; S < A.numStages(); ++S)
          for (int L = 0; L < A.execTime(); ++L)
            EXPECT_EQ(A.busy(S, L), B.busy(S, L));
      }
    }
  }
}

TEST(MachineParser, RejectsMalformedInput) {
  MachineModel M;
  std::string Err;
  EXPECT_FALSE(parseMachine("futype X\n", M, Err));
  EXPECT_NE(Err.find("line 1"), std::string::npos);
  EXPECT_FALSE(parseMachine("table 101\n", M, Err)) << "table before futype";
  EXPECT_FALSE(parseMachine("machine m\nfutype X count 0\ntable 1\n", M, Err));
  EXPECT_FALSE(parseMachine("machine m\nfutype X count 1\ntable 1 11\n", M,
                            Err))
      << "ragged stage rows";
  EXPECT_FALSE(parseMachine("machine m\nfutype X count 1\ntable 1x1\n", M,
                            Err));
  EXPECT_FALSE(parseMachine("machine m\nfutype X count 1\n", M, Err))
      << "missing table";
  EXPECT_FALSE(parseMachine("", M, Err)) << "no types";
  EXPECT_FALSE(parseMachine("bogus\n", M, Err));
  EXPECT_FALSE(parseMachine(
      "machine m\nfutype X count 1\nvariant 1\ntable 1\n", M, Err))
      << "variant before table";
}

TEST(LoopParser, ParsesNodesEdgesVariants) {
  MachineModel M;
  std::string Err;
  ASSERT_TRUE(parseMachine(MachineText, M, Err)) << Err;
  Ddg G;
  ASSERT_TRUE(parseLoop(LoopText, M, G, Err)) << Err;
  EXPECT_EQ(G.name(), "sample");
  ASSERT_EQ(G.numNodes(), 3);
  EXPECT_EQ(G.node(0).Name, "ld");
  EXPECT_EQ(G.node(0).OpClass, 1);
  EXPECT_EQ(G.node(2).Variant, 1);
  ASSERT_EQ(G.numEdges(), 3);
  EXPECT_EQ(G.edges()[0].Latency, 2) << "defaults to producer latency";
  EXPECT_EQ(G.edges()[1].Distance, 1);
}

TEST(LoopParser, AcceptsNumericClass) {
  MachineModel M;
  std::string Err;
  ASSERT_TRUE(parseMachine(MachineText, M, Err)) << Err;
  Ddg G;
  ASSERT_TRUE(parseLoop("loop g\nnode a class 0 latency 1\n", M, G, Err))
      << Err;
  EXPECT_EQ(G.node(0).OpClass, 0);
}

TEST(LoopParser, RejectsMalformedInput) {
  MachineModel M;
  std::string Err;
  ASSERT_TRUE(parseMachine(MachineText, M, Err)) << Err;
  Ddg G;
  EXPECT_FALSE(parseLoop("", M, G, Err)) << "empty loop";
  EXPECT_FALSE(parseLoop("node a class NOPE latency 1\n", M, G, Err));
  EXPECT_FALSE(parseLoop("node a class FP latency -2\n", M, G, Err));
  EXPECT_FALSE(parseLoop("node a class FP latency 1 variant 9\n", M, G, Err));
  EXPECT_FALSE(parseLoop(
      "node a class FP latency 1\nnode a class FP latency 1\n", M, G, Err))
      << "duplicate node";
  EXPECT_FALSE(parseLoop(
      "node a class FP latency 1\nedge a -> b distance 0\n", M, G, Err))
      << "unknown edge endpoint";
  EXPECT_FALSE(parseLoop(
      "node a class FP latency 1\nnode b class FP latency 1\n"
      "edge a -> b distance 0\nedge b -> a distance 0\n",
      M, G, Err))
      << "zero-distance cycle";
}

TEST(LoopParser, RoundTripsKernels) {
  MachineModel M = ppc604Like();
  for (const Ddg &Orig : classicKernels()) {
    std::string Text = printLoop(Orig, M);
    Ddg Parsed;
    std::string Err;
    ASSERT_TRUE(parseLoop(Text, M, Parsed, Err)) << Orig.name() << ": " << Err;
    ASSERT_EQ(Parsed.numNodes(), Orig.numNodes());
    ASSERT_EQ(Parsed.numEdges(), Orig.numEdges());
    for (int I = 0; I < Orig.numNodes(); ++I) {
      EXPECT_EQ(Parsed.node(I).Name, Orig.node(I).Name);
      EXPECT_EQ(Parsed.node(I).OpClass, Orig.node(I).OpClass);
      EXPECT_EQ(Parsed.node(I).Latency, Orig.node(I).Latency);
    }
    for (int E = 0; E < Orig.numEdges(); ++E) {
      EXPECT_EQ(Parsed.edges()[static_cast<size_t>(E)].Src,
                Orig.edges()[static_cast<size_t>(E)].Src);
      EXPECT_EQ(Parsed.edges()[static_cast<size_t>(E)].Latency,
                Orig.edges()[static_cast<size_t>(E)].Latency);
    }
  }
}

TEST(MachineParser, RejectsOutOfRangeAndDuplicates) {
  MachineModel M;
  std::string Err;
  // Duplicate futype names would make loop-format class references
  // ambiguous.
  EXPECT_FALSE(parseMachine(
      "machine m\nfutype X count 1\ntable 1\nfutype X count 2\ntable 1\n", M,
      Err));
  EXPECT_NE(Err.find("duplicate futype"), std::string::npos);
  EXPECT_NE(Err.find("line 4"), std::string::npos);
  // Counts beyond MaxParsedMagnitude overflow downstream arithmetic even
  // though they fit an int; counts beyond long just fail to parse.
  EXPECT_FALSE(parseMachine("machine m\nfutype X count 2000000\ntable 1\n",
                            M, Err));
  EXPECT_NE(Err.find("out-of-range"), std::string::npos);
  EXPECT_FALSE(parseMachine(
      "machine m\nfutype X count 99999999999999999999\ntable 1\n", M, Err));
  // A bare "table" directive has zero stage rows.
  EXPECT_FALSE(parseMachine("machine m\nfutype X count 1\ntable\n", M, Err));
  EXPECT_NE(Err.find("at least one stage row"), std::string::npos);
  // EOF-detected problems still carry a line number.
  EXPECT_FALSE(parseMachine("# only a comment\n", M, Err));
  EXPECT_NE(Err.find("line"), std::string::npos);
}

TEST(LoopParser, RejectsOverflowingValues) {
  MachineModel M;
  std::string Err;
  ASSERT_TRUE(parseMachine(MachineText, M, Err)) << Err;
  Ddg G;
  EXPECT_FALSE(parseLoop("node a class FP latency 2000000\n", M, G, Err));
  EXPECT_NE(Err.find("out-of-range latency"), std::string::npos);
  EXPECT_FALSE(parseLoop("node a class FP latency 99999999999999999999\n", M,
                         G, Err));
  EXPECT_FALSE(parseLoop(
      "node a class FP latency 1\nedge a -> a distance 2000000\n", M, G,
      Err));
  EXPECT_NE(Err.find("out-of-range distance"), std::string::npos);
  EXPECT_FALSE(parseLoop(
      "node a class FP latency 1\nedge a -> a distance 1 latency -3\n", M, G,
      Err));
  EXPECT_FALSE(parseLoop("node a class 99 latency 1\n", M, G, Err))
      << "numeric class out of range";
  EXPECT_NE(Err.find("line 1"), std::string::npos);
}

TEST(TextIo, ExpectedWrappersCarryTypedErrors) {
  Expected<MachineModel> M = parseMachineText(MachineText);
  ASSERT_TRUE(M.ok()) << M.status().str();
  EXPECT_EQ(M->numTypes(), 2);

  Expected<MachineModel> BadM = parseMachineText("bogus\n");
  ASSERT_FALSE(BadM.ok());
  EXPECT_EQ(BadM.status().code(), StatusCode::ParseError);
  EXPECT_EQ(BadM.status().phase(), "parse-machine");
  EXPECT_NE(BadM.status().message().find("line 1"), std::string::npos);

  Expected<Ddg> G = parseLoopText(LoopText, *M);
  ASSERT_TRUE(G.ok()) << G.status().str();
  EXPECT_EQ(G->numNodes(), 3);

  Expected<Ddg> BadG = parseLoopText("node a class NOPE latency 1\n", *M);
  ASSERT_FALSE(BadG.ok());
  EXPECT_EQ(BadG.status().code(), StatusCode::ParseError);
  EXPECT_EQ(BadG.status().phase(), "parse-loop");
  EXPECT_NE(BadG.status().str().find("parse-error"), std::string::npos);
}

TEST(TextIo, ParsedInputsScheduleEndToEnd) {
  MachineModel M;
  std::string Err;
  ASSERT_TRUE(parseMachine(MachineText, M, Err)) << Err;
  Ddg G;
  ASSERT_TRUE(parseLoop(LoopText, M, G, Err)) << Err;
  SchedulerResult R = scheduleLoop(G, M);
  ASSERT_TRUE(R.found());
  EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
}
