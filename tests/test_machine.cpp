//===- test_machine.cpp - Reservation tables and machine models -----------===//

#include "swp/machine/Catalog.h"
#include "swp/machine/MachineModel.h"
#include "swp/machine/ReservationTable.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

using namespace swp;

TEST(ReservationTable, CleanPipelinedShape) {
  ReservationTable T = ReservationTable::cleanPipelined(3);
  EXPECT_EQ(T.numStages(), 3);
  EXPECT_EQ(T.execTime(), 3);
  EXPECT_TRUE(T.isCleanPipelined());
  EXPECT_TRUE(T.busy(0, 0));
  EXPECT_FALSE(T.busy(0, 1));
  EXPECT_TRUE(T.busy(2, 2));
}

TEST(ReservationTable, NonPipelinedShape) {
  ReservationTable T = ReservationTable::nonPipelined(4);
  EXPECT_EQ(T.numStages(), 1);
  EXPECT_EQ(T.execTime(), 4);
  EXPECT_FALSE(T.isCleanPipelined());
  for (int L = 0; L < 4; ++L)
    EXPECT_TRUE(T.busy(0, L));
}

TEST(ReservationTable, BusyColumns) {
  ReservationTable T = exampleHazardMachine().type(0).Table;
  // FP: stage1 @ {0}, stage2 @ {1}, stage3 @ {1,2}.
  EXPECT_EQ(T.busyColumns(0), (std::vector<int>{0}));
  EXPECT_EQ(T.busyColumns(1), (std::vector<int>{1}));
  EXPECT_EQ(T.busyColumns(2), (std::vector<int>{1, 2}));
}

TEST(ReservationTable, ModuloConstraint) {
  // Stage busy at columns 1 and 3 collides with itself at T = 2.
  ReservationTable T = moduloViolationTable();
  EXPECT_FALSE(T.satisfiesModuloConstraint(2));
  EXPECT_TRUE(T.satisfiesModuloConstraint(3));
  EXPECT_TRUE(T.satisfiesModuloConstraint(4));
  EXPECT_FALSE(T.satisfiesModuloConstraint(1));
}

TEST(ReservationTable, CleanAlwaysSatisfiesModulo) {
  ReservationTable T = ReservationTable::cleanPipelined(5);
  for (int Period = 1; Period <= 8; ++Period)
    EXPECT_TRUE(T.satisfiesModuloConstraint(Period));
}

TEST(ReservationTable, ConflictsAtOffsetClean) {
  // Clean pipeline: two ops on one unit conflict only at equal offsets.
  ReservationTable T = ReservationTable::cleanPipelined(3);
  int Period = 4;
  EXPECT_TRUE(T.conflictsAtOffset(0, Period));
  for (int D = 1; D < Period; ++D)
    EXPECT_FALSE(T.conflictsAtOffset(D, Period));
}

TEST(ReservationTable, ConflictsAtOffsetNonPipelined) {
  // Non-pipelined exec 2 at T = 4: offsets within +-1 (mod 4) conflict.
  ReservationTable T = ReservationTable::nonPipelined(2);
  EXPECT_TRUE(T.conflictsAtOffset(0, 4));
  EXPECT_TRUE(T.conflictsAtOffset(1, 4));
  EXPECT_FALSE(T.conflictsAtOffset(2, 4));
  EXPECT_TRUE(T.conflictsAtOffset(3, 4));
}

TEST(ReservationTable, ConflictSymmetry) {
  ReservationTable T = exampleHazardMachine().type(0).Table;
  for (int Period = 3; Period <= 8; ++Period)
    for (int D = 0; D < Period; ++D)
      EXPECT_EQ(T.conflictsAtOffset(D, Period),
                T.conflictsAtOffset((Period - D) % Period, Period))
          << "delta " << D << " period " << Period;
}

TEST(ReservationTable, RenderShowsGrid) {
  std::string Out = ReservationTable::nonPipelined(2).render();
  EXPECT_NE(Out.find("Stage 1"), std::string::npos);
  EXPECT_NE(Out.find("1"), std::string::npos);
}

TEST(MachineModel, FindTypeAndUnits) {
  MachineModel M = ppc604Like();
  EXPECT_EQ(M.numTypes(), 5);
  EXPECT_EQ(M.findType("FPU"), 2);
  EXPECT_EQ(M.findType("nope"), -1);
  EXPECT_EQ(M.totalUnits(), 6);
  EXPECT_EQ(M.globalUnitIndex(0, 1), 1);
  EXPECT_EQ(M.globalUnitIndex(1, 0), 2);
  EXPECT_EQ(M.globalUnitIndex(4, 0), 5);
}

TEST(MachineModel, ResourceMiiCleanPipeline) {
  // 3 FP ops on 1 clean FP unit: one issue slot each -> T_res = 3.
  MachineModel M = exampleCleanMachine();
  Ddg G("g");
  for (int I = 0; I < 3; ++I)
    G.addNode("f" + std::to_string(I), 0, 2);
  EXPECT_EQ(M.resourceMii(G), 3);
}

TEST(MachineModel, ResourceMiiNonPipelined) {
  // 3 FP ops, exec 2, on 2 non-pipelined units: ceil(6/2) = 3.
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G("g");
  for (int I = 0; I < 3; ++I)
    G.addNode("f" + std::to_string(I), 0, 2);
  EXPECT_EQ(M.resourceMii(G), 3);
}

TEST(MachineModel, ResourceMiiHazardStage) {
  // Hazard FP: stage 3 busy 2 cycles/op; 3 ops on 1 unit -> ceil(6/1) = 6.
  MachineModel M = exampleHazardMachine();
  Ddg G("g");
  for (int I = 0; I < 3; ++I)
    G.addNode("f" + std::to_string(I), 0, 2);
  EXPECT_EQ(M.resourceMii(G), 6);
}

TEST(MachineModel, ResourceMiiTakesMaxOverTypes) {
  MachineModel M = exampleCleanMachine();
  Ddg G("g");
  G.addNode("f", 0, 2);
  for (int I = 0; I < 4; ++I)
    G.addNode("m" + std::to_string(I), 1, 1);
  EXPECT_EQ(M.resourceMii(G), 4) << "4 LS ops on 1 LS unit dominate";
}

TEST(MachineModel, ResourceMiiIgnoresUnusedTypes) {
  MachineModel M = exampleHazardMachine();
  Ddg G("g");
  G.addNode("ls", 1, 1);
  EXPECT_EQ(M.resourceMii(G), 2) << "LS stage 1 is busy 2 cycles per op";
}

TEST(MachineModel, ModuloFeasibleChecksOnlyUsedTypes) {
  MachineModel M("m");
  M.addFuType("BAD", 1, moduloViolationTable());
  M.addFuType("OK", 1, ReservationTable::cleanPipelined(2));
  Ddg OnlyOk("g");
  OnlyOk.addNode("x", 1, 1);
  EXPECT_TRUE(M.moduloFeasible(OnlyOk, 2));
  Ddg UsesBad("g2");
  UsesBad.addNode("y", 0, 1);
  EXPECT_FALSE(M.moduloFeasible(UsesBad, 2));
  EXPECT_TRUE(M.moduloFeasible(UsesBad, 4));
}

TEST(Catalog, MachineShapes) {
  EXPECT_EQ(exampleCleanMachine().numTypes(), 2);
  EXPECT_TRUE(exampleCleanMachine().type(0).Table.isCleanPipelined());
  EXPECT_FALSE(exampleNonPipelinedMachine().type(0).Table.isCleanPipelined());
  EXPECT_EQ(exampleNonPipelinedMachine().type(0).Count, 2);
  EXPECT_EQ(exampleHazardMachine().type(0).Table.numStages(), 3);
  EXPECT_EQ(ppc604Like().findType("FDIV"), 4);
  EXPECT_EQ(cleanVliw().numTypes(), ppc604Like().numTypes());
  for (int R = 0; R < cleanVliw().numTypes(); ++R)
    EXPECT_TRUE(cleanVliw().type(R).Table.isCleanPipelined());
}

TEST(Catalog, KernelsWellFormedForPpc604) {
  MachineModel M = ppc604Like();
  for (const Ddg &G : classicKernels())
    EXPECT_TRUE(G.isWellFormed(M.numTypes())) << G.name();
}

TEST(MachineModel, VariantAccessors) {
  MachineModel M = ppc604MultiFunction();
  EXPECT_EQ(M.type(2).numVariants(), 2);
  EXPECT_EQ(M.type(0).numVariants(), 1);
  Ddg G("g");
  int Div = G.addNodeVariant("d", 2, 1, 8);
  int Mul = G.addNode("m", 2, 4);
  EXPECT_EQ(M.tableFor(G.node(Div)).execTime(), 8);
  EXPECT_EQ(M.tableFor(G.node(Mul)).execTime(), 4);
}

TEST(MachineModel, ModuloFeasibleChecksVariants) {
  MachineModel M("m");
  int R = M.addFuType("X", 1, ReservationTable::cleanPipelined(2));
  M.addVariant(R, moduloViolationTable()); // Self-conflicts at T = 2.
  Ddg UsesPrimary("a");
  UsesPrimary.addNode("p", 0, 1);
  EXPECT_TRUE(M.moduloFeasible(UsesPrimary, 2));
  Ddg UsesVariant("b");
  UsesVariant.addNodeVariant("v", 0, 1, 1);
  EXPECT_FALSE(M.moduloFeasible(UsesVariant, 2));
  EXPECT_TRUE(M.moduloFeasible(UsesVariant, 4));
}

TEST(MachineModel, AcceptsDdgRejections) {
  MachineModel M = ppc604MultiFunction();
  Ddg Fits("ok");
  Fits.addNode("a", 0, 1);
  Fits.addNodeVariant("b", 2, 1, 8);
  EXPECT_TRUE(M.acceptsDdg(Fits));

  Ddg ClassHigh("bad-class");
  ClassHigh.addNode("x", M.numTypes(), 1);
  EXPECT_FALSE(M.acceptsDdg(ClassHigh));

  Ddg ClassNeg("neg-class");
  ClassNeg.addNode("x", -1, 1);
  EXPECT_FALSE(M.acceptsDdg(ClassNeg));

  Ddg VariantHigh("bad-variant");
  VariantHigh.addNodeVariant("x", 2, M.type(2).numVariants(), 1);
  EXPECT_FALSE(M.acceptsDdg(VariantHigh));

  Ddg VariantOnPlainType("variant-on-plain");
  VariantOnPlainType.addNodeVariant("x", 0, 1, 1);
  EXPECT_FALSE(M.acceptsDdg(VariantOnPlainType))
      << "type 0 has only the primary table";

  Ddg VariantNeg("neg-variant");
  VariantNeg.addNodeVariant("x", 2, -1, 1);
  EXPECT_FALSE(M.acceptsDdg(VariantNeg));
}

TEST(MachineModel, TableForSelectsVariantPerNode) {
  MachineModel M("m");
  int R = M.addFuType("X", 1, ReservationTable::cleanPipelined(3));
  int V1 = M.addVariant(R, ReservationTable::nonPipelined(2));
  int V2 = M.addVariant(R, ReservationTable::nonPipelined(5));
  ASSERT_EQ(V1, 1);
  ASSERT_EQ(V2, 2);
  EXPECT_EQ(M.type(R).numVariants(), 3);

  Ddg G("g");
  int Primary = G.addNode("p", R, 3);
  int Mid = G.addNodeVariant("m", R, V1, 2);
  int Slow = G.addNodeVariant("s", R, V2, 5);
  EXPECT_TRUE(M.tableFor(G.node(Primary)).isCleanPipelined());
  EXPECT_EQ(M.tableFor(G.node(Primary)).execTime(), 3);
  EXPECT_EQ(M.tableFor(G.node(Mid)).execTime(), 2);
  EXPECT_FALSE(M.tableFor(G.node(Mid)).isCleanPipelined());
  EXPECT_EQ(M.tableFor(G.node(Slow)).execTime(), 5);
}

TEST(ReservationTable, CrossTableConflictWithUnequalStageCounts) {
  // A 1-stage table only collides with the other table's stage 1.
  ReservationTable OneStage = ReservationTable::nonPipelined(2);
  ReservationTable ThreeStage = ReservationTable::cleanPipelined(3);
  // OneStage busy stage1 @ {0,1}; ThreeStage busy stage1 @ {0} only.
  EXPECT_TRUE(tablesConflictAtOffset(OneStage, ThreeStage, 0, 6));
  EXPECT_TRUE(tablesConflictAtOffset(OneStage, ThreeStage, 1, 6));
  EXPECT_FALSE(tablesConflictAtOffset(OneStage, ThreeStage, 2, 6))
      << "stages 2-3 of the clean pipe do not exist on the 1-stage table";
}
