//===- test_admission.cpp - Admission control & load shedding tests -------===//
//
// The AdmissionController's degradation ladder (full effort -> reduced
// effort -> heuristic-only -> shed), per-tenant token buckets (zero refill
// = hard quota, which keeps these tests deterministic), the degrade()
// effort mapping, and the counter/stats contract.
//
//===----------------------------------------------------------------------===//

#include "swp/service/Admission.h"

#include <gtest/gtest.h>

#include <string>

using namespace swp;

namespace {

AdmissionOptions ladderOptions() {
  AdmissionOptions O;
  O.ReducedEffortAt = 1;
  O.HeuristicOnlyAt = 2;
  O.MaxInFlight = 3;
  return O;
}

} // namespace

TEST(Admission, AdmitsAtFullServiceWhenIdle) {
  AdmissionController C(ladderOptions());
  AdmissionDecision D = C.admit("t", 0.0);
  EXPECT_TRUE(D.admitted());
  EXPECT_EQ(D.Level, DegradationLevel::None);
  EXPECT_TRUE(D.Reason.empty());
  C.complete();
  EXPECT_EQ(C.stats().Admitted, 1u);
  EXPECT_EQ(C.stats().InFlight, 0);
}

TEST(Admission, DegradesMonotonicallyWithDepth) {
  AdmissionController C(ladderOptions());
  AdmissionDecision D1 = C.admit("t", 0.0);
  AdmissionDecision D2 = C.admit("t", 0.0);
  AdmissionDecision D3 = C.admit("t", 0.0);
  AdmissionDecision D4 = C.admit("t", 0.0);

  EXPECT_EQ(D1.Level, DegradationLevel::None);
  EXPECT_EQ(D2.Level, DegradationLevel::ReducedEffort);
  EXPECT_EQ(D3.Level, DegradationLevel::HeuristicOnly);
  EXPECT_EQ(D4.Level, DegradationLevel::Shed);
  EXPECT_FALSE(D4.admitted());
  // Every degraded decision names its cause for the response.
  EXPECT_FALSE(D2.Reason.empty());
  EXPECT_FALSE(D3.Reason.empty());
  EXPECT_FALSE(D4.Reason.empty());

  AdmissionStats S = C.stats();
  EXPECT_EQ(S.Admitted, 3u);
  EXPECT_EQ(S.ReducedEffort, 1u);
  EXPECT_EQ(S.HeuristicOnly, 1u);
  EXPECT_EQ(S.Shed, 1u);
  EXPECT_EQ(S.TenantShed, 0u);
  EXPECT_EQ(S.InFlight, 3);
  EXPECT_EQ(S.InFlightHighWater, 3);
}

TEST(Admission, CompletionRestoresFullService) {
  AdmissionController C(ladderOptions());
  (void)C.admit("t", 0.0);
  (void)C.admit("t", 0.0);
  C.complete();
  C.complete();
  AdmissionDecision D = C.admit("t", 0.0);
  EXPECT_EQ(D.Level, DegradationLevel::None);
}

TEST(Admission, HostileThresholdsAreReordered) {
  // A config with thresholds above MaxInFlight must still degrade
  // monotonically: the ctor clamps reduced <= heuristic <= shed.
  AdmissionOptions O;
  O.MaxInFlight = 2;
  O.ReducedEffortAt = 10;
  O.HeuristicOnlyAt = 10;
  AdmissionController C(O);
  EXPECT_EQ(C.options().HeuristicOnlyAt, 2);
  EXPECT_EQ(C.options().ReducedEffortAt, 2);
  (void)C.admit("t", 0.0);
  (void)C.admit("t", 0.0);
  EXPECT_EQ(C.admit("t", 0.0).Level, DegradationLevel::Shed);
}

TEST(Admission, ZeroMaxInFlightShedsEverything) {
  AdmissionOptions O;
  O.MaxInFlight = 0;
  AdmissionController C(O);
  AdmissionDecision D = C.admit("t", 0.0);
  EXPECT_EQ(D.Level, DegradationLevel::Shed);
  EXPECT_NE(D.Reason.find("queue full"), std::string::npos);
}

TEST(Admission, TenantBudgetIsAHardQuotaWithoutRefill) {
  AdmissionOptions O;
  O.TenantBudgetSeconds = 2.0;
  O.TenantRefillPerSecond = 0.0; // Never refills: deterministic.
  O.DefaultChargeSeconds = 1.0;
  AdmissionController C(O);

  EXPECT_TRUE(C.admit("a", 0.0).admitted());
  C.complete();
  EXPECT_TRUE(C.admit("a", 0.0).admitted());
  C.complete();
  AdmissionDecision D = C.admit("a", 0.0);
  EXPECT_EQ(D.Level, DegradationLevel::Shed);
  EXPECT_NE(D.Reason.find("budget"), std::string::npos);

  // Another tenant's bucket is untouched.
  EXPECT_TRUE(C.admit("b", 0.0).admitted());
  C.complete();

  AdmissionStats S = C.stats();
  EXPECT_EQ(S.Shed, 1u);
  EXPECT_EQ(S.TenantShed, 1u);
}

TEST(Admission, DeadlineIsTheBudgetCharge) {
  AdmissionOptions O;
  O.TenantBudgetSeconds = 5.0;
  O.TenantRefillPerSecond = 0.0;
  AdmissionController C(O);

  // A 4-second deadline charges 4 of the 5 tokens; a second 4-second
  // request no longer fits, but a 1-second one does.
  EXPECT_TRUE(C.admit("a", 4.0).admitted());
  C.complete();
  EXPECT_EQ(C.admit("a", 4.0).Level, DegradationLevel::Shed);
  EXPECT_TRUE(C.admit("a", 1.0).admitted());
  C.complete();
}

TEST(Admission, RefillRestoresTenantBudget) {
  AdmissionOptions O;
  O.TenantBudgetSeconds = 1.0;
  O.TenantRefillPerSecond = 1e9; // Effectively instant for the test.
  AdmissionController C(O);
  EXPECT_TRUE(C.admit("a", 1.0).admitted());
  C.complete();
  // The bucket is empty, but the (huge) refill rate tops it back up on the
  // next admit's lazy refill.
  EXPECT_TRUE(C.admit("a", 1.0).admitted());
  C.complete();
}

TEST(Admission, DegradeTightensOnlyReducedEffort) {
  AdmissionOptions O;
  O.ReducedTimeLimitPerT = 0.25;
  O.ReducedMaxTSlack = 8;
  AdmissionController C(O);

  JobOptions Base; // Service defaults: no per-job overrides.
  JobOptions None = C.degrade(Base, DegradationLevel::None);
  EXPECT_EQ(None.TimeLimitPerT, Base.TimeLimitPerT);
  EXPECT_EQ(None.MaxTSlack, Base.MaxTSlack);

  JobOptions Reduced = C.degrade(Base, DegradationLevel::ReducedEffort);
  EXPECT_EQ(Reduced.TimeLimitPerT, 0.25);
  EXPECT_EQ(Reduced.MaxTSlack, 8);

  // An already-tighter request is not loosened.
  JobOptions Tight;
  Tight.TimeLimitPerT = 0.1;
  Tight.MaxTSlack = 2;
  JobOptions Kept = C.degrade(Tight, DegradationLevel::ReducedEffort);
  EXPECT_EQ(Kept.TimeLimitPerT, 0.1);
  EXPECT_EQ(Kept.MaxTSlack, 2);

  // HeuristicOnly bypasses the exact engines; nothing to tighten.
  JobOptions H = C.degrade(Base, DegradationLevel::HeuristicOnly);
  EXPECT_EQ(H.TimeLimitPerT, Base.TimeLimitPerT);
  EXPECT_EQ(H.MaxTSlack, Base.MaxTSlack);
}

TEST(Admission, LevelNamesAreStable) {
  EXPECT_STREQ(degradationLevelName(DegradationLevel::None), "none");
  EXPECT_STREQ(degradationLevelName(DegradationLevel::ReducedEffort),
               "reduced-effort");
  EXPECT_STREQ(degradationLevelName(DegradationLevel::HeuristicOnly),
               "heuristic-only");
  EXPECT_STREQ(degradationLevelName(DegradationLevel::Shed), "shed");
}
