//===- test_formulation.cpp - ILP formulation and driver tests ------------===//

#include "swp/core/Driver.h"
#include "swp/core/Formulation.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/machine/Catalog.h"
#include "swp/solver/BranchAndBound.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

/// Solves one fixed-T model and returns (status, schedule).
MilpStatus solveAt(const Ddg &G, const MachineModel &M, int T,
                   MappingKind Mapping, ModuloSchedule &Out) {
  SchedulerOptions Opts;
  Opts.Mapping = Mapping;
  Opts.TimeLimitPerT = 30.0;
  return scheduleAtT(G, M, T, Opts, Out);
}

} // namespace

TEST(Formulation, TrivialSingleOp) {
  MachineModel M = exampleCleanMachine();
  Ddg G("one");
  G.addNode("f", 0, 2);
  ModuloSchedule S;
  ASSERT_EQ(solveAt(G, M, 1, MappingKind::Fixed, S), MilpStatus::Optimal);
  EXPECT_EQ(S.T, 1);
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_TRUE(V.Ok) << V.Error;
}

TEST(Formulation, DependenceChainRespected) {
  MachineModel M = exampleCleanMachine();
  Ddg G("chain");
  int A = G.addNode("a", 0, 2);
  int B = G.addNode("b", 0, 2);
  G.addEdge(A, B, 0);
  ModuloSchedule S;
  ASSERT_EQ(solveAt(G, M, 2, MappingKind::Fixed, S), MilpStatus::Optimal);
  EXPECT_GE(S.StartTime[1] - S.StartTime[0], 2);
  EXPECT_TRUE(verifySchedule(G, M, S).Ok);
}

TEST(Formulation, SelfRecurrenceInfeasibleBelowTDep) {
  MachineModel M = exampleCleanMachine();
  Ddg G("self");
  int A = G.addNode("a", 0, 2);
  G.addEdge(A, A, 1);
  ModuloSchedule S;
  EXPECT_EQ(solveAt(G, M, 1, MappingKind::Fixed, S), MilpStatus::Infeasible);
  EXPECT_EQ(solveAt(G, M, 2, MappingKind::Fixed, S), MilpStatus::Optimal);
}

TEST(Formulation, CapacityForcesInterleaving) {
  // 2 independent FP ops on 1 clean unit at T = 2: distinct offsets.
  MachineModel M = exampleCleanMachine();
  Ddg G("two");
  G.addNode("f0", 0, 2);
  G.addNode("f1", 0, 2);
  ModuloSchedule S;
  ASSERT_EQ(solveAt(G, M, 2, MappingKind::Fixed, S), MilpStatus::Optimal);
  EXPECT_NE(S.offset(0), S.offset(1));
  // And T = 1 is infeasible: both would share the issue slot.
  EXPECT_EQ(solveAt(G, M, 1, MappingKind::Fixed, S), MilpStatus::Infeasible);
}

TEST(Formulation, NonPipelinedOccupancy) {
  // 2 independent FP ops, exec 2, one unit: T = 4 needs offsets 2 apart.
  MachineModel M("m");
  M.addFuType("FP", 1, ReservationTable::nonPipelined(2));
  Ddg G("two");
  G.addNode("f0", 0, 2);
  G.addNode("f1", 0, 2);
  ModuloSchedule S;
  EXPECT_EQ(solveAt(G, M, 3, MappingKind::Fixed, S), MilpStatus::Infeasible)
      << "exec-2 ops cannot pack into T=3 on one unit";
  ASSERT_EQ(solveAt(G, M, 4, MappingKind::Fixed, S), MilpStatus::Optimal);
  int Delta = ((S.offset(1) - S.offset(0)) % 4 + 4) % 4;
  EXPECT_EQ(Delta, 2);
  EXPECT_TRUE(verifySchedule(G, M, S).Ok);
}

TEST(Formulation, ScheduleAPhenomenon) {
  // The paper's Schedule A story: at T = 3 on two non-pipelined FP units,
  // run-time mapping admits a schedule but fixed mapping does not.
  MachineModel M = exampleTwoFpMachine();
  Ddg G = scheduleALoop();
  ModuloSchedule RunTime;
  ASSERT_EQ(solveAt(G, M, 3, MappingKind::RunTime, RunTime),
            MilpStatus::Optimal);
  EXPECT_TRUE(verifySchedule(G, M, RunTime).Ok);
  std::string Err;
  EXPECT_TRUE(simulateRunTimeMapping(G, M, RunTime, 8, &Err)) << Err;

  ModuloSchedule Fixed;
  EXPECT_EQ(solveAt(G, M, 3, MappingKind::Fixed, Fixed),
            MilpStatus::Infeasible)
      << "the circular-arc 3-clique needs 3 colors on 2 units";
  ASSERT_EQ(solveAt(G, M, 4, MappingKind::Fixed, Fixed), MilpStatus::Optimal);
  EXPECT_TRUE(verifySchedule(G, M, Fixed).Ok);
}

TEST(Formulation, SingleUnitExclusionMatchesColoring) {
  // A 1-unit type uses direct exclusion rows; result must match what the
  // verifier accepts.
  MachineModel M = exampleHazardMachine();
  Ddg G("fp2");
  G.addNode("f0", 0, 2);
  G.addNode("f1", 0, 2);
  ModuloSchedule S;
  // Stage 3 is busy 2 cycles per op: 2 ops need T >= 4 on one unit.
  EXPECT_EQ(solveAt(G, M, 3, MappingKind::Fixed, S), MilpStatus::Infeasible);
  ASSERT_EQ(solveAt(G, M, 4, MappingKind::Fixed, S), MilpStatus::Optimal);
  EXPECT_TRUE(verifySchedule(G, M, S).Ok) << verifySchedule(G, M, S).Error;
}

TEST(Formulation, ExtractionRoundTrip) {
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  FormulationOptions FOpts;
  FormulationVars Vars;
  MilpModel Model = buildScheduleModel(G, M, 4, FOpts, Vars);
  MilpResult R = solveMilp(Model);
  ASSERT_TRUE(R.hasSolution());
  ModuloSchedule S = extractSchedule(G, M, 4, FOpts, Vars, R.X);
  EXPECT_EQ(S.T, 4);
  ASSERT_EQ(S.StartTime.size(), 6u);
  ASSERT_TRUE(S.hasMapping());
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_TRUE(V.Ok) << V.Error;
}

TEST(Formulation, RunTimeMappingHasNoMappingVector) {
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  FormulationOptions FOpts;
  FOpts.Mapping = MappingKind::RunTime;
  FormulationVars Vars;
  MilpModel Model = buildScheduleModel(G, M, 4, FOpts, Vars);
  MilpResult R = solveMilp(Model);
  ASSERT_TRUE(R.hasSolution());
  ModuloSchedule S = extractSchedule(G, M, 4, FOpts, Vars, R.X);
  EXPECT_FALSE(S.hasMapping());
  EXPECT_TRUE(verifySchedule(G, M, S).Ok);
}

TEST(Driver, MotivatingLoopBounds) {
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  SchedulerResult R = scheduleLoop(G, M);
  EXPECT_EQ(R.TDep, 2);
  EXPECT_EQ(R.TRes, 3);
  EXPECT_EQ(R.TLowerBound, 3);
  ASSERT_TRUE(R.found());
  EXPECT_TRUE(R.ProvenRateOptimal);
  EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
}

TEST(Driver, HazardMachineRaisesII) {
  Ddg G = motivatingLoop();
  SchedulerResult Clean = scheduleLoop(G, exampleCleanMachine());
  SchedulerResult Hazard = scheduleLoop(G, exampleHazardMachine());
  ASSERT_TRUE(Clean.found());
  ASSERT_TRUE(Hazard.found());
  EXPECT_GT(Hazard.Schedule.T, Clean.Schedule.T)
      << "structural hazards must cost initiation interval here";
}

TEST(Driver, SkipsModuloViolatingT) {
  MachineModel M("m");
  M.addFuType("BAD", 1, moduloViolationTable());
  Ddg G("g");
  int A = G.addNode("a", 0, 2);
  G.addEdge(A, A, 1); // T_dep = 2, but T = 2 violates the modulo constraint.
  SchedulerResult R = scheduleLoop(G, M);
  ASSERT_TRUE(R.found());
  EXPECT_GE(R.Schedule.T, 3);
  ASSERT_FALSE(R.Attempts.empty());
  EXPECT_TRUE(R.Attempts[0].ModuloSkipped);
  EXPECT_TRUE(R.ProvenRateOptimal) << "a modulo skip still counts as proof";
}

TEST(Driver, AttemptRecordsInfeasibleThenFeasible) {
  MachineModel M = exampleTwoFpMachine();
  Ddg G = scheduleALoop();
  SchedulerOptions Opts;
  SchedulerResult R = scheduleLoop(G, M, Opts);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(R.Schedule.T, 4);
  ASSERT_GE(R.Attempts.size(), 2u);
  EXPECT_EQ(R.Attempts[0].T, 3);
  EXPECT_EQ(R.Attempts[0].Status, MilpStatus::Infeasible);
  EXPECT_TRUE(R.ProvenRateOptimal);
}

TEST(Driver, RunTimeMappingCanBeatFixed) {
  MachineModel M = exampleTwoFpMachine();
  Ddg G = scheduleALoop();
  SchedulerOptions RT;
  RT.Mapping = MappingKind::RunTime;
  SchedulerResult RunTime = scheduleLoop(G, M, RT);
  SchedulerResult Fixed = scheduleLoop(G, M);
  ASSERT_TRUE(RunTime.found());
  ASSERT_TRUE(Fixed.found());
  EXPECT_EQ(RunTime.Schedule.T, 3);
  EXPECT_EQ(Fixed.Schedule.T, 4);
}

TEST(Driver, CleanMachineFixedEqualsRunTime) {
  // On clean pipelines mapping is free: conflicts happen only at equal
  // offsets, which capacity already bounds by the unit count.
  MachineModel M = exampleCleanMachine();
  for (const char *Which : {"motivating", "schedule-a"}) {
    Ddg G = std::string(Which) == "motivating" ? motivatingLoop()
                                               : scheduleALoop();
    SchedulerOptions RT;
    RT.Mapping = MappingKind::RunTime;
    SchedulerResult A = scheduleLoop(G, M, RT);
    SchedulerResult B = scheduleLoop(G, M);
    ASSERT_TRUE(A.found());
    ASSERT_TRUE(B.found());
    EXPECT_EQ(A.Schedule.T, B.Schedule.T) << Which;
  }
}

TEST(Driver, ColoringObjectiveStillRateOptimal) {
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  SchedulerOptions Opts;
  Opts.ColoringObjective = true;
  SchedulerResult R = scheduleLoop(G, M, Opts);
  SchedulerResult Plain = scheduleLoop(G, M);
  ASSERT_TRUE(R.found());
  ASSERT_TRUE(Plain.found());
  EXPECT_EQ(R.Schedule.T, Plain.Schedule.T);
  EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
}

TEST(Driver, TimeLimitCensorsProof) {
  // A zero time limit makes every attempt unknown: nothing found, nothing
  // proven.
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 0.0;
  Opts.MaxTSlack = 2;
  Opts.LpRoundingProbe = false; // The probe ignores the B&B time limit.
  SchedulerResult R = scheduleLoop(G, M, Opts);
  EXPECT_FALSE(R.found());
  for (const TAttempt &A : R.Attempts)
    EXPECT_EQ(A.Status, MilpStatus::Unknown);
}

TEST(Driver, ProbeAndPureMilpAgree) {
  // The LP-rounding probe is an accelerator only: with and without it the
  // driver must find the same rate-optimal II.
  MachineModel M = exampleNonPipelinedMachine();
  for (const char *Which : {"motivating", "schedule-a"}) {
    Ddg G = std::string(Which) == "motivating" ? motivatingLoop()
                                               : scheduleALoop();
    SchedulerOptions NoProbe;
    NoProbe.LpRoundingProbe = false;
    SchedulerResult A = scheduleLoop(G, M, NoProbe);
    SchedulerResult B = scheduleLoop(G, M);
    ASSERT_TRUE(A.found());
    ASSERT_TRUE(B.found());
    EXPECT_EQ(A.Schedule.T, B.Schedule.T) << Which;
  }
}

TEST(Formulation, ModelSizeScalesWithTAndN) {
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  FormulationOptions Opts;
  FormulationVars V4, V8;
  MilpModel M4 = buildScheduleModel(G, M, 4, Opts, V4);
  MilpModel M8 = buildScheduleModel(G, M, 8, Opts, V8);
  EXPECT_GT(M8.numVars(), M4.numVars());
  EXPECT_GT(M8.numConstraints(), M4.numConstraints());
  // a-vars: T x N; k-vars: N.
  EXPECT_EQ(static_cast<int>(V4.A.size()), 4);
  EXPECT_EQ(static_cast<int>(V4.A[0].size()), G.numNodes());
  EXPECT_EQ(static_cast<int>(V4.K.size()), G.numNodes());
}

TEST(Formulation, ColorVariablesOnlyForCrowdedMultiUnitTypes) {
  // 3 FP ops on 2 units -> coloring block; 3 LS ops on 1 unit -> direct
  // exclusions, no color vars.
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  FormulationOptions Opts;
  FormulationVars Vars;
  buildScheduleModel(G, M, 4, Opts, Vars);
  for (int Op : G.nodesOfClass(0))
    EXPECT_GE(Vars.Color[static_cast<size_t>(Op)], 0);
  for (int Op : G.nodesOfClass(1))
    EXPECT_EQ(Vars.Color[static_cast<size_t>(Op)], -1);
  EXPECT_EQ(Vars.Pairs.size(), 3u) << "3 FP pairs";
}

TEST(Formulation, RunTimeMappingHasNoColoringBlock) {
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  FormulationOptions Opts;
  Opts.Mapping = MappingKind::RunTime;
  FormulationVars Vars;
  buildScheduleModel(G, M, 4, Opts, Vars);
  EXPECT_TRUE(Vars.Pairs.empty());
  for (int I = 0; I < G.numNodes(); ++I)
    EXPECT_EQ(Vars.Color[static_cast<size_t>(I)], -1);
}

TEST(Formulation, ScheduleToAssignmentIsModelFeasible) {
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  FormulationOptions Opts;
  FormulationVars Vars;
  MilpModel Model = buildScheduleModel(G, M, 4, Opts, Vars);
  ModuloSchedule S;
  S.T = 4;
  S.StartTime = {0, 1, 3, 5, 7, 11};
  S.Mapping = {0, 0, 1, 1, 0, 0}; // Valid but non-canonical colors.
  ASSERT_TRUE(verifySchedule(G, M, S).Ok);
  std::vector<double> X =
      scheduleToAssignment(G, M, 4, Opts, Vars, S, Model.numVars());
  EXPECT_TRUE(Model.isFeasible(X, 1e-6))
      << "lifting must canonicalize colors into the symmetry-broken bounds";
}

TEST(Formulation, KMaxOverrideRestrictsSchedules) {
  // KMax = 0 forces every instruction into iteration-stage 0; the chain
  // cannot fit and the model becomes infeasible at small T.
  MachineModel M = exampleCleanMachine();
  Ddg G = motivatingLoop();
  FormulationOptions Opts;
  Opts.KMax = 0;
  FormulationVars Vars;
  MilpModel Model = buildScheduleModel(G, M, 3, Opts, Vars);
  MilpResult R = solveMilp(Model);
  EXPECT_EQ(R.Status, MilpStatus::Infeasible)
      << "t <= T-1 = 2 cannot hold the 11-cycle chain";
}

TEST(Driver, MaxTSlackZeroOnlyTriesLowerBound) {
  MachineModel M = exampleTwoFpMachine();
  Ddg G = scheduleALoop();
  SchedulerOptions Opts;
  Opts.MaxTSlack = 0; // Fixed mapping needs T = 4 > T_lb = 3.
  SchedulerResult R = scheduleLoop(G, M, Opts);
  EXPECT_FALSE(R.found());
  ASSERT_EQ(R.Attempts.size(), 1u);
  EXPECT_EQ(R.Attempts[0].Status, MilpStatus::Infeasible);
}

TEST(Driver, MinimizeBuffersKeepsRateOptimality) {
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  SchedulerOptions Plain;
  SchedulerOptions MinBuf;
  MinBuf.MinimizeBuffers = true;
  SchedulerResult A = scheduleLoop(G, M, Plain);
  SchedulerResult B = scheduleLoop(G, M, MinBuf);
  ASSERT_TRUE(A.found());
  ASSERT_TRUE(B.found());
  EXPECT_EQ(A.Schedule.T, B.Schedule.T);
}
