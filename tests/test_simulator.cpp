//===- test_simulator.cpp - Dynamic-issue simulator tests -----------------===//

#include "swp/core/Driver.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/sim/DynamicSimulator.h"
#include "swp/workload/Corpus.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

using namespace swp;

TEST(DynamicSim, SerialChainRunsAtLatencySum) {
  // In-order, a strict chain issues one op per producer latency; with no
  // cross-iteration overlap beyond readiness, the rate approaches the sum
  // of latencies on the critical chain.
  MachineModel M = exampleCleanMachine();
  Ddg G("chain");
  int A = G.addNode("a", 0, 2);
  int B = G.addNode("b", 0, 2);
  G.addEdge(A, B, 0);
  SimOptions Opts;
  Opts.InOrder = true;
  SimResult R = simulateDynamicIssue(G, M, Opts);
  // In-order with a 1-deep window: iteration j+1's a can issue right after
  // b of iteration j issues -> ~2 cycles per iteration minimum, but b
  // waits 2 cycles on a: rate ~ 2 + something; just bound it sanely.
  EXPECT_GE(R.CyclesPerIteration, 2.0);
  EXPECT_LE(R.CyclesPerIteration, 4.0);
}

TEST(DynamicSim, OutOfOrderNotSlowerThanInOrder) {
  MachineModel M = ppc604Like();
  for (const Ddg &G : classicKernels()) {
    SimOptions InOrder;
    InOrder.InOrder = true;
    SimOptions Ooo;
    Ooo.InOrder = false;
    double RateIn = simulateDynamicIssue(G, M, InOrder).CyclesPerIteration;
    double RateOoo = simulateDynamicIssue(G, M, Ooo).CyclesPerIteration;
    EXPECT_LE(RateOoo, RateIn + 1e-9) << G.name();
  }
}

TEST(DynamicSim, SwpIiNeverWorseThanDataflowLimit) {
  // The rate-optimal II lower-bounds any issue discipline's *steady-state*
  // rate (the ILP proof is machine-wide).  A finite horizon can borrow up
  // to one period of boundary slack, hence the II/Iterations tolerance.
  MachineModel M = ppc604Like();
  for (const Ddg &G : classicKernels()) {
    SchedulerResult R = scheduleLoop(G, M);
    if (!R.found() || !R.ProvenRateOptimal)
      continue;
    SimOptions Ooo;
    Ooo.InOrder = false;
    Ooo.IssueWidth = 0; // Unlimited.
    double Rate = simulateDynamicIssue(G, M, Ooo).CyclesPerIteration;
    double Tolerance =
        2.0 * R.Schedule.T / Ooo.Iterations + 1e-6; // Half-window measure.
    EXPECT_GE(Rate + Tolerance, R.Schedule.T) << G.name();
  }
}

TEST(DynamicSim, IssueWidthOneSerializes) {
  MachineModel M = exampleCleanMachine();
  Ddg G("par");
  G.addNode("a", 0, 2);
  G.addNode("b", 1, 1);
  SimOptions Wide;
  Wide.IssueWidth = 0;
  Wide.InOrder = false;
  SimOptions Narrow = Wide;
  Narrow.IssueWidth = 1;
  double RateWide = simulateDynamicIssue(G, M, Wide).CyclesPerIteration;
  double RateNarrow = simulateDynamicIssue(G, M, Narrow).CyclesPerIteration;
  EXPECT_LE(RateWide, RateNarrow + 1e-9);
  EXPECT_GE(RateNarrow, 2.0 - 1e-9) << "two ops through a 1-wide front end";
}

TEST(Replay, AcceptsIlpSchedules) {
  MachineModel M = ppc604Like();
  for (const Ddg &G : classicKernels()) {
    SchedulerResult R = scheduleLoop(G, M);
    ASSERT_TRUE(R.found()) << G.name();
    std::string Err;
    EXPECT_TRUE(replaySchedule(G, M, R.Schedule, 8, &Err))
        << G.name() << ": " << Err;
  }
}

TEST(Replay, AcceptsImsSchedules) {
  MachineModel M = ppc604Like();
  for (const Ddg &G : classicKernels()) {
    ImsResult R = iterativeModuloSchedule(G, M);
    ASSERT_TRUE(R.found()) << G.name();
    std::string Err;
    EXPECT_TRUE(replaySchedule(G, M, R.Schedule, 8, &Err))
        << G.name() << ": " << Err;
  }
}

TEST(Replay, RejectsOperandHazard) {
  MachineModel M = exampleCleanMachine();
  Ddg G("chain");
  int A = G.addNode("a", 0, 2);
  int B = G.addNode("b", 0, 2);
  G.addEdge(A, B, 0);
  ModuloSchedule S;
  S.T = 2;
  S.StartTime = {0, 1}; // b needs a + 2.
  S.Mapping = {0, 0};
  std::string Err;
  EXPECT_FALSE(replaySchedule(G, M, S, 4, &Err));
  EXPECT_NE(Err.find("operand"), std::string::npos) << Err;
}

TEST(Replay, RejectsUnitConflict) {
  MachineModel M("m");
  M.addFuType("FP", 1, ReservationTable::nonPipelined(2));
  Ddg G("two");
  G.addNode("a", 0, 2);
  G.addNode("b", 0, 2);
  ModuloSchedule S;
  S.T = 4;
  S.StartTime = {0, 1}; // Overlapping occupancy on the single unit.
  S.Mapping = {0, 0};
  std::string Err;
  EXPECT_FALSE(replaySchedule(G, M, S, 4, &Err));
  EXPECT_NE(Err.find("busy"), std::string::npos) << Err;
}

class SimPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SimPropertyTest, ReplayAgreesWithStaticVerifierOnRandomLoops) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.MaxNodes = 8;
  Ddg G = generateRandomLoop(
      M, static_cast<std::uint64_t>(GetParam()) * 15485863ULL + 53, Opts);
  SchedulerResult R = scheduleLoop(G, M);
  ASSERT_TRUE(R.found()) << G.name();
  std::string Err;
  EXPECT_TRUE(replaySchedule(G, M, R.Schedule, 10, &Err)) << Err;
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, SimPropertyTest,
                         ::testing::Range(0, 15));
