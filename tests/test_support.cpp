//===- test_support.cpp - Support library unit tests ----------------------===//

#include "swp/support/Format.h"
#include "swp/support/Rational.h"
#include "swp/support/Rng.h"
#include "swp/support/Statistics.h"
#include "swp/support/Stopwatch.h"
#include "swp/support/TextTable.h"

#include <gtest/gtest.h>

using namespace swp;

TEST(Rational, NormalizesSignAndGcd) {
  Rational R(4, -6);
  EXPECT_EQ(R.num(), -2);
  EXPECT_EQ(R.den(), 3);
  EXPECT_EQ(Rational(0, 5).num(), 0);
  EXPECT_EQ(Rational(0, 5).den(), 1);
}

TEST(Rational, FloorCeilPositive) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(8, 2).floor(), 4);
  EXPECT_EQ(Rational(8, 2).ceil(), 4);
}

TEST(Rational, FloorCeilNegative) {
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(-8, 2).floor(), -4);
  EXPECT_EQ(Rational(-8, 2).ceil(), -4);
}

TEST(Rational, Arithmetic) {
  Rational A(1, 3), B(1, 6);
  EXPECT_EQ(A + B, Rational(1, 2));
  EXPECT_EQ(A - B, Rational(1, 6));
  EXPECT_EQ(A * B, Rational(1, 18));
  EXPECT_EQ(A / B, Rational(2));
  EXPECT_EQ(-A, Rational(-1, 3));
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(5, 2), Rational(2));
  EXPECT_LE(Rational(2), Rational(2));
  EXPECT_GE(Rational(-1, 2), Rational(-1));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(Rational, StrRendersIntegerAndFraction) {
  EXPECT_EQ(Rational(6, 3).str(), "2");
  EXPECT_EQ(Rational(5, 3).str(), "5/3");
  EXPECT_EQ(Rational(-5, 3).str(), "-5/3");
}

TEST(Rational, IsIntegerAndToDouble) {
  EXPECT_TRUE(Rational(4, 2).isInteger());
  EXPECT_FALSE(Rational(1, 2).isInteger());
  EXPECT_DOUBLE_EQ(Rational(1, 4).toDouble(), 0.25);
}

TEST(Rng, Deterministic) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDiff = false;
  for (int I = 0; I < 10; ++I)
    AnyDiff |= (A.next() != B.next());
  EXPECT_TRUE(AnyDiff);
}

TEST(Rng, IntInRange) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    int V = R.intIn(3, 9);
    EXPECT_GE(V, 3);
    EXPECT_LE(V, 9);
  }
  // Degenerate range.
  EXPECT_EQ(R.intIn(5, 5), 5);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    double V = R.unit();
    EXPECT_GE(V, 0.0);
    EXPECT_LT(V, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng R(13);
  for (int I = 0; I < 50; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}

TEST(Format, BasicFormatting) {
  EXPECT_EQ(strFormat("x=%d y=%s", 5, "ok"), "x=5 y=ok");
  EXPECT_EQ(strFormat("%.2f", 1.5), "1.50");
  EXPECT_EQ(strFormat("plain"), "plain");
}

TEST(TextTable, AlignsColumns) {
  TextTable T;
  T.setHeader({"A", "Blongheader"});
  T.addRow({"xx", "y"});
  T.addRow({"z", "wwww"});
  std::string Out = T.render();
  // Every rendered line (header, separator, rows) present.
  EXPECT_NE(Out.find("A"), std::string::npos);
  EXPECT_NE(Out.find("Blongheader"), std::string::npos);
  EXPECT_NE(Out.find("xx"), std::string::npos);
  EXPECT_NE(Out.find("----"), std::string::npos);
  // Rows align: the second column starts at the same index in both rows.
  size_t R1 = Out.find("y");
  size_t R2 = Out.find("wwww");
  size_t L1 = Out.rfind('\n', R1);
  size_t L2 = Out.rfind('\n', R2);
  EXPECT_EQ(R1 - L1, R2 - L2);
}

TEST(TextTable, HandlesRaggedRows) {
  TextTable T;
  T.addRow({"a"});
  T.addRow({"b", "c", "d"});
  std::string Out = T.render();
  EXPECT_NE(Out.find("d"), std::string::npos);
}

TEST(Statistics, MeanAndPercentile) {
  std::vector<double> V = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(V), 3.0);
  EXPECT_DOUBLE_EQ(percentile(V, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(V, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(V, 50), 3.0);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

TEST(Stopwatch, MeasuresElapsed) {
  Stopwatch W;
  double S1 = W.seconds();
  EXPECT_GE(S1, 0.0);
  W.reset();
  EXPECT_GE(W.seconds(), 0.0);
}
