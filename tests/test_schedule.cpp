//===- test_schedule.cpp - Schedule, kernel expander, circular arcs -------===//

#include "swp/core/CircularArcs.h"
#include "swp/core/KernelExpander.h"
#include "swp/core/Schedule.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace swp;

namespace {

ModuloSchedule paperSchedule() {
  ModuloSchedule S;
  S.T = 4;
  S.StartTime = {0, 1, 3, 5, 7, 11};
  S.Mapping = {0, 0, 0, 0, 1, 0};
  return S;
}

} // namespace

TEST(Schedule, OffsetAndStage) {
  ModuloSchedule S = paperSchedule();
  EXPECT_EQ(S.offset(0), 0);
  EXPECT_EQ(S.offset(2), 3);
  EXPECT_EQ(S.offset(5), 3);
  EXPECT_EQ(S.stageIndex(0), 0);
  EXPECT_EQ(S.stageIndex(3), 1);
  EXPECT_EQ(S.stageIndex(5), 2);
}

TEST(Schedule, AMatrixMatchesPaperFigure3) {
  ModuloSchedule S = paperSchedule();
  auto A = S.aMatrix();
  ASSERT_EQ(A.size(), 4u);
  // Row 1 (t=1): i1 and i3 -> [0 1 0 1 0 0]; row 3: i2, i4, i5.
  EXPECT_EQ(A[1], (std::vector<int>{0, 1, 0, 1, 0, 0}));
  EXPECT_EQ(A[3], (std::vector<int>{0, 0, 1, 0, 1, 1}));
  EXPECT_EQ(A[0], (std::vector<int>{1, 0, 0, 0, 0, 0}));
  EXPECT_EQ(A[2], (std::vector<int>{0, 0, 0, 0, 0, 0}));
  // Exactly one 1 per column.
  for (int I = 0; I < 6; ++I) {
    int Sum = 0;
    for (int Slot = 0; Slot < 4; ++Slot)
      Sum += A[static_cast<size_t>(Slot)][static_cast<size_t>(I)];
    EXPECT_EQ(Sum, 1);
  }
}

TEST(Schedule, RenderTkaContainsVectors) {
  std::string Out = paperSchedule().renderTka();
  EXPECT_NE(Out.find("t = [0, 1, 3, 5, 7, 11]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("K = [0, 0, 0, 1, 1, 2]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("A (T = 4)"), std::string::npos);
}

TEST(Schedule, RenderPatternUsageNamesOps) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  std::string Out = paperSchedule().renderPatternUsage(G, M);
  EXPECT_NE(Out.find("FP usage"), std::string::npos);
  EXPECT_NE(Out.find("LS usage"), std::string::npos);
  EXPECT_NE(Out.find("i2"), std::string::npos);
}

TEST(KernelExpander, InstanceCountAndOrder) {
  Ddg G = motivatingLoop();
  ExpandedSchedule E = expandSchedule(G, paperSchedule(), 3);
  EXPECT_EQ(E.Instances.size(), 18u);
  EXPECT_TRUE(std::is_sorted(E.Instances.begin(), E.Instances.end(),
                             [](const ScheduledInstance &A,
                                const ScheduledInstance &B) {
                               return A.Start < B.Start;
                             }));
}

TEST(KernelExpander, KernelBoundary) {
  Ddg G = motivatingLoop();
  ExpandedSchedule E = expandSchedule(G, paperSchedule(), 3);
  // Max k = 2, so the steady-state kernel starts at 2 * T = 8.
  EXPECT_EQ(E.KernelStart, 8);
  EXPECT_EQ(E.KernelLength, 4);
}

TEST(KernelExpander, RenderShowsIterationsAndKernelMark) {
  Ddg G = motivatingLoop();
  std::string Out = renderOverlappedIterations(G, paperSchedule(), 3);
  EXPECT_NE(Out.find("Iter 0"), std::string::npos);
  EXPECT_NE(Out.find("Iter 2"), std::string::npos);
  EXPECT_NE(Out.find("kernel"), std::string::npos);
  EXPECT_NE(Out.find("i5"), std::string::npos);
}

TEST(CircularArcs, OverlapMatchesReservationConflicts) {
  ReservationTable T = ReservationTable::nonPipelined(2);
  EXPECT_TRUE(arcsOverlap(T, 4, 0, 1));
  EXPECT_TRUE(arcsOverlap(T, 4, 1, 0));
  EXPECT_FALSE(arcsOverlap(T, 4, 0, 2));
  EXPECT_TRUE(arcsOverlap(T, 4, 3, 0)) << "wrap-around arc overlaps slot 0";
}

TEST(CircularArcs, FirstFitProducesValidColoring) {
  ReservationTable T = ReservationTable::nonPipelined(2);
  std::vector<int> Offsets = {0, 2, 0, 2};
  std::vector<int> Colors = firstFitUnitColoring(T, 4, Offsets);
  ASSERT_EQ(Colors.size(), 4u);
  for (size_t I = 0; I < Offsets.size(); ++I)
    for (size_t J = I + 1; J < Offsets.size(); ++J)
      if (Colors[I] == Colors[J]) {
        EXPECT_FALSE(arcsOverlap(T, 4, Offsets[I], Offsets[J]));
      }
  EXPECT_EQ(*std::max_element(Colors.begin(), Colors.end()), 1)
      << "two units suffice here";
}

TEST(CircularArcs, ThreeCliqueNeedsThreeColors) {
  // The Schedule A instance: exec-2 arcs at offsets 0, 1, 2 on T = 3.
  ReservationTable T = ReservationTable::nonPipelined(2);
  std::vector<int> Colors = firstFitUnitColoring(T, 3, {0, 1, 2});
  EXPECT_EQ(*std::max_element(Colors.begin(), Colors.end()), 2);
}

TEST(CircularArcs, RenderShowsWrapAnnotation) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  // FP ops i2, i3, i4 at offsets 3, 1, 3: offset-3 exec-2 arcs wrap.
  std::string Out = renderArcs(G, M, 0, 4, {3, 1, 3}, {0, 0, 1});
  EXPECT_NE(Out.find("wraps"), std::string::npos) << Out;
  EXPECT_NE(Out.find("unit 1"), std::string::npos);
  EXPECT_NE(Out.find("i3"), std::string::npos);
}

TEST(Mve, UnrollFactorFromLifetimes) {
  // Value with lifetime 5 at T = 2 needs ceil(5/2) = 3 kernel copies.
  Ddg G("g");
  int A = G.addNode("a", 0, 1);
  int B = G.addNode("b", 0, 1);
  G.addEdge(A, B, 0);
  ModuloSchedule S;
  S.T = 2;
  S.StartTime = {0, 5};
  EXPECT_EQ(mveUnrollFactor(G, S), 3);
}

TEST(Mve, FactorOneWhenLifetimesFitOnePeriod) {
  Ddg G = motivatingLoop();
  ModuloSchedule S;
  S.T = 4;
  S.StartTime = {0, 1, 3, 5, 7, 11};
  S.Mapping = {0, 0, 0, 0, 1, 0};
  EXPECT_EQ(mveUnrollFactor(G, S), 1);
}

TEST(Mve, RenderNamesCopies) {
  Ddg G("g");
  int A = G.addNode("a", 0, 1);
  int B = G.addNode("b", 0, 1);
  G.addEdge(A, B, 0);
  ModuloSchedule S;
  S.T = 2;
  S.StartTime = {0, 5};
  std::string Out = renderUnrolledKernel(G, S);
  EXPECT_NE(Out.find("unrolled 3x"), std::string::npos) << Out;
  EXPECT_NE(Out.find("a.0"), std::string::npos);
  EXPECT_NE(Out.find("a.2"), std::string::npos);
}
