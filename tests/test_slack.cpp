//===- test_slack.cpp - Slack (lifetime-sensitive) scheduler tests --------===//

#include "swp/core/Driver.h"
#include "swp/core/Registers.h"
#include "swp/core/Verifier.h"
#include "swp/heuristics/SlackModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Corpus.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

using namespace swp;

TEST(Slack, SchedulesMotivatingLoop) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  SlackResult R = slackModuloSchedule(G, M);
  ASSERT_TRUE(R.found());
  EXPECT_GE(R.Schedule.T, R.TLowerBound);
  VerifyResult V = verifySchedule(G, M, R.Schedule);
  EXPECT_TRUE(V.Ok) << V.Error;
}

TEST(Slack, SchedulesAllClassicKernels) {
  MachineModel M = ppc604Like();
  for (const Ddg &G : classicKernels()) {
    SlackResult R = slackModuloSchedule(G, M);
    ASSERT_TRUE(R.found()) << G.name();
    VerifyResult V = verifySchedule(G, M, R.Schedule);
    EXPECT_TRUE(V.Ok) << G.name() << ": " << V.Error;
  }
}

TEST(Slack, NeverBeatsIlp) {
  MachineModel M = ppc604Like();
  for (const Ddg &G : classicKernels()) {
    SlackResult H = slackModuloSchedule(G, M);
    SchedulerResult I = scheduleLoop(G, M);
    if (!H.found() || !I.found() || !I.ProvenRateOptimal)
      continue;
    EXPECT_GE(H.Schedule.T, I.Schedule.T) << G.name();
  }
}

TEST(Slack, HandlesHazardAndMultiFunctionMachines) {
  Ddg G = motivatingLoop();
  SlackResult R1 = slackModuloSchedule(G, exampleHazardMachine());
  ASSERT_TRUE(R1.found());
  EXPECT_TRUE(verifySchedule(G, exampleHazardMachine(), R1.Schedule).Ok);

  MachineModel MF = ppc604MultiFunction();
  Ddg G2("mixed");
  int Ld = G2.addNode("ld", 3, 2);
  int Dv = G2.addNodeVariant("div", 2, ppc604FpuDivVariant(), 8);
  int Mu = G2.addNode("mul", 2, 4);
  G2.addEdge(Ld, Dv, 0);
  G2.addEdge(Dv, Mu, 0);
  SlackResult R2 = slackModuloSchedule(G2, MF);
  ASSERT_TRUE(R2.found());
  EXPECT_TRUE(verifySchedule(G2, MF, R2.Schedule).Ok)
      << verifySchedule(G2, MF, R2.Schedule).Error;
}

TEST(Slack, TendsToShorterLifetimesThanWorstCase) {
  // On a wide fan (one producer, many consumers), late placement of
  // consumers is irrelevant, but the producer-side value count stays
  // bounded by the single value: MaxLive of slack schedule stays modest.
  MachineModel M = exampleCleanMachine();
  Ddg G("fan");
  int P = G.addNode("p", 0, 2);
  for (int I = 0; I < 4; ++I) {
    int C = G.addNode("c" + std::to_string(I), 1, 1);
    G.addEdge(P, C, 0);
  }
  SlackResult R = slackModuloSchedule(G, M);
  ASSERT_TRUE(R.found());
  EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
  EXPECT_LE(maxLive(G, R.Schedule), 3);
}

class SlackPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SlackPropertyTest, VerifiesOnRandomLoops) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.MaxNodes = 10;
  Ddg G = generateRandomLoop(
      M, static_cast<std::uint64_t>(GetParam()) * 179424673ULL + 41, Opts);
  SlackResult R = slackModuloSchedule(G, M);
  ASSERT_TRUE(R.found()) << G.name();
  VerifyResult V = verifySchedule(G, M, R.Schedule);
  EXPECT_TRUE(V.Ok) << V.Error;
  EXPECT_GE(R.Schedule.T, R.TLowerBound);
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, SlackPropertyTest,
                         ::testing::Range(0, 20));
