//===- test_solver.cpp - LP / MILP solver tests ---------------------------===//
//
// Unit tests for the simplex and branch-and-bound substrate, including
// property tests cross-checking random small MILPs against brute-force
// enumeration.
//
//===----------------------------------------------------------------------===//

#include "swp/solver/BranchAndBound.h"
#include "swp/solver/Model.h"
#include "swp/solver/Simplex.h"
#include "swp/support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>

using namespace swp;

namespace {

constexpr double Inf = MilpModel::Inf;

} // namespace

TEST(LinExpr, NormalizeMergesDuplicates) {
  LinExpr E;
  E.add(0, 1.0).add(1, 2.0).add(0, 3.0).add(2, 0.0);
  E.normalize();
  ASSERT_EQ(E.terms().size(), 2u);
  EXPECT_EQ(E.terms()[0].Var, 0);
  EXPECT_DOUBLE_EQ(E.terms()[0].Coef, 4.0);
  EXPECT_EQ(E.terms()[1].Var, 1);
}

TEST(LinExpr, NormalizeDropsCancellations) {
  LinExpr E;
  E.add(3, 1.0).add(3, -1.0).add(1, 2.0);
  E.normalize();
  ASSERT_EQ(E.terms().size(), 1u);
  EXPECT_EQ(E.terms()[0].Var, 1);
}

TEST(LinExpr, AddScaled) {
  LinExpr A;
  A.add(0, 1.0).addConstant(2.0);
  LinExpr B;
  B.add(0, 2.0).add(1, 1.0).addConstant(1.0);
  A.addScaled(B, -2.0);
  A.normalize();
  ASSERT_EQ(A.terms().size(), 2u);
  EXPECT_DOUBLE_EQ(A.terms()[0].Coef, -3.0);
  EXPECT_DOUBLE_EQ(A.constant(), 0.0);
}

TEST(Model, ConstantFoldsIntoRhs) {
  MilpModel M;
  VarId X = M.addVar(0, 10, VarKind::Continuous, "x");
  LinExpr E;
  E.add(X, 1.0).addConstant(5.0);
  M.addConstraint(std::move(E), CmpKind::LE, 8.0);
  EXPECT_DOUBLE_EQ(M.constraints()[0].Rhs, 3.0);
}

TEST(Model, IsFeasibleChecksEverything) {
  MilpModel M;
  VarId X = M.addVar(0, 4, VarKind::Integer, "x");
  VarId Y = M.addVar(0, 4, VarKind::Continuous, "y");
  LinExpr E;
  E.add(X, 1.0).add(Y, 1.0);
  M.addConstraint(std::move(E), CmpKind::LE, 5.0);
  EXPECT_TRUE(M.isFeasible({2.0, 2.5}));
  EXPECT_FALSE(M.isFeasible({2.5, 2.0}));  // X not integral.
  EXPECT_FALSE(M.isFeasible({4.0, 4.0}));  // Constraint violated.
  EXPECT_FALSE(M.isFeasible({-1.0, 0.0})); // Bound violated.
  EXPECT_FALSE(M.isFeasible({1.0}));       // Wrong arity.
}

TEST(Simplex, SolvesBasicLp) {
  // max x + y s.t. x + 2y <= 4, 3x + y <= 6  ==  min -x - y.
  MilpModel M;
  VarId X = M.addVar(0, Inf, VarKind::Continuous, "x");
  VarId Y = M.addVar(0, Inf, VarKind::Continuous, "y");
  M.addConstraint(LinExpr().add(X, 1).add(Y, 2), CmpKind::LE, 4);
  M.addConstraint(LinExpr().add(X, 3).add(Y, 1), CmpKind::LE, 6);
  M.setObjective(LinExpr().add(X, -1).add(Y, -1));
  LpResult R = solveLp(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  // Optimum at intersection: x = 8/5, y = 6/5, objective -14/5.
  EXPECT_NEAR(R.Objective, -2.8, 1e-6);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 1.6, 1e-6);
  EXPECT_NEAR(R.X[static_cast<size_t>(Y)], 1.2, 1e-6);
}

TEST(Simplex, HonorsLowerBoundShift) {
  // min x s.t. x >= 3 via variable bound.
  MilpModel M;
  VarId X = M.addVar(3, 10, VarKind::Continuous, "x");
  M.setObjective(LinExpr().add(X, 1));
  LpResult R = solveLp(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 3.0, 1e-9);
}

TEST(Simplex, HonorsUpperBound) {
  MilpModel M;
  VarId X = M.addVar(0, 7, VarKind::Continuous, "x");
  M.setObjective(LinExpr().add(X, -1)); // max x.
  LpResult R = solveLp(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 7.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  MilpModel M;
  VarId X = M.addVar(0, Inf, VarKind::Continuous, "x");
  M.addConstraint(LinExpr().add(X, 1), CmpKind::GE, 5);
  M.addConstraint(LinExpr().add(X, 1), CmpKind::LE, 3);
  EXPECT_EQ(solveLp(M).Status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  MilpModel M;
  VarId X = M.addVar(0, Inf, VarKind::Continuous, "x");
  M.setObjective(LinExpr().add(X, -1)); // max x, no bound.
  EXPECT_EQ(solveLp(M).Status, LpStatus::Unbounded);
}

TEST(Simplex, EqualityConstraints) {
  // min x + y s.t. x + y = 4, x - y = 2 -> x = 3, y = 1.
  MilpModel M;
  VarId X = M.addVar(0, Inf, VarKind::Continuous, "x");
  VarId Y = M.addVar(0, Inf, VarKind::Continuous, "y");
  M.addConstraint(LinExpr().add(X, 1).add(Y, 1), CmpKind::EQ, 4);
  M.addConstraint(LinExpr().add(X, 1).add(Y, -1), CmpKind::EQ, 2);
  M.setObjective(LinExpr().add(X, 1).add(Y, 1));
  LpResult R = solveLp(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 3.0, 1e-6);
  EXPECT_NEAR(R.X[static_cast<size_t>(Y)], 1.0, 1e-6);
}

TEST(Simplex, RedundantEqualityRows) {
  // x + y = 2 twice: redundant artificial row must be deactivated cleanly.
  MilpModel M;
  VarId X = M.addVar(0, Inf, VarKind::Continuous, "x");
  VarId Y = M.addVar(0, Inf, VarKind::Continuous, "y");
  M.addConstraint(LinExpr().add(X, 1).add(Y, 1), CmpKind::EQ, 2);
  M.addConstraint(LinExpr().add(X, 1).add(Y, 1), CmpKind::EQ, 2);
  M.setObjective(LinExpr().add(X, 1));
  LpResult R = solveLp(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 0.0, 1e-6);
  EXPECT_NEAR(R.X[static_cast<size_t>(Y)], 2.0, 1e-6);
}

TEST(Simplex, FixedVariablesFoldIntoRhs) {
  MilpModel M;
  VarId X = M.addVar(0, 10, VarKind::Continuous, "x");
  VarId Y = M.addVar(0, 10, VarKind::Continuous, "y");
  M.addConstraint(LinExpr().add(X, 1).add(Y, 1), CmpKind::LE, 6);
  M.setObjective(LinExpr().add(Y, -1)); // max y.
  std::vector<double> Lb = {4.0, 0.0}, Ub = {4.0, 10.0}; // Fix x = 4.
  LpResult R = solveLp(M, Lb, Ub);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 4.0, 1e-9);
  EXPECT_NEAR(R.X[static_cast<size_t>(Y)], 2.0, 1e-6);
}

TEST(Simplex, ContradictoryBoundsInfeasible) {
  MilpModel M;
  (void)M.addVar(0, 10, VarKind::Continuous, "x");
  std::vector<double> Lb = {5.0}, Ub = {4.0};
  EXPECT_EQ(solveLp(M, Lb, Ub).Status, LpStatus::Infeasible);
}

TEST(Simplex, ObjectiveConstantTracked) {
  MilpModel M;
  VarId X = M.addVar(2, 5, VarKind::Continuous, "x");
  LinExpr Obj;
  Obj.add(X, 1.0).addConstant(10.0);
  M.setObjective(std::move(Obj));
  LpResult R = solveLp(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 12.0, 1e-9);
}

TEST(BranchAndBound, SolvesIntegerKnapsack) {
  // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, binaries -> a=1, b=1, obj 9.
  MilpModel M;
  VarId A = M.addBinary("a");
  VarId B = M.addBinary("b");
  VarId C = M.addBinary("c");
  M.addConstraint(LinExpr().add(A, 2).add(B, 3).add(C, 1), CmpKind::LE, 5);
  M.setObjective(LinExpr().add(A, -5).add(B, -4).add(C, -3));
  MilpResult R = solveMilp(M);
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -9.0, 1e-6);
  EXPECT_NEAR(R.X[static_cast<size_t>(A)], 1.0, 1e-6);
  EXPECT_NEAR(R.X[static_cast<size_t>(B)], 1.0, 1e-6);
  EXPECT_NEAR(R.X[static_cast<size_t>(C)], 0.0, 1e-6);
}

TEST(BranchAndBound, FractionalLpRequiresBranching) {
  // min -x s.t. 2x <= 3, x integer in [0, 5]: LP gives 1.5, MILP 1.
  MilpModel M;
  VarId X = M.addVar(0, 5, VarKind::Integer, "x");
  M.addConstraint(LinExpr().add(X, 2), CmpKind::LE, 3);
  M.setObjective(LinExpr().add(X, -1));
  MilpResult R = solveMilp(M);
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 1.0, 1e-6);
}

TEST(BranchAndBound, ProvesIntegerInfeasibility) {
  // 2x = 1 with x integer: LP feasible, MILP infeasible.
  MilpModel M;
  VarId X = M.addVar(0, 5, VarKind::Integer, "x");
  M.addConstraint(LinExpr().add(X, 2), CmpKind::EQ, 1);
  MilpResult R = solveMilp(M);
  EXPECT_EQ(R.Status, MilpStatus::Infeasible);
  EXPECT_TRUE(R.isProven());
}

TEST(BranchAndBound, StopAtFirstIncumbent) {
  MilpModel M;
  VarId X = M.addVar(0, 10, VarKind::Integer, "x");
  M.addConstraint(LinExpr().add(X, 1), CmpKind::GE, 2);
  M.setObjective(LinExpr().add(X, 1));
  MilpOptions Opts;
  Opts.StopAtFirstIncumbent = true;
  MilpResult R = solveMilp(M, Opts);
  EXPECT_TRUE(R.hasSolution());
  EXPECT_GE(R.X[static_cast<size_t>(X)], 2.0 - 1e-9);
}

TEST(BranchAndBound, NodeLimitReportsUnknownOrFeasible) {
  // max x1 + x2 s.t. 2x1 + 2x2 <= 3: the root LP is fractional (1.5), so
  // one node cannot finish the search.
  MilpModel M;
  VarId X1 = M.addBinary("x1");
  VarId X2 = M.addBinary("x2");
  M.addConstraint(LinExpr().add(X1, 2).add(X2, 2), CmpKind::LE, 3);
  M.setObjective(LinExpr().add(X1, -1).add(X2, -1));
  MilpOptions Opts;
  Opts.NodeLimit = 1;
  MilpResult R = solveMilp(M, Opts);
  EXPECT_FALSE(R.isProven());
}

namespace {

/// A MILP whose root LP is fractional, so any limit fires before a proof.
MilpModel fractionalRootModel() {
  MilpModel M;
  VarId X1 = M.addBinary("x1");
  VarId X2 = M.addBinary("x2");
  M.addConstraint(LinExpr().add(X1, 2).add(X2, 2), CmpKind::LE, 3);
  M.setObjective(LinExpr().add(X1, -1).add(X2, -1));
  return M;
}

} // namespace

TEST(BranchAndBound, StopReasonDistinguishesNodeLimit) {
  MilpOptions Opts;
  Opts.NodeLimit = 1;
  MilpResult R = solveMilp(fractionalRootModel(), Opts);
  EXPECT_FALSE(R.isProven());
  EXPECT_EQ(R.StopReason, SearchStop::NodeLimit);
}

TEST(BranchAndBound, StopReasonDistinguishesTimeLimit) {
  MilpOptions Opts;
  Opts.TimeLimitSec = 0.0;
  MilpResult R = solveMilp(fractionalRootModel(), Opts);
  EXPECT_EQ(R.Status, MilpStatus::Unknown);
  EXPECT_EQ(R.StopReason, SearchStop::TimeLimit);
}

TEST(BranchAndBound, StopReasonDistinguishesCancellation) {
  CancellationSource Src;
  Src.cancel();
  MilpOptions Opts;
  Opts.Cancel = Src.token();
  // Cancellation must win over the also-expired limits: it is checked
  // first, so a cancelled solve is reported as cancelled, not censored.
  Opts.TimeLimitSec = 0.0;
  Opts.NodeLimit = 0;
  MilpResult R = solveMilp(fractionalRootModel(), Opts);
  EXPECT_EQ(R.Status, MilpStatus::Unknown);
  EXPECT_EQ(R.StopReason, SearchStop::Cancelled);
  EXPECT_EQ(R.Nodes, 0);
}

TEST(BranchAndBound, StopReasonNoneOnCompletedProofs) {
  MilpResult Solved = solveMilp(fractionalRootModel());
  EXPECT_EQ(Solved.Status, MilpStatus::Optimal);
  EXPECT_EQ(Solved.StopReason, SearchStop::None);

  MilpModel Infeasible;
  VarId X = Infeasible.addVar(0, 5, VarKind::Integer, "x");
  Infeasible.addConstraint(LinExpr().add(X, 2), CmpKind::EQ, 1);
  MilpResult R = solveMilp(Infeasible);
  EXPECT_EQ(R.Status, MilpStatus::Infeasible);
  EXPECT_EQ(R.StopReason, SearchStop::None);
}

TEST(BranchAndBound, SearchStopNames) {
  EXPECT_STREQ(searchStopName(SearchStop::None), "none");
  EXPECT_STREQ(searchStopName(SearchStop::TimeLimit), "time-limit");
  EXPECT_STREQ(searchStopName(SearchStop::NodeLimit), "node-limit");
  EXPECT_STREQ(searchStopName(SearchStop::Cancelled), "cancelled");
  EXPECT_STREQ(searchStopName(SearchStop::LpStall), "lp-stall");
}

TEST(BranchAndBound, EmptyObjectiveFeasibility) {
  MilpModel M;
  VarId X = M.addVar(0, 3, VarKind::Integer, "x");
  VarId Y = M.addVar(0, 3, VarKind::Integer, "y");
  M.addConstraint(LinExpr().add(X, 3).add(Y, 5), CmpKind::EQ, 11);
  MilpResult R = solveMilp(M);
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)] * 3 + R.X[static_cast<size_t>(Y)] * 5,
              11.0, 1e-6);
}

//===----------------------------------------------------------------------===//
// Property tests: random small MILPs vs brute force.
//===----------------------------------------------------------------------===//

namespace {

/// Brute-force optimum of an all-integer model with small bounds.
/// \returns true when feasible; BestObj receives the optimum.
bool bruteForce(const MilpModel &M, double &BestObj) {
  const int N = M.numVars();
  std::vector<double> X(static_cast<size_t>(N), 0.0);
  bool Found = false;
  BestObj = 0.0;
  std::function<void(int)> Rec = [&](int I) {
    if (I == N) {
      if (!M.isFeasible(X, 1e-9))
        return;
      double Obj = MilpModel::evaluate(M.objective(), X);
      if (!Found || Obj < BestObj) {
        Found = true;
        BestObj = Obj;
      }
      return;
    }
    const ModelVar &V = M.var(I);
    for (int K = static_cast<int>(V.Lb); K <= static_cast<int>(V.Ub); ++K) {
      X[static_cast<size_t>(I)] = K;
      Rec(I + 1);
    }
  };
  Rec(0);
  return Found;
}

MilpModel randomMilp(std::uint64_t Seed) {
  Rng R(Seed);
  MilpModel M;
  int NumVars = R.intIn(2, 5);
  for (int I = 0; I < NumVars; ++I)
    M.addVar(0, R.intIn(1, 3), VarKind::Integer, "x" + std::to_string(I));
  int NumCons = R.intIn(1, 5);
  for (int C = 0; C < NumCons; ++C) {
    LinExpr E;
    for (int I = 0; I < NumVars; ++I)
      if (R.chance(0.7))
        E.add(I, R.intIn(-3, 3));
    CmpKind Cmp = static_cast<CmpKind>(R.intIn(0, 2));
    M.addConstraint(std::move(E), Cmp, R.intIn(-4, 8));
  }
  LinExpr Obj;
  for (int I = 0; I < NumVars; ++I)
    Obj.add(I, R.intIn(-4, 4));
  M.setObjective(std::move(Obj));
  return M;
}

} // namespace

class MilpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MilpPropertyTest, MatchesBruteForce) {
  MilpModel M = randomMilp(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  double Expected = 0.0;
  bool Feasible = bruteForce(M, Expected);
  MilpResult R = solveMilp(M);
  if (!Feasible) {
    EXPECT_EQ(R.Status, MilpStatus::Infeasible)
        << "solver found a solution to an infeasible model";
    return;
  }
  ASSERT_EQ(R.Status, MilpStatus::Optimal) << "solver failed to find optimum";
  EXPECT_NEAR(R.Objective, Expected, 1e-6);
  EXPECT_TRUE(M.isFeasible(R.X, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(RandomModels, MilpPropertyTest,
                         ::testing::Range(0, 60));

class LpPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LpPropertyTest, LpRelaxationBoundsMilp) {
  MilpModel M = randomMilp(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  LpResult Lp = solveLp(M);
  double Expected = 0.0;
  bool Feasible = bruteForce(M, Expected);
  if (Lp.Status == LpStatus::Infeasible) {
    // LP infeasible implies MILP infeasible.
    EXPECT_FALSE(Feasible);
    return;
  }
  ASSERT_EQ(Lp.Status, LpStatus::Optimal);
  if (Feasible)
    EXPECT_LE(Lp.Objective, Expected + 1e-6)
        << "LP relaxation must lower-bound the integer optimum";
}

INSTANTIATE_TEST_SUITE_P(RandomModels, LpPropertyTest,
                         ::testing::Range(0, 40));

//===----------------------------------------------------------------------===//
// Additional edge cases.
//===----------------------------------------------------------------------===//

TEST(Simplex, DegenerateVerticesTerminate) {
  // Many redundant constraints through the origin: classic degeneracy.
  MilpModel M;
  VarId X = M.addVar(0, Inf, VarKind::Continuous, "x");
  VarId Y = M.addVar(0, Inf, VarKind::Continuous, "y");
  for (int K = 1; K <= 6; ++K)
    M.addConstraint(LinExpr().add(X, K).add(Y, 1), CmpKind::GE, 0);
  M.addConstraint(LinExpr().add(X, 1).add(Y, 1), CmpKind::LE, 10);
  M.setObjective(LinExpr().add(X, -1).add(Y, -1));
  LpResult R = solveLp(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -10.0, 1e-6);
}

TEST(Simplex, EmptyModelIsTriviallyOptimal) {
  MilpModel M;
  (void)M.addVar(0, 5, VarKind::Continuous, "x");
  LpResult R = solveLp(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[0], 0.0, 1e-9);
}

TEST(Simplex, NegativeRhsRowsNormalize) {
  // -x <= -3  ==  x >= 3.
  MilpModel M;
  VarId X = M.addVar(0, 10, VarKind::Continuous, "x");
  M.addConstraint(LinExpr().add(X, -1), CmpKind::LE, -3);
  M.setObjective(LinExpr().add(X, 1));
  LpResult R = solveLp(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 3.0, 1e-6);
}

TEST(Simplex, AllVariablesFixed) {
  MilpModel M;
  VarId X = M.addVar(2, 2, VarKind::Continuous, "x");
  VarId Y = M.addVar(3, 3, VarKind::Continuous, "y");
  M.addConstraint(LinExpr().add(X, 1).add(Y, 1), CmpKind::EQ, 5);
  LpResult R = solveLp(M);
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 2.0, 1e-9);
  // And an inconsistent fixed system is infeasible.
  MilpModel M2;
  VarId Z = M2.addVar(2, 2, VarKind::Continuous, "z");
  M2.addConstraint(LinExpr().add(Z, 1), CmpKind::EQ, 7);
  EXPECT_EQ(solveLp(M2).Status, LpStatus::Infeasible);
}

TEST(BranchAndBound, WarmStartBecomesIncumbent) {
  // max x + y s.t. 2x + 2y <= 3 over binaries: optimum 1.
  MilpModel M;
  VarId X = M.addBinary("x");
  VarId Y = M.addBinary("y");
  M.addConstraint(LinExpr().add(X, 2).add(Y, 2), CmpKind::LE, 3);
  M.setObjective(LinExpr().add(X, -1).add(Y, -1));
  MilpOptions Opts;
  Opts.WarmStart = {1.0, 0.0};
  Opts.NodeLimit = 0; // No search at all: the warm start must survive.
  MilpResult R = solveMilp(M, Opts);
  ASSERT_TRUE(R.hasSolution());
  EXPECT_NEAR(R.Objective, -1.0, 1e-9);
}

TEST(BranchAndBound, InfeasibleWarmStartIgnored) {
  MilpModel M;
  VarId X = M.addBinary("x");
  M.addConstraint(LinExpr().add(X, 1), CmpKind::EQ, 1);
  MilpOptions Opts;
  Opts.WarmStart = {0.0}; // Violates the constraint.
  MilpResult R = solveMilp(M, Opts);
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 1.0, 1e-9);
}

TEST(BranchAndBound, BranchPriorityRespected) {
  // Two fractional binaries; the priority-0 one must be branched first,
  // which we can only observe indirectly: the solve still reaches the
  // optimum regardless of priorities.
  MilpModel M;
  VarId X = M.addBinary("x");
  VarId Y = M.addBinary("y");
  M.setBranchPriority(X, 5);
  M.setBranchPriority(Y, 0);
  M.addConstraint(LinExpr().add(X, 2).add(Y, 2), CmpKind::LE, 3);
  M.setObjective(LinExpr().add(X, -2).add(Y, -1));
  MilpResult R = solveMilp(M);
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -2.0, 1e-6);
}

TEST(BranchAndBound, GeneralIntegerBranching) {
  // min 3x + 4y s.t. 2x + 3y >= 11, ints in [0, 8]: optimum (x=4, y=1)
  // cost 16 or (1,3) cost 15: check 2*1+3*3=11 -> 15.
  MilpModel M;
  VarId X = M.addVar(0, 8, VarKind::Integer, "x");
  VarId Y = M.addVar(0, 8, VarKind::Integer, "y");
  M.addConstraint(LinExpr().add(X, 2).add(Y, 3), CmpKind::GE, 11);
  M.setObjective(LinExpr().add(X, 3).add(Y, 4));
  MilpResult R = solveMilp(M);
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  EXPECT_NEAR(R.Objective, 15.0, 1e-6);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // y continuous rides along with integer x.
  MilpModel M;
  VarId X = M.addVar(0, 10, VarKind::Integer, "x");
  VarId Y = M.addVar(0, 10, VarKind::Continuous, "y");
  M.addConstraint(LinExpr().add(X, 1).add(Y, 1), CmpKind::GE, 3.5);
  M.setObjective(LinExpr().add(X, 2).add(Y, 1));
  MilpResult R = solveMilp(M);
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  // All-continuous-y solution: x = 0, y = 3.5, cost 3.5.
  EXPECT_NEAR(R.Objective, 3.5, 1e-6);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 0.0, 1e-6);
}
