//===- test_simplex_sparse.cpp - Sparse revised simplex tests -------------===//
//
// Targeted tests for the SparseLp workspace machinery the generic MILP
// property tests do not reach deterministically: Bland's rule on
// degenerate/cycling instances, presolve short-circuits on empty and
// trivially-infeasible models, basis refactorization after accumulated eta
// updates, warm-start resumption after a cancelled solve, convexity-group
// branching/propagation in the search, and the rotation symmetry breaking
// of the scheduling formulation.
//
//===----------------------------------------------------------------------===//

#include "swp/core/Formulation.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/machine/Catalog.h"
#include "swp/solver/BranchAndBound.h"
#include "swp/solver/Model.h"
#include "swp/solver/Simplex.h"
#include "swp/support/Cancellation.h"
#include "swp/workload/Corpus.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

using namespace swp;

namespace {

constexpr double Inf = MilpModel::Inf;

} // namespace

//===----------------------------------------------------------------------===//
// Degenerate pivoting / Bland's rule
//===----------------------------------------------------------------------===//

// Beale's classic cycling example: under steepest-decrease pivoting the
// tableau simplex cycles forever through degenerate bases.  The workspace
// must terminate (Bland's rule kicks in once progress stalls) at the known
// optimum.
TEST(SparseSimplex, BealeCyclingExampleTerminatesAtOptimum) {
  MilpModel M;
  VarId X1 = M.addVar(0, Inf, VarKind::Continuous, "x1");
  VarId X2 = M.addVar(0, Inf, VarKind::Continuous, "x2");
  VarId X3 = M.addVar(0, Inf, VarKind::Continuous, "x3");
  VarId X4 = M.addVar(0, Inf, VarKind::Continuous, "x4");
  M.setObjective(
      LinExpr().add(X1, -0.75).add(X2, 150).add(X3, -0.02).add(X4, 6));
  M.addConstraint(
      LinExpr().add(X1, 0.25).add(X2, -60).add(X3, -0.04).add(X4, 9),
      CmpKind::LE, 0);
  M.addConstraint(
      LinExpr().add(X1, 0.5).add(X2, -90).add(X3, -0.02).add(X4, 3),
      CmpKind::LE, 0);
  M.addConstraint(LinExpr().add(X3, 1), CmpKind::LE, 1);

  SparseLp Lp(M);
  LpResult R = Lp.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -0.05, 1e-9);
  EXPECT_NEAR(R.X[static_cast<size_t>(X3)], 1.0, 1e-9);
}

// A fully degenerate vertex: n identical rows pinning the same point.  Every
// basis at the optimum is degenerate and most ratio tests tie at zero; the
// solve must still terminate and the repeated warm re-solves under jittered
// bounds must stay exact.
TEST(SparseSimplex, MassivelyDegenerateVertexStaysExact) {
  MilpModel M;
  VarId X = M.addVar(0, 10, VarKind::Continuous, "x");
  VarId Y = M.addVar(0, 10, VarKind::Continuous, "y");
  M.setObjective(LinExpr().add(X, -1).add(Y, -1));
  // Eight constraints all active at (4, 4).
  for (int I = 0; I < 8; ++I)
    M.addConstraint(LinExpr().add(X, 1.0 + 0.0 * I).add(Y, 1.0), CmpKind::LE,
                    8.0);
  M.addConstraint(LinExpr().add(X, 1).add(Y, -1), CmpKind::LE, 0);
  M.addConstraint(LinExpr().add(Y, 1).add(X, -1), CmpKind::LE, 0);

  SparseLp Lp(M);
  LpResult R = Lp.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.Objective, -8.0, 1e-9);

  // Warm re-solves under perturbed bounds hit the same degenerate facets.
  std::vector<double> Lb(2, 0.0), Ub(2, 10.0);
  for (int I = 0; I < 5; ++I) {
    Ub[0] = 4.0 - 0.5 * I;
    LpResult W = Lp.solve(Lb, Ub);
    ASSERT_EQ(W.Status, LpStatus::Optimal) << "round " << I;
    EXPECT_NEAR(W.Objective, -2 * (4.0 - 0.5 * I), 1e-9) << "round " << I;
  }
}

//===----------------------------------------------------------------------===//
// Presolve short-circuits
//===----------------------------------------------------------------------===//

TEST(SparseSimplex, EmptyModelSolvesWithoutPivoting) {
  MilpModel M;
  SparseLp Lp(M);
  LpResult R = Lp.solve();
  EXPECT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_EQ(R.X.size(), 0u);
  EXPECT_EQ(Lp.stats().totalPivots(), 0);
}

TEST(SparseSimplex, UnconstrainedVarsSolveAtBounds) {
  MilpModel M;
  VarId X = M.addVar(2, 7, VarKind::Continuous, "x");
  M.addVar(-3, 5, VarKind::Continuous, "y");
  M.setObjective(LinExpr().add(X, 1));
  SparseLp Lp(M);
  LpResult R = Lp.solve();
  ASSERT_EQ(R.Status, LpStatus::Optimal);
  EXPECT_NEAR(R.X[static_cast<size_t>(X)], 2.0, 1e-12);
  EXPECT_EQ(Lp.numRows(), 0) << "no rows should survive presolve";
}

TEST(SparseSimplex, TriviallyInfeasibleModelAnswersFromPresolve) {
  // x <= 1 (singleton row) against lb(x) = 2: presolve converts the row
  // into a bound, sees the empty interval, and the solve answers without
  // touching the basis.  structuralBasis() on a never-solved workspace
  // must stay well-defined (empty), not read from a null basis.
  MilpModel M;
  VarId X = M.addVar(2, 5, VarKind::Continuous, "x");
  M.addConstraint(LinExpr().add(X, 1), CmpKind::LE, 1);
  SparseLp Lp(M);
  EXPECT_TRUE(Lp.presolveInfeasible());
  EXPECT_FALSE(Lp.presolve().Reason.empty());
  EXPECT_TRUE(Lp.structuralBasis().empty());
  LpResult R = Lp.solve();
  EXPECT_EQ(R.Status, LpStatus::Infeasible);
  EXPECT_EQ(Lp.stats().totalPivots(), 0);
  EXPECT_TRUE(Lp.structuralBasis().empty());
}

TEST(SparseSimplex, EmptyViolatedRowAnswersFromPresolve) {
  // Fixing both variables empties the row; the leftover "0 <= -1" check is
  // the paper-model shape presolve must catch (dependence rows whose
  // window emptied out).
  MilpModel M;
  VarId X = M.addVar(1, 1, VarKind::Continuous, "x");
  VarId Y = M.addVar(2, 2, VarKind::Continuous, "y");
  M.addConstraint(LinExpr().add(X, 1).add(Y, 1), CmpKind::LE, 2);
  SparseLp Lp(M);
  EXPECT_TRUE(Lp.presolveInfeasible());
  EXPECT_EQ(Lp.solve().Status, LpStatus::Infeasible);
}

//===----------------------------------------------------------------------===//
// Eta accumulation and refactorization
//===----------------------------------------------------------------------===//

// With the refactorization interval forced to 1, every pivot triggers a
// rebuild of the eta file; answers must match the default-interval
// workspace exactly across a sequence of warm bound changes.
TEST(SparseSimplex, RefactorizationPreservesAnswers) {
  MilpModel M;
  const int N = 6;
  std::vector<VarId> X;
  LinExpr Obj;
  for (int I = 0; I < N; ++I) {
    X.push_back(M.addVar(0, 4, VarKind::Continuous, "x"));
    Obj.add(X.back(), -(1.0 + 0.3 * I));
  }
  M.setObjective(std::move(Obj));
  for (int I = 0; I < N; ++I)
    M.addConstraint(
        LinExpr().add(X[static_cast<size_t>(I)], 2).add(
            X[static_cast<size_t>((I + 1) % N)], 1),
        CmpKind::LE, 5.0 + I);
  LinExpr Sum;
  for (VarId V : X)
    Sum.add(V, 1);
  M.addConstraint(std::move(Sum), CmpKind::LE, 9);

  SparseLp Eager(M); // Refactorizes after every update.
  Eager.setRefactorInterval(1);
  SparseLp Lazy(M); // Default interval: long eta chains accumulate.

  std::vector<double> Lb(static_cast<size_t>(N), 0.0);
  std::vector<double> Ub(static_cast<size_t>(N), 4.0);
  for (int Round = 0; Round < 12; ++Round) {
    Ub[static_cast<size_t>(Round % N)] = (Round % 3) * 1.5;
    LpResult A = Eager.solve(Lb, Ub);
    LpResult B = Lazy.solve(Lb, Ub);
    ASSERT_EQ(A.Status, B.Status) << "round " << Round;
    if (A.Status == LpStatus::Optimal)
      EXPECT_NEAR(A.Objective, B.Objective, 1e-7) << "round " << Round;
  }
  EXPECT_GT(Eager.stats().Refactorizations, Lazy.stats().Refactorizations)
      << "interval 1 must rebuild more often than the default";
  EXPECT_GT(Lazy.stats().WarmSolves, 0);
}

//===----------------------------------------------------------------------===//
// Cancellation and warm-start resumption
//===----------------------------------------------------------------------===//

TEST(SparseSimplex, WarmStartResumesAfterCancellation) {
  MilpModel M;
  VarId X = M.addVar(0, Inf, VarKind::Continuous, "x");
  VarId Y = M.addVar(0, Inf, VarKind::Continuous, "y");
  M.setObjective(LinExpr().add(X, -1).add(Y, -2));
  M.addConstraint(LinExpr().add(X, 1).add(Y, 1), CmpKind::LE, 10);
  M.addConstraint(LinExpr().add(X, 3).add(Y, 1), CmpKind::LE, 15);

  SparseLp Lp(M);
  CancellationSource Src;
  Src.cancel(); // Fires at the solve's entry poll.
  LpResult Cut = Lp.solve(Src.token());
  EXPECT_EQ(Cut.Status, LpStatus::Cancelled);

  // The workspace must shrug the cancellation off: the next solve (fresh
  // token) runs to optimality and matches a cold one-shot solve.
  LpResult Resumed = Lp.solve();
  ASSERT_EQ(Resumed.Status, LpStatus::Optimal);
  LpResult Cold = solveLp(M);
  ASSERT_EQ(Cold.Status, LpStatus::Optimal);
  EXPECT_NEAR(Resumed.Objective, Cold.Objective, 1e-9);
}

TEST(BranchAndBound, SearchResumesAfterCancelledRun) {
  // A cancelled branch-and-bound over a shared workspace must leave the
  // workspace usable: re-running the same search afterwards (same
  // workspace, fresh options) produces the normal proven answer.
  MilpModel M;
  std::vector<VarId> X;
  LinExpr Obj, Sum;
  for (int I = 0; I < 6; ++I) {
    X.push_back(M.addVar(0, 1, VarKind::Binary, "b"));
    Obj.add(X.back(), -(1.0 + 0.1 * I));
    Sum.add(X.back(), 2.0 + (I % 3));
  }
  M.setObjective(std::move(Obj));
  M.addConstraint(std::move(Sum), CmpKind::LE, 7);

  SparseLp Lp(M);
  MilpOptions Cancelled;
  CancellationSource Src;
  Src.cancel();
  Cancelled.Cancel = Src.token();
  MilpResult Cut = solveMilp(Lp, M, Cancelled);
  EXPECT_EQ(Cut.StopReason, SearchStop::Cancelled);
  EXPECT_FALSE(Cut.isProven());

  MilpResult Full = solveMilp(Lp, M);
  ASSERT_EQ(Full.Status, MilpStatus::Optimal);
  MilpResult Fresh = solveMilp(M);
  ASSERT_EQ(Fresh.Status, MilpStatus::Optimal);
  EXPECT_NEAR(Full.Objective, Fresh.Objective, 1e-6);
}

//===----------------------------------------------------------------------===//
// Convexity groups in the search
//===----------------------------------------------------------------------===//

// An "exactly one" group feeding an integer through a covering row.  The
// LP relaxation mixes group members fractionally; the search must land on
// the exact integer optimum (group branching + GUB-aware propagation are
// both exercised on this shape).
TEST(BranchAndBound, ConvexityGroupWithCoupledInteger) {
  MilpModel M;
  const double C[] = {1, 2, 3, 5};
  std::vector<VarId> B;
  LinExpr One, Cover;
  for (int I = 0; I < 4; ++I) {
    B.push_back(M.addVar(0, 1, VarKind::Binary, "b"));
    One.add(B.back(), 1);
    Cover.add(B.back(), -C[I]);
  }
  VarId Y = M.addVar(0, 5, VarKind::Integer, "y");
  Cover.add(Y, 1);
  M.addConstraint(std::move(One), CmpKind::EQ, 1);
  M.addConstraint(std::move(Cover), CmpKind::GE, 0); // y >= chosen cost.
  M.addConstraint(LinExpr().add(Y, 1), CmpKind::LE, 2);
  // Reward the expensive members; the cap y <= 2 forbids them.
  M.setObjective(LinExpr()
                     .add(B[0], -1)
                     .add(B[1], -2)
                     .add(B[2], -3)
                     .add(B[3], -4)
                     .add(Y, 0.001));

  MilpResult R = solveMilp(M);
  ASSERT_EQ(R.Status, MilpStatus::Optimal);
  // Best integral choice is member 1 (cost 2 fits under the cap).
  EXPECT_NEAR(R.X[static_cast<size_t>(B[1])], 1.0, 1e-6);
  EXPECT_NEAR(R.Objective, -2.0 + 0.002, 1e-6);

  // Tightening the cap below every member's cost must prove infeasibility
  // (the group's minimum activity exceeds the row slack for every member).
  MilpModel M2;
  std::vector<VarId> B2;
  LinExpr One2, Cover2;
  for (int I = 0; I < 4; ++I) {
    B2.push_back(M2.addVar(0, 1, VarKind::Binary, "b"));
    One2.add(B2.back(), 1);
    Cover2.add(B2.back(), -C[I]);
  }
  VarId Y2 = M2.addVar(0, 0, VarKind::Integer, "y");
  Cover2.add(Y2, 1);
  M2.addConstraint(std::move(One2), CmpKind::EQ, 1);
  M2.addConstraint(std::move(Cover2), CmpKind::GE, 0);
  MilpResult R2 = solveMilp(M2);
  EXPECT_EQ(R2.Status, MilpStatus::Infeasible);
}

//===----------------------------------------------------------------------===//
// Rotation symmetry breaking
//===----------------------------------------------------------------------===//

// Anchoring one instruction at pattern step 0 must never change the
// feasibility answer at any T (every schedule rotates into an anchored
// one), and every anchored schedule must place some op at offset 0.
TEST(Formulation, RotationAnchoringPreservesFeasibility) {
  MachineModel Machine = ppc604Like();
  for (std::uint64_t Seed : {3u, 11u, 29u}) {
    Ddg G = generateRandomLoop(Machine, Seed, {});
    int TLb = std::max({1, recurrenceMii(G), Machine.resourceMii(G)});
    for (int T = TLb; T < TLb + 3; ++T) {
      if (!Machine.moduloFeasible(G, T))
        continue;
      FormulationOptions Plain;
      Plain.Mapping = MappingKind::Fixed;
      FormulationOptions Anchored = Plain;
      Anchored.BreakRotation = true;

      MilpOptions SOpts;
      SOpts.StopAtFirstIncumbent = true;
      SOpts.NodeLimit = 20000;

      FormulationVars PV, AV;
      MilpModel PM = buildScheduleModel(G, Machine, T, Plain, PV);
      MilpModel AM = buildScheduleModel(G, Machine, T, Anchored, AV);
      MilpResult PR = solveMilp(PM, SOpts);
      MilpResult AR = solveMilp(AM, SOpts);
      ASSERT_TRUE(PR.isProven()) << "seed " << Seed << " T=" << T;
      ASSERT_TRUE(AR.isProven()) << "seed " << Seed << " T=" << T;
      EXPECT_EQ(PR.Status == MilpStatus::Infeasible,
                AR.Status == MilpStatus::Infeasible)
          << "anchoring changed feasibility at seed " << Seed << " T=" << T;

      if (AR.Status == MilpStatus::Optimal) {
        ModuloSchedule S = extractSchedule(G, Machine, T, Anchored, AV, AR.X);
        EXPECT_TRUE(verifySchedule(G, Machine, S).Ok)
            << "seed " << Seed << " T=" << T;
        bool AnyAtZero = false;
        for (int St : S.StartTime)
          AnyAtZero = AnyAtZero || (St % T == 0);
        EXPECT_TRUE(AnyAtZero)
            << "anchored schedule has no op at pattern step 0";
      }
    }
  }
}
