//===- test_verifier.cpp - Schedule verifier tests ------------------------===//

#include "swp/core/Verifier.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

/// The paper's Figure 3 schedule of the motivating loop: t = [0,1,3,5,7,11]
/// at T = 4 on the non-pipelined machine (2 FP units).
ModuloSchedule paperSchedule() {
  ModuloSchedule S;
  S.T = 4;
  S.StartTime = {0, 1, 3, 5, 7, 11};
  // i2 @ offset 3, i3 @ offset 1, i4 @ offset 3: i2 and i4 overlap (same
  // offset) and must sit on different FP units; i3 fits either.
  S.Mapping = {0, 0, 0, 0, 1, 0};
  return S;
}

} // namespace

TEST(Verifier, AcceptsPaperSchedule) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  VerifyResult V = verifySchedule(G, M, paperSchedule());
  EXPECT_TRUE(V.Ok) << V.Error;
}

TEST(Verifier, PaperTkaDecomposition) {
  ModuloSchedule S = paperSchedule();
  // K = [0,0,0,1,1,2] and offsets [0,1,3,1,3,3], as printed in the paper.
  EXPECT_EQ(S.kVector(), (std::vector<int>{0, 0, 0, 1, 1, 2}));
  EXPECT_EQ(S.offset(2), 3);
  EXPECT_EQ(S.offset(3), 1);
  EXPECT_EQ(S.offset(5), 3);
}

TEST(Verifier, RejectsDependenceViolation) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  ModuloSchedule S = paperSchedule();
  S.StartTime[1] = 0; // i0 -> i1 needs separation 1.
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("dependence"), std::string::npos) << V.Error;
}

TEST(Verifier, RejectsSelfRecurrenceViolation) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  ModuloSchedule S = paperSchedule();
  S.T = 1; // Self edge on i2 needs T >= 2.
  S.StartTime = {0, 1, 3, 5, 7, 11};
  S.Mapping = {0, 0, 0, 1, 0, 0};
  EXPECT_FALSE(verifySchedule(G, M, S).Ok);
}

TEST(Verifier, RejectsUnitCollision) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  ModuloSchedule S = paperSchedule();
  S.Mapping[4] = 0; // i2 and i4 now share unit 0 at the same offset.
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("collide"), std::string::npos) << V.Error;
}

TEST(Verifier, RejectsBadUnitIndex) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  ModuloSchedule S = paperSchedule();
  S.Mapping[2] = 5;
  EXPECT_FALSE(verifySchedule(G, M, S).Ok);
}

TEST(Verifier, RejectsNegativeStart) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  ModuloSchedule S = paperSchedule();
  S.StartTime[0] = -1;
  EXPECT_FALSE(verifySchedule(G, M, S).Ok);
}

TEST(Verifier, RejectsSizeMismatch) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  ModuloSchedule S = paperSchedule();
  S.StartTime.pop_back();
  EXPECT_FALSE(verifySchedule(G, M, S).Ok);
}

TEST(Verifier, RejectsZeroPeriod) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  ModuloSchedule S = paperSchedule();
  S.T = 0;
  EXPECT_FALSE(verifySchedule(G, M, S).Ok);
}

TEST(Verifier, RunTimeMappingCapacityCheck) {
  // Schedule A: offsets 0,1,2 of exec-2 FP ops on 2 units — aggregate
  // capacity holds without a mapping.
  Ddg G = scheduleALoop();
  MachineModel M = exampleTwoFpMachine();
  ModuloSchedule S;
  S.T = 3;
  // Dependences: ld->f0 (lat 1), f0->st (lat 2).  t = [0,1,2,3,4]:
  // FP offsets f0@1, f1@2, f2@0 cover each slot twice (capacity 2); the
  // store lands at offset 1, clear of the load's clean LS pipeline.
  S.StartTime = {0, 1, 2, 3, 4};
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_TRUE(V.Ok) << V.Error;
}

TEST(Verifier, RunTimeMappingOversubscription) {
  Ddg G = scheduleALoop();
  MachineModel M = exampleTwoFpMachine();
  ModuloSchedule S;
  S.T = 3;
  S.StartTime = {0, 1, 1, 1, 3}; // Three FP ops at one offset: usage 3 > 2.
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("oversubscribed"), std::string::npos) << V.Error;
}

TEST(Verifier, SimulationPlacesAlternatingUnits) {
  // The Schedule A schedule is executable with run-time unit pickup even
  // though no fixed mapping exists.
  Ddg G = scheduleALoop();
  MachineModel M = exampleTwoFpMachine();
  ModuloSchedule S;
  S.T = 3;
  S.StartTime = {0, 1, 2, 3, 4};
  std::string Err;
  EXPECT_TRUE(simulateRunTimeMapping(G, M, S, 10, &Err)) << Err;
}

TEST(Verifier, SimulationDetectsImpossibleSchedule) {
  Ddg G = scheduleALoop();
  MachineModel M = exampleTwoFpMachine();
  ModuloSchedule S;
  S.T = 3;
  S.StartTime = {0, 1, 1, 1, 3}; // 3 simultaneous FP ops on 2 units.
  std::string Err;
  EXPECT_FALSE(simulateRunTimeMapping(G, M, S, 4, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(Verifier, HazardStageCollision) {
  // On the hazard machine, FP stage 3 (busy cycles 1-2) makes offsets 0
  // and 1 collide on one unit even though issue slots differ.
  Ddg G("fp2");
  G.addNode("f0", 0, 2);
  G.addNode("f1", 0, 2);
  MachineModel M = exampleHazardMachine();
  ModuloSchedule S;
  S.T = 6;
  S.StartTime = {0, 1};
  S.Mapping = {0, 0};
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_FALSE(V.Ok);
  // Offset distance 3 is conflict-free (stage 3 usage {1,2} vs {4,5}).
  S.StartTime = {0, 3};
  EXPECT_TRUE(verifySchedule(G, M, S).Ok) << verifySchedule(G, M, S).Error;
}

TEST(Verifier, ModuloConstraintViolationDetected) {
  MachineModel M("m");
  M.addFuType("BAD", 1, moduloViolationTable());
  Ddg G("g");
  G.addNode("x", 0, 1);
  ModuloSchedule S;
  S.T = 2;
  S.StartTime = {0};
  S.Mapping = {0};
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("modulo"), std::string::npos) << V.Error;
}
