//===- test_daemon.cpp - swpd daemon integration tests --------------------===//
//
// In-process Daemon + DaemonClient over a real AF_UNIX socket: solve
// parity with a local service, warm-restart cache identity through the
// snapshot layer, load shedding and degradation levels on the wire,
// malformed-input error responses that keep the connection alive, corrupt
// frames that tear it down, injected socket faults, and the shutdown
// handshake.  Every daemon runs on its own socket path and the solves are
// node-limited, so the suite is deterministic and fast.
//
//===----------------------------------------------------------------------===//

#include "swp/machine/Catalog.h"
#include "swp/net/Client.h"
#include "swp/net/Daemon.h"
#include "swp/service/ResultCodec.h"
#include "swp/support/FaultInjector.h"
#include "swp/textio/Parser.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace swp;
using namespace swp::net;
namespace fs = std::filesystem;

namespace {

/// Per-test socket path, short enough for sockaddr_un.
std::string socketPathFor(const char *Name) {
  return "/tmp/swpd-ut-" + std::to_string(::getpid()) + "-" + Name + ".sock";
}

/// Small 4-op loop over the ppc604-like machine: load -> add -> add ->
/// store with one loop-carried edge.  ILP-solvable in milliseconds.
Ddg smallLoop() {
  Ddg G;
  G.setName("daemon-loop");
  int A = G.addNode("ld", 3, 2);
  int B = G.addNode("add1", 0, 1);
  int C = G.addNode("add2", 0, 1);
  int D = G.addNode("st", 3, 2);
  G.addEdge(A, B, 0);
  G.addEdge(B, C, 0);
  G.addEdge(C, D, 0);
  G.addEdge(D, A, 1);
  return G;
}

/// Deterministic solver knobs: only the node limit may censor.
ServiceOptions fastService() {
  ServiceOptions SO;
  SO.Jobs = 2;
  SO.Sched.TimeLimitPerT = 1e9;
  SO.Sched.NodeLimitPerT = 2000;
  SO.Sched.MaxTSlack = 4;
  return SO;
}

DaemonOptions daemonOptions(const char *Name) {
  DaemonOptions O;
  O.SocketPath = socketPathFor(Name);
  O.Service = fastService();
  O.IoTimeoutSeconds = 10.0;
  return O;
}

ScheduleRequestMsg requestFor(const MachineModel &M, const Ddg &G) {
  ScheduleRequestMsg Req;
  Req.Tenant = "test";
  Req.Scheduler = "ilp";
  Req.MachineText = printMachine(M);
  Req.LoopText = printLoop(G, M);
  return Req;
}

class DaemonTest : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().reset(); }
  void TearDown() override { FaultInjector::instance().reset(); }
};

} // namespace

TEST_F(DaemonTest, SolvesMatchALocalService) {
  MachineModel M = ppc604Like();
  Ddg G = smallLoop();
  DaemonOptions O = daemonOptions("parity");
  Daemon D(O);
  ASSERT_TRUE(D.start().isOk());

  Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
  ASSERT_TRUE(C.ok()) << C.status().str();
  Expected<ScheduleResponseMsg> Resp = C->schedule(requestFor(M, G));
  ASSERT_TRUE(Resp.ok()) << Resp.status().str();
  EXPECT_EQ(Resp->Outcome, ResponseOutcome::Solved);
  EXPECT_EQ(Resp->Degradation, DegradationLevel::None);
  ASSERT_TRUE(Resp->HasResult);
  EXPECT_FALSE(Resp->Result.CacheHit);

  SchedulerService Local(M, fastService());
  SchedulerResult Want = Local.submit(G).get();
  ASSERT_TRUE(Want.found());
  EXPECT_EQ(Resp->Result.Schedule.T, Want.Schedule.T);
  EXPECT_EQ(Resp->Result.Schedule.StartTime, Want.Schedule.StartTime);
  EXPECT_EQ(Resp->Result.Schedule.Mapping, Want.Schedule.Mapping);
  EXPECT_EQ(Resp->Result.ProvenRateOptimal, Want.ProvenRateOptimal);

  DaemonStats S = D.stats();
  EXPECT_EQ(S.Requests, 1u);
  EXPECT_EQ(S.Connections, 1u);
  D.stop();
}

TEST_F(DaemonTest, RestartServesWarmHitsIdenticalToColdSolves) {
  MachineModel M = ppc604Like();
  Ddg G = smallLoop();
  DaemonOptions O = daemonOptions("restart");
  O.SnapshotDir = "/tmp/swpd-ut-" + std::to_string(::getpid()) + "-snap";
  fs::remove_all(O.SnapshotDir);

  ScheduleResponseMsg Cold;
  {
    Daemon D(O);
    ASSERT_TRUE(D.start().isOk());
    Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
    ASSERT_TRUE(C.ok());
    Expected<ScheduleResponseMsg> R = C->schedule(requestFor(M, G));
    ASSERT_TRUE(R.ok()) << R.status().str();
    ASSERT_EQ(R->Outcome, ResponseOutcome::Solved);
    Cold = *R;
    D.stop(); // Saves the snapshot.
  }
  EXPECT_FALSE(Cold.Result.CacheHit);

  Daemon D2(O);
  ASSERT_TRUE(D2.start().isOk());
  EXPECT_GE(D2.stats().SnapshotEntriesLoaded, 1u);
  Expected<DaemonClient> C2 = DaemonClient::connect(O.SocketPath, 10.0);
  ASSERT_TRUE(C2.ok());
  Expected<ScheduleResponseMsg> Warm = C2->schedule(requestFor(M, G));
  ASSERT_TRUE(Warm.ok()) << Warm.status().str();
  ASSERT_EQ(Warm->Outcome, ResponseOutcome::Solved);
  EXPECT_TRUE(Warm->Result.CacheHit);

  // Identical to the pre-restart cold solve, bit for bit, modulo the
  // hit marker itself.
  SchedulerResult A = Cold.Result, B = Warm->Result;
  A.CacheHit = B.CacheHit = false;
  EXPECT_EQ(schedulerResultBytes(A), schedulerResultBytes(B));
  D2.stop();
  fs::remove_all(O.SnapshotDir);
}

TEST_F(DaemonTest, SaturationShedsWithAWellFormedResponse) {
  MachineModel M = ppc604Like();
  Ddg G = smallLoop();
  DaemonOptions O = daemonOptions("shed");
  O.Admission.MaxInFlight = 0; // Everything sheds.
  Daemon D(O);
  ASSERT_TRUE(D.start().isOk());

  Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
  ASSERT_TRUE(C.ok());
  Expected<ScheduleResponseMsg> R = C->schedule(requestFor(M, G));
  ASSERT_TRUE(R.ok()) << "a shed must still be a well-formed response";
  EXPECT_EQ(R->Outcome, ResponseOutcome::Shed);
  EXPECT_EQ(R->Degradation, DegradationLevel::Shed);
  EXPECT_FALSE(R->HasResult);
  EXPECT_FALSE(R->Reason.empty());

  DaemonStats S = D.stats();
  EXPECT_EQ(S.Admission.Shed, 1u);
  EXPECT_EQ(S.Service.CacheSize, 0u) << "shed requests must never be cached";
  D.stop();
}

TEST_F(DaemonTest, HeuristicOnlyDegradationCarriesFallbackRung) {
  MachineModel M = ppc604Like();
  Ddg G = smallLoop();
  DaemonOptions O = daemonOptions("heur");
  O.Admission.ReducedEffortAt = 0;
  O.Admission.HeuristicOnlyAt = 0;
  O.Admission.MaxInFlight = 4;
  Daemon D(O);
  ASSERT_TRUE(D.start().isOk());

  Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
  ASSERT_TRUE(C.ok());
  Expected<ScheduleResponseMsg> R = C->schedule(requestFor(M, G));
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_EQ(R->Outcome, ResponseOutcome::Solved);
  EXPECT_EQ(R->Degradation, DegradationLevel::HeuristicOnly);
  EXPECT_FALSE(R->Reason.empty());
  ASSERT_TRUE(R->HasResult);
  EXPECT_NE(R->Result.Fallback, FallbackRung::None)
      << "a heuristic-only answer must name its rung";
  EXPECT_EQ(D.stats().Service.CacheSize, 0u)
      << "degraded answers must never be memoized as full-effort results";
  D.stop();
}

TEST_F(DaemonTest, ReducedEffortStillSolvesAndCachesUnderItsOwnKey) {
  MachineModel M = ppc604Like();
  Ddg G = smallLoop();
  DaemonOptions O = daemonOptions("reduced");
  O.Admission.ReducedEffortAt = 0;
  O.Admission.HeuristicOnlyAt = 4;
  O.Admission.MaxInFlight = 4;
  Daemon D(O);
  ASSERT_TRUE(D.start().isOk());

  Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
  ASSERT_TRUE(C.ok());
  Expected<ScheduleResponseMsg> R1 = C->schedule(requestFor(M, G));
  ASSERT_TRUE(R1.ok());
  EXPECT_EQ(R1->Outcome, ResponseOutcome::Solved);
  EXPECT_EQ(R1->Degradation, DegradationLevel::ReducedEffort);
  EXPECT_FALSE(R1->Result.CacheHit);

  // The same degraded request hits the degraded entry (same JobOptions
  // fold into the fingerprint).
  Expected<ScheduleResponseMsg> R2 = C->schedule(requestFor(M, G));
  ASSERT_TRUE(R2.ok());
  EXPECT_TRUE(R2->Result.CacheHit);
  EXPECT_EQ(R2->Result.Schedule.T, R1->Result.Schedule.T);
  D.stop();
}

TEST_F(DaemonTest, TenantBudgetShedsOneTenantNotOthers) {
  MachineModel M = ppc604Like();
  Ddg G = smallLoop();
  DaemonOptions O = daemonOptions("tenant");
  O.Admission.TenantBudgetSeconds = 1.0;
  O.Admission.TenantRefillPerSecond = 0.0; // Hard quota.
  O.Admission.DefaultChargeSeconds = 1.0;
  Daemon D(O);
  ASSERT_TRUE(D.start().isOk());

  Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
  ASSERT_TRUE(C.ok());
  ScheduleRequestMsg Req = requestFor(M, G);
  Req.Tenant = "greedy";
  Expected<ScheduleResponseMsg> R1 = C->schedule(Req);
  ASSERT_TRUE(R1.ok());
  EXPECT_EQ(R1->Outcome, ResponseOutcome::Solved);

  Expected<ScheduleResponseMsg> R2 = C->schedule(Req);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2->Outcome, ResponseOutcome::Shed);
  EXPECT_NE(R2->Reason.find("budget"), std::string::npos);

  Req.Tenant = "patient";
  Expected<ScheduleResponseMsg> R3 = C->schedule(Req);
  ASSERT_TRUE(R3.ok());
  EXPECT_EQ(R3->Outcome, ResponseOutcome::Solved);
  EXPECT_EQ(D.stats().Admission.TenantShed, 1u);
  D.stop();
}

TEST_F(DaemonTest, MalformedInputsGetErrorResponsesAndKeepTheConnection) {
  MachineModel M = ppc604Like();
  Ddg G = smallLoop();
  DaemonOptions O = daemonOptions("badinput");
  Daemon D(O);
  ASSERT_TRUE(D.start().isOk());

  Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
  ASSERT_TRUE(C.ok());

  ScheduleRequestMsg Bad = requestFor(M, G);
  Bad.MachineText = "not a machine\n";
  Expected<ScheduleResponseMsg> R1 = C->schedule(Bad);
  ASSERT_TRUE(R1.ok());
  EXPECT_EQ(R1->Outcome, ResponseOutcome::Error);
  EXPECT_NE(R1->Reason.find("machine"), std::string::npos);

  Bad = requestFor(M, G);
  Bad.LoopText = "node x class NOPE latency 1\n";
  Expected<ScheduleResponseMsg> R2 = C->schedule(Bad);
  ASSERT_TRUE(R2.ok());
  EXPECT_EQ(R2->Outcome, ResponseOutcome::Error);
  EXPECT_NE(R2->Reason.find("loop"), std::string::npos);

  Bad = requestFor(M, G);
  Bad.Scheduler = "quantum-annealer";
  Expected<ScheduleResponseMsg> R3 = C->schedule(Bad);
  ASSERT_TRUE(R3.ok());
  EXPECT_EQ(R3->Outcome, ResponseOutcome::Error);
  EXPECT_NE(R3->Reason.find("unknown scheduler"), std::string::npos);

  // The connection survived three malformed requests; a good one works.
  Expected<ScheduleResponseMsg> R4 = C->schedule(requestFor(M, G));
  ASSERT_TRUE(R4.ok());
  EXPECT_EQ(R4->Outcome, ResponseOutcome::Solved);
  D.stop();
}

TEST_F(DaemonTest, CorruptFrameGetsErrorResponseThenTeardown) {
  DaemonOptions O = daemonOptions("corrupt");
  Daemon D(O);
  ASSERT_TRUE(D.start().isOk());

  // A raw client: valid frame with one payload byte flipped after the
  // CRCs were computed.
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::strncpy(Addr.sun_path, O.SocketPath.c_str(),
               sizeof(Addr.sun_path) - 1);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  std::vector<std::uint8_t> Payload{1, 2, 3, 4, 5};
  std::vector<std::uint8_t> Frame =
      encodeFrame(MessageType::StatsRequest, Payload);
  Frame[FrameHeaderSize + 2] ^= 0x10;
  ASSERT_EQ(::write(Fd, Frame.data(), Frame.size()),
            static_cast<ssize_t>(Frame.size()));

  Socket Raw(Fd); // Adopt the fd to read the daemon's reply.
  MessageType Type;
  std::vector<std::uint8_t> Reply;
  Status St = Raw.recvFrame(Type, Reply, 10.0);
  ASSERT_TRUE(St.isOk()) << St.str();
  EXPECT_EQ(Type, MessageType::ErrorResponse);

  // After the error the daemon tears the connection down.
  Status St2 = Raw.recvFrame(Type, Reply, 10.0);
  EXPECT_FALSE(St2.isOk());
  EXPECT_EQ(D.stats().FrameErrors, 1u);
  D.stop();
}

TEST_F(DaemonTest, InjectedSocketFaultsFailTypedAndRecover) {
  MachineModel M = ppc604Like();
  Ddg G = smallLoop();
  DaemonOptions O = daemonOptions("sockfault");
  Daemon D(O);
  ASSERT_TRUE(D.start().isOk());

  // sock-read fires in the daemon's receive path: the connection dies,
  // the client sees a typed transport failure, never a hang.
  {
    Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
    ASSERT_TRUE(C.ok());
    std::string Err;
    ASSERT_TRUE(
        FaultInjector::instance().configure("sock-read:1", 0, &Err))
        << Err;
    Expected<ScheduleResponseMsg> R = C->schedule(requestFor(M, G));
    EXPECT_FALSE(R.ok());
    FaultInjector::instance().reset();
  }

  // sock-write fires in the client's send path: same typed discipline.
  {
    Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
    ASSERT_TRUE(C.ok());
    std::string Err;
    ASSERT_TRUE(
        FaultInjector::instance().configure("sock-write:1", 0, &Err))
        << Err;
    Expected<ScheduleResponseMsg> R = C->schedule(requestFor(M, G));
    EXPECT_FALSE(R.ok());
    EXPECT_EQ(R.status().code(), StatusCode::FaultInjected);
    FaultInjector::instance().reset();
  }

  // Recovery: a fresh connection serves normally.
  Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
  ASSERT_TRUE(C.ok());
  Expected<ScheduleResponseMsg> R = C->schedule(requestFor(M, G));
  ASSERT_TRUE(R.ok()) << R.status().str();
  EXPECT_EQ(R->Outcome, ResponseOutcome::Solved);
  D.stop();
}

TEST_F(DaemonTest, StatsRequestReturnsRenderedText) {
  DaemonOptions O = daemonOptions("stats");
  Daemon D(O);
  ASSERT_TRUE(D.start().isOk());
  Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
  ASSERT_TRUE(C.ok());
  Expected<std::string> Text = C->statsText();
  ASSERT_TRUE(Text.ok()) << Text.status().str();
  EXPECT_NE(Text->find("requests"), std::string::npos);
  EXPECT_NE(Text->find("Admission"), std::string::npos);
  D.stop();
}

TEST_F(DaemonTest, ShutdownFrameStopsTheDaemon) {
  DaemonOptions O = daemonOptions("shutdown");
  Daemon D(O);
  ASSERT_TRUE(D.start().isOk());
  Expected<DaemonClient> C = DaemonClient::connect(O.SocketPath, 10.0);
  ASSERT_TRUE(C.ok());
  ASSERT_TRUE(C->requestShutdown().isOk());
  EXPECT_TRUE(D.waitShutdownRequested(10.0));
  D.stop();
  EXPECT_FALSE(D.running());
}
