//===- test_multifunction.cpp - Multi-function pipeline extension ---------===//
//
// The paper's Section 7 extension: operations of different kinds (distinct
// reservation tables) sharing one physical unit.  Tests cover the
// cross-table conflict relation, bounds, the unified ILP, both baseline
// schedulers, and the verifier.
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/core/Verifier.h"
#include "swp/heuristics/Enumerative.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Corpus.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

constexpr int Fpu = 2;
constexpr int Lsu = 3;

/// ld -> fdiv -> fmul -> st : divide and multiply share the single FPU.
Ddg divMulLoop() {
  Ddg G("div-mul");
  int Ld = G.addNode("ld", Lsu, 2);
  int Dv = G.addNodeVariant("fdiv", Fpu, ppc604FpuDivVariant(), 8);
  int Mu = G.addNode("fmul", Fpu, 4);
  int St = G.addNode("st", Lsu, 2);
  G.addEdge(Ld, Dv, 0);
  G.addEdge(Dv, Mu, 0);
  G.addEdge(Mu, St, 0);
  return G;
}

} // namespace

TEST(MultiFunction, TablesConflictAtOffsetBasics) {
  MachineModel M = ppc604MultiFunction();
  const ReservationTable &Mul = M.type(Fpu).variant(0);
  const ReservationTable &Div = M.type(Fpu).variant(1);
  // A divide holds stage 1 during cycles 0..5: any multiply issued within
  // that window on the same unit collides on stage 1.
  int T = 12;
  for (int Delta = 0; Delta <= 5; ++Delta)
    EXPECT_TRUE(tablesConflictAtOffset(Div, Mul, Delta, T)) << Delta;
  // A multiply 8 cycles later is clear of every divide stage.
  EXPECT_FALSE(tablesConflictAtOffset(Div, Mul, 9, T));
}

TEST(MultiFunction, ConflictOrientationIsConsistent) {
  MachineModel M = ppc604MultiFunction();
  const ReservationTable &Mul = M.type(Fpu).variant(0);
  const ReservationTable &Div = M.type(Fpu).variant(1);
  // Div at offset p, Mul at offset p+Delta collide iff Mul at offset q,
  // Div at q+(T-Delta) collide.
  int T = 10;
  for (int Delta = 0; Delta < T; ++Delta)
    EXPECT_EQ(tablesConflictAtOffset(Div, Mul, Delta, T),
              tablesConflictAtOffset(Mul, Div, (T - Delta) % T, T))
        << Delta;
}

TEST(MultiFunction, SameTableReducesToSingleFunctionConflicts) {
  ReservationTable Table = ReservationTable::nonPipelined(3);
  for (int T = 4; T <= 8; ++T)
    for (int Delta = 0; Delta < T; ++Delta)
      EXPECT_EQ(tablesConflictAtOffset(Table, Table, Delta, T),
                Table.conflictsAtOffset(Delta, T));
}

TEST(MultiFunction, AcceptsDdgChecksVariants) {
  MachineModel M = ppc604MultiFunction();
  Ddg Good = divMulLoop();
  EXPECT_TRUE(M.acceptsDdg(Good));
  Ddg Bad("bad");
  Bad.addNodeVariant("x", Fpu, 7, 1);
  EXPECT_FALSE(M.acceptsDdg(Bad));
  Ddg BadLsu("bad-lsu");
  BadLsu.addNodeVariant("y", Lsu, 1, 1); // LSU has no extra variants.
  EXPECT_FALSE(M.acceptsDdg(BadLsu));
}

TEST(MultiFunction, ResourceMiiCountsVariantUsage) {
  MachineModel M = ppc604MultiFunction();
  Ddg G("divs");
  G.addNodeVariant("d0", Fpu, 1, 8);
  G.addNodeVariant("d1", Fpu, 1, 8);
  // Each divide holds FPU stage 1 for 6 cycles: T_res = 12 on one unit.
  EXPECT_EQ(M.resourceMii(G), 12);
  // Mixing in a multiply adds its stage-1 cycle.
  G.addNode("m", Fpu, 4);
  EXPECT_EQ(M.resourceMii(G), 13);
}

TEST(MultiFunction, IlpSchedulesDivMulLoop) {
  MachineModel M = ppc604MultiFunction();
  Ddg G = divMulLoop();
  SchedulerResult R = scheduleLoop(G, M);
  ASSERT_TRUE(R.found());
  VerifyResult V = verifySchedule(G, M, R.Schedule);
  EXPECT_TRUE(V.Ok) << V.Error;
  // One divide (6 stage-1 cycles) + one multiply (1) on one FPU: T >= 7.
  EXPECT_GE(R.Schedule.T, 7);
  EXPECT_TRUE(R.ProvenRateOptimal);
}

TEST(MultiFunction, VerifierRejectsCrossVariantCollision) {
  MachineModel M = ppc604MultiFunction();
  Ddg G("pair");
  G.addNodeVariant("div", Fpu, 1, 8);
  G.addNode("mul", Fpu, 4);
  ModuloSchedule S;
  S.T = 8;
  S.StartTime = {0, 2}; // Multiply lands inside the divider's stage-1 hold.
  S.Mapping = {0, 0};
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("collide"), std::string::npos) << V.Error;
  // 7 cycles later stage 1 is free but the writeback stages now align:
  // div uses stage 2 at cycle 6; mul at offset 7 uses stage 2 at 8 — ok;
  // offset 6 would clash on stage 3 (div @ 7, mul offset 6 + stage3 ... ).
  S.StartTime = {0, 12};
  ModuloSchedule S2 = S;
  S2.T = 16;
  EXPECT_TRUE(verifySchedule(G, M, S2).Ok)
      << verifySchedule(G, M, S2).Error;
}

TEST(MultiFunction, EnumerativeAgreesWithIlp) {
  MachineModel M = ppc604MultiFunction();
  Ddg G = divMulLoop();
  SchedulerResult I = scheduleLoop(G, M);
  EnumResult E = enumerativeSchedule(G, M);
  ASSERT_TRUE(I.found());
  ASSERT_TRUE(E.found());
  EXPECT_EQ(I.Schedule.T, E.Schedule.T);
  EXPECT_TRUE(E.ProvenRateOptimal);
}

TEST(MultiFunction, ImsHandlesSharedUnit) {
  MachineModel M = ppc604MultiFunction();
  Ddg G = divMulLoop();
  ImsResult R = iterativeModuloSchedule(G, M);
  ASSERT_TRUE(R.found());
  VerifyResult V = verifySchedule(G, M, R.Schedule);
  EXPECT_TRUE(V.Ok) << V.Error;
  SchedulerResult I = scheduleLoop(G, M);
  ASSERT_TRUE(I.found());
  EXPECT_GE(R.Schedule.T, I.Schedule.T);
}

TEST(MultiFunction, SharedUnitCostsIIVersusSeparateUnits) {
  // The same loop on the separate-FDIV machine can overlap divide and
  // multiply; the shared FPU serializes their stage-1 usage.
  Ddg Shared = divMulLoop();
  MachineModel MShared = ppc604MultiFunction();
  SchedulerResult RShared = scheduleLoop(Shared, MShared);

  Ddg Separate("div-mul-separate");
  int Ld = Separate.addNode("ld", 3, 2);
  int Dv = Separate.addNode("fdiv", 4, 8); // Own FDIV type on ppc604Like.
  int Mu = Separate.addNode("fmul", 2, 4);
  int St = Separate.addNode("st", 3, 2);
  Separate.addEdge(Ld, Dv, 0);
  Separate.addEdge(Dv, Mu, 0);
  Separate.addEdge(Mu, St, 0);
  SchedulerResult RSep = scheduleLoop(Separate, ppc604Like());

  ASSERT_TRUE(RShared.found());
  ASSERT_TRUE(RSep.found());
  EXPECT_GT(RShared.Schedule.T, RSep.Schedule.T)
      << "sharing one FPU must cost initiation interval here";
}

class MultiFunctionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiFunctionPropertyTest, RandomMixedLoopsScheduleAndVerify) {
  MachineModel M = ppc604MultiFunction();
  CorpusOptions Opts;
  Opts.MaxNodes = 7;
  Ddg Base = generateRandomLoop(
      M, static_cast<std::uint64_t>(GetParam()) * 6700417ULL + 3, Opts);
  // Remap: the corpus generator targets ppc604Like's 5 classes; fold class
  // 4 (FDIV) into FPU divide variants.
  Ddg G(Base.name());
  for (const DdgNode &N : Base.nodes()) {
    if (N.OpClass == 4)
      G.addNodeVariant(N.Name, Fpu, ppc604FpuDivVariant(), 8);
    else
      G.addNodeVariant(N.Name, N.OpClass, 0, N.Latency);
  }
  for (const DdgEdge &E : Base.edges())
    G.addEdgeWithLatency(E.Src, E.Dst, E.Distance,
                         G.node(E.Src).Latency);
  SchedulerOptions SOpts;
  SOpts.TimeLimitPerT = 10.0;
  SchedulerResult R = scheduleLoop(G, M, SOpts);
  ASSERT_TRUE(R.found()) << G.name();
  VerifyResult V = verifySchedule(G, M, R.Schedule);
  EXPECT_TRUE(V.Ok) << V.Error;

  EnumResult E = enumerativeSchedule(G, M);
  if (E.found() && E.ProvenRateOptimal && R.ProvenRateOptimal) {
    EXPECT_EQ(E.Schedule.T, R.Schedule.T) << G.name();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, MultiFunctionPropertyTest,
                         ::testing::Range(0, 12));
