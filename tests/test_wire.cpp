//===- test_wire.cpp - swpd wire protocol tests ---------------------------===//
//
// The frame codec (header layout, CRC discipline, rejection taxonomy) and
// the message codecs (byte-exact round trips, bounds, canonicality).  The
// exhaustive truncation/bit-flip sweeps live in swp_fuzz --mode wire; here
// each rejection class gets a directed test naming the expected
// FrameError.
//
//===----------------------------------------------------------------------===//

#include "swp/net/Wire.h"
#include "swp/support/Crc32.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace swp;
using namespace swp::net;

namespace {

std::vector<std::uint8_t> bytesOf(const std::string &S) {
  return std::vector<std::uint8_t>(S.begin(), S.end());
}

/// A 20-byte header with an arbitrary field tweak but a *valid* header
/// CRC, so decodeFrameHeader's field checks (magic, version, size) are
/// reachable past the CRC gate.
std::vector<std::uint8_t> headerWith(std::uint32_t Magic, std::uint16_t Version,
                                     std::uint16_t Type, std::uint32_t Len,
                                     std::uint32_t PayloadCrc) {
  ByteWriter W;
  W.u32(Magic);
  W.u16(Version);
  W.u16(Type);
  W.u32(Len);
  W.u32(PayloadCrc);
  W.u32(crc32(std::span<const std::uint8_t>(W.data().data(), 16)));
  return W.take();
}

ScheduleRequestMsg sampleRequest() {
  ScheduleRequestMsg Req;
  Req.Tenant = "tenant-a";
  Req.Scheduler = "portfolio-sat";
  Req.DeadlineSeconds = 2.5;
  Req.MachineText = "machine m\n";
  Req.LoopText = std::string("loop with\0embedded NUL", 22);
  return Req;
}

ScheduleResponseMsg sampleResponse() {
  ScheduleResponseMsg Resp;
  Resp.Outcome = ResponseOutcome::Solved;
  Resp.Degradation = DegradationLevel::ReducedEffort;
  Resp.Reason = "load high";
  Resp.HasResult = true;
  Resp.Result.Schedule.T = 3;
  Resp.Result.Schedule.StartTime = {0, 1, 5};
  Resp.Result.Schedule.Mapping = {0, 0, 1};
  Resp.Result.TDep = 2;
  Resp.Result.TRes = 3;
  Resp.Result.TLowerBound = 3;
  Resp.Result.ProvenRateOptimal = true;
  Resp.Result.CacheHit = true;
  Resp.Result.TotalSeconds = 0.125;
  Resp.Result.TotalNodes = 42;
  TAttempt A;
  A.T = 3;
  A.Status = MilpStatus::Optimal;
  A.StopReason = SearchStop::None;
  A.Seconds = 0.1;
  A.Nodes = 42;
  Resp.Result.Attempts.push_back(A);
  return Resp;
}

} // namespace

//===----------------------------------------------------------------------===//
// Frame codec
//===----------------------------------------------------------------------===//

TEST(WireFrame, RoundTripsHeaderAndPayload) {
  std::vector<std::uint8_t> Payload = bytesOf("hello frames");
  std::vector<std::uint8_t> Frame =
      encodeFrame(MessageType::ScheduleRequest, Payload);
  ASSERT_EQ(Frame.size(), FrameHeaderSize + Payload.size());

  FrameHeader H;
  ASSERT_EQ(decodeFrameHeader(std::span(Frame).first(FrameHeaderSize), H),
            FrameError::None);
  EXPECT_EQ(H.Type, MessageType::ScheduleRequest);
  EXPECT_EQ(H.PayloadLen, Payload.size());
  EXPECT_EQ(verifyFramePayload(H, std::span(Frame).subspan(FrameHeaderSize)),
            FrameError::None);
}

TEST(WireFrame, EmptyPayloadIsAFullFrame) {
  std::vector<std::uint8_t> Frame = encodeFrame(MessageType::StatsRequest, {});
  ASSERT_EQ(Frame.size(), FrameHeaderSize);
  FrameHeader H;
  ASSERT_EQ(decodeFrameHeader(Frame, H), FrameError::None);
  EXPECT_EQ(H.PayloadLen, 0u);
  EXPECT_EQ(verifyFramePayload(H, {}), FrameError::None);
}

TEST(WireFrame, TruncatedHeaderRejected) {
  std::vector<std::uint8_t> Frame = encodeFrame(MessageType::StatsRequest, {});
  FrameHeader H;
  for (std::size_t Len = 0; Len < FrameHeaderSize; ++Len)
    EXPECT_EQ(decodeFrameHeader(std::span(Frame).first(Len), H),
              FrameError::BadHeaderCrc)
        << "header prefix of " << Len << " bytes";
}

TEST(WireFrame, HeaderCrcGateRunsFirst) {
  // A flipped magic bit without a recomputed CRC must read as a CRC
  // failure, not BadMagic — a corrupt header's fields are untrustworthy.
  std::vector<std::uint8_t> Frame = encodeFrame(MessageType::StatsRequest, {});
  Frame[0] ^= 0x01;
  FrameHeader H;
  EXPECT_EQ(decodeFrameHeader(Frame, H), FrameError::BadHeaderCrc);
}

TEST(WireFrame, FieldRejectionsBehindValidCrc) {
  FrameHeader H;
  EXPECT_EQ(decodeFrameHeader(
                headerWith(WireMagic ^ 1, WireVersion, 3, 0, crc32({})), H),
            FrameError::BadMagic);
  EXPECT_EQ(decodeFrameHeader(
                headerWith(WireMagic, WireVersion + 1, 3, 0, crc32({})), H),
            FrameError::BadVersion);
  EXPECT_EQ(decodeFrameHeader(headerWith(WireMagic, WireVersion, 3,
                                         MaxFramePayload + 1, crc32({})),
                              H),
            FrameError::Oversized);
}

TEST(WireFrame, PayloadCorruptionRejected) {
  std::vector<std::uint8_t> Payload = bytesOf("payload bytes");
  std::vector<std::uint8_t> Frame =
      encodeFrame(MessageType::ScheduleResponse, Payload);
  FrameHeader H;
  ASSERT_EQ(decodeFrameHeader(std::span(Frame).first(FrameHeaderSize), H),
            FrameError::None);

  std::vector<std::uint8_t> Bad = Payload;
  Bad[3] ^= 0x40;
  EXPECT_EQ(verifyFramePayload(H, Bad), FrameError::BadPayloadCrc);

  std::vector<std::uint8_t> Short(Payload.begin(), Payload.end() - 1);
  EXPECT_EQ(verifyFramePayload(H, Short), FrameError::BadPayloadCrc);
}

TEST(WireFrame, ErrorNamesAreStable) {
  EXPECT_STREQ(frameErrorName(FrameError::BadHeaderCrc), "bad-header-crc");
  EXPECT_STREQ(frameErrorName(FrameError::BadPayloadCrc), "bad-payload-crc");
  EXPECT_STREQ(responseOutcomeName(ResponseOutcome::Shed), "shed");
}

//===----------------------------------------------------------------------===//
// Message codecs
//===----------------------------------------------------------------------===//

TEST(WireMessages, RequestRoundTripsByteExactly) {
  ScheduleRequestMsg Req = sampleRequest();
  ByteWriter W;
  encodeScheduleRequest(W, Req);

  ByteReader R(W.data());
  ScheduleRequestMsg Out;
  ASSERT_TRUE(decodeScheduleRequest(R, Out));
  ASSERT_TRUE(R.done());
  EXPECT_EQ(Out.Tenant, Req.Tenant);
  EXPECT_EQ(Out.Scheduler, Req.Scheduler);
  EXPECT_EQ(Out.DeadlineSeconds, Req.DeadlineSeconds);
  EXPECT_EQ(Out.MachineText, Req.MachineText);
  EXPECT_EQ(Out.LoopText, Req.LoopText);

  ByteWriter W2;
  encodeScheduleRequest(W2, Out);
  EXPECT_EQ(W2.data(), W.data());
}

TEST(WireMessages, ResponseRoundTripsByteExactly) {
  ScheduleResponseMsg Resp = sampleResponse();
  ByteWriter W;
  encodeScheduleResponse(W, Resp);

  ByteReader R(W.data());
  ScheduleResponseMsg Out;
  ASSERT_TRUE(decodeScheduleResponse(R, Out));
  ASSERT_TRUE(R.done());
  EXPECT_EQ(Out.Outcome, Resp.Outcome);
  EXPECT_EQ(Out.Degradation, Resp.Degradation);
  EXPECT_EQ(Out.Reason, Resp.Reason);
  ASSERT_TRUE(Out.HasResult);
  EXPECT_EQ(Out.Result.Schedule.T, 3);
  EXPECT_EQ(Out.Result.Schedule.StartTime, Resp.Result.Schedule.StartTime);
  EXPECT_TRUE(Out.Result.ProvenRateOptimal);
  EXPECT_TRUE(Out.Result.CacheHit);
  ASSERT_EQ(Out.Result.Attempts.size(), 1u);
  EXPECT_EQ(Out.Result.Attempts[0].Status, MilpStatus::Optimal);

  ByteWriter W2;
  encodeScheduleResponse(W2, Out);
  EXPECT_EQ(W2.data(), W.data());
}

TEST(WireMessages, ShedResponseCarriesNoResult) {
  ScheduleResponseMsg Resp;
  Resp.Outcome = ResponseOutcome::Shed;
  Resp.Degradation = DegradationLevel::Shed;
  Resp.Reason = "queue full";
  Resp.HasResult = false;
  ByteWriter W;
  encodeScheduleResponse(W, Resp);

  ByteReader R(W.data());
  ScheduleResponseMsg Out;
  ASSERT_TRUE(decodeScheduleResponse(R, Out));
  ASSERT_TRUE(R.done());
  EXPECT_EQ(Out.Outcome, ResponseOutcome::Shed);
  EXPECT_FALSE(Out.HasResult);
}

TEST(WireMessages, TruncatedPayloadsRejected) {
  ScheduleRequestMsg Req = sampleRequest();
  ByteWriter W;
  encodeScheduleRequest(W, Req);
  const std::vector<std::uint8_t> &Full = W.data();
  for (std::size_t Cut = 0; Cut < Full.size(); ++Cut) {
    std::vector<std::uint8_t> Short(Full.begin(),
                                    Full.begin() + static_cast<long>(Cut));
    ByteReader R(Short);
    ScheduleRequestMsg Out;
    EXPECT_FALSE(decodeScheduleRequest(R, Out) && R.done())
        << "accepted a " << Cut << "-byte truncation";
  }
}

TEST(WireMessages, TrailingGarbageRejectedByDone) {
  ScheduleRequestMsg Req = sampleRequest();
  ByteWriter W;
  encodeScheduleRequest(W, Req);
  std::vector<std::uint8_t> Extra = W.data();
  Extra.push_back(0xAB);
  ByteReader R(Extra);
  ScheduleRequestMsg Out;
  ASSERT_TRUE(decodeScheduleRequest(R, Out));
  EXPECT_FALSE(R.done());
}

TEST(WireMessages, OutOfRangeEnumsRejected) {
  ScheduleResponseMsg Resp = sampleResponse();
  ByteWriter W;
  encodeScheduleResponse(W, Resp);

  // Byte 0 is the outcome, byte 1 the degradation level.
  std::vector<std::uint8_t> BadOutcome = W.data();
  BadOutcome[0] = 200;
  ByteReader R1(BadOutcome);
  ScheduleResponseMsg Out;
  EXPECT_FALSE(decodeScheduleResponse(R1, Out));

  std::vector<std::uint8_t> BadLevel = W.data();
  BadLevel[1] = 77;
  ByteReader R2(BadLevel);
  EXPECT_FALSE(decodeScheduleResponse(R2, Out));
}

TEST(WireMessages, NonCanonicalBooleanRejected) {
  ScheduleResponseMsg Resp = sampleResponse();
  ByteWriter W;
  encodeScheduleResponse(W, Resp);
  // HasResult sits after outcome, level, and the length-prefixed reason.
  std::size_t BoolAt = 1 + 1 + 4 + Resp.Reason.size();
  std::vector<std::uint8_t> Bad = W.data();
  ASSERT_EQ(Bad[BoolAt], 1u);
  Bad[BoolAt] = 2;
  ByteReader R(Bad);
  ScheduleResponseMsg Out;
  EXPECT_FALSE(decodeScheduleResponse(R, Out) && R.done());
}

TEST(WireMessages, HostileStringLengthsFailInsteadOfAllocating) {
  // A tenant-name length prefix of ~4 GiB must fail the codec's bound, not
  // attempt the allocation.
  ByteWriter W;
  W.u32(0xFFFFFFF0u);
  ByteReader R(W.data());
  ScheduleRequestMsg Out;
  EXPECT_FALSE(decodeScheduleRequest(R, Out));
}
