//===- test_registers.cpp - Buffer / register-pressure extension tests ----===//

#include "swp/core/Driver.h"
#include "swp/core/Registers.h"
#include "swp/core/Verifier.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Corpus.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

ModuloSchedule paperSchedule() {
  ModuloSchedule S;
  S.T = 4;
  S.StartTime = {0, 1, 3, 5, 7, 11};
  S.Mapping = {0, 0, 0, 0, 1, 0};
  return S;
}

} // namespace

TEST(Buffers, EdgeCountsHandComputed) {
  Ddg G = motivatingLoop();
  ModuloSchedule S = paperSchedule();
  // Edge i0->i1: sep 1 -> ceil(1/4) = 1. Edge i4->i5: sep 4 -> 1.
  // Self edge i2->i2 distance 1: sep 0 + 4 = 4 -> 1.
  for (const DdgEdge &E : G.edges())
    EXPECT_EQ(edgeBufferCount(G, S, E), 1)
        << G.node(E.Src).Name << "->" << G.node(E.Dst).Name;
  EXPECT_EQ(totalBuffers(G, S), 6);
}

TEST(Buffers, LongSeparationNeedsMoreBuffers) {
  Ddg G("g");
  int A = G.addNode("a", 0, 1);
  int B = G.addNode("b", 0, 1);
  G.addEdge(A, B, 0);
  ModuloSchedule S;
  S.T = 2;
  S.StartTime = {0, 5}; // Separation 5 at T = 2: ceil(5/2) = 3 copies.
  EXPECT_EQ(edgeBufferCount(G, S, G.edges()[0]), 3);
}

TEST(Buffers, MinimumOneBufferPerEdge) {
  Ddg G("g");
  int A = G.addNode("a", 0, 0);
  int B = G.addNode("b", 0, 1);
  G.addEdgeWithLatency(A, B, 0, 0);
  ModuloSchedule S;
  S.T = 3;
  S.StartTime = {0, 0};
  EXPECT_EQ(edgeBufferCount(G, S, G.edges()[0]), 1);
}

TEST(Lifetimes, ValueLifetimeSpansLastUse) {
  Ddg G("g");
  int A = G.addNode("a", 0, 2);
  int B = G.addNode("b", 0, 2);
  int C = G.addNode("c", 0, 2);
  G.addEdge(A, B, 0);
  G.addEdge(A, C, 1); // Used again one iteration later.
  ModuloSchedule S;
  S.T = 3;
  S.StartTime = {0, 2, 2};
  EXPECT_EQ(valueLifetime(G, S, A), 5) << "last use at t_c + T*1 = 5";
  EXPECT_EQ(valueLifetime(G, S, B), 0) << "no consumers";
}

TEST(Lifetimes, MaxLiveCountsOverlappingGenerations) {
  // One value with lifetime 5 at T = 2 keeps ceil-ish 3 copies alive at
  // some slot (floor 2 everywhere plus 1 partial).
  Ddg G("g");
  int A = G.addNode("a", 0, 1);
  int B = G.addNode("b", 0, 1);
  G.addEdge(A, B, 0);
  ModuloSchedule S;
  S.T = 2;
  S.StartTime = {0, 5};
  std::vector<int> Live = livePerSlot(G, S);
  ASSERT_EQ(Live.size(), 2u);
  EXPECT_EQ(Live[0], 3);
  EXPECT_EQ(Live[1], 2);
  EXPECT_EQ(maxLive(G, S), 3);
}

TEST(Lifetimes, RenderShowsChartAndMaxLive) {
  Ddg G = motivatingLoop();
  std::string Out = renderLifetimes(G, paperSchedule());
  EXPECT_NE(Out.find("MaxLive"), std::string::npos);
  EXPECT_NE(Out.find("i2"), std::string::npos);
}

TEST(BufferMinimization, ReducesBuffersAtSameT) {
  // A diamond with slack: feasibility scheduling may stretch lifetimes;
  // buffer minimization must reach the minimum.
  MachineModel M = exampleCleanMachine();
  Ddg G("diamond");
  int A = G.addNode("a", 0, 2);
  int B = G.addNode("b", 0, 2);
  int C = G.addNode("c", 1, 1);
  int D = G.addNode("d", 1, 1);
  G.addEdge(A, B, 0);
  G.addEdge(A, C, 0);
  G.addEdge(B, D, 0);
  G.addEdge(C, D, 0);

  SchedulerOptions Plain;
  SchedulerResult R1 = scheduleLoop(G, M, Plain);
  ASSERT_TRUE(R1.found());

  SchedulerOptions MinBuf;
  MinBuf.MinimizeBuffers = true;
  SchedulerResult R2 = scheduleLoop(G, M, MinBuf);
  ASSERT_TRUE(R2.found());
  EXPECT_EQ(R1.Schedule.T, R2.Schedule.T) << "same rate-optimal T";
  EXPECT_LE(totalBuffers(G, R2.Schedule), totalBuffers(G, R1.Schedule));
  EXPECT_TRUE(verifySchedule(G, M, R2.Schedule).Ok);
}

TEST(BufferMinimization, MatchesBruteMinimumOnMotivatingLoop) {
  MachineModel M = exampleNonPipelinedMachine();
  Ddg G = motivatingLoop();
  SchedulerOptions MinBuf;
  MinBuf.MinimizeBuffers = true;
  MinBuf.TimeLimitPerT = 30.0;
  SchedulerResult R = scheduleLoop(G, M, MinBuf);
  ASSERT_TRUE(R.found());
  EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
  // The chain has 6 edges; each needs at least 1 buffer, and the
  // latency-4 edge i4->i5 fits within one period at T = 4, so the true
  // minimum is 6 — the ASAP-like schedule achieves it.
  EXPECT_EQ(R.Schedule.T, 4);
  EXPECT_EQ(totalBuffers(G, R.Schedule), 6);
}

TEST(BufferMinimization, NeverWorseThanFeasibilitySchedule) {
  MachineModel M = ppc604Like();
  int Checked = 0;
  for (const Ddg &G : classicKernels()) {
    if (G.numNodes() > 9)
      continue;
    SchedulerOptions Plain;
    SchedulerResult R1 = scheduleLoop(G, M, Plain);
    SchedulerOptions MinBuf;
    MinBuf.MinimizeBuffers = true;
    MinBuf.TimeLimitPerT = 10.0;
    SchedulerResult R2 = scheduleLoop(G, M, MinBuf);
    if (!R1.found() || !R2.found())
      continue;
    ASSERT_EQ(R1.Schedule.T, R2.Schedule.T) << G.name();
    EXPECT_LE(totalBuffers(G, R2.Schedule), totalBuffers(G, R1.Schedule))
        << G.name();
    EXPECT_TRUE(verifySchedule(G, M, R2.Schedule).Ok) << G.name();
    ++Checked;
  }
  EXPECT_GE(Checked, 8);
}

class BufferPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(BufferPropertyTest, MinimizedBuffersVerifyAndLowerBoundHolds) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.MaxNodes = 7;
  Ddg G = generateRandomLoop(
      M, static_cast<std::uint64_t>(GetParam()) * 1299709ULL + 31, Opts);
  SchedulerOptions MinBuf;
  MinBuf.MinimizeBuffers = true;
  MinBuf.TimeLimitPerT = 10.0;
  SchedulerResult R = scheduleLoop(G, M, MinBuf);
  if (!R.found())
    return; // Censored: nothing to check.
  EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
  // Lower bound: one buffer per edge.
  EXPECT_GE(totalBuffers(G, R.Schedule), G.numEdges());
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, BufferPropertyTest,
                         ::testing::Range(0, 12));
