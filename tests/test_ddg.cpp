//===- test_ddg.cpp - DDG and analyses tests ------------------------------===//

#include "swp/ddg/Analysis.h"
#include "swp/ddg/Ddg.h"
#include "swp/ddg/Dot.h"
#include "swp/support/Rng.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

using namespace swp;

namespace {

/// Chain a -> b -> c with a back edge c -> a (distance BackDistance).
Ddg makeCycle(int LatA, int LatB, int LatC, int BackDistance) {
  Ddg G("cycle");
  int A = G.addNode("a", 0, LatA);
  int B = G.addNode("b", 0, LatB);
  int C = G.addNode("c", 0, LatC);
  G.addEdge(A, B, 0);
  G.addEdge(B, C, 0);
  G.addEdge(C, A, BackDistance);
  return G;
}

} // namespace

TEST(Ddg, AddNodesAndEdges) {
  Ddg G("g");
  int A = G.addNode("a", 0, 2);
  int B = G.addNode("b", 1, 3);
  G.addEdge(A, B, 0);
  G.addEdgeWithLatency(B, A, 1, 7);
  EXPECT_EQ(G.numNodes(), 2);
  EXPECT_EQ(G.numEdges(), 2);
  EXPECT_EQ(G.edges()[0].Latency, 2) << "edge latency defaults to producer";
  EXPECT_EQ(G.edges()[1].Latency, 7);
  EXPECT_EQ(G.node(B).OpClass, 1);
}

TEST(Ddg, NodesOfClass) {
  Ddg G("g");
  G.addNode("a", 0, 1);
  G.addNode("b", 1, 1);
  G.addNode("c", 0, 1);
  std::vector<int> Zero = G.nodesOfClass(0);
  ASSERT_EQ(Zero.size(), 2u);
  EXPECT_EQ(Zero[0], 0);
  EXPECT_EQ(Zero[1], 2);
  EXPECT_TRUE(G.nodesOfClass(5).empty());
}

TEST(Ddg, WellFormedAcceptsLoopCarriedCycles) {
  Ddg G = makeCycle(1, 1, 1, 1);
  EXPECT_TRUE(G.isWellFormed(1));
}

TEST(Ddg, WellFormedRejectsZeroDistanceCycles) {
  Ddg G = makeCycle(1, 1, 1, 0);
  EXPECT_FALSE(G.isWellFormed(1));
}

TEST(Ddg, WellFormedRejectsBadClass) {
  Ddg G("g");
  G.addNode("a", 3, 1);
  EXPECT_FALSE(G.isWellFormed(2));
  EXPECT_TRUE(G.isWellFormed(4));
}

TEST(Analysis, AcyclicHasZeroMii) {
  Ddg G("chain");
  int A = G.addNode("a", 0, 5);
  int B = G.addNode("b", 0, 5);
  G.addEdge(A, B, 0);
  EXPECT_FALSE(hasPositiveCycle(G, 0));
  EXPECT_EQ(recurrenceMii(G), 0);
  EXPECT_DOUBLE_EQ(maxCycleRatio(G), 0.0);
  EXPECT_TRUE(criticalCycleNodes(G).empty());
}

TEST(Analysis, SelfLoopMii) {
  Ddg G("self");
  int A = G.addNode("a", 0, 2);
  G.addEdge(A, A, 1);
  EXPECT_EQ(recurrenceMii(G), 2);
  EXPECT_NEAR(maxCycleRatio(G), 2.0, 1e-6);
}

TEST(Analysis, CycleRatioRoundsUp) {
  // Cycle latency 5 over distance 2: T_dep = 2.5 -> recurrenceMii = 3.
  Ddg G = makeCycle(2, 2, 1, 2);
  EXPECT_EQ(recurrenceMii(G), 3);
  EXPECT_NEAR(maxCycleRatio(G), 2.5, 1e-6);
  EXPECT_TRUE(hasPositiveCycle(G, 2));
  EXPECT_FALSE(hasPositiveCycle(G, 3));
}

TEST(Analysis, MaxOverMultipleCycles) {
  // Two cycles: ratio 3/1 and ratio 5/2 -> T_dep = 3.
  Ddg G("two-cycles");
  int A = G.addNode("a", 0, 3);
  int B = G.addNode("b", 0, 2);
  int C = G.addNode("c", 0, 3);
  G.addEdge(A, A, 1); // 3/1.
  G.addEdge(B, C, 0); // 2 + 3 over distance 2.
  G.addEdge(C, B, 2);
  EXPECT_EQ(recurrenceMii(G), 3);
  EXPECT_NEAR(maxCycleRatio(G), 3.0, 1e-6);
}

TEST(Analysis, CriticalCycleIdentified) {
  Ddg G("two-cycles");
  int A = G.addNode("a", 0, 3);
  int B = G.addNode("b", 0, 2);
  int C = G.addNode("c", 0, 3);
  G.addEdge(A, A, 1);
  G.addEdge(B, C, 0);
  G.addEdge(C, B, 2);
  std::vector<int> Crit = criticalCycleNodes(G);
  ASSERT_EQ(Crit.size(), 1u) << "the self loop on a is the critical cycle";
  EXPECT_EQ(Crit[0], A);
}

TEST(Analysis, CriticalCycleFractionalRatio) {
  Ddg G = makeCycle(2, 2, 1, 2); // Ratio 5/2.
  std::vector<int> Crit = criticalCycleNodes(G);
  std::sort(Crit.begin(), Crit.end());
  EXPECT_EQ(Crit, (std::vector<int>{0, 1, 2}));
}

TEST(Analysis, MotivatingLoopTDepIsTwo) {
  Ddg G = motivatingLoop();
  EXPECT_EQ(recurrenceMii(G), 2);
  std::vector<int> Crit = criticalCycleNodes(G);
  ASSERT_EQ(Crit.size(), 1u);
  EXPECT_EQ(G.node(Crit[0]).Name, "i2");
}

TEST(Analysis, SccComponents) {
  Ddg G("scc");
  int A = G.addNode("a", 0, 1);
  int B = G.addNode("b", 0, 1);
  int C = G.addNode("c", 0, 1);
  int D = G.addNode("d", 0, 1);
  G.addEdge(A, B, 0);
  G.addEdge(B, A, 1);
  G.addEdge(B, C, 0);
  G.addEdge(C, D, 0);
  auto Comps = stronglyConnectedComponents(G);
  ASSERT_EQ(Comps.size(), 3u);
  bool FoundAB = false;
  for (const auto &Comp : Comps)
    if (Comp == std::vector<int>{A, B})
      FoundAB = true;
  EXPECT_TRUE(FoundAB);
}

TEST(Analysis, SccAllOneComponent) {
  Ddg G = makeCycle(1, 1, 1, 1);
  auto Comps = stronglyConnectedComponents(G);
  ASSERT_EQ(Comps.size(), 1u);
  EXPECT_EQ(Comps[0].size(), 3u);
}

TEST(Dot, RendersNodesAndEdges) {
  Ddg G = motivatingLoop();
  std::string Out = toDot(G);
  EXPECT_NE(Out.find("digraph"), std::string::npos);
  EXPECT_NE(Out.find("i2"), std::string::npos);
  EXPECT_NE(Out.find("style=dashed"), std::string::npos)
      << "loop-carried edges are dashed";
}

//===----------------------------------------------------------------------===//
// Properties on random cyclic graphs.
//===----------------------------------------------------------------------===//

namespace {

Ddg randomCyclicDdg(std::uint64_t Seed) {
  Rng R(Seed);
  int N = R.intIn(2, 8);
  Ddg G("rand");
  for (int I = 0; I < N; ++I)
    G.addNode("n" + std::to_string(I), 0, R.intIn(1, 6));
  for (int I = 1; I < N; ++I)
    G.addEdge(R.intIn(0, I - 1), I, 0);
  int Back = R.intIn(1, 3);
  for (int K = 0; K < Back; ++K) {
    int To = R.intIn(0, N - 1);
    int From = R.intIn(To, N - 1);
    G.addEdge(From, To, R.intIn(1, 2));
  }
  return G;
}

} // namespace

class DdgPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DdgPropertyTest, MiiMatchesCeilOfRatio) {
  Ddg G = randomCyclicDdg(static_cast<std::uint64_t>(GetParam()) * 31337 + 5);
  int Mii = recurrenceMii(G);
  double Ratio = maxCycleRatio(G);
  EXPECT_EQ(Mii, static_cast<int>(std::ceil(Ratio - 1e-7)));
  if (Mii > 0) {
    EXPECT_TRUE(hasPositiveCycle(G, Mii - 1));
    EXPECT_FALSE(hasPositiveCycle(G, Mii));
    EXPECT_FALSE(hasPositiveCycle(G, Mii + 3)) << "monotone in T";
  }
}

TEST_P(DdgPropertyTest, CriticalCycleFound) {
  Ddg G = randomCyclicDdg(static_cast<std::uint64_t>(GetParam()) * 999983 + 7);
  if (recurrenceMii(G) == 0)
    return;
  EXPECT_FALSE(criticalCycleNodes(G).empty());
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, DdgPropertyTest,
                         ::testing::Range(0, 40));
