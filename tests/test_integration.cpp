//===- test_integration.cpp - Cross-module end-to-end tests ---------------===//
//
// End-to-end properties tying every layer together: the ILP scheduler, the
// enumerative scheduler and the IMS heuristic agree with each other exactly
// as theory demands, and all of their schedules pass the independent
// verifier on random loops.
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/heuristics/Enumerative.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Corpus.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

using namespace swp;

TEST(Integration, IlpSchedulesAllClassicKernels) {
  MachineModel M = ppc604Like();
  for (const Ddg &G : classicKernels()) {
    SchedulerResult R = scheduleLoop(G, M);
    ASSERT_TRUE(R.found()) << G.name();
    VerifyResult V = verifySchedule(G, M, R.Schedule);
    EXPECT_TRUE(V.Ok) << G.name() << ": " << V.Error;
    EXPECT_GE(R.Schedule.T, R.TLowerBound) << G.name();
    EXPECT_FALSE(R.VerifyFailed);
  }
}

TEST(Integration, MostKernelsScheduleAtLowerBound) {
  // The paper's Table 4 shape: the large majority of loops achieve T_lb.
  MachineModel M = ppc604Like();
  int AtLb = 0, Total = 0;
  for (const Ddg &G : classicKernels()) {
    SchedulerResult R = scheduleLoop(G, M);
    ASSERT_TRUE(R.found()) << G.name();
    ++Total;
    if (R.Schedule.T == R.TLowerBound)
      ++AtLb;
  }
  EXPECT_GE(AtLb * 10, Total * 7) << "expect >= 70% at T_lb";
}

TEST(Integration, CleanMachineNeverBeatsHazardMachineII) {
  // Removing structural hazards can only help: II(clean) <= II(hazard).
  MachineModel Hazard = ppc604Like();
  MachineModel Clean = cleanVliw();
  for (const Ddg &G : classicKernels()) {
    SchedulerResult RH = scheduleLoop(G, Hazard);
    SchedulerResult RC = scheduleLoop(G, Clean);
    ASSERT_TRUE(RH.found()) << G.name();
    ASSERT_TRUE(RC.found()) << G.name();
    EXPECT_LE(RC.Schedule.T, RH.Schedule.T) << G.name();
  }
}

class IntegrationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(IntegrationPropertyTest, IlpVerifiesAndIsRateOptimalOnRandomLoops) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.MaxNodes = 8;
  Ddg G = generateRandomLoop(
      M, static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 17, Opts);
  SchedulerOptions SOpts;
  SOpts.TimeLimitPerT = 20.0;
  SchedulerResult R = scheduleLoop(G, M, SOpts);
  ASSERT_TRUE(R.found()) << G.name();
  VerifyResult V = verifySchedule(G, M, R.Schedule);
  ASSERT_TRUE(V.Ok) << V.Error;
  EXPECT_TRUE(R.ProvenRateOptimal);

  // Cross-check rate optimality against exhaustive search.
  EnumResult E = enumerativeSchedule(G, M);
  ASSERT_TRUE(E.found()) << G.name();
  EXPECT_EQ(R.Schedule.T, E.Schedule.T) << G.name();

  // And the heuristic may only be worse.
  ImsResult H = iterativeModuloSchedule(G, M);
  ASSERT_TRUE(H.found()) << G.name();
  EXPECT_GE(H.Schedule.T, R.Schedule.T) << G.name();
}

TEST_P(IntegrationPropertyTest, RunTimeMappingNeverWorseThanFixed) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.MaxNodes = 7;
  Ddg G = generateRandomLoop(
      M, static_cast<std::uint64_t>(GetParam()) * 7368787ULL + 29, Opts);
  SchedulerOptions RT;
  RT.Mapping = MappingKind::RunTime;
  RT.TimeLimitPerT = 20.0;
  SchedulerOptions FX;
  FX.TimeLimitPerT = 20.0;
  SchedulerResult A = scheduleLoop(G, M, RT);
  SchedulerResult B = scheduleLoop(G, M, FX);
  ASSERT_TRUE(A.found()) << G.name();
  ASSERT_TRUE(B.found()) << G.name();
  EXPECT_LE(A.Schedule.T, B.Schedule.T)
      << G.name() << ": dropping the mapping constraint relaxes the problem";
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, IntegrationPropertyTest,
                         ::testing::Range(0, 15));
