//===- test_sat.cpp - CDCL SAT engine tests -------------------------------===//
//
// The SAT backend end to end: the CDCL core (propagation, learning,
// assumptions, budgets), agreement of the SAT rate-optimal loop with the
// ILP on kernels and random loops (both mapping disciplines), the
// incremental per-T payoffs (learned-clause reuse strictly cheaper than
// from-scratch; assumption retraction never leaks a stale period
// constraint), and fault-domain behaviour (an injected SAT death is never
// reported as an infeasibility proof).
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/core/Verifier.h"
#include "swp/machine/Catalog.h"
#include "swp/sat/CdclSolver.h"
#include "swp/sat/SatScheduler.h"
#include "swp/service/Fingerprint.h"
#include "swp/service/SchedulerService.h"
#include "swp/support/FaultInjector.h"
#include "swp/workload/Corpus.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace swp;

namespace {

struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::instance().reset(); }
};

std::uint64_t sliceSeed(int I) {
  return static_cast<std::uint64_t>(I) * 2654435761ULL + 99;
}

/// Remaps a ppc604-class corpus loop onto a machine that defines only op
/// classes 0..K-1 (the Section 2-5 example machines).
Ddg remapClasses(const Ddg &Gen, int K) {
  Ddg G(Gen.name());
  for (const DdgNode &Nd : Gen.nodes())
    G.addNode(Nd.Name, Nd.OpClass % K, Nd.Latency);
  for (const DdgEdge &E : Gen.edges())
    G.addEdgeWithLatency(E.Src, E.Dst, E.Distance, E.Latency);
  return G;
}

} // namespace

//===----------------------------------------------------------------------===//
// CdclSolver core
//===----------------------------------------------------------------------===//

TEST(Cdcl, UnitPropagationAndModel) {
  CdclSolver S;
  int A = S.newVar(), B = S.newVar(), C = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A)}));
  ASSERT_TRUE(S.addClause({mkLit(A, true), mkLit(B)}));
  ASSERT_TRUE(S.addClause({mkLit(B, true), mkLit(C)}));
  ASSERT_EQ(S.solve({}), SatStatus::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  EXPECT_TRUE(S.modelValue(C));
}

TEST(Cdcl, GlobalUnsatIsSticky) {
  CdclSolver S;
  int A = S.newVar(), B = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(B)}));
  ASSERT_TRUE(S.addClause({mkLit(A), mkLit(B, true)}));
  ASSERT_TRUE(S.addClause({mkLit(A, true), mkLit(B)}));
  EXPECT_EQ(S.solve({}), SatStatus::Sat);
  EXPECT_TRUE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
  // Close the last corner: now globally unsat, and stays so.
  S.addClause({mkLit(A, true), mkLit(B, true)});
  EXPECT_EQ(S.solve({}), SatStatus::Unsat);
  EXPECT_FALSE(S.ok());
  EXPECT_EQ(S.solve({}), SatStatus::Unsat);
}

TEST(Cdcl, AssumptionsRetractCleanly) {
  CdclSolver S;
  int A = S.newVar(), B = S.newVar();
  ASSERT_TRUE(S.addClause({mkLit(A, true), mkLit(B)}));
  ASSERT_TRUE(S.addClause({mkLit(A, true), mkLit(B, true)}));
  // Unsat only while A is assumed; the instance itself stays sat.
  EXPECT_EQ(S.solve({mkLit(A)}), SatStatus::Unsat);
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.solve({}), SatStatus::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_EQ(S.solve({mkLit(A, true)}), SatStatus::Sat);
}

TEST(Cdcl, PigeonholePrinciple) {
  // 5 pigeons, 4 holes: unsat, and deep enough to exercise 1-UIP learning
  // and restarts.  P[i][j] = pigeon i sits in hole j.
  const int Pigeons = 5, Holes = 4;
  CdclSolver S;
  int P[5][4];
  for (int I = 0; I < Pigeons; ++I)
    for (int J = 0; J < Holes; ++J)
      P[I][J] = S.newVar();
  for (int I = 0; I < Pigeons; ++I) {
    std::vector<SatLit> Alo;
    for (int J = 0; J < Holes; ++J)
      Alo.push_back(mkLit(P[I][J]));
    ASSERT_TRUE(S.addClause(Alo));
  }
  for (int J = 0; J < Holes; ++J)
    for (int I = 0; I < Pigeons; ++I)
      for (int K = I + 1; K < Pigeons; ++K)
        ASSERT_TRUE(S.addClause({mkLit(P[I][J], true), mkLit(P[K][J], true)}));
  EXPECT_EQ(S.solve({}), SatStatus::Unsat);
  EXPECT_GT(S.stats().Conflicts, 0);
  EXPECT_GT(S.stats().LearnedClauses, 0);
}

TEST(Cdcl, ConflictLimitCensorsWithStopReason) {
  // Same pigeonhole instance, but a 1-conflict budget: no proof, and the
  // stop reason says why.
  const int Pigeons = 5, Holes = 4;
  CdclSolver S;
  std::vector<std::vector<int>> P(Pigeons, std::vector<int>(Holes));
  for (auto &Row : P)
    for (int &V : Row)
      V = S.newVar();
  for (int I = 0; I < Pigeons; ++I) {
    std::vector<SatLit> Alo;
    for (int J = 0; J < Holes; ++J)
      Alo.push_back(mkLit(P[I][J]));
    S.addClause(Alo);
  }
  for (int J = 0; J < Holes; ++J)
    for (int I = 0; I < Pigeons; ++I)
      for (int K = I + 1; K < Pigeons; ++K)
        S.addClause({mkLit(P[I][J], true), mkLit(P[K][J], true)});
  SatLimits Limits;
  Limits.ConflictLimit = 1;
  EXPECT_EQ(S.solve({}, Limits), SatStatus::Unknown);
  EXPECT_EQ(S.lastStop(), SatStop::ConflictLimit);
  // And with the budget lifted the proof completes on the same instance.
  EXPECT_EQ(S.solve({}), SatStatus::Unsat);
}

TEST(Cdcl, CancellationStopsSearch) {
  CdclSolver S;
  int A = S.newVar();
  S.addClause({mkLit(A)});
  CancellationSource Src;
  Src.cancel();
  SatLimits Limits;
  Limits.Cancel = Src.token();
  // A pre-cancelled token is honoured even on a trivial instance... once
  // there is at least one conflict to poll at; a conflict-free solve may
  // legitimately finish.  Use an instance with guaranteed conflicts.
  const int N = 6;
  std::vector<int> V;
  for (int I = 0; I < N; ++I)
    V.push_back(S.newVar());
  for (int I = 0; I + 1 < N; ++I)
    S.addClause({mkLit(V[static_cast<std::size_t>(I)], true),
                 mkLit(V[static_cast<std::size_t>(I) + 1])});
  SatStatus St = S.solve({}, Limits);
  EXPECT_TRUE(St == SatStatus::Unknown || St == SatStatus::Sat);
  if (St == SatStatus::Unknown) {
    EXPECT_EQ(S.lastStop(), SatStop::Cancelled);
  }
}

//===----------------------------------------------------------------------===//
// SAT engine vs ILP agreement
//===----------------------------------------------------------------------===//

TEST(SatScheduler, MatchesIlpOnClassicKernels) {
  MachineModel M = ppc604Like();
  // No wall-clock limit: these instances solve in milliseconds, and a
  // time-based censor would make the parity assertions load-sensitive.
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 1e9;
  for (const Ddg &G : classicKernels()) {
    SchedulerResult Ilp = scheduleLoop(G, M, Opts);
    SchedulerResult Sat = satScheduleLoop(G, M, Opts);
    ASSERT_TRUE(Ilp.found()) << G.name();
    ASSERT_TRUE(Sat.found()) << G.name();
    EXPECT_EQ(Sat.Schedule.T, Ilp.Schedule.T) << G.name();
    EXPECT_EQ(Sat.TLowerBound, Ilp.TLowerBound) << G.name();
    EXPECT_EQ(Sat.ProvenRateOptimal, Ilp.ProvenRateOptimal) << G.name();
    VerifyResult V = verifySchedule(G, M, Sat.Schedule);
    EXPECT_TRUE(V.Ok) << G.name() << ": " << V.Error;
    EXPECT_FALSE(Sat.VerifyFailed) << G.name();
  }
}

TEST(SatScheduler, MatchesIlpOnHazardExamples) {
  // The Section 2-5 example machines: unclean pipelines, non-pipelined
  // units, and the Schedule A instance whose run-time-mapping optimum
  // admits no fixed assignment.
  std::vector<MachineModel> Machines = {
      exampleCleanMachine(), exampleNonPipelinedMachine(),
      exampleTwoFpMachine(), exampleHazardMachine()};
  CorpusOptions COpts;
  COpts.MaxNodes = 7;
  for (std::size_t MI = 0; MI < Machines.size(); ++MI) {
    // The example machines define classes {0, 1}; reuse the corpus
    // generator aimed at ppc604Like and remap classes into range.
    for (int I = 0; I < 6; ++I) {
      Ddg G = remapClasses(
          generateRandomLoop(ppc604Like(), sliceSeed(I + 10), COpts), 2);
      SchedulerOptions Opts;
      Opts.TimeLimitPerT = 1e9; // Load-independent parity (see above).
      SchedulerResult Ilp = scheduleLoop(G, Machines[MI], Opts);
      SchedulerResult Sat = satScheduleLoop(G, Machines[MI], Opts);
      ASSERT_EQ(Sat.found(), Ilp.found())
          << "machine " << MI << " loop " << I;
      if (!Ilp.found())
        continue;
      EXPECT_EQ(Sat.Schedule.T, Ilp.Schedule.T)
          << "machine " << MI << " loop " << I;
      VerifyResult V = verifySchedule(G, Machines[MI], Sat.Schedule);
      EXPECT_TRUE(V.Ok) << V.Error;
    }
  }
}

TEST(SatScheduler, MatchesIlpOnRandomLoops) {
  MachineModel M = ppc604Like();
  CorpusOptions COpts;
  COpts.MaxNodes = 9;
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 1e9; // Load-independent parity (see above).
  for (int I = 0; I < 25; ++I) {
    Ddg G = generateRandomLoop(M, sliceSeed(I), COpts);
    SchedulerResult Ilp = scheduleLoop(G, M, Opts);
    SchedulerResult Sat = satScheduleLoop(G, M, Opts);
    ASSERT_EQ(Sat.found(), Ilp.found()) << G.name();
    if (!Ilp.found())
      continue;
    EXPECT_EQ(Sat.Schedule.T, Ilp.Schedule.T) << G.name();
    EXPECT_EQ(Sat.ProvenRateOptimal, Ilp.ProvenRateOptimal) << G.name();
    VerifyResult V = verifySchedule(G, M, Sat.Schedule);
    EXPECT_TRUE(V.Ok) << G.name() << ": " << V.Error;
  }
}

TEST(SatScheduler, RunTimeMappingMatchesIlp) {
  MachineModel M = ppc604Like();
  CorpusOptions COpts;
  COpts.MaxNodes = 8;
  SchedulerOptions Opts;
  Opts.Mapping = MappingKind::RunTime;
  Opts.TimeLimitPerT = 1e9; // Load-independent parity (see above).
  for (int I = 0; I < 10; ++I) {
    Ddg G = generateRandomLoop(M, sliceSeed(I + 1000), COpts);
    SchedulerResult Ilp = scheduleLoop(G, M, Opts);
    SchedulerResult Sat = satScheduleLoop(G, M, Opts);
    ASSERT_EQ(Sat.found(), Ilp.found()) << G.name();
    if (!Ilp.found())
      continue;
    EXPECT_EQ(Sat.Schedule.T, Ilp.Schedule.T) << G.name();
    EXPECT_FALSE(Sat.Schedule.hasMapping()) << G.name();
    VerifyResult V = verifySchedule(G, M, Sat.Schedule);
    EXPECT_TRUE(V.Ok) << G.name() << ": " << V.Error;
  }
}

//===----------------------------------------------------------------------===//
// Incremental per-T re-solve
//===----------------------------------------------------------------------===//

TEST(SatScheduler, IncrementalReuseBeatsFromScratch) {
  // Walk T upward with one engine (learned clauses, activities, and phases
  // carried across periods) and compare the conflicts spent at the final T
  // against a cold engine solving that T directly.  Aggregated over a
  // seeded corpus slice and filtered to loops whose cold solve actually
  // conflicts, the incremental path must be strictly cheaper.  The
  // non-pipelined example machine forces optima above the lower bound;
  // the ILP proof (ProvenRateOptimal) pins the per-T ground truth.
  MachineModel M = exampleNonPipelinedMachine();
  CorpusOptions COpts;
  COpts.MaxNodes = 11;
  // Budget the ILP by node count only: it just pins ground truth, and
  // instances it cannot prove inside the cap are filtered out by the
  // ProvenRateOptimal check.  A node cap censors identically under any
  // machine load; a wall-clock cap would make the filter flaky.  Keep
  // the cap small: censored instances pay it in full before filtering.
  SchedulerOptions IlpOpts;
  IlpOpts.TimeLimitPerT = 1e9;
  IlpOpts.NodeLimitPerT = 1500;
  std::int64_t Incremental = 0, Scratch = 0;
  int Counted = 0;
  for (int I = 0; I < 40 && Counted < 6; ++I) {
    Ddg G = remapClasses(
        generateRandomLoop(ppc604Like(), sliceSeed(I + 2000), COpts), 2);
    SchedulerResult Ilp = scheduleLoop(G, M, IlpOpts);
    if (!Ilp.found() || !Ilp.ProvenRateOptimal ||
        Ilp.Schedule.T == Ilp.TLowerBound)
      continue; // Interesting only when at least one T gets refuted.
    const int FoundT = Ilp.Schedule.T;

    SatScheduler Warm(G, M);
    std::int64_t AtFoundT = 0;
    for (int T = Ilp.TLowerBound; T <= FoundT; ++T) {
      if (!M.moduloFeasible(G, T))
        continue;
      SatAttempt A = Warm.solveAtT(T);
      ASSERT_NE(A.Status, MilpStatus::Error) << G.name();
      if (T == FoundT) {
        ASSERT_EQ(A.Status, MilpStatus::Optimal) << G.name();
        AtFoundT = A.Conflicts;
      } else {
        ASSERT_EQ(A.Status, MilpStatus::Infeasible) << G.name();
      }
    }

    SatScheduler Cold(G, M);
    SatAttempt ColdA = Cold.solveAtT(FoundT);
    ASSERT_EQ(ColdA.Status, MilpStatus::Optimal) << G.name();
    if (ColdA.Conflicts == 0)
      continue; // Nothing to save on a propagation-only solve.
    Incremental += AtFoundT;
    Scratch += ColdA.Conflicts;
    ++Counted;
  }
  ASSERT_GT(Counted, 0) << "slice produced no conflicting instances";
  EXPECT_LT(Incremental, Scratch)
      << "learned-clause reuse should beat from-scratch re-solves ("
      << Counted << " loops)";
}

TEST(SatScheduler, AssumptionRetractionNeverLeaksAcrossT) {
  // Probe periods out of order on one engine: infeasible T stay
  // infeasible, feasible T stay feasible with verifier-clean schedules,
  // and the optimal II matches the ILP — a stale leaked period constraint
  // would break one of these.
  MachineModel M = exampleNonPipelinedMachine();
  CorpusOptions COpts;
  COpts.MaxNodes = 8;
  // Node-limit-only budget: deterministic under any machine load.
  SchedulerOptions IlpOpts;
  IlpOpts.TimeLimitPerT = 1e9;
  IlpOpts.NodeLimitPerT = 3000;
  int Exercised = 0;
  for (int I = 0; I < 30; ++I) {
    Ddg G = remapClasses(
        generateRandomLoop(ppc604Like(), sliceSeed(I + 3000), COpts), 2);
    SchedulerResult Ilp = scheduleLoop(G, M, IlpOpts);
    if (!Ilp.found() || !Ilp.ProvenRateOptimal)
      continue;
    const int FoundT = Ilp.Schedule.T;
    SatScheduler Engine(G, M);
    for (int T = Ilp.TLowerBound; T <= FoundT; ++T) {
      if (!M.moduloFeasible(G, T))
        continue;
      SatAttempt A = Engine.solveAtT(T);
      if (T < FoundT)
        ASSERT_EQ(A.Status, MilpStatus::Infeasible) << G.name() << " T=" << T;
      else
        ASSERT_EQ(A.Status, MilpStatus::Optimal) << G.name();
    }
    // Revisit: the feasible period again (its guarded slice must still be
    // active and decodable), then every refuted one, then feasible again.
    SatAttempt Again = Engine.solveAtT(FoundT);
    ASSERT_EQ(Again.Status, MilpStatus::Optimal) << G.name();
    VerifyResult V = verifySchedule(G, M, Again.Schedule);
    ASSERT_TRUE(V.Ok) << G.name() << ": " << V.Error;
    EXPECT_EQ(Again.Schedule.T, FoundT) << G.name();
    for (int T = Ilp.TLowerBound; T < FoundT; ++T) {
      if (!M.moduloFeasible(G, T))
        continue;
      SatAttempt A = Engine.solveAtT(T);
      EXPECT_EQ(A.Status, MilpStatus::Infeasible)
          << G.name() << " re-solve T=" << T;
      ++Exercised;
    }
    SatAttempt Final = Engine.solveAtT(FoundT);
    ASSERT_EQ(Final.Status, MilpStatus::Optimal) << G.name();
    VerifyResult VF = verifySchedule(G, M, Final.Schedule);
    EXPECT_TRUE(VF.Ok) << G.name() << ": " << VF.Error;
  }
  ASSERT_GT(Exercised, 0) << "slice never exercised a refuted period";
}

//===----------------------------------------------------------------------===//
// Failure domain
//===----------------------------------------------------------------------===//

TEST(SatFaults, InjectedConflictDeathIsNeverAnInfeasibilityProof) {
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  CorpusOptions COpts;
  COpts.MaxNodes = 14;
  // Every conflict faults: any attempt that would need search dies.
  ASSERT_TRUE(
      FaultInjector::instance().configure("sat-conflict:p1.0", 7));
  int Killed = 0;
  for (int I = 0; I < 25 && Killed == 0; ++I) {
    Ddg G = generateRandomLoop(M, sliceSeed(I + 2000), COpts);
    SchedulerResult Sat = satScheduleLoop(G, M);
    EXPECT_TRUE(Sat.Error.isOk());
    for (const TAttempt &A : Sat.Attempts) {
      if (A.StopReason == SearchStop::Fault) {
        // The killed attempt reports Unknown — never a fake Unsat.
        EXPECT_EQ(A.Status, MilpStatus::Unknown);
        ++Killed;
      }
      if (A.Status == MilpStatus::Infeasible && !A.ModuloSkipped) {
        EXPECT_EQ(A.StopReason, SearchStop::None);
      }
    }
    if (Killed > 0) {
      EXPECT_TRUE(Sat.FaultsSeen);
      EXPECT_FALSE(Sat.ProvenRateOptimal);
    }
  }
  EXPECT_GT(Killed, 0) << "slice never reached a SAT conflict";
}

TEST(SatFaults, AllocFaultIsATypedError) {
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, sliceSeed(4), CorpusOptions{});
  ASSERT_TRUE(FaultInjector::instance().configure("alloc:1"));
  SatScheduler Engine(G, M);
  SatAttempt A = Engine.solveAtT(4);
  EXPECT_EQ(A.Status, MilpStatus::Error);
  EXPECT_EQ(A.Error.code(), StatusCode::ResourceExhausted);
  EXPECT_EQ(A.Stop, SearchStop::Fault);
  FaultInjector::instance().reset();
  // The engine recovers: the same period solves once the injector disarms.
  SatAttempt B = Engine.solveAtT(4);
  EXPECT_NE(B.Status, MilpStatus::Error);
}

TEST(SatScheduler, PreCancelledTokenShortCircuits) {
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, sliceSeed(5), CorpusOptions{});
  CancellationSource Src;
  Src.cancel();
  SchedulerOptions Opts;
  Opts.Cancel = Src.token();
  SchedulerResult Sat = satScheduleLoop(G, M, Opts);
  EXPECT_FALSE(Sat.found());
  EXPECT_TRUE(Sat.Cancelled);
}

TEST(SatScheduler, InvalidInputIsATypedError) {
  MachineModel M = ppc604Like();
  Ddg G("bad-class");
  G.addNode("x", 97, 1);
  SchedulerResult Sat = satScheduleLoop(G, M);
  EXPECT_FALSE(Sat.found());
  EXPECT_EQ(Sat.Error.code(), StatusCode::InvalidInput);
}

//===----------------------------------------------------------------------===//
// Service integration: exactSchedule engines, racing, stats
//===----------------------------------------------------------------------===//

TEST(SatService, ExactScheduleSatEngineMatchesIlp) {
  MachineModel M = ppc604Like();
  // Node-limit-only budgets: a wall-clock cap would let background load
  // change what gets censored and flake the comparison.
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 1e9;
  Opts.NodeLimitPerT = 6000;
  int Compared = 0;
  for (int I = 0; I < 8; ++I) {
    Ddg G = generateRandomLoop(M, sliceSeed(I + 500), CorpusOptions{});
    SchedulerResult Ilp = exactSchedule(G, M, Opts, ExactEngine::Ilp);
    ExactRaceInfo Info;
    SchedulerResult Sat = exactSchedule(G, M, Opts, ExactEngine::Sat, &Info);
    EXPECT_TRUE(Info.Ran);
    EXPECT_EQ(Info.Winner, ExactEngine::Sat);
    if (Sat.found())
      EXPECT_TRUE(verifySchedule(G, M, Sat.Schedule).Ok) << G.name();
    // Neither engine may beat the other's proven optimum.
    if (Ilp.ProvenRateOptimal && Sat.found())
      EXPECT_GE(Sat.Schedule.T, Ilp.Schedule.T) << G.name();
    if (Sat.ProvenRateOptimal && Ilp.found())
      EXPECT_GE(Ilp.Schedule.T, Sat.Schedule.T) << G.name();
    if (!Ilp.ProvenRateOptimal || !Sat.ProvenRateOptimal)
      continue; // A censored run pins nothing exactly.
    EXPECT_EQ(Ilp.Schedule.T, Sat.Schedule.T) << G.name();
    ++Compared;
  }
  EXPECT_GT(Compared, 0) << "no instance yielded two proven optima";
}

TEST(SatService, RaceAdoptsAProvenAnswer) {
  // The proof-preservation guarantee: when BOTH standalone engines prove
  // rate-optimality at T*, the race must adopt a proven T* no matter how
  // the cross-cancellation timing falls — whichever leg decides first ran
  // to completion and carries a complete proof (or the loser's clean per-T
  // refutations merge in).  Node-limit-only budgets keep each solo run's
  // provenness independent of machine load.
  MachineModel M = ppc604Like();
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 1e9;
  Opts.NodeLimitPerT = 6000;
  int Raced = 0;
  for (int I = 0; I < 6; ++I) {
    Ddg G = generateRandomLoop(M, sliceSeed(I + 600), CorpusOptions{});
    SchedulerResult SatSolo = satScheduleLoop(G, M, Opts);
    SchedulerResult IlpSolo = scheduleLoop(G, M, Opts);
    if (!SatSolo.found() || !SatSolo.ProvenRateOptimal ||
        !IlpSolo.found() || !IlpSolo.ProvenRateOptimal)
      continue;
    ASSERT_EQ(SatSolo.Schedule.T, IlpSolo.Schedule.T) << G.name();
    ExactRaceInfo Info;
    SchedulerResult Race = exactSchedule(G, M, Opts, ExactEngine::Race,
                                         &Info);
    ASSERT_TRUE(Race.found()) << G.name();
    EXPECT_EQ(Race.Schedule.T, SatSolo.Schedule.T) << G.name();
    EXPECT_TRUE(Race.ProvenRateOptimal) << G.name();
    EXPECT_TRUE(verifySchedule(G, M, Race.Schedule).Ok) << G.name();
    EXPECT_TRUE(Info.Ran);
    ++Raced;
  }
  EXPECT_GT(Raced, 0) << "no instance yielded two proven solo optima";
}

TEST(SatService, RaceHonorsPreCancelledToken) {
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, sliceSeed(7), CorpusOptions{});
  CancellationSource Src;
  Src.cancel();
  SchedulerOptions Opts;
  Opts.Cancel = Src.token();
  SchedulerResult R = exactSchedule(G, M, Opts, ExactEngine::Race);
  EXPECT_FALSE(R.found());
  EXPECT_TRUE(R.Cancelled);
}

TEST(SatService, EngineTagKeepsCacheKeysDistinct) {
  // Results from different exact engines must never alias in the result
  // cache, even for an identical loop/machine/options job.
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, sliceSeed(8), CorpusOptions{});
  Fingerprint Ilp = fingerprintJob(G, M, {}, false, 0.0,
                                   static_cast<int>(ExactEngine::Ilp));
  Fingerprint Sat = fingerprintJob(G, M, {}, false, 0.0,
                                   static_cast<int>(ExactEngine::Sat));
  Fingerprint Race = fingerprintJob(G, M, {}, false, 0.0,
                                    static_cast<int>(ExactEngine::Race));
  EXPECT_FALSE(Ilp == Sat);
  EXPECT_FALSE(Ilp == Race);
  EXPECT_FALSE(Sat == Race);
}

TEST(SatService, ServiceBatchWithSatEngineCountsConflicts) {
  MachineModel M = ppc604Like();
  std::vector<Ddg> Loops;
  for (int I = 0; I < 6; ++I)
    Loops.push_back(generateRandomLoop(M, sliceSeed(I + 700),
                                       CorpusOptions{}));
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 2;
  SvcOpts.Engine = ExactEngine::Sat;
  SchedulerService Svc(M, SvcOpts);
  std::vector<SchedulerResult> Results = Svc.scheduleAll(Loops);
  for (size_t I = 0; I < Results.size(); ++I) {
    ASSERT_TRUE(Results[I].found()) << Loops[I].name();
    EXPECT_TRUE(verifySchedule(Loops[I], M, Results[I].Schedule).Ok)
        << Loops[I].name();
  }
  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Completed, Loops.size());
  // Race-win counters stay at zero outside Engine::Race.
  EXPECT_EQ(Stats.RaceIlpWins + Stats.RaceSatWins, 0u);
}

TEST(SatService, ServiceBatchWithRaceEngineCountsWins) {
  MachineModel M = ppc604Like();
  std::vector<Ddg> Loops;
  for (int I = 0; I < 6; ++I)
    Loops.push_back(generateRandomLoop(M, sliceSeed(I + 800),
                                       CorpusOptions{}));
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 2;
  SvcOpts.Engine = ExactEngine::Race;
  SvcOpts.UseCache = false;
  SvcOpts.Sched.TimeLimitPerT = 1e9;
  SvcOpts.Sched.NodeLimitPerT = 6000;
  SchedulerService Svc(M, SvcOpts);
  std::vector<SchedulerResult> Results = Svc.scheduleAll(Loops);
  for (size_t I = 0; I < Results.size(); ++I) {
    if (Results[I].found())
      EXPECT_TRUE(verifySchedule(Loops[I], M, Results[I].Schedule).Ok)
          << Loops[I].name();
    // When the race's answer is proven, it must match the ILP's proven
    // answer exactly (timing may only change who proved it, not what).
    SchedulerResult Ilp = scheduleLoop(Loops[I], M, SvcOpts.Sched);
    if (Results[I].ProvenRateOptimal && Ilp.ProvenRateOptimal)
      EXPECT_EQ(Results[I].Schedule.T, Ilp.Schedule.T) << Loops[I].name();
  }
  ServiceStats Stats = Svc.stats();
  // Every job ran the race, and every race names exactly one winner.
  EXPECT_EQ(Stats.RaceIlpWins + Stats.RaceSatWins, Loops.size());
}
