//===- test_workload.cpp - Kernels and corpus generator tests -------------===//

#include "swp/ddg/Analysis.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Corpus.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

#include <set>

using namespace swp;

TEST(Kernels, MotivatingLoopShape) {
  Ddg G = motivatingLoop();
  EXPECT_EQ(G.numNodes(), 6);
  EXPECT_EQ(G.node(0).Name, "i0");
  EXPECT_EQ(G.node(5).Name, "i5");
  // FP ops i2..i4, LS ops i0, i1, i5.
  EXPECT_EQ(G.nodesOfClass(0), (std::vector<int>{2, 3, 4}));
  EXPECT_EQ(G.nodesOfClass(1), (std::vector<int>{0, 1, 5}));
  EXPECT_TRUE(G.isWellFormed(2));
}

TEST(Kernels, MotivatingLoopAsapMatchesPaper) {
  // The ASAP start times along the chain are the paper's t vector.
  Ddg G = motivatingLoop();
  std::vector<int> Asap(6, 0);
  for (int Pass = 0; Pass < 6; ++Pass)
    for (const DdgEdge &E : G.edges())
      if (E.Distance == 0)
        Asap[static_cast<size_t>(E.Dst)] =
            std::max(Asap[static_cast<size_t>(E.Dst)],
                     Asap[static_cast<size_t>(E.Src)] + E.Latency);
  EXPECT_EQ(Asap, (std::vector<int>{0, 1, 3, 5, 7, 11}));
}

TEST(Kernels, ScheduleALoopShape) {
  Ddg G = scheduleALoop();
  EXPECT_EQ(G.numNodes(), 5);
  EXPECT_EQ(G.nodesOfClass(0).size(), 3u);
  EXPECT_TRUE(G.isWellFormed(2));
}

TEST(Kernels, ClassicKernelCount) {
  EXPECT_GE(classicKernels().size(), 14u);
}

TEST(Kernels, KnownRecurrences) {
  std::vector<Ddg> Ks = classicKernels();
  auto FindKernel = [&Ks](const std::string &Name) -> const Ddg & {
    for (const Ddg &G : Ks)
      if (G.name() == Name)
        return G;
    static Ddg Empty;
    return Empty;
  };
  EXPECT_EQ(recurrenceMii(FindKernel("daxpy")), 0);
  EXPECT_EQ(recurrenceMii(FindKernel("ddot")), 4);
  EXPECT_EQ(recurrenceMii(FindKernel("liv5-tridiag")), 8);
  EXPECT_EQ(recurrenceMii(FindKernel("liv11-firstsum")), 4);
  EXPECT_EQ(recurrenceMii(FindKernel("ptr-chase")), 2);
  EXPECT_EQ(recurrenceMii(FindKernel("horner")), 8);
  EXPECT_EQ(recurrenceMii(FindKernel("checksum")), 3);
}

TEST(Kernels, UniqueNames) {
  std::set<std::string> Names;
  for (const Ddg &G : classicKernels())
    EXPECT_TRUE(Names.insert(G.name()).second) << "duplicate " << G.name();
}

TEST(Corpus, DeterministicAcrossCalls) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.NumLoops = 20;
  std::vector<Ddg> A = generateCorpus(M, Opts);
  std::vector<Ddg> B = generateCorpus(M, Opts);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].numNodes(), B[I].numNodes());
    EXPECT_EQ(A[I].numEdges(), B[I].numEdges());
    for (int E = 0; E < A[I].numEdges(); ++E) {
      EXPECT_EQ(A[I].edges()[static_cast<size_t>(E)].Src,
                B[I].edges()[static_cast<size_t>(E)].Src);
      EXPECT_EQ(A[I].edges()[static_cast<size_t>(E)].Dst,
                B[I].edges()[static_cast<size_t>(E)].Dst);
    }
  }
}

TEST(Corpus, AllLoopsWellFormed) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.NumLoops = 200;
  for (const Ddg &G : generateCorpus(M, Opts))
    EXPECT_TRUE(G.isWellFormed(M.numTypes())) << G.name();
}

TEST(Corpus, SizeStatisticsMatchPaper) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.NumLoops = 1066;
  std::vector<Ddg> Corpus = generateCorpus(M, Opts);
  ASSERT_EQ(Corpus.size(), 1066u);
  double Sum = 0;
  int MaxN = 0;
  for (const Ddg &G : Corpus) {
    Sum += G.numNodes();
    MaxN = std::max(MaxN, G.numNodes());
    EXPECT_GE(G.numNodes(), 3);
    EXPECT_LE(G.numNodes(), Opts.MaxNodes);
  }
  double Mean = Sum / 1066.0;
  EXPECT_GT(Mean, 5.0) << "paper reports mean ~6 nodes";
  EXPECT_LT(Mean, 8.5);
  EXPECT_GE(MaxN, 15) << "a tail of larger loops must exist";
}

TEST(Corpus, RecurrenceFractionReasonable) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.NumLoops = 400;
  int WithRecurrence = 0;
  for (const Ddg &G : generateCorpus(M, Opts))
    if (recurrenceMii(G) > 0)
      ++WithRecurrence;
  double Frac = static_cast<double>(WithRecurrence) / 400.0;
  EXPECT_GT(Frac, 0.25);
  EXPECT_LT(Frac, 0.60);
}

TEST(Corpus, SeedChangesCorpus) {
  MachineModel M = ppc604Like();
  CorpusOptions A, B;
  A.NumLoops = B.NumLoops = 10;
  B.Seed = A.Seed + 1;
  std::vector<Ddg> CA = generateCorpus(M, A);
  std::vector<Ddg> CB = generateCorpus(M, B);
  bool AnyDiff = false;
  for (size_t I = 0; I < CA.size(); ++I)
    AnyDiff |= CA[I].numNodes() != CB[I].numNodes() ||
               CA[I].numEdges() != CB[I].numEdges();
  EXPECT_TRUE(AnyDiff);
}
