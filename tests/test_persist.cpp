//===- test_persist.cpp - Result-cache bounds & crash-safe snapshots ------===//
//
// The ResultCache's LRU capacity contract (eviction, recency refresh,
// first-insert-wins) and the CachePersist snapshot layer: byte-exact round
// trips, atomic rename-on-write crash safety (a kill mid-write leaves the
// last good snapshot live), checksum/truncation/version corruption
// detection with whole-shard rebuild, and the CacheLoad fault site.
//
//===----------------------------------------------------------------------===//

#include "swp/service/CachePersist.h"
#include "swp/service/ResultCache.h"
#include "swp/service/ResultCodec.h"
#include "swp/support/FaultInjector.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace swp;
namespace fs = std::filesystem;

namespace {

Fingerprint key(std::uint64_t I) { return Fingerprint{I * 0x9e37u + 1, I}; }

/// A distinguishable result with enough populated fields that a lossy
/// codec would be caught.
SchedulerResult result(int T) {
  SchedulerResult R;
  R.Schedule.T = T;
  R.Schedule.StartTime = {0, T, 2 * T};
  R.Schedule.Mapping = {0, 1, 0};
  R.TDep = 1;
  R.TRes = T;
  R.TLowerBound = T;
  R.ProvenRateOptimal = (T % 2) == 0;
  R.TotalSeconds = 0.5 * T;
  R.TotalNodes = 10 * T;
  TAttempt A;
  A.T = T;
  A.Status = MilpStatus::Optimal;
  A.Seconds = 0.25;
  A.Nodes = 10 * T;
  R.Attempts.push_back(A);
  return R;
}

/// Fresh per-test snapshot directory under the gtest temp root.
class PersistTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = fs::path(::testing::TempDir()) /
          ("swp-persist-" +
           std::string(
               ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(Dir);
    FaultInjector::instance().reset();
  }
  void TearDown() override {
    FaultInjector::instance().reset();
    fs::remove_all(Dir);
  }

  fs::path Dir;
};

/// Flips one byte of \p P at \p Offset (from the start, or from the end
/// when negative).
void flipByte(const fs::path &P, long Offset) {
  std::fstream F(P, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(F.is_open());
  if (Offset < 0) {
    F.seekg(0, std::ios::end);
    Offset += static_cast<long>(F.tellg());
  }
  F.seekg(Offset);
  char C;
  F.read(&C, 1);
  C = static_cast<char>(C ^ 0x20);
  F.seekp(Offset);
  F.write(&C, 1);
}

} // namespace

//===----------------------------------------------------------------------===//
// Bounded LRU
//===----------------------------------------------------------------------===//

TEST_F(PersistTest, LruEvictsAtCapacity) {
  ResultCache C(1, 3);
  for (std::uint64_t I = 1; I <= 4; ++I)
    C.insert(key(I), result(static_cast<int>(I)));
  EXPECT_EQ(C.size(), 3u);
  EXPECT_EQ(C.evictions(), 1u);
  SchedulerResult Out;
  EXPECT_FALSE(C.lookup(key(1), Out)) << "LRU entry must be the one evicted";
  EXPECT_TRUE(C.lookup(key(2), Out));
  EXPECT_TRUE(C.lookup(key(3), Out));
  EXPECT_TRUE(C.lookup(key(4), Out));
}

TEST_F(PersistTest, LookupRefreshesRecency) {
  ResultCache C(1, 3);
  for (std::uint64_t I = 1; I <= 3; ++I)
    C.insert(key(I), result(static_cast<int>(I)));
  SchedulerResult Out;
  ASSERT_TRUE(C.lookup(key(1), Out)); // 1 becomes MRU; 2 is now LRU.
  C.insert(key(4), result(4));
  EXPECT_TRUE(C.lookup(key(1), Out));
  EXPECT_FALSE(C.lookup(key(2), Out));
  EXPECT_EQ(C.evictions(), 1u);
}

TEST_F(PersistTest, FirstInsertWins) {
  ResultCache C(1, 8);
  C.insert(key(1), result(3));
  C.insert(key(1), result(7));
  SchedulerResult Out;
  ASSERT_TRUE(C.lookup(key(1), Out));
  EXPECT_EQ(Out.Schedule.T, 3);
  EXPECT_EQ(C.size(), 1u);
}

TEST_F(PersistTest, RestoreBypassesInsertFaultGating) {
  // With the CacheInsert site firing, live inserts are dropped (a lost
  // cache write) but the snapshot loader's restore() path must still land.
  std::string Err;
  ASSERT_TRUE(
      FaultInjector::instance().configure("cache-insert:1000", 0, &Err))
      << Err;
  ResultCache C(1, 8);
  C.insert(key(1), result(3));
  SchedulerResult Out;
  EXPECT_FALSE(C.lookup(key(1), Out));
  C.restore(key(1), result(3));
  EXPECT_TRUE(C.lookup(key(1), Out));
}

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

TEST_F(PersistTest, SnapshotRoundTripsByteExactly) {
  ResultCache C(2, 64);
  for (std::uint64_t I = 1; I <= 10; ++I)
    C.insert(key(I), result(static_cast<int>(I)));

  Expected<SnapshotSaveStats> Saved = saveCacheSnapshot(C, Dir.string());
  ASSERT_TRUE(Saved.ok()) << Saved.status().str();
  EXPECT_EQ(Saved->ShardFiles, 2u);
  EXPECT_EQ(Saved->Entries, 10u);
  EXPECT_GT(Saved->Bytes, 0u);

  ResultCache Warm(2, 64);
  Expected<SnapshotLoadStats> Loaded = loadCacheSnapshot(Warm, Dir.string());
  ASSERT_TRUE(Loaded.ok()) << Loaded.status().str();
  EXPECT_EQ(Loaded->Entries, 10u);
  EXPECT_EQ(Loaded->CorruptShards, 0u);
  EXPECT_EQ(Warm.size(), 10u);

  for (std::uint64_t I = 1; I <= 10; ++I) {
    SchedulerResult A, B;
    ASSERT_TRUE(C.lookup(key(I), A));
    ASSERT_TRUE(Warm.lookup(key(I), B));
    EXPECT_EQ(schedulerResultBytes(A), schedulerResultBytes(B))
        << "entry " << I << " did not survive the round trip bit-for-bit";
  }
}

TEST_F(PersistTest, ReshardsAcrossDifferentShardCounts) {
  // Shard files are self-describing, so a snapshot written with 4 shards
  // restores into a 1-shard cache (entries re-shard by fingerprint).
  ResultCache C(4, 64);
  for (std::uint64_t I = 1; I <= 8; ++I)
    C.insert(key(I), result(static_cast<int>(I)));
  ASSERT_TRUE(saveCacheSnapshot(C, Dir.string()).ok());

  ResultCache Warm(1, 64);
  Expected<SnapshotLoadStats> Loaded = loadCacheSnapshot(Warm, Dir.string());
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(Loaded->Entries, 8u);
  EXPECT_EQ(Warm.size(), 8u);
}

TEST_F(PersistTest, MissingDirectoryIsAColdStart) {
  ResultCache C(1, 8);
  Expected<SnapshotLoadStats> Loaded =
      loadCacheSnapshot(C, (Dir / "never-created").string());
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(Loaded->ShardFiles, 0u);
  EXPECT_EQ(Loaded->Entries, 0u);
}

TEST_F(PersistTest, CrashMidWriteKeepsLastGoodSnapshot) {
  ResultCache Good(1, 64);
  Good.insert(key(1), result(3));
  Good.insert(key(2), result(5));
  ASSERT_TRUE(saveCacheSnapshot(Good, Dir.string()).ok());

  // A later snapshot of different contents dies mid-write: the partial
  // .tmp stays behind, the rename never happens.
  ResultCache Newer(1, 64);
  Newer.insert(key(9), result(9));
  SnapshotWriteHooks Hooks;
  Hooks.FailAfterBytes = 10;
  Expected<SnapshotSaveStats> Crashed =
      saveCacheSnapshot(Newer, Dir.string(), Hooks);
  ASSERT_FALSE(Crashed.ok());
  EXPECT_EQ(Crashed.status().code(), StatusCode::FaultInjected);
  EXPECT_TRUE(fs::exists(Dir / "shard-0000.swpcache.tmp"));

  // Restart: the last good snapshot loads; the partial .tmp is ignored.
  ResultCache Warm(1, 64);
  Expected<SnapshotLoadStats> Loaded = loadCacheSnapshot(Warm, Dir.string());
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(Loaded->Entries, 2u);
  EXPECT_EQ(Loaded->CorruptShards, 0u);
  SchedulerResult Out;
  EXPECT_TRUE(Warm.lookup(key(1), Out));
  EXPECT_TRUE(Warm.lookup(key(2), Out));
  EXPECT_FALSE(Warm.lookup(key(9), Out))
      << "the crashed snapshot's contents must not be visible";
}

TEST_F(PersistTest, EntryCorruptionDiscardsTheWholeShard) {
  ResultCache C(1, 64);
  C.insert(key(1), result(3));
  C.insert(key(2), result(5));
  ASSERT_TRUE(saveCacheSnapshot(C, Dir.string()).ok());
  // A flipped bit in the last entry's bytes fails that entry's CRC; the
  // loader must rebuild the shard from empty, not restore a prefix.
  flipByte(Dir / "shard-0000.swpcache", -2);

  ResultCache Warm(1, 64);
  Expected<SnapshotLoadStats> Loaded = loadCacheSnapshot(Warm, Dir.string());
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(Loaded->ShardFiles, 1u);
  EXPECT_EQ(Loaded->CorruptShards, 1u);
  EXPECT_EQ(Loaded->Entries, 0u);
  EXPECT_EQ(Warm.size(), 0u);
}

TEST_F(PersistTest, HeaderAndVersionCorruptionRejected) {
  ResultCache C(1, 64);
  C.insert(key(1), result(3));
  ASSERT_TRUE(saveCacheSnapshot(C, Dir.string()).ok());

  flipByte(Dir / "shard-0000.swpcache", 0); // Magic.
  ResultCache W1(1, 64);
  Expected<SnapshotLoadStats> L1 = loadCacheSnapshot(W1, Dir.string());
  ASSERT_TRUE(L1.ok());
  EXPECT_EQ(L1->CorruptShards, 1u);

  flipByte(Dir / "shard-0000.swpcache", 0); // Back to valid.
  flipByte(Dir / "shard-0000.swpcache", 4); // Version.
  ResultCache W2(1, 64);
  Expected<SnapshotLoadStats> L2 = loadCacheSnapshot(W2, Dir.string());
  ASSERT_TRUE(L2.ok());
  EXPECT_EQ(L2->CorruptShards, 1u);
}

TEST_F(PersistTest, TruncatedShardRejected) {
  ResultCache C(1, 64);
  C.insert(key(1), result(3));
  C.insert(key(2), result(5));
  ASSERT_TRUE(saveCacheSnapshot(C, Dir.string()).ok());

  fs::path Shard = Dir / "shard-0000.swpcache";
  std::uintmax_t Size = fs::file_size(Shard);
  fs::resize_file(Shard, Size / 2);

  ResultCache Warm(1, 64);
  Expected<SnapshotLoadStats> Loaded = loadCacheSnapshot(Warm, Dir.string());
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(Loaded->CorruptShards, 1u);
  EXPECT_EQ(Warm.size(), 0u);
}

TEST_F(PersistTest, CacheLoadFaultSiteForcesShardRebuild) {
  ResultCache C(2, 64);
  for (std::uint64_t I = 1; I <= 6; ++I)
    C.insert(key(I), result(static_cast<int>(I)));
  ASSERT_TRUE(saveCacheSnapshot(C, Dir.string()).ok());
  // The loader reads shard files in sorted order, so the injected fault
  // hits shard 0; whatever lived there is lost, shard 1 still restores.
  std::size_t Shard0 = C.shardEntries(0).size();
  std::size_t Shard1 = C.shardEntries(1).size();
  ASSERT_EQ(Shard0 + Shard1, 6u);

  std::string Err;
  ASSERT_TRUE(FaultInjector::instance().configure("cache-load:1", 0, &Err))
      << Err;
  ResultCache Warm(2, 64);
  Expected<SnapshotLoadStats> Loaded = loadCacheSnapshot(Warm, Dir.string());
  ASSERT_TRUE(Loaded.ok());
  EXPECT_EQ(Loaded->ShardFiles, 2u);
  EXPECT_EQ(Loaded->CorruptShards, 1u);
  EXPECT_EQ(Loaded->Entries, Shard1)
      << "degradation is per shard, never all-or-nothing";
  EXPECT_EQ(Warm.size(), Loaded->Entries);
}

TEST_F(PersistTest, SnapshotPreservesRecencyOrder) {
  // Entries are snapshotted LRU-first and restored in that order, so the
  // warm cache evicts in the same order the cold one would have.
  ResultCache C(1, 3);
  for (std::uint64_t I = 1; I <= 3; ++I)
    C.insert(key(I), result(static_cast<int>(I)));
  SchedulerResult Out;
  ASSERT_TRUE(C.lookup(key(1), Out)); // 1 -> MRU; LRU order is now 2,3,1.
  ASSERT_TRUE(saveCacheSnapshot(C, Dir.string()).ok());

  ResultCache Warm(1, 3);
  ASSERT_TRUE(loadCacheSnapshot(Warm, Dir.string()).ok());
  Warm.insert(key(4), result(4)); // Evicts the restored LRU: key 2.
  EXPECT_FALSE(Warm.lookup(key(2), Out));
  EXPECT_TRUE(Warm.lookup(key(1), Out));
  EXPECT_TRUE(Warm.lookup(key(3), Out));
}
