//===- test_service.cpp - Scheduling service tests ------------------------===//
//
// Unit and integration tests of the swp/service subsystem: cancellation
// tokens, the thread pool, job fingerprints, the result cache, and the
// SchedulerService itself — including the determinism contract (a parallel
// batch run is bit-identical to the serial baseline) and the portfolio
// race's agreement with the plain rate-optimal driver.
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/core/KernelExpander.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/heuristics/SlackModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/service/Fingerprint.h"
#include "swp/service/ResultCache.h"
#include "swp/service/SchedulerService.h"
#include "swp/service/ServiceStats.h"
#include "swp/service/ThreadPool.h"
#include "swp/solver/Simplex.h"
#include "swp/support/Cancellation.h"
#include "swp/workload/Corpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

using namespace swp;

namespace {

/// Deterministic censoring: only the node limit may fire, so serial and
/// parallel runs censor identically regardless of machine load
/// (wall-clock censoring would be scheduling-dependent, and time-censored
/// results are deliberately not cached).  The time limit must stay
/// unreachable even under TSan's slowdown with all workers sharing one
/// core.  The node limit is kept small — every node is an LP solve — so
/// censored loops stay cheap.
SchedulerOptions deterministicOptions() {
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 1e9;
  Opts.NodeLimitPerT = 250;
  Opts.MaxTSlack = 4;
  return Opts;
}

std::vector<Ddg> corpusSlice(int NumLoops) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.NumLoops = NumLoops;
  return generateCorpus(M, Opts);
}

} // namespace

//===----------------------------------------------------------------------===//
// Cancellation tokens
//===----------------------------------------------------------------------===//

TEST(Cancellation, DefaultTokenNeverCancels) {
  CancellationToken T;
  EXPECT_FALSE(T.connected());
  EXPECT_FALSE(T.cancelled());
}

TEST(Cancellation, ExplicitCancelPropagates) {
  CancellationSource Src;
  CancellationToken T = Src.token();
  EXPECT_TRUE(T.connected());
  EXPECT_FALSE(T.cancelled());
  Src.cancel();
  EXPECT_TRUE(T.cancelled());
}

TEST(Cancellation, DeadlineFires) {
  CancellationSource Src;
  Src.setDeadlineAfter(-1.0);
  EXPECT_TRUE(Src.token().cancelled());

  CancellationSource Slow;
  Slow.setDeadlineAfter(0.005);
  EXPECT_FALSE(Slow.token().cancelled());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(Slow.token().cancelled());
}

TEST(Cancellation, NestedSourceInheritsParent) {
  CancellationSource Parent;
  CancellationSource Child(Parent.token());
  EXPECT_FALSE(Child.token().cancelled());
  Parent.cancel();
  EXPECT_TRUE(Child.token().cancelled());
  // And the child can cancel independently without touching the parent.
  CancellationSource P2;
  CancellationSource C2(P2.token());
  C2.cancel();
  EXPECT_TRUE(C2.token().cancelled());
  EXPECT_FALSE(P2.token().cancelled());
}

//===----------------------------------------------------------------------===//
// Thread pool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryJob) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(4);
    EXPECT_EQ(Pool.threadCount(), 4);
    for (int I = 0; I < 100; ++I)
      Pool.enqueue([&Count] { Count.fetch_add(1); });
  } // Destructor drains the queue.
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool Pool(2);
  std::vector<std::future<int>> Futures;
  for (int I = 0; I < 16; ++I)
    Futures.push_back(Pool.submit([I] { return I * I; }));
  for (int I = 0; I < 16; ++I)
    EXPECT_EQ(Futures[static_cast<size_t>(I)].get(), I * I);
}

TEST(ThreadPool, TracksQueueHighWater) {
  ThreadPool Pool(1);
  // Block the single worker so enqueued jobs pile up measurably.
  std::promise<void> Gate;
  std::shared_future<void> Open = Gate.get_future().share();
  Pool.enqueue([Open] { Open.wait(); });
  for (int I = 0; I < 8; ++I)
    Pool.enqueue([] {});
  EXPECT_GE(Pool.queueHighWater(), 8);
  Gate.set_value();
}

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

TEST(Fingerprint, IgnoresNames) {
  MachineModel M = ppc604Like();
  Ddg A("alpha");
  int A0 = A.addNode("load", 3, 2);
  int A1 = A.addNode("add", 0, 1);
  A.addEdge(A0, A1, 0);
  Ddg B("beta");
  int B0 = B.addNode("x", 3, 2);
  int B1 = B.addNode("y", 0, 1);
  B.addEdge(B0, B1, 0);
  EXPECT_EQ(fingerprintDdg(A), fingerprintDdg(B));
  EXPECT_EQ(fingerprintJob(A, M, {}, false, 0.0),
            fingerprintJob(B, M, {}, false, 0.0));
}

TEST(Fingerprint, SensitiveToStructure) {
  Ddg Base;
  int N0 = Base.addNode("a", 3, 2);
  int N1 = Base.addNode("b", 0, 1);
  Base.addEdge(N0, N1, 0);
  Fingerprint FBase = fingerprintDdg(Base);

  Ddg Latency = Base;
  Latency.addEdgeWithLatency(N1, N0, 1, 4);
  EXPECT_NE(fingerprintDdg(Latency), FBase);

  Ddg OtherClass;
  OtherClass.addNode("a", 2, 2);
  OtherClass.addNode("b", 0, 1);
  OtherClass.addEdge(0, 1, 0);
  EXPECT_NE(fingerprintDdg(OtherClass), FBase);

  Ddg OtherDistance;
  OtherDistance.addNode("a", 3, 2);
  OtherDistance.addNode("b", 0, 1);
  OtherDistance.addEdge(0, 1, 1);
  EXPECT_NE(fingerprintDdg(OtherDistance), FBase);
}

TEST(Fingerprint, SensitiveToMachineAndOptions) {
  EXPECT_NE(fingerprintMachine(ppc604Like()),
            fingerprintMachine(cleanVliw()));

  SchedulerOptions A;
  SchedulerOptions B;
  B.Mapping = MappingKind::RunTime;
  EXPECT_NE(fingerprintOptions(A), fingerprintOptions(B));
  SchedulerOptions C;
  C.NodeLimitPerT = 123;
  EXPECT_NE(fingerprintOptions(A), fingerprintOptions(C));

  Ddg G;
  G.addNode("a", 0, 1);
  MachineModel M = ppc604Like();
  EXPECT_NE(fingerprintJob(G, M, A, false, 0.0),
            fingerprintJob(G, M, A, true, 0.0));
}

//===----------------------------------------------------------------------===//
// Result cache
//===----------------------------------------------------------------------===//

TEST(ResultCache, StoresAndRetrieves) {
  ResultCache Cache;
  Fingerprint Key{1, 2};
  SchedulerResult Miss;
  EXPECT_FALSE(Cache.lookup(Key, Miss));
  SchedulerResult Value;
  Value.TLowerBound = 7;
  Cache.insert(Key, Value);
  SchedulerResult Out;
  ASSERT_TRUE(Cache.lookup(Key, Out));
  EXPECT_EQ(Out.TLowerBound, 7);
  EXPECT_EQ(Cache.size(), 1u);
  Cache.clear();
  EXPECT_EQ(Cache.size(), 0u);
}

TEST(ResultCache, FirstInsertWins) {
  ResultCache Cache;
  Fingerprint Key{3, 4};
  SchedulerResult First;
  First.TLowerBound = 1;
  SchedulerResult Second;
  Second.TLowerBound = 2;
  Cache.insert(Key, First);
  Cache.insert(Key, Second);
  SchedulerResult Out;
  ASSERT_TRUE(Cache.lookup(Key, Out));
  EXPECT_EQ(Out.TLowerBound, 1);
}

//===----------------------------------------------------------------------===//
// Driver cancellation
//===----------------------------------------------------------------------===//

TEST(DriverCancellation, PreCancelledTokenShortCircuits) {
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 99, {});
  CancellationSource Src;
  Src.cancel();
  SchedulerOptions Opts;
  Opts.Cancel = Src.token();
  SchedulerResult R = scheduleLoop(G, M, Opts);
  EXPECT_FALSE(R.found());
  EXPECT_TRUE(R.Cancelled);
  EXPECT_TRUE(R.Attempts.empty());
}

TEST(DriverCancellation, ScheduleAtTReportsCancelledStop) {
  // Bypass scheduleLoop's per-T token check and hit the one inside the
  // branch-and-bound node loop: scheduleAtT must surface Cancelled.
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 99, {});
  int T = std::max({1, recurrenceMii(G), M.resourceMii(G)});
  while (!M.moduloFeasible(G, T))
    ++T;
  CancellationSource Src;
  Src.cancel();
  SchedulerOptions Opts;
  Opts.Cancel = Src.token();
  Opts.LpRoundingProbe = false; // Force the search into branch and bound.
  ModuloSchedule Out;
  double Seconds = 0.0;
  std::int64_t Nodes = 0;
  SearchStop Stop = SearchStop::None;
  MilpStatus Status = scheduleAtT(G, M, T, Opts, Out, &Seconds, &Nodes,
                                  &Stop);
  EXPECT_EQ(Status, MilpStatus::Unknown);
  EXPECT_EQ(Stop, SearchStop::Cancelled);
  EXPECT_EQ(Nodes, 0);
}

TEST(DriverCancellation, SimplexPivotLoopHonorsToken) {
  // The deepest boundary: the token is polled inside the simplex pivot
  // loop itself, so even a single long LP solve unwinds.
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 99, {});
  int T = std::max({1, recurrenceMii(G), M.resourceMii(G)});
  while (!M.moduloFeasible(G, T))
    ++T;
  FormulationVars Vars;
  MilpModel Model = buildScheduleModel(G, M, T, {}, Vars);
  ASSERT_TRUE(Model.valid());
  CancellationSource Src;
  Src.cancel();
  LpResult Lp = solveLp(Model, Src.token());
  EXPECT_EQ(Lp.Status, LpStatus::Cancelled);
}

TEST(DriverCancellation, KernelExpansionHonorsToken) {
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 99, {});
  SchedulerResult R = scheduleLoop(G, M, deterministicOptions());
  ASSERT_TRUE(R.found());
  CancellationSource Src;
  Src.cancel();
  ExpandedSchedule E = expandSchedule(G, R.Schedule, 16, Src.token());
  EXPECT_TRUE(E.Truncated);
  ExpandedSchedule Full = expandSchedule(G, R.Schedule, 16);
  EXPECT_FALSE(Full.Truncated);
}

TEST(DriverCancellation, PortfolioPreCancelledReportsNothingFound) {
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 99, {});
  CancellationSource Src;
  Src.cancel();
  SchedulerOptions Opts = deterministicOptions();
  Opts.Cancel = Src.token();
  PortfolioOutcome Outcome = PortfolioOutcome::IlpWon;
  SchedulerResult R = portfolioSchedule(G, M, Opts, &Outcome);
  EXPECT_FALSE(R.found());
  EXPECT_TRUE(R.Cancelled);
  EXPECT_EQ(Outcome, PortfolioOutcome::NothingFound);
  EXPECT_FALSE(R.stopChain().empty());
}

//===----------------------------------------------------------------------===//
// Scheduler service
//===----------------------------------------------------------------------===//

TEST(SchedulerService, SubmitAfterCancelAllResolvesCancelled) {
  // Queue-boundary cancellation: jobs submitted into an already-cancelled
  // service must resolve promptly as Cancelled, not solve and not hang.
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 7, {});
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 1;
  SvcOpts.UseCache = false;
  SchedulerService Svc(M, SvcOpts);
  Svc.cancelAll();
  SchedulerResult R = Svc.submit(G).get();
  EXPECT_FALSE(R.found());
  EXPECT_TRUE(R.Cancelled);
  EXPECT_EQ(R.Fallback, FallbackRung::None)
      << "a user cancel must not trigger the fallback ladder";
}

TEST(SchedulerService, ParallelBatchMatchesSerialBitForBit) {
  // The tentpole determinism contract: a --jobs 8 batch over a 128-loop
  // corpus slice produces exactly the serial driver's (T, proven,
  // verify-failed) tuple per loop.
  MachineModel M = ppc604Like();
  std::vector<Ddg> Corpus = corpusSlice(128);
  SchedulerOptions SOpts = deterministicOptions();

  std::vector<SchedulerResult> Serial;
  Serial.reserve(Corpus.size());
  for (const Ddg &G : Corpus)
    Serial.push_back(scheduleLoop(G, M, SOpts));

  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 8;
  SvcOpts.Sched = SOpts;
  // The fallback ladder deliberately improves on the serial driver for
  // censored-unfound loops; switch it off to compare the primary path.
  SvcOpts.FallbackLadder = false;
  SchedulerService Svc(M, SvcOpts);
  std::vector<SchedulerResult> Parallel = Svc.scheduleAll(Corpus);

  ASSERT_EQ(Parallel.size(), Serial.size());
  for (size_t I = 0; I < Serial.size(); ++I) {
    EXPECT_EQ(Parallel[I].Schedule.T, Serial[I].Schedule.T)
        << Corpus[I].name();
    EXPECT_EQ(Parallel[I].ProvenRateOptimal, Serial[I].ProvenRateOptimal)
        << Corpus[I].name();
    EXPECT_EQ(Parallel[I].VerifyFailed, Serial[I].VerifyFailed)
        << Corpus[I].name();
    EXPECT_EQ(Parallel[I].TLowerBound, Serial[I].TLowerBound)
        << Corpus[I].name();
  }

  // Re-scheduling the same corpus must be answered from the cache with
  // results equal to the cold solves.
  std::vector<SchedulerResult> Cached = Svc.scheduleAll(Corpus);
  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Submitted, 2 * Corpus.size());
  EXPECT_EQ(Stats.Completed, 2 * Corpus.size());
  EXPECT_GE(Stats.CacheHits, Corpus.size()); // Second pass is all hits.
  EXPECT_EQ(Stats.CacheHits + Stats.CacheMisses, Stats.Completed);
  for (size_t I = 0; I < Serial.size(); ++I) {
    EXPECT_EQ(Cached[I].Schedule.T, Serial[I].Schedule.T);
    EXPECT_EQ(Cached[I].ProvenRateOptimal, Serial[I].ProvenRateOptimal);
    EXPECT_EQ(Cached[I].VerifyFailed, Serial[I].VerifyFailed);
  }
}

TEST(SchedulerService, SubmitResolvesSingleLoop) {
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 7, {});
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 2;
  SchedulerService Svc(M, SvcOpts);
  SchedulerResult R = Svc.submit(G).get();
  SchedulerResult Ref = scheduleLoop(G, M, SvcOpts.Sched);
  EXPECT_EQ(R.Schedule.T, Ref.Schedule.T);
  EXPECT_EQ(R.ProvenRateOptimal, Ref.ProvenRateOptimal);
  if (R.found()) {
    EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
  }
}

TEST(SchedulerService, PortfolioAgreesWithSerialIlp) {
  MachineModel M = ppc604Like();
  std::vector<Ddg> Corpus = corpusSlice(48);
  SchedulerOptions SOpts = deterministicOptions();

  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 4;
  SvcOpts.Sched = SOpts;
  SvcOpts.Portfolio = true;
  SchedulerService Svc(M, SvcOpts);
  std::vector<SchedulerResult> Portfolio = Svc.scheduleAll(Corpus);

  for (size_t I = 0; I < Corpus.size(); ++I) {
    const Ddg &G = Corpus[I];
    const SchedulerResult &P = Portfolio[I];
    if (!P.found())
      continue;
    EXPECT_TRUE(verifySchedule(G, M, P.Schedule).Ok) << G.name();
    EXPECT_GE(P.Schedule.T, P.TLowerBound) << G.name();
    // The portfolio can never be worse than its heuristic legs.
    ImsResult Ims = iterativeModuloSchedule(G, M);
    if (Ims.found()) {
      EXPECT_LE(P.Schedule.T, Ims.Schedule.T) << G.name();
    }
    SlackResult Slack = slackModuloSchedule(G, M);
    if (Slack.found()) {
      EXPECT_LE(P.Schedule.T, Slack.Schedule.T) << G.name();
    }
    // And a proven-rate-optimal portfolio answer equals the serial ILP's
    // proven answer.
    SchedulerResult Ref = scheduleLoop(G, M, SOpts);
    if (P.ProvenRateOptimal && Ref.ProvenRateOptimal) {
      EXPECT_EQ(P.Schedule.T, Ref.Schedule.T) << G.name();
    }
  }

  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.PortfolioHeuristicWins + Stats.PortfolioIlpWins +
                Stats.PortfolioFallbacks,
            Stats.CacheMisses)
      << "every cold portfolio job settles one way";
}

TEST(SchedulerService, CancelAllResolvesEverything) {
  MachineModel M = ppc604Like();
  std::vector<Ddg> Corpus = corpusSlice(32);
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 2;
  SvcOpts.UseCache = false;
  SchedulerService Svc(M, SvcOpts);
  std::vector<std::future<SchedulerResult>> Futures;
  for (const Ddg &G : Corpus)
    Futures.push_back(Svc.submit(G));
  Svc.cancelAll();
  for (auto &F : Futures)
    F.get(); // Every future must resolve — no deadlock, no abandonment.
  ServiceStats Stats = Svc.stats();
  EXPECT_EQ(Stats.Completed, Corpus.size());
  EXPECT_EQ(Stats.Submitted, Corpus.size());
}

TEST(SchedulerService, DeadlineCancelsHardLoop) {
  MachineModel M = ppc604Like();
  // A large saturated loop: the rate-optimal search needs many B&B nodes,
  // so a microscopic deadline fires mid-solve.
  CorpusOptions CO;
  CO.MaxNodes = 20;
  CO.MeanExtraNodes = 1000.0;
  Ddg G = generateRandomLoop(M, 4242, CO);
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 1;
  SvcOpts.DeadlinePerLoop = 1e-6;
  SvcOpts.Sched.LpRoundingProbe = false;
  SchedulerService Svc(M, SvcOpts);
  SchedulerResult R = Svc.submit(G).get();
  EXPECT_TRUE(R.Cancelled);
  EXPECT_EQ(Svc.stats().Cancellations, 1u);
}

TEST(ServiceStats, RendersCountersAndHistogram) {
  ServiceStats Stats;
  Stats.Jobs = 4;
  Stats.Submitted = 10;
  Stats.Completed = 10;
  Stats.CacheHits = 3;
  Stats.CacheMisses = 7;
  Stats.Latency.add(0.0001);
  Stats.Latency.add(0.5);
  std::string Table = Stats.render();
  EXPECT_NE(Table.find("cache hits"), std::string::npos);
  EXPECT_NE(Table.find("queue high-water"), std::string::npos);
  EXPECT_NE(Table.find("Latency"), std::string::npos);
  EXPECT_EQ(Stats.Latency.Count, 2u);
  EXPECT_NEAR(Stats.Latency.MaxSeconds, 0.5, 1e-9);
}
