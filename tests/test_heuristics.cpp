//===- test_heuristics.cpp - IMS and enumerative scheduler tests ----------===//

#include "swp/core/Verifier.h"
#include "swp/core/Driver.h"
#include "swp/heuristics/Enumerative.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/workload/Corpus.h"
#include "swp/workload/Kernels.h"

#include <gtest/gtest.h>

using namespace swp;

TEST(Ims, SchedulesMotivatingLoop) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  ImsResult R = iterativeModuloSchedule(G, M);
  ASSERT_TRUE(R.found());
  EXPECT_GE(R.Schedule.T, R.TLowerBound);
  VerifyResult V = verifySchedule(G, M, R.Schedule);
  EXPECT_TRUE(V.Ok) << V.Error;
}

TEST(Ims, ProducesFixedMapping) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  ImsResult R = iterativeModuloSchedule(G, M);
  ASSERT_TRUE(R.found());
  EXPECT_TRUE(R.Schedule.hasMapping());
}

TEST(Ims, HandlesHazardMachine) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleHazardMachine();
  ImsResult R = iterativeModuloSchedule(G, M);
  ASSERT_TRUE(R.found());
  EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
  EXPECT_GE(R.Schedule.T, 6) << "hazard T_res is 6 here";
}

TEST(Ims, SchedulesAllClassicKernels) {
  MachineModel M = ppc604Like();
  for (const Ddg &G : classicKernels()) {
    ImsResult R = iterativeModuloSchedule(G, M);
    ASSERT_TRUE(R.found()) << G.name();
    VerifyResult V = verifySchedule(G, M, R.Schedule);
    EXPECT_TRUE(V.Ok) << G.name() << ": " << V.Error;
    EXPECT_GE(R.Schedule.T, R.TLowerBound) << G.name();
  }
}

TEST(Enumerative, SchedulesMotivatingLoop) {
  Ddg G = motivatingLoop();
  MachineModel M = exampleNonPipelinedMachine();
  EnumResult R = enumerativeSchedule(G, M);
  ASSERT_TRUE(R.found());
  EXPECT_TRUE(R.ProvenRateOptimal);
  EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
}

TEST(Enumerative, ProvesScheduleAInfeasibilityAtT3) {
  Ddg G = scheduleALoop();
  MachineModel M = exampleTwoFpMachine();
  EnumResult R = enumerativeSchedule(G, M);
  ASSERT_TRUE(R.found());
  EXPECT_EQ(R.Schedule.T, 4) << "fixed mapping costs one cycle of II";
  EXPECT_TRUE(R.ProvenRateOptimal);
}

TEST(Enumerative, MatchesIlpOnKernels) {
  // Enumerative (exhaustive) and ILP must agree on the rate-optimal II.
  MachineModel M = ppc604Like();
  int Checked = 0;
  for (const Ddg &G : classicKernels()) {
    if (G.numNodes() > 9)
      continue; // Keep the exhaustive runs fast.
    EnumResult E = enumerativeSchedule(G, M);
    SchedulerResult I = scheduleLoop(G, M);
    ASSERT_TRUE(E.found()) << G.name();
    ASSERT_TRUE(I.found()) << G.name();
    EXPECT_EQ(E.Schedule.T, I.Schedule.T) << G.name();
    ++Checked;
  }
  EXPECT_GE(Checked, 8);
}

TEST(Heuristics, ImsNeverBeatsExhaustive) {
  MachineModel M = ppc604Like();
  for (const Ddg &G : classicKernels()) {
    if (G.numNodes() > 9)
      continue;
    ImsResult H = iterativeModuloSchedule(G, M);
    EnumResult E = enumerativeSchedule(G, M);
    ASSERT_TRUE(H.found()) << G.name();
    ASSERT_TRUE(E.found()) << G.name();
    EXPECT_GE(H.Schedule.T, E.Schedule.T)
        << G.name() << ": a heuristic cannot beat the optimum";
  }
}

//===----------------------------------------------------------------------===//
// Property tests on random loops.
//===----------------------------------------------------------------------===//

class HeuristicPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicPropertyTest, ImsSchedulesVerifyOnRandomLoops) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.MaxNodes = 10;
  Ddg G = generateRandomLoop(
      M, static_cast<std::uint64_t>(GetParam()) * 48271 + 11, Opts);
  ImsResult R = iterativeModuloSchedule(G, M);
  ASSERT_TRUE(R.found()) << G.name();
  VerifyResult V = verifySchedule(G, M, R.Schedule);
  EXPECT_TRUE(V.Ok) << V.Error;
  EXPECT_GE(R.Schedule.T, R.TLowerBound);
}

TEST_P(HeuristicPropertyTest, EnumerativeSchedulesVerifyOnRandomLoops) {
  MachineModel M = ppc604Like();
  CorpusOptions Opts;
  Opts.MaxNodes = 8;
  Ddg G = generateRandomLoop(
      M, static_cast<std::uint64_t>(GetParam()) * 16807 + 23, Opts);
  EnumResult R = enumerativeSchedule(G, M);
  ASSERT_TRUE(R.found()) << G.name();
  VerifyResult V = verifySchedule(G, M, R.Schedule);
  EXPECT_TRUE(V.Ok) << V.Error;
}

INSTANTIATE_TEST_SUITE_P(RandomLoops, HeuristicPropertyTest,
                         ::testing::Range(0, 25));
