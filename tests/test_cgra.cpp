//===- test_cgra.cpp - CGRA grid machines, corpus, and engine parity ------===//

#include "swp/core/Driver.h"
#include "swp/core/Verifier.h"
#include "swp/heuristics/Enumerative.h"
#include "swp/heuristics/IterativeModulo.h"
#include "swp/heuristics/SlackModulo.h"
#include "swp/machine/Catalog.h"
#include "swp/sat/SatScheduler.h"
#include "swp/service/Fingerprint.h"
#include "swp/sim/DynamicSimulator.h"
#include "swp/support/Rng.h"
#include "swp/workload/Corpus.h"

#include <cstdint>
#include <gtest/gtest.h>

using namespace swp;

TEST(CgraCatalog, GridShapes) {
  MachineModel Mesh = cgraGrid(3, 3);
  EXPECT_EQ(Mesh.name(), "cgra-mesh-3x3");
  EXPECT_EQ(Mesh.numTypes(), 1);
  EXPECT_EQ(Mesh.totalUnits(), 9);
  EXPECT_EQ(Mesh.type(0).numVariants(), 2) << "ALU + multiplier variant";
  ASSERT_NE(Mesh.topology(), nullptr);
  // 3x3 mesh: 12 undirected 4-neighbor links, both directions.
  EXPECT_EQ(Mesh.topology()->edges().size(), 24u);
  EXPECT_TRUE(Mesh.topologyConstrains());

  MachineModel Torus = cgraGrid(3, 3, /*Torus=*/true);
  EXPECT_EQ(Torus.name(), "cgra-torus-3x3");
  EXPECT_EQ(Torus.topology()->edges().size(), 36u) << "out-degree 4 per PE";
  // Interchange classes admit only transposition automorphisms; on a 3x3
  // torus swapping any two PEs while fixing the rest perturbs the hop
  // matrix (vertex-transitivity needs a full rotation), so every PE is a
  // singleton — the symmetry breaker must not merge them.
  EXPECT_EQ(Torus.topology()->interchangeClasses(0, 9).size(), 9u);
}

TEST(CgraCatalog, LookupByName) {
  MachineModel M("x");
  EXPECT_TRUE(buildCatalogMachine("cgra-mesh-2x2", M));
  EXPECT_EQ(M.totalUnits(), 4);
  EXPECT_TRUE(buildCatalogMachine("cgra-torus-6x6", M));
  EXPECT_EQ(M.totalUnits(), 36);
  EXPECT_FALSE(buildCatalogMachine("cgra-mesh-7x7", M));
  EXPECT_FALSE(buildCatalogMachine("nope", M));
  // The catalog covers the legacy machines and both grid families.
  bool SawLegacy = false, SawMesh = false, SawTorus = false;
  for (const CatalogEntry &E : machineCatalog()) {
    SawLegacy |= E.Name == "ppc604-like";
    SawMesh |= E.Name == "cgra-mesh-4x4";
    SawTorus |= E.Name == "cgra-torus-2x2";
  }
  EXPECT_TRUE(SawLegacy && SawMesh && SawTorus);
}

TEST(CgraCorpus, DeterministicAndWellFormed) {
  MachineModel M = cgraGrid(3, 3);
  CgraCorpusOptions Opts;
  Opts.NumLoops = 12;
  std::vector<Ddg> A = generateCgraCorpus(M, Opts);
  std::vector<Ddg> B = generateCgraCorpus(M, Opts);
  ASSERT_EQ(A.size(), 12u);
  bool SawMulVariant = false;
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(fingerprintDdg(A[I]), fingerprintDdg(B[I])) << I;
    EXPECT_TRUE(M.acceptsDdg(A[I])) << A[I].name();
    EXPECT_TRUE(A[I].isWellFormed(M.numTypes())) << A[I].name();
    for (const DdgNode &N : A[I].nodes())
      SawMulVariant |= N.Variant == cgraMulVariant();
  }
  EXPECT_TRUE(SawMulVariant) << "corpus exercises the multiplier variant";
}

TEST(CgraEngines, IlpSatParityOnTinyGrid) {
  MachineModel M = cgraGrid(2, 2);
  CgraCorpusOptions COpts;
  COpts.NumLoops = 8;
  COpts.MaxNodes = 8;
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 1e9;
  Opts.NodeLimitPerT = 5000;
  Opts.MaxTSlack = 6;
  for (const Ddg &G : generateCgraCorpus(M, COpts)) {
    SchedulerResult Ilp = scheduleLoop(G, M, Opts);
    SchedulerResult Sat = satScheduleLoop(G, M, Opts);
    ASSERT_TRUE(Ilp.found()) << G.name();
    ASSERT_TRUE(Sat.found()) << G.name();
    EXPECT_TRUE(Ilp.ProvenRateOptimal) << G.name();
    EXPECT_TRUE(Sat.ProvenRateOptimal) << G.name();
    EXPECT_EQ(Ilp.Schedule.T, Sat.Schedule.T) << G.name();
    VerifyResult VI = verifySchedule(G, M, Ilp.Schedule);
    EXPECT_TRUE(VI.Ok) << G.name() << ": " << VI.Error;
    VerifyResult VS = verifySchedule(G, M, Sat.Schedule);
    EXPECT_TRUE(VS.Ok) << G.name() << ": " << VS.Error;
    std::string SimErr;
    EXPECT_TRUE(replaySchedule(G, M, Ilp.Schedule, 4, &SimErr))
        << G.name() << ": " << SimErr;
  }
}

TEST(CgraEngines, HeuristicsProduceVerifiedMappings) {
  MachineModel M = cgraGrid(3, 3, /*Torus=*/true);
  CgraCorpusOptions COpts;
  COpts.NumLoops = 10;
  for (const Ddg &G : generateCgraCorpus(M, COpts)) {
    ImsResult Ims = iterativeModuloSchedule(G, M);
    ASSERT_TRUE(Ims.found()) << G.name();
    VerifyResult VI = verifySchedule(G, M, Ims.Schedule);
    EXPECT_TRUE(VI.Ok) << G.name() << ": " << VI.Error;
    SlackResult Sl = slackModuloSchedule(G, M);
    ASSERT_TRUE(Sl.found()) << G.name();
    VerifyResult VS = verifySchedule(G, M, Sl.Schedule);
    EXPECT_TRUE(VS.Ok) << G.name() << ": " << VS.Error;
  }
}

TEST(CgraEngines, HeuristicsNeverBeatProvenOptimum) {
  MachineModel M = cgraGrid(2, 2);
  CgraCorpusOptions COpts;
  COpts.NumLoops = 8;
  COpts.MaxNodes = 8;
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 1e9;
  Opts.NodeLimitPerT = 5000;
  Opts.MaxTSlack = 6;
  for (const Ddg &G : generateCgraCorpus(M, COpts)) {
    SchedulerResult Ilp = scheduleLoop(G, M, Opts);
    if (!Ilp.ProvenRateOptimal || !Ilp.found())
      continue;
    ImsResult Ims = iterativeModuloSchedule(G, M);
    if (Ims.found()) {
      EXPECT_GE(Ims.Schedule.T, Ilp.Schedule.T) << G.name();
    }
    SlackResult Sl = slackModuloSchedule(G, M);
    if (Sl.found()) {
      EXPECT_GE(Sl.Schedule.T, Ilp.Schedule.T) << G.name();
    }
  }
}

TEST(CgraEngines, EnumerativeDeclinesTopologyMachines) {
  // The enumerative search tree has no routing-hazard pruning; on a
  // constraining topology it must decline rather than claim false proofs.
  MachineModel M = cgraGrid(2, 2);
  Ddg G("g");
  G.addNode("a", 0, 1);
  G.addNode("b", 0, 1);
  G.addEdge(0, 1, 0);
  EnumResult R = enumerativeSchedule(G, M);
  EXPECT_FALSE(R.found());
  EXPECT_FALSE(R.ProvenRateOptimal);
}

TEST(CgraEngines, SlackForcedPlacementRejectsSelfCollidingRoute) {
  // Regression from differential fuzzing (swp_fuzz --mode cgra, instance
  // seed 10451216379200817325, reconstructed below exactly as the harness
  // derives it): an edge whose endpoints end up 3 hops apart has ROUTE
  // columns {1, 2}, which fold onto one pattern step at T=1 — a capacity
  // violation intrinsic to the placement.  The candidate scan rejects it,
  // but the forced-placement path used to commit it anyway.
  const std::uint64_t Seed = 10451216379200817325ULL;
  Rng R(Seed);
  int Rows = R.intIn(1, 2);
  int Cols = R.intIn(2, 3);
  bool Torus = R.chance(0.5);
  int MaxHops = R.chance(0.25) ? -1 : R.intIn(1, 2);
  MachineModel M = cgraGrid(Rows, Cols, Torus, MaxHops);
  // splitmix64 finalizer, as used by the fuzzer to decorrelate streams.
  std::uint64_t X = Seed ^ 0xc62a;
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  X ^= X >> 31;
  CgraCorpusOptions LoopOpts;
  LoopOpts.MaxNodes = 8;
  Ddg G = generateRandomCgraLoop(M, X, LoopOpts);
  SlackOptions SlackOpts;
  SlackOpts.MaxTSlack = 4;
  SlackResult Sl = slackModuloSchedule(G, M, SlackOpts);
  if (Sl.found()) {
    VerifyResult V = verifySchedule(G, M, Sl.Schedule);
    EXPECT_TRUE(V.Ok) << "T=" << Sl.Schedule.T << ": " << V.Error;
  }
}

TEST(CgraEngines, RunTimeMappingIgnoresTopology) {
  // Run-time mapping has no static placement, so topology must not change
  // its answer: the same II as on the topology-free twin machine.
  MachineModel Grid = cgraGrid(2, 2);
  MachineModel Flat("flat");
  Flat.addFuType("PE", 4, ReservationTable::cleanPipelined(1));
  Flat.addVariant(0, ReservationTable::nonPipelined(2));
  CgraCorpusOptions COpts;
  COpts.NumLoops = 6;
  COpts.MaxNodes = 8;
  SchedulerOptions Opts;
  Opts.Mapping = MappingKind::RunTime;
  Opts.TimeLimitPerT = 1e9;
  Opts.NodeLimitPerT = 5000;
  Opts.MaxTSlack = 6;
  for (const Ddg &G : generateCgraCorpus(Grid, COpts)) {
    SchedulerResult OnGrid = scheduleLoop(G, Grid, Opts);
    SchedulerResult OnFlat = scheduleLoop(G, Flat, Opts);
    ASSERT_EQ(OnGrid.found(), OnFlat.found()) << G.name();
    if (OnGrid.found()) {
      EXPECT_EQ(OnGrid.Schedule.T, OnFlat.Schedule.T) << G.name();
    }
  }
}
