//===- test_topology.cpp - Placement topology, text format, verifier ------===//

#include "swp/core/Verifier.h"
#include "swp/machine/Catalog.h"
#include "swp/machine/MachineModel.h"
#include "swp/machine/Topology.h"
#include "swp/service/Fingerprint.h"
#include "swp/sim/DynamicSimulator.h"
#include "swp/textio/Parser.h"

#include <gtest/gtest.h>

using namespace swp;

namespace {

/// Directed line u0 -> u1 -> u2.
Topology lineTopo() {
  Topology T(3);
  T.addEdge(0, 1);
  T.addEdge(1, 2);
  return T;
}

/// Single-type 3-unit machine over a directed line.
MachineModel lineMachine() {
  MachineModel M("line");
  M.addFuType("PE", 3, ReservationTable::cleanPipelined(1));
  M.setTopology(lineTopo());
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Topology core
//===----------------------------------------------------------------------===//

TEST(Topology, HopsAlongDirectedLine) {
  Topology T = lineTopo();
  EXPECT_EQ(T.hops(0, 0), 0);
  EXPECT_EQ(T.hops(0, 1), 1);
  EXPECT_EQ(T.hops(0, 2), 2);
  EXPECT_EQ(T.hops(2, 0), -1) << "edges are directed";
  EXPECT_TRUE(T.feedAllowed(0, 2));
  EXPECT_FALSE(T.feedAllowed(2, 0));
}

TEST(Topology, MaxHopsBoundsFeeding) {
  Topology T = lineTopo();
  T.setMaxHops(1);
  EXPECT_TRUE(T.feedAllowed(0, 1));
  EXPECT_FALSE(T.feedAllowed(0, 2));
  T.setMaxHops(-1);
  EXPECT_TRUE(T.feedAllowed(0, 2));
}

TEST(Topology, RoutePenaltyChargesIntermediateHops) {
  Topology T = lineTopo();
  T.setHopLatency(2);
  EXPECT_EQ(T.routePenalty(0, 0), 0);
  EXPECT_EQ(T.routePenalty(0, 1), 0) << "the final hop is the operand "
                                        "forward already paid for";
  EXPECT_EQ(T.routePenalty(0, 2), 2);
  EXPECT_EQ(T.maxRoutePenalty(), 2);
}

TEST(Topology, AddEdgeRejectsBadEdges) {
  Topology T(2);
  EXPECT_TRUE(T.addEdge(0, 1));
  EXPECT_FALSE(T.addEdge(0, 1)) << "duplicate";
  EXPECT_FALSE(T.addEdge(0, 0)) << "self-loop";
  EXPECT_FALSE(T.addEdge(0, 2)) << "out of range";
  EXPECT_FALSE(T.addEdge(-1, 1)) << "out of range";
  EXPECT_EQ(T.edges().size(), 1u);
}

TEST(Topology, FullyConnectedDoesNotConstrain) {
  Topology T(3);
  for (int U = 0; U < 3; ++U)
    for (int V = 0; V < 3; ++V)
      if (U != V)
        T.addEdge(U, V);
  EXPECT_FALSE(T.constrains());
  EXPECT_EQ(T.maxRoutePenalty(), 0);
  EXPECT_TRUE(lineTopo().constrains());
}

TEST(Topology, InterchangeClassesLineMirror) {
  // Bidirectional line 0 - 1 - 2: the endpoints are interchangeable, the
  // middle unit is alone.
  Topology T(3);
  T.addEdge(0, 1);
  T.addEdge(1, 0);
  T.addEdge(1, 2);
  T.addEdge(2, 1);
  std::vector<std::vector<int>> Classes = T.interchangeClasses(0, 3);
  ASSERT_EQ(Classes.size(), 2u);
  EXPECT_EQ(Classes[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(Classes[1], (std::vector<int>{1}));
}

TEST(Topology, InterchangeClassesDirectedLineAllSingletons) {
  std::vector<std::vector<int>> Classes = lineTopo().interchangeClasses(0, 3);
  EXPECT_EQ(Classes.size(), 3u) << "source/middle/sink play distinct roles";
}

TEST(Topology, RouteColumns) {
  EXPECT_TRUE(Topology::routeColumns(1, 0, 1).empty());
  EXPECT_TRUE(Topology::routeColumns(1, 1, 1).empty());
  EXPECT_EQ(Topology::routeColumns(1, 2, 1), (std::vector<int>{1}));
  EXPECT_EQ(Topology::routeColumns(2, 3, 2), (std::vector<int>{2, 4}));
}

TEST(Topology, NamesResolve) {
  Topology T(2);
  EXPECT_EQ(T.unitName(0), "u0");
  T.setName(0, "north");
  EXPECT_EQ(T.findUnit("north"), 0);
  EXPECT_EQ(T.findUnit("u0"), -1) << "renamed away";
  EXPECT_EQ(T.findUnit("u1"), 1);
}

TEST(MachineModel, TopologyConstrainsGate) {
  MachineModel Flat = exampleCleanMachine();
  EXPECT_EQ(Flat.topology(), nullptr);
  EXPECT_FALSE(Flat.topologyConstrains());
  EXPECT_TRUE(lineMachine().topologyConstrains());
  // A vacuous (fully connected) topology attaches but does not constrain.
  MachineModel M("m");
  M.addFuType("PE", 2, ReservationTable::cleanPipelined(1));
  Topology T(2);
  T.addEdge(0, 1);
  T.addEdge(1, 0);
  M.setTopology(std::move(T));
  EXPECT_NE(M.topology(), nullptr);
  EXPECT_FALSE(M.topologyConstrains());
}

//===----------------------------------------------------------------------===//
// Text format
//===----------------------------------------------------------------------===//

TEST(ParserTopology, GridExpandsToMesh) {
  Expected<MachineModel> M = parseMachineText("machine g\n"
                                              "futype PE count 6\n"
                                              "table 1\n"
                                              "grid 2 3 mesh\n"
                                              "maxhops 2\n");
  ASSERT_TRUE(M.ok()) << M.status().message();
  const Topology *T = M.value().topology();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->numUnits(), 6);
  // 2x3 mesh: 4 horizontal + 3 vertical undirected links, both directions.
  EXPECT_EQ(T->edges().size(), 14u);
  EXPECT_EQ(T->findUnit("pe_1_2"), 5);
  EXPECT_EQ(T->maxHops(), 2);
  EXPECT_TRUE(T->constrains());
}

TEST(ParserTopology, TorusWrapsAround) {
  Expected<MachineModel> M = parseMachineText("machine g\n"
                                              "futype PE count 9\n"
                                              "table 1\n"
                                              "grid 3 3 torus\n");
  ASSERT_TRUE(M.ok()) << M.status().message();
  const Topology *T = M.value().topology();
  ASSERT_NE(T, nullptr);
  // Every unit has out-degree 4 on a 3x3 torus.
  EXPECT_EQ(T->edges().size(), 36u);
  EXPECT_TRUE(T->hasEdge(T->findUnit("pe_0_0"), T->findUnit("pe_0_2")));
  EXPECT_TRUE(T->hasEdge(T->findUnit("pe_0_0"), T->findUnit("pe_2_0")));
}

TEST(ParserTopology, ExplicitEdgesAndNames) {
  Expected<MachineModel> M = parseMachineText("machine m\n"
                                              "futype PE count 2\n"
                                              "table 1\n"
                                              "instname 0 left\n"
                                              "instname 1 right\n"
                                              "hoplatency 2\n"
                                              "edge left right\n"
                                              "edge 1 0\n");
  ASSERT_TRUE(M.ok()) << M.status().message();
  const Topology *T = M.value().topology();
  ASSERT_NE(T, nullptr);
  EXPECT_EQ(T->hopLatency(), 2);
  EXPECT_TRUE(T->hasEdge(0, 1));
  EXPECT_TRUE(T->hasEdge(1, 0));
}

TEST(ParserTopology, PrintedMachineRoundTrips) {
  MachineModel M = cgraGrid(3, 3, /*Torus=*/false, /*MaxHops=*/2);
  std::string Text = printMachine(M);
  Expected<MachineModel> Back = parseMachineText(Text);
  ASSERT_TRUE(Back.ok()) << Back.status().message();
  EXPECT_EQ(fingerprintMachine(M), fingerprintMachine(Back.value()));
  EXPECT_EQ(printMachine(Back.value()), Text) << "print is a fixed point";
  ASSERT_NE(Back.value().topology(), nullptr);
  EXPECT_EQ(Back.value().topology()->unitName(4), "pe_1_1");
}

TEST(ParserTopology, LineNumberedErrors) {
  MachineModel Out;
  std::string Err;

  // Grid size mismatch, with the line number of the offending directive.
  EXPECT_FALSE(parseMachine("machine m\nfutype PE count 2\ntable 1\n"
                            "grid 2 2\n",
                            Out, Err));
  EXPECT_NE(Err.find("line 4"), std::string::npos) << Err;
  EXPECT_NE(Err.find("needs 4 units"), std::string::npos) << Err;

  // Duplicate edge.
  EXPECT_FALSE(parseMachine("machine m\nfutype PE count 2\ntable 1\n"
                            "edge 0 1\nedge 0 1\n",
                            Out, Err));
  EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
  EXPECT_NE(Err.find("duplicate topology edge"), std::string::npos) << Err;

  // Out-of-range instance index.
  EXPECT_FALSE(parseMachine("machine m\nfutype PE count 2\ntable 1\n"
                            "edge 0 7\n",
                            Out, Err));
  EXPECT_NE(Err.find("line 4"), std::string::npos) << Err;
  EXPECT_NE(Err.find("unknown unit '7'"), std::string::npos) << Err;

  // Self-loop.
  EXPECT_FALSE(parseMachine("machine m\nfutype PE count 2\ntable 1\n"
                            "edge 1 1\n",
                            Out, Err));
  EXPECT_NE(Err.find("self-loop"), std::string::npos) << Err;

  // futype after a topology directive would invalidate unit indices.
  EXPECT_FALSE(parseMachine("machine m\nfutype PE count 2\ntable 1\n"
                            "edge 0 1\nfutype X count 1\ntable 1\n",
                            Out, Err));
  EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
  EXPECT_NE(Err.find("futype after topology"), std::string::npos) << Err;

  // grid must come before hand-written topology directives.
  EXPECT_FALSE(parseMachine("machine m\nfutype PE count 4\ntable 1\n"
                            "edge 0 1\ngrid 2 2\n",
                            Out, Err));
  EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
  EXPECT_NE(Err.find("first topology directive"), std::string::npos) << Err;

  // Bad scalar directives.
  EXPECT_FALSE(parseMachine("machine m\nfutype PE count 2\ntable 1\n"
                            "hoplatency 0\n",
                            Out, Err));
  EXPECT_NE(Err.find("hoplatency"), std::string::npos) << Err;
  EXPECT_FALSE(parseMachine("machine m\nfutype PE count 2\ntable 1\n"
                            "maxhops -2\n",
                            Out, Err));
  EXPECT_NE(Err.find("maxhops"), std::string::npos) << Err;

  // instname clash and out-of-range unit.
  EXPECT_FALSE(parseMachine("machine m\nfutype PE count 2\ntable 1\n"
                            "instname 0 a\ninstname 1 a\n",
                            Out, Err));
  EXPECT_NE(Err.find("line 5"), std::string::npos) << Err;
  EXPECT_FALSE(parseMachine("machine m\nfutype PE count 2\ntable 1\n"
                            "instname 9 far\n",
                            Out, Err));
  EXPECT_NE(Err.find("line 4"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Verifier and simulator
//===----------------------------------------------------------------------===//

TEST(VerifierTopology, AcceptsRoutedSchedule) {
  MachineModel M = lineMachine();
  Ddg G("g");
  G.addNode("a", 0, 1);
  G.addNode("b", 0, 1);
  G.addEdge(0, 1, 0);
  ModuloSchedule S;
  S.T = 3;
  S.StartTime = {0, 2};    // rho(2 hops) = 1, so b must start >= 0 + 1 + 1.
  S.Mapping = {0, 2};      // a on u0, b on u2: 2 hops.
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_TRUE(V.Ok) << V.Error;
  std::string SimErr;
  EXPECT_TRUE(replaySchedule(G, M, S, 4, &SimErr)) << SimErr;
}

TEST(VerifierTopology, RejectsUnreachablePlacement) {
  MachineModel M = lineMachine();
  Ddg G("g");
  G.addNode("a", 0, 1);
  G.addNode("b", 0, 1);
  G.addEdge(0, 1, 0);
  ModuloSchedule S;
  S.T = 3;
  S.StartTime = {0, 2};
  S.Mapping = {2, 0}; // u2 cannot reach u0 on the directed line.
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("topology forbids"), std::string::npos) << V.Error;
}

TEST(VerifierTopology, RejectsMissingRoutePenalty) {
  MachineModel M = lineMachine();
  Ddg G("g");
  G.addNode("a", 0, 1);
  G.addNode("b", 0, 1);
  G.addEdge(0, 1, 0);
  ModuloSchedule S;
  S.T = 3;
  S.StartTime = {0, 1}; // Satisfies L = 1 but not L + rho = 2.
  S.Mapping = {0, 2};
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("routed dependence"), std::string::npos) << V.Error;
}

TEST(VerifierTopology, RejectsMaxHopsViolation) {
  MachineModel M("line");
  M.addFuType("PE", 3, ReservationTable::cleanPipelined(1));
  Topology T = lineTopo();
  T.setMaxHops(1);
  M.setTopology(std::move(T));
  Ddg G("g");
  G.addNode("a", 0, 1);
  G.addNode("b", 0, 1);
  G.addEdge(0, 1, 0);
  ModuloSchedule S;
  S.T = 3;
  S.StartTime = {0, 2};
  S.Mapping = {0, 2};
  EXPECT_FALSE(verifySchedule(G, M, S).Ok);
}

TEST(VerifierTopology, RejectsRouteCellCollision) {
  // Fork: u0 -> u1, then u1 -> {u2, u3}.  Two 2-hop values leaving the
  // same producer occupy the same ROUTE cell on its unit.
  MachineModel M("fork");
  M.addFuType("PE", 4, ReservationTable::cleanPipelined(1));
  Topology T(4);
  T.addEdge(0, 1);
  T.addEdge(1, 2);
  T.addEdge(1, 3);
  M.setTopology(std::move(T));
  Ddg G("g");
  G.addNode("a", 0, 1);
  G.addNode("x", 0, 1);
  G.addNode("y", 0, 1);
  G.addEdge(0, 1, 0);
  G.addEdge(0, 2, 0);
  ModuloSchedule S;
  S.T = 4;
  S.StartTime = {0, 2, 2};
  S.Mapping = {0, 2, 3};
  VerifyResult V = verifySchedule(G, M, S);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("route cells collide"), std::string::npos)
      << V.Error;
}

//===----------------------------------------------------------------------===//
// Fingerprint stability
//===----------------------------------------------------------------------===//

TEST(FingerprintTopology, LegacyMachinesBitIdentical) {
  // Pinned pre-topology fingerprints: the topology generalization must not
  // perturb any existing machine's byte stream (cache keys survive).
  struct Pin {
    const char *Name;
    std::uint64_t Hi, Lo;
  };
  const Pin Pins[] = {
      {"example-clean", 0x2cf54cac275e0a7dULL, 0x92594df53b13e35fULL},
      {"example-nonpipelined", 0x7c9d7f10d32a2c95ULL, 0x023d27fd344e10f5ULL},
      {"example-two-fp", 0x7c9d7f10d32a2c95ULL, 0x023d27fd344e10f5ULL},
      {"example-hazard", 0xa658e1681b517690ULL, 0x3b8fc891fdf89eecULL},
      {"ppc604-like", 0x8fb776ff929e3ab6ULL, 0x82170c6250a1cd08ULL},
      {"clean-vliw", 0xdc0a3c8e4776c88fULL, 0x5bdb1686061fe511ULL},
      {"ppc604-multifunction", 0x4e1b3ffb35881efcULL, 0x5558eb16222d39c5ULL},
  };
  for (const Pin &P : Pins) {
    MachineModel M("x");
    ASSERT_TRUE(buildCatalogMachine(P.Name, M)) << P.Name;
    Fingerprint F = fingerprintMachine(M);
    EXPECT_EQ(F.Hi, P.Hi) << P.Name;
    EXPECT_EQ(F.Lo, P.Lo) << P.Name;
  }
}

TEST(FingerprintTopology, TopologyChangesFingerprint) {
  MachineModel Flat("m");
  Flat.addFuType("PE", 4, ReservationTable::cleanPipelined(1));
  MachineModel WithTopo = Flat;
  Topology T(4);
  T.addEdge(0, 1);
  WithTopo.setTopology(std::move(T));
  EXPECT_NE(fingerprintMachine(Flat), fingerprintMachine(WithTopo));
  // Different interconnects hash differently too.  (2x2 would not do:
  // a width-2 torus wrap reaches the same neighbor as the mesh link.)
  EXPECT_NE(fingerprintMachine(cgraGrid(3, 3, false)),
            fingerprintMachine(cgraGrid(3, 3, true)));
}
