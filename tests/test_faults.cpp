//===- test_faults.cpp - Failure-domain tests -----------------------------===//
//
// The fault injector itself (spec parsing, deterministic firing, counters),
// typed Status propagation out of the solver stack, and the service-level
// guarantees under injected faults: the watchdog retries transient
// failures, the fallback ladder degrades to a verified heuristic schedule,
// faulted results are never cached and never claim censored-proof
// optimality, and every job gets an explicit answer — found-and-verified
// or unfound-with-evidence — no matter which sites fire.
//
// Every test disarms the injector on both ends: the singleton is process
// wide and these tests share one binary.
//
//===----------------------------------------------------------------------===//

#include "swp/core/Driver.h"
#include "swp/core/Verifier.h"
#include "swp/ddg/Analysis.h"
#include "swp/machine/Catalog.h"
#include "swp/service/SchedulerService.h"
#include "swp/service/ThreadPool.h"
#include "swp/support/FaultInjector.h"
#include "swp/support/Status.h"
#include "swp/workload/Corpus.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

using namespace swp;

namespace {

/// RAII disarm so a failing test cannot leak an armed injector into its
/// neighbors.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::instance().reset(); }
};

SchedulerOptions fastOptions() {
  SchedulerOptions Opts;
  Opts.TimeLimitPerT = 1e9; // Only deterministic limits.
  Opts.NodeLimitPerT = 250; // Every node is an LP solve: keep it cheap.
  Opts.MaxTSlack = 4;
  return Opts;
}

} // namespace

//===----------------------------------------------------------------------===//
// Status
//===----------------------------------------------------------------------===//

TEST(Status, DefaultIsOkAndRendersContext) {
  Status Ok;
  EXPECT_TRUE(Ok.isOk());
  EXPECT_EQ(Ok.str(), "ok");

  Status E = Status(StatusCode::SolverStall, "pivot limit")
                 .withPhase("milp")
                 .withT(7)
                 .withInstance("daxpy");
  EXPECT_FALSE(E.isOk());
  EXPECT_EQ(E.code(), StatusCode::SolverStall);
  std::string S = E.str();
  EXPECT_NE(S.find("solver-stall"), std::string::npos);
  EXPECT_NE(S.find("pivot limit"), std::string::npos);
  EXPECT_NE(S.find("phase=milp"), std::string::npos);
  EXPECT_NE(S.find("T=7"), std::string::npos);
  EXPECT_NE(S.find("instance=daxpy"), std::string::npos);
}

TEST(Status, ExpectedHoldsValueOrError) {
  Expected<int> V(42);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, 42);
  Expected<int> E(Status(StatusCode::Internal, "boom"));
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.status().code(), StatusCode::Internal);
}

//===----------------------------------------------------------------------===//
// FaultInjector
//===----------------------------------------------------------------------===//

TEST(FaultInjector, SpecParsingAndDisarm) {
  InjectorGuard Guard;
  FaultInjector &FI = FaultInjector::instance();
  std::string Err;
  EXPECT_TRUE(FI.configure("lp-stall:2,bnb-node:p0.5", 1, &Err)) << Err;
  EXPECT_TRUE(FI.armed());
  EXPECT_TRUE(FI.configure("", 0, &Err)) << "empty spec disarms";
  EXPECT_FALSE(FI.armed());
  EXPECT_FALSE(FI.configure("no-such-site:1", 0, &Err));
  EXPECT_FALSE(FI.armed()) << "bad spec leaves the injector disarmed";
  EXPECT_FALSE(FI.configure("lp-stall", 0, &Err)) << "missing count";
  EXPECT_FALSE(FI.configure("lp-stall:pzz", 0, &Err)) << "bad probability";
}

TEST(FaultInjector, CountedBudgetFiresExactly) {
  InjectorGuard Guard;
  FaultInjector &FI = FaultInjector::instance();
  ASSERT_TRUE(FI.configure("cache-insert:2", 0, nullptr));
  EXPECT_TRUE(FI.shouldFire(FaultSite::CacheInsert));
  EXPECT_TRUE(FI.shouldFire(FaultSite::CacheInsert));
  EXPECT_FALSE(FI.shouldFire(FaultSite::CacheInsert));
  EXPECT_FALSE(FI.shouldFire(FaultSite::LpStall)) << "other sites disarmed";
  EXPECT_EQ(FI.fired(FaultSite::CacheInsert), 2u);
  EXPECT_EQ(FI.totalFired(), 2u);
  FI.reset();
  EXPECT_FALSE(FI.armed());
  EXPECT_EQ(FI.totalFired(), 0u);
  EXPECT_FALSE(FI.shouldFire(FaultSite::CacheInsert));
}

TEST(FaultInjector, ProbabilisticFiringIsSeedDeterministic) {
  InjectorGuard Guard;
  FaultInjector &FI = FaultInjector::instance();
  auto Sample = [&FI](std::uint64_t Seed) {
    EXPECT_TRUE(FI.configure("bnb-node:p0.5", Seed, nullptr));
    std::vector<bool> Fires;
    for (int I = 0; I < 200; ++I)
      Fires.push_back(FI.shouldFire(FaultSite::BnbNode));
    return Fires;
  };
  std::vector<bool> A = Sample(42);
  std::vector<bool> B = Sample(42);
  EXPECT_EQ(A, B) << "same seed, same per-poll decisions";
  std::vector<bool> C = Sample(43);
  EXPECT_NE(A, C) << "different seed, different stream";
  int Fired = static_cast<int>(std::count(A.begin(), A.end(), true));
  EXPECT_GT(Fired, 50) << "p=0.5 over 200 polls";
  EXPECT_LT(Fired, 150);
}

//===----------------------------------------------------------------------===//
// Solver and driver under injected faults
//===----------------------------------------------------------------------===//

TEST(DriverFaults, LpStallCensorsEveryAttempt) {
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 11, {});
  ASSERT_TRUE(FaultInjector::instance().configure("lp-stall:p1.0", 5,
                                                  nullptr));
  SchedulerResult R = scheduleLoop(G, M, fastOptions());
  FaultInjector::instance().reset();
  EXPECT_FALSE(R.found()) << "every LP stalls, nothing can be extracted";
  EXPECT_FALSE(R.ProvenRateOptimal);
  EXPECT_TRUE(R.FaultsSeen);
  ASSERT_FALSE(R.Attempts.empty());
  for (const TAttempt &A : R.Attempts)
    if (!A.ModuloSkipped) {
      EXPECT_EQ(A.Status, MilpStatus::Unknown);
      EXPECT_EQ(A.StopReason, SearchStop::LpStall);
    }
  EXPECT_NE(R.stopChain().find("lp-stall"), std::string::npos);
}

TEST(DriverFaults, RefactorFaultNeverProvesOptimality) {
  // A failing basis factorization (singular/overflowing LU in a real
  // code) must degrade every solve to a censoring status: no schedule is
  // extracted from a faulted basis and no rate-optimality claim survives.
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  // Seed 22 is a 20-node loop whose solve chain genuinely refactorizes
  // (the eta file crosses the rebuild interval) and is proven clean — so
  // the fault below actually fires and the downgrade it forces is real.
  Ddg G = generateRandomLoop(M, 22, {});
  SchedulerResult Clean = scheduleLoop(G, M, fastOptions());
  ASSERT_TRUE(Clean.ProvenRateOptimal);
  ASSERT_GT(Clean.TotalLp.Refactorizations, 0);

  ASSERT_TRUE(FaultInjector::instance().configure("lp-refactor:p1.0", 5,
                                                  nullptr));
  SchedulerResult R = scheduleLoop(G, M, fastOptions());
  FaultInjector::instance().reset();
  EXPECT_TRUE(R.FaultsSeen);
  EXPECT_FALSE(R.ProvenRateOptimal)
      << "a rate-optimality proof survived a poisoned basis";
  EXPECT_FALSE(R.VerifyFailed);
  // Once the eta file crosses the rebuild interval the workspace is
  // poisoned for good under p1.0: the attempt where that happened must be
  // censored, not silently completed.
  bool AnyCensored = false;
  for (const TAttempt &A : R.Attempts)
    AnyCensored = AnyCensored || A.StopReason != SearchStop::None;
  EXPECT_TRUE(AnyCensored) << R.stopChain();
}

TEST(DriverFaults, SpuriousInfeasibilityNeverProvesOptimality) {
  // The fault-soundness core: an injected "infeasible" must never enter a
  // rate-optimality proof, with or without the LP-rounding probe.
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 11, {});
  for (bool Probe : {true, false}) {
    ASSERT_TRUE(FaultInjector::instance().configure("lp-infeasible:p1.0", 5,
                                                    nullptr));
    SchedulerOptions Opts = fastOptions();
    Opts.LpRoundingProbe = Probe;
    SchedulerResult R = scheduleLoop(G, M, Opts);
    FaultInjector::instance().reset();
    EXPECT_FALSE(R.ProvenRateOptimal) << "probe=" << Probe;
    EXPECT_TRUE(R.FaultsSeen) << "probe=" << Probe;
    for (const TAttempt &A : R.Attempts)
      if (!A.ModuloSkipped) {
        EXPECT_NE(A.Status, MilpStatus::Infeasible)
            << "probe=" << Probe
            << ": a faulted infeasibility survived as proof at T=" << A.T;
        EXPECT_EQ(A.StopReason, SearchStop::Fault) << "probe=" << Probe;
      }
  }
}

TEST(DriverFaults, BnbNodeFaultSurfacesTypedError) {
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 11, {});
  int T = std::max({1, recurrenceMii(G), M.resourceMii(G)});
  while (!M.moduloFeasible(G, T))
    ++T;
  ASSERT_TRUE(FaultInjector::instance().configure("bnb-node:1", 0, nullptr));
  SchedulerOptions Opts = fastOptions();
  Opts.LpRoundingProbe = false;
  ModuloSchedule Out;
  SearchStop Stop = SearchStop::None;
  Status Error;
  MilpStatus St =
      scheduleAtT(G, M, T, Opts, Out, nullptr, nullptr, &Stop, &Error);
  FaultInjector::instance().reset();
  EXPECT_EQ(St, MilpStatus::Error);
  EXPECT_EQ(Stop, SearchStop::Fault);
  EXPECT_EQ(Error.code(), StatusCode::FaultInjected);
  EXPECT_EQ(Error.phase(), "milp");
  EXPECT_EQ(Error.t(), T);
}

TEST(DriverFaults, AllocFaultReportsResourceExhausted) {
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 11, {});
  ASSERT_TRUE(FaultInjector::instance().configure("alloc:1", 0, nullptr));
  ModuloSchedule Out;
  SearchStop Stop = SearchStop::None;
  Status Error;
  MilpStatus St = scheduleAtT(G, M, 64, fastOptions(), Out, nullptr, nullptr,
                              &Stop, &Error);
  FaultInjector::instance().reset();
  EXPECT_EQ(St, MilpStatus::Error);
  EXPECT_EQ(Stop, SearchStop::Fault);
  EXPECT_EQ(Error.code(), StatusCode::ResourceExhausted);
  EXPECT_EQ(Error.phase(), "model-build");
}

TEST(DriverFaults, InvalidInputIsTypedWithoutInjection) {
  MachineModel M = ppc604Like();
  Ddg Cyclic;
  Cyclic.addNode("a", 0, 1);
  Cyclic.addNode("b", 0, 1);
  Cyclic.addEdge(0, 1, 0);
  Cyclic.addEdge(1, 0, 0); // Zero-distance cycle: malformed.
  SchedulerResult R = scheduleLoop(Cyclic, M, fastOptions());
  EXPECT_FALSE(R.found());
  EXPECT_EQ(R.Error.code(), StatusCode::InvalidInput);
  EXPECT_FALSE(R.FaultsSeen) << "a bad input is not a fault";
  EXPECT_TRUE(R.Attempts.empty());

  ModuloSchedule Out;
  Status Error;
  Ddg G = generateRandomLoop(M, 11, {});
  EXPECT_EQ(scheduleAtT(G, M, 0, fastOptions(), Out, nullptr, nullptr,
                        nullptr, &Error),
            MilpStatus::Error)
      << "T below 1 is invalid";
  EXPECT_EQ(Error.code(), StatusCode::InvalidInput);
}

//===----------------------------------------------------------------------===//
// Thread pool and cache under injected faults
//===----------------------------------------------------------------------===//

TEST(PoolFaults, DispatchFaultRequeuesEveryJob) {
  InjectorGuard Guard;
  ASSERT_TRUE(FaultInjector::instance().configure("dispatch:3", 0, nullptr));
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(2);
    for (int I = 0; I < 50; ++I)
      Pool.enqueue([&Count] { Count.fetch_add(1); });
  }
  EXPECT_EQ(Count.load(), 50) << "requeued jobs still run exactly once";
  EXPECT_EQ(FaultInjector::instance().fired(FaultSite::Dispatch), 3u);
}

TEST(PoolFaults, PermanentDispatchFaultIsBounded) {
  // p=1.0 would live-lock an unbounded requeue; MaxRequeues caps it and
  // the job still runs.
  InjectorGuard Guard;
  ASSERT_TRUE(
      FaultInjector::instance().configure("dispatch:p1.0", 0, nullptr));
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(1);
    std::uint64_t Before = Pool.dispatchFaults();
    for (int I = 0; I < 4; ++I)
      Pool.enqueue([&Count] { Count.fetch_add(1); });
    (void)Before;
  }
  FaultInjector::instance().reset();
  EXPECT_EQ(Count.load(), 4);
}

TEST(CacheFaults, FaultedResultsAreNeverCached) {
  InjectorGuard Guard;
  ResultCache Cache;
  Fingerprint Key{9, 9};

  // A result stamped FaultsSeen is refused even with the injector off.
  SchedulerResult Tainted;
  Tainted.TLowerBound = 3;
  Tainted.FaultsSeen = true;
  Cache.insert(Key, Tainted);
  SchedulerResult Out;
  EXPECT_FALSE(Cache.lookup(Key, Out));

  // While any site is armed, every insert is skipped (the solve cannot be
  // trusted), and the cache-insert site itself drops writes and counts.
  ASSERT_TRUE(
      FaultInjector::instance().configure("cache-insert:1", 0, nullptr));
  SchedulerResult Clean;
  Clean.TLowerBound = 4;
  Cache.insert(Key, Clean);
  EXPECT_FALSE(Cache.lookup(Key, Out));
  EXPECT_EQ(FaultInjector::instance().fired(FaultSite::CacheInsert), 1u);
  Cache.insert(Key, Clean);
  EXPECT_FALSE(Cache.lookup(Key, Out)) << "armed injector blocks caching";
  FaultInjector::instance().reset();

  Cache.insert(Key, Clean);
  ASSERT_TRUE(Cache.lookup(Key, Out)) << "disarmed: caching resumes";
  EXPECT_EQ(Out.TLowerBound, 4);
}

//===----------------------------------------------------------------------===//
// Service guarantees
//===----------------------------------------------------------------------===//

TEST(ServiceFaults, WatchdogRetriesTransientAllocFailure) {
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 21, {});
  // Budget 5 = one full solve window (MaxTSlack 4): the first watchdog
  // attempt fails every T with ResourceExhausted, the retry runs clean.
  ASSERT_TRUE(FaultInjector::instance().configure("alloc:5", 0, nullptr));
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 1;
  SvcOpts.Sched = fastOptions();
  SvcOpts.WatchdogRetries = 2;
  SvcOpts.RetryBackoff = 1e-4;
  SchedulerService Svc(M, SvcOpts);
  SchedulerResult R = Svc.submit(G).get();
  FaultInjector::instance().reset();
  ASSERT_TRUE(R.found()) << R.Error.str() << "; " << R.stopChain();
  EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
  EXPECT_GE(R.Retries, 1);
  EXPECT_EQ(R.Fallback, FallbackRung::None)
      << "the retry answered; no ladder needed";
  ServiceStats Stats = Svc.stats();
  EXPECT_GE(Stats.WatchdogRetries, 1u);
  EXPECT_GE(Stats.FaultedJobs, 1u);
}

TEST(ServiceFaults, SpuriousDeadlineIsRetriedNotReported) {
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 22, {});
  ASSERT_TRUE(FaultInjector::instance().configure("deadline:1", 0, nullptr));
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 1;
  SvcOpts.Sched = fastOptions();
  SvcOpts.RetryBackoff = 1e-4;
  SchedulerService Svc(M, SvcOpts);
  SchedulerResult R = Svc.submit(G).get();
  FaultInjector::instance().reset();
  ASSERT_TRUE(R.found()) << R.Error.str() << "; " << R.stopChain();
  EXPECT_FALSE(R.Cancelled) << "the injected expiry must not leak out";
  EXPECT_GE(R.Retries, 1);
}

TEST(ServiceFaults, FallbackLadderAnswersWhenIlpIsDead) {
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 23, {});
  // Every LP stalls forever: the ILP can neither find nor prove anything,
  // retries included.  The ladder must still produce a verified schedule.
  ASSERT_TRUE(
      FaultInjector::instance().configure("lp-stall:p1.0", 7, nullptr));
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 1;
  SvcOpts.Sched = fastOptions();
  SvcOpts.WatchdogRetries = 0;
  SchedulerService Svc(M, SvcOpts);
  SchedulerResult R = Svc.submit(G).get();
  FaultInjector::instance().reset();
  ASSERT_TRUE(R.found()) << "ladder must answer: " << R.stopChain();
  EXPECT_NE(R.Fallback, FallbackRung::None);
  EXPECT_TRUE(verifySchedule(G, M, R.Schedule).Ok);
  // A rung schedule may still be proven rate-optimal, but only by sitting
  // on the fault-free combinatorial lower bound — never via the (dead)
  // ILP's infeasibility chain.
  EXPECT_TRUE(!R.ProvenRateOptimal || R.Schedule.T == R.TLowerBound)
      << "optimality claimed without evidence";
  ServiceStats Stats = Svc.stats();
  EXPECT_GE(Stats.FallbackSlackWins + Stats.FallbackImsWins, 1u);
  EXPECT_GE(Stats.FaultedJobs, 1u);
}

TEST(ServiceFaults, EveryJobGetsAnExplicitAnswerUnderHeavyFaults) {
  // The umbrella guarantee: with every site firing probabilistically, each
  // job still resolves to a verified schedule or an unfound result whose
  // stop chain / typed error explains why.  Never a hang, never a silent
  // empty result.
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  CorpusOptions CO;
  CO.NumLoops = 12;
  std::vector<Ddg> Corpus = generateCorpus(M, CO);
  ASSERT_TRUE(FaultInjector::instance().configure(
      "lp-stall:p0.05,lp-infeasible:p0.05,bnb-node:p0.02,alloc:p0.02,"
      "dispatch:p0.05,cache-insert:p0.5,deadline:2",
      13, nullptr));
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 4;
  SvcOpts.Sched = fastOptions();
  SvcOpts.RetryBackoff = 1e-4;
  SchedulerService Svc(M, SvcOpts);
  std::vector<SchedulerResult> Results = Svc.scheduleAll(Corpus);
  FaultInjector::instance().reset();
  ASSERT_EQ(Results.size(), Corpus.size());
  for (size_t I = 0; I < Results.size(); ++I) {
    const SchedulerResult &R = Results[I];
    if (R.found()) {
      EXPECT_TRUE(verifySchedule(Corpus[I], M, R.Schedule).Ok)
          << Corpus[I].name();
    } else {
      EXPECT_TRUE(R.Cancelled || !R.Error.isOk() || !R.Attempts.empty())
          << Corpus[I].name() << ": unexplained empty result";
      EXPECT_FALSE(R.stopChain().empty()) << Corpus[I].name();
    }
    if (R.ProvenRateOptimal) {
      // A proof under faults is only sound when backed by evidence: the
      // schedule sits on the fault-free lower bound, or every smaller T
      // carries an uncensored infeasibility proof.
      bool OnBound = R.Schedule.T == R.TLowerBound && R.TLowerBound > 0;
      bool ChainClean = true;
      for (const TAttempt &A : R.Attempts)
        if (A.T < R.Schedule.T && !A.ModuloSkipped)
          ChainClean = ChainClean && A.Status == MilpStatus::Infeasible &&
                       A.StopReason == SearchStop::None;
      EXPECT_TRUE(OnBound || ChainClean)
          << Corpus[I].name() << ": unsupported proof claim";
    }
  }
  EXPECT_EQ(Svc.stats().Completed, Corpus.size());
}

TEST(ServiceFaults, FaultedSolvesAreNotServedFromCache) {
  InjectorGuard Guard;
  MachineModel M = ppc604Like();
  Ddg G = generateRandomLoop(M, 24, {});
  ServiceOptions SvcOpts;
  SvcOpts.Jobs = 1;
  SvcOpts.Sched = fastOptions();
  SvcOpts.WatchdogRetries = 0;
  SchedulerService Svc(M, SvcOpts);

  // First submission solves under injected stalls -> ladder answer, not
  // cacheable.
  ASSERT_TRUE(
      FaultInjector::instance().configure("lp-stall:p1.0", 7, nullptr));
  SchedulerResult Faulted = Svc.submit(G).get();
  FaultInjector::instance().reset();
  EXPECT_TRUE(Faulted.FaultsSeen);

  // Second submission must re-solve cleanly (no cache hit) and improve on
  // the degraded answer's provenance.
  SchedulerResult Clean = Svc.submit(G).get();
  EXPECT_EQ(Svc.stats().CacheHits, 0u)
      << "a faulted result must not satisfy later lookups";
  EXPECT_EQ(Clean.Fallback, FallbackRung::None);
  EXPECT_FALSE(Clean.FaultsSeen);
  if (Clean.found() && Faulted.found()) {
    EXPECT_LE(Clean.Schedule.T, Faulted.Schedule.T)
        << "the clean ILP answer can only be better";
  }
}
