//===- swp/workload/Kernels.h - Hand-written loop kernels -------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written DDGs: the paper's Section 2 motivating example and a set of
/// classic kernels (livermore / linpack style) for the PPC604-like machine —
/// standing in for the DDGs the authors extracted with their compiler
/// (see DESIGN.md's substitution table).
///
/// OpClass conventions: motivatingLoop() targets the example machines
/// (0 = FP, 1 = LS); the classicKernels() target ppc604Like()
/// (0 = SCIU, 1 = MCIU, 2 = FPU, 3 = LSU, 4 = FDIV).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_WORKLOAD_KERNELS_H
#define SWP_WORKLOAD_KERNELS_H

#include "swp/ddg/Ddg.h"

#include <vector>

namespace swp {

/// The paper's 6-instruction motivating loop (i0..i5): a Load/Store chain
/// feeding three FP operations with a self-recurrence on i2 (T_dep = 2).
/// Reconstructed so that the ASAP schedule is t = [0,1,3,5,7,11], matching
/// every number visible in the paper's text (DESIGN.md Section 4).
Ddg motivatingLoop();

/// Three independent FP operations (plus a Load/Store producer/consumer
/// pair) — the Schedule A instance: at T = 3 on two non-pipelined FP units
/// capacity holds but no fixed mapping exists (a circular-arc 3-clique).
Ddg scheduleALoop();

/// Classic kernels for ppc604Like(); every DDG is well-formed for that
/// machine's five op classes.
std::vector<Ddg> classicKernels();

} // namespace swp

#endif // SWP_WORKLOAD_KERNELS_H
