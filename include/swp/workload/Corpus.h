//===- swp/workload/Corpus.h - Synthetic loop corpus ------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic DDG corpus standing in for the paper's 1066
/// loops from SPEC92 / NAS / linpack / livermore (DESIGN.md substitution
/// table).  The generator is calibrated to the paper's reported size
/// statistics: loops scheduled at T_lb had a mean of ~6 DDG nodes with a
/// tail of larger loops, and roughly 40% of real loops carry a recurrence.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_WORKLOAD_CORPUS_H
#define SWP_WORKLOAD_CORPUS_H

#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

#include <cstdint>
#include <vector>

namespace swp {

/// Corpus generation knobs (defaults reproduce the paper's setup).
struct CorpusOptions {
  /// The paper schedules 1066 loops.
  int NumLoops = 1066;
  /// Any change produces a different (but still deterministic) corpus.
  std::uint64_t Seed = 19950618;
  /// Mean loop size (nodes); the distribution is 3 + geometric.
  double MeanExtraNodes = 3.5;
  /// Hard cap on loop size.
  int MaxNodes = 24;
  /// Probability that a loop carries at least one recurrence.
  double RecurrenceProb = 0.45;
};

/// Generates the corpus for \p Machine (op classes and latencies follow the
/// ppc604Like() layout: SCIU, MCIU, FPU, LSU, FDIV).
std::vector<Ddg> generateCorpus(const MachineModel &Machine,
                                const CorpusOptions &Opts = {});

/// Generates a single random loop; exposed for property tests.
Ddg generateRandomLoop(const MachineModel &Machine, std::uint64_t Seed,
                       const CorpusOptions &Opts = {});

/// CGRA corpus knobs: dataflow kernels for a single-"PE"-type array
/// (cgraGrid machines).  All ops are class 0; a fraction use the
/// non-pipelined multiplier variant.
struct CgraCorpusOptions {
  int NumLoops = 64;
  std::uint64_t Seed = 20260807;
  double MeanExtraNodes = 4.0;
  int MaxNodes = 16;
  double RecurrenceProb = 0.4;
  /// Probability an op takes the multiplier path (cgraMulVariant()).
  double MulProb = 0.2;
};

/// Generates dataflow kernels for \p Machine (which must expose at least
/// one FU type; class 0 is used for every node).
std::vector<Ddg> generateCgraCorpus(const MachineModel &Machine,
                                    const CgraCorpusOptions &Opts = {});

/// Single CGRA kernel; exposed for property tests and the fuzzer.
Ddg generateRandomCgraLoop(const MachineModel &Machine, std::uint64_t Seed,
                           const CgraCorpusOptions &Opts = {});

} // namespace swp

#endif // SWP_WORKLOAD_CORPUS_H
