//===- swp/sat/SatScheduler.h - SAT-backed rate-optimal search --*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The second exact engine: the same rate-optimal search loop as
/// swp/core/Driver, but answering each candidate-T feasibility question
/// with the CDCL solver over the CnfEncoder's incremental encoding instead
/// of the MILP.  One SatScheduler keeps a single solver alive across
/// candidate periods, so conflict clauses learned while refuting T keep
/// pruning at T+1 (the incremental payoff the tests pin down).
///
/// Results reuse the MILP vocabulary (MilpStatus / SearchStop /
/// SchedulerResult) so the service, tools, and fuzz harness treat both
/// engines uniformly; TAttempt::Nodes carries SAT conflicts.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SAT_SATSCHEDULER_H
#define SWP_SAT_SATSCHEDULER_H

#include "swp/core/Driver.h"
#include "swp/sat/CdclSolver.h"
#include "swp/sat/CnfEncoder.h"

#include <cstdint>
#include <memory>

namespace swp {

/// Outcome of one candidate-T SAT solve.
struct SatAttempt {
  MilpStatus Status = MilpStatus::Unknown;
  SearchStop Stop = SearchStop::None;
  double Seconds = 0.0;
  /// CDCL conflicts spent on this attempt (the SAT analogue of nodes).
  std::int64_t Conflicts = 0;
  /// Lazy recurrence refinements (cycle-blocking clauses) this attempt.
  int CycleBlocks = 0;
  ModuloSchedule Schedule;
  swp::Status Error;
};

/// Incremental SAT engine for one (DDG, machine) instance.  Construct
/// once, then probe candidate periods in any order; state (including
/// learned clauses) persists across calls.  Borrows \p G and \p Machine.
class SatScheduler {
public:
  SatScheduler(const Ddg &G, const MachineModel &Machine,
               MappingKind Mapping = MappingKind::Fixed);
  ~SatScheduler();
  SatScheduler(const SatScheduler &) = delete;
  SatScheduler &operator=(const SatScheduler &) = delete;

  /// Decides feasibility of period \p T under the given budgets.
  /// Optimal = model found and decoded (first model, mirroring the MILP
  /// loop's stop-at-first-incumbent), Infeasible = proof, Unknown = budget
  /// or fault censored the answer (\c Stop says which), Error = invalid
  /// input or injected allocation death.
  SatAttempt solveAtT(int T, double TimeLimitSec = 1e18,
                      std::int64_t ConflictLimit = INT64_MAX,
                      CancellationToken Cancel = {});

  /// Lifetime solver counters (monotone across solveAtT calls).
  const SatStats &stats() const;

private:
  const Ddg &G;
  const MachineModel &Machine;
  MappingKind Mapping;
  bool Valid = false;
  std::unique_ptr<CdclSolver> Solver;
  std::unique_ptr<CnfEncoder> Encoder;
};

/// Runs the rate-optimal search for \p G on \p Machine with the SAT
/// engine; a drop-in sibling of scheduleLoop() (Opts.NodeLimitPerT bounds
/// conflicts per T; ColoringObjective / MinimizeBuffers / LpRoundingProbe
/// do not apply and are ignored).
SchedulerResult satScheduleLoop(const Ddg &G, const MachineModel &Machine,
                                const SchedulerOptions &Opts = {});

} // namespace swp

#endif // SWP_SAT_SATSCHEDULER_H
