//===- swp/sat/CdclSolver.h - Incremental CDCL SAT solver -------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A self-contained conflict-driven clause-learning SAT solver in the
/// MiniSat lineage: two-watched-literal unit propagation, VSIDS-style
/// variable activities with a decision heap, first-UIP clause learning,
/// Luby restarts, phase saving, and incremental solving under assumption
/// literals.  The scheduling encoder (CnfEncoder) keeps one instance alive
/// across candidate initiation intervals so clauses learned at period T
/// keep pruning the search at T+1.
///
/// Literals are MiniSat-coded ints: variable v as 2*v (positive) or 2*v+1
/// (negated).  Variables are created with newVar() and never removed; the
/// clause database only grows (scheduling instances are small enough that
/// clause-database reduction buys nothing).
///
/// The search cooperates with the rest of the failure domain: it polls a
/// CancellationToken, honours wall-clock and conflict budgets, and polls
/// FaultSite::SatConflict at every conflict so the fuzz harness can prove
/// an injected search death never turns into a fake infeasibility proof
/// (a faulted solve always reports Unknown/SatStop::Fault, never Unsat).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SAT_CDCLSOLVER_H
#define SWP_SAT_CDCLSOLVER_H

#include "swp/support/Cancellation.h"

#include <cstdint>
#include <vector>

namespace swp {

/// A MiniSat-coded literal: 2*var + (negated ? 1 : 0).
using SatLit = int;

inline SatLit mkLit(int Var, bool Neg = false) { return 2 * Var + (Neg ? 1 : 0); }
inline int litVar(SatLit L) { return L >> 1; }
inline bool litNeg(SatLit L) { return (L & 1) != 0; }
inline SatLit litNot(SatLit L) { return L ^ 1; }

/// Outcome of a solve() call.
enum class SatStatus {
  /// A model was found; read it back with modelValue().
  Sat,
  /// Proven unsatisfiable under the given assumptions.
  Unsat,
  /// A budget, cancellation, or injected fault stopped the search before a
  /// proof; lastStop() says which.
  Unknown,
};

/// Short lowercase name of \p S ("sat", "unsat", "unknown").
const char *satStatusName(SatStatus S);

/// Why a solve() returned Unknown (SatStop::None after Sat/Unsat).
enum class SatStop {
  None,
  TimeLimit,
  ConflictLimit,
  Cancelled,
  Fault,
};

/// Search budgets of one solve() call.
struct SatLimits {
  /// Wall-clock budget in seconds (polled every few hundred conflicts).
  double TimeLimitSec = 1e18;
  /// Conflict budget for this call.
  std::int64_t ConflictLimit = INT64_MAX;
  /// Cooperative cancellation, polled alongside the time limit.
  CancellationToken Cancel;
};

/// Lifetime counters (monotone across solve() calls; snapshot around a call
/// to get per-call numbers).
struct SatStats {
  std::int64_t Decisions = 0;
  std::int64_t Propagations = 0;
  std::int64_t Conflicts = 0;
  std::int64_t LearnedClauses = 0;
  std::int64_t LearnedLiterals = 0;
  std::int64_t Restarts = 0;
  std::int64_t InjectedFaults = 0;
};

/// The solver.  Not thread-safe; one instance per scheduling job.
class CdclSolver {
public:
  CdclSolver();
  ~CdclSolver();
  CdclSolver(const CdclSolver &) = delete;
  CdclSolver &operator=(const CdclSolver &) = delete;

  /// Creates a fresh variable; \returns its index.
  int newVar();

  int numVars() const { return NumVars; }
  int numClauses() const { return NumProblemClauses; }

  /// Adds a problem clause (empty clauses and level-0 conflicts make the
  /// instance globally unsat).  Duplicate and opposing literals are
  /// handled; \returns false when the database is already globally unsat.
  bool addClause(const std::vector<SatLit> &Lits);

  /// True when no level-0 contradiction has been derived yet.
  bool ok() const { return Ok; }

  /// Solves under \p Assumptions (all assumed true for this call only).
  SatStatus solve(const std::vector<SatLit> &Assumptions,
                  const SatLimits &Limits = {});

  /// Model value of \p Var after a Sat answer.
  bool modelValue(int Var) const {
    return Model[static_cast<std::size_t>(Var)] > 0;
  }

  /// What stopped the last solve() (SatStop::None unless it was Unknown).
  SatStop lastStop() const { return LastStop; }

  /// Suggests the first decision polarity of \p Var (phase saving seed).
  void setPolarity(int Var, bool Value);

  const SatStats &stats() const { return Stats; }

private:
  struct Impl;
  Impl *P;

  int NumVars = 0;
  int NumProblemClauses = 0;
  bool Ok = true;
  SatStop LastStop = SatStop::None;
  SatStats Stats;
  std::vector<std::int8_t> Model;
};

} // namespace swp

#endif // SWP_SAT_CDCLSOLVER_H
