//===- swp/sat/CnfEncoder.h - Scheduling-to-CNF encoder ---------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Translates the paper's candidate-T scheduling-and-mapping problem into
/// CNF over one long-lived CdclSolver, incrementally across candidate
/// initiation intervals (see DESIGN.md Section 10).
///
/// Variable layout:
///   a[t][i]  — instruction i initiates at pattern step t.  Rows are
///              created lazily as T grows and shared by every period; an
///              unguarded pairwise at-most-one over each column plus a
///              per-period guarded at-least-one over rows 0..T-1 yields
///              "exactly one offset in [0,T)" at the assumed period.
///   s_T      — selector (assumption) variable of period T.  Every
///              T-dependent clause carries the literal ~s_T, so it is
///              active only under the assumption s_T and retracts by
///              simply not assuming it; since s_T never occurs positively,
///              learned clauses stay sound at every other period.
///   c[i][u]  — one-hot color (physical unit) of instruction i, for FU
///              types with more ops than units.  Lexicographic symmetry
///              breaking: the Ix-th op of a type may only use colors
///              0..min(Ix, R-1), mirroring the ILP's variable bounds.
///   o[i][j]  — schedule-dependent overlap indicator per same-type pair,
///              shared across periods; its defining clauses
///              (~s_T | ~a[p][i] | ~a[q][j] | o_ij) are per-period, the
///              color-difference clauses (~o_ij | ~c[i][u] | ~c[j][u])
///              are unguarded.
///
/// Constraint blocks per period: dependence-window clauses for self-edges
/// and 2-cycles (eager, offset-pair enumeration), per-(type, stage, slot)
/// usage rows as guarded Sinz sequential-counter cardinality constraints,
/// and unit-collision clauses from reservation-table offset conflicts
/// (direct for single-unit types, via o_ij for colored types).  Longer
/// recurrence cycles are enforced lazily: the decoder completes the K
/// vector by Bellman-Ford and the scheduler blocks the offending cycle's
/// offset combination with a guarded clause when completion fails.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SAT_CNFENCODER_H
#define SWP_SAT_CNFENCODER_H

#include "swp/core/Formulation.h"
#include "swp/core/Schedule.h"
#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"
#include "swp/sat/CdclSolver.h"

#include <vector>

namespace swp {

/// Incremental CNF encoding of one (DDG, machine) scheduling instance.
/// Borrows \p G, \p Machine, and \p Solver; keep them alive.
class CnfEncoder {
public:
  CnfEncoder(const Ddg &G, const MachineModel &Machine, MappingKind Mapping,
             CdclSolver &Solver);

  /// True when period \p T is infeasible without any search: below the
  /// recurrence bound, a violated self-edge window, or a failed
  /// modulo-scheduling precondition.  Such T must not be encoded.
  bool triviallyInfeasible(int T) const;

  /// Ensures the period-\p T slice of the encoding exists and \returns the
  /// assumption literal activating it.  \pre !triviallyInfeasible(T).
  SatLit selector(int T);

  /// Reads the pattern offsets out of the solver's model (last solve under
  /// selector(T) must have returned Sat).
  std::vector<int> modelOffsets(int T) const;

  /// Completes the solver's model into a schedule at period \p T: offsets
  /// from the a-variables, the K vector by Bellman-Ford, the mapping from
  /// the color variables (greedily for types that needed none).  \returns
  /// false when the offsets admit no K vector, filling \p CycleNodes with
  /// a positive-cycle witness to block.
  bool decode(int T, ModuloSchedule &Out, std::vector<int> &CycleNodes) const;

  /// Forbids the current offsets of \p CycleNodes under period \p T (the
  /// lazy recurrence refinement; the clause is guarded by ~s_T).
  void blockCycle(int T, const std::vector<int> &CycleNodes,
                  const std::vector<int> &Offsets);

  /// Number of lazy cycle-blocking clauses added so far.
  int cycleBlocks() const { return NumCycleBlocks; }

private:
  void ensureRows(int T);
  void encodePeriod(int T, int SelVar);
  void buildColoringSkeleton();
  void buildInstanceSkeleton();
  int overlapVar(int TypeOpI, int TypeOpJ, int NodeI, int NodeJ);
  int modelUnit(int Node) const;

  const Ddg &G;
  const MachineModel &Machine;
  MappingKind Mapping;
  CdclSolver &S;

  int TDep = 0;

  /// AVar[t][i]; grows row-wise with the largest encoded period.
  std::vector<std::vector<int>> AVar;
  /// Selector variable per period (-1 = slice not built yet).
  std::vector<int> SelVar;
  /// One-hot color variables per node (empty when the node's type needed
  /// no coloring block).
  std::vector<std::vector<int>> ColorVar;
  /// Overlap variable per same-type node pair, keyed i * N + j (i < j);
  /// -1 until first needed.
  std::vector<int> OverlapByPair;
  /// Nodes of each FU type, in node-id order (the type-index Ix order the
  /// symmetry breaking refers to).
  std::vector<std::vector<int>> OpsOfType;

  /// Instance-mapping path (fixed mapping on a machine whose topology
  /// constrains placement): x[i][u] one-hots replace the color block, with
  /// unguarded adjacency (forbidden-pair) clauses, interchange-class
  /// symmetry breaking, and route indicators y[e][u][c] whose ROUTE-cell
  /// collisions are forbidden per period (mirroring core/Formulation).
  bool TopoPath = false;
  const Topology *Topo = nullptr;
  /// Global unit index of each type's unit 0.
  std::vector<int> UnitBase;
  /// InstVar[i][u] — one-hot unit-within-type of instruction i.
  std::vector<std::vector<int>> InstVar;
  struct RouteVarIds {
    int Edge;
    int Unit; // Global unit of the producer.
    int Hops;
    int Var;
  };
  std::vector<RouteVarIds> RouteVars;

  int NumCycleBlocks = 0;
};

} // namespace swp

#endif // SWP_SAT_CNFENCODER_H
