//===- swp/support/Rng.h - Deterministic random numbers ---------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, fast, deterministic PRNG (splitmix64 seeded xoshiro256**).
///
/// The synthetic loop corpus must be bit-identical across platforms and
/// standard-library versions, so std::mt19937 + distributions (whose mapping
/// to ranges is implementation-defined) are avoided.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_RNG_H
#define SWP_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace swp {

/// Deterministic xoshiro256** generator with convenience range helpers.
class Rng {
public:
  explicit Rng(std::uint64_t Seed) {
    // splitmix64 expansion of the seed into the four state words.
    std::uint64_t X = Seed;
    for (auto &Word : State) {
      X += 0x9e3779b97f4a7c15ULL;
      std::uint64_t Z = X;
      Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
      Word = Z ^ (Z >> 31);
    }
  }

  /// \returns the next raw 64-bit value.
  std::uint64_t next() {
    auto Rotl = [](std::uint64_t V, int K) {
      return (V << K) | (V >> (64 - K));
    };
    std::uint64_t Result = Rotl(State[1] * 5, 7) * 9;
    std::uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = Rotl(State[3], 45);
    return Result;
  }

  /// \returns a uniform integer in [Lo, Hi] inclusive; requires Lo <= Hi.
  int intIn(int Lo, int Hi) {
    assert(Lo <= Hi && "empty range");
    std::uint64_t Span = static_cast<std::uint64_t>(Hi - Lo) + 1;
    return Lo + static_cast<int>(next() % Span);
  }

  /// \returns a uniform double in [0, 1).
  double unit() { return (next() >> 11) * (1.0 / 9007199254740992.0); }

  /// \returns true with probability \p P.
  bool chance(double P) { return unit() < P; }

private:
  std::uint64_t State[4];
};

} // namespace swp

#endif // SWP_SUPPORT_RNG_H
