//===- swp/support/Crc32.h - CRC-32 (ISO-HDLC) checksums --------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The standard CRC-32 (reflected polynomial 0xEDB88320, as in zlib/PNG),
/// used to checksum wire-protocol frame payloads and cache-snapshot
/// entries.  CRC-32 detects all single-bit errors and all burst errors up
/// to 32 bits, which is exactly the guarantee the frame fuzzer asserts for
/// bit-flipped frames.  Table-driven, built once thread-safely.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_CRC32_H
#define SWP_SUPPORT_CRC32_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace swp {

namespace detail {

inline const std::array<std::uint32_t, 256> &crc32Table() {
  static const std::array<std::uint32_t, 256> Table = [] {
    std::array<std::uint32_t, 256> T{};
    for (std::uint32_t I = 0; I < 256; ++I) {
      std::uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  return Table;
}

} // namespace detail

/// CRC-32 of \p Data ("123456789" hashes to 0xCBF43926).
inline std::uint32_t crc32(std::span<const std::uint8_t> Data) {
  const auto &Table = detail::crc32Table();
  std::uint32_t C = 0xFFFFFFFFu;
  for (std::uint8_t B : Data)
    C = Table[(C ^ B) & 0xFF] ^ (C >> 8);
  return C ^ 0xFFFFFFFFu;
}

} // namespace swp

#endif // SWP_SUPPORT_CRC32_H
