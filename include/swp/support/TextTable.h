//===- swp/support/TextTable.h - Aligned text tables ------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned plain-text table rendering, used by every bench binary to
/// print the rows of the paper's tables and figures.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_TEXTTABLE_H
#define SWP_SUPPORT_TEXTTABLE_H

#include <string>
#include <vector>

namespace swp {

/// Accumulates rows of cells and renders them with padded, aligned columns.
class TextTable {
public:
  /// Sets the header row (rendered with a separator line beneath it).
  void setHeader(std::vector<std::string> Cells);

  /// Appends one data row; rows may have differing cell counts.
  void addRow(std::vector<std::string> Cells);

  /// Renders the table; every line ends with '\n'.
  std::string render() const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace swp

#endif // SWP_SUPPORT_TEXTTABLE_H
