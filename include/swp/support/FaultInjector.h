//===- swp/support/FaultInjector.h - Deterministic fault injection -*- C++ -*-//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A process-wide fault-injection registry exercising the failure domain
/// end to end.  Injection points are threaded into the hot paths that can
/// fail in production — the simplex pivot loop, branch-and-bound node
/// expansion, thread-pool task dispatch, result-cache inserts, and the
/// service's per-job deadline arm — and each polls its FaultSite here.
/// When a site fires, the host code fails exactly the way the real fault
/// would (LP stall, spurious infeasibility, allocation failure, deadline
/// expiry, worker death), so tests and the fuzz harness can prove the
/// fallback ladder always degrades to a verified schedule or an explicit
/// Infeasible — never an abort, hang, or silent wrong answer.
///
/// Configuration is a comma-separated spec, programmatic or via the
/// SWP_FAULTS environment variable (read once, lazily):
///
///     SWP_FAULTS="lp-stall:p0.25,bnb-node:3,deadline:1"
///
/// `site:N` fires on the first N polls of that site; `site:pP` fires each
/// poll independently with probability P.  Probabilistic decisions hash
/// (seed, site, per-site poll index) — splitmix64, no shared RNG stream —
/// so the k-th poll of a site fires identically across runs and thread
/// interleavings (SWP_FAULTS_SEED overrides the default seed 0).
///
/// The disarmed fast path is one relaxed atomic load; production code pays
/// nothing when no spec is installed.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_FAULTINJECTOR_H
#define SWP_SUPPORT_FAULTINJECTOR_H

#include <atomic>
#include <cstdint>
#include <string>

namespace swp {

/// Every instrumented failure point.
enum class FaultSite {
  /// Simplex pivot loop: the LP reports IterLimit (a stall).
  LpStall,
  /// Simplex entry: the LP spuriously reports Infeasible.
  LpInfeasible,
  /// Branch-and-bound node expansion: the search dies with a typed error.
  BnbNode,
  /// Model/workspace allocation in scheduleAtT fails (ResourceExhausted).
  Alloc,
  /// Thread-pool dispatch: the worker "dies" before running the job; the
  /// pool requeues it (bounded), exercising the job-rescue path.
  Dispatch,
  /// ResultCache::insert drops the insert (cache write lost).
  CacheInsert,
  /// Service per-job watchdog: the job's deadline expires immediately.
  Deadline,
  /// CDCL conflict handling: the SAT search dies mid-proof; the solve
  /// reports Unknown (never a fake Unsat).
  SatConflict,
  /// Socket read in the swpd wire path: the read fails as a peer reset
  /// would (typed error, connection torn down, never a partial frame).
  SockRead,
  /// Socket write in the swpd wire path: the write fails mid-frame.
  SockWrite,
  /// Cache snapshot load: a shard file reads as corrupt; the loader must
  /// rebuild that shard from empty instead of trusting it.
  CacheLoad,
  /// Simplex basis refactorization: the factorization "fails" (singular /
  /// overflowing basis); the solve degrades to IterLimit, never a proof.
  LpRefactor,
};

inline constexpr int NumFaultSites = 12;

/// Short stable name of \p S ("lp-stall", "bnb-node", ...).
const char *faultSiteName(FaultSite S);

/// The process-wide injector.  All members are thread-safe.
class FaultInjector {
public:
  /// The singleton; first call applies SWP_FAULTS / SWP_FAULTS_SEED.
  static FaultInjector &instance();

  /// Installs \p Spec (see file comment), replacing any previous config.
  /// \returns false and sets \p Err on a malformed spec (state is then
  /// fully disarmed).  An empty spec disarms.
  bool configure(const std::string &Spec, std::uint64_t Seed = 0,
                 std::string *Err = nullptr);

  /// Disarms every site and zeroes counters.
  void reset();

  /// True when any site is armed.  One relaxed load — poll freely.
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Polls \p S: \returns true when the site fires this time.  Counts both
  /// polls and fires.
  bool shouldFire(FaultSite S);

  /// Fires of \p S since the last configure/reset.
  std::uint64_t fired(FaultSite S) const;

  /// Total fires across all sites since the last configure/reset.
  std::uint64_t totalFired() const;

private:
  FaultInjector() = default;

  struct SiteState {
    /// Fire the first Budget polls (-1 = unlimited / unused).
    std::atomic<std::int64_t> Budget{0};
    /// Independent fire probability (used when Budget == -1).
    double Prob = 0.0;
    std::atomic<std::uint64_t> Polls{0};
    std::atomic<std::uint64_t> Fires{0};
    bool Enabled = false;
  };

  SiteState Sites[NumFaultSites];
  std::atomic<bool> Armed{false};
  std::uint64_t Seed = 0;
};

} // namespace swp

#endif // SWP_SUPPORT_FAULTINJECTOR_H
