//===- swp/support/Stopwatch.h - Wall-clock timing --------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A steady-clock stopwatch used for solver time limits and the Table 5
/// solve-time measurements.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_STOPWATCH_H
#define SWP_SUPPORT_STOPWATCH_H

#include <chrono>

namespace swp {

/// Measures elapsed wall-clock time from construction (or the last reset).
class Stopwatch {
public:
  Stopwatch() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// \returns seconds elapsed since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace swp

#endif // SWP_SUPPORT_STOPWATCH_H
