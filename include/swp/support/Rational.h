//===- swp/support/Rational.h - Exact rational arithmetic -------*- C++ -*-===//
//
// Part of the swp project: rate-optimal software pipelining with structural
// hazards (reproduction of Altman, Govindarajan & Gao, PLDI 1995).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact rational arithmetic on 64-bit numerator/denominator pairs.
///
/// The recurrence bound T_dep of a loop is a ratio of cycle weights
/// (sum of latencies / sum of dependence distances) and must be compared and
/// ceiling-rounded exactly; doubles would mis-round ties.  Values stay tiny
/// (latencies and distances are small integers), so int64 never overflows in
/// practice; operations assert on overflow in debug builds.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_RATIONAL_H
#define SWP_SUPPORT_RATIONAL_H

#include <cassert>
#include <cstdint>
#include <string>

namespace swp {

/// An exact rational number num/den with den > 0 and gcd(num, den) == 1.
class Rational {
public:
  /// Constructs 0/1.
  Rational() : Num(0), Den(1) {}

  /// Constructs the integer \p N as N/1.
  Rational(std::int64_t N) : Num(N), Den(1) {}

  /// Constructs \p N / \p D; \p D must be nonzero.  The result is normalized
  /// (positive denominator, reduced to lowest terms).
  Rational(std::int64_t N, std::int64_t D);

  std::int64_t num() const { return Num; }
  std::int64_t den() const { return Den; }

  /// \returns the greatest integer <= *this.
  std::int64_t floor() const;

  /// \returns the least integer >= *this.
  std::int64_t ceil() const;

  bool isInteger() const { return Den == 1; }

  double toDouble() const { return static_cast<double>(Num) / Den; }

  /// Renders as "n" when integral, "n/d" otherwise.
  std::string str() const;

  Rational operator+(const Rational &O) const;
  Rational operator-(const Rational &O) const;
  Rational operator*(const Rational &O) const;
  Rational operator/(const Rational &O) const;
  Rational operator-() const { return Rational(-Num, Den); }

  bool operator==(const Rational &O) const {
    return Num == O.Num && Den == O.Den;
  }
  bool operator!=(const Rational &O) const { return !(*this == O); }
  bool operator<(const Rational &O) const;
  bool operator>(const Rational &O) const { return O < *this; }
  bool operator<=(const Rational &O) const { return !(O < *this); }
  bool operator>=(const Rational &O) const { return !(*this < O); }

private:
  std::int64_t Num;
  std::int64_t Den;
};

} // namespace swp

#endif // SWP_SUPPORT_RATIONAL_H
