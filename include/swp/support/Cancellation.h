//===- swp/support/Cancellation.h - Cooperative cancellation ----*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooperative cancellation and deadline tokens.  A CancellationSource owns
/// the shared stop state; the CancellationToken it hands out is a cheap
/// copyable view that long-running searches poll at safe points (the
/// branch-and-bound node loop, the driver's per-T loop).  Cancellation is
/// strictly cooperative: nothing is interrupted, the holder of a token just
/// observes the request and unwinds.
///
/// A deadline is a one-shot absolute time on the steady clock; once it
/// passes, the token reads as cancelled without anyone calling cancel().
/// Tokens are thread-safe; a default-constructed token never cancels.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_CANCELLATION_H
#define SWP_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <memory>

namespace swp {

namespace detail {

/// Shared stop state: an explicit flag, an optional steady-clock deadline
/// (nanoseconds since clock epoch; 0 = no deadline), and an optional
/// parent state so a source can inherit a broader scope's cancellation
/// (e.g. a per-loop deadline nested under a service-wide cancelAll).
struct CancelState {
  std::atomic<bool> Requested{false};
  std::atomic<std::int64_t> DeadlineNs{0};
  std::shared_ptr<const CancelState> Parent;

  bool cancelled() const {
    if (Requested.load(std::memory_order_relaxed))
      return true;
    std::int64_t D = DeadlineNs.load(std::memory_order_relaxed);
    if (D != 0) {
      auto Now = std::chrono::steady_clock::now().time_since_epoch();
      if (std::chrono::duration_cast<std::chrono::nanoseconds>(Now)
              .count() >= D)
        return true;
    }
    return Parent && Parent->cancelled();
  }
};

} // namespace detail

/// A view of a CancellationSource's stop state.  Default-constructed tokens
/// are valid and never report cancellation, so APIs can take one by value
/// with no "optional" wrapper.
class CancellationToken {
public:
  CancellationToken() = default;

  /// True when cancel() was called on the source or its deadline passed.
  bool cancelled() const { return State && State->cancelled(); }

  /// True when this token is connected to a source (i.e. can ever cancel).
  bool connected() const { return State != nullptr; }

private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<detail::CancelState> S)
      : State(std::move(S)) {}

  std::shared_ptr<detail::CancelState> State;
};

/// Owns cancellable state and hands out tokens.
class CancellationSource {
public:
  CancellationSource() : State(std::make_shared<detail::CancelState>()) {}

  /// Creates a source nested under \p Parent: its tokens also report
  /// cancelled whenever the parent token does.
  explicit CancellationSource(const CancellationToken &Parent)
      : CancellationSource() {
    State->Parent = Parent.State;
  }

  CancellationToken token() const { return CancellationToken(State); }

  /// Requests cancellation; idempotent and thread-safe.
  void cancel() { State->Requested.store(true, std::memory_order_relaxed); }

  /// Sets a deadline \p Seconds from now; tokens report cancelled once it
  /// passes.  Non-positive values cancel immediately.
  void setDeadlineAfter(double Seconds) {
    auto Now = std::chrono::steady_clock::now().time_since_epoch();
    std::int64_t NowNs =
        std::chrono::duration_cast<std::chrono::nanoseconds>(Now).count();
    std::int64_t DeltaNs =
        static_cast<std::int64_t>(Seconds * 1e9);
    if (DeltaNs <= 0)
      cancel();
    else
      State->DeadlineNs.store(NowNs + DeltaNs, std::memory_order_relaxed);
  }

  bool cancelled() const { return State->cancelled(); }

private:
  std::shared_ptr<detail::CancelState> State;
};

} // namespace swp

#endif // SWP_SUPPORT_CANCELLATION_H
