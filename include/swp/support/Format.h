//===- swp/support/Format.h - printf-style std::string formatting -*- C++ -*-//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// strFormat(): printf-style formatting into a std::string, used by table
/// printers and report generators (the library avoids <iostream>).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_FORMAT_H
#define SWP_SUPPORT_FORMAT_H

#include <cstdarg>
#include <cstdio>
#include <string>

namespace swp {

/// printf-style formatting returning a std::string.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
inline std::string
strFormat(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Len = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out;
  if (Len > 0) {
    Out.resize(static_cast<size_t>(Len) + 1);
    std::vsnprintf(Out.data(), Out.size(), Fmt, Args);
    Out.resize(static_cast<size_t>(Len));
  }
  va_end(Args);
  return Out;
}

} // namespace swp

#endif // SWP_SUPPORT_FORMAT_H
