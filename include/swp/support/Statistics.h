//===- swp/support/Statistics.h - Summary statistics ------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny summary-statistics helpers (mean, min/max, percentiles) used by the
/// corpus benchmarks when aggregating per-loop results into table rows.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_STATISTICS_H
#define SWP_SUPPORT_STATISTICS_H

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace swp {

/// \returns the arithmetic mean of \p Values, or 0 when empty.
inline double mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

/// \returns the \p P-th percentile (0..100) using nearest-rank; requires a
/// non-empty input.
inline double percentile(std::vector<double> Values, double P) {
  assert(!Values.empty() && "percentile of empty sample");
  std::sort(Values.begin(), Values.end());
  double Rank = P / 100.0 * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

} // namespace swp

#endif // SWP_SUPPORT_STATISTICS_H
