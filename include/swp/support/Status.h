//===- swp/support/Status.h - Typed error propagation -----------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured, caller-visible errors for the library's failure domain.
/// Library code does not throw; instead fallible paths return a Status (or
/// an Expected<T> bundling a value with one) carrying a machine-readable
/// code, a human-readable message, and solve context: which phase failed,
/// at which candidate T, on which instance (fingerprint).  The scheduling
/// service keys its watchdog/fallback-ladder decisions off the code —
/// transient faults are retried, permanent ones degrade to the heuristic
/// rungs — so codes distinguish "retry me" from "give up".
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_STATUS_H
#define SWP_SUPPORT_STATUS_H

#include <cassert>
#include <string>
#include <utility>

namespace swp {

/// Machine-readable classification of a library failure.
enum class StatusCode {
  Ok,
  /// Malformed caller input (bad DDG, bad bounds, bad text) — permanent.
  InvalidInput,
  /// A text parse failed; message carries the line number — permanent.
  ParseError,
  /// The LP relaxation failed to converge (iteration limit / numerical
  /// trouble) — deterministic for a given instance, not retried.
  SolverStall,
  /// An allocation or resource acquisition failed — transient, retried.
  ResourceExhausted,
  /// A cancellation token fired mid-phase — transient iff injected or
  /// load-induced (the watchdog checks the real deadline before retrying).
  Cancelled,
  /// An invariant the library promised was violated (verifier rejection,
  /// solver disagreement) — a bug, reported loudly, never retried.
  Internal,
  /// A FaultInjector site fired — transient by construction.
  FaultInjected,
};

/// Short stable name of \p C ("ok", "invalid-input", ...).
const char *statusCodeName(StatusCode C);

/// An error (or success) with context.  Cheap to move, comparable against
/// ok() in hot paths via a single enum load.
class Status {
public:
  /// Success.
  Status() = default;

  Status(StatusCode Code, std::string Message)
      : Code_(Code), Message_(std::move(Message)) {}

  static Status ok() { return Status(); }

  bool isOk() const { return Code_ == StatusCode::Ok; }
  StatusCode code() const { return Code_; }
  const std::string &message() const { return Message_; }

  /// Solve context, filled by whoever has it on the way up.
  Status &withPhase(std::string Phase) {
    Phase_ = std::move(Phase);
    return *this;
  }
  Status &withT(int T) {
    T_ = T;
    return *this;
  }
  Status &withInstance(std::string Fingerprint) {
    Instance_ = std::move(Fingerprint);
    return *this;
  }

  const std::string &phase() const { return Phase_; }
  int t() const { return T_; }
  const std::string &instance() const { return Instance_; }

  /// Renders "code: message [phase=..., T=..., instance=...]".
  std::string str() const;

private:
  StatusCode Code_ = StatusCode::Ok;
  std::string Message_;
  std::string Phase_;
  int T_ = 0;
  std::string Instance_;
};

/// A value or a Status — the return type of fallible constructors such as
/// the text parsers.  Mirrors the usual expected<T, E> shape without
/// pulling in C++23: access the value only after checking ok().
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Value_(std::move(Value)) {}
  /*implicit*/ Expected(Status Err) : Err_(std::move(Err)) {
    assert(!Err_.isOk() && "Expected error must carry a non-ok Status");
  }

  bool ok() const { return Err_.isOk(); }
  explicit operator bool() const { return ok(); }

  const Status &status() const { return Err_; }

  T &value() {
    assert(ok() && "value() on an errored Expected");
    return Value_;
  }
  const T &value() const {
    assert(ok() && "value() on an errored Expected");
    return Value_;
  }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

private:
  T Value_{};
  Status Err_;
};

} // namespace swp

#endif // SWP_SUPPORT_STATUS_H
