//===- swp/support/Binary.h - Bounds-checked binary codec -------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Little-endian binary serialization shared by the wire protocol and the
/// cache snapshot format.  ByteWriter appends fixed-width fields to a
/// growable buffer; ByteReader consumes them with hard bounds checks and a
/// sticky failure flag, so a truncated or hostile buffer can never read
/// out of bounds — every accessor degrades to "return false, leave the
/// output untouched" once anything has failed.
///
/// Both ends byte-compose integers explicitly (no memcpy of structs), so
/// the format is identical across hosts regardless of alignment or
/// endianness.  Doubles travel as their IEEE-754 bit pattern, which makes
/// encoding a pure function of the value — the round-trip fuzzer asserts
/// byte-exact re-encoding.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SUPPORT_BINARY_H
#define SWP_SUPPORT_BINARY_H

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace swp {

/// Appends little-endian fields to a byte buffer.
class ByteWriter {
public:
  void u8(std::uint8_t V) { Buf.push_back(V); }

  void u16(std::uint16_t V) {
    u8(static_cast<std::uint8_t>(V));
    u8(static_cast<std::uint8_t>(V >> 8));
  }

  void u32(std::uint32_t V) {
    u16(static_cast<std::uint16_t>(V));
    u16(static_cast<std::uint16_t>(V >> 16));
  }

  void u64(std::uint64_t V) {
    u32(static_cast<std::uint32_t>(V));
    u32(static_cast<std::uint32_t>(V >> 32));
  }

  void i32(std::int32_t V) { u32(static_cast<std::uint32_t>(V)); }
  void i64(std::int64_t V) { u64(static_cast<std::uint64_t>(V)); }

  /// IEEE-754 bit pattern; distinguishes 0.0 from -0.0 and preserves NaN
  /// payloads, so encode(decode(bytes)) == bytes.
  void f64(double V) {
    std::uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }

  void boolean(bool V) { u8(V ? 1 : 0); }

  /// Length-prefixed byte string (any content, including NUL).
  void str(const std::string &S) {
    u32(static_cast<std::uint32_t>(S.size()));
    Buf.insert(Buf.end(), S.begin(), S.end());
  }

  void bytes(std::span<const std::uint8_t> B) {
    Buf.insert(Buf.end(), B.begin(), B.end());
  }

  const std::vector<std::uint8_t> &data() const { return Buf; }
  std::vector<std::uint8_t> take() { return std::move(Buf); }
  std::size_t size() const { return Buf.size(); }

private:
  std::vector<std::uint8_t> Buf;
};

/// Consumes little-endian fields from a byte span.  Any out-of-bounds or
/// over-limit read sets a sticky failure flag; subsequent reads are no-ops
/// returning false.
class ByteReader {
public:
  explicit ByteReader(std::span<const std::uint8_t> Bytes) : Data(Bytes) {}

  bool failed() const { return Failed; }
  std::size_t remaining() const { return Data.size() - Pos; }
  /// True when every byte was consumed and nothing failed — decoders
  /// require this so trailing garbage is rejected, not ignored.
  bool done() const { return !Failed && Pos == Data.size(); }

  bool u8(std::uint8_t &V) {
    if (!need(1))
      return false;
    V = Data[Pos++];
    return true;
  }

  bool u16(std::uint16_t &V) {
    std::uint8_t Lo, Hi;
    if (!u8(Lo) || !u8(Hi))
      return false;
    V = static_cast<std::uint16_t>(Lo | (static_cast<std::uint16_t>(Hi) << 8));
    return true;
  }

  bool u32(std::uint32_t &V) {
    std::uint16_t Lo, Hi;
    if (!u16(Lo) || !u16(Hi))
      return false;
    V = Lo | (static_cast<std::uint32_t>(Hi) << 16);
    return true;
  }

  bool u64(std::uint64_t &V) {
    std::uint32_t Lo, Hi;
    if (!u32(Lo) || !u32(Hi))
      return false;
    V = Lo | (static_cast<std::uint64_t>(Hi) << 32);
    return true;
  }

  bool i32(std::int32_t &V) {
    std::uint32_t U;
    if (!u32(U))
      return false;
    V = static_cast<std::int32_t>(U);
    return true;
  }

  bool i64(std::int64_t &V) {
    std::uint64_t U;
    if (!u64(U))
      return false;
    V = static_cast<std::int64_t>(U);
    return true;
  }

  bool f64(double &V) {
    std::uint64_t Bits;
    if (!u64(Bits))
      return false;
    std::memcpy(&V, &Bits, sizeof(V));
    return true;
  }

  bool boolean(bool &V) {
    std::uint8_t B;
    if (!u8(B))
      return false;
    // Reject non-canonical booleans so re-encoding is byte-exact.
    if (B > 1)
      return fail();
    V = B == 1;
    return true;
  }

  /// Length-prefixed string, bounded by \p MaxLen (hostile lengths fail
  /// instead of allocating).
  bool str(std::string &S, std::size_t MaxLen = 1 << 26) {
    std::uint32_t Len;
    if (!u32(Len))
      return false;
    if (Len > MaxLen || !need(Len))
      return false;
    S.assign(reinterpret_cast<const char *>(Data.data() + Pos), Len);
    Pos += Len;
    return true;
  }

  bool bytes(std::uint8_t *Out, std::size_t Len) {
    if (!need(Len))
      return false;
    std::memcpy(Out, Data.data() + Pos, Len);
    Pos += Len;
    return true;
  }

  /// Marks the stream failed (decoders use it to reject semantic errors —
  /// bad enum values, over-limit counts — with the same sticky behavior).
  bool fail() {
    Failed = true;
    return false;
  }

private:
  bool need(std::size_t N) {
    if (Failed || Data.size() - Pos < N) {
      Failed = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> Data;
  std::size_t Pos = 0;
  bool Failed = false;
};

} // namespace swp

#endif // SWP_SUPPORT_BINARY_H
