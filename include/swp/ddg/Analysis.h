//===- swp/ddg/Analysis.h - DDG analyses ------------------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graph analyses on DDGs: strongly connected components, and the
/// recurrence-constrained lower bound T_dep on the initiation interval.
///
/// T_dep = max over cycles C of (sum of edge latencies) / (sum of
/// distances) (paper Section 2, citing Reiter [23]).  The integer bound
/// recurrenceMii = ceil(T_dep) is computed exactly by binary search on T:
/// T admits a schedule w.r.t. recurrences iff the edge weights
/// latency - T*distance contain no positive cycle, which is monotone in T.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_DDG_ANALYSIS_H
#define SWP_DDG_ANALYSIS_H

#include "swp/ddg/Ddg.h"

#include <vector>

namespace swp {

/// \returns true when the graph with edge weights latency - T*distance has a
/// cycle of strictly positive weight (meaning no periodic schedule of
/// period \p T satisfies the recurrences).
bool hasPositiveCycle(const Ddg &G, int T);

/// \returns the smallest integer T >= 0 admitting the recurrences, i.e.
/// ceil(T_dep); 0 for acyclic graphs.
int recurrenceMii(const Ddg &G);

/// \returns the maximum cycle ratio (T_dep) as a double, 0 for acyclic
/// graphs; accurate to ~1e-9 (exact comparisons use recurrenceMii()).
double maxCycleRatio(const Ddg &G);

/// Tarjan SCCs; \returns one vector of node ids per component, components in
/// reverse topological order, ids ascending within a component.
std::vector<std::vector<int>> stronglyConnectedComponents(const Ddg &G);

/// \returns node ids on some critical cycle (a cycle whose ratio equals the
/// maximum); empty for acyclic graphs.  Used for reporting (the paper points
/// at the self-loop on i2 as the T_dep = 2 witness).
std::vector<int> criticalCycleNodes(const Ddg &G);

} // namespace swp

#endif // SWP_DDG_ANALYSIS_H
