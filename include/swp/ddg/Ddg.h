//===- swp/ddg/Ddg.h - Data dependence graphs -------------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data dependence graph (DDG) of a loop body, the input of every
/// scheduler in this project.
///
/// Nodes are instructions with an operation class (index of a function-unit
/// type in the target MachineModel) and a latency d_i.  Edges carry a
/// loop-carried dependence distance m_ij; an edge (i,j) constrains any
/// periodic schedule by t_j - t_i >= latency - T * m_ij (paper Eq. 4/8).
/// Per-edge latencies default to the producer's latency, matching the
/// paper's d_i convention.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_DDG_DDG_H
#define SWP_DDG_DDG_H

#include <cassert>
#include <string>
#include <vector>

namespace swp {

/// An instruction in the loop body.
struct DdgNode {
  std::string Name;
  /// Function-unit type index in the target machine (see MachineModel).
  int OpClass = 0;
  /// Cycles before a dependent instruction may start (paper's d_i).
  int Latency = 1;
  /// Reservation-table variant within the FU type (multi-function
  /// pipelines, paper Section 7 extension); 0 is the type's primary table.
  int Variant = 0;
};

/// A dependence from Src to Dst, possibly loop-carried.
struct DdgEdge {
  int Src = 0;
  int Dst = 0;
  /// Iteration distance m_ij (0 = same iteration).
  int Distance = 0;
  /// Required separation in cycles; defaults to the producer's latency.
  int Latency = 0;
};

/// A loop body's data dependence graph.
class Ddg {
public:
  Ddg() = default;
  explicit Ddg(std::string Name) : GraphName(std::move(Name)) {}

  /// Adds an instruction; \returns its node id.
  int addNode(std::string Name, int OpClass, int Latency) {
    assert(Latency >= 0 && "negative latency");
    Nodes.push_back({std::move(Name), OpClass, Latency, 0});
    return static_cast<int>(Nodes.size()) - 1;
  }

  /// Adds an instruction using reservation-table variant \p Variant of its
  /// FU type (multi-function pipelines); \returns its node id.
  int addNodeVariant(std::string Name, int OpClass, int Variant,
                     int Latency) {
    assert(Latency >= 0 && "negative latency");
    assert(Variant >= 0 && "negative variant");
    Nodes.push_back({std::move(Name), OpClass, Latency, Variant});
    return static_cast<int>(Nodes.size()) - 1;
  }

  /// Adds a dependence edge with the producer's latency.
  void addEdge(int Src, int Dst, int Distance) {
    addEdgeWithLatency(Src, Dst, Distance, Nodes[static_cast<size_t>(Src)].Latency);
  }

  /// Adds a dependence edge with an explicit latency.
  void addEdgeWithLatency(int Src, int Dst, int Distance, int Latency) {
    assert(Src >= 0 && Src < numNodes() && "bad source node");
    assert(Dst >= 0 && Dst < numNodes() && "bad destination node");
    assert(Distance >= 0 && "negative dependence distance");
    Edges.push_back({Src, Dst, Distance, Latency});
  }

  int numNodes() const { return static_cast<int>(Nodes.size()); }
  int numEdges() const { return static_cast<int>(Edges.size()); }
  const DdgNode &node(int I) const { return Nodes[static_cast<size_t>(I)]; }
  const std::vector<DdgNode> &nodes() const { return Nodes; }
  const std::vector<DdgEdge> &edges() const { return Edges; }
  const std::string &name() const { return GraphName; }
  void setName(std::string N) { GraphName = std::move(N); }

  /// Node ids whose OpClass equals \p OpClass, in id order.
  std::vector<int> nodesOfClass(int OpClass) const;

  /// \returns true when every zero-distance cycle is absent (a loop body
  /// with a same-iteration dependence cycle is malformed) and all node /
  /// class indices are in range for \p NumOpClasses.
  bool isWellFormed(int NumOpClasses) const;

private:
  std::string GraphName;
  std::vector<DdgNode> Nodes;
  std::vector<DdgEdge> Edges;
};

} // namespace swp

#endif // SWP_DDG_DDG_H
