//===- swp/ddg/Dot.h - DOT export of DDGs -----------------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Graphviz DOT rendering of a DDG (edge labels carry latency and
/// dependence distance, as in the paper's Figure 1).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_DDG_DOT_H
#define SWP_DDG_DOT_H

#include "swp/ddg/Ddg.h"

#include <string>

namespace swp {

/// Renders \p G as a DOT digraph.
std::string toDot(const Ddg &G);

} // namespace swp

#endif // SWP_DDG_DOT_H
