//===- swp/net/Daemon.h - The swpd scheduling daemon ------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The swpd daemon: a local-socket scheduling server in front of the
/// SchedulerService stack.  One accept thread hands each connection to its
/// own thread; connections speak the swp/net/Wire frame protocol and may
/// pipeline any number of requests.
///
/// Requests flow
///
///     frame -> parse (textio) -> admission -> keyed service -> response
///
/// with the AdmissionController degrading under load (reduced exact
/// effort, then heuristic-ladder-only, then shed) and per-tenant deadline
/// budgets.  Every request gets a well-formed ScheduleResponse carrying
/// its outcome, degradation level, and — for solved/unsolved — the full
/// SchedulerResult with its stop chain; corrupt frames get an
/// ErrorResponse and a torn-down connection (a byte stream cannot resync).
///
/// Services are keyed by (canonical machine text, engine, portfolio) in a
/// small LRU, all sharing one ResultCache; the cache persists to
/// SnapshotDir via swp/service/CachePersist at stop, every SnapshotEvery
/// completions, and loads (tolerating corrupt shards) at start — so a
/// restarted daemon serves warm hits identical to its pre-restart solves.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_NET_DAEMON_H
#define SWP_NET_DAEMON_H

#include "swp/net/Socket.h"
#include "swp/net/Wire.h"
#include "swp/service/Admission.h"
#include "swp/service/SchedulerService.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

namespace swp::net {

struct DaemonOptions {
  std::string SocketPath;
  /// Base options for every keyed service (engine/portfolio come from each
  /// request's scheduler name instead).
  ServiceOptions Service;
  AdmissionOptions Admission;
  /// Cache snapshot directory; empty disables persistence.
  std::string SnapshotDir;
  /// Save a snapshot every N completed requests (0 = only at stop).
  std::uint64_t SnapshotEvery = 0;
  /// Per-connection frame read/write timeout in seconds.
  double IoTimeoutSeconds = 5.0;
  /// Distinct (machine, engine) services kept live; LRU beyond that.
  std::size_t MaxServices = 8;
  std::size_t CacheShards = 16;
  std::size_t CachePerShardCapacity = ResultCache::DefaultPerShardCapacity;
};

struct DaemonStats {
  std::uint64_t Connections = 0;
  std::uint64_t Requests = 0;
  /// Frames rejected for corruption or undecodable payloads.
  std::uint64_t FrameErrors = 0;
  /// Connections lost to I/O timeouts or injected socket faults.
  std::uint64_t IoErrors = 0;
  std::uint64_t SnapshotSaves = 0;
  std::uint64_t SnapshotEntriesLoaded = 0;
  std::uint64_t SnapshotCorruptShards = 0;
  AdmissionStats Admission;
  /// Aggregated over all keyed services, live and retired.
  ServiceStats Service;
};

/// The daemon.  start() spawns the accept thread; stop() (idempotent, also
/// run by the destructor) drains connections and snapshots the cache.
class Daemon {
public:
  explicit Daemon(DaemonOptions Opts);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Loads the cache snapshot, binds the socket, starts accepting.
  Status start();

  /// Stops accepting, joins every connection, saves the snapshot.
  void stop();

  bool running() const { return Running.load(); }

  /// Blocks until a client sent a Shutdown frame or \p TimeoutSeconds
  /// passed; \returns true when shutdown was requested.  The caller then
  /// runs stop() — a connection thread cannot join itself.
  bool waitShutdownRequested(double TimeoutSeconds);

  DaemonStats stats() const;
  /// Human-readable stats (the StatsRequest frame returns the same text).
  std::string statsText() const;

  /// Explicit snapshot save (also used by the periodic cadence).
  Status saveSnapshot();

  const std::string &socketPath() const { return Opts.SocketPath; }
  const std::shared_ptr<ResultCache> &cache() const { return Cache; }

private:
  /// Directly answers one already-decoded request (exposed to the
  /// connection loop; also the unit the daemon tests drive in-process).
  ScheduleResponseMsg handleSchedule(const ScheduleRequestMsg &Req);

  std::shared_ptr<SchedulerService> serviceFor(const MachineModel &Machine,
                                               ExactEngine Engine,
                                               bool Portfolio);
  void acceptLoop();
  void handleConnection(Socket Conn);
  void noteCompletion();
  void bumpCounter(std::uint64_t DaemonStats::*Field);

  DaemonOptions Opts;
  std::shared_ptr<ResultCache> Cache;
  AdmissionController Admission;
  ListenSocket Listener;

  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};
  std::thread AcceptThread;

  std::mutex ConnMutex;
  std::list<std::thread> ConnThreads;

  /// Keyed services, MRU first.
  struct ServiceEntry {
    std::string Key;
    std::shared_ptr<SchedulerService> Svc;
  };
  mutable std::mutex ServicesMutex;
  std::list<ServiceEntry> Services;
  /// Counters of services the LRU retired (their shared cache lives on).
  ServiceStats RetiredStats;

  mutable std::mutex StatsMutex;
  DaemonStats Counters;
  std::uint64_t CompletionsSinceSnapshot = 0;

  std::mutex ShutdownMutex;
  std::condition_variable ShutdownCv;
  bool ShutdownRequested = false;

  std::mutex SnapshotMutex;
};

} // namespace swp::net

#endif // SWP_NET_DAEMON_H
