//===- swp/net/Client.h - swpd client ---------------------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The client half of the swpd wire protocol: one connection, pipelined
/// request/response pairs, typed Status on every failure mode (connect
/// refused, I/O timeout, corrupt frame, daemon-side ErrorResponse).  swpc
/// --connect is a thin CLI shell over this class; the daemon tests and the
/// throughput bench drive it directly.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_NET_CLIENT_H
#define SWP_NET_CLIENT_H

#include "swp/net/Socket.h"
#include "swp/net/Wire.h"
#include "swp/support/Status.h"

#include <string>

namespace swp::net {

class DaemonClient {
public:
  /// Disconnected client (what Expected<DaemonClient> default-constructs);
  /// only connect() produces a usable one.
  DaemonClient() = default;

  /// Connects to the daemon's socket; \p TimeoutSeconds bounds every
  /// subsequent frame read/write on this connection.
  static Expected<DaemonClient> connect(const std::string &SocketPath,
                                        double TimeoutSeconds = 5.0);

  DaemonClient(DaemonClient &&) = default;
  DaemonClient &operator=(DaemonClient &&) = default;

  /// One schedule round trip.  A returned value may still describe a shed
  /// or error outcome — transport worked, the daemon answered; the Status
  /// error path is for transport/protocol failure only.
  Expected<ScheduleResponseMsg> schedule(const ScheduleRequestMsg &Req);

  /// Fetches the daemon's rendered stats text.
  Expected<std::string> statsText();

  /// Asks the daemon to shut down; ok once the ShutdownAck arrives.
  Status requestShutdown();

private:
  explicit DaemonClient(Socket S, double Timeout)
      : Sock(std::move(S)), Timeout(Timeout) {}

  Socket Sock;
  double Timeout = 5.0;
};

} // namespace swp::net

#endif // SWP_NET_CLIENT_H
