//===- swp/net/Wire.h - swpd wire protocol ----------------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The swpd wire protocol: length-prefixed binary frames over a local
/// stream socket.  Every frame is a fixed 20-byte header followed by the
/// payload:
///
///     offset  size  field
///          0     4  magic        "SWPF" (little-endian 0x46505753)
///          4     2  version      protocol version (currently 1)
///          6     2  message type
///          8     4  payload length (bounded by MaxFramePayload)
///         12     4  CRC-32 of the payload
///         16     4  CRC-32 of header bytes [0,16)
///
/// The header CRC means a bit flip anywhere in the frame — header or
/// payload — is always detected (CRC-32 catches all single-bit and
/// <=32-bit burst errors), which the wire fuzzer asserts exhaustively.  A
/// frame that fails any check is rejected whole; a byte stream cannot be
/// resynchronized after corruption, so the connection is then torn down.
///
/// Payloads are composed with the swp/support/Binary codec (explicit
/// little-endian, bounds-checked, canonical), so decode(encode(M)) == M
/// and re-encoding a decoded message is byte-exact.  Machine models and
/// loops travel as the existing textio formats — the daemon reuses the
/// parser's validation and limits rather than inventing a second schema.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_NET_WIRE_H
#define SWP_NET_WIRE_H

#include "swp/core/Driver.h"
#include "swp/service/Admission.h"
#include "swp/support/Binary.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace swp::net {

/// "SWPF" little-endian.
inline constexpr std::uint32_t WireMagic = 0x46505753;
inline constexpr std::uint16_t WireVersion = 1;
/// Frames larger than this are rejected before allocation (a hostile
/// length cannot balloon the daemon).
inline constexpr std::uint32_t MaxFramePayload = 1u << 24;
inline constexpr std::size_t FrameHeaderSize = 20;

enum class MessageType : std::uint16_t {
  ScheduleRequest = 1,
  ScheduleResponse = 2,
  StatsRequest = 3,
  StatsResponse = 4,
  Shutdown = 5,
  ShutdownAck = 6,
  /// Generic failure reply (malformed frame, unsupported type); payload is
  /// one length-prefixed reason string.
  ErrorResponse = 7,
};

/// Decoded frame header (payload travels separately).
struct FrameHeader {
  MessageType Type = MessageType::ErrorResponse;
  std::uint32_t PayloadLen = 0;
  std::uint32_t PayloadCrc = 0;
};

/// Why a frame was rejected.
enum class FrameError {
  None,
  BadMagic,
  BadVersion,
  BadHeaderCrc,
  Oversized,
  BadPayloadCrc,
};

const char *frameErrorName(FrameError E);

/// Builds a complete frame (header + payload) for \p Type.
std::vector<std::uint8_t> encodeFrame(MessageType Type,
                                      std::span<const std::uint8_t> Payload);

/// Validates and decodes the 20 header bytes in \p Header.
/// \returns FrameError::None on success.
FrameError decodeFrameHeader(std::span<const std::uint8_t> Header,
                             FrameHeader &Out);

/// Checks \p Payload against the length/CRC the header promised.
FrameError verifyFramePayload(const FrameHeader &H,
                              std::span<const std::uint8_t> Payload);

/// One scheduling request.  Machine and loop ride as the textio formats;
/// Scheduler uses swpc's vocabulary ("ilp", "sat", "race", "portfolio",
/// "portfolio-sat", "portfolio-race").
struct ScheduleRequestMsg {
  std::string Tenant;
  std::string Scheduler = "ilp";
  /// Per-request wall-clock deadline in seconds (0 = none); also the
  /// tenant-budget charge.
  double DeadlineSeconds = 0.0;
  std::string MachineText;
  std::string LoopText;
};

/// How a request ended, as seen by the client.
enum class ResponseOutcome : std::uint8_t {
  /// A verified schedule is attached.
  Solved,
  /// The solve ran and terminated but found no schedule; the attached
  /// result carries the per-T stop chain and typed status.
  Unsolved,
  /// Load shedding refused the request before any solve ran.
  Shed,
  /// The request itself was bad (unparsable machine/loop, unknown
  /// scheduler) or the daemon failed internally; Reason says why.
  Error,
};

const char *responseOutcomeName(ResponseOutcome O);

struct ScheduleResponseMsg {
  ResponseOutcome Outcome = ResponseOutcome::Error;
  /// How far admission control degraded this request.
  DegradationLevel Degradation = DegradationLevel::None;
  /// Cause of a Shed/Error outcome or of a non-None degradation.
  std::string Reason;
  /// True when Result below is meaningful (Solved and Unsolved carry one;
  /// Shed never does).
  bool HasResult = false;
  SchedulerResult Result;
};

void encodeScheduleRequest(ByteWriter &W, const ScheduleRequestMsg &M);
bool decodeScheduleRequest(ByteReader &R, ScheduleRequestMsg &Out);
void encodeScheduleResponse(ByteWriter &W, const ScheduleResponseMsg &M);
bool decodeScheduleResponse(ByteReader &R, ScheduleResponseMsg &Out);

} // namespace swp::net

#endif // SWP_NET_WIRE_H
