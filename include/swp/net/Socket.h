//===- swp/net/Socket.h - Timeout-bounded local sockets ---------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Thin RAII wrappers over AF_UNIX stream sockets with the failure
/// discipline swpd needs: every read and write is bounded by a wall-clock
/// timeout (poll-based, EINTR-safe), peer hangup and timeout surface as
/// typed Status values rather than errno spelunking, and the frame-level
/// send/receive paths carry FaultInjector sites (FaultSite::SockRead /
/// SockWrite) so tests can force I/O failure at exact frame boundaries.
///
/// A failed or corrupt frame poisons the byte stream (there is no resync
/// marker), so callers tear the connection down after any non-ok receive —
/// the wrappers make that cheap by being movable and closing on destroy.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_NET_SOCKET_H
#define SWP_NET_SOCKET_H

#include "swp/net/Wire.h"
#include "swp/support/Status.h"

#include <cstdint>
#include <string>
#include <vector>

namespace swp::net {

/// A connected stream socket (client side or an accepted connection).
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket();

  Socket(Socket &&O) noexcept : Fd(O.Fd) { O.Fd = -1; }
  Socket &operator=(Socket &&O) noexcept;
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  /// Connects to the AF_UNIX socket at \p Path.
  static Expected<Socket> connectUnix(const std::string &Path,
                                      double TimeoutSeconds);

  bool valid() const { return Fd >= 0; }
  void close();

  /// Sends one complete frame.  Fails as FaultInjected when the SockWrite
  /// site fires, ResourceExhausted on timeout, Cancelled when the peer
  /// hung up.
  Status sendFrame(MessageType Type, std::span<const std::uint8_t> Payload,
                   double TimeoutSeconds);

  /// Receives one complete frame, validating header and payload CRCs.
  /// Corruption fails as InvalidInput naming the FrameError; the stream is
  /// then unusable.
  Status recvFrame(MessageType &Type, std::vector<std::uint8_t> &Payload,
                   double TimeoutSeconds);

  /// Waits until at least one byte is readable (ResourceExhausted on
  /// timeout).  The daemon's idle loop polls this in short slices so it
  /// can notice a stop request without abandoning a quiet client.
  Status waitReadable(double TimeoutSeconds);

private:
  Status readExact(std::uint8_t *Buf, std::size_t Len, double TimeoutSeconds);
  Status writeAll(const std::uint8_t *Buf, std::size_t Len,
                  double TimeoutSeconds);

  int Fd = -1;
};

/// A listening AF_UNIX socket.
class ListenSocket {
public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(ListenSocket &&O) noexcept : Fd(O.Fd), Path(std::move(O.Path)) {
    O.Fd = -1;
  }
  ListenSocket &operator=(ListenSocket &&O) noexcept;
  ListenSocket(const ListenSocket &) = delete;
  ListenSocket &operator=(const ListenSocket &) = delete;

  /// Binds and listens on \p Path (unlinking any stale socket file first).
  static Expected<ListenSocket> listenUnix(const std::string &Path,
                                           int Backlog = 16);

  bool valid() const { return Fd >= 0; }
  /// Closes the socket and removes its filesystem entry.
  void close();

  /// Waits up to \p TimeoutSeconds for a connection; ResourceExhausted on
  /// timeout (the accept loop uses this to poll its stop flag).
  Expected<Socket> accept(double TimeoutSeconds);

  const std::string &path() const { return Path; }

private:
  int Fd = -1;
  std::string Path;
};

} // namespace swp::net

#endif // SWP_NET_SOCKET_H
