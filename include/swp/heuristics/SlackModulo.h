//===- swp/heuristics/SlackModulo.h - Huff's slack scheduling ---*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lifetime-sensitive (slack) modulo scheduling in the style of Huff
/// (PLDI '93 [13]) — the second heuristic baseline the paper's related
/// work discusses.
///
/// Per candidate T: compute each instruction's earliest/latest start
/// (ASAP/ALAP over the T-weighted dependence graph) and schedule in order
/// of increasing slack.  Instructions whose scheduled neighbours are
/// mostly consumers are placed as *late* as possible, producers-first ones
/// as *early* as possible — shrinking value lifetimes — with IMS-style
/// eviction under a budget when no slot fits.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_HEURISTICS_SLACKMODULO_H
#define SWP_HEURISTICS_SLACKMODULO_H

#include "swp/core/Schedule.h"
#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

namespace swp {

/// Slack-scheduler knobs.
struct SlackOptions {
  /// Candidate T range: [T_lb, T_lb + MaxTSlack].
  int MaxTSlack = 64;
  /// Scheduling budget per T, as a multiple of the instruction count.
  int BudgetRatio = 6;
};

/// Slack-scheduler outcome.
struct SlackResult {
  ModuloSchedule Schedule;
  int TDep = 0;
  int TRes = 0;
  int TLowerBound = 0;

  bool found() const { return Schedule.T > 0; }
};

/// Runs lifetime-sensitive slack modulo scheduling for \p G on \p Machine.
SlackResult slackModuloSchedule(const Ddg &G, const MachineModel &Machine,
                                const SlackOptions &Opts = {});

} // namespace swp

#endif // SWP_HEURISTICS_SLACKMODULO_H
