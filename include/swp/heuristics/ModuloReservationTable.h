//===- swp/heuristics/ModuloReservationTable.h - Shared MRT -----*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modulo reservation table shared by the heuristic schedulers: per
/// physical unit, per stage, per pattern slot, which instruction occupies
/// it.  Variant-aware (multi-function pipelines).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_HEURISTICS_MODULORESERVATIONTABLE_H
#define SWP_HEURISTICS_MODULORESERVATIONTABLE_H

#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

#include <vector>

namespace swp {

/// Occupancy of every physical unit's stages modulo T; entries hold the
/// occupying node id or -1.
class ModuloReservationTable {
public:
  ModuloReservationTable(const MachineModel &Machine, int T);

  /// True when \p Node can issue at absolute time \p Time on unit \p U of
  /// its type without colliding with a *different* node.
  bool fits(const Ddg &G, int Node, int Time, int U) const;

  /// Occupies the slots of \p Node issued at \p Time on unit \p U.
  void place(const Ddg &G, int Node, int Time, int U);

  /// Releases the slots of \p Node issued at \p Time on unit \p U.
  void remove(const Ddg &G, int Node, int Time, int U);

  /// Node ids (unique) colliding with issuing \p Node at \p Time on \p U.
  std::vector<int> conflicts(const Ddg &G, int Node, int Time, int U) const;

private:
  template <typename Fn>
  void forEachSlot(const Ddg &G, int Node, int Time, int U, Fn Apply);

  const MachineModel &Machine;
  int T;
  /// Slots[type][unit][stage][slot] = node or -1.
  std::vector<std::vector<std::vector<std::vector<int>>>> Slots;
};

} // namespace swp

#endif // SWP_HEURISTICS_MODULORESERVATIONTABLE_H
