//===- swp/heuristics/ModuloReservationTable.h - Shared MRT -----*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The modulo reservation table shared by the heuristic schedulers: per
/// physical unit, per stage, per pattern slot, which instruction occupies
/// it.  Variant-aware (multi-function pipelines).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_HEURISTICS_MODULORESERVATIONTABLE_H
#define SWP_HEURISTICS_MODULORESERVATIONTABLE_H

#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

#include <vector>

namespace swp {

/// Occupancy of every physical unit's stages modulo T; entries hold the
/// occupying node id or -1.
///
/// When the machine's topology constrains placement (topoActive), the table
/// additionally tracks the ROUTE cells of multi-hop dependences: a DDG edge
/// whose endpoints sit more than one hop apart occupies cells on the
/// producer's unit (see Topology::routeColumns) with capacity 1 per
/// (unit, slot).  Callers keep the invariant that an edge's cells are
/// committed exactly while *both* endpoints are placed: call commitRoutes
/// right after place (with the updated Time/Unit arrays) and releaseRoutes
/// right before remove.
class ModuloReservationTable {
public:
  ModuloReservationTable(const MachineModel &Machine, int T);

  /// True when \p Node can issue at absolute time \p Time on unit \p U of
  /// its type without colliding with a *different* node.
  bool fits(const Ddg &G, int Node, int Time, int U) const;

  /// Occupies the slots of \p Node issued at \p Time on unit \p U.
  void place(const Ddg &G, int Node, int Time, int U);

  /// Releases the slots of \p Node issued at \p Time on unit \p U.
  void remove(const Ddg &G, int Node, int Time, int U);

  /// Node ids (unique) colliding with issuing \p Node at \p Time on \p U.
  std::vector<int> conflicts(const Ddg &G, int Node, int Time, int U) const;

  /// True when the machine's topology constrains placement and the
  /// topology-aware checks below are live (all are vacuous otherwise).
  bool topoActive() const { return Topo != nullptr; }

  /// Extra slack the candidate scan must cover beyond the classic T slots:
  /// routing penalties make dependence windows placement-dependent, so a
  /// time rejected at one unit may admit at another up to maxRoutePenalty
  /// cycles later.  0 when !topoActive().
  int maxRoutePenalty() const;

  /// Topology admission for placing \p Node at (\p Time, \p U) against the
  /// currently placed nodes in \p Times / \p Units (-1 = unplaced): every
  /// incident dependence must be feed-allowed, satisfy its rho-tightened
  /// window, and claim only free, mutually distinct ROUTE cells.
  bool topoAdmits(const Ddg &G, int Node, int Time, int U,
                  const std::vector<int> &Times,
                  const std::vector<int> &Units) const;

  /// Placed nodes (unique) that must be evicted so that placing \p Node at
  /// (\p Time, \p U) becomes topology-clean: neighbors whose dependence
  /// would violate adjacency or its rho-window, producers of committed
  /// edges owning a ROUTE cell \p Node's edges need, and neighbors whose
  /// new edge would self-collide.  Evicting them (which releases their
  /// routes) makes commitRoutes succeed.
  std::vector<int> topoConflicts(const Ddg &G, int Node, int Time, int U,
                                 const std::vector<int> &Times,
                                 const std::vector<int> &Units) const;

  /// Commits the ROUTE cells of every edge incident on \p Node whose other
  /// endpoint is placed (\p Node itself must already be in \p Times /
  /// \p Units).  \pre the placement was admitted (topoAdmits) or its
  /// topoConflicts were evicted.
  void commitRoutes(const Ddg &G, int Node, const std::vector<int> &Times,
                    const std::vector<int> &Units);

  /// Releases the ROUTE cells of every committed edge incident on \p Node.
  void releaseRoutes(const Ddg &G, int Node);

private:
  template <typename Fn>
  void forEachSlot(const Ddg &G, int Node, int Time, int U, Fn Apply);

  struct RouteCell {
    int Unit; // Global (type-major) physical unit.
    int Slot; // Pattern step, already reduced mod T.
  };
  /// ROUTE cells of \p E assuming its producer issues at \p SrcTime on
  /// global unit \p SrcGU feeding global unit \p DstGU; empty when the
  /// value crosses fewer than 2 hops.  \pre feedAllowed(SrcGU, DstGU).
  std::vector<RouteCell> routeCellsOf(const DdgEdge &E, int SrcGU, int DstGU,
                                      int SrcTime) const;

  const MachineModel &Machine;
  int T;
  /// Slots[type][unit][stage][slot] = node or -1.
  std::vector<std::vector<std::vector<std::vector<int>>>> Slots;

  /// Non-null iff the machine's topology constrains placement.
  const Topology *Topo = nullptr;
  /// RouteOcc[globalUnit][slot] = owning DDG edge index or -1.
  std::vector<std::vector<int>> RouteOcc;
  /// Committed cells per DDG edge index (grown lazily to the DDG's size).
  mutable std::vector<std::vector<RouteCell>> RouteCells;
};

} // namespace swp

#endif // SWP_HEURISTICS_MODULORESERVATIONTABLE_H
