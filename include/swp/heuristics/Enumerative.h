//===- swp/heuristics/Enumerative.h - Exhaustive search ---------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An enumerative (backtracking) scheduler+mapper — the "cleverly designed
/// exhaustive search" alternative to the ILP the paper mentions via the
/// first author's thesis [2].
///
/// Per candidate T it enumerates pattern offsets and unit assignments with
/// modulo-reservation pruning and unit-symmetry breaking; dependence
/// feasibility of a complete offset assignment reduces to the absence of a
/// positive cycle in the k-difference constraint graph
///   k_j - k_i >= ceil((latency - T*m + off_i - off_j) / T),
/// solved by Bellman-Ford (which also yields the K vector).  Exhaustive up
/// to the state limit, so — like the ILP — it proves infeasibility at a T.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_HEURISTICS_ENUMERATIVE_H
#define SWP_HEURISTICS_ENUMERATIVE_H

#include "swp/core/Schedule.h"
#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

#include <cstdint>

namespace swp {

/// Enumerative search knobs.
struct EnumOptions {
  /// Candidate T range: [T_lb, T_lb + MaxTSlack].
  int MaxTSlack = 64;
  /// State (node) limit per T.
  std::int64_t MaxStatesPerT = 2000000;
  /// Wall-clock limit per T, seconds.
  double TimeLimitPerT = 10.0;
};

/// Enumerative search outcome.
struct EnumResult {
  ModuloSchedule Schedule;
  int TDep = 0;
  int TRes = 0;
  int TLowerBound = 0;
  /// True when every T below the found one was exhausted (rate-optimal).
  bool ProvenRateOptimal = false;
  std::int64_t States = 0;

  bool found() const { return Schedule.T > 0; }
};

/// Runs the enumerative search for \p G on \p Machine.
EnumResult enumerativeSchedule(const Ddg &G, const MachineModel &Machine,
                               const EnumOptions &Opts = {});

} // namespace swp

#endif // SWP_HEURISTICS_ENUMERATIVE_H
