//===- swp/heuristics/IterativeModulo.h - Rau's IMS baseline ----*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Iterative modulo scheduling (Rau, MICRO-27 1994 [22]) adapted to
/// reservation-table machines with *fixed* unit binding — the practical
/// heuristic the paper's ILP is compared against (heuristics find
/// suboptimal II on some loops; the ILP is rate-optimal).
///
/// Per candidate T: instructions are scheduled highest-priority first
/// (height-based), each at the earliest dependence-legal slot with a
/// conflict-free unit in the modulo reservation table; when no slot fits
/// within a T-wide window the instruction is force-placed and conflicting /
/// dependence-violated instructions are evicted, within a budget.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_HEURISTICS_ITERATIVEMODULO_H
#define SWP_HEURISTICS_ITERATIVEMODULO_H

#include "swp/core/Schedule.h"
#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

namespace swp {

/// IMS knobs.
struct ImsOptions {
  /// Candidate T range: [T_lb, T_lb + MaxTSlack].
  int MaxTSlack = 64;
  /// Scheduling budget per T, as a multiple of the instruction count.
  int BudgetRatio = 6;
};

/// IMS outcome.
struct ImsResult {
  /// Schedule with fixed mapping (T == 0 when every T in range failed).
  ModuloSchedule Schedule;
  int TDep = 0;
  int TRes = 0;
  int TLowerBound = 0;

  bool found() const { return Schedule.T > 0; }
};

/// Runs iterative modulo scheduling for \p G on \p Machine.
ImsResult iterativeModuloSchedule(const Ddg &G, const MachineModel &Machine,
                                  const ImsOptions &Opts = {});

} // namespace swp

#endif // SWP_HEURISTICS_ITERATIVEMODULO_H
