//===- swp/textio/Parser.h - Text formats for machines and loops -*- C++ -*-=//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Line-oriented text formats so machines and loops can live in files and
/// drive the swpc command-line tool.
///
/// Machine format ('#' starts a comment, blank lines ignored):
/// \code
///   machine ppc604
///   futype SCIU count 2
///   table 1
///   futype FPU count 1
///   table 1000 0100 0011          # one 0/1 string per stage
///   variant 11111100 00000010 00000001   # extra multi-function variant
/// \endcode
///
/// Loop format (classes referenced by FU type name):
/// \code
///   loop daxpy
///   node ldx class LSU latency 2
///   node div class FPU latency 8 variant 1
///   edge ldx -> div distance 0
///   edge div -> div distance 1 latency 8
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SWP_TEXTIO_PARSER_H
#define SWP_TEXTIO_PARSER_H

#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"
#include "swp/support/Status.h"

#include <string>

namespace swp {

/// Largest accepted latency, distance, unit count, or reservation-table
/// dimension.  Values beyond it parse as integers but overflow downstream
/// T-range and buffer-bound arithmetic, so the parser rejects them with a
/// line-numbered error instead.
inline constexpr int MaxParsedMagnitude = 1 << 20;

/// Parses the machine format; on failure \returns false and fills \p Err
/// with "line N: message".
bool parseMachine(const std::string &Text, MachineModel &Out,
                  std::string &Err);

/// Parses the loop format against \p Machine (for class names); on failure
/// \returns false and fills \p Err.
bool parseLoop(const std::string &Text, const MachineModel &Machine,
               Ddg &Out, std::string &Err);

/// Typed-error variant of parseMachine: the Status carries
/// StatusCode::ParseError with the line-numbered message.
Expected<MachineModel> parseMachineText(const std::string &Text);

/// Typed-error variant of parseLoop.
Expected<Ddg> parseLoopText(const std::string &Text,
                            const MachineModel &Machine);

/// Renders \p M in the machine format (parseMachine round-trips it).
std::string printMachine(const MachineModel &M);

/// Renders \p G in the loop format (parseLoop round-trips it).
std::string printLoop(const Ddg &G, const MachineModel &Machine);

} // namespace swp

#endif // SWP_TEXTIO_PARSER_H
