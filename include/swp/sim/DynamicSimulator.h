//===- swp/sim/DynamicSimulator.h - Dynamic-issue loop simulator -*- C++ -*-=//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cycle-accurate scoreboard simulator executing a loop *without*
/// software pipelining: instructions issue dynamically when their operands
/// are ready and a function unit (reservation-table slot) is free, under a
/// configurable issue width and issue discipline.
///
/// This is the baseline the paper's motivation implies: the initiation
/// rate hardware achieves on the sequential loop versus the rate-optimal
/// II a software-pipelined schedule sustains.  It also doubles as an
/// independent dynamic validation of machine-model semantics (stage
/// occupancy is enforced cycle by cycle over absolute time, not mod T).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SIM_DYNAMICSIMULATOR_H
#define SWP_SIM_DYNAMICSIMULATOR_H

#include "swp/core/Schedule.h"
#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

#include <cstdint>
#include <string>
#include <vector>

namespace swp {

/// Dynamic-issue simulation knobs.
struct SimOptions {
  /// Iterations to execute (rate is measured over the last half to skip
  /// warm-up).
  int Iterations = 64;
  /// Maximum instructions issued per cycle (0 = unlimited).
  int IssueWidth = 4;
  /// In-order issue: an instruction may not issue before every earlier
  /// (program-order) instruction of its own iteration has issued, and
  /// iteration j+1 may not start issuing before iteration j finished
  /// issuing.  Out-of-order removes both restrictions (dataflow limit).
  bool InOrder = true;
};

/// Simulation outcome.
struct SimResult {
  /// Cycle at which the last instruction issued.
  std::int64_t LastIssueCycle = 0;
  /// Measured steady-state cycles per iteration.
  double CyclesPerIteration = 0.0;
  /// Per-type busy stage-cycles (utilization numerators).
  std::vector<std::int64_t> TypeBusyCycles;
};

/// Executes \p Iterations copies of \p G on \p Machine under dynamic issue.
SimResult simulateDynamicIssue(const Ddg &G, const MachineModel &Machine,
                               const SimOptions &Opts = {});

/// Replays a software-pipelined schedule on the same cycle-accurate core
/// and \returns true when every instance issues exactly at its scheduled
/// cycle with no stage conflict and no operand-not-ready hazard — an
/// execution-level cross-check of the static verifier.
bool replaySchedule(const Ddg &G, const MachineModel &Machine,
                    const ModuloSchedule &S, int Iterations,
                    std::string *ErrorOut = nullptr);

} // namespace swp

#endif // SWP_SIM_DYNAMICSIMULATOR_H
