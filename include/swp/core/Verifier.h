//===- swp/core/Verifier.h - Schedule legality checking ---------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Formulation-independent legality checking of modulo schedules — the
/// ground truth every scheduler (ILP, heuristic, enumerative) is tested
/// against.
///
/// Checks performed:
///  - dependence constraints t_j - t_i >= latency - T * m_ij for all edges;
///  - the modulo-scheduling precondition per used reservation table;
///  - with a fixed mapping: no two instructions assigned to the same
///    physical unit collide on any stage at any pattern time step (exact,
///    via reservation-table offset conflicts);
///  - without a mapping (run-time mapping): aggregate per-stage usage at
///    every pattern step within each type's unit count, and — as executable
///    evidence — an unrolled first-fit unit-assignment simulation over
///    several iterations (the hardware's "grab any free unit" behaviour).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_CORE_VERIFIER_H
#define SWP_CORE_VERIFIER_H

#include "swp/core/Schedule.h"
#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

#include <string>

namespace swp {

/// Outcome of schedule verification.
struct VerifyResult {
  bool Ok = false;
  /// Human-readable description of the first violation (empty when Ok).
  std::string Error;
};

/// Verifies \p S against \p G on \p Machine; see the file comment for the
/// exact checks.
VerifyResult verifySchedule(const Ddg &G, const MachineModel &Machine,
                            const ModuloSchedule &S);

/// Unrolled first-fit simulation: executes \p Iterations copies of the loop
/// under run-time mapping, assigning each dynamic instruction to the lowest
/// free unit of its type; \returns true when every instance found a unit.
/// This is the run-time-mapping semantics of the paper's Schedule A.
bool simulateRunTimeMapping(const Ddg &G, const MachineModel &Machine,
                            const ModuloSchedule &S, int Iterations,
                            std::string *ErrorOut = nullptr);

} // namespace swp

#endif // SWP_CORE_VERIFIER_H
