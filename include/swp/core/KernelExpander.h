//===- swp/core/KernelExpander.h - Prolog/kernel/epilog ---------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expands a modulo schedule into the flat overlapped-iterations listing of
/// the paper's Tables 1-3: a prolog (iterations ramping up), the repetitive
/// kernel of length T, and an epilog (draining).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_CORE_KERNELEXPANDER_H
#define SWP_CORE_KERNELEXPANDER_H

#include "swp/core/Schedule.h"
#include "swp/ddg/Ddg.h"
#include "swp/support/Cancellation.h"

#include <string>
#include <vector>

namespace swp {

/// One dynamic instruction instance of the expanded schedule.
struct ScheduledInstance {
  int Node = 0;
  int Iteration = 0;
  int Start = 0;
};

/// The expanded schedule plus the prolog/kernel boundaries.
struct ExpandedSchedule {
  std::vector<ScheduledInstance> Instances;
  /// First cycle of the steady-state kernel: KMax * T where KMax = max k_i
  /// (before it, some iterations are still ramping up).
  int KernelStart = 0;
  /// Kernel length (== T).
  int KernelLength = 0;
  /// True when a cancellation token fired mid-expansion; Instances then
  /// covers only the iterations emitted before the cut.
  bool Truncated = false;
};

/// Expands \p Iterations iterations of \p S.  \p Cancel is polled once per
/// iteration; a fired token returns a Truncated partial expansion (a
/// default token never fires).
ExpandedSchedule expandSchedule(const Ddg &G, const ModuloSchedule &S,
                                int Iterations,
                                const CancellationToken &Cancel = {});

/// Renders the Table 1/2 artifact: rows are cycles, one column per
/// iteration, cells name the instruction issued at that cycle; prolog /
/// kernel boundaries are annotated.
std::string renderOverlappedIterations(const Ddg &G, const ModuloSchedule &S,
                                       int Iterations);

/// Modulo variable expansion (Lam [16]; the paper's Section 7 code-size
/// discussion): the kernel must be unrolled so that no value's lifetime
/// spans two same-named definitions.  \returns
/// max(1, max_i ceil(lifetime_i / T)).
int mveUnrollFactor(const Ddg &G, const ModuloSchedule &S);

/// Renders the MVE-unrolled kernel: mveUnrollFactor copies of the T-cycle
/// pattern with values renamed per copy (v.0, v.1, ...), the software-only
/// alternative to rotating register files [21].
std::string renderUnrolledKernel(const Ddg &G, const ModuloSchedule &S);

} // namespace swp

#endif // SWP_CORE_KERNELEXPANDER_H
