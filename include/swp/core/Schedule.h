//===- swp/core/Schedule.h - Modulo schedules -------------------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result object of every scheduler: a linear periodic schedule
/// (instruction i of iteration j starts at j*T + t_i) plus an optional
/// fixed function-unit mapping.
///
/// Mirrors the paper's T = T*K + A'*[0..T-1]' decomposition: offset(i) is
/// the A-matrix row of instruction i and stageIndex(i) is k_i.  Rendering
/// helpers regenerate the paper's Figure 2/3 artifacts.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_CORE_SCHEDULE_H
#define SWP_CORE_SCHEDULE_H

#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

#include <string>
#include <vector>

namespace swp {

/// A modulo schedule with period T; optionally carries a fixed mapping of
/// every instruction to a unit of its type (the paper's "coloring").
struct ModuloSchedule {
  /// Initiation interval (period of the repetitive pattern).
  int T = 0;
  /// Start time t_i of instruction i in iteration 0.
  std::vector<int> StartTime;
  /// Unit-within-type index (0-based "color") per instruction, or empty for
  /// run-time mapping (Section 4.1-only schedules).
  std::vector<int> Mapping;

  bool hasMapping() const { return !Mapping.empty(); }

  /// Pattern time step at which instruction \p I initiates (A-matrix row).
  int offset(int I) const { return StartTime[static_cast<size_t>(I)] % T; }

  /// k_i = t_i div T (the K vector).
  int stageIndex(int I) const { return StartTime[static_cast<size_t>(I)] / T; }

  /// The K vector.
  std::vector<int> kVector() const;

  /// The 0-1 A matrix (T rows, N columns), a[t][i] = 1 iff offset(i) == t.
  std::vector<std::vector<int>> aMatrix() const;

  /// Renders the Figure 3 artifact: the t vector, K vector and A matrix.
  std::string renderTka() const;

  /// Renders per-type, per-stage modulo usage tables (Figure 2(d) style):
  /// which instructions occupy each stage of \p Machine's type tables at
  /// each pattern time step.
  std::string renderPatternUsage(const Ddg &G,
                                 const MachineModel &Machine) const;
};

} // namespace swp

#endif // SWP_CORE_SCHEDULE_H
