//===- swp/core/CircularArcs.h - FU occupation as circular arcs -*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 4.2 insight: under a modulo schedule, the occupation
/// of a function-unit type by its instructions forms *circular arcs* on the
/// cycle [0, T), and fixed FU assignment is a circular-arc coloring problem
/// [10].  An instruction whose occupation wraps past T splits into two
/// same-colored fragments (the dotted arc of Figure 4).
///
/// This header exposes the overlap relation, a first-fit coloring heuristic
/// (used by the heuristic schedulers and as a fast upper bound), and a
/// Figure 4 style rendering.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_CORE_CIRCULARARCS_H
#define SWP_CORE_CIRCULARARCS_H

#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

#include <string>
#include <vector>

namespace swp {

/// True when two instructions of one type, issued at pattern offsets
/// \p OffsetI and \p OffsetJ, would collide on a shared unit.
bool arcsOverlap(const ReservationTable &Table, int T, int OffsetI,
                 int OffsetJ);

/// Multi-function variant: the two instructions occupy the shared unit
/// with distinct reservation tables \p TableI / \p TableJ.
bool arcsOverlap(const ReservationTable &TableI,
                 const ReservationTable &TableJ, int T, int OffsetI,
                 int OffsetJ);

/// First-fit coloring of same-type instructions given their pattern
/// offsets; \returns 0-based colors (color == unit).  The result may use
/// more colors than an optimal circular-arc coloring — callers compare
/// max+1 against the unit count.  \p Offsets may contain duplicates (they
/// always overlap and get distinct colors).
std::vector<int> firstFitUnitColoring(const ReservationTable &Table, int T,
                                      const std::vector<int> &Offsets);

/// Multi-function variant: \p Tables[i] is instruction i's reservation
/// table (parallel to \p Offsets).
std::vector<int>
firstFitUnitColoring(const std::vector<const ReservationTable *> &Tables,
                     int T, const std::vector<int> &Offsets);

/// Renders a Figure 4 style picture: one line per instruction of type
/// \p OpClass showing the pattern slots its unit occupation covers
/// ('#' busy, '.' free), plus the assigned color when \p Mapping is
/// non-empty.
std::string renderArcs(const Ddg &G, const MachineModel &Machine,
                       int OpClass, int T, const std::vector<int> &Offsets,
                       const std::vector<int> &Mapping);

} // namespace swp

#endif // SWP_CORE_CIRCULARARCS_H
