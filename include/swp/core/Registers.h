//===- swp/core/Registers.h - Buffer and register-pressure analysis -*- C++ -*-
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The register-cost extensions the paper names in its conclusions:
/// "It can incorporate minimizing buffers (logical registers) as in [18]
/// or minimizing the maximum number of live values at any time step in the
/// repetitive pattern, as in [5]."
///
/// Two cost models over a modulo schedule with period T:
///
/// - **Buffers** (Ning & Gao, POPL '93 [18]): each dependence edge (i, j)
///   with distance m needs a FIFO of
///   ceil((t_j + T*m - t_i) / T) buffers — the number of in-flight copies
///   of i's value destined for j.  Total buffers = sum over edges.
///
/// - **MaxLive** (Eichenberger, Davidson & Abraham, MICRO-27 '94 [5]):
///   each value lives from its definition to its last use (across all
///   consumers and iterations); MaxLive is the maximum number of
///   simultaneously live values at any time step of the repetitive
///   pattern — a lower bound on the register requirement.
///
/// Buffer minimization also integrates into the ILP: see
/// FormulationOptions::BufferObjective and
/// SchedulerOptions::MinimizeBuffers.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_CORE_REGISTERS_H
#define SWP_CORE_REGISTERS_H

#include "swp/core/Schedule.h"
#include "swp/ddg/Ddg.h"

#include <string>
#include <vector>

namespace swp {

/// Ning-Gao buffer count of edge \p E under \p S:
/// ceil((t_dst + T*distance - t_src) / T).
int edgeBufferCount(const Ddg &G, const ModuloSchedule &S, const DdgEdge &E);

/// Total Ning-Gao buffers: sum of edgeBufferCount over all edges.
int totalBuffers(const Ddg &G, const ModuloSchedule &S);

/// Live-range of the value produced by node \p I: [t_i, latest consumption
/// across out-edges), empty (length 0) when \p I has no consumers.
/// \returns the length of the range in cycles.
int valueLifetime(const Ddg &G, const ModuloSchedule &S, int I);

/// Eichenberger MaxLive: the maximum over pattern time steps of the number
/// of simultaneously live values in steady state.
int maxLive(const Ddg &G, const ModuloSchedule &S);

/// Per-slot live-value counts in steady state (size T); max element is
/// maxLive().
std::vector<int> livePerSlot(const Ddg &G, const ModuloSchedule &S);

/// Renders a one-line-per-value lifetime chart plus the per-slot live
/// counts (the Figure style of [5]).
std::string renderLifetimes(const Ddg &G, const ModuloSchedule &S);

} // namespace swp

#endif // SWP_CORE_REGISTERS_H
