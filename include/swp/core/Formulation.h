//===- swp/core/Formulation.h - The paper's ILP formulations ----*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the paper's unified scheduling-and-mapping ILP for a fixed
/// initiation interval T.
///
/// The single builder implements the Section 5 formulation over reservation
/// tables; the Section 3 (clean pipelines, [9]) and Section 4 (non-pipelined
/// units) formulations are the special cases obtained from clean /
/// non-pipelined tables, and run-time mapping (capacity-only, the pre-paper
/// state of the art) is obtained by disabling the coloring block.
///
/// Variables (for N instructions, period T, FU types r with R_r units):
///   a[t][i] in {0,1}   — instruction i initiates at pattern step t
///                        (the A matrix / modulo reservation table);
///   k[i]    >= 0 int   — iteration-stage index (the K vector);
///   t_i is eliminated as T*k[i] + sum_t t*a[t][i] (paper Eq. 7);
///   c[i]    in [1,R_r] — color = physical unit of i's type (Section 4.2);
///   o[i][j] in {0,1}   — schedule-dependent overlap indicator;
///   w[i][j] in {0,1}   — Hu's [12] sign variable linearizing
///                        |c_i - c_j| >= 1.
///
/// Constraints:
///   sum_t a[t][i] = 1                                  (Eq. 9/23)
///   t_j - t_i >= latency - T*m_ij per DDG edge         (Eq. 4/8)
///   sum_{i in I(r)} U_s[t,i] <= R_r per stage/step     (Eq. 5/24-25)
///     where U_s[t,i] = sum_{l busy in stage s} a[(t-l) mod T][i]
///   o_ij >= a[p][i] + sum_{q conflicting with p} a[q][j] - 1  per p
///     (aggregated form of  o_ij >= U_s[t,i] + U_s[t,j] - 1)
///   c_i - c_j + R_r*w_ij + R_r*(1 - o_ij) >= 1          (Eqs. 12-14)
///   c_j - c_i + R_r*(1 - w_ij) + R_r*(1 - o_ij) >= 1
///
/// Objective (guides the search; feasibility per T is what the driver
/// needs): minimize sum_r CMax_r / R_r with CMax_r >= c_i.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_CORE_FORMULATION_H
#define SWP_CORE_FORMULATION_H

#include "swp/core/Schedule.h"
#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"
#include "swp/solver/Model.h"

#include <vector>

namespace swp {

/// Mapping discipline requested from the formulation.
enum class MappingKind {
  /// Capacity constraints only; units are picked at run time (Section 4.1
  /// alone — the formulation the paper improves on).
  RunTime,
  /// Scheduling and mapping unified via circular-arc coloring (the paper's
  /// contribution, Sections 4.2 and 5).
  Fixed,
};

/// Options controlling model construction.
struct FormulationOptions {
  MappingKind Mapping = MappingKind::Fixed;
  /// Upper bound on the k_i; -1 derives the safe default (sum of latencies
  /// plus N — see DESIGN.md).
  int KMax = -1;
  /// Add the colors-per-type guiding objective (otherwise pure feasibility).
  bool ColoringObjective = true;
  /// Minimize total Ning-Gao buffers (paper Section 7 extension via [18]):
  /// adds one integer variable per DDG edge with
  /// T*b_e >= t_j + T*m - t_i, b_e >= 1, and objective sum b_e.
  /// Overrides ColoringObjective.
  bool BufferObjective = false;
  /// Break the modulo-rotation symmetry: every schedule rotated by s
  /// cycles is again a schedule (dependence rows see only differences and
  /// the resource rows are modulo-T circulant), so one instruction's
  /// pattern step can be pinned to 0 without losing feasibility, dividing
  /// the branch-and-bound tree by up to T.  KMax grows by one to cover the
  /// stage-index carry the rotation can introduce.  Leave off when a warm
  /// start will be lifted from an un-rotated schedule
  /// (scheduleToAssignment does not canonicalize rotation).
  bool BreakRotation = false;
};

/// Variable handles for extracting a schedule from a MILP solution.
struct FormulationVars {
  /// A[t][i] variable ids (T rows).
  std::vector<std::vector<VarId>> A;
  /// K[i] variable ids.
  std::vector<VarId> K;
  /// Color variable id per instruction, or -1 when its type needed no
  /// coloring block (fewer ops than units, or run-time mapping).
  std::vector<VarId> Color;
  /// Buffer-count variable per DDG edge (parallel to Ddg::edges()); empty
  /// unless BufferObjective was requested.
  std::vector<VarId> Buffers;

  /// Overlap / Hu-sign variable pair per same-type instruction pair that
  /// got a coloring block.  On the instance-mapping (topology) path the
  /// Hu sign is not needed and Sign is -1.
  struct PairVarIds {
    int OpI;
    int OpJ;
    VarId Overlap;
    VarId Sign;
  };
  std::vector<PairVarIds> Pairs;

  /// CMax variable per FU type (-1 when absent).
  std::vector<VarId> CMax;

  /// Instance-assignment binaries x[i][u] (u = unit within i's type);
  /// empty unless the machine's topology constrains placement and the
  /// mapping is Fixed.
  std::vector<std::vector<VarId>> Inst;

  /// Route indicator per (DDG edge, producer global unit, hop count >= 2):
  /// Y = 1 when the edge's value leaves Unit across exactly Hops hops,
  /// occupying the ROUTE cells Topology::routeColumns gives.
  struct RouteVarIds {
    int Edge;
    int Unit;
    int Hops;
    VarId Y;
  };
  std::vector<RouteVarIds> Route;
};

/// Builds the unified scheduling+mapping MILP for period \p T.
/// \pre Machine.moduloFeasible(G, T) — offending T must be skipped by the
/// caller, as in the paper.
MilpModel buildScheduleModel(const Ddg &G, const MachineModel &Machine, int T,
                             const FormulationOptions &Opts,
                             FormulationVars &Vars);

/// The inverse of extractSchedule: lifts a legal schedule \p S into a full
/// variable assignment of a model built with the same (G, Machine, T,
/// Opts).  Colors are canonicalized to respect the model's symmetry
/// breaking; overlap, sign, and buffer variables are derived.  The result
/// is feasible for the model whenever \p S verifies — used to warm-start
/// branch and bound.
std::vector<double> scheduleToAssignment(const Ddg &G,
                                         const MachineModel &Machine, int T,
                                         const FormulationOptions &Opts,
                                         const FormulationVars &Vars,
                                         const ModuloSchedule &S,
                                         int NumModelVars);

/// Reads a schedule out of solution \p X of a model built by
/// buildScheduleModel.  With MappingKind::Fixed the mapping is completed
/// greedily for types that needed no coloring block; with RunTime the
/// mapping is left empty.
ModuloSchedule extractSchedule(const Ddg &G, const MachineModel &Machine,
                               int T, const FormulationOptions &Opts,
                               const FormulationVars &Vars,
                               const std::vector<double> &X);

} // namespace swp

#endif // SWP_CORE_FORMULATION_H
