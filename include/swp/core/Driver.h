//===- swp/core/Driver.h - Rate-optimal scheduling driver -------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rate-optimal search loop of the paper's experiments: compute the
/// lower bound T_lb = max(T_dep, T_res), then try T = T_lb, T_lb+1, ...
/// solving the unified scheduling+mapping MILP at each T until one is
/// feasible.  T violating the modulo-scheduling precondition are skipped
/// (they admit no fixed-mapping schedule), exactly as in the paper.
///
/// The found schedule is rate-optimal when every smaller T was *proven*
/// infeasible; time/node limits censor proofs and are reported per attempt
/// (the paper's "10/30" time-limit note).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_CORE_DRIVER_H
#define SWP_CORE_DRIVER_H

#include "swp/core/Formulation.h"
#include "swp/core/Schedule.h"
#include "swp/solver/BranchAndBound.h"
#include "swp/solver/Simplex.h"
#include "swp/support/Status.h"

#include <cstdint>
#include <vector>

namespace swp {

/// Options of the rate-optimal search.
struct SchedulerOptions {
  MappingKind Mapping = MappingKind::Fixed;
  /// MILP wall-clock limit per candidate T, seconds.
  double TimeLimitPerT = 10.0;
  /// MILP node limit per candidate T.
  std::int64_t NodeLimitPerT = INT64_MAX;
  /// Search window: candidate T ranges over [T_lb, T_lb + MaxTSlack].
  int MaxTSlack = 64;
  /// Optimize the coloring objective instead of stopping at the first
  /// feasible schedule.
  bool ColoringObjective = false;
  /// At the rate-optimal T, find the schedule minimizing total Ning-Gao
  /// buffers (the Section 7 extension via [18]); implies solving to
  /// optimality instead of first feasibility.
  bool MinimizeBuffers = false;
  /// Run the independent verifier on every schedule found (cheap).
  bool VerifySchedules = true;
  /// Try an LP-rounding primal probe before branch and bound: round the LP
  /// relaxation's A matrix to offsets, complete the mapping by first-fit
  /// circular-arc coloring and the K vector by Bellman-Ford.  This is the
  /// analogue of the primal heuristics commercial MILP codes run
  /// internally; it never affects infeasibility proofs (those always come
  /// from the exhaustive search or the LP itself).
  bool LpRoundingProbe = true;
  /// Carry the simplex basis across candidate-T iterations: each T's LP
  /// workspace starts from the previous T's final basis, role-mapped
  /// between the two formulations (A slots both periods share, the K /
  /// color / pair / buffer variables), instead of a cold slack basis.
  /// Never changes any answer — only how many pivots reaching it costs.
  bool WarmStartAcrossT = true;
  /// Cooperative cancellation/deadline token, polled between candidate T
  /// and inside the branch-and-bound node loop.  A default token never
  /// fires; the scheduling service installs per-loop deadlines here.
  CancellationToken Cancel;
};

/// LP effort spent by one solve (see LpStats): how much simplex work the
/// answer cost, and how much of it started warm.
struct LpEffort {
  std::int64_t Pivots = 0;
  std::int64_t Refactorizations = 0;
  std::int64_t Solves = 0;
  std::int64_t WarmSolves = 0;

  LpEffort &operator+=(const LpEffort &O) {
    Pivots += O.Pivots;
    Refactorizations += O.Refactorizations;
    Solves += O.Solves;
    WarmSolves += O.WarmSolves;
    return *this;
  }
};

/// Cross-T warm-start context: the previous candidate T's formulation
/// handles and final structural basis.  scheduleAtT consumes it to seed
/// the new T's workspace and overwrites it with this T's outcome.  A
/// default-constructed context seeds nothing.
struct TWarmContext {
  int T = 0;
  FormulationVars Vars;
  std::vector<LpBasisStatus> Basis;

  bool valid() const { return T > 0 && !Basis.empty(); }
};

/// One candidate-T attempt record.
struct TAttempt {
  int T = 0;
  /// True when T was skipped for violating the modulo constraint.
  bool ModuloSkipped = false;
  MilpStatus Status = MilpStatus::Unknown;
  /// What censored this attempt's proof (SearchStop::None when nothing
  /// did) — distinguishes time limit / node limit / cancellation.
  SearchStop StopReason = SearchStop::None;
  double Seconds = 0.0;
  std::int64_t Nodes = 0;
  /// Simplex effort behind this attempt (probe + all node relaxations).
  LpEffort Lp;
};

/// Which rung of the service's fallback ladder produced the schedule.
/// The ladder degrades ILP -> slack-modulo -> iterative-modulo; None means
/// the primary (ILP or portfolio) path answered.
enum class FallbackRung {
  None,
  SlackModulo,
  IterativeModulo,
};

/// Short stable name of \p R ("none", "slack-modulo", ...).
const char *fallbackRungName(FallbackRung R);

/// Result of the rate-optimal search.
struct SchedulerResult {
  /// The schedule (T == 0 when none was found within the window/limits).
  ModuloSchedule Schedule;
  int TDep = 0;
  int TRes = 0;
  int TLowerBound = 0;
  /// True when every T below the found one was proven infeasible.
  bool ProvenRateOptimal = false;
  /// True when the independent verifier rejected an extracted schedule
  /// (a bug — never expected; the schedule is then discarded).
  bool VerifyFailed = false;
  /// True when the search was cut short by the options' cancellation
  /// token (deadline or explicit cancel); the result covers only the T
  /// attempted before the cut.
  bool Cancelled = false;
  /// Typed library error (ok() when the search ran normally).  A non-ok
  /// status can coexist with a found schedule when a fallback rung
  /// answered after the primary path failed.
  Status Error;
  /// Which fallback rung produced Schedule (None on the primary path);
  /// set by the scheduling service's fallback ladder.
  FallbackRung Fallback = FallbackRung::None;
  /// True when fault-injection sites fired during this solve; such results
  /// never claim censored-proof optimality and are never cached.
  bool FaultsSeen = false;
  /// True when this result was served from the ResultCache (warm hit); the
  /// cached copy itself stores false, so a hit differs from its cold solve
  /// only in this flag.
  bool CacheHit = false;
  /// Watchdog retries the service spent on this job (transient faults).
  int Retries = 0;
  double TotalSeconds = 0.0;
  std::int64_t TotalNodes = 0;
  /// Simplex effort summed over every attempt.
  LpEffort TotalLp;
  std::vector<TAttempt> Attempts;

  bool found() const { return Schedule.T > 0; }

  /// Renders the per-attempt SearchStop chain ("T=3 infeasible; T=4
  /// lp-stall; ...") — the evidence trail behind an unfound/censored
  /// result.
  std::string stopChain() const;
};

/// Runs the rate-optimal search for \p G on \p Machine.
SchedulerResult scheduleLoop(const Ddg &G, const MachineModel &Machine,
                             const SchedulerOptions &Opts = {});

/// Builds and solves the MILP for one fixed \p T; \returns the solver
/// outcome and, when feasible, writes the extracted schedule.  \p StopOut,
/// when non-null, receives what censored the search (SearchStop::None when
/// nothing did).  \p Warm, when non-null, seeds this T's LP workspace from
/// the context's basis and is overwritten with this T's final basis (the
/// scheduleLoop carry).  \p EffortOut receives this call's simplex effort.
MilpStatus scheduleAtT(const Ddg &G, const MachineModel &Machine, int T,
                       const SchedulerOptions &Opts, ModuloSchedule &Out,
                       double *SecondsOut = nullptr,
                       std::int64_t *NodesOut = nullptr,
                       SearchStop *StopOut = nullptr,
                       Status *ErrorOut = nullptr,
                       TWarmContext *Warm = nullptr,
                       LpEffort *EffortOut = nullptr);

} // namespace swp

#endif // SWP_CORE_DRIVER_H
