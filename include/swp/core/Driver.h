//===- swp/core/Driver.h - Rate-optimal scheduling driver -------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The rate-optimal search loop of the paper's experiments: compute the
/// lower bound T_lb = max(T_dep, T_res), then try T = T_lb, T_lb+1, ...
/// solving the unified scheduling+mapping MILP at each T until one is
/// feasible.  T violating the modulo-scheduling precondition are skipped
/// (they admit no fixed-mapping schedule), exactly as in the paper.
///
/// The found schedule is rate-optimal when every smaller T was *proven*
/// infeasible; time/node limits censor proofs and are reported per attempt
/// (the paper's "10/30" time-limit note).
///
//===----------------------------------------------------------------------===//

#ifndef SWP_CORE_DRIVER_H
#define SWP_CORE_DRIVER_H

#include "swp/core/Formulation.h"
#include "swp/core/Schedule.h"
#include "swp/solver/BranchAndBound.h"

#include <cstdint>
#include <vector>

namespace swp {

/// Options of the rate-optimal search.
struct SchedulerOptions {
  MappingKind Mapping = MappingKind::Fixed;
  /// MILP wall-clock limit per candidate T, seconds.
  double TimeLimitPerT = 10.0;
  /// MILP node limit per candidate T.
  std::int64_t NodeLimitPerT = INT64_MAX;
  /// Search window: candidate T ranges over [T_lb, T_lb + MaxTSlack].
  int MaxTSlack = 64;
  /// Optimize the coloring objective instead of stopping at the first
  /// feasible schedule.
  bool ColoringObjective = false;
  /// At the rate-optimal T, find the schedule minimizing total Ning-Gao
  /// buffers (the Section 7 extension via [18]); implies solving to
  /// optimality instead of first feasibility.
  bool MinimizeBuffers = false;
  /// Run the independent verifier on every schedule found (cheap).
  bool VerifySchedules = true;
  /// Try an LP-rounding primal probe before branch and bound: round the LP
  /// relaxation's A matrix to offsets, complete the mapping by first-fit
  /// circular-arc coloring and the K vector by Bellman-Ford.  This is the
  /// analogue of the primal heuristics commercial MILP codes run
  /// internally; it never affects infeasibility proofs (those always come
  /// from the exhaustive search or the LP itself).
  bool LpRoundingProbe = true;
};

/// One candidate-T attempt record.
struct TAttempt {
  int T = 0;
  /// True when T was skipped for violating the modulo constraint.
  bool ModuloSkipped = false;
  MilpStatus Status = MilpStatus::Unknown;
  double Seconds = 0.0;
  std::int64_t Nodes = 0;
};

/// Result of the rate-optimal search.
struct SchedulerResult {
  /// The schedule (T == 0 when none was found within the window/limits).
  ModuloSchedule Schedule;
  int TDep = 0;
  int TRes = 0;
  int TLowerBound = 0;
  /// True when every T below the found one was proven infeasible.
  bool ProvenRateOptimal = false;
  /// True when the independent verifier rejected an extracted schedule
  /// (a bug — never expected; the schedule is then discarded).
  bool VerifyFailed = false;
  double TotalSeconds = 0.0;
  std::int64_t TotalNodes = 0;
  std::vector<TAttempt> Attempts;

  bool found() const { return Schedule.T > 0; }
};

/// Runs the rate-optimal search for \p G on \p Machine.
SchedulerResult scheduleLoop(const Ddg &G, const MachineModel &Machine,
                             const SchedulerOptions &Opts = {});

/// Builds and solves the MILP for one fixed \p T; \returns the solver
/// outcome and, when feasible, writes the extracted schedule.
MilpStatus scheduleAtT(const Ddg &G, const MachineModel &Machine, int T,
                       const SchedulerOptions &Opts, ModuloSchedule &Out,
                       double *SecondsOut = nullptr,
                       std::int64_t *NodesOut = nullptr);

} // namespace swp

#endif // SWP_CORE_DRIVER_H
