//===- swp/service/SchedulerService.h - Parallel scheduling -----*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch scheduling service: many loops, one machine, a fixed-size
/// worker pool.  Each submitted DDG flows through
///
///     queue -> [result cache] -> portfolio/ILP solve -> stats
///
/// Portfolio mode races the cheap heuristics (iterative-modulo and slack
/// scheduling) against the rate-optimal ILP per loop: the heuristic leg
/// runs first (it is orders of magnitude faster, so it always wins the
/// race to an incumbent), its schedule becomes the upper-bound incumbent,
/// and the ILP leg is restricted to strictly better T — or cancelled
/// outright when the incumbent already sits on the lower bound.  The
/// outcome is decided by the *results*, never by thread timing, so a
/// portfolio batch is deterministic.
///
/// Cancellation is cooperative: every job's solve carries a token nested
/// under the service-wide source, checked in the driver's per-T loop and
/// the branch-and-bound node loop; per-loop deadlines use the same token.
///
/// The service guarantees an answer per job (DESIGN.md Section 9): a
/// watchdog re-runs solves killed by transient faults (bounded exponential
/// backoff), and a fallback ladder degrades ILP -> slack-modulo ->
/// iterative-modulo before reporting an unfound result — which then
/// carries the full per-attempt SearchStop chain and a typed Status.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SERVICE_SCHEDULERSERVICE_H
#define SWP_SERVICE_SCHEDULERSERVICE_H

#include "swp/core/Driver.h"
#include "swp/machine/MachineModel.h"
#include "swp/service/ResultCache.h"
#include "swp/service/ServiceStats.h"
#include "swp/service/ThreadPool.h"
#include "swp/support/Cancellation.h"

#include <future>
#include <mutex>
#include <span>
#include <vector>

namespace swp {

/// How one portfolio race was settled (for stats and tests).
enum class PortfolioOutcome {
  /// The heuristic incumbent hit T_lb; the ILP leg was cancelled unstarted.
  HeuristicWon,
  /// The ILP leg found a schedule (strictly better than the incumbent, or
  /// there was no incumbent).
  IlpWon,
  /// The ILP leg found nothing below the incumbent; the heuristic schedule
  /// stands (proven rate-optimal when the ILP proved every smaller T
  /// infeasible).
  FellBackToHeuristic,
  /// Neither leg produced a schedule.
  NothingFound,
};

/// Runs the portfolio race for one loop.  \p Opts configures the ILP leg;
/// its Cancel token is honored by both legs.  Exposed standalone so swpc
/// and tests can run it without a pool.
SchedulerResult portfolioSchedule(const Ddg &G, const MachineModel &Machine,
                                  const SchedulerOptions &Opts = {},
                                  PortfolioOutcome *OutcomeOut = nullptr);

/// Service configuration.
struct ServiceOptions {
  /// Worker threads; 0 means one per hardware thread.
  int Jobs = 0;
  /// Per-loop scheduler knobs (the ILP leg in portfolio mode).
  SchedulerOptions Sched;
  /// Race the heuristics against the ILP per loop.
  bool Portfolio = false;
  /// Memoize results by canonical fingerprint.
  bool UseCache = true;
  /// Per-loop wall-clock deadline in seconds (0 = none); expiring cancels
  /// the solve cooperatively.
  double DeadlinePerLoop = 0.0;
  /// Watchdog: maximum re-runs of a job whose solve died of a transient
  /// fault (injected error, spurious cancellation).  Retries back off
  /// exponentially from RetryBackoff.
  int WatchdogRetries = 2;
  /// First watchdog backoff in seconds (doubles per retry).
  double RetryBackoff = 0.001;
  /// Degrade to the heuristic ladder (slack-modulo, then iterative-modulo)
  /// when the primary path produces no schedule for a reason other than a
  /// clean infeasibility proof of the whole window.
  bool FallbackLadder = true;
};

/// Schedules many loops concurrently on one machine model.
class SchedulerService {
public:
  explicit SchedulerService(MachineModel Machine, ServiceOptions Opts = {});
  ~SchedulerService();

  SchedulerService(const SchedulerService &) = delete;
  SchedulerService &operator=(const SchedulerService &) = delete;

  /// Enqueues one loop; the future resolves with its SchedulerResult.
  std::future<SchedulerResult> submit(Ddg G);

  /// Schedules every loop of \p Loops; results are returned in input
  /// order (the whole batch runs through the pool concurrently).
  std::vector<SchedulerResult> scheduleAll(std::span<const Ddg> Loops);

  /// Cooperatively cancels every queued and running job.  Already-running
  /// solves unwind at their next token poll and report Cancelled.
  void cancelAll();

  /// Snapshot of the observability counters.
  ServiceStats stats() const;

  const MachineModel &machine() const { return Machine; }
  const ServiceOptions &options() const { return Opts; }

private:
  SchedulerResult scheduleOne(const Ddg &G);

  MachineModel Machine;
  ServiceOptions Opts;
  ResultCache Cache;
  CancellationSource GlobalCancel;

  mutable std::mutex StatsMutex;
  ServiceStats Counters;

  /// Declared last so workers die before any state they touch.
  ThreadPool Pool;
};

} // namespace swp

#endif // SWP_SERVICE_SCHEDULERSERVICE_H
