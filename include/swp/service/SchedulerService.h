//===- swp/service/SchedulerService.h - Parallel scheduling -----*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batch scheduling service: many loops, one machine, a fixed-size
/// worker pool.  Each submitted DDG flows through
///
///     queue -> [result cache] -> portfolio/ILP solve -> stats
///
/// Portfolio mode races the cheap heuristics (iterative-modulo and slack
/// scheduling) against the rate-optimal ILP per loop: the heuristic leg
/// runs first (it is orders of magnitude faster, so it always wins the
/// race to an incumbent), its schedule becomes the upper-bound incumbent,
/// and the ILP leg is restricted to strictly better T — or cancelled
/// outright when the incumbent already sits on the lower bound.  The
/// outcome is decided by the *results*, never by thread timing, so a
/// portfolio batch is deterministic.
///
/// Cancellation is cooperative: every job's solve carries a token nested
/// under the service-wide source, checked in the driver's per-T loop and
/// the branch-and-bound node loop; per-loop deadlines use the same token.
///
/// The service guarantees an answer per job (DESIGN.md Section 9): a
/// watchdog re-runs solves killed by transient faults (bounded exponential
/// backoff), and a fallback ladder degrades ILP -> slack-modulo ->
/// iterative-modulo before reporting an unfound result — which then
/// carries the full per-attempt SearchStop chain and a typed Status.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SERVICE_SCHEDULERSERVICE_H
#define SWP_SERVICE_SCHEDULERSERVICE_H

#include "swp/core/Driver.h"
#include "swp/machine/MachineModel.h"
#include "swp/service/ResultCache.h"
#include "swp/service/ServiceStats.h"
#include "swp/service/ThreadPool.h"
#include "swp/support/Cancellation.h"

#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

namespace swp {

/// The exact (proof-capable) scheduling engine a job runs.
enum class ExactEngine {
  /// The branch-and-bound ILP over the paper's formulation.
  Ilp,
  /// The CDCL SAT backend with incremental per-T re-solving.
  Sat,
  /// Both, raced with cross-cancellation; the adopted result is decided by
  /// what each engine *returned* (found schedules, proven windows), never
  /// by thread timing, so racing stays deterministic.
  Race,
};

/// Short stable name of \p E ("ilp", "sat", "race").
const char *exactEngineName(ExactEngine E);

/// Telemetry of one exactSchedule call (race accounting and cross-engine
/// proof merging; meaningful fields depend on the engine).
struct ExactRaceInfo {
  /// The exact engine actually ran (false when the portfolio's heuristic
  /// incumbent settled the loop before the exact leg started).
  bool Ran = false;
  /// Engine whose result was adopted.
  ExactEngine Winner = ExactEngine::Ilp;
  /// The losing engine's clean per-T infeasibility proofs upgraded the
  /// adopted result to ProvenRateOptimal (satellite accounting: a rung
  /// that loses the race but proved the matching lower bound still
  /// contributes its proof).
  bool ProofUpgraded = false;
  /// CDCL conflicts the SAT leg spent (0 when SAT never ran).
  std::int64_t SatConflicts = 0;
  /// The SAT leg produced the decisive answer first in wall time.  Stats
  /// only — never consulted when picking the winner.
  bool SatDecidedFirst = false;
};

/// Runs \p Engine on one loop: Ilp and Sat dispatch to the corresponding
/// rate-optimal loop; Race runs both concurrently, cancels the loser once
/// a decisive result exists, adopts by results (smaller T wins, a found
/// schedule beats none, tie prefers the ILP), and merges the loser's
/// infeasibility proofs into the winner's optimality claim.
SchedulerResult exactSchedule(const Ddg &G, const MachineModel &Machine,
                              const SchedulerOptions &Opts = {},
                              ExactEngine Engine = ExactEngine::Ilp,
                              ExactRaceInfo *Info = nullptr);

/// How one portfolio race was settled (for stats and tests).
enum class PortfolioOutcome {
  /// The heuristic incumbent hit T_lb; the ILP leg was cancelled unstarted.
  HeuristicWon,
  /// The ILP leg found a schedule (strictly better than the incumbent, or
  /// there was no incumbent).
  IlpWon,
  /// The ILP leg found nothing below the incumbent; the heuristic schedule
  /// stands (proven rate-optimal when the ILP proved every smaller T
  /// infeasible).
  FellBackToHeuristic,
  /// Neither leg produced a schedule.
  NothingFound,
};

/// Runs the portfolio race for one loop.  \p Opts configures the exact leg
/// (ILP, SAT, or both raced, per \p Engine); its Cancel token is honored by
/// every leg.  Exposed standalone so swpc and tests can run it without a
/// pool.  \p RaceOut receives the exact leg's race telemetry when it ran.
SchedulerResult portfolioSchedule(const Ddg &G, const MachineModel &Machine,
                                  const SchedulerOptions &Opts = {},
                                  PortfolioOutcome *OutcomeOut = nullptr,
                                  ExactEngine Engine = ExactEngine::Ilp,
                                  ExactRaceInfo *RaceOut = nullptr);

/// Service configuration.
struct ServiceOptions {
  /// Worker threads; 0 means one per hardware thread.
  int Jobs = 0;
  /// Per-loop scheduler knobs (the exact leg in portfolio mode).
  SchedulerOptions Sched;
  /// Which exact engine answers jobs (and anchors the portfolio).
  ExactEngine Engine = ExactEngine::Ilp;
  /// Race the heuristics against the exact engine per loop.
  bool Portfolio = false;
  /// Memoize results by canonical fingerprint.
  bool UseCache = true;
  /// Per-loop wall-clock deadline in seconds (0 = none); expiring cancels
  /// the solve cooperatively.
  double DeadlinePerLoop = 0.0;
  /// Watchdog: maximum re-runs of a job whose solve died of a transient
  /// fault (injected error, spurious cancellation).  Retries back off
  /// exponentially from RetryBackoff.
  int WatchdogRetries = 2;
  /// First watchdog backoff in seconds (doubles per retry).
  double RetryBackoff = 0.001;
  /// Degrade to the heuristic ladder (slack-modulo, then iterative-modulo)
  /// when the primary path produces no schedule for a reason other than a
  /// clean infeasibility proof of the whole window.
  bool FallbackLadder = true;
};

/// Per-request overrides of the service-wide solve effort.  The admission
/// controller uses these to degrade saturated requests (shorter per-T time
/// slices, narrower T windows, tighter deadlines) without reconfiguring
/// the whole service; they fold into the job's fingerprint, so a degraded
/// solve never aliases a full-effort cache entry.
struct JobOptions {
  /// Per-loop wall-clock deadline in seconds; negative keeps the service
  /// default, 0 disables the deadline for this job.
  double DeadlineSeconds = -1.0;
  /// Per-T solver time limit in seconds; <= 0 keeps the service default.
  double TimeLimitPerT = 0.0;
  /// Candidate-T window above the lower bound; negative keeps the service
  /// default.
  int MaxTSlack = -1;
};

/// The degraded path the admission controller runs when exact engines are
/// saturated: slack-modulo first, then iterative-modulo, both verified.
/// Always returns (schedule, explicit unfound result, or InvalidInput for
/// a malformed DDG) and stamps the adopted rung in Result.Fallback.
SchedulerResult runHeuristicLadder(const Ddg &G, const MachineModel &Machine,
                                   int MaxTSlack);

/// Schedules many loops concurrently on one machine model.
class SchedulerService {
public:
  explicit SchedulerService(MachineModel Machine, ServiceOptions Opts = {});

  /// Shares \p Cache with other services (the swpd daemon keys services by
  /// machine but pools one cache across them, so snapshots and stats see a
  /// single memoization domain).  \p Cache must not be null.
  SchedulerService(MachineModel Machine, ServiceOptions Opts,
                   std::shared_ptr<ResultCache> Cache);
  ~SchedulerService();

  SchedulerService(const SchedulerService &) = delete;
  SchedulerService &operator=(const SchedulerService &) = delete;

  /// Enqueues one loop; the future resolves with its SchedulerResult.
  std::future<SchedulerResult> submit(Ddg G);

  /// Enqueues one loop with per-job effort overrides.
  std::future<SchedulerResult> submit(Ddg G, JobOptions Job);

  /// Schedules every loop of \p Loops; results are returned in input
  /// order (the whole batch runs through the pool concurrently).
  std::vector<SchedulerResult> scheduleAll(std::span<const Ddg> Loops);

  /// Cooperatively cancels every queued and running job.  Already-running
  /// solves unwind at their next token poll and report Cancelled.
  void cancelAll();

  /// Snapshot of the observability counters.
  ServiceStats stats() const;

  const MachineModel &machine() const { return Machine; }
  const ServiceOptions &options() const { return Opts; }

  /// The (possibly shared) result cache backing this service.
  const std::shared_ptr<ResultCache> &cacheHandle() const { return Cache; }

private:
  SchedulerResult scheduleOne(const Ddg &G, const JobOptions &Job);

  MachineModel Machine;
  ServiceOptions Opts;
  std::shared_ptr<ResultCache> Cache;
  CancellationSource GlobalCancel;

  mutable std::mutex StatsMutex;
  ServiceStats Counters;

  /// Declared last so workers die before any state they touch.
  ThreadPool Pool;
};

} // namespace swp

#endif // SWP_SERVICE_SCHEDULERSERVICE_H
