//===- swp/service/Fingerprint.h - Canonical job fingerprints ---*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical 128-bit fingerprints of scheduling jobs, the result cache's
/// key.  A fingerprint covers everything the rate-optimal search reads —
/// DDG structure (op classes, latencies, variants, edge distances and
/// latencies), the machine's reservation tables and unit counts, and the
/// result-affecting scheduler options — and deliberately ignores names:
/// two structurally identical loops hash equal, so repeated corpus shapes
/// hit the cache instead of re-solving.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SERVICE_FINGERPRINT_H
#define SWP_SERVICE_FINGERPRINT_H

#include "swp/core/Driver.h"
#include "swp/ddg/Ddg.h"
#include "swp/machine/MachineModel.h"

#include <cstddef>
#include <cstdint>

namespace swp {

/// A 128-bit hash; two independently seeded 64-bit lanes make accidental
/// collisions across a million-loop corpus implausible.
struct Fingerprint {
  std::uint64_t Hi = 0;
  std::uint64_t Lo = 0;

  bool operator==(const Fingerprint &) const = default;
};

/// Hash functor for unordered containers keyed by Fingerprint.
struct FingerprintHasher {
  std::size_t operator()(const Fingerprint &F) const {
    return static_cast<std::size_t>(F.Lo ^ (F.Hi * 0x9e3779b97f4a7c15ULL));
  }
};

/// Streaming two-lane FNV-style hasher used to build fingerprints.
class FingerprintBuilder {
public:
  FingerprintBuilder &add(std::uint64_t V);
  FingerprintBuilder &add(int V) {
    return add(static_cast<std::uint64_t>(static_cast<std::int64_t>(V)));
  }
  /// Hashes the exact bit pattern (distinguishes 0.0 from -0.0; that is
  /// fine for a cache key).
  FingerprintBuilder &addDouble(double V);

  Fingerprint finish() const { return {Hi, Lo}; }

private:
  std::uint64_t Hi = 0xcbf29ce484222325ULL;
  std::uint64_t Lo = 0x2545f4914f6cdd1dULL;
};

/// Fingerprints \p G's structure (ignores the graph and node names).
Fingerprint fingerprintDdg(const Ddg &G);

/// Fingerprints \p M's unit counts and reservation tables (ignores names).
Fingerprint fingerprintMachine(const MachineModel &M);

/// Fingerprints the result-affecting fields of \p Opts (mapping kind,
/// limits, window, objectives; the cancellation token is excluded).
Fingerprint fingerprintOptions(const SchedulerOptions &Opts);

/// The full cache key of one service job: DDG x machine x options, plus
/// the service-level mode bits that change what is computed.
/// \p EngineTag is the numeric ExactEngine value (an int here to keep this
/// header independent of SchedulerService.h): results from different exact
/// engines never alias in the cache.
Fingerprint fingerprintJob(const Ddg &G, const MachineModel &M,
                           const SchedulerOptions &Opts, bool Portfolio,
                           double DeadlineSeconds, int EngineTag = 0);

} // namespace swp

#endif // SWP_SERVICE_FINGERPRINT_H
