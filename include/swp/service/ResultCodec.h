//===- swp/service/ResultCodec.h - SchedulerResult serialization -*- C++ -*-=//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Binary serialization of SchedulerResult (and Fingerprint), shared by the
/// wire protocol's schedule responses and the persistent cache snapshots so
/// one codec — and one fuzzer — covers both.  Decoding is defensive: enum
/// values outside their range, vector counts beyond sane bounds, and
/// truncation all fail instead of producing a half-filled result, because a
/// snapshot entry that decodes is afterwards trusted as a cache hit.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SERVICE_RESULTCODEC_H
#define SWP_SERVICE_RESULTCODEC_H

#include "swp/core/Driver.h"
#include "swp/service/Fingerprint.h"
#include "swp/support/Binary.h"

namespace swp {

/// Largest instruction/attempt count accepted when decoding (far beyond
/// any real loop; a hostile count fails instead of allocating).
inline constexpr std::uint32_t MaxCodecVectorLen = 1u << 20;

void encodeFingerprint(ByteWriter &W, const Fingerprint &F);
bool decodeFingerprint(ByteReader &R, Fingerprint &F);

void encodeSchedulerResult(ByteWriter &W, const SchedulerResult &R);
bool decodeSchedulerResult(ByteReader &R, SchedulerResult &Out);

/// Convenience: the canonical byte image of \p R (used by tests asserting
/// warm cache hits are bit-identical to cold solves).
std::vector<std::uint8_t> schedulerResultBytes(const SchedulerResult &R);

} // namespace swp

#endif // SWP_SERVICE_RESULTCODEC_H
