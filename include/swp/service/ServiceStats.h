//===- swp/service/ServiceStats.h - Service observability -------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Observability counters of a SchedulerService: throughput, cache
/// effectiveness, cancellations, censored proofs, queue pressure, and a
/// log2-bucketed per-loop latency histogram.  render() prints the whole
/// thing as swp/support/TextTable tables.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SERVICE_SERVICESTATS_H
#define SWP_SERVICE_SERVICESTATS_H

#include <array>
#include <cstdint>
#include <string>

namespace swp {

/// Log2-bucketed latency histogram: bucket b counts latencies in
/// [2^b, 2^(b+1)) microseconds; the last bucket absorbs the overflow.
struct LatencyHistogram {
  static constexpr int NumBuckets = 24; // 1us .. ~8.4s, then overflow.

  std::array<std::uint64_t, NumBuckets> Buckets{};
  std::uint64_t Count = 0;
  double TotalSeconds = 0.0;
  double MaxSeconds = 0.0;

  void add(double Seconds);

  double meanSeconds() const {
    return Count == 0 ? 0.0 : TotalSeconds / static_cast<double>(Count);
  }

  /// Human label of bucket \p B's lower bound ("1us", "512us", "2.1s").
  static std::string bucketLabel(int B);
};

/// A consistent snapshot of a SchedulerService's counters.
struct ServiceStats {
  /// Worker threads in the pool.
  int Jobs = 0;
  /// Deepest the job queue has ever been.
  int QueueHighWater = 0;
  std::uint64_t Submitted = 0;
  std::uint64_t Completed = 0;
  std::uint64_t CacheHits = 0;
  std::uint64_t CacheMisses = 0;
  /// Entries currently memoized in the result cache ...
  std::uint64_t CacheSize = 0;
  /// ... and entries its LRU policy has evicted under capacity pressure.
  std::uint64_t CacheEvictions = 0;
  /// Loops whose search was cut short by a deadline or cancelAll().
  std::uint64_t Cancellations = 0;
  /// Loops with at least one attempt whose optimality/infeasibility proof
  /// was censored by a limit (the paper's "10/30" situation).
  std::uint64_t CensoredProofs = 0;
  /// Portfolio outcomes: loops settled by the heuristic leg alone (it hit
  /// T_lb, so the ILP leg was cancelled unstarted) ...
  std::uint64_t PortfolioHeuristicWins = 0;
  /// ... loops where the ILP leg beat or proved the heuristic incumbent ...
  std::uint64_t PortfolioIlpWins = 0;
  /// ... and loops that fell back to the heuristic incumbent after the ILP
  /// leg was cancelled or exhausted its window without a schedule.
  std::uint64_t PortfolioFallbacks = 0;
  /// Engine-race counters (Engine == Race): exact legs adopted from the
  /// ILP ...
  std::uint64_t RaceIlpWins = 0;
  /// ... exact legs adopted from the SAT backend ...
  std::uint64_t RaceSatWins = 0;
  /// ... races where the losing engine's infeasibility proofs upgraded the
  /// adopted schedule to ProvenRateOptimal ...
  std::uint64_t CrossEngineProofUpgrades = 0;
  /// ... and total CDCL conflicts spent by SAT legs (any engine).
  std::uint64_t SatConflicts = 0;
  /// Failure-domain counters: loops whose solve saw at least one injected
  /// fault fire ...
  std::uint64_t FaultedJobs = 0;
  /// ... loops that finished with a typed (non-ok) Status attached ...
  std::uint64_t TypedErrors = 0;
  /// ... watchdog re-runs after a transient fault (sum over all jobs) ...
  std::uint64_t WatchdogRetries = 0;
  /// ... jobs the fallback ladder rescued with slack-modulo scheduling ...
  std::uint64_t FallbackSlackWins = 0;
  /// ... or with iterative-modulo scheduling ...
  std::uint64_t FallbackImsWins = 0;
  /// ... and jobs a dispatch fault bounced back to the queue.
  std::uint64_t DispatchFaults = 0;
  /// LP effort across every exact solve the service ran: simplex pivots
  /// (primal + dual) ...
  std::uint64_t LpPivots = 0;
  /// ... basis refactorizations (eta file rebuilt) ...
  std::uint64_t LpRefactorizations = 0;
  /// ... LP solves answered ...
  std::uint64_t LpSolves = 0;
  /// ... of which started from a carried/seeded basis (warm starts: B&B
  /// children off the parent basis, cross-T carries, probe-to-search).
  std::uint64_t LpWarmSolves = 0;
  LatencyHistogram Latency;

  /// Renders counters and the latency histogram as aligned text tables.
  std::string render() const;
};

} // namespace swp

#endif // SWP_SERVICE_SERVICESTATS_H
