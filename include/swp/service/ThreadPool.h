//===- swp/service/ThreadPool.h - Fixed-size worker pool --------*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool with a FIFO job queue, the execution substrate
/// of SchedulerService.  Jobs are opaque closures; result plumbing (futures)
/// lives in the caller.  The queue records its high-water mark for the
/// service's observability stats.  The destructor drains the queue: jobs
/// already enqueued still run, then workers exit and are joined.
///
/// Dispatch is fault-tolerant: the FaultSite::Dispatch injection point
/// simulates a worker dying as it picks up a job, in which case the job is
/// requeued for another worker.  A job is never dropped — dropping would
/// break its future — and requeues are bounded (after MaxRequeues the job
/// runs regardless), so even a 100% dispatch-fault rate cannot live-lock
/// the pool.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SERVICE_THREADPOOL_H
#define SWP_SERVICE_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace swp {

/// Fixed-size FIFO thread pool.
class ThreadPool {
public:
  /// Spawns \p Threads workers; non-positive means one per hardware
  /// thread (at least one).
  explicit ThreadPool(int Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Enqueues an opaque job.
  void enqueue(std::function<void()> Job);

  /// Enqueues a callable and \returns a future for its result.
  template <typename Fn>
  auto submit(Fn &&Callable) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto Task = std::make_shared<std::packaged_task<R()>>(
        std::forward<Fn>(Callable));
    std::future<R> Result = Task->get_future();
    enqueue([Task] { (*Task)(); });
    return Result;
  }

  int threadCount() const { return static_cast<int>(Workers.size()); }

  /// Deepest the queue has ever been (jobs waiting, excluding running).
  int queueHighWater() const;

  /// Times a dispatch fault sent a job back to the queue.
  std::uint64_t dispatchFaults() const;

  /// Requeue bound per job under dispatch faults.
  static constexpr int MaxRequeues = 8;

private:
  /// A queued job plus how many times dispatch faults have requeued it.
  struct QueuedJob {
    std::function<void()> Fn;
    int Requeues = 0;
  };

  void workerLoop();

  mutable std::mutex Mutex;
  std::condition_variable Available;
  std::deque<QueuedJob> Queue;
  std::vector<std::thread> Workers;
  int HighWater = 0;
  std::uint64_t DispatchFaults = 0;
  bool Stopping = false;
};

} // namespace swp

#endif // SWP_SERVICE_THREADPOOL_H
