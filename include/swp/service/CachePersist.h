//===- swp/service/CachePersist.h - Crash-safe cache snapshots --*- C++ -*-===//
//
// Part of the swp project (PLDI '95 software pipelining reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Disk persistence for the ResultCache: one snapshot file per shard
/// (`shard-NNNN.swpcache`) under a snapshot directory, so warm capacity
/// survives daemon restarts and can be pre-baked from corpus runs.
///
/// Crash safety is rename-based: a shard is written to `<name>.tmp`,
/// fsynced, then atomically renamed over the final name.  A crash at any
/// point therefore leaves either the previous good file, or the previous
/// good file plus a partial `.tmp` the loader never reads — there is no
/// state in which a half-written snapshot is live.
///
/// Nothing on disk is trusted: the loader checks the magic/version header
/// and a CRC32 per entry, and any mismatch (truncation, bit rot, wrong
/// version) discards the *whole* shard file — the cache rebuilds that
/// shard from empty rather than restore a prefix of unknown provenance.
/// The FaultSite::CacheLoad injection point forces the same path so tests
/// can prove corrupt snapshots degrade to cold caches, never to poisoned
/// hits.
///
//===----------------------------------------------------------------------===//

#ifndef SWP_SERVICE_CACHEPERSIST_H
#define SWP_SERVICE_CACHEPERSIST_H

#include "swp/service/ResultCache.h"
#include "swp/support/Status.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace swp {

/// Snapshot file format version; bumped on any layout change (old files
/// then load as corrupt-and-rebuilt, never misparsed).
inline constexpr std::uint32_t CacheSnapshotVersion = 1;

/// "SWPS" little-endian.
inline constexpr std::uint32_t CacheSnapshotMagic = 0x53505753;

struct SnapshotSaveStats {
  std::size_t ShardFiles = 0;
  std::size_t Entries = 0;
  std::size_t Bytes = 0;
};

struct SnapshotLoadStats {
  /// Shard files present and read.
  std::size_t ShardFiles = 0;
  /// Entries restored into the cache.
  std::size_t Entries = 0;
  /// Shard files discarded for a bad header, bad entry checksum,
  /// truncation, or an injected cache-load fault.
  std::size_t CorruptShards = 0;
};

/// Test hook simulating a crash mid-write: the writer stops after emitting
/// \p FailAfterBytes bytes of a shard's temp file and returns an error,
/// leaving the partial `.tmp` behind exactly as a killed process would.
struct SnapshotWriteHooks {
  std::size_t FailAfterBytes = static_cast<std::size_t>(-1);
};

/// Writes every shard of \p Cache under \p Dir (created if missing).
/// Atomic per shard: concurrent readers of a previous snapshot are never
/// exposed to a partial file.
Expected<SnapshotSaveStats> saveCacheSnapshot(const ResultCache &Cache,
                                              const std::string &Dir,
                                              const SnapshotWriteHooks &Hooks =
                                                  {});

/// Restores every readable shard file under \p Dir into \p Cache via
/// ResultCache::restore (first-insert-wins; capacity still applies).
/// Corrupt or truncated shards are counted and skipped.  A missing
/// directory is not an error — it loads zero entries, the cold start.
Expected<SnapshotLoadStats> loadCacheSnapshot(ResultCache &Cache,
                                              const std::string &Dir);

} // namespace swp

#endif // SWP_SERVICE_CACHEPERSIST_H
